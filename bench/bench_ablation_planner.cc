// Ablation for the SPARQL engine's selectivity-based join reordering —
// the "query processing at the database level" the paper identifies as
// decisive for refinement latency (Section 7.1, Similarity discussion).
// We execute the synthesized + disaggregated queries with and without
// join-order optimization.
//
// Deliberately uses raw sparql::Execute, NOT engine::QueryEngine: this
// ablation measures plan-and-run cost per option, and any plan/result
// caching between the timed runs would poison that measurement.

#include <iostream>

#include "bench/bench_common.h"
#include "sparql/executor.h"

int main() {
  using namespace re2xolap;
  using namespace re2xolap::bench;

  constexpr uint64_t kTimeoutMs = 10000;
  std::cout << "=== Ablation: join reordering in the SPARQL executor ===\n\n";
  util::TablePrinter t({"Dataset", "Query", "Planned (ms)",
                        "Parse-order (ms)", "Speedup", "Rows"});

  for (const std::string& name : AllDatasets()) {
    BenchEnv env = MakeEnv(name, DefaultObservations(name) / 2);
    core::Reolap reolap(env.dataset.store.get(), env.vsg.get(),
                        env.text.get());
    util::Rng rng(17);

    for (int i = 0; i < 3; ++i) {
      auto tuple = SampleExampleTuple(env, 2, rng);
      if (tuple.empty()) continue;
      auto queries = reolap.Synthesize(tuple);
      if (!queries.ok() || queries->empty()) continue;
      core::ExploreState state = core::InitialState((*queries)[0]);
      // One disaggregation makes the BGP large enough for ordering to
      // matter.
      auto dis = core::Disaggregate(*env.vsg, env.store(), state);
      if (!dis.empty()) state = dis[dis.size() / 2];

      sparql::ExecOptions planned, parse_order;
      planned.timeout_millis = kTimeoutMs;
      parse_order.timeout_millis = kTimeoutMs;
      parse_order.plan.use_join_reordering = false;

      // Adversarial pattern order for the unplanned run: hierarchy
      // patterns (not mentioning ?obs) first, so naive execution starts
      // with a near-cartesian prefix. A SPARQL author can write patterns
      // in any order; the planner must not depend on a friendly one.
      sparql::SelectQuery adversarial = state.query;
      std::stable_sort(
          adversarial.patterns.begin(), adversarial.patterns.end(),
          [](const sparql::TriplePatternAst& a,
             const sparql::TriplePatternAst& b) {
            auto mentions_obs = [](const sparql::TriplePatternAst& p) {
              return sparql::IsVar(p.s) && sparql::AsVar(p.s).name == "obs";
            };
            return !mentions_obs(a) && mentions_obs(b);
          });

      util::WallTimer timer;
      auto a = sparql::Execute(env.store(), adversarial, planned);
      double planned_ms = timer.ElapsedMillis();
      timer.Restart();
      auto b = sparql::Execute(env.store(), adversarial, parse_order);
      double parse_ms = timer.ElapsedMillis();

      std::string rows = a.ok() ? std::to_string(a->row_count()) : "timeout";
      if (b.ok() && a.ok() && a->row_count() != b->row_count()) {
        rows += " (MISMATCH!)";
      }
      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.1fx",
                    planned_ms > 0 ? parse_ms / planned_ms : 0.0);
      t.AddRow({name, "q" + std::to_string(i), Ms(planned_ms),
                Ms(b.ok() ? parse_ms : static_cast<double>(kTimeoutMs)),
                speedup, rows});
    }
  }
  t.Print(std::cout);
  std::cout << "\nShape check: identical results; the planner's "
               "selectivity ordering keeps OLAP BGPs fast even when the "
               "parse order starts from an unselective pattern.\n";
  return 0;
}
