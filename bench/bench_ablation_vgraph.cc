// Ablation for the paper's Section 5.2 claim: the in-memory Virtual Schema
// Graph removes per-synthesis trips to the triplestore. We compare ReOLAP
// with the bootstrap-time virtual graph against a variant that re-derives
// the schema from the store on every synthesis call (what a system without
// the optimization effectively pays in schema discovery queries).

#include <iostream>

#include "bench/bench_common.h"

int main() {
  using namespace re2xolap;
  using namespace re2xolap::bench;

  constexpr int kQueries = 8;
  std::cout << "=== Ablation: Virtual Schema Graph vs per-query schema "
               "crawling ===\n\n";
  util::TablePrinter t({"Dataset", "With VGraph (ms/synthesis)",
                        "Re-crawl per query (ms/synthesis)", "Speedup"});

  for (const std::string& name : AllDatasets()) {
    BenchEnv env = MakeEnv(name, DefaultObservations(name) / 2);
    util::Rng rng(5);
    std::vector<std::vector<std::string>> tuples;
    for (int i = 0; i < kQueries; ++i) {
      auto tuple = SampleExampleTuple(env, 1 + (i % 2), rng);
      if (!tuple.empty()) tuples.push_back(std::move(tuple));
    }

    // With the bootstrap-time virtual graph.
    core::Reolap reolap(env.dataset.store.get(), env.vsg.get(),
                        env.text.get());
    util::WallTimer timer;
    for (const auto& tuple : tuples) reolap.Synthesize(tuple).ok();
    double with_vgraph = timer.ElapsedMillis() / tuples.size();

    // Naive: rebuild the schema knowledge from the store per synthesis.
    timer.Restart();
    for (const auto& tuple : tuples) {
      auto vsg = core::VirtualSchemaGraph::Build(
          env.store(), env.dataset.spec.observation_class);
      if (!vsg.ok()) continue;
      core::Reolap naive(env.dataset.store.get(), &*vsg, env.text.get());
      naive.Synthesize(tuple).ok();
    }
    double without = timer.ElapsedMillis() / tuples.size();

    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx",
                  with_vgraph > 0 ? without / with_vgraph : 0.0);
    t.AddRow({name, Ms(with_vgraph), Ms(without), speedup});
  }
  t.Print(std::cout);
  std::cout << "\nShape check: amortizing schema discovery at bootstrap "
               "keeps interactive synthesis orders of magnitude cheaper.\n";
  return 0;
}
