#ifndef RE2XOLAP_BENCH_BENCH_COMMON_H_
#define RE2XOLAP_BENCH_BENCH_COMMON_H_

// Shared infrastructure for the experiment harnesses in bench/: dataset
// construction (cached per process), bootstrap, and example-tuple sampling
// mirroring the paper's workload generation (Section 7.1: "we randomly
// selected dimension members from each dimension and combined them").
//
// Observation counts are scaled down from the paper's 15M (Eurostat/
// Production) and 541k (DBpedia): the machine budget is a single core, and
// the paper's own claim — which bench_fig6/7 demonstrate explicitly — is
// that synthesis cost depends on schema complexity, not observation count.
// Override the default scale with the RE2X_BENCH_OBS environment variable.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/reolap.h"
#include "core/session.h"
#include "core/virtual_schema_graph.h"
#include "obs/metrics.h"
#include "qb/datasets.h"
#include "qb/generator.h"
#include "rdf/text_index.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace re2xolap::bench {

/// A fully bootstrapped dataset: store + virtual schema graph + text index.
struct BenchEnv {
  qb::GeneratedDataset dataset;
  std::unique_ptr<core::VirtualSchemaGraph> vsg;
  std::unique_ptr<rdf::TextIndex> text;
  double generate_millis = 0;
  double vsg_millis = 0;
  double text_millis = 0;
  core::VsgBuildStats vsg_stats;

  const rdf::TripleStore& store() const { return *dataset.store; }
};

inline uint64_t DefaultObservations(const std::string& dataset_name) {
  if (const char* env = std::getenv("RE2X_BENCH_OBS")) {
    return std::strtoull(env, nullptr, 10);
  }
  // DBpedia is the smallest in the paper too (541k vs 15M).
  return dataset_name == "DBpedia" ? 60000 : 120000;
}

inline qb::DatasetSpec SpecByName(const std::string& name, uint64_t obs) {
  if (name == "Eurostat") return qb::EurostatSpec(obs);
  if (name == "Production") return qb::ProductionSpec(obs);
  if (name == "DBpedia") return qb::DbpediaSpec(obs);
  std::cerr << "unknown dataset " << name << "\n";
  std::exit(1);
}

/// Generates and bootstraps a dataset (no caching; callers keep the env
/// alive for the binary's lifetime).
inline BenchEnv MakeEnv(const std::string& name, uint64_t observations) {
  BenchEnv env;
  util::WallTimer timer;
  auto ds = qb::Generate(SpecByName(name, observations));
  if (!ds.ok()) {
    std::cerr << "generate " << name << " failed: " << ds.status() << "\n";
    std::exit(1);
  }
  env.dataset = std::move(ds).value();
  env.generate_millis = timer.ElapsedMillis();

  timer.Restart();
  auto vsg = core::VirtualSchemaGraph::Build(
      env.store(), env.dataset.spec.observation_class, {}, &env.vsg_stats);
  if (!vsg.ok()) {
    std::cerr << "bootstrap " << name << " failed: " << vsg.status() << "\n";
    std::exit(1);
  }
  env.vsg = std::make_unique<core::VirtualSchemaGraph>(std::move(vsg).value());
  env.vsg_millis = timer.ElapsedMillis();

  timer.Restart();
  env.text = std::make_unique<rdf::TextIndex>(env.store());
  env.text_millis = timer.ElapsedMillis();
  return env;
}

/// Samples an example tuple of `k` values. To mirror the paper (whose
/// random member combinations always admit non-empty queries on the dense
/// real KGs), values are drawn from a randomly chosen observation: for each
/// of k distinct dimensions we take the observation's base member or,
/// with probability 1/2, a hierarchy ancestor — then use its label.
inline std::vector<std::string> SampleExampleTuple(const BenchEnv& env,
                                                   size_t k,
                                                   util::Rng& rng) {
  const rdf::TripleStore& store = env.store();
  const core::VirtualSchemaGraph& vsg = *env.vsg;
  rdf::TermId type = store.Lookup(rdf::Term::Iri(
      "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"));
  rdf::TermId cls =
      store.Lookup(rdf::Term::Iri(env.dataset.spec.observation_class));
  auto typings = store.Match({rdf::kInvalidTermId, type, cls});
  if (typings.empty() || k == 0) return {};

  rdf::TermId label_pred = store.Lookup(rdf::Term::Iri(qb::kHasLabel));

  for (int attempt = 0; attempt < 64; ++attempt) {
    rdf::TermId obs = typings[rng.Uniform(typings.size())].s;
    // Collect the observation's (dimension predicate, member) pairs.
    std::vector<rdf::EncodedTriple> dims;
    for (const rdf::EncodedTriple& t :
         store.Match({obs, rdf::kInvalidTermId, rdf::kInvalidTermId})) {
      if (t.p == type) continue;
      if (!store.term(t.o).is_iri()) continue;
      dims.push_back(t);
    }
    if (dims.size() < k) continue;
    // Choose k distinct dimensions.
    for (size_t i = 0; i < dims.size(); ++i) {
      std::swap(dims[i], dims[i + rng.Uniform(dims.size() - i)]);
    }
    std::vector<std::string> tuple;
    for (size_t i = 0; i < k; ++i) {
      rdf::TermId member = dims[i].o;
      // Optionally climb the hierarchy: follow a random IRI-valued edge.
      for (int hop = 0; hop < 2 && rng.Bernoulli(0.5); ++hop) {
        std::vector<rdf::TermId> ups;
        for (const rdf::EncodedTriple& t :
             store.Match({member, rdf::kInvalidTermId, rdf::kInvalidTermId})) {
          if (store.term(t.o).is_iri() && !vsg.NodesOfMember(t.o).empty()) {
            ups.push_back(t.o);
          }
        }
        if (ups.empty()) break;
        member = ups[rng.Uniform(ups.size())];
      }
      // Label of the member.
      std::string label;
      for (const rdf::EncodedTriple& t :
           store.Match({member, label_pred, rdf::kInvalidTermId})) {
        if (store.term(t.o).is_literal()) {
          label = store.term(t.o).value;
          break;
        }
      }
      if (label.empty()) break;
      tuple.push_back(label);
    }
    if (tuple.size() == k) return tuple;
  }
  return {};
}

/// Formats milliseconds with 1 decimal.
inline std::string Ms(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

inline std::string Mb(size_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(bytes) / 1e6);
  return buf;
}

inline const std::vector<std::string>& AllDatasets() {
  static const std::vector<std::string>* kNames =
      new std::vector<std::string>{"Eurostat", "Production", "DBpedia"};
  return *kNames;
}

/// Minimal machine-readable perf snapshot writer: accumulates flat JSON
/// records and writes `{"bench": <name>, "records": [...]}` to a file, so
/// the perf trajectory is diffable across PRs without parsing tables.
class JsonBenchLog {
 public:
  explicit JsonBenchLog(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  class Record {
   public:
    Record& Str(const std::string& key, const std::string& value) {
      Add(key, "\"" + value + "\"");
      return *this;
    }
    Record& Num(const std::string& key, double value) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.3f", value);
      Add(key, buf);
      return *this;
    }
    Record& Int(const std::string& key, long long value) {
      Add(key, std::to_string(value));
      return *this;
    }
    Record& Bool(const std::string& key, bool value) {
      Add(key, value ? "true" : "false");
      return *this;
    }

   private:
    friend class JsonBenchLog;
    void Add(const std::string& key, const std::string& raw) {
      if (!fields_.empty()) fields_ += ", ";
      fields_ += "\"" + key + "\": " + raw;
    }
    std::string fields_;
  };

  Record& AddRecord() {
    records_.emplace_back();
    return records_.back();
  }

  /// Writes the log to `path`; prints a one-line confirmation. Besides
  /// the records, the file carries a snapshot of the process-wide metrics
  /// registry (counters / gauges / latency histograms) under a "metrics"
  /// key, so every BENCH_*.json records what the run actually did —
  /// existing consumers that only read "bench"/"records" are unaffected.
  void Write(const std::string& path) const {
    std::ofstream out(path);
    out << "{\"bench\": \"" << bench_name_ << "\", \"records\": [\n";
    for (size_t i = 0; i < records_.size(); ++i) {
      out << "  {" << records_[i].fields_ << "}"
          << (i + 1 < records_.size() ? ",\n" : "\n");
    }
    out << "],\n\"metrics\": " << obs::MetricsRegistry::Global().ToJson()
        << "}\n";
    std::cout << "wrote " << path << " (" << records_.size()
              << " records)\n";
  }

 private:
  std::string bench_name_;
  std::vector<Record> records_;
};

}  // namespace re2xolap::bench

#endif  // RE2XOLAP_BENCH_BENCH_COMMON_H_
