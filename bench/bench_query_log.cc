// Overhead budget of the query telemetry layer (obs/query_log.h): the
// flight recorder is always on, so its cost rides on every query the
// system serves. This harness measures the steady-state engine cache-hit
// path — the most latency-sensitive path instrumentation touches — with
// the recorder enabled vs disabled (JSONL sink off in both), plus the
// raw ring-append cost, and records the deltas in BENCH_query_log.json.
// Acceptance: < 2% regression on the cache-hit path at default settings.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "engine/query_engine.h"
#include "obs/query_log.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace re2xolap;
using namespace re2xolap::bench;

constexpr char kHitQuery[] = R"(
    SELECT ?dest (SUM(?v) AS ?total) WHERE {
      ?obs <http://example.org/eurostat/countryDestination> ?dest .
      ?obs <http://example.org/eurostat/numApplicants> ?v .
    } GROUP BY ?dest)";

/// Mean nanoseconds per engine ExecuteText over `iters` cache hits.
double HitRoundNs(engine::QueryEngine& engine, int iters) {
  util::WallTimer timer;
  for (int i = 0; i < iters; ++i) {
    auto r = engine.ExecuteText(kHitQuery);
    if (!r.ok()) {
      std::cerr << "hit query failed: " << r.status() << "\n";
      std::exit(1);
    }
  }
  return timer.ElapsedMillis() * 1e6 / iters;
}

/// Mean nanoseconds per QueryLog::Append over `iters` appends.
double AppendRoundNs(int iters) {
  util::WallTimer timer;
  for (int i = 0; i < iters; ++i) {
    obs::QueryRecord rec;
    rec.op = obs::QueryOp::kEngineExecute;
    rec.fingerprint = static_cast<uint64_t>(i);
    rec.rows_out = 5;
    rec.total_millis = 0.01;
    obs::QueryLog::Global().Append(rec);
  }
  return timer.ElapsedMillis() * 1e6 / iters;
}

std::string Ns(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

std::string Pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.2f%%", v);
  return buf;
}

}  // namespace

int main() {
  BenchEnv env = MakeEnv("Eurostat", 60000);
  engine::QueryEngine engine(env.store());
  // Warm: first run is the miss that populates the cache.
  if (auto r = engine.ExecuteText(kHitQuery); !r.ok()) {
    std::cerr << "warmup failed: " << r.status() << "\n";
    return 1;
  }

  obs::QueryLog& log = obs::QueryLog::Global();
  // Default settings, JSONL sink off (the acceptance configuration).
  log.Configure(obs::QueryLogConfig{});

  // Interleave recorder-on and recorder-off rounds and pair them up:
  // each round yields one (on - off) delta taken under near-identical
  // ambient conditions, and the reported overhead is the MEDIAN paired
  // delta. Comparing two independent aggregates instead would let slow
  // drift (frequency scaling, co-tenant load) land on one side of a
  // difference this small and swamp it. Rounds are short and numerous so
  // an interference burst lands inside a few pairs (outliers the median
  // discards) instead of stretching across half the samples, and the
  // on/off order alternates per pair so within-pair drift cancels too.
  constexpr int kRounds = 41;
  constexpr int kItersPerRound = 5000;
  std::vector<double> deltas, on_rounds, off_rounds;
  HitRoundNs(engine, kItersPerRound);  // one discarded warm round
  for (int round = 0; round < kRounds; ++round) {
    const bool on_first = (round % 2) == 0;
    log.SetEnabled(on_first);
    const double first = HitRoundNs(engine, kItersPerRound);
    log.SetEnabled(!on_first);
    const double second = HitRoundNs(engine, kItersPerRound);
    const double on = on_first ? first : second;
    const double off = on_first ? second : first;
    on_rounds.push_back(on);
    off_rounds.push_back(off);
    deltas.push_back(on - off);
  }
  log.SetEnabled(true);
  std::sort(deltas.begin(), deltas.end());
  std::sort(on_rounds.begin(), on_rounds.end());
  std::sort(off_rounds.begin(), off_rounds.end());
  const double best_on = on_rounds[kRounds / 2];
  const double best_off = off_rounds[kRounds / 2];
  const double median_delta = deltas[kRounds / 2];
  const double hit_overhead_pct = 100.0 * median_delta / best_off;

  // Raw ring append, enabled vs disabled (disabled = one relaxed load).
  constexpr int kAppendIters = 2000000;
  AppendRoundNs(kAppendIters / 10);  // warm
  const double append_on_ns = AppendRoundNs(kAppendIters);
  log.SetEnabled(false);
  const double append_off_ns = AppendRoundNs(kAppendIters);
  log.SetEnabled(true);

  util::TablePrinter t({"case", "recorder on", "recorder off", "delta"});
  t.AddRow({"engine cache hit (ns/query)", Ns(best_on), Ns(best_off),
            Pct(hit_overhead_pct)});
  t.AddRow({"ring append (ns/record)", Ns(append_on_ns), Ns(append_off_ns),
            "-"});
  t.Print(std::cout);
  std::cout << "\nAcceptance: cache-hit overhead "
            << Pct(hit_overhead_pct) << " (budget < 2%). The append is a "
            << "relaxed id fetch_add plus one sharded-lock 120-byte ring "
            << "write; cache hits reuse the fingerprint stored in the "
            << "result-cache entry, so the hit path never rehashes the "
            << "query text.\n";

  JsonBenchLog blog("query_log_overhead");
  blog.AddRecord()
      .Str("case", "engine_cache_hit")
      .Num("recorder_on_ns", best_on)
      .Num("recorder_off_ns", best_off)
      .Num("median_paired_delta_ns", median_delta)
      .Num("overhead_pct", hit_overhead_pct)
      .Bool("within_budget", hit_overhead_pct < 2.0)
      .Int("iters_per_round", kItersPerRound)
      .Int("rounds", kRounds);
  blog.AddRecord()
      .Str("case", "ring_append")
      .Num("enabled_ns", append_on_ns)
      .Num("disabled_ns", append_off_ns)
      .Int("iters", kAppendIters);
  blog.Write("BENCH_query_log.json");
  return hit_overhead_pct < 2.0 ? 0 : 1;
}
