// Reproduces the paper's Table 1: the capability comparison between
// RE2xOLAP and the related approaches. For the two systems implemented in
// this repository (RE2xOLAP and the SPARQLByE-style baseline) each claim
// is *verified live* against the Figure-1-style KG rather than merely
// asserted; the Spade and REGAL columns reproduce the paper's published
// characterization.

#include <iostream>

#include "core/reolap.h"
#include "core/session.h"
#include "core/sparqlbye_baseline.h"
#include "qb/datasets.h"
#include "qb/generator.h"
#include "rdf/text_index.h"
#include "sparql/executor.h"
#include "util/table_printer.h"

int main() {
  using namespace re2xolap;

  // Live verification on a small Eurostat instance.
  auto ds = qb::Generate(qb::EurostatSpec(5000));
  if (!ds.ok()) {
    std::cerr << ds.status() << "\n";
    return 1;
  }
  auto vsg = core::VirtualSchemaGraph::Build(*ds->store,
                                             ds->spec.observation_class);
  if (!vsg.ok()) {
    std::cerr << vsg.status() << "\n";
    return 1;
  }
  rdf::TextIndex text(*ds->store);
  core::Reolap reolap(ds->store.get(), &*vsg, &text);
  core::SparqlByEBaseline baseline(ds->store.get(), &text);

  // RE2xOLAP capabilities, exercised.
  auto queries = reolap.Synthesize({"Germany", "2014"});
  bool re2x_agg = queries.ok() && !queries->empty() &&
                  (*queries)[0].query.has_aggregates();
  bool re2x_partial = queries.ok() && !queries->empty();  // no measures given
  bool re2x_reform = false;
  if (queries.ok() && !queries->empty()) {
    core::ExploreState st = core::InitialState((*queries)[0]);
    re2x_reform = !core::Disaggregate(*vsg, *ds->store, st).empty();
  }

  // Baseline capabilities, exercised.
  auto bq = baseline.Synthesize({"Germany", "2014"});
  bool bye_input = bq.ok();
  bool bye_agg = bq.ok() && bq->has_aggregates();

  auto mark = [](bool b) { return b ? std::string("yes") : std::string("-"); };

  std::cout << "=== Table 1: comparison of related approaches ===\n"
               "(RE2xOLAP and SPARQLByE columns verified live; Spade and "
               "REGAL as characterized in the paper)\n\n";
  util::TablePrinter t(
      {"Capability", "RE2xOLAP", "SPARQLByE [8]", "Spade [6]", "REGAL [51]"});
  t.AddRow({"RDF", "yes", "yes", "yes", "-"});
  t.AddRow({"Large KGs", "yes", "yes", "-", "-"});
  t.AddRow({"Aggregations", mark(re2x_agg), mark(bye_agg), "yes", "yes"});
  t.AddRow({"Reformulations", mark(re2x_reform), "-", "-", "-"});
  t.AddRow({"User Input", mark(queries.ok()), mark(bye_input), "-", "yes"});
  t.AddRow({"Partial Input", mark(re2x_partial), mark(bye_input), "-", "-"});
  t.Print(std::cout);
  std::cout << "\nLive checks: RE2xOLAP synthesized "
            << (queries.ok() ? queries->size() : 0)
            << " aggregate queries from a partial example (no measure "
               "values) and produced reformulations; the by-example "
               "baseline synthesized a BGP but no aggregation.\n";
  return 0;
}
