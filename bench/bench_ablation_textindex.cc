// Ablation for the full-text index (paper Section 7.1: "the triplestore
// employs a traditional full-text index to provide a faster response time
// for the task of resolving keywords to IRIs"). We compare the inverted
// keyword index against a full scan over every string literal in the
// dictionary.

#include <iostream>

#include "bench/bench_common.h"
#include "util/string_utils.h"

namespace {

// Keyword resolution by scanning all string literals (no index).
std::vector<re2xolap::rdf::TermId> ScanMatch(
    const re2xolap::rdf::TripleStore& store, const std::string& query) {
  std::vector<re2xolap::rdf::TermId> out;
  store.dictionary().ForEach(
      [&](re2xolap::rdf::TermId id, const re2xolap::rdf::Term& t) {
        if (!t.is_literal() ||
            t.literal_type != re2xolap::rdf::LiteralType::kString) {
          return;
        }
        if (re2xolap::util::ContainsIgnoreCase(t.value, query)) {
          out.push_back(id);
        }
      });
  return out;
}

}  // namespace

int main() {
  using namespace re2xolap;
  using namespace re2xolap::bench;

  const std::vector<std::string> kQueries = {
      "Germany", "2014", "Asia", "October 2014", "High income"};
  constexpr int kReps = 200;

  std::cout << "=== Ablation: inverted text index vs full literal scan "
               "===\n\n";
  util::TablePrinter t({"Dataset", "Indexed literals", "Index (us/lookup)",
                        "Scan (us/lookup)", "Speedup"});

  for (const std::string& name : AllDatasets()) {
    BenchEnv env = MakeEnv(name, DefaultObservations(name) / 2);

    util::WallTimer timer;
    size_t checksum_idx = 0;
    for (int r = 0; r < kReps; ++r) {
      for (const std::string& q : kQueries) {
        checksum_idx += env.text->Match(q).size();
      }
    }
    double index_us =
        timer.ElapsedMicros() / (kReps * kQueries.size());

    timer.Restart();
    size_t checksum_scan = 0;
    for (int r = 0; r < kReps / 20 + 1; ++r) {  // scans are slow; fewer reps
      for (const std::string& q : kQueries) {
        checksum_scan += ScanMatch(env.store(), q).size();
      }
    }
    double scan_us =
        timer.ElapsedMicros() / ((kReps / 20 + 1) * kQueries.size());

    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.0fx",
                  index_us > 0 ? scan_us / index_us : 0.0);
    t.AddRow({name, std::to_string(env.text->indexed_literal_count()),
              Ms(index_us), Ms(scan_us), speedup});
    // Keep the checksums live so the loops are not optimized away.
    if (checksum_idx == 0 && checksum_scan == ~size_t{0}) std::cout << "";
  }
  t.Print(std::cout);
  std::cout << "\nShape check: the index keeps keyword->member resolution "
               "(Algorithm 1, line 3) effectively constant-time, enabling "
               "interactive synthesis on KGs with many literals.\n";
  return 0;
}
