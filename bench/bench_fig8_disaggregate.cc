// Reproduces the paper's Figure 8a/8b: execution time and number of result
// tuples for the initial synthesized query (Orig.) and after one (Dis.1)
// and two (Dis.2) Disaggregate refinements, varying input size 1–4.
//
// Paper reference shapes:
//   8a: the Orig. query is slowest for input size 1 (one coarse grouping
//       over everything) and gets faster as inputs grow (more selective);
//       each Disaggregate adds a dimension and increases running time, most
//       prominently for size-1 inputs.
//   8b: result counts grow with disaggregation; at size 4 on Production
//       they stop growing (combinations have 0/1 observations).

#include <iostream>

#include "bench/bench_common.h"
#include "engine/query_engine.h"
#include "sparql/executor.h"

int main() {
  using namespace re2xolap;
  using namespace re2xolap::bench;

  constexpr int kInputsPerSize = 6;
  constexpr size_t kMaxSize = 4;
  constexpr uint64_t kTimeoutMs = 60000;

  std::cout << "=== Figure 8a/8b: query + disaggregation execution ===\n\n";
  util::TablePrinter t8a({"Dataset", "Input size", "Orig (ms)", "Dis.1 (ms)",
                          "Dis.2 (ms)", "Dis refine-gen (ms)"});
  util::TablePrinter t8b({"Dataset", "Input size", "Orig #tuples",
                          "Dis.1 #tuples", "Dis.2 #tuples"});

  for (const std::string& name : AllDatasets()) {
    BenchEnv env = MakeEnv(name, DefaultObservations(name));
    engine::QueryEngine engine(env.store());
    core::Reolap reolap(env.dataset.store.get(), env.vsg.get(),
                        env.text.get(), &engine);
    util::Rng rng(99);
    sparql::ExecOptions exec;
    exec.timeout_millis = kTimeoutMs;

    for (size_t size = 1; size <= kMaxSize; ++size) {
      double ms[3] = {0, 0, 0};
      double tuples[3] = {0, 0, 0};
      double refine_ms = 0;
      int runs = 0;
      for (int i = 0; i < kInputsPerSize; ++i) {
        std::vector<std::string> tuple = SampleExampleTuple(env, size, rng);
        if (tuple.empty()) continue;
        auto queries = reolap.Synthesize(tuple);
        if (!queries.ok() || queries->empty()) continue;
        core::ExploreState state = core::InitialState((*queries)[0]);

        bool ok = true;
        core::ExploreState current = state;
        for (int depth = 0; depth <= 2 && ok; ++depth) {
          util::WallTimer timer;
          auto table = engine.Execute(current.query, exec);
          if (!table.ok()) {
            ok = false;
            break;
          }
          ms[depth] += timer.ElapsedMillis();
          tuples[depth] += static_cast<double>((*table)->row_count());
          if (depth < 2) {
            timer.Restart();
            auto refs =
                core::Disaggregate(*env.vsg, env.store(), current);
            refine_ms += timer.ElapsedMillis();
            if (refs.empty()) {
              ok = false;
              break;
            }
            // Deterministically pick a refinement mid-list (first tends to
            // be a base-level monster on DBpedia).
            current = refs[refs.size() / 2];
          }
        }
        if (ok) ++runs;
      }
      if (runs == 0) continue;
      t8a.AddRow({name, std::to_string(size), Ms(ms[0] / runs),
                  Ms(ms[1] / runs), Ms(ms[2] / runs),
                  Ms(refine_ms / (2 * runs))});
      t8b.AddRow({name, std::to_string(size), Ms(tuples[0] / runs),
                  Ms(tuples[1] / runs), Ms(tuples[2] / runs)});
    }
  }
  std::cout << "--- Fig 8a: execution time (avg per query) ---\n";
  t8a.Print(std::cout);
  std::cout << "\n--- Fig 8b: number of result tuples (avg per query) ---\n";
  t8b.Print(std::cout);
  std::cout << "\nShape check: generating Disaggregate refinements is "
               "near-free (<100 ms, virtual-graph only); execution time and "
               "tuple counts grow with each added dimension, most strongly "
               "for size-1 inputs; at size 4 added dimensions barely grow "
               "the result (0/1 observations per combination).\n";
  return 0;
}
