// Ablation for incremental virtual-graph maintenance (paper Section 7.1:
// "if the schema does not change and only new data is added, all the
// in-memory data structures are updated efficiently without the need for
// re-computation"). We append a batch of observations to a bootstrapped
// Eurostat store and compare VirtualSchemaGraph::Update against a full
// re-Build.

#include <iostream>

#include "bench/bench_common.h"

int main() {
  using namespace re2xolap;
  using namespace re2xolap::bench;

  std::cout << "=== Ablation: incremental VGraph update vs full rebuild "
               "===\n\n";
  util::TablePrinter t({"Base #obs", "Appended", "Update (ms)",
                        "Full rebuild (ms)", "Speedup", "Members equal"});

  for (uint64_t base : {20000u, 80000u}) {
    for (uint64_t append : {1000u, 10000u}) {
      // Generate base + appended in one go, bootstrap on a prefix by
      // regenerating: simpler — generate the base, bootstrap, then
      // generate a larger dataset with the same seed and re-freeze: the
      // first `base` observations are identical (deterministic RNG usage
      // per observation is identical only for the shared prefix).
      BenchEnv env = MakeEnv("Eurostat", base);
      // Append new observations directly to the frozen store.
      util::Rng rng(777);
      const qb::DatasetSpec& spec = env.dataset.spec;
      rdf::TripleStore& store = *env.dataset.store;
      std::vector<rdf::TermId> appended_ids;
      for (uint64_t n = 0; n < append; ++n) {
        rdf::Term obs = rdf::Term::Iri(spec.iri_base + "obs/new/" +
                                       std::to_string(n));
        appended_ids.push_back(store.Intern(obs));
        store.Add(obs, rdf::Term::Iri(qb::kRdfType),
                  rdf::Term::Iri(spec.observation_class));
        for (const qb::DimensionSpec& dim : spec.dimensions) {
          const qb::LevelSpec* base_level = spec.FindLevel(dim.base_level);
          size_t member = rng.Uniform(base_level->member_count());
          store.Add(obs, rdf::Term::Iri(spec.iri_base + dim.predicate),
                    rdf::Term::Iri(spec.iri_base + dim.base_level + "/" +
                                   std::to_string(member)));
        }
        for (const std::string& mp : spec.measure_predicates) {
          store.Add(obs, rdf::Term::Iri(spec.iri_base + mp),
                    rdf::Term::IntegerLiteral(
                        1 + static_cast<int64_t>(rng.Uniform(10000))));
        }
      }
      store.Freeze();

      util::WallTimer timer;
      core::VirtualSchemaGraph updated = *env.vsg;  // copy, then update
      util::Status st =
          updated.Update(store, spec.observation_class, &appended_ids);
      double update_ms = timer.ElapsedMillis();
      if (!st.ok()) {
        std::cerr << "update failed: " << st << "\n";
        return 1;
      }

      timer.Restart();
      auto rebuilt =
          core::VirtualSchemaGraph::Build(store, spec.observation_class);
      double rebuild_ms = timer.ElapsedMillis();
      if (!rebuilt.ok()) {
        std::cerr << "rebuild failed: " << rebuilt.status() << "\n";
        return 1;
      }

      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.1fx",
                    update_ms > 0 ? rebuild_ms / update_ms : 0.0);
      t.AddRow({std::to_string(base), std::to_string(append), Ms(update_ms),
                Ms(rebuild_ms), speedup,
                updated.total_members() == rebuilt->total_members() ? "yes"
                                                                    : "NO"});
    }
  }
  t.Print(std::cout);
  std::cout << "\nShape check: the incremental update re-classifies "
               "observations but skips the hierarchy crawl for known "
               "members, and it never rebuilds paths — matching the "
               "paper's claim that appends need no re-computation.\n";
  return 0;
}
