// Reproduces the paper's Figure 9: (a) running time to GENERATE query
// refinements with TopK, Percentile, and Similarity, applied to the
// original synthesized queries and after 1 and 2 Disaggregate steps
// (larger result sets); (b) the number of refinements produced.
//
// Paper reference shapes:
//   9a: TopK/Percentile are sub-second and scale linearly with the number
//       of tuples; Similarity is the most expensive method (it processes
//       all tuples, not just example-matching ones) and is the one that
//       can blow up on DBpedia's M-to-N hierarchies (their endpoint hit a
//       15-minute timeout at input sizes 3-4).
//   9b: TopK produces a fixed 2 x measures x aggregations refinements
//       (when anchored); Similarity a fixed count; Percentile a variable,
//       data-dependent count.

#include <iostream>

#include "bench/bench_common.h"
#include "engine/query_engine.h"
#include "sparql/executor.h"

int main() {
  using namespace re2xolap;
  using namespace re2xolap::bench;

  constexpr int kInputs = 6;
  constexpr uint64_t kExecTimeoutMs = 60000;

  std::cout << "=== Figure 9: refinement generation ===\n\n";
  util::TablePrinter t9a({"Dataset", "Depth", "Avg #tuples", "TopK (ms)",
                          "Perc (ms)", "Sim (ms)"});
  util::TablePrinter t9b({"Dataset", "Depth", "TopK #refs", "Perc #refs",
                          "Sim #refs"});

  for (const std::string& name : AllDatasets()) {
    BenchEnv env = MakeEnv(name, DefaultObservations(name));
    core::Reolap reolap(env.dataset.store.get(), env.vsg.get(),
                        env.text.get());
    util::Rng rng(7);
    sparql::ExecOptions exec;
    exec.timeout_millis = kExecTimeoutMs;

    // Stats per disaggregation depth 0 (Orig), 1 (Dis.1), 2 (Dis.2).
    struct Acc {
      double tuples = 0, topk_ms = 0, perc_ms = 0, sim_ms = 0;
      double topk_n = 0, perc_n = 0, sim_n = 0;
      int runs = 0;
    } acc[3];

    for (int i = 0; i < kInputs; ++i) {
      // Mix of input sizes 1 and 2 (the paper's interactive sweet spot).
      size_t size = 1 + (i % 2);
      std::vector<std::string> tuple = SampleExampleTuple(env, size, rng);
      if (tuple.empty()) continue;
      auto queries = reolap.Synthesize(tuple);
      if (!queries.ok() || queries->empty()) continue;
      core::ExploreState state = core::InitialState((*queries)[0]);

      for (int depth = 0; depth <= 2; ++depth) {
        auto table = sparql::Execute(env.store(), state.query, exec);
        if (!table.ok()) break;
        Acc& a = acc[depth];
        a.tuples += static_cast<double>(table->row_count());

        util::WallTimer timer;
        auto topk = core::SubsetTopK(env.store(), state, *table);
        a.topk_ms += timer.ElapsedMillis();
        timer.Restart();
        auto perc = core::SubsetPercentile(env.store(), state, *table);
        a.perc_ms += timer.ElapsedMillis();
        timer.Restart();
        auto sim = core::SimilaritySearch(env.store(), state, *table);
        a.sim_ms += timer.ElapsedMillis();

        if (topk.ok()) a.topk_n += static_cast<double>(topk->size());
        if (perc.ok()) a.perc_n += static_cast<double>(perc->size());
        if (sim.ok()) a.sim_n += static_cast<double>(sim->size());
        ++a.runs;

        if (depth < 2) {
          auto dis = core::Disaggregate(*env.vsg, env.store(), state);
          if (dis.empty()) break;
          state = dis[dis.size() / 2];
        }
      }
    }
    const char* labels[3] = {"Orig", "Dis.1", "Dis.2"};
    for (int depth = 0; depth <= 2; ++depth) {
      const Acc& a = acc[depth];
      if (a.runs == 0) continue;
      t9a.AddRow({name, labels[depth], Ms(a.tuples / a.runs),
                  Ms(a.topk_ms / a.runs), Ms(a.perc_ms / a.runs),
                  Ms(a.sim_ms / a.runs)});
      t9b.AddRow({name, labels[depth], Ms(a.topk_n / a.runs),
                  Ms(a.perc_n / a.runs), Ms(a.sim_n / a.runs)});
    }
  }
  std::cout << "--- Fig 9a: refinement generation time (avg) ---\n";
  t9a.Print(std::cout);
  std::cout << "\n--- Fig 9b: number of refinements produced (avg) ---\n";
  t9b.Print(std::cout);

  // --- Thread sweep: concurrent refinement evaluation ----------------------
  // After one Disaggregate step the session holds N candidate refinements;
  // evaluating all of them (the "preview every refinement" workload) is N
  // independent read-only aggregate queries — the ExRef counterpart of
  // ReOLAP's validation fan-out.
  const std::vector<size_t> kThreadCounts = {1, 2, 4, 8};
  std::cout << "\n=== Parallel refinement evaluation sweep "
               "(hardware_concurrency="
            << util::ThreadPool::DefaultThreads() << ") ===\n\n";
  util::TablePrinter sweep({"Dataset", "Refinements", "Threads",
                            "Eval (ms)", "Speedup", "Rows(total)"});
  util::TablePrinter ablation({"Dataset", "Engine cache", "Pass1 (ms)",
                               "Pass2 (ms)", "Pass2 speedup vs off"});
  JsonBenchLog log("fig9_refinements");

  for (const std::string& name : AllDatasets()) {
    BenchEnv env = MakeEnv(name, DefaultObservations(name));
    core::Reolap reolap(env.dataset.store.get(), env.vsg.get(),
                        env.text.get());
    util::Rng rng(21);
    sparql::ExecOptions exec;
    exec.timeout_millis = kExecTimeoutMs;

    // One synthesized query, then its full Disaggregate frontier.
    std::vector<core::ExploreState> states;
    for (int attempt = 0; attempt < 8 && states.empty(); ++attempt) {
      std::vector<std::string> tuple = SampleExampleTuple(env, 1, rng);
      if (tuple.empty()) continue;
      auto queries = reolap.Synthesize(tuple);
      if (!queries.ok() || queries->empty()) continue;
      core::ExploreState state = core::InitialState((*queries)[0]);
      states = core::Disaggregate(*env.vsg, env.store(), state);
    }
    if (states.empty()) continue;

    double serial_ms = 0;
    size_t serial_rows = 0;
    for (size_t threads : kThreadCounts) {
      util::ThreadPool pool(threads);
      util::WallTimer timer;
      auto tables = core::EvaluateStates(env.store(), states, exec,
                                         threads > 1 ? &pool : nullptr);
      double ms = timer.ElapsedMillis();
      size_t rows = 0;
      for (const auto& t : tables) {
        if (t.ok()) rows += t->row_count();
      }
      if (threads == 1) {
        serial_ms = ms;
        serial_rows = rows;
      }
      double speedup = ms > 0 ? serial_ms / ms : 1.0;
      sweep.AddRow({name, std::to_string(states.size()),
                    std::to_string(threads), Ms(ms), Ms(speedup),
                    std::to_string(rows)});
      log.AddRecord()
          .Str("dataset", name)
          .Int("refinements", static_cast<long long>(states.size()))
          .Int("threads", static_cast<long long>(threads))
          .Num("eval_ms", ms)
          .Num("eval_speedup_vs_1thread", speedup)
          .Int("result_rows", static_cast<long long>(rows))
          .Bool("identical_to_serial", rows == serial_rows);
    }

    // --- Executor-mode delta: the same frontier, uncached, per core -----
    // Raw per-query execution of the Disaggregate frontier under each
    // join core; no engine cache involved, so this is the pure executor
    // cost of the preview workload.
    for (sparql::ExecutorKind kind :
         {sparql::ExecutorKind::kVolcano, sparql::ExecutorKind::kVectorized}) {
      sparql::ExecOptions mode_exec = exec;
      mode_exec.executor = kind;
      size_t rows = 0;
      util::WallTimer timer;
      for (const auto& state : states) {
        auto table = sparql::Execute(env.store(), state.query, mode_exec);
        if (table.ok()) rows += table->row_count();
      }
      log.AddRecord()
          .Str("dataset", name)
          .Str("mode", "executor_delta_uncached")
          .Str("executor",
               kind == sparql::ExecutorKind::kVolcano ? "volcano" : "vectorized")
          .Int("refinements", static_cast<long long>(states.size()))
          .Num("eval_ms", timer.ElapsedMillis())
          .Int("result_rows", static_cast<long long>(rows));
    }

    // --- Cache ablation: the same frontier evaluated twice --------------
    // A session previews a refinement frontier, the user hits Back(), and
    // the frontier is previewed again — the repeated-evaluation workload
    // the engine's result cache targets. Pass 2 without the engine
    // re-executes every query; pass 2 through the engine is pure cache
    // hits.
    double pass_ms_off[2] = {0, 0};
    double pass_ms_on[2] = {0, 0};
    for (int pass = 0; pass < 2; ++pass) {
      util::WallTimer t;
      auto tables = core::EvaluateStates(env.store(), states, exec);
      pass_ms_off[pass] = t.ElapsedMillis();
    }
    // Frontier previews materialize large tables (every refinement over
    // DBpedia's wide hierarchies); give the cache room for the whole
    // frontier so admission limits don't mask the repeat-workload effect.
    engine::EngineConfig engine_config;
    engine_config.result_cache_bytes = 256u << 20;
    engine::QueryEngine engine(env.store(), engine_config);
    size_t rows_on = 0, rows_off = 0;
    {
      auto tables = core::EvaluateStates(env.store(), states, exec);
      for (const auto& t : tables) {
        if (t.ok()) rows_off += t->row_count();
      }
    }
    for (int pass = 0; pass < 2; ++pass) {
      util::WallTimer t;
      auto tables = core::EvaluateStatesCached(engine, states, exec);
      pass_ms_on[pass] = t.ElapsedMillis();
      if (pass == 1) {
        rows_on = 0;
        for (const auto& t : tables) {
          if (t.ok()) rows_on += (*t)->row_count();
        }
      }
    }
    const auto cache = engine.cache_stats();
    for (bool on : {false, true}) {
      const double* p = on ? pass_ms_on : pass_ms_off;
      double speedup = p[1] > 0 ? pass_ms_off[1] / p[1] : 0.0;
      ablation.AddRow({name, on ? "on" : "off", Ms(p[0]), Ms(p[1]),
                       Ms(speedup)});
      log.AddRecord()
          .Str("dataset", name)
          .Str("mode", "cache_ablation")
          .Bool("engine_cache", on)
          .Int("refinements", static_cast<long long>(states.size()))
          .Num("pass1_eval_ms", p[0])
          .Num("pass2_eval_ms", p[1])
          .Num("pass2_speedup_vs_nocache", speedup)
          .Int("result_cache_hits",
               on ? static_cast<long long>(cache.result_hits) : 0)
          .Bool("identical_rows", !on || rows_on == rows_off);
    }
  }
  sweep.Print(std::cout);
  std::cout << "\n=== Engine result-cache ablation (same frontier, two "
               "passes) ===\n\n";
  ablation.Print(std::cout);
  std::cout << "\nExpectation: pass 2 through the engine is served from "
               "the result cache (>=2x over the uncached pass 2; in "
               "practice orders of magnitude).\n";
  log.Write("BENCH_refinements.json");
  std::cout << "\nShape check: all methods scale linearly with the tuple "
               "count and stay sub-second; per refinement produced, "
               "Similarity is by far the most expensive method (TopK "
               "amortizes its sorts over 2 x measures x aggregations "
               "outputs, Similarity builds feature vectors over ALL tuples "
               "for a single reformulation); TopK/Sim counts are fixed by "
               "design, Percentile varies with the data.\n";
  return 0;
}
