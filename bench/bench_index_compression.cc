// Ablation for the index representation: raw sorted EncodedTriple arrays
// (12 bytes/triple/permutation, zero-copy spans) vs the compressed block
// format (1024-triple blocks, delta/vbyte payload + skip table, decoded
// through IndexCursor scratch). Measures per-dataset:
//   (a) index bytes — three raw permutations vs the three block sections,
//       plus end-to-end snapshot file bytes for both formats;
//   (b) query throughput — the executor-core micro shapes (full scan,
//       type scan, star join, chain join) under the vectorized core on a
//       raw and a compressed clone of the same store (identical term ids,
//       so results and scan counters must match exactly).
// Acceptance targets (ISSUE 8): compressed index bytes <= 0.5x raw, query
// time within 15% of the raw store. Records land in
// BENCH_index_compression.json.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench/bench_common.h"
#include "rdf/compressed_index.h"
#include "sparql/executor.h"
#include "sparql/parser.h"
#include "storage/snapshot.h"

namespace {

using re2xolap::sparql::ExecOptions;
using re2xolap::sparql::ExecStats;
using re2xolap::sparql::ExecutorKind;

/// Rebuilds `src` under `format` with identical term ids (interned in id
/// order), so both clones answer queries bit-identically.
std::unique_ptr<re2xolap::rdf::TripleStore> CloneWithFormat(
    const re2xolap::rdf::TripleStore& src, re2xolap::rdf::IndexFormat format) {
  namespace rdf = re2xolap::rdf;
  auto out = std::make_unique<rdf::TripleStore>();
  out->set_index_format(format);
  for (rdf::TermId id = 1; id <= src.dictionary().size(); ++id) {
    out->dictionary().Intern(src.term(id));
  }
  for (const rdf::EncodedTriple& t : src.Match(rdf::TriplePattern{})) {
    out->AddEncoded(t);
  }
  out->Freeze();
  return out;
}

struct Timed {
  double best_ms = 0;
  size_t rows = 0;
  uint64_t scanned = 0;
  bool ok = false;
};

void RunOnce(const re2xolap::rdf::TripleStore& store,
             const re2xolap::sparql::SelectQuery& query, Timed* out) {
  ExecOptions options;
  options.timeout_millis = 60000;
  options.executor = ExecutorKind::kVectorized;
  ExecStats stats;
  re2xolap::util::WallTimer timer;
  auto r = re2xolap::sparql::Execute(store, query, options, &stats);
  double ms = timer.ElapsedMillis();
  if (!r.ok()) {
    out->ok = false;
    return;
  }
  out->best_ms = std::min(out->best_ms, ms);
  out->rows = r->row_count();
  out->scanned = stats.triples_scanned;
}

/// Times `query` on both stores with the reps interleaved (raw, compressed,
/// raw, ...) so machine-load drift hits both sides equally instead of
/// skewing whichever batch ran second.
void RunPair(const re2xolap::rdf::TripleStore& raw,
             const re2xolap::rdf::TripleStore& compressed,
             const re2xolap::sparql::SelectQuery& query, int reps, Timed* r,
             Timed* c) {
  r->best_ms = c->best_ms = 1e18;
  r->ok = c->ok = true;
  for (int i = 0; i < reps && r->ok && c->ok; ++i) {
    RunOnce(raw, query, r);
    RunOnce(compressed, query, c);
  }
}

/// Snapshot file size for `store`, written to and removed from the CWD.
uint64_t SnapshotBytes(const re2xolap::rdf::TripleStore& store,
                       const std::string& path) {
  namespace storage = re2xolap::storage;
  auto st = storage::SaveSnapshot(path, store, nullptr, nullptr, {});
  if (!st.ok()) {
    std::cerr << "snapshot " << path << " failed: " << st << "\n";
    return 0;
  }
  auto info = storage::InspectSnapshot(path);
  std::remove(path.c_str());
  return info.ok() ? info->file_bytes : 0;
}

}  // namespace

int main() {
  using namespace re2xolap;
  using namespace re2xolap::bench;

  constexpr int kReps = 9;
  std::cout << "=== Ablation: raw vs compressed block index ===\n\n";
  util::TablePrinter sizes({"Dataset", "Triples", "Raw idx (MB)",
                            "Compressed idx (MB)", "Ratio", "Snap raw (MB)",
                            "Snap compressed (MB)"});
  util::TablePrinter perf({"Dataset", "Query", "Raw (ms)", "Compressed (ms)",
                           "Rel", "Rows"});
  JsonBenchLog log("index_compression");

  for (const std::string& name : AllDatasets()) {
    auto ds = qb::Generate(SpecByName(name, DefaultObservations(name)));
    if (!ds.ok()) {
      std::cerr << "generate " << name << " failed: " << ds.status() << "\n";
      return 1;
    }
    const std::string& obs_class = ds->spec.observation_class;
    auto raw = CloneWithFormat(*ds->store, rdf::IndexFormat::kRaw);
    auto compressed =
        CloneWithFormat(*ds->store, rdf::IndexFormat::kCompressed);

    // (a) Bytes: three sorted permutations at 12 bytes/triple vs the three
    // block sections (skip table + payload).
    const uint64_t triples = raw->size();
    const uint64_t raw_bytes = 3 * triples * sizeof(rdf::EncodedTriple);
    const uint64_t comp_bytes = compressed->spo_blocks()->byte_size() +
                                compressed->pos_blocks()->byte_size() +
                                compressed->osp_blocks()->byte_size();
    const double ratio =
        raw_bytes > 0 ? static_cast<double>(comp_bytes) / raw_bytes : 0.0;
    const uint64_t snap_raw = SnapshotBytes(*raw, "bench_idx_raw.snap");
    const uint64_t snap_comp =
        SnapshotBytes(*compressed, "bench_idx_compressed.snap");
    char ratio_str[32];
    std::snprintf(ratio_str, sizeof(ratio_str), "%.3f", ratio);
    sizes.AddRow({name, std::to_string(triples), Mb(raw_bytes),
                  Mb(comp_bytes), ratio_str, Mb(snap_raw), Mb(snap_comp)});
    log.AddRecord()
        .Str("dataset", name)
        .Str("kind", "bytes")
        .Int("triples", static_cast<long long>(triples))
        .Int("raw_index_bytes", static_cast<long long>(raw_bytes))
        .Int("compressed_index_bytes", static_cast<long long>(comp_bytes))
        .Num("compression_ratio", ratio)
        .Int("spo_block_bytes",
             static_cast<long long>(compressed->spo_blocks()->byte_size()))
        .Int("pos_block_bytes",
             static_cast<long long>(compressed->pos_blocks()->byte_size()))
        .Int("osp_block_bytes",
             static_cast<long long>(compressed->osp_blocks()->byte_size()))
        .Int("snapshot_raw_bytes", static_cast<long long>(snap_raw))
        .Int("snapshot_compressed_bytes", static_cast<long long>(snap_comp))
        .Bool("meets_half_raw_target", ratio <= 0.5);

    // (b) Throughput on the executor-core micro shapes.
    struct Micro {
      const char* label;
      std::string text;
    };
    const Micro micros[] = {
        {"full-scan", "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }"},
        {"type-scan",
         "SELECT (COUNT(*) AS ?n) WHERE { ?o a <" + obs_class + "> }"},
        {"star-join",
         "SELECT (COUNT(*) AS ?n) WHERE { ?o a <" + obs_class +
             "> . ?o ?p ?v }"},
        {"chain-join",
         "SELECT (COUNT(*) AS ?n) WHERE { ?o a <" + obs_class +
             "> . ?o ?p ?m . ?m ?q ?up }"},
    };
    for (const Micro& m : micros) {
      auto q = sparql::ParseQuery(m.text);
      if (!q.ok()) {
        std::cerr << "parse " << m.label << " failed: " << q.status() << "\n";
        return 1;
      }
      Timed r, c;
      RunPair(*raw, *compressed, *q, kReps, &r, &c);
      if (!r.ok || !c.ok) continue;
      std::string rows = std::to_string(c.rows);
      if (r.rows != c.rows || r.scanned != c.scanned) rows += " (MISMATCH!)";
      const double rel = r.best_ms > 0 ? c.best_ms / r.best_ms : 0.0;
      char rel_str[32];
      std::snprintf(rel_str, sizeof(rel_str), "%.2fx", rel);
      perf.AddRow({name, m.label, Ms(r.best_ms), Ms(c.best_ms), rel_str,
                   rows});
      log.AddRecord()
          .Str("dataset", name)
          .Str("kind", "query")
          .Str("query", m.label)
          .Num("raw_ms", r.best_ms)
          .Num("compressed_ms", c.best_ms)
          .Num("compressed_over_raw", rel)
          .Int("rows", static_cast<long long>(c.rows))
          .Int("triples_scanned", static_cast<long long>(c.scanned))
          .Bool("identical_results",
                r.rows == c.rows && r.scanned == c.scanned)
          .Bool("within_15pct", rel <= 1.15);
    }
  }
  sizes.Print(std::cout);
  std::cout << "\n";
  perf.Print(std::cout);
  std::cout << "\nShape check: dictionary-dense ids delta-encode well, so "
               "the block sections should land far under the 0.5x raw "
               "target; scan-heavy shapes pay the per-block decode once "
               "per 1024 triples and stay within ~15% of the zero-copy "
               "raw spans, with gallops skipping whole blocks via the "
               "skip table on probe-dominated joins.\n";
  log.Write("BENCH_index_compression.json");
  return 0;
}
