// Closed-loop load harness for the HTTP front door (ISSUE PR 9): 64
// concurrent clients drive POST /query against a live server::Server
// over a generated Eurostat-shaped dataset, in two phases:
//
//   steady    capacity C = 8 workers, deep queue: every request admitted;
//             measures end-to-end QPS and p50/p99/p99.9 latency through
//             the full socket -> admission queue -> engine -> response
//             path (result cache warm after the first pass, as in a real
//             exploration session re-executing queries).
//   overload  C = 4, queue of 8, and a 10ms injected delay per engine
//             execution (engine.execute failpoint): demand exceeds
//             service rate, so admission control must shed. Verifies the
//             robustness contract under pressure: every response is a
//             well-formed 200 / 503(+Retry-After) / 504, in-flight
//             executions never exceed C, and the server stays up.
//
// Ends with a drain measurement: RequestStop + Stop while clients are
// still issuing requests, timing the graceful drain. Results land in
// BENCH_server.json.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "engine/query_engine.h"
#include "server/http_client.h"
#include "server/server.h"
#include "sparql/ast.h"
#include "util/failpoint.h"
#include "util/timer.h"

namespace re2xolap {
namespace {

struct LoadResult {
  std::vector<double> latencies_millis;  // successful (200) requests
  uint64_t ok = 0;
  uint64_t shed_503 = 0;          // 503 with Retry-After
  uint64_t unavailable_503 = 0;   // 503 without Retry-After
  uint64_t timeout_504 = 0;
  uint64_t other = 0;
  uint64_t transport_errors = 0;
  double wall_millis = 0;
};

double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0;
  std::sort(v->begin(), v->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v->size() - 1));
  return (*v)[idx];
}

/// `clients` closed-loop threads, each with its own keep-alive
/// connection, hammering POST /query for `duration_millis`.
LoadResult RunClosedLoop(uint16_t port, size_t clients,
                         const std::vector<std::string>& queries,
                         uint64_t duration_millis) {
  LoadResult total;
  std::vector<LoadResult> per_thread(clients);
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  util::WallTimer wall;
  for (size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      server::HttpClient client("127.0.0.1", port, /*timeout_millis=*/10'000);
      LoadResult& mine = per_thread[t];
      size_t i = t;  // stagger which query each client starts with
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string& q = queries[i++ % queries.size()];
        util::WallTimer timer;
        auto resp = client.Post("/query?timeout_ms=5000", q);
        if (!resp.ok()) {
          ++mine.transport_errors;
          continue;
        }
        switch (resp->status) {
          case 200:
            ++mine.ok;
            mine.latencies_millis.push_back(timer.ElapsedMillis());
            break;
          case 503:
            if (!resp->Header("retry-after").empty()) {
              ++mine.shed_503;
            } else {
              ++mine.unavailable_503;
            }
            break;
          case 504:
            ++mine.timeout_504;
            break;
          default:
            ++mine.other;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_millis));
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : threads) th.join();
  total.wall_millis = wall.ElapsedMillis();
  for (LoadResult& mine : per_thread) {
    total.ok += mine.ok;
    total.shed_503 += mine.shed_503;
    total.unavailable_503 += mine.unavailable_503;
    total.timeout_504 += mine.timeout_504;
    total.other += mine.other;
    total.transport_errors += mine.transport_errors;
    total.latencies_millis.insert(total.latencies_millis.end(),
                                  mine.latencies_millis.begin(),
                                  mine.latencies_millis.end());
  }
  return total;
}

void RecordPhase(bench::JsonBenchLog& log, const std::string& phase,
                 size_t clients, const server::ServerStats& stats,
                 LoadResult result) {
  const double qps =
      result.wall_millis > 0
          ? static_cast<double>(result.ok) / (result.wall_millis / 1000.0)
          : 0;
  log.AddRecord()
      .Str("phase", phase)
      .Int("clients", static_cast<long long>(clients))
      .Int("ok", static_cast<long long>(result.ok))
      .Int("shed_503", static_cast<long long>(result.shed_503))
      .Int("unavailable_503", static_cast<long long>(result.unavailable_503))
      .Int("timeout_504", static_cast<long long>(result.timeout_504))
      .Int("other", static_cast<long long>(result.other))
      .Int("transport_errors", static_cast<long long>(result.transport_errors))
      .Num("wall_millis", result.wall_millis)
      .Num("qps", qps)
      .Num("p50_millis", Percentile(&result.latencies_millis, 0.50))
      .Num("p99_millis", Percentile(&result.latencies_millis, 0.99))
      .Num("p999_millis", Percentile(&result.latencies_millis, 0.999))
      .Int("server_max_inflight", static_cast<long long>(stats.max_inflight))
      .Int("server_shed", static_cast<long long>(stats.shed))
      .Int("server_requests", static_cast<long long>(stats.requests));
  std::cout << phase << ": " << clients << " clients, " << result.ok
            << " ok (" << bench::Ms(qps) << " qps), " << result.shed_503
            << " shed, p50=" << bench::Ms(Percentile(&result.latencies_millis, 0.5))
            << "ms p99=" << bench::Ms(Percentile(&result.latencies_millis, 0.99))
            << "ms, server peak in-flight " << stats.max_inflight << "\n";
}

}  // namespace
}  // namespace re2xolap

int main() {
  using namespace re2xolap;
  const size_t kClients = 64;

  uint64_t obs = bench::DefaultObservations("Eurostat") / 4;
  bench::BenchEnv env = bench::MakeEnv("Eurostat", obs);
  engine::QueryEngine engine(env.store());

  // Synthesize a small pool of real exploration queries via ReOLAP so
  // the server executes what a session actually would.
  std::vector<std::string> queries;
  {
    core::Session session(&env.store(), env.vsg.get(), env.text.get(),
                          &engine);
    util::Rng rng(42);
    for (int attempt = 0; attempt < 16 && queries.size() < 6; ++attempt) {
      std::vector<std::string> tuple = bench::SampleExampleTuple(env, 2, rng);
      if (tuple.empty()) continue;
      auto candidates = session.Start(tuple);
      if (!candidates.ok()) continue;
      for (const core::CandidateQuery& c : *candidates) {
        if (queries.size() < 6) queries.push_back(sparql::ToSparql(c.query));
      }
    }
  }
  if (queries.empty()) {
    std::cerr << "no queries synthesized; dataset too small?\n";
    return 1;
  }
  std::cout << "query pool: " << queries.size() << " synthesized queries\n";

  bench::JsonBenchLog log("server");

  // Phase 1: steady state, everything admitted.
  {
    server::Dataset dataset{&env.store(), &engine, env.vsg.get(),
                            env.text.get()};
    server::ServerConfig config;
    config.worker_threads = 8;
    config.queue_capacity = 256;
    server::Server srv(dataset, config);
    if (util::Status st = srv.Start(); !st.ok()) {
      std::cerr << "start: " << st << "\n";
      return 1;
    }
    LoadResult r = RunClosedLoop(srv.port(), kClients, queries, 3000);
    server::ServerStats stats = srv.stats();
    srv.Stop();
    if (stats.max_inflight > config.worker_threads) {
      std::cerr << "FAIL: in-flight " << stats.max_inflight << " exceeded C="
                << config.worker_threads << "\n";
      return 1;
    }
    RecordPhase(log, "steady", kClients, stats, std::move(r));
  }

  // Phase 2: overload — capacity 4, queue 8, 10ms injected execution
  // delay; 64 closed-loop clients exceed the service rate and the
  // admission queue must shed.
  {
    server::Dataset dataset{&env.store(), &engine, env.vsg.get(),
                            env.text.get()};
    server::ServerConfig config;
    config.worker_threads = 4;
    config.queue_capacity = 8;
    server::Server srv(dataset, config);
    if (util::Status st = srv.Start(); !st.ok()) {
      std::cerr << "start: " << st << "\n";
      return 1;
    }
    util::Status fp = util::FailpointRegistry::Global().Configure(
        "engine.execute=delay:10");
    if (!fp.ok()) {
      std::cerr << "failpoint: " << fp << "\n";
      return 1;
    }
    LoadResult r = RunClosedLoop(srv.port(), kClients, queries, 2000);
    util::FailpointRegistry::Global().DisarmAll();
    server::ServerStats stats = srv.stats();

    // Drain while clients would still be coming: time Stop itself.
    util::WallTimer drain;
    srv.Stop();
    const double drain_millis = drain.ElapsedMillis();

    if (stats.max_inflight > config.worker_threads) {
      std::cerr << "FAIL: in-flight " << stats.max_inflight << " exceeded C="
                << config.worker_threads << "\n";
      return 1;
    }
    if (r.shed_503 == 0) {
      std::cerr << "FAIL: overload phase produced no shed responses\n";
      return 1;
    }
    RecordPhase(log, "overload", kClients, stats, std::move(r));
    log.AddRecord()
        .Str("phase", "drain")
        .Num("drain_millis", drain_millis)
        .Int("server_shed", static_cast<long long>(stats.shed));
    std::cout << "drain: " << bench::Ms(drain_millis) << "ms\n";
  }

  log.Write("BENCH_server.json");
  return 0;
}
