// Google-benchmark microbenchmarks of the substrate hot paths: triple
// store pattern matching, text-index lookups, and end-to-end SPARQL
// aggregation throughput. These are the knobs behind every figure of the
// paper's evaluation.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "engine/query_engine.h"
#include "sparql/executor.h"

namespace {

using namespace re2xolap;
using namespace re2xolap::bench;

const BenchEnv& Env() {
  static const BenchEnv* env = new BenchEnv(MakeEnv("Eurostat", 60000));
  return *env;
}

void BM_StoreMatchByPredicate(benchmark::State& state) {
  const rdf::TripleStore& store = Env().store();
  rdf::TermId p = store.Lookup(
      rdf::Term::Iri("http://example.org/eurostat/countryDestination"));
  for (auto _ : state) {
    auto span = store.Match({rdf::kInvalidTermId, p, rdf::kInvalidTermId});
    benchmark::DoNotOptimize(span.size());
  }
}
BENCHMARK(BM_StoreMatchByPredicate);

void BM_StoreMatchBySubject(benchmark::State& state) {
  const rdf::TripleStore& store = Env().store();
  rdf::TermId s =
      store.Lookup(rdf::Term::Iri("http://example.org/eurostat/obs/123"));
  for (auto _ : state) {
    auto span = store.Match({s, rdf::kInvalidTermId, rdf::kInvalidTermId});
    benchmark::DoNotOptimize(span.size());
  }
}
BENCHMARK(BM_StoreMatchBySubject);

void BM_TextIndexExact(benchmark::State& state) {
  for (auto _ : state) {
    auto hits = Env().text->Match("Germany");
    benchmark::DoNotOptimize(hits.size());
  }
}
BENCHMARK(BM_TextIndexExact);

void BM_TextIndexKeyword(benchmark::State& state) {
  for (auto _ : state) {
    auto hits = Env().text->KeywordMatch("October 2014");
    benchmark::DoNotOptimize(hits.size());
  }
}
BENCHMARK(BM_TextIndexKeyword);

void BM_ExecuteGroupBySum(benchmark::State& state) {
  const std::string query = R"(
    SELECT ?dest (SUM(?v) AS ?total) WHERE {
      ?obs <http://example.org/eurostat/countryDestination> ?dest .
      ?obs <http://example.org/eurostat/numApplicants> ?v .
    } GROUP BY ?dest)";
  for (auto _ : state) {
    auto r = sparql::ExecuteText(Env().store(), query);
    benchmark::DoNotOptimize(r.ok() ? r->row_count() : 0);
  }
}
BENCHMARK(BM_ExecuteGroupBySum);

void BM_ExecuteHierarchyJoin(benchmark::State& state) {
  const std::string query = R"(
    SELECT ?cont (SUM(?v) AS ?total) WHERE {
      ?obs <http://example.org/eurostat/countryOrigin> ?c .
      ?c <http://example.org/eurostat/inContinent> ?cont .
      ?obs <http://example.org/eurostat/numApplicants> ?v .
    } GROUP BY ?cont)";
  for (auto _ : state) {
    auto r = sparql::ExecuteText(Env().store(), query);
    benchmark::DoNotOptimize(r.ok() ? r->row_count() : 0);
  }
}
BENCHMARK(BM_ExecuteHierarchyJoin);

// Steady-state engine lookups: every iteration after the first is a
// result-cache hit — the repeated-probe path ReOLAP validation and
// frontier re-evaluation ride on.
void BM_EngineCachedGroupBySum(benchmark::State& state) {
  const std::string query = R"(
    SELECT ?dest (SUM(?v) AS ?total) WHERE {
      ?obs <http://example.org/eurostat/countryDestination> ?dest .
      ?obs <http://example.org/eurostat/numApplicants> ?v .
    } GROUP BY ?dest)";
  engine::QueryEngine engine(Env().store());
  for (auto _ : state) {
    auto r = engine.ExecuteText(query);
    benchmark::DoNotOptimize(r.ok() ? (*r)->row_count() : 0);
  }
}
BENCHMARK(BM_EngineCachedGroupBySum);

// Result cache disabled: isolates the plan cache (parse + execute every
// iteration, planning amortized away after the first).
void BM_EnginePlanCacheOnlyGroupBySum(benchmark::State& state) {
  const std::string query = R"(
    SELECT ?dest (SUM(?v) AS ?total) WHERE {
      ?obs <http://example.org/eurostat/countryDestination> ?dest .
      ?obs <http://example.org/eurostat/numApplicants> ?v .
    } GROUP BY ?dest)";
  engine::EngineConfig config;
  config.result_cache_bytes = 0;
  engine::QueryEngine engine(Env().store(), config);
  for (auto _ : state) {
    auto r = engine.ExecuteText(query);
    benchmark::DoNotOptimize(r.ok() ? (*r)->row_count() : 0);
  }
}
BENCHMARK(BM_EnginePlanCacheOnlyGroupBySum);

void BM_EngineCachedHierarchyJoin(benchmark::State& state) {
  const std::string query = R"(
    SELECT ?cont (SUM(?v) AS ?total) WHERE {
      ?obs <http://example.org/eurostat/countryOrigin> ?c .
      ?c <http://example.org/eurostat/inContinent> ?cont .
      ?obs <http://example.org/eurostat/numApplicants> ?v .
    } GROUP BY ?cont)";
  engine::QueryEngine engine(Env().store());
  for (auto _ : state) {
    auto r = engine.ExecuteText(query);
    benchmark::DoNotOptimize(r.ok() ? (*r)->row_count() : 0);
  }
}
BENCHMARK(BM_EngineCachedHierarchyJoin);

void BM_ReolapSynthesizeSize1(benchmark::State& state) {
  core::Reolap reolap(Env().dataset.store.get(), Env().vsg.get(),
                      Env().text.get());
  for (auto _ : state) {
    auto r = reolap.Synthesize({"Germany"});
    benchmark::DoNotOptimize(r.ok() ? r->size() : 0);
  }
}
BENCHMARK(BM_ReolapSynthesizeSize1);

void BM_ReolapSynthesizeSize2(benchmark::State& state) {
  core::Reolap reolap(Env().dataset.store.get(), Env().vsg.get(),
                      Env().text.get());
  for (auto _ : state) {
    auto r = reolap.Synthesize({"Germany", "2014"});
    benchmark::DoNotOptimize(r.ok() ? r->size() : 0);
  }
}
BENCHMARK(BM_ReolapSynthesizeSize2);

}  // namespace

BENCHMARK_MAIN();
