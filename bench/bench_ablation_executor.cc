// Ablation for the executor core: volcano row-at-a-time index nested
// loops vs the vectorized batch-at-a-time pipeline (BindingBlock columns
// + merge joins on sorted index ranges). Both cores consume the same
// plans and produce identical tables; this harness measures the uncached
// plan-and-run cost per core on (a) scan/join microqueries over the
// generated cubes and (b) realistic synthesized + disaggregated OLAP
// queries, and records the deltas in BENCH_ablation_executor.json.
//
// Deliberately uses raw sparql::Execute, NOT engine::QueryEngine: any
// plan/result caching between the timed runs would poison the
// measurement (the point is the join core, not the cache).

#include <algorithm>
#include <iostream>

#include "bench/bench_common.h"
#include "sparql/executor.h"
#include "sparql/parser.h"

namespace {

using re2xolap::sparql::ExecOptions;
using re2xolap::sparql::ExecStats;
using re2xolap::sparql::ExecutorKind;

struct Timed {
  double best_ms = 0;
  size_t rows = 0;
  uint64_t scanned = 0;
  bool ok = false;
};

/// Best-of-`reps` uncached execution under one executor kind.
Timed RunMode(const re2xolap::rdf::TripleStore& store,
              const re2xolap::sparql::SelectQuery& query, ExecutorKind kind,
              int reps) {
  Timed out;
  out.best_ms = 1e18;
  ExecOptions options;
  options.timeout_millis = 60000;
  options.executor = kind;
  for (int i = 0; i < reps; ++i) {
    ExecStats stats;
    re2xolap::util::WallTimer timer;
    auto r = re2xolap::sparql::Execute(store, query, options, &stats);
    double ms = timer.ElapsedMillis();
    if (!r.ok()) return out;
    out.ok = true;
    out.best_ms = std::min(out.best_ms, ms);
    out.rows = r->row_count();
    out.scanned = stats.triples_scanned;
  }
  return out;
}

}  // namespace

int main() {
  using namespace re2xolap;
  using namespace re2xolap::bench;

  constexpr int kReps = 5;
  std::cout << "=== Ablation: volcano vs vectorized executor core ===\n\n";
  util::TablePrinter t({"Dataset", "Query", "Volcano (ms)",
                        "Vectorized (ms)", "Speedup", "Rows"});
  JsonBenchLog log("ablation_executor");

  for (const std::string& name : AllDatasets()) {
    BenchEnv env = MakeEnv(name, DefaultObservations(name));
    const std::string& obs_class = env.dataset.spec.observation_class;

    // (a) Scan/join microqueries: these isolate the join core (full
    // sorted-run scans, prefix-range probes, a cartesian corner) with
    // COUNT(*) sinks so materialization cost stays out of the picture.
    struct Micro {
      const char* label;
      std::string text;
    };
    const Micro micros[] = {
        {"full-scan",
         "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }"},
        {"type-scan",
         "SELECT (COUNT(*) AS ?n) WHERE { ?o a <" + obs_class + "> }"},
        {"star-join",
         "SELECT (COUNT(*) AS ?n) WHERE { ?o a <" + obs_class +
             "> . ?o ?p ?v }"},
        {"chain-join",
         "SELECT (COUNT(*) AS ?n) WHERE { ?o a <" + obs_class +
             "> . ?o ?p ?m . ?m ?q ?up }"},
    };
    std::vector<std::pair<std::string, sparql::SelectQuery>> workload;
    for (const Micro& m : micros) {
      auto q = sparql::ParseQuery(m.text);
      if (!q.ok()) {
        std::cerr << "parse " << m.label << " failed: " << q.status() << "\n";
        return 1;
      }
      workload.emplace_back(m.label, std::move(q).value());
    }

    // (b) Realistic OLAP shapes: synthesized grouped aggregates, plus one
    // Disaggregate step so the BGP carries hierarchy joins.
    core::Reolap reolap(env.dataset.store.get(), env.vsg.get(),
                        env.text.get());
    util::Rng rng(17);
    for (int i = 0; i < 3; ++i) {
      auto tuple = SampleExampleTuple(env, 2, rng);
      if (tuple.empty()) continue;
      auto queries = reolap.Synthesize(tuple);
      if (!queries.ok() || queries->empty()) continue;
      core::ExploreState state = core::InitialState((*queries)[0]);
      auto dis = core::Disaggregate(*env.vsg, env.store(), state);
      if (!dis.empty()) state = dis[dis.size() / 2];
      workload.emplace_back("olap-q" + std::to_string(i), state.query);
    }

    for (const auto& [label, query] : workload) {
      Timed volcano = RunMode(env.store(), query, ExecutorKind::kVolcano,
                              kReps);
      Timed vectorized = RunMode(env.store(), query,
                                 ExecutorKind::kVectorized, kReps);
      if (!volcano.ok || !vectorized.ok) continue;
      std::string rows = std::to_string(vectorized.rows);
      if (volcano.rows != vectorized.rows ||
          volcano.scanned != vectorized.scanned) {
        rows += " (MISMATCH!)";
      }
      double speedup =
          vectorized.best_ms > 0 ? volcano.best_ms / vectorized.best_ms : 0.0;
      char speedup_str[32];
      std::snprintf(speedup_str, sizeof(speedup_str), "%.2fx", speedup);
      t.AddRow({name, label, Ms(volcano.best_ms), Ms(vectorized.best_ms),
                speedup_str, rows});
      log.AddRecord()
          .Str("dataset", name)
          .Str("query", label)
          .Num("volcano_ms", volcano.best_ms)
          .Num("vectorized_ms", vectorized.best_ms)
          .Num("vectorized_speedup", speedup)
          .Int("rows", static_cast<long long>(vectorized.rows))
          .Int("triples_scanned", static_cast<long long>(vectorized.scanned))
          .Bool("identical_results",
                volcano.rows == vectorized.rows &&
                    volcano.scanned == vectorized.scanned);
    }
  }
  t.Print(std::cout);
  std::cout << "\nShape check: identical rows and scan counts per query; "
               "the vectorized core wins most on scan-heavy shapes (full "
               "runs become chunked column fills instead of per-row "
               "recursion) and stays within ~15% of volcano on "
               "probe-dominated fan-out-1 chains, where full-width row "
               "materialization is the price of the columnar layout.\n";
  log.Write("BENCH_ablation_executor.json");
  return 0;
}
