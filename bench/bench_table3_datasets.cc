// Reproduces the paper's Table 3 (dataset characteristics) and Figure 6a/6b
// (#observations and #triples per dataset).
//
// Paper reference values (real dumps; ours are synthetic + scaled):
//   Table 3:  Eurostat   |D|=4 |M|=1 |H|=8  |L|=9  |N_D|=373    VGraph 72MB
//             Production |D|=7 |M|=1 |H|=5  |L|=9  |N_D|=6444   VGraph 73MB
//             DBpedia    |D|=5 |M|=1 |H|=14 |L|=23 |N_D|=87160  VGraph 79MB
//   Fig 6a/b: Eurostat ~15M obs/160M triples, Production ~15M/90M,
//             DBpedia 541k/20M. Shape to preserve: Eurostat has the most
//             triples per observation; DBpedia the fewest observations but
//             a far richer schema.

#include <iostream>

#include "bench/bench_common.h"

int main() {
  using namespace re2xolap;
  using namespace re2xolap::bench;

  std::cout << "=== Table 3: dataset characteristics (synthetic, scaled) "
               "===\n\n";
  util::TablePrinter table(
      {"Dataset", "|D|", "|M|", "|H|", "|L|", "|N_D|", "Store (MB)",
       "VGraph (MB)"});
  util::TablePrinter fig6(
      {"Dataset", "#Observations (Fig 6a)", "#Triples (Fig 6b)",
       "Triples/obs"});

  for (const std::string& name : AllDatasets()) {
    uint64_t obs = DefaultObservations(name);
    BenchEnv env = MakeEnv(name, obs);
    const core::VirtualSchemaGraph& vsg = *env.vsg;
    table.AddRow({name, std::to_string(vsg.dimension_count()),
                  std::to_string(vsg.measure_count()),
                  std::to_string(vsg.hierarchy_count()),
                  std::to_string(vsg.level_count()),
                  std::to_string(vsg.total_members()),
                  Mb(env.store().MemoryUsage()), Mb(vsg.MemoryUsage())});
    fig6.AddRow({name, std::to_string(obs),
                 std::to_string(env.store().size()),
                 Ms(static_cast<double>(env.store().size()) /
                    static_cast<double>(obs))});
  }
  table.Print(std::cout);
  std::cout << "\nPaper reference (real dumps): Eurostat 4/1/8/9/373, "
               "Production 7/1/5/9/6444, DBpedia 5/1/14/23/87160.\n";
  std::cout << "\n=== Figure 6a/6b: dataset sizes ===\n\n";
  fig6.Print(std::cout);
  std::cout << "\nShape check: Eurostat has the most triples/observation "
               "(richer attributes), DBpedia the fewest observations but "
               "the largest schema (|L|, |N_D|).\n";
  return 0;
}
