// Ingestion-interference benchmark for the live epoch-chain store: a
// pool of closed-loop query clients drives POST /query against a live
// server::Server while a streaming insert driver POSTs N-Triples batches
// to /ingest, in three phases over the same Eurostat-shaped dataset:
//
//   queries_only   the live store serves queries with no writer: the
//                  baseline p50/p99 (result cache warm — the epoch never
//                  moves, as in a frozen deployment).
//   ingest_only    the insert driver alone: steady-state batch latency
//                  and triples/s through parse -> intern -> seal ->
//                  publish, with background compaction folding the chain.
//   mixed          both at once: the number the subsystem exists for —
//                  query p50/p99 while every published batch bumps the
//                  epoch (invalidating cached results) and compaction
//                  churns underneath. Readers must never block: the
//                  penalty is recomputation, not contention.
//
// Results land in BENCH_ingest.json, including the mixed/baseline p50
// ratio and the server-observed chain state after the run.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "engine/query_engine.h"
#include "server/http_client.h"
#include "server/server.h"
#include "sparql/ast.h"
#include "store/ingestor.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace re2xolap {
namespace {

constexpr size_t kQueryClients = 16;
constexpr size_t kBatchStatements = 64;
constexpr uint64_t kPhaseMillis = 2'500;

struct QueryLoad {
  std::vector<double> latencies_millis;
  uint64_t ok = 0;
  uint64_t errors = 0;
  uint64_t transport_errors = 0;
  double wall_millis = 0;
};

struct IngestLoad {
  std::vector<double> latencies_millis;
  uint64_t batches = 0;
  uint64_t triples = 0;
  uint64_t errors = 0;
  double wall_millis = 0;
};

double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0;
  std::sort(v->begin(), v->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v->size() - 1));
  return (*v)[idx];
}

/// `kQueryClients` closed-loop threads hammering POST /query until `stop`.
QueryLoad RunQueryClients(uint16_t port,
                          const std::vector<std::string>& queries,
                          std::atomic<bool>& stop) {
  std::vector<QueryLoad> per_thread(kQueryClients);
  std::vector<std::thread> threads;
  util::WallTimer wall;
  for (size_t t = 0; t < kQueryClients; ++t) {
    threads.emplace_back([&, t] {
      server::HttpClient client("127.0.0.1", port, /*timeout_millis=*/10'000);
      QueryLoad& mine = per_thread[t];
      size_t i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string& q = queries[i++ % queries.size()];
        util::WallTimer timer;
        auto resp = client.Post("/query?timeout_ms=5000", q);
        if (!resp.ok()) {
          ++mine.transport_errors;
          continue;
        }
        if (resp->status == 200) {
          ++mine.ok;
          mine.latencies_millis.push_back(timer.ElapsedMillis());
        } else {
          ++mine.errors;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  QueryLoad total;
  total.wall_millis = wall.ElapsedMillis();
  for (QueryLoad& mine : per_thread) {
    total.ok += mine.ok;
    total.errors += mine.errors;
    total.transport_errors += mine.transport_errors;
    total.latencies_millis.insert(total.latencies_millis.end(),
                                  mine.latencies_millis.begin(),
                                  mine.latencies_millis.end());
  }
  return total;
}

/// One streaming writer POSTing fresh kBatchStatements-line batches to
/// /ingest until `stop`. `seq` persists across phases so every triple is
/// new (inserts never degenerate into visible-triple no-ops).
IngestLoad RunIngestDriver(uint16_t port, std::atomic<bool>& stop,
                           uint64_t* seq) {
  IngestLoad load;
  server::HttpClient client("127.0.0.1", port, /*timeout_millis=*/10'000);
  util::WallTimer wall;
  while (!stop.load(std::memory_order_relaxed)) {
    std::string body;
    body.reserve(kBatchStatements * 64);
    for (size_t i = 0; i < kBatchStatements; ++i) {
      const uint64_t n = (*seq)++;
      body += "<http://bench/ingest/s" + std::to_string(n) +
              "> <http://bench/ingest/p" + std::to_string(n % 8) +
              "> <http://bench/ingest/o" + std::to_string(n % 1024) + "> .\n";
    }
    util::WallTimer timer;
    auto resp = client.Post("/ingest", body);
    if (resp.ok() && resp->status == 200) {
      ++load.batches;
      load.triples += kBatchStatements;
      load.latencies_millis.push_back(timer.ElapsedMillis());
    } else {
      ++load.errors;
    }
  }
  load.wall_millis = wall.ElapsedMillis();
  return load;
}

void RecordQueryPhase(bench::JsonBenchLog& log, const std::string& phase,
                      QueryLoad r) {
  const double qps =
      r.wall_millis > 0
          ? static_cast<double>(r.ok) / (r.wall_millis / 1000.0)
          : 0;
  log.AddRecord()
      .Str("phase", phase)
      .Int("clients", static_cast<long long>(kQueryClients))
      .Int("ok", static_cast<long long>(r.ok))
      .Int("errors", static_cast<long long>(r.errors))
      .Int("transport_errors", static_cast<long long>(r.transport_errors))
      .Num("wall_millis", r.wall_millis)
      .Num("qps", qps)
      .Num("p50_millis", Percentile(&r.latencies_millis, 0.50))
      .Num("p99_millis", Percentile(&r.latencies_millis, 0.99));
  std::cout << phase << ": " << r.ok << " ok (" << bench::Ms(qps)
            << " qps), p50=" << bench::Ms(Percentile(&r.latencies_millis, 0.5))
            << "ms p99=" << bench::Ms(Percentile(&r.latencies_millis, 0.99))
            << "ms\n";
}

void RecordIngestPhase(bench::JsonBenchLog& log, const std::string& phase,
                       IngestLoad r) {
  const double tps =
      r.wall_millis > 0
          ? static_cast<double>(r.triples) / (r.wall_millis / 1000.0)
          : 0;
  log.AddRecord()
      .Str("phase", phase)
      .Int("batches", static_cast<long long>(r.batches))
      .Int("triples", static_cast<long long>(r.triples))
      .Int("errors", static_cast<long long>(r.errors))
      .Num("wall_millis", r.wall_millis)
      .Num("triples_per_sec", tps)
      .Num("batch_p50_millis", Percentile(&r.latencies_millis, 0.50))
      .Num("batch_p99_millis", Percentile(&r.latencies_millis, 0.99));
  std::cout << phase << ": " << r.batches << " batches ("
            << bench::Ms(tps) << " triples/s), batch p50="
            << bench::Ms(Percentile(&r.latencies_millis, 0.5)) << "ms p99="
            << bench::Ms(Percentile(&r.latencies_millis, 0.99)) << "ms\n";
}

}  // namespace
}  // namespace re2xolap

int main() {
  using namespace re2xolap;

  uint64_t obs = bench::DefaultObservations("Eurostat") / 4;
  bench::BenchEnv env = bench::MakeEnv("Eurostat", obs);
  rdf::TripleStore* store = env.dataset.store.get();
  engine::QueryEngine engine(*store);

  // Synthesize a pool of real exploration queries before entering live
  // mode (same recipe as bench_server: what a session would execute).
  std::vector<std::string> queries;
  {
    core::Session session(store, env.vsg.get(), env.text.get(), &engine);
    util::Rng rng(42);
    for (int attempt = 0; attempt < 16 && queries.size() < 6; ++attempt) {
      std::vector<std::string> tuple = bench::SampleExampleTuple(env, 2, rng);
      if (tuple.empty()) continue;
      auto candidates = session.Start(tuple);
      if (!candidates.ok()) continue;
      for (const core::CandidateQuery& c : *candidates) {
        if (queries.size() < 6) queries.push_back(sparql::ToSparql(c.query));
      }
    }
  }
  if (queries.empty()) {
    std::cerr << "no queries synthesized; dataset too small?\n";
    return 1;
  }
  std::cout << "query pool: " << queries.size() << " synthesized queries, "
            << store->size() << " base triples\n";

  store->EnterLive();
  util::ThreadPool pool(util::ThreadPool::DefaultThreads());
  store::Ingestor ingestor(store, &pool);

  server::Dataset dataset;
  dataset.store = store;
  dataset.engine = &engine;
  dataset.vsg = env.vsg.get();
  dataset.text = env.text.get();
  dataset.ingestor = &ingestor;
  server::ServerConfig config;
  config.worker_threads = 8;
  config.queue_capacity = 256;
  server::Server srv(dataset, config);
  if (util::Status st = srv.Start(); !st.ok()) {
    std::cerr << "start: " << st << "\n";
    return 1;
  }

  bench::JsonBenchLog log("ingest");
  uint64_t seq = 0;
  double baseline_p50 = 0;
  double mixed_p50 = 0;

  // Phase 1: queries only (baseline, epoch never moves).
  {
    std::atomic<bool> stop{false};
    std::thread timer([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(kPhaseMillis));
      stop.store(true, std::memory_order_relaxed);
    });
    QueryLoad r = RunQueryClients(srv.port(), queries, stop);
    timer.join();
    baseline_p50 = Percentile(&r.latencies_millis, 0.50);
    RecordQueryPhase(log, "queries_only", std::move(r));
  }

  // Phase 2: ingest only (steady-state write throughput).
  {
    std::atomic<bool> stop{false};
    std::thread timer([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(kPhaseMillis));
      stop.store(true, std::memory_order_relaxed);
    });
    IngestLoad w = RunIngestDriver(srv.port(), stop, &seq);
    timer.join();
    RecordIngestPhase(log, "ingest_only", std::move(w));
  }

  // Phase 3: mixed — the interference measurement.
  {
    std::atomic<bool> stop{false};
    IngestLoad w;
    std::thread writer([&] { w = RunIngestDriver(srv.port(), stop, &seq); });
    std::thread timer([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(kPhaseMillis));
      stop.store(true, std::memory_order_relaxed);
    });
    QueryLoad r = RunQueryClients(srv.port(), queries, stop);
    writer.join();
    timer.join();
    if (r.ok == 0 || w.batches == 0) {
      std::cerr << "FAIL: mixed phase starved one side (queries ok=" << r.ok
                << ", batches=" << w.batches << ")\n";
      return 1;
    }
    mixed_p50 = Percentile(&r.latencies_millis, 0.50);
    RecordQueryPhase(log, "mixed_queries", std::move(r));
    RecordIngestPhase(log, "mixed_ingest", std::move(w));
  }

  const rdf::TripleStore::LiveInfo info = store->live_info();
  log.AddRecord()
      .Str("phase", "final_chain")
      .Num("p50_interference_ratio",
           baseline_p50 > 0 ? mixed_p50 / baseline_p50 : 0)
      .Int("epoch", static_cast<long long>(info.epoch))
      .Int("chain_depth", static_cast<long long>(info.chain_depth))
      .Int("delta_adds", static_cast<long long>(info.delta_adds))
      .Int("delta_dels", static_cast<long long>(info.delta_dels))
      .Int("visible_triples", static_cast<long long>(info.visible_triples))
      .Int("compacted_base", info.compacted_base ? 1 : 0);
  std::cout << "final: epoch " << info.epoch << ", depth " << info.chain_depth
            << ", " << info.visible_triples << " visible, p50 interference x"
            << (baseline_p50 > 0 ? mixed_p50 / baseline_p50 : 0) << "\n";

  srv.Stop();
  log.Write("BENCH_ingest.json");
  return 0;
}
