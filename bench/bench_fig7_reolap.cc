// Reproduces the paper's Figure 7: (a) ReOLAP query synthesis running time
// and (b) number of synthesized queries, for input sizes 1–4, with 10
// random example tuples per size, on all three datasets.
//
// Paper reference shapes to preserve:
//   7a: time grows with input size (100–400 ms at size 1 up to 2–6 s at
//       size 4 on their testbed); DBpedia is the worst case at larger
//       sizes because several dimensions share label sets, inflating the
//       interpretation combinations. Time tracks |N_D| / schema size, NOT
//       observation count.
//   7b: <10 queries on average for sizes 1–2; the count grows with shared
//       members / number of hierarchies.

#include <iostream>

#include "bench/bench_common.h"

int main() {
  using namespace re2xolap;
  using namespace re2xolap::bench;

  constexpr int kInputsPerSize = 10;
  constexpr size_t kMaxSize = 4;

  std::cout << "=== Figure 7: ReOLAP synthesis (10 random inputs per size) "
               "===\n\n";
  util::TablePrinter t7a({"Dataset", "Input size", "Avg time (ms)",
                          "Min (ms)", "Max (ms)", "Avg interpretations"});
  util::TablePrinter t7b(
      {"Dataset", "Input size", "Avg #queries", "Max #queries"});

  for (const std::string& name : AllDatasets()) {
    BenchEnv env = MakeEnv(name, DefaultObservations(name));
    core::Reolap reolap(env.dataset.store.get(), env.vsg.get(),
                        env.text.get());
    util::Rng rng(1234);
    for (size_t size = 1; size <= kMaxSize; ++size) {
      double total_ms = 0, min_ms = 1e18, max_ms = 0;
      double total_queries = 0, max_queries = 0;
      double total_interps = 0;
      int runs = 0;
      for (int i = 0; i < kInputsPerSize; ++i) {
        std::vector<std::string> tuple = SampleExampleTuple(env, size, rng);
        if (tuple.empty()) continue;
        core::ReolapStats stats;
        util::WallTimer timer;
        auto queries = reolap.Synthesize(tuple, {}, &stats);
        double ms = timer.ElapsedMillis();
        if (!queries.ok()) continue;
        ++runs;
        total_ms += ms;
        min_ms = std::min(min_ms, ms);
        max_ms = std::max(max_ms, ms);
        total_queries += static_cast<double>(queries->size());
        max_queries =
            std::max(max_queries, static_cast<double>(queries->size()));
        total_interps += static_cast<double>(stats.interpretations_considered);
      }
      if (runs == 0) continue;
      t7a.AddRow({name, std::to_string(size), Ms(total_ms / runs),
                  Ms(min_ms), Ms(max_ms),
                  Ms(total_interps / runs)});
      t7b.AddRow({name, std::to_string(size), Ms(total_queries / runs),
                  Ms(max_queries)});
    }
  }
  std::cout << "--- Fig 7a: synthesis running time ---\n";
  t7a.Print(std::cout);
  std::cout << "\n--- Fig 7b: number of synthesized queries ---\n";
  t7b.Print(std::cout);
  std::cout << "\nShape check: time grows with input size; DBpedia grows "
               "fastest (shared label sets across dimensions => more "
               "interpretation combinations); sizes 1-2 yield <10 queries "
               "on average.\n";
  return 0;
}
