// Reproduces the paper's Figure 7: (a) ReOLAP query synthesis running time
// and (b) number of synthesized queries, for input sizes 1–4, with 10
// random example tuples per size, on all three datasets.
//
// Paper reference shapes to preserve:
//   7a: time grows with input size (100–400 ms at size 1 up to 2–6 s at
//       size 4 on their testbed); DBpedia is the worst case at larger
//       sizes because several dimensions share label sets, inflating the
//       interpretation combinations. Time tracks |N_D| / schema size, NOT
//       observation count.
//   7b: <10 queries on average for sizes 1–2; the count grows with shared
//       members / number of hierarchies.

// The trailing thread sweep measures the parallel validation subsystem:
// Synthesize with num_threads in {1, 2, 4, 8} on the same inputs, checking
// that every thread count produces byte-identical candidates (description +
// SPARQL text) and reporting the validation-phase speedup over 1 thread.
// Machine-readable per-phase timings land in BENCH_reolap.json.

#include <iostream>

#include "bench/bench_common.h"
#include "engine/query_engine.h"
#include "sparql/ast.h"
#include "sparql/executor.h"

namespace {

/// Canonical byte signature of a candidate list (descriptions + SPARQL).
std::string CandidateSignature(
    const std::vector<re2xolap::core::CandidateQuery>& candidates) {
  std::string sig;
  for (const auto& c : candidates) {
    sig += c.description;
    sig += '\n';
    sig += re2xolap::sparql::ToSparql(c.query);
    sig += '\n';
  }
  return sig;
}

}  // namespace

int main() {
  using namespace re2xolap;
  using namespace re2xolap::bench;

  constexpr int kInputsPerSize = 10;
  constexpr size_t kMaxSize = 4;

  std::cout << "=== Figure 7: ReOLAP synthesis (10 random inputs per size) "
               "===\n\n";
  util::TablePrinter t7a({"Dataset", "Input size", "Avg time (ms)",
                          "Min (ms)", "Max (ms)", "Avg interpretations"});
  util::TablePrinter t7b(
      {"Dataset", "Input size", "Avg #queries", "Max #queries"});

  for (const std::string& name : AllDatasets()) {
    BenchEnv env = MakeEnv(name, DefaultObservations(name));
    core::Reolap reolap(env.dataset.store.get(), env.vsg.get(),
                        env.text.get());
    util::Rng rng(1234);
    for (size_t size = 1; size <= kMaxSize; ++size) {
      double total_ms = 0, min_ms = 1e18, max_ms = 0;
      double total_queries = 0, max_queries = 0;
      double total_interps = 0;
      int runs = 0;
      for (int i = 0; i < kInputsPerSize; ++i) {
        std::vector<std::string> tuple = SampleExampleTuple(env, size, rng);
        if (tuple.empty()) continue;
        core::ReolapStats stats;
        util::WallTimer timer;
        auto queries = reolap.Synthesize(tuple, {}, &stats);
        double ms = timer.ElapsedMillis();
        if (!queries.ok()) continue;
        ++runs;
        total_ms += ms;
        min_ms = std::min(min_ms, ms);
        max_ms = std::max(max_ms, ms);
        total_queries += static_cast<double>(queries->size());
        max_queries =
            std::max(max_queries, static_cast<double>(queries->size()));
        total_interps += static_cast<double>(stats.interpretations_considered);
      }
      if (runs == 0) continue;
      t7a.AddRow({name, std::to_string(size), Ms(total_ms / runs),
                  Ms(min_ms), Ms(max_ms),
                  Ms(total_interps / runs)});
      t7b.AddRow({name, std::to_string(size), Ms(total_queries / runs),
                  Ms(max_queries)});
    }
  }
  std::cout << "--- Fig 7a: synthesis running time ---\n";
  t7a.Print(std::cout);
  std::cout << "\n--- Fig 7b: number of synthesized queries ---\n";
  t7b.Print(std::cout);
  std::cout << "\nShape check: time grows with input size; DBpedia grows "
               "fastest (shared label sets across dimensions => more "
               "interpretation combinations); sizes 1-2 yield <10 queries "
               "on average.\n";

  // --- Thread sweep: parallel validation vs serial ------------------------
  constexpr int kSweepInputs = 8;
  constexpr size_t kSweepSize = 3;  // validation-heavy input size
  const std::vector<size_t> kThreadCounts = {1, 2, 4, 8};

  std::cout << "\n=== Parallel validation sweep (input size "
            << kSweepSize << ", " << kSweepInputs << " inputs, "
            << "hardware_concurrency="
            << util::ThreadPool::DefaultThreads() << ") ===\n\n";
  util::TablePrinter sweep({"Dataset", "Threads", "Total (ms)",
                            "Validate (ms)", "Speedup(val)", "Identical"});
  JsonBenchLog log("fig7_reolap");

  for (const std::string& name : AllDatasets()) {
    BenchEnv env = MakeEnv(name, DefaultObservations(name));
    core::Reolap reolap(env.dataset.store.get(), env.vsg.get(),
                        env.text.get());
    // Fixed inputs shared by every thread count.
    util::Rng rng(99);
    std::vector<std::vector<std::string>> tuples;
    while (tuples.size() < kSweepInputs) {
      std::vector<std::string> t = SampleExampleTuple(env, kSweepSize, rng);
      if (t.empty()) break;
      tuples.push_back(std::move(t));
    }

    double serial_validate_ms = 0;
    std::vector<std::string> serial_sigs;
    for (size_t threads : kThreadCounts) {
      core::ReolapOptions options;
      options.num_threads = threads;
      double total_ms = 0, match_ms = 0, combine_ms = 0, validate_ms = 0;
      bool identical = true;
      for (size_t i = 0; i < tuples.size(); ++i) {
        core::ReolapStats stats;
        util::WallTimer timer;
        auto queries = reolap.Synthesize(tuples[i], options, &stats);
        total_ms += timer.ElapsedMillis();
        if (!queries.ok()) continue;
        match_ms += stats.match_millis;
        combine_ms += stats.combine_millis;
        validate_ms += stats.validate_millis;
        std::string sig = CandidateSignature(*queries);
        if (threads == 1) {
          serial_sigs.push_back(std::move(sig));
        } else if (i >= serial_sigs.size() || sig != serial_sigs[i]) {
          identical = false;
        }
      }
      if (threads == 1) serial_validate_ms = validate_ms;
      double speedup =
          validate_ms > 0 ? serial_validate_ms / validate_ms : 1.0;
      sweep.AddRow({name, std::to_string(threads), Ms(total_ms),
                    Ms(validate_ms), Ms(speedup), identical ? "yes" : "NO"});
      log.AddRecord()
          .Str("dataset", name)
          .Int("threads", static_cast<long long>(threads))
          .Int("inputs", static_cast<long long>(tuples.size()))
          .Num("total_ms", total_ms)
          .Num("match_ms", match_ms)
          .Num("combine_ms", combine_ms)
          .Num("validate_ms", validate_ms)
          .Num("validate_speedup_vs_1thread", speedup)
          .Bool("identical_to_serial", identical);
    }
  }
  sweep.Print(std::cout);
  std::cout << "\nExpectation: validation speedup approaches the physical "
               "core count (the probes are independent read-only LIMIT-1 "
               "queries); every thread count must report Identical=yes.\n";

  // --- Cache ablation: repeated-probe validation through the engine -------
  // Re-synthesizing the same example tuples (a user retrying an input, or
  // overlapping combinations across tuples) re-issues identical LIMIT-1
  // probes. With validation routed through a QueryEngine those repeats are
  // result-cache hits; without one every probe touches the store again.
  constexpr int kAblInputs = 6;
  constexpr size_t kAblSize = 3;
  std::cout << "\n=== Validation cache ablation (same inputs synthesized "
               "twice) ===\n\n";
  util::TablePrinter ablation({"Dataset", "Engine cache", "Pass1 val (ms)",
                               "Pass2 val (ms)", "Pass2 speedup vs off"});
  for (const std::string& name : AllDatasets()) {
    BenchEnv env = MakeEnv(name, DefaultObservations(name));
    util::Rng rng(7);
    std::vector<std::vector<std::string>> tuples;
    while (tuples.size() < kAblInputs) {
      std::vector<std::string> t = SampleExampleTuple(env, kAblSize, rng);
      if (t.empty()) break;
      tuples.push_back(std::move(t));
    }
    if (tuples.empty()) continue;

    double off_pass2 = 0;
    for (bool cached : {false, true}) {
      engine::QueryEngine engine(env.store());
      core::Reolap reolap(env.dataset.store.get(), env.vsg.get(),
                          env.text.get(), cached ? &engine : nullptr);
      double pass_ms[2] = {0, 0};
      for (int pass = 0; pass < 2; ++pass) {
        for (const auto& tuple : tuples) {
          core::ReolapStats stats;
          auto queries = reolap.Synthesize(tuple, {}, &stats);
          if (queries.ok()) pass_ms[pass] += stats.validate_millis;
        }
      }
      if (!cached) off_pass2 = pass_ms[1];
      double speedup = pass_ms[1] > 0 ? off_pass2 / pass_ms[1] : 0.0;
      ablation.AddRow({name, cached ? "on" : "off", Ms(pass_ms[0]),
                       Ms(pass_ms[1]), Ms(speedup)});
      const auto cache = engine.cache_stats();
      log.AddRecord()
          .Str("dataset", name)
          .Str("mode", "validation_cache_ablation")
          .Bool("engine_cache", cached)
          .Int("inputs", static_cast<long long>(tuples.size()))
          .Num("pass1_validate_ms", pass_ms[0])
          .Num("pass2_validate_ms", pass_ms[1])
          .Num("pass2_speedup_vs_nocache", speedup)
          .Int("result_cache_hits", static_cast<long long>(cache.result_hits))
          .Int("plan_cache_hits", static_cast<long long>(cache.plan_hits));
    }

    // --- Executor-mode delta: run every synthesized candidate, uncached -
    // The "execute what ReOLAP synthesized" workload through each join
    // core (raw Execute, no engine cache): the pure executor cost of
    // materializing candidate answers.
    core::Reolap plain(env.dataset.store.get(), env.vsg.get(),
                       env.text.get());
    std::vector<sparql::SelectQuery> candidates;
    for (const auto& tuple : tuples) {
      auto queries = plain.Synthesize(tuple);
      if (!queries.ok()) continue;
      for (const auto& c : *queries) candidates.push_back(c.query);
    }
    for (sparql::ExecutorKind kind :
         {sparql::ExecutorKind::kVolcano, sparql::ExecutorKind::kVectorized}) {
      sparql::ExecOptions exec;
      exec.timeout_millis = 60000;
      exec.executor = kind;
      size_t rows = 0;
      util::WallTimer timer;
      for (const auto& q : candidates) {
        auto table = sparql::Execute(env.store(), q, exec);
        if (table.ok()) rows += table->row_count();
      }
      log.AddRecord()
          .Str("dataset", name)
          .Str("mode", "executor_delta_uncached")
          .Str("executor",
               kind == sparql::ExecutorKind::kVolcano ? "volcano"
                                                      : "vectorized")
          .Int("candidates", static_cast<long long>(candidates.size()))
          .Num("eval_ms", timer.ElapsedMillis())
          .Int("result_rows", static_cast<long long>(rows));
    }
  }
  ablation.Print(std::cout);
  std::cout << "\nExpectation: with the engine cache on, pass 2 validation "
               "is served from the result cache (>=2x over the uncached "
               "pass 2).\n";
  log.Write("BENCH_reolap.json");
  return 0;
}
