// Reproduces the paper's Figure 10 and Table 2: the qualitative comparison
// between the SPARQLByE-style baseline and ReOLAP on the same input, plus
// the sample result table for <"Germany", "2014">.
//
// Paper reference: for <"Asia", "2011"> SPARQLByE recognizes the two
// entities but produces a minimal BGP that never connects them to
// observations and has no aggregation (Figure 10a); ReOLAP produces a full
// SELECT..GROUP BY analytical query over the observations (Figure 10b).

#include <iostream>

#include "bench/bench_common.h"
#include "core/sparqlbye_baseline.h"
#include "engine/query_engine.h"
#include "sparql/ast.h"

int main() {
  using namespace re2xolap;
  using namespace re2xolap::bench;

  BenchEnv env = MakeEnv("Eurostat", 30000);
  engine::QueryEngine engine(env.store());
  core::Reolap reolap(env.dataset.store.get(), env.vsg.get(), env.text.get(),
                      &engine);
  core::SparqlByEBaseline baseline(env.dataset.store.get(), env.text.get());

  const std::vector<std::string> example = {"Asia", "2011"};
  std::cout << "=== Figure 10: input <\"Asia\", \"2011\"> ===\n\n";

  std::cout << "--- (a) SPARQLByE-style baseline ---\n";
  util::WallTimer timer;
  auto bq = baseline.Synthesize(example);
  double baseline_ms = timer.ElapsedMillis();
  if (bq.ok()) {
    std::cout << sparql::ToSparql(*bq) << "\n";
    std::cout << "\n[" << Ms(baseline_ms)
              << " ms] No aggregation, no GROUP BY, entities not connected "
                 "to observations.\n";
  } else {
    std::cout << "baseline failed: " << bq.status() << "\n";
  }

  std::cout << "\n--- (b) ReOLAP ---\n";
  timer.Restart();
  auto queries = reolap.Synthesize(example);
  double reolap_ms = timer.ElapsedMillis();
  if (!queries.ok() || queries->empty()) {
    std::cout << "ReOLAP produced no queries\n";
    return 1;
  }
  for (const core::CandidateQuery& q : *queries) {
    std::cout << "# " << q.description << "\n"
              << sparql::ToSparql(q.query) << "\n\n";
  }
  std::cout << "[" << Ms(reolap_ms) << " ms] " << queries->size()
            << " full analytical quer"
            << (queries->size() == 1 ? "y" : "ies")
            << " with measures, grouping and aggregation.\n";

  // --- Table 2 -----------------------------------------------------------------
  std::cout << "\n=== Table 2: resultset for <\"Germany\", \"2014\">, "
               "\"Germany\" as Country of Destination ===\n\n";
  auto t2q = reolap.Synthesize({"Germany", "2014"});
  if (t2q.ok()) {
    for (const core::CandidateQuery& q : *t2q) {
      if (q.description.find("Destination") == std::string::npos) continue;
      sparql::SelectQuery ordered = q.query;
      ordered.order_by.push_back(
          sparql::OrderKey{q.measure_columns[0], false});
      auto table = engine.Execute(ordered);
      if (table.ok()) {
        (*table)->Print(std::cout, 8);
        std::cout << "(" << (*table)->row_count()
                  << " rows total; top rows by SUM as in the paper's "
                     "Table 2)\n";
      }
      break;
    }
  }
  return 0;
}
