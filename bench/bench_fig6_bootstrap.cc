// Reproduces the paper's Figure 6c: system bootstrap time (building the
// Virtual Schema Graph + text index) per dataset, plus an observation-count
// sweep demonstrating the paper's claim that bootstrap cost is driven by
// schema complexity (members/attributes), with the store's data-serving
// cost as the dominating factor — not by the raw observation count alone.
//
// Paper reference: bootstrap takes ~25 min (DBpedia) to ~60 min (Eurostat)
// against Virtuoso over the full dumps; here the store is in-process and
// datasets are scaled, so absolute numbers are smaller. The shape that must
// hold: bootstrap scales with what the store must serve (members visited,
// scans), and per-dataset ordering follows schema/member complexity.

#include <iostream>

#include "bench/bench_common.h"

int main() {
  using namespace re2xolap;
  using namespace re2xolap::bench;

  std::cout << "=== Figure 6c: bootstrap time per dataset ===\n\n";
  util::TablePrinter t({"Dataset", "#Obs", "Generate (ms)", "VGraph (ms)",
                        "TextIndex (ms)", "Bootstrap total (ms)",
                        "Store scans", "Members visited"});
  for (const std::string& name : AllDatasets()) {
    uint64_t obs = DefaultObservations(name);
    BenchEnv env = MakeEnv(name, obs);
    t.AddRow({name, std::to_string(obs), Ms(env.generate_millis),
              Ms(env.vsg_millis), Ms(env.text_millis),
              Ms(env.vsg_millis + env.text_millis),
              std::to_string(env.vsg_stats.store_scans),
              std::to_string(env.vsg_stats.members_visited)});
  }
  t.Print(std::cout);

  std::cout << "\n=== Sweep: Eurostat bootstrap vs observation count ===\n"
               "(the virtual-graph hierarchy crawl is schema-bound; only the "
               "observation-classification pass scales with #obs)\n\n";
  util::TablePrinter sweep({"#Obs", "VGraph (ms)", "Schema crawl scans",
                            "Levels", "Members"});
  for (uint64_t obs : {10000u, 40000u, 160000u}) {
    BenchEnv env = MakeEnv("Eurostat", obs);
    sweep.AddRow({std::to_string(obs), Ms(env.vsg_millis),
                  std::to_string(env.vsg_stats.store_scans),
                  std::to_string(env.vsg->level_count()),
                  std::to_string(env.vsg->total_members())});
  }
  sweep.Print(std::cout);
  std::cout << "\nShape check: levels/members saturate once every member is "
               "referenced; VGraph build time grows only with the linear "
               "observation scan, not with schema work.\n";
  return 0;
}
