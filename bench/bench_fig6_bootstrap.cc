// Reproduces the paper's Figure 6c: system bootstrap time (building the
// Virtual Schema Graph + text index) per dataset, plus an observation-count
// sweep demonstrating the paper's claim that bootstrap cost is driven by
// schema complexity (members/attributes), with the store's data-serving
// cost as the dominating factor — not by the raw observation count alone.
//
// Paper reference: bootstrap takes ~25 min (DBpedia) to ~60 min (Eurostat)
// against Virtuoso over the full dumps; here the store is in-process and
// datasets are scaled, so absolute numbers are smaller. The shape that must
// hold: bootstrap scales with what the store must serve (members visited,
// scans), and per-dataset ordering follows schema/member complexity.

#include <cstdio>
#include <iostream>
#include <sstream>

#include "bench/bench_common.h"
#include "rdf/ntriples.h"
#include "storage/snapshot.h"
#include "util/thread_pool.h"

int main() {
  using namespace re2xolap;
  using namespace re2xolap::bench;

  JsonBenchLog log("fig6_bootstrap");

  std::cout << "=== Figure 6c: bootstrap time per dataset ===\n\n";
  util::TablePrinter t({"Dataset", "#Obs", "Generate (ms)", "VGraph (ms)",
                        "TextIndex (ms)", "Bootstrap total (ms)",
                        "Store scans", "Members visited"});
  for (const std::string& name : AllDatasets()) {
    uint64_t obs = DefaultObservations(name);
    BenchEnv env = MakeEnv(name, obs);
    t.AddRow({name, std::to_string(obs), Ms(env.generate_millis),
              Ms(env.vsg_millis), Ms(env.text_millis),
              Ms(env.vsg_millis + env.text_millis),
              std::to_string(env.vsg_stats.store_scans),
              std::to_string(env.vsg_stats.members_visited)});
  }
  t.Print(std::cout);

  std::cout << "\n=== Sweep: Eurostat bootstrap vs observation count ===\n"
               "(the virtual-graph hierarchy crawl is schema-bound; only the "
               "observation-classification pass scales with #obs)\n\n";
  util::TablePrinter sweep({"#Obs", "VGraph (ms)", "Schema crawl scans",
                            "Levels", "Members"});
  for (uint64_t obs : {10000u, 40000u, 160000u}) {
    BenchEnv env = MakeEnv("Eurostat", obs);
    sweep.AddRow({std::to_string(obs), Ms(env.vsg_millis),
                  std::to_string(env.vsg_stats.store_scans),
                  std::to_string(env.vsg->level_count()),
                  std::to_string(env.vsg->total_members())});
  }
  sweep.Print(std::cout);
  std::cout << "\nShape check: levels/members saturate once every member is "
               "referenced; VGraph build time grows only with the linear "
               "observation scan, not with schema work.\n";

  // --- Ablation: cold bootstrap vs snapshot restore -------------------------
  //
  // The cold path is the full journey a fresh process takes: parse the
  // N-Triples dump, Freeze (sort 3 permutations + stats), build the text
  // index, build the virtual schema graph. The warm path loads a snapshot
  // image saved by a previous run (both copy and zero-copy mmap modes) and
  // reconstructs the schema graph from its serialized parts.
  std::cout << "\n=== Ablation: cold parse+freeze+bootstrap vs snapshot "
               "load ===\n\n";
  util::ThreadPool pool(util::ThreadPool::DefaultThreads());
  util::TablePrinter ab({"Dataset", "Cold (ms)", "Save (ms)", "Image (MB)",
                         "Load copy (ms)", "Load mmap (ms)", "Speedup copy",
                         "Speedup mmap"});
  for (const std::string& name : AllDatasets()) {
    uint64_t obs = DefaultObservations(name);
    BenchEnv env = MakeEnv(name, obs);

    std::ostringstream nt;
    rdf::WriteNTriples(env.store(), nt);
    const std::string dump = nt.str();

    util::WallTimer timer;
    rdf::TripleStore cold_store;
    if (auto st = rdf::ParseNTriples(dump, &cold_store); !st.ok()) {
      std::cerr << "reparse failed: " << st << "\n";
      return 1;
    }
    cold_store.Freeze(&pool);
    rdf::TextIndex cold_text(cold_store);
    auto cold_vsg = core::VirtualSchemaGraph::Build(
        cold_store, env.dataset.spec.observation_class);
    if (!cold_vsg.ok()) {
      std::cerr << "cold bootstrap failed: " << cold_vsg.status() << "\n";
      return 1;
    }
    double cold_millis = timer.ElapsedMillis();

    const std::string path = "/tmp/bench_fig6_" + name + ".snap";
    storage::SnapshotWriteOptions write_options;
    write_options.pool = &pool;
    storage::VsgImage image = storage::MakeVsgImage(*env.vsg);
    timer.Restart();
    if (auto st = storage::SaveSnapshot(path, env.store(), env.text.get(),
                                        &image, write_options);
        !st.ok()) {
      std::cerr << "save failed: " << st << "\n";
      return 1;
    }
    double save_millis = timer.ElapsedMillis();
    auto info = storage::InspectSnapshot(path);
    uint64_t image_bytes = info.ok() ? info->file_bytes : 0;

    // Warm restore includes schema-graph reconstruction so both paths end
    // at the same ready-to-query state.
    auto restore = [&](bool use_mmap) -> double {
      storage::SnapshotLoadOptions load_options;
      load_options.pool = &pool;
      load_options.use_mmap = use_mmap;
      util::WallTimer t2;
      auto loaded = storage::LoadSnapshot(path, load_options);
      if (!loaded.ok()) {
        std::cerr << "load failed: " << loaded.status() << "\n";
        std::exit(1);
      }
      auto graph = core::VirtualSchemaGraph::FromParts(
          std::move(loaded->vsg->nodes), std::move(loaded->vsg->edges),
          std::move(loaded->vsg->measures),
          std::move(loaded->vsg->observation_attrs));
      if (!graph.ok()) {
        std::cerr << "vsg restore failed: " << graph.status() << "\n";
        std::exit(1);
      }
      return t2.ElapsedMillis();
    };
    double load_copy_millis = restore(false);
    double load_mmap_millis = restore(true);
    std::remove(path.c_str());

    double speedup_copy = cold_millis / load_copy_millis;
    double speedup_mmap = cold_millis / load_mmap_millis;
    ab.AddRow({name, Ms(cold_millis), Ms(save_millis),
               Mb(image_bytes), Ms(load_copy_millis), Ms(load_mmap_millis),
               Ms(speedup_copy) + "x", Ms(speedup_mmap) + "x"});

    log.AddRecord()
        .Str("dataset", name)
        .Int("observations", static_cast<long long>(obs))
        .Int("triples", static_cast<long long>(env.store().size()))
        .Num("cold_bootstrap_millis", cold_millis)
        .Num("snapshot_save_millis", save_millis)
        .Int("snapshot_bytes", static_cast<long long>(image_bytes))
        .Num("snapshot_load_copy_millis", load_copy_millis)
        .Num("snapshot_load_mmap_millis", load_mmap_millis)
        .Num("speedup_copy", speedup_copy)
        .Num("speedup_mmap", speedup_mmap)
        .Num("vsg_build_millis", env.vsg_millis)
        .Num("text_index_millis", env.text_millis);
  }
  ab.Print(std::cout);
  std::cout << "\nShape check: snapshot restore skips parsing, permutation "
               "sorts, stats, text tokenization, and the schema crawl — the "
               "warm path is I/O plus validation, so the speedup grows with "
               "dataset size (mmap mode additionally defers index reads to "
               "first touch).\n";

  log.Write("BENCH_fig6.json");
  return 0;
}
