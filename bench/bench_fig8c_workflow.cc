// Reproduces the paper's Figure 8c: the evolution of an exploration
// workflow on Eurostat — ReOLAP, then Disaggregate twice, then Similarity
// Search, then TopK — reporting the cumulative number of exploration paths
// and tuples the system gives access to at each interaction.
//
// Paper reference: starting from a single example, 4 query interpretations
// at the first step; after 4 interactions the system gives access to
// ~12,000 distinct paths and ~8,000 tuples; each TopK reformulation at the
// 5th interaction filters tuples and adds further paths.

#include <iostream>

#include "bench/bench_common.h"

int main() {
  using namespace re2xolap;
  using namespace re2xolap::bench;

  BenchEnv env = MakeEnv("Eurostat", DefaultObservations("Eurostat"));
  core::Session session(env.dataset.store.get(), env.vsg.get(),
                        env.text.get());

  std::cout << "=== Figure 8c: exploration workflow on Eurostat ===\n"
               "Workflow: ReOLAP(\"Germany\") -> Disaggregate -> "
               "Disaggregate -> Similarity -> TopK\n\n";
  util::TablePrinter t({"Interaction", "Step", "Options offered",
                        "Cumulative paths", "Cumulative tuples"});

  auto add_row = [&](const std::string& step, size_t options) {
    const core::ExplorationStats& st = session.stats();
    t.AddRow({std::to_string(st.interactions), step, std::to_string(options),
              std::to_string(st.cumulative_paths),
              std::to_string(st.cumulative_tuples)});
  };

  auto candidates = session.Start({"Germany"});
  if (!candidates.ok() || candidates->empty()) {
    std::cerr << "synthesis failed\n";
    return 1;
  }
  add_row("ReOLAP", candidates->size());
  session.PickCandidate(0);
  session.Execute().ok();

  for (int round = 1; round <= 2; ++round) {
    auto dis = session.Refine(core::RefinementKind::kDisaggregate);
    if (!dis.ok() || dis->empty()) {
      std::cerr << "disaggregate failed\n";
      return 1;
    }
    add_row("Disaggregate." + std::to_string(round), dis->size());
    session.PickRefinement(0);
    session.Execute().ok();
  }

  auto sim = session.Refine(core::RefinementKind::kSimilarity);
  if (sim.ok()) {
    add_row("Similarity", sim->size());
    if (!sim->empty()) {
      session.PickRefinement(0);
      session.Execute().ok();
    }
  }

  auto topk = session.Refine(core::RefinementKind::kTopK);
  if (topk.ok()) {
    add_row("TopK", topk->size());
    if (!topk->empty()) {
      session.PickRefinement(0);
      session.Execute().ok();
    }
  }

  t.Print(std::cout);
  std::cout << "\nShape check: each interaction multiplies the reachable "
               "exploration paths while individual refinements keep result "
               "sets manageable; after ~4 interactions the user has touched "
               "thousands of tuples through a handful of clicks.\n";
  return 0;
}
