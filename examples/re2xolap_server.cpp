// re2xolap_server: the HTTP front door as a process.
//
//   re2xolap_server <file.snap> [options]
//     --bind=ADDR           bind address        (default 127.0.0.1)
//     --port=N              TCP port, 0=ephemeral (default 8280)
//     --workers=N           in-flight concurrency cap C (default 8)
//     --queue=N             admission queue capacity (default 64)
//     --deadline-ms=N       default per-request deadline (default 10000)
//     --drain-grace-ms=N    drain grace before guard-cancel (default 2000)
//     --query-log=PATH      arm the JSONL query-log sink
//     --live                enter live mode: POST /ingest applies N-Triples
//                           batches while queries keep serving (implied
//                           when the image is a version 3 live snapshot)
//     --per-client-cap=N    fair shedding: max queued requests per client
//                           IP (default 0 = disabled)
//
// Boots the dataset from a snapshot image (store always; text index +
// schema graph when the image carries them, enabling the /session
// routes), serves until SIGTERM/SIGINT, then drains gracefully: stop
// accepting, finish or guard-cancel in-flight requests, flush the query
// log, exit 0. The bound port is printed as "listening on <addr>:<port>"
// so scripts driving an ephemeral port can scrape it.

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "core/virtual_schema_graph.h"
#include "engine/query_engine.h"
#include "obs/query_log.h"
#include "server/server.h"
#include "storage/snapshot.h"
#include "store/ingestor.h"
#include "util/thread_pool.h"

namespace {

using namespace re2xolap;

server::Server* g_server = nullptr;

extern "C" void HandleSignal(int) {
  // Async-signal-safe: RequestStop only stores a flag and writes one
  // byte to the acceptor's wake pipe.
  if (g_server != nullptr) g_server->RequestStop();
}

int Usage() {
  std::cerr << "usage: re2xolap_server <file.snap> [--bind=ADDR] [--port=N]\n"
            << "         [--workers=N] [--queue=N] [--deadline-ms=N]\n"
            << "         [--drain-grace-ms=N] [--query-log=PATH] [--live]\n"
            << "         [--per-client-cap=N]\n";
  return 1;
}

bool ParseUint(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string snapshot_path = argv[1];
  server::ServerConfig config;
  config.port = 8280;
  std::string query_log_path;
  bool live = false;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* prefix) -> std::string {
      return arg.substr(std::string(prefix).size());
    };
    uint64_t n = 0;
    if (arg.rfind("--bind=", 0) == 0) {
      config.bind_address = value("--bind=");
    } else if (arg.rfind("--port=", 0) == 0 && ParseUint(value("--port="), &n)) {
      config.port = static_cast<uint16_t>(n);
    } else if (arg.rfind("--workers=", 0) == 0 &&
               ParseUint(value("--workers="), &n)) {
      config.worker_threads = n;
    } else if (arg.rfind("--queue=", 0) == 0 &&
               ParseUint(value("--queue="), &n)) {
      config.queue_capacity = n;
    } else if (arg.rfind("--deadline-ms=", 0) == 0 &&
               ParseUint(value("--deadline-ms="), &n)) {
      config.default_deadline_millis = n;
    } else if (arg.rfind("--drain-grace-ms=", 0) == 0 &&
               ParseUint(value("--drain-grace-ms="), &n)) {
      config.drain_grace_millis = n;
    } else if (arg.rfind("--query-log=", 0) == 0) {
      query_log_path = value("--query-log=");
    } else if (arg == "--live") {
      live = true;
    } else if (arg.rfind("--per-client-cap=", 0) == 0 &&
               ParseUint(value("--per-client-cap="), &n)) {
      config.per_client_queue_cap = n;
    } else {
      std::cerr << "error: unknown option " << arg << "\n";
      return Usage();
    }
  }

  if (!query_log_path.empty()) {
    obs::QueryLogConfig log_config = obs::QueryLog::Global().config();
    log_config.sink_path = query_log_path;
    obs::QueryLog::Global().Configure(std::move(log_config));
  }

  util::ThreadPool pool(util::ThreadPool::DefaultThreads());
  storage::SnapshotLoadOptions load_options;
  load_options.pool = &pool;
  load_options.use_mmap = true;
  auto loaded = storage::LoadSnapshot(snapshot_path, load_options);
  if (!loaded.ok()) {
    std::cerr << "error: " << loaded.status() << "\n";
    return 1;
  }
  std::cerr << "loaded " << loaded->store->size() << " triples (epoch "
            << loaded->store->freeze_epoch() << ") from " << snapshot_path
            << "\n";

  std::unique_ptr<core::VirtualSchemaGraph> vsg;
  if (loaded->vsg.has_value()) {
    auto graph = core::VirtualSchemaGraph::FromParts(
        std::move(loaded->vsg->nodes), std::move(loaded->vsg->edges),
        std::move(loaded->vsg->measures),
        std::move(loaded->vsg->observation_attrs));
    if (!graph.ok()) {
      std::cerr << "error: " << graph.status() << "\n";
      return 1;
    }
    vsg = std::make_unique<core::VirtualSchemaGraph>(*std::move(graph));
    loaded->vsg.reset();
  }
  if (vsg == nullptr || loaded->text == nullptr) {
    std::cerr << "note: snapshot lacks schema-graph/text-index sections; "
                 "/session routes disabled, /query still served\n";
  }

  engine::QueryEngine engine(*loaded->store);
  server::Dataset dataset;
  dataset.store = loaded->store.get();
  dataset.engine = &engine;
  dataset.vsg = vsg.get();
  dataset.text = loaded->text.get();

  // A version 3 image comes back already live; --live upgrades a frozen
  // image in place. Either way the ingestor enables POST /ingest.
  std::unique_ptr<store::Ingestor> ingestor;
  if (live || loaded->store->live()) {
    if (!loaded->store->live()) loaded->store->EnterLive();
    ingestor = std::make_unique<store::Ingestor>(loaded->store.get(), &pool);
    dataset.ingestor = ingestor.get();
    std::cerr << "live ingestion enabled (POST /ingest, chain depth "
              << loaded->store->chain_depth() << ")\n";
  }

  server::Server srv(dataset, config);
  g_server = &srv;
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  if (util::Status st = srv.Start(); !st.ok()) {
    std::cerr << "error: " << st << "\n";
    return 1;
  }
  std::cout << "listening on " << config.bind_address << ":" << srv.port()
            << std::endl;

  srv.WaitForStopRequest();
  std::cerr << "drain: stopping (grace " << config.drain_grace_millis
            << "ms)\n";
  srv.Stop();
  const server::ServerStats stats = srv.stats();
  std::cerr << "drained: " << stats.requests << " requests ("
            << stats.responses_ok << " ok, " << stats.responses_error
            << " error), " << stats.shed << " shed, peak in-flight "
            << stats.max_inflight << "\n";
  g_server = nullptr;
  return 0;
}
