// The paper's running example (Section 1): journalist Alex explores
// "Requests for Asylum" data without writing SPARQL.
//
//  1. Alex types "Germany" -> ReOLAP proposes interpretations (Germany as
//     country of destination vs. country of origin).
//  2. Alex picks "destination", inspects aggregate totals.
//  3. Alex drills down by continent of origin (Disaggregate).
//  4. Alex keeps only the top destinations (TopK subset).
//  5. Alex asks for countries with similar volumes (Similarity Search).
//
// Build & run:  ./build/examples/asylum_journalist [num_observations]

#include <cstdlib>
#include <iostream>

#include "core/session.h"
#include "qb/datasets.h"
#include "qb/generator.h"
#include "rdf/text_index.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace re2xolap;
  uint64_t n_obs = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;

  std::cout << "=== Generating synthetic Eurostat asylum KG (" << n_obs
            << " observations) ===\n";
  util::WallTimer timer;
  auto ds = qb::Generate(qb::EurostatSpec(n_obs));
  if (!ds.ok()) {
    std::cerr << ds.status() << "\n";
    return 1;
  }
  std::cout << "  " << ds->store->size() << " triples in "
            << timer.ElapsedMillis() << " ms\n";

  timer.Restart();
  auto vsg = core::VirtualSchemaGraph::Build(*ds->store,
                                             ds->spec.observation_class);
  if (!vsg.ok()) {
    std::cerr << vsg.status() << "\n";
    return 1;
  }
  rdf::TextIndex text(*ds->store);
  std::cout << "  bootstrap (virtual graph + text index): "
            << timer.ElapsedMillis() << " ms\n\n";

  core::Session session(ds->store.get(), &*vsg, &text);

  // --- Interaction 1: example -> candidate queries -------------------------
  std::cout << "=== Alex searches for \"Germany\" ===\n";
  auto candidates = session.Start({"Germany"});
  if (!candidates.ok()) {
    std::cerr << candidates.status() << "\n";
    return 1;
  }
  size_t dest_idx = 0;
  for (size_t i = 0; i < candidates->size(); ++i) {
    std::cout << "  [" << i << "] " << (*candidates)[i].description << "\n";
    if ((*candidates)[i].description.find("Destination") !=
        std::string::npos) {
      dest_idx = i;
    }
  }

  // --- Interaction 2: pick "destination" and inspect ------------------------
  std::cout << "\n=== Alex picks interpretation " << dest_idx
            << " (destination) ===\n";
  if (auto st = session.PickCandidate(dest_idx); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  auto table = session.Execute();
  if (!table.ok()) {
    std::cerr << table.status() << "\n";
    return 1;
  }
  std::cout << "Aggregates per country of destination ("
            << (*table)->row_count() << " rows, first 5):\n";
  (*table)->Print(std::cout, 5);

  // --- Interaction 3: drill down by continent of origin ---------------------
  std::cout << "\n=== Alex disaggregates by continent of origin ===\n";
  auto dis = session.Refine(core::RefinementKind::kDisaggregate);
  if (!dis.ok()) {
    std::cerr << dis.status() << "\n";
    return 1;
  }
  size_t pick = 0;
  for (size_t i = 0; i < dis->size(); ++i) {
    std::cout << "  [" << i << "] " << (*dis)[i].description << "\n";
    if ((*dis)[i].description.find("/ Continent") != std::string::npos) {
      pick = i;
    }
  }
  session.PickRefinement(pick);
  table = session.Execute();
  if (!table.ok()) {
    std::cerr << table.status() << "\n";
    return 1;
  }
  std::cout << "\nDestination x continent of origin (" << (*table)->row_count()
            << " rows, first 8):\n";
  (*table)->Print(std::cout, 8);

  // --- Interaction 4: keep only the top destinations -------------------------
  std::cout << "\n=== Alex keeps the top destinations (TopK) ===\n";
  auto topk = session.Refine(core::RefinementKind::kTopK);
  if (!topk.ok()) {
    std::cerr << topk.status() << "\n";
    return 1;
  }
  for (size_t i = 0; i < std::min<size_t>(topk->size(), 4); ++i) {
    std::cout << "  [" << i << "] " << (*topk)[i].description << "\n";
  }
  if (!topk->empty()) {
    session.PickRefinement(0);
    table = session.Execute();
    if (table.ok()) {
      std::cout << "\nAfter the TopK cut (" << (*table)->row_count()
                << " rows, first 8):\n";
      (*table)->Print(std::cout, 8);
    }
    session.Back();  // Alex goes back to explore differently
  }

  // --- Interaction 5: similar destinations -----------------------------------
  std::cout << "\n=== Alex looks for countries similar to Germany ===\n";
  auto sim = session.Refine(core::RefinementKind::kSimilarity);
  if (!sim.ok()) {
    std::cerr << sim.status() << "\n";
    return 1;
  }
  for (const auto& s : *sim) std::cout << "  - " << s.description << "\n";
  if (!sim->empty()) {
    session.PickRefinement(0);
    table = session.Execute();
    if (table.ok()) {
      std::cout << "\nGermany and its most similar destinations ("
                << (*table)->row_count() << " rows, first 12):\n";
      (*table)->Print(std::cout, 12);
    }
  }

  const core::ExplorationStats& stats = session.stats();
  std::cout << "\n=== Session summary ===\n"
            << "  interactions:        " << stats.interactions << "\n"
            << "  exploration paths:   " << stats.cumulative_paths << "\n"
            << "  tuples accessed:     " << stats.cumulative_tuples << "\n";
  return 0;
}
