// re2xolap_snapshot: command-line tool for the snapshot subsystem.
//
//   re2xolap_snapshot build [--format=raw|compressed] <input.nt> <out.snap>
//                           [observation_class_iri]
//       Parses an N-Triples file, freezes the store, builds the text
//       index (and, when an observation class IRI is given, the virtual
//       schema graph) and writes a snapshot image. --format overrides the
//       RE2XOLAP_INDEX_FORMAT default: raw writes a version-1 image,
//       compressed a version-2 image with delta/vbyte block indexes.
//
//   re2xolap_snapshot inspect <file.snap>
//       Prints the header and section table without touching payloads.
//
//   re2xolap_snapshot verify <file.snap>
//       Full integrity pass: header + every section checksum.
//
//   re2xolap_snapshot export <file.snap> <out.nt>
//       Loads an image and writes its triples back out as N-Triples.
//
// Exit status: 0 on success, 1 on any error (corrupt images report the
// typed status message, e.g. "ParseError: snapshot section spo checksum
// mismatch (corrupted image)").

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/session.h"
#include "core/virtual_schema_graph.h"
#include "rdf/ntriples.h"
#include "rdf/text_index.h"
#include "rdf/triple_store.h"
#include "storage/snapshot.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace re2xolap;

int Usage() {
  std::cerr
      << "usage:\n"
      << "  re2xolap_snapshot build [--format=raw|compressed] <input.nt> "
         "<out.snap> [observation_class]\n"
      << "  re2xolap_snapshot inspect <file.snap>\n"
      << "  re2xolap_snapshot verify <file.snap>\n"
      << "  re2xolap_snapshot export <file.snap> <out.nt>\n";
  return 1;
}

int Fail(const util::Status& st) {
  std::cerr << "error: " << st << "\n";
  return 1;
}

bool IsCompressedIndexSection(storage::SectionId id) {
  return id == storage::SectionId::kSpoBlocks ||
         id == storage::SectionId::kPosBlocks ||
         id == storage::SectionId::kOspBlocks;
}

void PrintInfo(const storage::SnapshotInfo& info) {
  std::cout << "version:      " << info.version << "\n"
            << "file bytes:   " << info.file_bytes << "\n"
            << "freeze epoch: " << info.freeze_epoch << "\n"
            << "triples:      " << info.triple_count << "\n"
            << "terms:        " << info.term_count << "\n"
            << "text index:   " << (info.has_text_index ? "yes" : "no") << "\n"
            << "schema graph: " << (info.has_vsg ? "yes" : "no") << "\n"
            << "sections:\n";
  // The raw equivalent of each index permutation is a flat EncodedTriple
  // array: 12 bytes per triple regardless of permutation.
  const uint64_t raw_index_bytes =
      info.triple_count * sizeof(rdf::EncodedTriple);
  uint64_t compressed_total = 0;
  size_t compressed_sections = 0;
  for (const storage::SectionInfo& s : info.sections) {
    std::cout << "  " << storage::SectionName(s.id) << "  offset=" << s.offset
              << "  bytes=" << s.bytes << "  xxh64=" << std::hex << s.checksum
              << std::dec;
    if (IsCompressedIndexSection(s.id) && raw_index_bytes > 0) {
      std::cout << "  raw=" << raw_index_bytes << "  ratio="
                << static_cast<double>(s.bytes) /
                       static_cast<double>(raw_index_bytes);
      compressed_total += s.bytes;
      ++compressed_sections;
    }
    std::cout << "\n";
  }
  if (compressed_sections > 0 && raw_index_bytes > 0) {
    const uint64_t raw_total = compressed_sections * raw_index_bytes;
    std::cout << "index bytes:  compressed=" << compressed_total
              << "  raw equivalent=" << raw_total << "  ratio="
              << static_cast<double>(compressed_total) /
                     static_cast<double>(raw_total)
              << "\n";
  }
}

int CmdBuild(const std::string& input, const std::string& output,
             const std::string& observation_class,
             const std::string& format) {
  std::ifstream in(input);
  if (!in) {
    std::cerr << "error: cannot open " << input << "\n";
    return 1;
  }
  std::ostringstream text_buf;
  text_buf << in.rdbuf();

  util::ThreadPool pool(util::ThreadPool::DefaultThreads());
  util::WallTimer timer;
  rdf::TripleStore store;
  if (format == "compressed") {
    store.set_index_format(rdf::IndexFormat::kCompressed);
  } else if (format == "raw") {
    store.set_index_format(rdf::IndexFormat::kRaw);
  } else if (!format.empty()) {
    std::cerr << "error: unknown --format=" << format
              << " (expected raw or compressed)\n";
    return 1;
  }
  util::Status st = rdf::ParseNTriples(text_buf.str(), &store);
  if (!st.ok()) return Fail(st);
  store.Freeze(&pool);
  std::cout << "parsed+froze " << store.size() << " triples ("
            << store.dictionary().size() << " terms) in "
            << timer.ElapsedMillis() << " ms\n";

  timer.Restart();
  rdf::TextIndex text(store);
  std::cout << "text index: " << text.indexed_literal_count()
            << " literals in " << timer.ElapsedMillis() << " ms\n";

  storage::VsgImage image;
  const storage::VsgImage* image_ptr = nullptr;
  if (!observation_class.empty()) {
    timer.Restart();
    auto vsg = core::VirtualSchemaGraph::Build(store, observation_class);
    if (!vsg.ok()) return Fail(vsg.status());
    image = storage::MakeVsgImage(*vsg);
    image_ptr = &image;
    std::cout << "schema graph: " << vsg->dimension_count() << " dimensions, "
              << vsg->level_count() << " levels in " << timer.ElapsedMillis()
              << " ms\n";
  }

  timer.Restart();
  storage::SnapshotWriteOptions options;
  options.pool = &pool;
  st = storage::SaveSnapshot(output, store, &text, image_ptr, options);
  if (!st.ok()) return Fail(st);
  auto info = storage::InspectSnapshot(output);
  if (!info.ok()) return Fail(info.status());
  std::cout << "wrote " << output << " (" << info->file_bytes << " bytes) in "
            << timer.ElapsedMillis() << " ms\n";
  return 0;
}

int CmdInspect(const std::string& path) {
  auto info = storage::InspectSnapshot(path);
  if (!info.ok()) return Fail(info.status());
  PrintInfo(*info);
  return 0;
}

int CmdVerify(const std::string& path) {
  util::ThreadPool pool(util::ThreadPool::DefaultThreads());
  util::WallTimer timer;
  auto info = storage::VerifySnapshot(path, &pool);
  if (!info.ok()) return Fail(info.status());
  bool compressed = false;
  for (const storage::SectionInfo& s : info->sections) {
    if (IsCompressedIndexSection(s.id)) compressed = true;
  }
  std::cout << "ok: header and all " << info->sections.size()
            << " section checksums verified";
  if (compressed) {
    std::cout << " (incl. per-block checksums and skip-table ordering)";
  }
  std::cout << " in " << timer.ElapsedMillis() << " ms\n";
  PrintInfo(*info);
  return 0;
}

int CmdExport(const std::string& path, const std::string& output) {
  util::ThreadPool pool(util::ThreadPool::DefaultThreads());
  storage::SnapshotLoadOptions options;
  options.pool = &pool;
  options.use_mmap = true;
  auto loaded = storage::LoadSnapshot(path, options);
  if (!loaded.ok()) return Fail(loaded.status());
  std::ofstream out(output);
  if (!out) {
    std::cerr << "error: cannot open " << output << " for writing\n";
    return 1;
  }
  rdf::WriteNTriples(*loaded->store, out);
  std::cout << "exported " << loaded->store->size() << " triples to "
            << output << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "build") {
    // Optional --format=raw|compressed anywhere after the command; the
    // default follows RE2XOLAP_INDEX_FORMAT like every other entry point.
    std::string format;
    std::vector<std::string> args;
    for (int i = 2; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--format=", 0) == 0) {
        format = a.substr(9);
      } else {
        args.push_back(std::move(a));
      }
    }
    if (args.size() == 2 || args.size() == 3) {
      return CmdBuild(args[0], args[1], args.size() == 3 ? args[2] : "",
                      format);
    }
    return Usage();
  }
  if (cmd == "inspect" && argc == 3) return CmdInspect(argv[2]);
  if (cmd == "verify" && argc == 3) return CmdVerify(argv[2]);
  if (cmd == "export" && argc == 4) return CmdExport(argv[2], argv[3]);
  return Usage();
}
