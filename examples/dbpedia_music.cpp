// Exploring a heterogeneous open-domain KG: the synthetic DBpedia
// creative-work view, the paper's worst case — label sets shared across
// dimensions (a genre name matches the work's genre, the artist's genre
// and the record label's genre) and M-to-N hierarchy steps.
//
// Demonstrates why ambiguous examples produce multiple interpretations and
// how the user disambiguates by picking a candidate.
//
// Build & run:  ./build/examples/dbpedia_music [num_observations]

#include <cstdlib>
#include <iostream>

#include "core/session.h"
#include "core/sparqlbye_baseline.h"
#include "qb/datasets.h"
#include "qb/generator.h"
#include "rdf/text_index.h"

int main(int argc, char** argv) {
  using namespace re2xolap;
  uint64_t n_obs = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 30000;

  std::cout << "=== Generating synthetic DBpedia creative-work KG (" << n_obs
            << " observations) ===\n";
  auto ds = qb::Generate(qb::DbpediaSpec(n_obs));
  if (!ds.ok()) {
    std::cerr << ds.status() << "\n";
    return 1;
  }
  auto vsg = core::VirtualSchemaGraph::Build(*ds->store,
                                             ds->spec.observation_class);
  if (!vsg.ok()) {
    std::cerr << vsg.status() << "\n";
    return 1;
  }
  rdf::TextIndex text(*ds->store);
  std::cout << "  " << ds->store->size() << " triples; "
            << vsg->dimension_count() << " dimensions, " << vsg->level_count()
            << " levels, " << vsg->total_members() << " members\n\n";

  core::Session session(ds->store.get(), &*vsg, &text);

  // "Jazz" is deliberately ambiguous: it labels a work genre, an artist
  // genre, and a label genre.
  std::cout << "=== Example: <\"Jazz\"> (ambiguous across dimensions) ===\n";
  auto candidates = session.Start({"Jazz"});
  if (!candidates.ok()) {
    std::cerr << candidates.status() << "\n";
    return 1;
  }
  std::cout << "ReOLAP found " << candidates->size()
            << " interpretations:\n";
  for (size_t i = 0; i < candidates->size(); ++i) {
    std::cout << "  [" << i << "] " << (*candidates)[i].description << "\n";
  }
  if (candidates->empty()) return 1;

  session.PickCandidate(0);
  auto table = session.Execute();
  if (!table.ok()) {
    std::cerr << table.status() << "\n";
    return 1;
  }
  std::cout << "\nAggregate popularity per genre (" << (*table)->row_count()
            << " rows, first 6):\n";
  (*table)->Print(std::cout, 6);

  // Drill into the era dimension of genres.
  auto dis = session.Refine(core::RefinementKind::kDisaggregate);
  if (dis.ok() && !dis->empty()) {
    std::cout << "\n" << dis->size()
              << " disaggregation paths available; picking the first: "
              << (*dis)[0].description << "\n";
    session.PickRefinement(0);
    table = session.Execute();
    if (table.ok()) {
      std::cout << "(" << (*table)->row_count() << " rows, first 6):\n";
      (*table)->Print(std::cout, 6);
    }
  }

  // Contrast with the SPARQLByE-style baseline (paper Figure 10): it maps
  // the keyword to an entity but produces no analytical query.
  std::cout << "\n=== SPARQLByE baseline on the same example ===\n";
  core::SparqlByEBaseline baseline(ds->store.get(), &text);
  auto bq = baseline.Synthesize({"Jazz"});
  if (bq.ok()) {
    std::cout << sparql::ToSparql(*bq) << "\n";
    std::cout << "\n(no aggregation, no grouping, no link to observations "
                 "— unusable for analytics)\n";
  }
  return 0;
}
