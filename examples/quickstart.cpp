// Quickstart: load a tiny statistical KG from N-Triples text, bootstrap
// RE2xOLAP, reverse-engineer an analytical query from the example
// <"Germany", "2014">, and print its results (cf. paper Table 2).
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "core/reolap.h"
#include "core/virtual_schema_graph.h"
#include "engine/query_engine.h"
#include "rdf/ntriples.h"
#include "rdf/text_index.h"
#include "rdf/triple_store.h"
#include "sparql/ast.h"

namespace {

// A fragment in the shape of the paper's Figure 1.
constexpr char kData[] = R"(
<http://ex/origin/syria>   <http://www.w3.org/2000/01/rdf-schema#label> "Syria" .
<http://ex/origin/china>   <http://www.w3.org/2000/01/rdf-schema#label> "China" .
<http://ex/continent/asia> <http://www.w3.org/2000/01/rdf-schema#label> "Asia" .
<http://ex/dest/germany>   <http://www.w3.org/2000/01/rdf-schema#label> "Germany" .
<http://ex/dest/france>    <http://www.w3.org/2000/01/rdf-schema#label> "France" .
<http://ex/month/2014-10>  <http://www.w3.org/2000/01/rdf-schema#label> "October 2014" .
<http://ex/year/2014>      <http://www.w3.org/2000/01/rdf-schema#label> "2014" .
<http://ex/origin/syria>   <http://ex/inContinent> <http://ex/continent/asia> .
<http://ex/origin/china>   <http://ex/inContinent> <http://ex/continent/asia> .
<http://ex/month/2014-10>  <http://ex/inYear> <http://ex/year/2014> .
<http://ex/obs/0> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Observation> .
<http://ex/obs/0> <http://ex/countryOrigin> <http://ex/origin/syria> .
<http://ex/obs/0> <http://ex/countryDestination> <http://ex/dest/germany> .
<http://ex/obs/0> <http://ex/refPeriod> <http://ex/month/2014-10> .
<http://ex/obs/0> <http://ex/numApplicants> "403"^^xsd:integer .
<http://ex/obs/1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Observation> .
<http://ex/obs/1> <http://ex/countryOrigin> <http://ex/origin/china> .
<http://ex/obs/1> <http://ex/countryDestination> <http://ex/dest/germany> .
<http://ex/obs/1> <http://ex/refPeriod> <http://ex/month/2014-10> .
<http://ex/obs/1> <http://ex/numApplicants> "80"^^xsd:integer .
<http://ex/obs/2> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Observation> .
<http://ex/obs/2> <http://ex/countryOrigin> <http://ex/origin/syria> .
<http://ex/obs/2> <http://ex/countryDestination> <http://ex/dest/france> .
<http://ex/obs/2> <http://ex/refPeriod> <http://ex/month/2014-10> .
<http://ex/obs/2> <http://ex/numApplicants> "120"^^xsd:integer .
)";

}  // namespace

int main() {
  using namespace re2xolap;

  // 1. Load the KG.
  rdf::TripleStore store;
  util::Status st = rdf::ParseNTriples(kData, &store);
  if (!st.ok()) {
    std::cerr << "load failed: " << st << "\n";
    return 1;
  }
  store.Freeze();
  std::cout << "Loaded " << store.size() << " triples.\n\n";

  // 2. Bootstrap: virtual schema graph + full-text index.
  auto vsg = core::VirtualSchemaGraph::Build(store, "http://ex/Observation");
  if (!vsg.ok()) {
    std::cerr << "bootstrap failed: " << vsg.status() << "\n";
    return 1;
  }
  rdf::TextIndex text(store);
  std::cout << "Virtual schema graph: " << vsg->dimension_count()
            << " dimensions, " << vsg->level_count() << " levels, "
            << vsg->total_members() << " members.\n\n";

  // 3. Reverse-engineer queries from the example <"Germany", "2014">.
  // All execution — including ReOLAP's validation probes — goes through
  // one QueryEngine, which caches plans and results for the frozen store.
  engine::QueryEngine engine(store);
  core::Reolap reolap(&store, &*vsg, &text, &engine);
  auto queries = reolap.Synthesize({"Germany", "2014"});
  if (!queries.ok()) {
    std::cerr << "synthesis failed: " << queries.status() << "\n";
    return 1;
  }
  std::cout << "ReOLAP produced " << queries->size()
            << " candidate query(ies) for <\"Germany\", \"2014\">:\n\n";
  for (size_t i = 0; i < queries->size(); ++i) {
    std::cout << "  [" << i << "] " << (*queries)[i].description << "\n"
              << sparql::ToSparql((*queries)[i].query) << "\n\n";
  }

  // 4. Execute the first candidate through the engine and print its
  // result table (a second Execute of the same query would be a cache
  // hit).
  auto result = engine.Execute((*queries)[0].query);
  if (!result.ok()) {
    std::cerr << "execution failed: " << result.status() << "\n";
    return 1;
  }
  std::cout << "Results:\n";
  (*result)->Print(std::cout);
  return 0;
}
