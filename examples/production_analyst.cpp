// Environmental-science scenario from the paper's user interviews
// (Section 7.2): "I would expect it to contain information about China's
// electricity production, and I want to see other countries with similar
// production."
//
// Runs on the synthetic Production macro-economic KG (7 dimensions).
//
// Build & run:  ./build/examples/production_analyst [num_observations]

#include <cstdlib>
#include <iostream>

#include "core/session.h"
#include "qb/datasets.h"
#include "qb/generator.h"
#include "rdf/text_index.h"

int main(int argc, char** argv) {
  using namespace re2xolap;
  uint64_t n_obs = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;

  std::cout << "=== Generating synthetic Production KG (" << n_obs
            << " observations) ===\n";
  auto ds = qb::Generate(qb::ProductionSpec(n_obs));
  if (!ds.ok()) {
    std::cerr << ds.status() << "\n";
    return 1;
  }
  auto vsg = core::VirtualSchemaGraph::Build(*ds->store,
                                             ds->spec.observation_class);
  if (!vsg.ok()) {
    std::cerr << vsg.status() << "\n";
    return 1;
  }
  rdf::TextIndex text(*ds->store);
  std::cout << "  " << ds->store->size() << " triples; "
            << vsg->dimension_count() << " dimensions, "
            << vsg->total_members() << " members\n\n";

  core::Session session(ds->store.get(), &*vsg, &text);

  // The analyst starts from two entities: a country and an industry. On a
  // sparse (scaled-down) dataset no observation may jointly carry both —
  // ReOLAP's validation then correctly prunes every combination, and the
  // analyst falls back to the country alone.
  std::cout << "=== Example: <\"China\", \"Electricity Production\"> ===\n";
  auto candidates = session.Start({"China", "Electricity Production"});
  if (!candidates.ok()) {
    std::cerr << candidates.status() << "\n";
    return 1;
  }
  if (candidates->empty()) {
    std::cout << "  (no observation jointly matches both entities at this "
                 "scale; falling back to <\"China\">)\n";
    candidates = session.Start({"China"});
    if (!candidates.ok() || candidates->empty()) {
      std::cerr << "no candidate queries\n";
      return 1;
    }
  }
  for (size_t i = 0; i < candidates->size(); ++i) {
    std::cout << "  [" << i << "] " << (*candidates)[i].description << "\n";
  }
  session.PickCandidate(0);
  auto table = session.Execute();
  if (!table.ok()) {
    std::cerr << table.status() << "\n";
    return 1;
  }
  std::cout << "\nOutput per country x industry (" << (*table)->row_count()
            << " rows, first 6):\n";
  (*table)->Print(std::cout, 6);

  // Disaggregate by year to see the time profile.
  auto dis = session.Refine(core::RefinementKind::kDisaggregate);
  if (!dis.ok()) {
    std::cerr << dis.status() << "\n";
    return 1;
  }
  size_t year_idx = 0;
  for (size_t i = 0; i < dis->size(); ++i) {
    if ((*dis)[i].description.find("For Year") != std::string::npos) {
      year_idx = i;
      break;
    }
  }
  std::cout << "\n=== Disaggregate: " << (*dis)[year_idx].description
            << " ===\n";
  session.PickRefinement(year_idx);
  table = session.Execute();
  if (table.ok()) {
    std::cout << "(" << (*table)->row_count() << " rows, first 6):\n";
    (*table)->Print(std::cout, 6);
  }

  // "other countries with similar production" — similarity over the yearly
  // production profile.
  std::cout << "\n=== Countries with production profiles similar to China "
               "===\n";
  auto sim = session.Refine(core::RefinementKind::kSimilarity);
  if (!sim.ok()) {
    std::cerr << sim.status() << "\n";
    return 1;
  }
  if (sim->empty()) {
    std::cout << "  (no similarity refinement available)\n";
    return 0;
  }
  std::cout << "  " << (*sim)[0].description << "\n";
  session.PickRefinement(0);
  table = session.Execute();
  if (table.ok()) {
    std::cout << "\n(" << (*table)->row_count() << " rows, first 12):\n";
    (*table)->Print(std::cout, 12);
  }

  std::cout << "\nExploration paths offered in this session: "
            << session.stats().cumulative_paths << "\n";
  return 0;
}
