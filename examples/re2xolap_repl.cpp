// Interactive RE2xOLAP shell — the closest analog of the paper's server
// application. Drives a full exploration session from the command line.
//
// Usage:  ./build/examples/re2xolap_repl [eurostat|production|dbpedia] [obs]
// Commands (also: `help`):
//   profile                 print the dataset profile
//   find <v1> [| <v2> ...]  reverse-engineer queries from example values
//   pick <n>                choose a candidate query / refinement
//   show [n]                execute the current query, print first n rows
//   sparql                  print the current query as SPARQL text
//   explain                 run the current query with per-operator profiling
//   refine dis|topk|perc|sim|cluster   propose refinements
//   neg <value>             exclude a negative example
//   back                    undo the last refinement
//   stats                   session statistics (exploration paths, tuples)
//   quit
//
// Works scripted too:  echo "find Germany | 2014\npick 0\nshow" | repl

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include <fstream>

#include "core/profile.h"
#include "core/session.h"
#include "sparql/csv.h"
#include "sparql/explain.h"
#include "qb/datasets.h"
#include "qb/generator.h"
#include "rdf/text_index.h"
#include "util/string_utils.h"

namespace {

using namespace re2xolap;

std::vector<std::string> ParseValues(const std::string& rest) {
  std::vector<std::string> values;
  for (const std::string& piece : util::Split(rest, '|')) {
    std::string v(util::Trim(piece));
    if (!v.empty()) values.push_back(std::move(v));
  }
  return values;
}

void PrintHelp() {
  std::cout <<
      "  profile | find <v1> [| <v2>] | pick <n> | show [n] | sparql |\n"
      "  explain | refine dis|topk|perc|sim|cluster | neg <value> |\n"
      "  export <file> | back | stats | quit\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string which = argc > 1 ? argv[1] : "eurostat";
  uint64_t n_obs = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 30000;

  qb::DatasetSpec spec = which == "production" ? qb::ProductionSpec(n_obs)
                         : which == "dbpedia"  ? qb::DbpediaSpec(n_obs)
                                               : qb::EurostatSpec(n_obs);
  std::cout << "Loading synthetic " << spec.name << " KG (" << n_obs
            << " observations)...\n";
  auto ds = qb::Generate(std::move(spec));
  if (!ds.ok()) {
    std::cerr << ds.status() << "\n";
    return 1;
  }
  auto vsg = core::VirtualSchemaGraph::Build(*ds->store,
                                             ds->spec.observation_class);
  if (!vsg.ok()) {
    std::cerr << vsg.status() << "\n";
    return 1;
  }
  rdf::TextIndex text(*ds->store);
  core::Session session(ds->store.get(), &*vsg, &text);
  std::cout << "Ready: " << ds->store->size() << " triples, "
            << vsg->dimension_count() << " dimensions, "
            << vsg->total_members() << " members. Type 'help'.\n";

  std::string line;
  while (std::cout << "re2xolap> " << std::flush,
         std::getline(std::cin, line)) {
    std::istringstream is(line);
    std::string cmd;
    is >> cmd;
    std::string rest;
    std::getline(is, rest);
    rest = std::string(util::Trim(rest));

    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      PrintHelp();
      continue;
    }
    if (cmd == "profile") {
      auto profile = core::ProfileDataset(*ds->store, *vsg);
      if (!profile.ok()) {
        std::cout << "error: " << profile.status() << "\n";
      } else {
        profile->Print(std::cout);
      }
      continue;
    }
    if (cmd == "find") {
      std::vector<std::string> values = ParseValues(rest);
      if (values.empty()) {
        std::cout << "usage: find <value> [| <value> ...]\n";
        continue;
      }
      core::ReolapOptions opts;
      opts.rank_candidates = true;
      auto candidates = session.Start(values, opts);
      if (!candidates.ok()) {
        std::cout << "error: " << candidates.status() << "\n";
        continue;
      }
      if (candidates->empty()) {
        std::cout << "no analytical query covers this example\n";
        continue;
      }
      for (size_t i = 0; i < candidates->size(); ++i) {
        std::cout << "  [" << i << "] " << (*candidates)[i].description
                  << "\n";
      }
      std::cout << "pick one with: pick <n>\n";
      continue;
    }
    if (cmd == "pick") {
      size_t idx = std::strtoull(rest.c_str(), nullptr, 10);
      util::Status st = session.has_state() ? session.PickRefinement(idx)
                                            : session.PickCandidate(idx);
      // Ambiguity: right after `find`, pick selects a candidate; after
      // `refine`, it selects a refinement. Try the other on failure.
      if (!st.ok()) st = session.PickCandidate(idx);
      if (!st.ok()) {
        std::cout << "error: " << st << "\n";
      } else {
        std::cout << "current: " << session.current().description << "\n";
      }
      continue;
    }
    if (cmd == "show") {
      size_t n = rest.empty() ? 10 : std::strtoull(rest.c_str(), nullptr, 10);
      auto table = session.Execute();
      if (!table.ok()) {
        std::cout << "error: " << table.status() << "\n";
        continue;
      }
      (*table)->Print(std::cout, n);
      continue;
    }
    if (cmd == "sparql") {
      if (!session.has_state()) {
        std::cout << "no current query\n";
        continue;
      }
      std::cout << sparql::ToSparql(session.current().query) << "\n";
      continue;
    }
    if (cmd == "explain") {
      if (!session.has_state()) {
        std::cout << "no current query\n";
        continue;
      }
      auto r = sparql::ExplainAnalyze(*ds->store, session.current().query);
      if (!r.ok()) {
        std::cout << "error: " << r.status() << "\n";
        continue;
      }
      std::cout << r->report;
      continue;
    }
    if (cmd == "refine") {
      core::RefinementKind kind;
      if (rest == "dis") kind = core::RefinementKind::kDisaggregate;
      else if (rest == "topk") kind = core::RefinementKind::kTopK;
      else if (rest == "perc") kind = core::RefinementKind::kPercentile;
      else if (rest == "sim") kind = core::RefinementKind::kSimilarity;
      else if (rest == "cluster") kind = core::RefinementKind::kCluster;
      else {
        std::cout << "usage: refine dis|topk|perc|sim|cluster\n";
        continue;
      }
      auto refs = session.Refine(kind);
      if (!refs.ok()) {
        std::cout << "error: " << refs.status() << "\n";
        continue;
      }
      if (refs->empty()) {
        std::cout << "no refinements available here\n";
        continue;
      }
      for (size_t i = 0; i < refs->size(); ++i) {
        std::cout << "  [" << i << "] " << (*refs)[i].description << "\n";
      }
      std::cout << "pick one with: pick <n>\n";
      continue;
    }
    if (cmd == "neg") {
      std::vector<std::string> values = ParseValues(rest);
      if (values.empty()) {
        std::cout << "usage: neg <value> [| <value> ...]\n";
        continue;
      }
      auto unmatched = session.ExcludeNegative(values);
      if (!unmatched.ok()) {
        std::cout << "error: " << unmatched.status() << "\n";
        continue;
      }
      for (const std::string& v : *unmatched) {
        std::cout << "  (no member of the current query levels matches \""
                  << v << "\")\n";
      }
      std::cout << "current: " << session.current().description << "\n";
      continue;
    }
    if (cmd == "export") {
      if (rest.empty()) {
        std::cout << "usage: export <file.csv>\n";
        continue;
      }
      auto table = session.Execute();
      if (!table.ok()) {
        std::cout << "error: " << table.status() << "\n";
        continue;
      }
      std::ofstream out(rest);
      if (!out) {
        std::cout << "cannot open " << rest << "\n";
        continue;
      }
      sparql::WriteCsv(**table, out);
      std::cout << "wrote " << (*table)->row_count() << " rows to " << rest
                << "\n";
      continue;
    }
    if (cmd == "back") {
      session.Back();
      if (session.has_state()) {
        std::cout << "current: " << session.current().description << "\n";
      }
      continue;
    }
    if (cmd == "stats") {
      const core::ExplorationStats& st = session.stats();
      std::cout << "  interactions:      " << st.interactions << "\n"
                << "  exploration paths: " << st.cumulative_paths << "\n"
                << "  tuples accessed:   " << st.cumulative_tuples << "\n"
                << "  exec time (ms):    " << st.cumulative_exec_millis
                << "\n"
                << "  triples scanned:   " << st.cumulative_triples_scanned
                << "\n"
                << "  intermediates:     "
                << st.cumulative_intermediate_bindings << "\n";
      if (!st.interaction_latency_millis.empty()) {
        std::cout << "  latency (ms):     ";
        for (double ms : st.interaction_latency_millis) {
          std::cout << " " << ms;
        }
        std::cout << "\n";
      }
      continue;
    }
    std::cout << "unknown command '" << cmd << "' (try: help)\n";
  }
  return 0;
}
