file(REMOVE_RECURSE
  "CMakeFiles/asylum_journalist.dir/asylum_journalist.cpp.o"
  "CMakeFiles/asylum_journalist.dir/asylum_journalist.cpp.o.d"
  "asylum_journalist"
  "asylum_journalist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asylum_journalist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
