# Empty compiler generated dependencies file for asylum_journalist.
# This may be replaced when dependencies are built.
