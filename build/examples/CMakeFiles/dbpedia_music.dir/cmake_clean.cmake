file(REMOVE_RECURSE
  "CMakeFiles/dbpedia_music.dir/dbpedia_music.cpp.o"
  "CMakeFiles/dbpedia_music.dir/dbpedia_music.cpp.o.d"
  "dbpedia_music"
  "dbpedia_music.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpedia_music.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
