# Empty dependencies file for dbpedia_music.
# This may be replaced when dependencies are built.
