file(REMOVE_RECURSE
  "CMakeFiles/re2xolap_repl.dir/re2xolap_repl.cpp.o"
  "CMakeFiles/re2xolap_repl.dir/re2xolap_repl.cpp.o.d"
  "re2xolap_repl"
  "re2xolap_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re2xolap_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
