# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for re2xolap_repl.
