# Empty dependencies file for re2xolap_repl.
# This may be replaced when dependencies are built.
