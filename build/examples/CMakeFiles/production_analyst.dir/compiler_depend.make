# Empty compiler generated dependencies file for production_analyst.
# This may be replaced when dependencies are built.
