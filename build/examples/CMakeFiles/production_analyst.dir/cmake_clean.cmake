file(REMOVE_RECURSE
  "CMakeFiles/production_analyst.dir/production_analyst.cpp.o"
  "CMakeFiles/production_analyst.dir/production_analyst.cpp.o.d"
  "production_analyst"
  "production_analyst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/production_analyst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
