# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/rdf_test[1]_include.cmake")
include("/root/repo/build/tests/sparql_parser_test[1]_include.cmake")
include("/root/repo/build/tests/sparql_executor_test[1]_include.cmake")
include("/root/repo/build/tests/generator_test[1]_include.cmake")
include("/root/repo/build/tests/vsg_test[1]_include.cmake")
include("/root/repo/build/tests/reolap_test[1]_include.cmake")
include("/root/repo/build/tests/exref_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/schema_test[1]_include.cmake")
include("/root/repo/build/tests/describe_test[1]_include.cmake")
