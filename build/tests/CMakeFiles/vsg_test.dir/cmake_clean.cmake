file(REMOVE_RECURSE
  "CMakeFiles/vsg_test.dir/vsg_test.cc.o"
  "CMakeFiles/vsg_test.dir/vsg_test.cc.o.d"
  "vsg_test"
  "vsg_test.pdb"
  "vsg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
