# Empty compiler generated dependencies file for vsg_test.
# This may be replaced when dependencies are built.
