file(REMOVE_RECURSE
  "CMakeFiles/exref_test.dir/exref_test.cc.o"
  "CMakeFiles/exref_test.dir/exref_test.cc.o.d"
  "exref_test"
  "exref_test.pdb"
  "exref_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exref_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
