# Empty dependencies file for exref_test.
# This may be replaced when dependencies are built.
