# Empty compiler generated dependencies file for reolap_test.
# This may be replaced when dependencies are built.
