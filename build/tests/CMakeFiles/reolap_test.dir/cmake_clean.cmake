file(REMOVE_RECURSE
  "CMakeFiles/reolap_test.dir/reolap_test.cc.o"
  "CMakeFiles/reolap_test.dir/reolap_test.cc.o.d"
  "reolap_test"
  "reolap_test.pdb"
  "reolap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reolap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
