file(REMOVE_RECURSE
  "CMakeFiles/sparql_executor_test.dir/sparql_executor_test.cc.o"
  "CMakeFiles/sparql_executor_test.dir/sparql_executor_test.cc.o.d"
  "sparql_executor_test"
  "sparql_executor_test.pdb"
  "sparql_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparql_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
