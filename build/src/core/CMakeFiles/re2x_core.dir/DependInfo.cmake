
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analytical_view.cc" "src/core/CMakeFiles/re2x_core.dir/analytical_view.cc.o" "gcc" "src/core/CMakeFiles/re2x_core.dir/analytical_view.cc.o.d"
  "/root/repo/src/core/describe.cc" "src/core/CMakeFiles/re2x_core.dir/describe.cc.o" "gcc" "src/core/CMakeFiles/re2x_core.dir/describe.cc.o.d"
  "/root/repo/src/core/exref.cc" "src/core/CMakeFiles/re2x_core.dir/exref.cc.o" "gcc" "src/core/CMakeFiles/re2x_core.dir/exref.cc.o.d"
  "/root/repo/src/core/profile.cc" "src/core/CMakeFiles/re2x_core.dir/profile.cc.o" "gcc" "src/core/CMakeFiles/re2x_core.dir/profile.cc.o.d"
  "/root/repo/src/core/qb4olap.cc" "src/core/CMakeFiles/re2x_core.dir/qb4olap.cc.o" "gcc" "src/core/CMakeFiles/re2x_core.dir/qb4olap.cc.o.d"
  "/root/repo/src/core/reolap.cc" "src/core/CMakeFiles/re2x_core.dir/reolap.cc.o" "gcc" "src/core/CMakeFiles/re2x_core.dir/reolap.cc.o.d"
  "/root/repo/src/core/session.cc" "src/core/CMakeFiles/re2x_core.dir/session.cc.o" "gcc" "src/core/CMakeFiles/re2x_core.dir/session.cc.o.d"
  "/root/repo/src/core/sparqlbye_baseline.cc" "src/core/CMakeFiles/re2x_core.dir/sparqlbye_baseline.cc.o" "gcc" "src/core/CMakeFiles/re2x_core.dir/sparqlbye_baseline.cc.o.d"
  "/root/repo/src/core/virtual_schema_graph.cc" "src/core/CMakeFiles/re2x_core.dir/virtual_schema_graph.cc.o" "gcc" "src/core/CMakeFiles/re2x_core.dir/virtual_schema_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparql/CMakeFiles/re2x_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/re2x_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/re2x_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
