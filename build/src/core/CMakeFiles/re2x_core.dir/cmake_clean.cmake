file(REMOVE_RECURSE
  "CMakeFiles/re2x_core.dir/analytical_view.cc.o"
  "CMakeFiles/re2x_core.dir/analytical_view.cc.o.d"
  "CMakeFiles/re2x_core.dir/describe.cc.o"
  "CMakeFiles/re2x_core.dir/describe.cc.o.d"
  "CMakeFiles/re2x_core.dir/exref.cc.o"
  "CMakeFiles/re2x_core.dir/exref.cc.o.d"
  "CMakeFiles/re2x_core.dir/profile.cc.o"
  "CMakeFiles/re2x_core.dir/profile.cc.o.d"
  "CMakeFiles/re2x_core.dir/qb4olap.cc.o"
  "CMakeFiles/re2x_core.dir/qb4olap.cc.o.d"
  "CMakeFiles/re2x_core.dir/reolap.cc.o"
  "CMakeFiles/re2x_core.dir/reolap.cc.o.d"
  "CMakeFiles/re2x_core.dir/session.cc.o"
  "CMakeFiles/re2x_core.dir/session.cc.o.d"
  "CMakeFiles/re2x_core.dir/sparqlbye_baseline.cc.o"
  "CMakeFiles/re2x_core.dir/sparqlbye_baseline.cc.o.d"
  "CMakeFiles/re2x_core.dir/virtual_schema_graph.cc.o"
  "CMakeFiles/re2x_core.dir/virtual_schema_graph.cc.o.d"
  "libre2x_core.a"
  "libre2x_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re2x_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
