# Empty dependencies file for re2x_core.
# This may be replaced when dependencies are built.
