file(REMOVE_RECURSE
  "libre2x_core.a"
)
