file(REMOVE_RECURSE
  "libre2x_util.a"
)
