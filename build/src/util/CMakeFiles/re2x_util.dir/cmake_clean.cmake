file(REMOVE_RECURSE
  "CMakeFiles/re2x_util.dir/status.cc.o"
  "CMakeFiles/re2x_util.dir/status.cc.o.d"
  "CMakeFiles/re2x_util.dir/string_utils.cc.o"
  "CMakeFiles/re2x_util.dir/string_utils.cc.o.d"
  "CMakeFiles/re2x_util.dir/table_printer.cc.o"
  "CMakeFiles/re2x_util.dir/table_printer.cc.o.d"
  "libre2x_util.a"
  "libre2x_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re2x_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
