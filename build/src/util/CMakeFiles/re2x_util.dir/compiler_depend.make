# Empty compiler generated dependencies file for re2x_util.
# This may be replaced when dependencies are built.
