# Empty dependencies file for re2x_rdf.
# This may be replaced when dependencies are built.
