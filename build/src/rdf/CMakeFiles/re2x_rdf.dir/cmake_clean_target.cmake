file(REMOVE_RECURSE
  "libre2x_rdf.a"
)
