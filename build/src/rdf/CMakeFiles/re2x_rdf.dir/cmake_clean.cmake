file(REMOVE_RECURSE
  "CMakeFiles/re2x_rdf.dir/dictionary.cc.o"
  "CMakeFiles/re2x_rdf.dir/dictionary.cc.o.d"
  "CMakeFiles/re2x_rdf.dir/ntriples.cc.o"
  "CMakeFiles/re2x_rdf.dir/ntriples.cc.o.d"
  "CMakeFiles/re2x_rdf.dir/term.cc.o"
  "CMakeFiles/re2x_rdf.dir/term.cc.o.d"
  "CMakeFiles/re2x_rdf.dir/text_index.cc.o"
  "CMakeFiles/re2x_rdf.dir/text_index.cc.o.d"
  "CMakeFiles/re2x_rdf.dir/triple_store.cc.o"
  "CMakeFiles/re2x_rdf.dir/triple_store.cc.o.d"
  "libre2x_rdf.a"
  "libre2x_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re2x_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
