file(REMOVE_RECURSE
  "CMakeFiles/re2x_qb.dir/datasets.cc.o"
  "CMakeFiles/re2x_qb.dir/datasets.cc.o.d"
  "CMakeFiles/re2x_qb.dir/generator.cc.o"
  "CMakeFiles/re2x_qb.dir/generator.cc.o.d"
  "libre2x_qb.a"
  "libre2x_qb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re2x_qb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
