
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qb/datasets.cc" "src/qb/CMakeFiles/re2x_qb.dir/datasets.cc.o" "gcc" "src/qb/CMakeFiles/re2x_qb.dir/datasets.cc.o.d"
  "/root/repo/src/qb/generator.cc" "src/qb/CMakeFiles/re2x_qb.dir/generator.cc.o" "gcc" "src/qb/CMakeFiles/re2x_qb.dir/generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rdf/CMakeFiles/re2x_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/re2x_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
