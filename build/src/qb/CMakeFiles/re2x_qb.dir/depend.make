# Empty dependencies file for re2x_qb.
# This may be replaced when dependencies are built.
