file(REMOVE_RECURSE
  "libre2x_qb.a"
)
