
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparql/ast.cc" "src/sparql/CMakeFiles/re2x_sparql.dir/ast.cc.o" "gcc" "src/sparql/CMakeFiles/re2x_sparql.dir/ast.cc.o.d"
  "/root/repo/src/sparql/csv.cc" "src/sparql/CMakeFiles/re2x_sparql.dir/csv.cc.o" "gcc" "src/sparql/CMakeFiles/re2x_sparql.dir/csv.cc.o.d"
  "/root/repo/src/sparql/executor.cc" "src/sparql/CMakeFiles/re2x_sparql.dir/executor.cc.o" "gcc" "src/sparql/CMakeFiles/re2x_sparql.dir/executor.cc.o.d"
  "/root/repo/src/sparql/lexer.cc" "src/sparql/CMakeFiles/re2x_sparql.dir/lexer.cc.o" "gcc" "src/sparql/CMakeFiles/re2x_sparql.dir/lexer.cc.o.d"
  "/root/repo/src/sparql/parser.cc" "src/sparql/CMakeFiles/re2x_sparql.dir/parser.cc.o" "gcc" "src/sparql/CMakeFiles/re2x_sparql.dir/parser.cc.o.d"
  "/root/repo/src/sparql/planner.cc" "src/sparql/CMakeFiles/re2x_sparql.dir/planner.cc.o" "gcc" "src/sparql/CMakeFiles/re2x_sparql.dir/planner.cc.o.d"
  "/root/repo/src/sparql/result_table.cc" "src/sparql/CMakeFiles/re2x_sparql.dir/result_table.cc.o" "gcc" "src/sparql/CMakeFiles/re2x_sparql.dir/result_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rdf/CMakeFiles/re2x_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/re2x_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
