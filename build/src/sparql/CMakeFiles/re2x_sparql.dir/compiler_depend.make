# Empty compiler generated dependencies file for re2x_sparql.
# This may be replaced when dependencies are built.
