file(REMOVE_RECURSE
  "libre2x_sparql.a"
)
