file(REMOVE_RECURSE
  "CMakeFiles/re2x_sparql.dir/ast.cc.o"
  "CMakeFiles/re2x_sparql.dir/ast.cc.o.d"
  "CMakeFiles/re2x_sparql.dir/csv.cc.o"
  "CMakeFiles/re2x_sparql.dir/csv.cc.o.d"
  "CMakeFiles/re2x_sparql.dir/executor.cc.o"
  "CMakeFiles/re2x_sparql.dir/executor.cc.o.d"
  "CMakeFiles/re2x_sparql.dir/lexer.cc.o"
  "CMakeFiles/re2x_sparql.dir/lexer.cc.o.d"
  "CMakeFiles/re2x_sparql.dir/parser.cc.o"
  "CMakeFiles/re2x_sparql.dir/parser.cc.o.d"
  "CMakeFiles/re2x_sparql.dir/planner.cc.o"
  "CMakeFiles/re2x_sparql.dir/planner.cc.o.d"
  "CMakeFiles/re2x_sparql.dir/result_table.cc.o"
  "CMakeFiles/re2x_sparql.dir/result_table.cc.o.d"
  "libre2x_sparql.a"
  "libre2x_sparql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re2x_sparql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
