# Empty compiler generated dependencies file for bench_ablation_vgraph.
# This may be replaced when dependencies are built.
