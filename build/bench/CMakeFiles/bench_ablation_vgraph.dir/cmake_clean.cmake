file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_vgraph.dir/bench_ablation_vgraph.cc.o"
  "CMakeFiles/bench_ablation_vgraph.dir/bench_ablation_vgraph.cc.o.d"
  "bench_ablation_vgraph"
  "bench_ablation_vgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
