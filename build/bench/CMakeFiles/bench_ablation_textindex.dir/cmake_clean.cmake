file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_textindex.dir/bench_ablation_textindex.cc.o"
  "CMakeFiles/bench_ablation_textindex.dir/bench_ablation_textindex.cc.o.d"
  "bench_ablation_textindex"
  "bench_ablation_textindex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_textindex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
