# Empty dependencies file for bench_ablation_textindex.
# This may be replaced when dependencies are built.
