# Empty dependencies file for bench_fig8c_workflow.
# This may be replaced when dependencies are built.
