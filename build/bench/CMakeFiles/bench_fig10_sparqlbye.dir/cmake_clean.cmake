file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_sparqlbye.dir/bench_fig10_sparqlbye.cc.o"
  "CMakeFiles/bench_fig10_sparqlbye.dir/bench_fig10_sparqlbye.cc.o.d"
  "bench_fig10_sparqlbye"
  "bench_fig10_sparqlbye.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_sparqlbye.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
