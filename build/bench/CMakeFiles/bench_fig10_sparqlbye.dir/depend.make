# Empty dependencies file for bench_fig10_sparqlbye.
# This may be replaced when dependencies are built.
