file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_refinements.dir/bench_fig9_refinements.cc.o"
  "CMakeFiles/bench_fig9_refinements.dir/bench_fig9_refinements.cc.o.d"
  "bench_fig9_refinements"
  "bench_fig9_refinements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_refinements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
