file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_disaggregate.dir/bench_fig8_disaggregate.cc.o"
  "CMakeFiles/bench_fig8_disaggregate.dir/bench_fig8_disaggregate.cc.o.d"
  "bench_fig8_disaggregate"
  "bench_fig8_disaggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_disaggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
