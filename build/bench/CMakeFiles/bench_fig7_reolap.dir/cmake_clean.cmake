file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_reolap.dir/bench_fig7_reolap.cc.o"
  "CMakeFiles/bench_fig7_reolap.dir/bench_fig7_reolap.cc.o.d"
  "bench_fig7_reolap"
  "bench_fig7_reolap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_reolap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
