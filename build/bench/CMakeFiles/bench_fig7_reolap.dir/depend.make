# Empty dependencies file for bench_fig7_reolap.
# This may be replaced when dependencies are built.
