#ifndef RE2XOLAP_UTIL_TIMER_H_
#define RE2XOLAP_UTIL_TIMER_H_

#include <chrono>

namespace re2xolap::util {

/// Simple monotonic wall-clock stopwatch used by benchmarks and the
/// exploration session to report interaction latencies.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Restart(), in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

  /// The start instant, for callers that want to share this timer's
  /// clock read instead of taking their own (see obs::TraceMicrosAt).
  std::chrono::steady_clock::time_point start() const { return start_; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace re2xolap::util

#endif  // RE2XOLAP_UTIL_TIMER_H_
