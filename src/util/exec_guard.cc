#include "util/exec_guard.h"

#include <string>

#include "obs/metrics.h"

namespace re2xolap::util {

namespace {

struct GuardMetrics {
  obs::Counter& timeouts;
  obs::Counter& budget_aborts;
  obs::Counter& cancellations;

  static GuardMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static GuardMetrics m{
        reg.GetCounter("guard.timeouts"),
        reg.GetCounter("guard.budget_aborts"),
        reg.GetCounter("guard.cancellations"),
    };
    return m;
  }
};

}  // namespace

ExecGuard::ExecGuard(const Limits& limits, CancellationToken* token)
    : ExecGuard(limits, std::chrono::steady_clock::now(), token) {}

ExecGuard::ExecGuard(const Limits& limits,
                     std::chrono::steady_clock::time_point arrival,
                     CancellationToken* token)
    : limits_(limits), token_(token) {
  if (limits.deadline_millis != 0) {
    has_deadline_ = true;
    deadline_ = arrival + std::chrono::milliseconds(limits.deadline_millis);
  }
}

ExecGuard ExecGuard::WithDeadline(uint64_t deadline_millis) {
  Limits limits;
  limits.deadline_millis = deadline_millis;
  return ExecGuard(limits);
}

ExecGuard ExecGuard::WithDeadlineAt(
    uint64_t deadline_millis, std::chrono::steady_clock::time_point arrival) {
  Limits limits;
  limits.deadline_millis = deadline_millis;
  return ExecGuard(limits, arrival);
}

ExecGuard& ExecGuard::operator=(ExecGuard&& other) noexcept {
  limits_ = other.limits_;
  has_deadline_ = other.has_deadline_;
  deadline_ = other.deadline_;
  token_ = other.token_;
  bytes_.store(other.bytes_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  rows_.store(other.rows_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  reported_.store(other.reported_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  return *this;
}

void ExecGuard::ReportOnce(unsigned flag) const {
  unsigned prev = reported_.fetch_or(flag, std::memory_order_relaxed);
  if ((prev & flag) != 0) return;
  GuardMetrics& m = GuardMetrics::Get();
  if (flag == kReportedTimeout) m.timeouts.Inc();
  if (flag == kReportedBudget) m.budget_aborts.Inc();
  if (flag == kReportedCancel) m.cancellations.Inc();
}

Status ExecGuard::CheckBudgets() const {
  if (limits_.max_bytes != 0) {
    uint64_t b = bytes_.load(std::memory_order_relaxed);
    if (b > limits_.max_bytes) {
      ReportOnce(kReportedBudget);
      return Status::ResourceExhausted(
          "memory budget exceeded: " + std::to_string(b) + " bytes charged, " +
          std::to_string(limits_.max_bytes) + " allowed");
    }
  }
  if (limits_.max_rows != 0) {
    uint64_t r = rows_.load(std::memory_order_relaxed);
    if (r > limits_.max_rows) {
      ReportOnce(kReportedBudget);
      return Status::ResourceExhausted(
          "row budget exceeded: " + std::to_string(r) + " rows charged, " +
          std::to_string(limits_.max_rows) + " allowed");
    }
  }
  return Status::OK();
}

Status ExecGuard::Check() const {
  if (token_ != nullptr && token_->cancelled()) {
    ReportOnce(kReportedCancel);
    return Status::Cancelled("request cancelled");
  }
  if (has_deadline_ && std::chrono::steady_clock::now() > deadline_) {
    ReportOnce(kReportedTimeout);
    return Status::Timeout("deadline of " +
                           std::to_string(limits_.deadline_millis) +
                           " ms exceeded");
  }
  return CheckBudgets();
}

uint64_t ExecGuard::remaining_millis() const {
  if (!has_deadline_) return UINT64_MAX;
  auto now = std::chrono::steady_clock::now();
  if (now >= deadline_) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline_ - now)
          .count());
}

bool ExecGuard::expired() const {
  return has_deadline_ && std::chrono::steady_clock::now() > deadline_;
}

}  // namespace re2xolap::util
