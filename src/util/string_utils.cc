#include "util/string_utils.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace re2xolap::util {

namespace {
bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)); }
char LowerChar(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}
bool IsAlnum(char c) { return std::isalnum(static_cast<unsigned char>(c)); }
}  // namespace

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), LowerChar);
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && IsSpace(s[b])) ++b;
  while (e > b && IsSpace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    size_t j = 0;
    while (j < needle.size() &&
           LowerChar(haystack[i + j]) == LowerChar(needle[j])) {
      ++j;
    }
    if (j == needle.size()) return true;
  }
  return false;
}

std::vector<std::string> TokenizeWords(std::string_view s) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : s) {
    if (IsAlnum(c)) {
      current += LowerChar(c);
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace re2xolap::util
