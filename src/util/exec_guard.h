#ifndef RE2XOLAP_UTIL_EXEC_GUARD_H_
#define RE2XOLAP_UTIL_EXEC_GUARD_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "util/status.h"
#include "util/thread_pool.h"

namespace re2xolap::util {

/// How a degraded (partial) answer came to be. Producers that return
/// partial results under pressure (ReOLAP synthesis, ExRef preview
/// evaluation) set `truncated` and record a human-readable reason instead
/// of failing the whole request.
struct Degradation {
  bool truncated = false;
  std::string degraded_reason;
};

/// Per-request execution guardrails: an absolute deadline, a byte/row
/// memory budget, and a cooperative cancellation token, shared by every
/// operator working on one request (the join loop, aggregation, sorts,
/// keyword matching, validation probes). One guard may be polled and
/// charged from many threads concurrently; all counters are atomics.
///
/// Enforcement is cooperative: operators poll Check() at loop boundaries
/// (the guard never interrupts preemptively), so a violation surfaces at
/// the next poll point as a Status —
///   - deadline exceeded    -> kTimeout
///   - budget exceeded      -> kResourceExhausted
///   - token cancelled      -> kCancelled
/// The first violation of each kind is counted once per guard in the
/// global metrics registry ("guard.timeouts", "guard.budget_aborts",
/// "guard.cancellations"); violations are statuses, never cached results.
class ExecGuard {
 public:
  struct Limits {
    /// Wall-clock budget from guard construction; 0 = no deadline.
    uint64_t deadline_millis = 0;
    /// Budget on bytes charged via ChargeBytes (materialized rows, group
    /// states); 0 = unlimited.
    uint64_t max_bytes = 0;
    /// Budget on rows charged via ChargeRows (intermediate bindings
    /// produced by the join); 0 = unlimited.
    uint64_t max_rows = 0;
  };

  /// A guard with no limits: every Check() returns OK.
  ExecGuard() = default;

  explicit ExecGuard(const Limits& limits,
                     CancellationToken* token = nullptr);

  /// Anchors the deadline at `arrival` instead of "now": the deadline is
  /// `arrival + limits.deadline_millis`, so time the request already
  /// spent elsewhere — waiting in a server admission queue, being read
  /// off a slow client socket — counts against its budget. A request
  /// whose queue wait alone exceeded the deadline fails its very first
  /// Check() with kTimeout instead of being granted a fresh allowance at
  /// execution start. Use this constructor everywhere a request can wait
  /// between arrival and execution.
  ExecGuard(const Limits& limits,
            std::chrono::steady_clock::time_point arrival,
            CancellationToken* token = nullptr);

  /// Convenience: deadline-only guard (`deadline_millis` of 0 still means
  /// "no deadline").
  static ExecGuard WithDeadline(uint64_t deadline_millis);

  /// Deadline-only guard anchored at `arrival` (see the arrival-anchored
  /// constructor above).
  static ExecGuard WithDeadlineAt(uint64_t deadline_millis,
                                  std::chrono::steady_clock::time_point arrival);

  // Movable (atomics copied by value; moving a guard other threads are
  // polling is a caller bug), not copyable.
  ExecGuard(ExecGuard&& other) noexcept { *this = std::move(other); }
  ExecGuard& operator=(ExecGuard&& other) noexcept;
  ExecGuard(const ExecGuard&) = delete;
  ExecGuard& operator=(const ExecGuard&) = delete;

  /// Full poll: cancellation, then deadline, then budgets. A handful of
  /// atomic loads plus one clock read (only when a deadline is set).
  Status Check() const;

  /// Budget-only poll — no clock read, safe to call per produced row.
  Status CheckBudgets() const;

  /// Accumulates cost against the corresponding budget. Charging never
  /// fails; the overrun is reported by the next Check()/CheckBudgets().
  void ChargeBytes(uint64_t n) const {
    if (limits_.max_bytes != 0) bytes_.fetch_add(n, std::memory_order_relaxed);
  }
  void ChargeRows(uint64_t n) const {
    if (limits_.max_rows != 0) rows_.fetch_add(n, std::memory_order_relaxed);
  }

  bool has_deadline() const { return has_deadline_; }

  /// Milliseconds until the deadline: 0 when expired, UINT64_MAX when the
  /// guard has no deadline.
  uint64_t remaining_millis() const;

  /// True when a deadline is set and has passed.
  bool expired() const;

  uint64_t charged_bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  uint64_t charged_rows() const {
    return rows_.load(std::memory_order_relaxed);
  }
  const Limits& limits() const { return limits_; }
  CancellationToken* token() const { return token_; }

 private:
  // Bit flags in reported_: each violation kind increments its global
  // metric exactly once per guard.
  enum : unsigned { kReportedTimeout = 1, kReportedBudget = 2,
                    kReportedCancel = 4 };
  void ReportOnce(unsigned flag) const;

  Limits limits_{};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  CancellationToken* token_ = nullptr;
  mutable std::atomic<uint64_t> bytes_{0};
  mutable std::atomic<uint64_t> rows_{0};
  mutable std::atomic<unsigned> reported_{0};
};

}  // namespace re2xolap::util

#endif  // RE2XOLAP_UTIL_EXEC_GUARD_H_
