#ifndef RE2XOLAP_UTIL_THREAD_POOL_H_
#define RE2XOLAP_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace re2xolap::util {

/// Cooperative cancellation flag shared between a caller and the tasks it
/// fans out. Tasks poll cancelled() at convenient boundaries; the flag
/// never interrupts a task preemptively.
///
/// Memory-ordering contract: Cancel() is a release store and cancelled()
/// an acquire load, so everything the cancelling thread wrote *before*
/// calling Cancel() — a reason string, a Status, a partial result — is
/// visible to any thread that observes cancelled() == true. Pollers may
/// therefore read the cancel reason without extra synchronization.
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }
  void Reset() { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Fixed-size worker pool for fanning independent, read-only work items
/// across cores (ReOLAP validation probes, ExRef refinement evaluation,
/// index sorting). Sized once at construction; a pool of size 0 or 1 runs
/// everything inline on the calling thread, so callers never need a
/// serial code path of their own.
///
/// Thread-safety contract: tasks submitted to the pool must only touch
/// shared state that is safe for concurrent reads (e.g. a TripleStore
/// after Freeze()) or state partitioned per task index. ParallelFor makes
/// no ordering guarantee between iterations; callers wanting deterministic
/// output should write results into per-index slots.
class ThreadPool {
 public:
  /// `num_threads` = 0 or 1 creates no workers (serial inline execution).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 means inline execution).
  size_t size() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n). Blocks until every iteration finished.
  /// Iterations are claimed atomically one index at a time, so uneven
  /// per-item costs balance across workers. The calling thread
  /// participates, so a pool of size T applies T+1-way parallelism to the
  /// loop (and exactly 1-way when the pool is empty).
  ///
  /// If any iteration throws, the first exception (in completion order) is
  /// rethrown on the calling thread after all claimed iterations drain;
  /// remaining unclaimed iterations are skipped.
  ///
  /// If `token` is non-null and becomes cancelled, unclaimed iterations
  /// are skipped (already-running ones finish normally); no exception is
  /// raised for cancellation.
  ///
  /// When tracing is enabled (obs::Tracer), the caller's active span is
  /// propagated to the worker threads for the duration of the loop, so
  /// spans opened inside `fn` nest under the caller's span.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   CancellationToken* token = nullptr);

  /// Enqueues one fire-and-forget task. Runs inline on the calling thread
  /// when the pool has no workers (so callers need no serial fallback of
  /// their own, mirroring ParallelFor). The destructor drains queued tasks
  /// before joining, so a submitted task always runs — callers that need
  /// completion signalling build it into the task (store::Ingestor's
  /// compaction inflight flag does this).
  void Submit(std::function<void()> task);

  /// Convenience: a process-wide default number of workers. Returns
  /// hardware_concurrency (at least 1).
  static size_t DefaultThreads();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
};

}  // namespace re2xolap::util

#endif  // RE2XOLAP_UTIL_THREAD_POOL_H_
