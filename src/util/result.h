#ifndef RE2XOLAP_UTIL_RESULT_H_
#define RE2XOLAP_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace re2xolap::util {

/// Holds either a value of type T or an error Status. Analogous to
/// arrow::Result / absl::StatusOr. Accessing the value of an errored
/// Result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit from value — allows `return value;` in functions returning
  /// Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status — allows `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace re2xolap::util

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error status. `lhs` must be a declaration or assignable expression.
#define RE2X_ASSIGN_OR_RETURN(lhs, rexpr)              \
  RE2X_ASSIGN_OR_RETURN_IMPL_(                         \
      RE2X_CONCAT_(_re2x_result_, __LINE__), lhs, rexpr)

#define RE2X_CONCAT_INNER_(x, y) x##y
#define RE2X_CONCAT_(x, y) RE2X_CONCAT_INNER_(x, y)

#define RE2X_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#endif  // RE2XOLAP_UTIL_RESULT_H_
