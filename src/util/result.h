#ifndef RE2XOLAP_UTIL_RESULT_H_
#define RE2XOLAP_UTIL_RESULT_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "util/status.h"

namespace re2xolap::util {

namespace internal {

/// Prints `what` plus the status and aborts. Out of line of the template
/// so every instantiation shares one cold path.
[[noreturn]] inline void DieOnErrorResult(const char* what,
                                          const Status& status) {
  std::fprintf(stderr, "FATAL: %s on errored Result: %s\n", what,
               status.ToString().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal

/// Holds either a value of type T or an error Status. Analogous to
/// arrow::Result / absl::StatusOr. Accessing the value of an errored
/// Result is a programming error and aborts loudly (with the status
/// message) in every build mode — an assert compiled out in Release would
/// instead dereference an empty optional and corrupt downstream state.
template <typename T>
class Result {
 public:
  /// Implicit from value — allows `return value;` in functions returning
  /// Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status — allows `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      internal::DieOnErrorResult("Result constructed from OK status", status_);
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    if (!ok()) internal::DieOnErrorResult("value() accessed", status_);
    return *value_;
  }
  T& value() & {
    if (!ok()) internal::DieOnErrorResult("value() accessed", status_);
    return *value_;
  }
  T&& value() && {
    if (!ok()) internal::DieOnErrorResult("value() accessed", status_);
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  /// Like value(), but the abort message names the caller's expectation
  /// ("loading schema", "fig7 bootstrap"), making the crash line
  /// self-explanatory in CI logs. Status-or-die style accessor.
  const T& expect(const char* what) const& {
    if (!ok()) internal::DieOnErrorResult(what, status_);
    return *value_;
  }
  T&& expect(const char* what) && {
    if (!ok()) internal::DieOnErrorResult(what, status_);
    return std::move(*value_);
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace re2xolap::util

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error status. `lhs` must be a declaration or assignable expression.
#define RE2X_ASSIGN_OR_RETURN(lhs, rexpr)              \
  RE2X_ASSIGN_OR_RETURN_IMPL_(                         \
      RE2X_CONCAT_(_re2x_result_, __LINE__), lhs, rexpr)

#define RE2X_CONCAT_INNER_(x, y) x##y
#define RE2X_CONCAT_(x, y) RE2X_CONCAT_INNER_(x, y)

#define RE2X_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#endif  // RE2XOLAP_UTIL_RESULT_H_
