#ifndef RE2XOLAP_UTIL_HASH_H_
#define RE2XOLAP_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

namespace re2xolap::util {

/// XXH64 (the 64-bit xxHash variant): fast non-cryptographic hash.
/// Deterministic across runs and platforms of the same endianness. Used as
/// the snapshot section/header checksum (storage::Xxh64 forwards here) and
/// as the per-block checksum of the compressed index format (rdf/).
uint64_t Xxh64(const void* data, size_t len, uint64_t seed = 0);

}  // namespace re2xolap::util

#endif  // RE2XOLAP_UTIL_HASH_H_
