#include "util/status.h"

namespace re2xolap::util {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace re2xolap::util
