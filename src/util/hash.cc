#include "util/hash.h"

#include <cstring>

namespace re2xolap::util {

namespace {

constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr uint64_t kPrime3 = 0x165667B19E3779F9ULL;
constexpr uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
constexpr uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

inline uint64_t Rotl64(uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }

inline uint64_t Read64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint64_t Read32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint64_t Xxh64Round(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  acc = Rotl64(acc, 31);
  acc *= kPrime1;
  return acc;
}

inline uint64_t Xxh64MergeRound(uint64_t acc, uint64_t val) {
  acc ^= Xxh64Round(0, val);
  return acc * kPrime1 + kPrime4;
}

}  // namespace

uint64_t Xxh64(const void* data, size_t len, uint64_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint8_t* end = p + len;
  uint64_t h;
  if (len >= 32) {
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kPrime1;
    const uint8_t* limit = end - 32;
    do {
      v1 = Xxh64Round(v1, Read64(p)); p += 8;
      v2 = Xxh64Round(v2, Read64(p)); p += 8;
      v3 = Xxh64Round(v3, Read64(p)); p += 8;
      v4 = Xxh64Round(v4, Read64(p)); p += 8;
    } while (p <= limit);
    h = Rotl64(v1, 1) + Rotl64(v2, 7) + Rotl64(v3, 12) + Rotl64(v4, 18);
    h = Xxh64MergeRound(h, v1);
    h = Xxh64MergeRound(h, v2);
    h = Xxh64MergeRound(h, v3);
    h = Xxh64MergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }
  h += static_cast<uint64_t>(len);
  while (p + 8 <= end) {
    h ^= Xxh64Round(0, Read64(p));
    h = Rotl64(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= Read32(p) * kPrime1;
    h = Rotl64(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= (*p) * kPrime5;
    h = Rotl64(h, 11) * kPrime1;
    ++p;
  }
  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace re2xolap::util
