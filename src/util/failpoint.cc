#include "util/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace re2xolap::util {

namespace {

/// Parses one `<name>=<action>` entry. Returns false on grammar errors.
bool ParseEntry(std::string_view entry, std::string* name,
                FailpointAction* action) {
  size_t eq = entry.find('=');
  if (eq == std::string_view::npos || eq == 0) return false;
  *name = std::string(entry.substr(0, eq));
  std::string_view spec = entry.substr(eq + 1);
  if (spec.empty()) return false;

  // Optional fire budget suffix: `*N`.
  action->remaining = -1;
  size_t star = spec.rfind('*');
  if (star != std::string_view::npos) {
    std::string_view count = spec.substr(star + 1);
    if (count.empty()) return false;
    int64_t n = 0;
    for (char c : count) {
      if (c < '0' || c > '9') return false;
      n = n * 10 + (c - '0');
    }
    if (n <= 0) return false;
    action->remaining = n;
    spec = spec.substr(0, star);
  }

  if (spec == "off") {
    action->kind = FailpointKind::kOff;
  } else if (spec == "error") {
    action->kind = FailpointKind::kError;
  } else if (spec == "skip") {
    action->kind = FailpointKind::kSkip;
  } else if (spec.rfind("delay:", 0) == 0) {
    std::string_view ms = spec.substr(6);
    if (ms.size() >= 2 && ms.substr(ms.size() - 2) == "ms") {
      ms = ms.substr(0, ms.size() - 2);
    }
    if (ms.empty()) return false;
    uint64_t n = 0;
    for (char c : ms) {
      if (c < '0' || c > '9') return false;
      n = n * 10 + static_cast<uint64_t>(c - '0');
    }
    action->kind = FailpointKind::kDelay;
    action->delay_millis = n;
  } else {
    return false;
  }
  return true;
}

obs::Counter& HitsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("failpoint.hits");
  return c;
}

}  // namespace

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* registry = [] {
    auto* r = new FailpointRegistry();
    if (const char* env = std::getenv("RE2XOLAP_FAILPOINTS")) {
      // Env misconfiguration must not abort the process; a bad spec is
      // simply ignored (Configure applies nothing on parse errors).
      (void)r->Configure(env);
    }
    return r;
  }();
  return *registry;
}

Status FailpointRegistry::Configure(std::string_view spec) {
  std::vector<std::pair<std::string, FailpointAction>> parsed;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t sep = spec.find(';', pos);
    if (sep == std::string_view::npos) sep = spec.size();
    std::string_view entry = spec.substr(pos, sep - pos);
    pos = sep + 1;
    if (entry.empty()) continue;
    std::string name;
    FailpointAction action;
    if (!ParseEntry(entry, &name, &action)) {
      return Status::InvalidArgument("bad failpoint spec entry: \"" +
                                     std::string(entry) + "\"");
    }
    parsed.emplace_back(std::move(name), action);
  }
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  for (auto& [name, action] : parsed) {
    entries_[name] = Entry{action, 0};
  }
  RecountArmedLocked();
  return Status::OK();
}

void FailpointRegistry::Arm(std::string_view name, FailpointAction action) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[std::string(name)];
  e.action = action;
  RecountArmedLocked();
}

void FailpointRegistry::Disarm(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(std::string(name));
  if (it != entries_.end()) it->second.action.kind = FailpointKind::kOff;
  RecountArmedLocked();
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : entries_) e.action.kind = FailpointKind::kOff;
  RecountArmedLocked();
}

void FailpointRegistry::RecountArmedLocked() {
  int armed = 0;
  for (const auto& [name, e] : entries_) {
    if (e.action.kind != FailpointKind::kOff) ++armed;
  }
  armed_.store(armed, std::memory_order_release);
}

FailpointAction FailpointRegistry::Evaluate(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(std::string(name));
  if (it == entries_.end() ||
      it->second.action.kind == FailpointKind::kOff) {
    return FailpointAction{};
  }
  Entry& e = it->second;
  FailpointAction fired = e.action;
  ++e.hits;
  HitsCounter().Inc();
  if (e.action.remaining > 0 && --e.action.remaining == 0) {
    e.action.kind = FailpointKind::kOff;
    RecountArmedLocked();
  }
  return fired;
}

uint64_t FailpointRegistry::hits(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(std::string(name));
  return it == entries_.end() ? 0 : it->second.hits;
}

Status FailpointStatus(const char* name) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  if (!reg.any_armed()) return Status::OK();
  FailpointAction action = reg.Evaluate(name);
  switch (action.kind) {
    case FailpointKind::kOff:
    case FailpointKind::kSkip:
      return Status::OK();
    case FailpointKind::kDelay:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(action.delay_millis));
      return Status::OK();
    case FailpointKind::kError:
      return Status::Unavailable(std::string("transient fault injected at "
                                             "failpoint ") +
                                 name);
  }
  return Status::OK();
}

bool FailpointSkip(const char* name) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  if (!reg.any_armed()) return false;
  FailpointAction action = reg.Evaluate(name);
  if (action.kind == FailpointKind::kDelay) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(action.delay_millis));
    return false;
  }
  return action.kind == FailpointKind::kSkip;
}

void FailpointPause(const char* name) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  if (!reg.any_armed()) return;
  FailpointAction action = reg.Evaluate(name);
  if (action.kind == FailpointKind::kDelay) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(action.delay_millis));
  }
}

}  // namespace re2xolap::util
