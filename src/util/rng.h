#ifndef RE2XOLAP_UTIL_RNG_H_
#define RE2XOLAP_UTIL_RNG_H_

#include <cstdint>

namespace re2xolap::util {

/// Deterministic splitmix64-based RNG. Used by the synthetic dataset
/// generators and benchmark workload selection so that every run (and every
/// platform) produces identical datasets and workloads.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Zipf-ish skewed pick in [0, n): favors small indices. Cheap
  /// approximation (squared uniform) adequate for workload skew.
  uint64_t Skewed(uint64_t n) {
    double u = UniformDouble();
    return static_cast<uint64_t>(u * u * static_cast<double>(n));
  }

 private:
  uint64_t state_;
};

}  // namespace re2xolap::util

#endif  // RE2XOLAP_UTIL_RNG_H_
