#ifndef RE2XOLAP_UTIL_TABLE_PRINTER_H_
#define RE2XOLAP_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace re2xolap::util {

/// Accumulates rows of strings and pretty-prints them as an aligned ASCII
/// table. Benchmarks use this to print the paper's tables/figure series.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Appends one row; the row is padded/truncated to the header width.
  void AddRow(std::vector<std::string> row);

  /// Writes the aligned table to `os`.
  void Print(std::ostream& os) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace re2xolap::util

#endif  // RE2XOLAP_UTIL_TABLE_PRINTER_H_
