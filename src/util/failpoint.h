#ifndef RE2XOLAP_UTIL_FAILPOINT_H_
#define RE2XOLAP_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/status.h"

namespace re2xolap::util {

/// Named fault-injection sites (RocksDB-style failpoints), the substrate
/// for deterministic fault tests and the chaos CI job. A disarmed
/// failpoint costs one relaxed atomic load and a branch (the process-wide
/// armed count), so sites can sit on hot paths.
///
/// Sites in the codebase (see DESIGN.md §11 for the full contract):
///   store.scan       join-runner index scan       (error, delay)
///   engine.execute   QueryEngine::Execute         (error, delay)
///   cache.insert     engine result-cache insert   (skip, delay)
///   pool.task        thread-pool task start       (delay only)
///   reolap.validate  ReOLAP validation probe      (error, delay)
///   snapshot.save    storage::SaveSnapshot entry  (error, delay)
///   snapshot.load    storage::LoadSnapshot entry  (error, delay)
///   server.accept    server acceptor, post-accept (error, delay)
///   server.parse     server request parse         (error, delay)
///   server.write     server response write        (error, delay)
///   store.ingest     store::Ingestor::IngestText  (error, delay)
///   store.compact    store::Ingestor compaction   (error, delay)
///
/// Configuration comes from the environment on first use —
///   RE2XOLAP_FAILPOINTS="engine.execute=error;store.scan=delay:50ms;cache.insert=skip"
/// — or programmatically (tests). Spec grammar, per `;`-separated entry:
///   <name>=error            inject a transient kUnavailable error
///   <name>=delay:<N>[ms]    sleep N milliseconds at the site
///   <name>=skip             skip the guarded operation (cache.insert)
///   <name>=off              explicitly disarmed
/// Any action may carry a fire budget: `error*3` fires three times, then
/// the failpoint disarms itself. Injected errors use StatusCode
/// kUnavailable, which the engine's bounded retry treats as transient.
enum class FailpointKind { kOff, kError, kDelay, kSkip };

struct FailpointAction {
  FailpointKind kind = FailpointKind::kOff;
  uint64_t delay_millis = 0;
  /// Remaining fires; negative = unlimited.
  int64_t remaining = -1;
};

class FailpointRegistry {
 public:
  /// The process-wide registry. The first call parses RE2XOLAP_FAILPOINTS
  /// (when set) into the initial configuration.
  static FailpointRegistry& Global();

  /// Replaces the whole configuration with `spec` (grammar above).
  /// Unparseable entries fail the call without applying anything.
  Status Configure(std::string_view spec);

  /// Arms one failpoint (replacing any previous action for the name).
  void Arm(std::string_view name, FailpointAction action);
  void Disarm(std::string_view name);
  void DisarmAll();

  /// Fast path: true when at least one failpoint is armed. Sites branch
  /// on this before doing any registry lookup.
  bool any_armed() const {
    return armed_.load(std::memory_order_acquire) > 0;
  }

  /// Consumes one fire of `name`: returns the action to take now and
  /// decrements a finite fire budget (a budget reaching zero disarms the
  /// point). Delay sleeping is the caller's job (see FailpointStatus /
  /// FailpointSkip / FailpointPause below).
  FailpointAction Evaluate(std::string_view name);

  /// Times `name` fired so far (for tests and diagnostics).
  uint64_t hits(std::string_view name) const;

 private:
  FailpointRegistry() = default;

  struct Entry {
    FailpointAction action;
    uint64_t hits = 0;
  };

  void RecountArmedLocked();

  std::atomic<int> armed_{0};
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
};

/// Site helper for Status-returning code: applies a delay inline, returns
/// a transient kUnavailable error when armed as `error`, OK otherwise.
Status FailpointStatus(const char* name);

/// Site helper for skippable operations: applies a delay inline, returns
/// true when the operation should be skipped.
bool FailpointSkip(const char* name);

/// Site helper for void contexts (task start): applies a delay when armed
/// as `delay`; every other action is ignored.
void FailpointPause(const char* name);

}  // namespace re2xolap::util

/// Propagates an injected transient error from the current function when
/// the named failpoint is armed as `error` (applies delays inline).
#define RE2X_FAILPOINT(name)                                           \
  do {                                                                 \
    if (::re2xolap::util::FailpointRegistry::Global().any_armed()) {   \
      ::re2xolap::util::Status _fp_st =                                \
          ::re2xolap::util::FailpointStatus(name);                     \
      if (!_fp_st.ok()) return _fp_st;                                 \
    }                                                                  \
  } while (false)

#endif  // RE2XOLAP_UTIL_FAILPOINT_H_
