#ifndef RE2XOLAP_UTIL_STRING_UTILS_H_
#define RE2XOLAP_UTIL_STRING_UTILS_H_

#include <string>
#include <string_view>
#include <vector>

namespace re2xolap::util {

/// ASCII lower-casing; non-ASCII bytes pass through unchanged.
std::string ToLower(std::string_view s);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Splits on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if `haystack` contains `needle` ignoring ASCII case.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// Splits into lowercase alphanumeric word tokens ("Oct. 2014" ->
/// {"oct", "2014"}). Used by the full-text index and keyword matching.
std::vector<std::string> TokenizeWords(std::string_view s);

/// Formats a double trimming trailing zeros ("2.5", "3", "0.125").
std::string FormatDouble(double v);

}  // namespace re2xolap::util

#endif  // RE2XOLAP_UTIL_STRING_UTILS_H_
