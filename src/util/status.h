#ifndef RE2XOLAP_UTIL_STATUS_H_
#define RE2XOLAP_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace re2xolap::util {

/// Error categories used across the library. The public API never throws;
/// fallible operations return a Status (or Result<T>, see result.h), in the
/// style of Arrow / RocksDB.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kTypeError,
  kExecutionError,
  kTimeout,
  kResourceExhausted,
  kInternal,
  /// Transient condition worth retrying (injected faults, briefly
  /// unavailable resources). The engine's bounded retry targets this code.
  kUnavailable,
  /// The request's CancellationToken fired (see util::ExecGuard).
  kCancelled,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A cheap, copyable success-or-error value. An OK status carries no
/// message; error statuses carry a code and a free-form message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace re2xolap::util

/// Propagates a non-OK Status from the current function.
#define RE2X_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::re2xolap::util::Status _st = (expr);           \
    if (!_st.ok()) return _st;                       \
  } while (false)

#endif  // RE2XOLAP_UTIL_STATUS_H_
