#include "util/thread_pool.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/failpoint.h"

namespace re2xolap::util {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads <= 1) return;  // inline execution, no workers
  workers_.reserve(num_threads - 1);
  // The calling thread participates in ParallelFor, so T requested
  // threads need T-1 workers.
  for (size_t i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Fault-injection site at task start (delay only: tasks have no
    // status channel, and errors would mask real loop exceptions).
    FailpointPause("pool.task");
    // Occupancy counters: started − finished = tasks currently running,
    // surfaced by QueryLog::WriteIntrospectionReport.
    static obs::Counter& started =
        obs::MetricsRegistry::Global().GetCounter("pool.tasks.started");
    static obs::Counter& finished =
        obs::MetricsRegistry::Global().GetCounter("pool.tasks.finished");
    started.Inc();
    task();
    finished.Inc();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                             CancellationToken* token) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      if (token && token->cancelled()) return;
      fn(i);
    }
    return;
  }

  // Shared loop state: an atomic claim counter plus first-exception
  // capture. Helpers (including the calling thread) pull indexes until
  // the range is exhausted, an exception is captured, or the token fires.
  struct LoopState {
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mu;
    std::atomic<size_t> active_helpers{0};
    std::mutex done_mu;
    std::condition_variable done_cv;
  };
  auto state = std::make_shared<LoopState>();

  // Propagate the caller's active trace span to the helpers, so spans
  // opened inside `fn` on worker threads nest under it (the parallel fan
  // stays attached to its parent in a captured trace).
  const obs::SpanId parent_span =
      obs::Tracer::Global().enabled() ? obs::CurrentSpan() : 0;

  auto drain = [state, n, &fn, token, parent_span]() {
    obs::ScopedSpanContext span_ctx(parent_span);
    for (;;) {
      if (state->failed.load(std::memory_order_acquire)) return;
      if (token && token->cancelled()) return;
      size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->error_mu);
        if (!state->error) state->error = std::current_exception();
        state->failed.store(true, std::memory_order_release);
        return;
      }
    }
  };

  // Enqueue one helper per worker (capped at n-1: the caller covers the
  // rest). Helpers capture `state` by value so a helper scheduled after
  // the caller already returned-by-exception still has valid state; the
  // caller nonetheless waits for all of them to finish, because `fn` may
  // reference caller-owned data.
  size_t helpers = std::min(workers_.size(), n - 1);
  state->active_helpers.store(helpers, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t h = 0; h < helpers; ++h) {
      queue_.emplace_back([state, drain] {
        drain();
        if (state->active_helpers.fetch_sub(1, std::memory_order_acq_rel) ==
            1) {
          std::lock_guard<std::mutex> lock(state->done_mu);
          state->done_cv.notify_all();
        }
      });
    }
  }
  cv_.notify_all();

  drain();

  std::unique_lock<std::mutex> lock(state->done_mu);
  state->done_cv.wait(lock, [&state] {
    return state->active_helpers.load(std::memory_order_acquire) == 0;
  });
  if (state->error) std::rethrow_exception(state->error);
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.emplace_back(std::move(task));
  }
  cv_.notify_one();
}

size_t ThreadPool::DefaultThreads() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<size_t>(hc);
}

}  // namespace re2xolap::util
