#ifndef RE2XOLAP_CORE_SPARQLBYE_BASELINE_H_
#define RE2XOLAP_CORE_SPARQLBYE_BASELINE_H_

#include <string>
#include <vector>

#include "rdf/text_index.h"
#include "rdf/triple_store.h"
#include "sparql/ast.h"
#include "util/result.h"

namespace re2xolap::core {

/// Re-implementation of the SPARQLByE-style baseline used in the paper's
/// Section 7.2 comparison (Figure 10): reverse-engineers the *minimal
/// basic graph pattern* covering the example values.
///
/// Characteristic limitations faithfully reproduced:
///  - only single-hop patterns around each matched entity (no navigation
///    across 2+ hops, so examples are never connected to observations);
///  - no aggregation, grouping, or measure handling;
///  - the per-value patterns are disconnected from each other.
class SparqlByEBaseline {
 public:
  SparqlByEBaseline(const rdf::TripleStore* store,
                    const rdf::TextIndex* text_index)
      : store_(store), text_(text_index) {}

  /// Returns the minimal BGP query covering the example values: for each
  /// value, a `?xi <attr-pred> "value"` pattern plus the entity's other
  /// IRI-valued single-hop patterns rendered as `?xi <p> ?oij`.
  /// When a value matches nothing, synthesis fails like the original
  /// (empty result).
  util::Result<sparql::SelectQuery> Synthesize(
      const std::vector<std::string>& example_tuple) const;

 private:
  const rdf::TripleStore* store_;
  const rdf::TextIndex* text_;
};

}  // namespace re2xolap::core

#endif  // RE2XOLAP_CORE_SPARQLBYE_BASELINE_H_
