#ifndef RE2XOLAP_CORE_QB4OLAP_H_
#define RE2XOLAP_CORE_QB4OLAP_H_

#include <string>

#include "core/virtual_schema_graph.h"
#include "rdf/triple_store.h"
#include "util/result.h"

namespace re2xolap::core {

/// QB4OLAP-style vocabulary (paper Section 2/3: the QB and QB4OLAP
/// vocabularies describe multi-dimensional cubes in RDF; the paper's
/// system can also run on graphs carrying such annotations). We emit a
/// compact dialect sufficient to reconstruct the Virtual Schema Graph
/// without re-crawling the data.
namespace qb4o {
inline constexpr char kDsdClass[] =
    "http://purl.org/linked-data/cube#DataStructureDefinition";
inline constexpr char kMeasure[] =
    "http://purl.org/linked-data/cube#measure";
inline constexpr char kLevelClass[] =
    "http://purl.org/qb4olap/cubes#LevelProperty";
inline constexpr char kHierarchyStepClass[] =
    "http://purl.org/qb4olap/cubes#HierarchyStep";
inline constexpr char kChildLevel[] =
    "http://purl.org/qb4olap/cubes#childLevel";
inline constexpr char kParentLevel[] =
    "http://purl.org/qb4olap/cubes#parentLevel";
inline constexpr char kRollupProperty[] =
    "http://purl.org/qb4olap/cubes#rollupProperty";
inline constexpr char kMemberOf[] =
    "http://purl.org/qb4olap/cubes#memberOf";
inline constexpr char kHasAttribute[] =
    "http://purl.org/qb4olap/cubes#hasAttribute";
inline constexpr char kRootLevel[] =
    "http://purl.org/qb4olap/cubes#rootLevel";
inline constexpr char kObservationAttribute[] =
    "http://purl.org/qb4olap/cubes#observationAttribute";
inline constexpr char kObservationClass[] =
    "http://purl.org/qb4olap/cubes#observationClass";
}  // namespace qb4o

/// Serializes the virtual schema graph as QB4OLAP-style annotations added
/// to `out` (commonly the data store itself, before a final Freeze()):
/// one DataStructureDefinition node under `dataset_iri`, one LevelProperty
/// node per level, one HierarchyStep per edge, `memberOf` links for every
/// dimension member, plus measure / attribute declarations.
util::Status ExportQb4OlapAnnotations(const rdf::TripleStore& data,
                                      const VirtualSchemaGraph& vsg,
                                      const std::string& dataset_iri,
                                      const std::string& observation_class_iri,
                                      rdf::TripleStore* out);

/// Reconstructs a VirtualSchemaGraph from annotations previously written
/// by ExportQb4OlapAnnotations into `store` (alongside the data). This is
/// the fast bootstrap path for KGs that ship schema annotations: no data
/// crawl at all. Returns NotFound when `dataset_iri` carries no
/// annotations.
util::Result<VirtualSchemaGraph> BuildFromQb4Olap(
    const rdf::TripleStore& store, const std::string& dataset_iri);

/// The observation class recorded in the annotations for `dataset_iri`.
util::Result<std::string> AnnotatedObservationClass(
    const rdf::TripleStore& store, const std::string& dataset_iri);

}  // namespace re2xolap::core

#endif  // RE2XOLAP_CORE_QB4OLAP_H_
