#ifndef RE2XOLAP_CORE_ANALYTICAL_VIEW_H_
#define RE2XOLAP_CORE_ANALYTICAL_VIEW_H_

#include <memory>
#include <string>
#include <vector>

#include "rdf/triple_store.h"
#include "util/result.h"

namespace re2xolap::core {

/// One mapping of an analytical-schema view (paper Section 3, citing RDF
/// analytical schemas [4]): a named component reached from the fact node
/// through a property path in the source KG.
struct PathMapping {
  /// Local name of the predicate emitted in the view (prefixed with the
  /// view's IRI base).
  std::string name;
  /// Property path (predicate IRIs) from the fact node in the source KG.
  std::vector<std::string> path;
};

/// Declarative definition of a statistical-KG view over a general KG:
/// which nodes are facts, which paths provide dimension members, which
/// provide numeric measures. The paper notes it is "straightforward to
/// obtain a statistical KG by creating a (materialized) view over an
/// existing KG" — this implements that step (it is how the paper's
/// DBpedia dataset was derived from the open-domain KG).
struct ViewDefinition {
  /// Class IRI selecting the fact nodes in the source.
  std::string fact_class;
  /// IRI prefix for everything the view emits (class + predicates).
  std::string view_iri_base;
  std::vector<PathMapping> dimensions;
  std::vector<PathMapping> measures;
  /// How many hierarchy hops to copy around reached dimension members
  /// (IRI-valued predicates only), like the paper's "bi-directional BFS
  /// at depth 3" DBpedia extraction.
  size_t hierarchy_depth = 2;
  /// Copy literal attributes (labels etc.) of every visited member.
  bool copy_member_attributes = true;

  /// IRI of the observation class in the materialized view.
  std::string ObservationClassIri() const {
    return view_iri_base + "Observation";
  }
};

/// Materializes `def` over `source` into a fresh frozen TripleStore that
/// is a statistical KG: each fact becomes an observation typed
/// `def.ObservationClassIri()`, with one direct dimension edge per
/// mapping (multi-hop source paths are flattened; fan-out emits one edge
/// per reached member) and one numeric measure literal per measure
/// mapping. Facts missing a measure are skipped (counted in
/// `skipped_facts` when provided).
util::Result<std::unique_ptr<rdf::TripleStore>> MaterializeView(
    const rdf::TripleStore& source, const ViewDefinition& def,
    uint64_t* skipped_facts = nullptr);

}  // namespace re2xolap::core

#endif  // RE2XOLAP_CORE_ANALYTICAL_VIEW_H_
