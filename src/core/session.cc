#include "core/session.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace re2xolap::core {

namespace {

/// Appends the flight-recorder record of one finished session
/// interaction. Interactions append directly instead of holding a
/// QueryRecordScope: engine executions they trigger are real queries and
/// must keep their own records (see obs/query_log.h).
void AppendInteraction(obs::QueryRecord rec, const util::Status& status,
                       uint64_t rows, double millis, std::string query_text) {
  rec.status = static_cast<uint8_t>(status.code());
  rec.rows_out = rows;
  rec.total_millis = millis;
  obs::QueryLog::Global().AppendCompleted(rec, std::move(query_text));
}

}  // namespace

const char* RefinementKindName(RefinementKind kind) {
  switch (kind) {
    case RefinementKind::kDisaggregate:
      return "Disaggregate";
    case RefinementKind::kRollUp:
      return "RollUp";
    case RefinementKind::kTopK:
      return "TopK";
    case RefinementKind::kPercentile:
      return "Percentile";
    case RefinementKind::kSimilarity:
      return "Similarity";
    case RefinementKind::kCluster:
      return "Cluster";
  }
  return "?";
}

void Session::RecordInteraction(double millis) {
  stats_.interaction_latency_millis.push_back(millis);
  obs::MetricsRegistry::Global()
      .GetHistogram("session.interaction.millis")
      .Observe(millis);
}

util::Result<std::vector<CandidateQuery>> Session::Start(
    const std::vector<std::string>& example_tuple,
    const ReolapOptions& options) {
  util::WallTimer timer;
  obs::Span span("session.start");
  span.SetAttr("examples", static_cast<uint64_t>(example_tuple.size()));
  obs::QueryRecord rec;
  rec.op = obs::QueryOp::kSessionSynthesize;
  rec.freeze_epoch = store_->freeze_epoch();
  // The example tuple is the synthesize call's identity (there is no
  // single query yet — ReOLAP produces many).
  std::string ident;
  for (const std::string& v : example_tuple) {
    ident += v;
    ident += '\t';
  }
  rec.fingerprint = obs::FingerprintQuery(ident);
  ReolapStats rstats;
  util::Result<std::vector<CandidateQuery>> synthesized =
      reolap_.Synthesize(example_tuple, options, &rstats);
  rec.degraded = rstats.truncated;
  if (!synthesized.ok()) {
    AppendInteraction(rec, synthesized.status(), /*rows=*/0,
                      timer.ElapsedMillis(), std::move(ident));
    return synthesized.status();
  }
  candidates_ = std::move(synthesized).value();
  history_.clear();
  pending_refinements_.clear();
  InvalidateResults();
  ++stats_.interactions;
  stats_.frontier = std::max<size_t>(1, candidates_.size());
  stats_.cumulative_paths += candidates_.size();
  span.SetAttr("candidates", static_cast<uint64_t>(candidates_.size()));
  RecordInteraction(timer.ElapsedMillis());
  AppendInteraction(rec, util::Status::OK(), candidates_.size(),
                    timer.ElapsedMillis(), std::move(ident));
  return candidates_;
}

util::Status Session::PickCandidate(size_t index) {
  if (index >= candidates_.size()) {
    return util::Status::InvalidArgument("candidate index out of range");
  }
  history_.clear();
  history_.push_back(InitialState(candidates_[index]));
  pending_refinements_.clear();
  InvalidateResults();
  return util::Status::OK();
}

util::Result<const sparql::ResultTable*> Session::Execute() {
  return Execute(exec_options_);
}

util::Result<const sparql::ResultTable*> Session::Execute(
    const sparql::ExecOptions& options) {
  if (history_.empty()) {
    return util::Status::InvalidArgument("no current query; call Start/Pick");
  }
  if (results_ == nullptr) {
    obs::Span span("session.execute");
    last_exec_ = sparql::ExecStats{};
    RE2X_ASSIGN_OR_RETURN(
        engine::TableHandle table,
        engine_->Execute(history_.back().query, options, &last_exec_));
    stats_.cumulative_tuples += table->row_count();
    stats_.cumulative_exec_millis += last_exec_.exec_millis;
    stats_.cumulative_triples_scanned += last_exec_.triples_scanned;
    stats_.cumulative_intermediate_bindings += last_exec_.intermediate_bindings;
    span.SetAttr("rows", static_cast<uint64_t>(table->row_count()));
    results_ = std::move(table);
  }
  return results_.get();
}

util::Result<std::vector<ExploreState>> Session::Refine(
    RefinementKind kind, const SimilarityOptions& sim_options,
    const PercentileOptions& perc_options,
    const ClusterOptions& cluster_options) {
  if (history_.empty()) {
    return util::Status::InvalidArgument("no current query; call Start/Pick");
  }
  util::WallTimer timer;
  obs::Span span("session.refine");
  span.SetAttr("kind", RefinementKindName(kind));
  const ExploreState& state = history_.back();
  std::string query_text = sparql::ToSparql(state.query);
  obs::QueryRecord rec;
  rec.op = obs::QueryOp::kSessionRefine;
  rec.freeze_epoch = store_->freeze_epoch();
  rec.fingerprint = obs::FingerprintQuery(query_text);
  std::vector<ExploreState> refinements;
  auto compute = [&]() -> util::Status {
    switch (kind) {
      case RefinementKind::kDisaggregate:
        refinements = Disaggregate(*vsg_, *store_, state);
        break;
      case RefinementKind::kRollUp:
        refinements = RollUp(*vsg_, *store_, state);
        break;
      case RefinementKind::kTopK: {
        RE2X_ASSIGN_OR_RETURN(const sparql::ResultTable* table, Execute());
        RE2X_ASSIGN_OR_RETURN(refinements, SubsetTopK(*store_, state, *table));
        break;
      }
      case RefinementKind::kPercentile: {
        RE2X_ASSIGN_OR_RETURN(const sparql::ResultTable* table, Execute());
        RE2X_ASSIGN_OR_RETURN(
            refinements, SubsetPercentile(*store_, state, *table, perc_options));
        break;
      }
      case RefinementKind::kSimilarity: {
        RE2X_ASSIGN_OR_RETURN(const sparql::ResultTable* table, Execute());
        RE2X_ASSIGN_OR_RETURN(
            refinements, SimilaritySearch(*store_, state, *table, sim_options));
        break;
      }
      case RefinementKind::kCluster: {
        RE2X_ASSIGN_OR_RETURN(const sparql::ResultTable* table, Execute());
        RE2X_ASSIGN_OR_RETURN(
            refinements, SubsetCluster(*store_, state, *table, cluster_options));
        break;
      }
    }
    return util::Status::OK();
  };
  util::Status compute_status = compute();
  if (!compute_status.ok()) {
    AppendInteraction(rec, compute_status, /*rows=*/0, timer.ElapsedMillis(),
                      std::move(query_text));
    return compute_status;
  }
  pending_refinements_ = refinements;
  ++stats_.interactions;
  // Every path on the current frontier could take any of these
  // refinements: the reachable-path frontier multiplies.
  if (!refinements.empty()) stats_.frontier *= refinements.size();
  stats_.cumulative_paths += stats_.frontier;
  span.SetAttr("refinements", static_cast<uint64_t>(refinements.size()));
  RecordInteraction(timer.ElapsedMillis());
  AppendInteraction(rec, util::Status::OK(), refinements.size(),
                    timer.ElapsedMillis(), std::move(query_text));
  return refinements;
}

util::Status Session::PickRefinement(size_t index) {
  if (index >= pending_refinements_.size()) {
    return util::Status::InvalidArgument("refinement index out of range");
  }
  history_.push_back(pending_refinements_[index]);
  pending_refinements_.clear();
  InvalidateResults();
  return util::Status::OK();
}

util::Result<std::vector<std::string>> Session::ExcludeNegative(
    const std::vector<std::string>& negative_values) {
  if (history_.empty()) {
    return util::Status::InvalidArgument("no current query; call Start/Pick");
  }
  util::WallTimer timer;
  obs::Span span("session.exclude_negative");
  span.SetAttr("values", static_cast<uint64_t>(negative_values.size()));
  std::string query_text = sparql::ToSparql(history_.back().query);
  obs::QueryRecord rec;
  rec.op = obs::QueryOp::kSessionExclude;
  rec.freeze_epoch = store_->freeze_epoch();
  rec.fingerprint = obs::FingerprintQuery(query_text);
  util::Result<NegativeResult> excluded =
      ExcludeNegativeExamples(reolap_, history_.back(), negative_values);
  if (!excluded.ok()) {
    AppendInteraction(rec, excluded.status(), /*rows=*/0,
                      timer.ElapsedMillis(), std::move(query_text));
    return excluded.status();
  }
  NegativeResult result = std::move(excluded).value();
  history_.push_back(std::move(result.state));
  pending_refinements_.clear();
  InvalidateResults();
  ++stats_.interactions;
  ++stats_.cumulative_paths;
  RecordInteraction(timer.ElapsedMillis());
  AppendInteraction(rec, util::Status::OK(), result.unmatched_values.size(),
                    timer.ElapsedMillis(), std::move(query_text));
  return result.unmatched_values;
}

util::Status Session::Slice(size_t example_index) {
  if (history_.empty()) {
    return util::Status::InvalidArgument("no current query; call Start/Pick");
  }
  util::WallTimer timer;
  obs::Span span("session.slice");
  span.SetAttr("example", static_cast<uint64_t>(example_index));
  std::string query_text = sparql::ToSparql(history_.back().query);
  obs::QueryRecord rec;
  rec.op = obs::QueryOp::kSessionSlice;
  rec.freeze_epoch = store_->freeze_epoch();
  rec.fingerprint = obs::FingerprintQuery(query_text);
  util::Result<ExploreState> sliced =
      SliceToExample(*store_, history_.back(), example_index);
  if (!sliced.ok()) {
    AppendInteraction(rec, sliced.status(), /*rows=*/0, timer.ElapsedMillis(),
                      std::move(query_text));
    return sliced.status();
  }
  history_.push_back(std::move(sliced).value());
  pending_refinements_.clear();
  InvalidateResults();
  ++stats_.interactions;
  ++stats_.cumulative_paths;
  RecordInteraction(timer.ElapsedMillis());
  AppendInteraction(rec, util::Status::OK(), /*rows=*/0,
                    timer.ElapsedMillis(), std::move(query_text));
  return util::Status::OK();
}

void Session::Back() {
  if (history_.size() > 1) {
    history_.pop_back();
    pending_refinements_.clear();
    InvalidateResults();
  }
}

// SnapshotSession's special members live out of line because the struct is
// declared before Session is complete (it holds a unique_ptr<Session>).
SnapshotSession::SnapshotSession() = default;
SnapshotSession::SnapshotSession(SnapshotSession&&) noexcept = default;
SnapshotSession& SnapshotSession::operator=(SnapshotSession&&) noexcept =
    default;
SnapshotSession::~SnapshotSession() = default;

util::Status Session::SaveSnapshot(
    const std::string& path,
    const storage::SnapshotWriteOptions& options) const {
  if (text_ == nullptr || vsg_ == nullptr) {
    return util::Status::InvalidArgument(
        "Session::SaveSnapshot needs the text index and schema graph; use "
        "engine().SaveSnapshot() for a store-only image");
  }
  storage::VsgImage image = storage::MakeVsgImage(*vsg_);
  return storage::SaveSnapshot(path, *store_, text_, &image, options);
}

util::Result<SnapshotSession> Session::OpenSnapshot(
    const std::string& path, const storage::SnapshotLoadOptions& options,
    sparql::ExecOptions exec_options, engine::EngineConfig engine_config) {
  RE2X_ASSIGN_OR_RETURN(storage::LoadedSnapshot data,
                        storage::LoadSnapshot(path, options));
  if (data.text == nullptr || !data.vsg.has_value()) {
    return util::Status::InvalidArgument(
        "snapshot lacks the text-index and/or schema-graph sections a "
        "session needs; load it with storage::LoadSnapshot or "
        "engine::QueryEngine::OpenSnapshot instead");
  }
  SnapshotSession out;
  out.data = std::move(data);
  RE2X_ASSIGN_OR_RETURN(
      VirtualSchemaGraph graph,
      VirtualSchemaGraph::FromParts(std::move(out.data.vsg->nodes),
                                    std::move(out.data.vsg->edges),
                                    std::move(out.data.vsg->measures),
                                    std::move(out.data.vsg->observation_attrs)));
  out.vsg = std::make_unique<VirtualSchemaGraph>(std::move(graph));
  out.data.vsg.reset();  // parts were consumed by FromParts
  out.session = std::make_unique<Session>(out.data.store.get(), out.vsg.get(),
                                          out.data.text.get(), exec_options,
                                          engine_config);
  return out;
}

}  // namespace re2xolap::core
