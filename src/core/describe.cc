#include "core/describe.h"

namespace re2xolap::core {

namespace {
constexpr char kRdfsLabelIri[] =
    "http://www.w3.org/2000/01/rdf-schema#label";
}  // namespace

std::string DisplayName(const rdf::TripleStore& store, rdf::TermId term) {
  const rdf::Term& t = store.term(term);
  if (t.is_literal()) return t.value;
  rdf::TermId label = store.Lookup(rdf::Term::Iri(kRdfsLabelIri));
  if (label != rdf::kInvalidTermId) {
    for (const rdf::EncodedTriple& lt :
         store.Match({term, label, rdf::kInvalidTermId})) {
      if (store.term(lt.o).is_literal()) return store.term(lt.o).value;
    }
  }
  return PrettifyIriLocalName(t.value);
}

std::string DisplayNameOfIri(const rdf::TripleStore& store,
                             const std::string& iri) {
  rdf::TermId id = store.Lookup(rdf::Term::Iri(iri));
  if (id != rdf::kInvalidTermId) return DisplayName(store, id);
  return PrettifyIriLocalName(iri);
}

std::string DescribePath(const rdf::TripleStore& store,
                         const LevelPath& path) {
  std::string out;
  for (size_t s = 0; s < path.predicates.size(); ++s) {
    if (s > 0) out += " / ";
    out += DisplayName(store, path.predicates[s]);
  }
  return out;
}

}  // namespace re2xolap::core
