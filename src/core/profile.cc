#include "core/profile.h"

#include <map>
#include <memory>

#include "engine/query_engine.h"
#include "sparql/executor.h"
#include "util/string_utils.h"

namespace re2xolap::core {

namespace {

constexpr char kLabelIri[] = "http://www.w3.org/2000/01/rdf-schema#label";

/// Label of a member, or its IRI local name when unlabeled.
std::string MemberLabel(const rdf::TripleStore& store, rdf::TermId member,
                        rdf::TermId label_pred) {
  if (label_pred != rdf::kInvalidTermId) {
    for (const rdf::EncodedTriple& t :
         store.Match({member, label_pred, rdf::kInvalidTermId})) {
      if (store.term(t.o).is_literal()) return store.term(t.o).value;
    }
  }
  return PrettifyIriLocalName(store.term(member).value);
}

/// Shared implementation; a null engine keeps the direct executor path.
util::Result<DatasetProfile> ProfileDatasetImpl(
    const rdf::TripleStore& store, const VirtualSchemaGraph& vsg,
    engine::QueryEngine* engine) {
  DatasetProfile profile;
  profile.triple_count = store.size();
  profile.total_members = vsg.total_members();
  rdf::TermId label_pred = store.Lookup(rdf::Term::Iri(kLabelIri));

  // Dimensions: group root paths by their dimension predicate.
  std::map<rdf::TermId, DimensionProfile> dims;
  for (const LevelPath& path : vsg.level_paths()) {
    rdf::TermId dim_pred = path.dimension_predicate();
    DimensionProfile& dp = dims[dim_pred];
    if (dp.name.empty()) {
      dp.predicate_iri = store.term(dim_pred).value;
      dp.name = PrettifyIriLocalName(dp.predicate_iri);
    }
    const VsgNode& node = vsg.node(path.target_node);
    LevelProfile lp;
    lp.name = node.name;
    lp.depth = path.predicates.size();
    lp.member_count = node.members.size();
    for (size_t i = 0; i < node.members.size() && lp.sample_labels.size() < 5;
         i += std::max<size_t>(1, node.members.size() / 5)) {
      lp.sample_labels.push_back(
          MemberLabel(store, node.members[i], label_pred));
    }
    dp.levels.push_back(std::move(lp));
  }
  for (auto& [pred, dp] : dims) profile.dimensions.push_back(std::move(dp));

  // Observation count: COUNT(*) over typed observations via the engine is
  // not possible without the class IRI; use the measure cardinality
  // instead (every observation carries each measure exactly once in a
  // well-formed cube; we report the max across measures).
  for (rdf::TermId m : vsg.measure_predicates()) {
    MeasureProfile mp;
    mp.predicate_iri = store.term(m).value;
    mp.name = PrettifyIriLocalName(mp.predicate_iri);
    const std::string q =
        "SELECT (COUNT(?v) AS ?n) (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) "
        "(AVG(?v) AS ?mean) (SUM(?v) AS ?total) WHERE { ?obs <" +
        mp.predicate_iri + "> ?v }";
    engine::TableHandle handle;
    if (engine != nullptr) {
      RE2X_ASSIGN_OR_RETURN(handle, engine->ExecuteText(q));
    } else {
      RE2X_ASSIGN_OR_RETURN(sparql::ResultTable t,
                            sparql::ExecuteText(store, q));
      handle = std::make_shared<const sparql::ResultTable>(std::move(t));
    }
    const sparql::ResultTable& table = *handle;
    if (table.row_count() == 1) {
      mp.count = static_cast<uint64_t>(
          table.NumericValue(table.at(0, table.ColumnIndex("n"))));
      mp.min = table.NumericValue(table.at(0, table.ColumnIndex("lo")));
      mp.max = table.NumericValue(table.at(0, table.ColumnIndex("hi")));
      mp.avg = table.NumericValue(table.at(0, table.ColumnIndex("mean")));
      mp.sum = table.NumericValue(table.at(0, table.ColumnIndex("total")));
    }
    profile.observation_count =
        std::max(profile.observation_count, mp.count);
    profile.measures.push_back(std::move(mp));
  }

  for (rdf::TermId attr : vsg.observation_attributes()) {
    profile.observation_attributes.push_back(
        PrettifyIriLocalName(store.term(attr).value));
  }
  return profile;
}

}  // namespace

util::Result<DatasetProfile> ProfileDataset(const rdf::TripleStore& store,
                                            const VirtualSchemaGraph& vsg) {
  return ProfileDatasetImpl(store, vsg, nullptr);
}

util::Result<DatasetProfile> ProfileDataset(const rdf::TripleStore& store,
                                            const VirtualSchemaGraph& vsg,
                                            engine::QueryEngine& engine) {
  return ProfileDatasetImpl(store, vsg, &engine);
}

void DatasetProfile::Print(std::ostream& os) const {
  os << "Dataset profile\n"
     << "  observations:      " << observation_count << "\n"
     << "  triples:           " << triple_count << "\n"
     << "  dimension members: " << total_members << "\n";
  os << "  dimensions (" << dimensions.size() << "):\n";
  for (const DimensionProfile& d : dimensions) {
    os << "    - " << d.name << "\n";
    for (const LevelProfile& l : d.levels) {
      os << "        level " << l.name << " (depth " << l.depth << ", "
         << l.member_count << " members";
      if (!l.sample_labels.empty()) {
        os << "; e.g. " << util::Join(l.sample_labels, ", ");
      }
      os << ")\n";
    }
  }
  os << "  measures (" << measures.size() << "):\n";
  for (const MeasureProfile& m : measures) {
    os << "    - " << m.name << ": count=" << m.count
       << " min=" << util::FormatDouble(m.min)
       << " max=" << util::FormatDouble(m.max)
       << " avg=" << util::FormatDouble(m.avg)
       << " sum=" << util::FormatDouble(m.sum) << "\n";
  }
  if (!observation_attributes.empty()) {
    os << "  observation attributes: "
       << util::Join(observation_attributes, ", ") << "\n";
  }
}

}  // namespace re2xolap::core
