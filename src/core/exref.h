#ifndef RE2XOLAP_CORE_EXREF_H_
#define RE2XOLAP_CORE_EXREF_H_

#include <string>
#include <vector>

#include "core/reolap.h"
#include "engine/query_engine.h"
#include "sparql/executor.h"
#include "sparql/result_table.h"
#include "util/exec_guard.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace re2xolap::core {

/// The evolving state of one exploration path: the current query plus the
/// bookkeeping needed by example-driven refinements — which output columns
/// carry the example's dimensions, which were added by Disaggregate, and
/// which carry aggregated measures.
struct ExploreState {
  sparql::SelectQuery query;
  /// The example interpretations this exploration started from (fixed).
  std::vector<Interpretation> example;
  /// Additional example rows for multi-tuple input (each aligned with
  /// `example_columns`); a result row matching ANY example row anchors
  /// the refinements.
  std::vector<std::vector<Interpretation>> extra_examples;
  /// Group columns aligned with `example`.
  std::vector<std::string> example_columns;
  /// Group columns added by Disaggregate steps.
  std::vector<std::string> extra_columns;
  /// Level paths present in the query: example paths first, then extras.
  std::vector<const LevelPath*> paths;
  /// Aggregate output columns (sum_* first per measure).
  std::vector<std::string> measure_columns;
  std::string description;
  /// Refinement trail, e.g. {"ReOLAP", "Disaggregate(...)", "TopK(...)"}.
  std::vector<std::string> trail;
  int fresh_vars = 0;  // counter for internal hierarchy variables
};

/// Seeds an exploration from a synthesized candidate (Algorithm 2 line 2).
ExploreState InitialState(const CandidateQuery& candidate);

/// Returns the indexes of result rows matching the example (every example
/// column cell equals the corresponding example member).
std::vector<size_t> ExampleRowIndexes(const ExploreState& state,
                                      const sparql::ResultTable& results);

/// --- Problem 2a: example-driven Disaggregate (drill-down) -----------------
/// Enumerates, purely on the virtual graph, every level path not yet in the
/// query that does not re-aggregate at a coarser level of an existing path
/// (a candidate extending a present path upward is discarded). One refined
/// state per valid path. Cost O(|L|), no store access. Each refined state
/// is derived from `state` independently, so when `pool` is non-null the
/// per-path state construction fans out across it (the output order — one
/// state per valid path in vsg.level_paths() order — is unchanged).
std::vector<ExploreState> Disaggregate(const VirtualSchemaGraph& vsg,
                                       const rdf::TripleStore& store,
                                       const ExploreState& state,
                                       util::ThreadPool* pool = nullptr);

/// Executes every state's query against the frozen store, fanning the
/// evaluations across `pool` (serial when null). Result i corresponds to
/// states[i]; per-query ExecStats land in `stats` (resized to match) when
/// non-null, so the aggregation is race-free by construction. This is the
/// ExRef counterpart of ReOLAP's parallel validation: after a refinement
/// step produces N candidate queries, their (read-only) evaluations are
/// independent probes against the store.
///
/// Graceful degradation: when `guard` is supplied, states beyond the
/// first are skipped once the guard trips — their slots hold the guard's
/// error status (kTimeout / kResourceExhausted / kCancelled) while state
/// 0 is always evaluated, so a preview round under an expired deadline
/// still produces at least one real result. `degradation` (when non-null)
/// reports whether and why slots were skipped; it is written only after
/// the fan-out completes, race-free.
std::vector<util::Result<sparql::ResultTable>> EvaluateStates(
    const rdf::TripleStore& store, const std::vector<ExploreState>& states,
    const sparql::ExecOptions& exec = {}, util::ThreadPool* pool = nullptr,
    std::vector<sparql::ExecStats>* stats = nullptr,
    const util::ExecGuard* guard = nullptr,
    util::Degradation* degradation = nullptr);

/// Engine-routed variant of EvaluateStates: every state executes through
/// `engine`, so repeated evaluations of the same refinement (across
/// rounds, or shared prefixes re-offered after Back()) are served from
/// the engine's result cache and planning is amortized across threads.
/// Results are handles into the cache — copy-free, shared, immutable.
/// `guard` / `degradation` behave exactly as in EvaluateStates.
std::vector<util::Result<engine::TableHandle>> EvaluateStatesCached(
    engine::QueryEngine& engine, const std::vector<ExploreState>& states,
    const sparql::ExecOptions& exec = {}, util::ThreadPool* pool = nullptr,
    std::vector<sparql::ExecStats>* stats = nullptr,
    const util::ExecGuard* guard = nullptr,
    util::Degradation* degradation = nullptr);

/// --- Problem 2b: example-driven Subset ------------------------------------

/// Top-K refinement: for each measure column and each direction, orders the
/// tuples, scans until an example tuple t_i is directly followed by a
/// non-example tuple, and emits a HAVING cut keeping tuples through t_i.
/// Two refinements (asc/desc) per measure column with a usable cut.
util::Result<std::vector<ExploreState>> SubsetTopK(
    const rdf::TripleStore& store, const ExploreState& state,
    const sparql::ResultTable& results);

struct PercentileOptions {
  /// Band boundaries as fractions; bands are formed between consecutive
  /// values (plus [0, first] and [last, 1]).
  std::vector<double> cut_points = {0.25, 0.5, 0.75, 0.9};
};

/// Percentile refinement: computes percentile bands of each measure column
/// and keeps the bands containing at least one example tuple, emitting a
/// HAVING range per such band (always a strict subset of the tuples).
util::Result<std::vector<ExploreState>> SubsetPercentile(
    const rdf::TripleStore& store, const ExploreState& state,
    const sparql::ResultTable& results, const PercentileOptions& options = {});

/// --- Problem 2c: example-driven Similarity Search --------------------------

/// The vector similarity σ of Problem 2c. The paper uses cosine
/// similarity; Euclidean and Pearson are provided as alternatives since
/// the problem statement only requires "some similarity measure".
enum class SimilarityMeasure {
  kCosine,
  kEuclidean,  // negative L2 distance
  kPearson,    // correlation of the two profiles
};

struct SimilarityOptions {
  /// How many most-similar member combinations to keep (beyond the
  /// example's own combination).
  size_t k = 5;
  SimilarityMeasure measure = SimilarityMeasure::kCosine;
};

/// Similarity refinement (paper Figure 5): treats combinations of the
/// example-matched dimensions as items and combinations of the
/// Disaggregate-added dimensions as features (value = the measure), builds
/// feature vectors, ranks items by cosine similarity to the example's
/// vector, and emits one refined query per measure restricting the example
/// dimensions to the example plus its k most similar items. When the query
/// has no extra dimensions, similarity degrades to measure-value closeness.
util::Result<std::vector<ExploreState>> SimilaritySearch(
    const rdf::TripleStore& store, const ExploreState& state,
    const sparql::ResultTable& results, const SimilarityOptions& options = {});

/// --- Classic OLAP counterparts (paper Section 4.2 terminology) -------------

/// Roll-up: the inverse of Disaggregate. For each dimension column added
/// by a Disaggregate step, offers (a) removing it entirely and (b)
/// re-aggregating it at every coarser level of its hierarchy (paths that
/// extend the current one upward). Example columns are never rolled up,
/// so the example tuple stays subsumed (T_E ⊑ T_r).
std::vector<ExploreState> RollUp(const VirtualSchemaGraph& vsg,
                                 const rdf::TripleStore& store,
                                 const ExploreState& state);

/// Slice: pins one of the example's dimensions to the example member and
/// removes that column from the output (the paper's "returning only
/// values where the country of destination is Germany"). `example_index`
/// selects which example value to slice on. Fails when the state has only
/// one example column left (a sliced-away query would have no example
/// anchor for further refinements).
util::Result<ExploreState> SliceToExample(const rdf::TripleStore& store,
                                          const ExploreState& state,
                                          size_t example_index);

/// --- Extensions beyond the paper's core (its Section 8 future work) --------

struct ClusterOptions {
  size_t k = 3;          // number of 1-D clusters per measure
  size_t max_iters = 32;  // k-means iteration cap
};

/// Clustering-based subset refinement — the method the paper's user-study
/// prototype offered in place of TopK (Section 7.2): 1-D k-means over each
/// measure column; the refinement keeps the cluster containing an example
/// tuple (as a HAVING range). Skipped when that cluster covers everything.
util::Result<std::vector<ExploreState>> SubsetCluster(
    const rdf::TripleStore& store, const ExploreState& state,
    const sparql::ResultTable& results, const ClusterOptions& options = {});

/// Negative examples (paper Section 8 future work): maps each negative
/// value to members at the levels already present in the query and adds
/// `FILTER (!(?col IN (...)))` conditions excluding them. Values that
/// match no member of any present level are reported in
/// `unmatched_values` (refinement still succeeds for the others).
struct NegativeResult {
  ExploreState state;
  std::vector<std::string> unmatched_values;
};
util::Result<NegativeResult> ExcludeNegativeExamples(
    const Reolap& reolap, const ExploreState& state,
    const std::vector<std::string>& negative_values);

/// Contrast queries (paper Section 8 future work: "the user is interested
/// in contrasting the measure values of two different sets of examples").
/// Maps `other_values` (same arity as the state's example) onto the same
/// level paths, validates the combination, restricts the query to the two
/// example combinations, and records the second combination as an extra
/// example row. BuildContrastReport then compares the measures side by
/// side after execution.
util::Result<ExploreState> ContrastWith(
    const Reolap& reolap, const ExploreState& state,
    const std::vector<std::string>& other_values);

/// Side-by-side measure comparison of the state's example rows: for each
/// measure column, the sum over result rows matching the primary example
/// and over rows matching each extra example row.
struct ContrastReport {
  std::vector<std::string> measure_columns;
  std::vector<double> primary;               // per measure column
  std::vector<std::vector<double>> others;   // [extra row][measure column]
};
ContrastReport BuildContrastReport(const ExploreState& state,
                                   const sparql::ResultTable& results);

}  // namespace re2xolap::core

#endif  // RE2XOLAP_CORE_EXREF_H_
