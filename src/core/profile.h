#ifndef RE2XOLAP_CORE_PROFILE_H_
#define RE2XOLAP_CORE_PROFILE_H_

#include <ostream>
#include <string>
#include <vector>

#include "core/virtual_schema_graph.h"
#include "rdf/triple_store.h"
#include "util/result.h"

namespace re2xolap::engine {
class QueryEngine;
}  // namespace re2xolap::engine

namespace re2xolap::core {

/// Summary of one hierarchy level for profiling output.
struct LevelProfile {
  std::string name;
  size_t depth = 0;  // path length from the observation root
  size_t member_count = 0;
  std::vector<std::string> sample_labels;  // up to 5 member labels
};

/// Summary of one dimension (a root predicate with its level paths).
struct DimensionProfile {
  std::string name;
  std::string predicate_iri;
  std::vector<LevelProfile> levels;
};

/// Per-measure numeric statistics over all observations.
struct MeasureProfile {
  std::string name;
  std::string predicate_iri;
  uint64_t count = 0;
  double min = 0, max = 0, avg = 0, sum = 0;
};

/// The data-profiling report the paper's user-study prototype offered
/// ("returning general information and statistics about the dataset, e.g.
/// listing the available dimensions and the number of distinct members").
struct DatasetProfile {
  uint64_t observation_count = 0;
  uint64_t triple_count = 0;
  size_t total_members = 0;
  std::vector<DimensionProfile> dimensions;
  std::vector<MeasureProfile> measures;
  std::vector<std::string> observation_attributes;  // prettified names

  /// Renders the profile as a human-readable report.
  void Print(std::ostream& os) const;
};

/// Computes the profile. Measure statistics are computed by executing
/// aggregate SPARQL queries through the engine (the same path a user's
/// query would take).
util::Result<DatasetProfile> ProfileDataset(const rdf::TripleStore& store,
                                            const VirtualSchemaGraph& vsg);

/// Engine-routed variant: the aggregate queries execute through `engine`
/// and share its plan/result caches, so re-profiling the same frozen
/// dataset is served from cache.
util::Result<DatasetProfile> ProfileDataset(const rdf::TripleStore& store,
                                            const VirtualSchemaGraph& vsg,
                                            engine::QueryEngine& engine);

}  // namespace re2xolap::core

#endif  // RE2XOLAP_CORE_PROFILE_H_
