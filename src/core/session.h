#ifndef RE2XOLAP_CORE_SESSION_H_
#define RE2XOLAP_CORE_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/exref.h"
#include "core/reolap.h"
#include "engine/query_engine.h"
#include "sparql/executor.h"
#include "storage/snapshot.h"
#include "util/result.h"

namespace re2xolap::core {

class Session;

/// A full exploration environment reconstructed from a snapshot image by
/// Session::OpenSnapshot: the dataset (`data`), the rebuilt schema graph,
/// and a Session wired to them. `session` holds pointers into `data` and
/// `vsg`; moving the struct is fine (the unique_ptr targets are stable),
/// but the parts must stay together for the session's lifetime.
struct SnapshotSession {
  storage::LoadedSnapshot data;
  std::unique_ptr<VirtualSchemaGraph> vsg;
  std::unique_ptr<Session> session;

  SnapshotSession();
  SnapshotSession(SnapshotSession&&) noexcept;
  SnapshotSession& operator=(SnapshotSession&&) noexcept;
  ~SnapshotSession();
};

/// The refinement methods offered each round (ExRef in Algorithm 2; the
/// cluster method is the user-study prototype's alternative to TopK).
enum class RefinementKind {
  kDisaggregate,
  kRollUp,
  kTopK,
  kPercentile,
  kSimilarity,
  kCluster,
};

const char* RefinementKindName(RefinementKind kind);

/// Cumulative exploration statistics (paper Figure 8c): how many distinct
/// exploration paths (reachable queries) and result tuples the session
/// gave access to so far. Each interaction multiplies the reachable-path
/// frontier by its branching factor (the number of options offered), so
/// after a few interactions the user has access to thousands of distinct
/// exploration paths.
struct ExplorationStats {
  size_t interactions = 0;
  /// Sum over interactions of the reachable-path frontier.
  size_t cumulative_paths = 0;
  /// Result tuples of executed queries, accumulated.
  size_t cumulative_tuples = 0;
  /// Current frontier: product of the branching factors so far.
  size_t frontier = 1;
  /// Wall time spent inside sparql::Execute for this session's queries
  /// (cache hits cost nothing and add nothing).
  double cumulative_exec_millis = 0;
  /// Index entries inspected by this session's queries, accumulated.
  uint64_t cumulative_triples_scanned = 0;
  /// Bindings produced across all plan steps, accumulated.
  uint64_t cumulative_intermediate_bindings = 0;
  /// Wall time of each interaction (Start/Refine/ExcludeNegative/Slice),
  /// in order; always the same length as `interactions`. Query execution
  /// triggered inside an interaction is included in its latency.
  std::vector<double> interaction_latency_millis;
};

/// An interactive Re2xOLAP exploration session (paper Algorithm 2):
///
///   Session s(store, vsg, text);
///   auto candidates = s.Start({"Germany", "2014"});   // ReOLAP
///   s.PickCandidate(0);
///   auto* table = s.Execute();                        // Q(G)
///   auto refinements = s.Refine(RefinementKind::kDisaggregate);
///   s.PickRefinement(1);
///   ...
///   s.Back();                                         // backtrack
///
/// The session owns the exploration history; Back() restores the previous
/// query state (the paper's "backtracks to a previous query to start a
/// different exploration path").
class Session {
 public:
  Session(const rdf::TripleStore* store, const VirtualSchemaGraph* vsg,
          const rdf::TextIndex* text, sparql::ExecOptions exec_options = {},
          engine::EngineConfig engine_config = {})
      : store_(store),
        vsg_(vsg),
        text_(text),
        owned_engine_(
            std::make_unique<engine::QueryEngine>(*store, engine_config)),
        engine_(owned_engine_.get()),
        reolap_(store, vsg, text, engine_),
        exec_options_(exec_options) {}

  /// Variant sharing an externally owned engine: every session query
  /// (including ReOLAP validation probes) executes through
  /// `shared_engine`, so many concurrent sessions over one frozen store
  /// share a single plan/result cache (the server front door's
  /// configuration). The engine must be built over `*store` and outlive
  /// the session; QueryEngine is safe for concurrent use once the store
  /// is frozen.
  Session(const rdf::TripleStore* store, const VirtualSchemaGraph* vsg,
          const rdf::TextIndex* text, engine::QueryEngine* shared_engine,
          sparql::ExecOptions exec_options = {})
      : store_(store),
        vsg_(vsg),
        text_(text),
        engine_(shared_engine),
        reolap_(store, vsg, text, engine_),
        exec_options_(exec_options) {}

  /// Query synthesis phase: runs ReOLAP on the example tuple and stores
  /// the candidates.
  util::Result<std::vector<CandidateQuery>> Start(
      const std::vector<std::string>& example_tuple,
      const ReolapOptions& options = {});

  /// Selects candidate `index` from the last Start() as the current query.
  util::Status PickCandidate(size_t index);

  /// Executes the current query (cached until the state changes).
  util::Result<const sparql::ResultTable*> Execute();

  /// Same, under per-call options (e.g. a server request's
  /// arrival-anchored guard) instead of the session defaults. A result
  /// cached since the last state change is returned without re-executing
  /// either way.
  util::Result<const sparql::ResultTable*> Execute(
      const sparql::ExecOptions& options);

  /// Produces refinements of the current state with the given method.
  /// TopK/Percentile/Similarity/Cluster execute the current query first if
  /// needed.
  util::Result<std::vector<ExploreState>> Refine(
      RefinementKind kind, const SimilarityOptions& sim_options = {},
      const PercentileOptions& perc_options = {},
      const ClusterOptions& cluster_options = {});

  /// Applies a negative-example exclusion to the current state in place
  /// (counts as an interaction). Returns values that matched nothing.
  util::Result<std::vector<std::string>> ExcludeNegative(
      const std::vector<std::string>& negative_values);

  /// Slices the current query on example value `example_index` (pins the
  /// dimension to the example member(s) and removes the column). Counts
  /// as an interaction and is undoable with Back().
  util::Status Slice(size_t example_index);

  /// Selects refinement `index` from the last Refine() as the new state.
  util::Status PickRefinement(size_t index);

  /// Restores the previous state; no-op at the root.
  void Back();

  bool has_state() const { return !history_.empty(); }
  const ExploreState& current() const { return history_.back(); }
  const ExplorationStats& stats() const { return stats_; }
  const Reolap& reolap() const { return reolap_; }

  /// The session's query engine; all session queries (including ReOLAP
  /// validation probes) execute through it and share its caches.
  engine::QueryEngine& engine() { return *engine_; }
  const engine::QueryEngine& engine() const { return *engine_; }

  /// Execution statistics (incl. the per-operator profile tree) of the
  /// most recent cache-missing Execute(). Zeroed until the first query
  /// runs.
  const sparql::ExecStats& last_exec_stats() const { return last_exec_; }

  /// Serializes the session's full dataset image — store, text index, and
  /// schema graph — into a snapshot at `path`, so a later process can boot
  /// with OpenSnapshot instead of re-parsing and re-crawling. Honors
  /// `options.guard` (deadline/cancel) and the `snapshot.save` failpoint.
  util::Status SaveSnapshot(
      const std::string& path,
      const storage::SnapshotWriteOptions& options = {}) const;

  /// Boots a complete exploration environment from a snapshot image
  /// written by SaveSnapshot. The image must carry the text-index and
  /// schema-graph sections (ReOLAP needs both); store-only images can
  /// still be loaded with storage::LoadSnapshot or
  /// engine::QueryEngine::OpenSnapshot. The schema graph is reconstructed
  /// via VirtualSchemaGraph::FromParts, which re-derives level paths and
  /// the member index and re-validates edges.
  static util::Result<SnapshotSession> OpenSnapshot(
      const std::string& path,
      const storage::SnapshotLoadOptions& options = {},
      sparql::ExecOptions exec_options = {},
      engine::EngineConfig engine_config = {});

 private:
  void InvalidateResults() { results_.reset(); }

  /// Appends one interaction latency to the stats and the session
  /// histogram.
  void RecordInteraction(double millis);

  const rdf::TripleStore* store_;
  const VirtualSchemaGraph* vsg_;
  const rdf::TextIndex* text_;
  // Declared before reolap_ so the engine exists when Reolap captures it.
  // Null when the session runs on a shared, externally owned engine.
  std::unique_ptr<engine::QueryEngine> owned_engine_;
  engine::QueryEngine* engine_;
  Reolap reolap_;
  sparql::ExecOptions exec_options_;

  std::vector<CandidateQuery> candidates_;
  std::vector<ExploreState> pending_refinements_;
  std::vector<ExploreState> history_;
  engine::TableHandle results_;
  ExplorationStats stats_;
  sparql::ExecStats last_exec_;
};

}  // namespace re2xolap::core

#endif  // RE2XOLAP_CORE_SESSION_H_
