#ifndef RE2XOLAP_CORE_VIRTUAL_SCHEMA_GRAPH_H_
#define RE2XOLAP_CORE_VIRTUAL_SCHEMA_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/triple_store.h"
#include "util/exec_guard.h"
#include "util/result.h"

namespace re2xolap::core {

/// A node of the virtual schema graph: one hierarchy level (or the
/// observation root). Holds the level's member ids so that ReOLAP can map
/// matched entities back to levels without querying the store.
struct VsgNode {
  int id = -1;
  bool is_root = false;
  /// Human-readable level name derived from the predicate reaching it
  /// (e.g. "countryOrigin" -> "Country Origin").
  std::string name;
  /// Sorted ids of the dimension members at this level.
  std::vector<rdf::TermId> members;
  /// Predicates linking members of this level to literals (P_A in the
  /// paper), e.g. rdfs:label.
  std::vector<rdf::TermId> attribute_predicates;
};

/// A labeled edge: members of `from` are linked to members of `to` by
/// `predicate`. Edges from the root carry dimension predicates (P_D).
struct VsgEdge {
  int from = -1;
  int to = -1;
  rdf::TermId predicate = rdf::kInvalidTermId;
};

/// A root-to-level predicate path. The first predicate identifies the
/// dimension; the target node is the aggregation level the path reaches.
struct LevelPath {
  std::vector<rdf::TermId> predicates;
  int target_node = -1;
  /// Convenience: the dimension predicate (first step).
  rdf::TermId dimension_predicate() const {
    return predicates.empty() ? rdf::kInvalidTermId : predicates.front();
  }
};

/// Options controlling the bootstrap crawl.
struct VsgOptions {
  /// Maximum hierarchy depth explored from the base level (cycle guard).
  size_t max_depth = 8;
  /// Levels whose member count exceeds this are not expanded further
  /// (safety valve for pathological graphs); 0 = no cap.
  size_t max_members_per_level = 0;
  /// Optional guardrails polled during the crawl loops (observation
  /// classification and hierarchy expansion). A tripped guard aborts the
  /// Build with its kTimeout / kResourceExhausted / kCancelled status.
  /// Non-owning; must outlive the Build call.
  const util::ExecGuard* guard = nullptr;
};

/// Statistics of a bootstrap run (reported in Figure 6c benches).
struct VsgBuildStats {
  uint64_t store_scans = 0;      // index range scans issued
  uint64_t members_visited = 0;  // member nodes touched during the crawl
  double build_millis = 0;
};

/// The Virtual Schema Graph (paper Section 5.2): an in-memory summary of
/// the statistical KG with one node per hierarchy level plus a root node
/// for observations. It is built once at bootstrap by crawling the store
/// from the observation class, and lets query synthesis and refinement
/// enumerate dimensions, levels, and BGP paths without touching the store.
class VirtualSchemaGraph {
 public:
  /// Crawls `store` starting from instances of `observation_class_iri`:
  ///  - predicates from observations to IRIs become dimension predicates,
  ///    their objects the base-level members;
  ///  - predicates from observations to numeric literals become measures;
  ///  - recursively, predicates from level members to IRIs become
  ///    hierarchy steps (levels reached by the same (level, predicate)
  ///    pair are merged; cycles are cut by the depth cap and by
  ///    member-set identity).
  static util::Result<VirtualSchemaGraph> Build(
      const rdf::TripleStore& store, const std::string& observation_class_iri,
      const VsgOptions& options = {}, VsgBuildStats* stats = nullptr);

  /// Incrementally refreshes the graph after new data was appended to the
  /// store (paper Section 7.1: "if the schema does not change and only new
  /// data is added, all the in-memory data structures are updated
  /// efficiently without the need for re-computation"). New members are
  /// merged into their existing levels by following known (level,
  /// predicate) edges. When the caller knows which observation nodes were
  /// appended, passing them in `new_observations` restricts the scan to
  /// the delta (otherwise all observations are re-classified, which is
  /// still cheaper than a full Build's member crawl). Returns
  /// InvalidArgument when the append introduced a new dimension predicate
  /// or a new hierarchy step (a schema change) — callers should then fall
  /// back to a full Build().
  util::Status Update(const rdf::TripleStore& store,
                      const std::string& observation_class_iri,
                      const std::vector<rdf::TermId>* new_observations =
                          nullptr,
                      VsgBuildStats* stats = nullptr);

  /// Assembles a graph from externally provided components (used by the
  /// QB4OLAP annotation importer, see core/qb4olap.h). `nodes[0]` must be
  /// the observation root; node member lists need not be sorted. Edge
  /// endpoints are validated.
  static util::Result<VirtualSchemaGraph> FromParts(
      std::vector<VsgNode> nodes, std::vector<VsgEdge> edges,
      std::vector<rdf::TermId> measures,
      std::vector<rdf::TermId> observation_attrs);

  // --- structure ------------------------------------------------------------

  int root() const { return 0; }
  const std::vector<VsgNode>& nodes() const { return nodes_; }
  const std::vector<VsgEdge>& edges() const { return edges_; }
  const VsgNode& node(int id) const { return nodes_[id]; }

  /// Outgoing edge indexes of `node`.
  const std::vector<int>& out_edges(int node) const {
    return out_edges_[node];
  }

  /// Measure predicates (P_M) discovered on observations.
  const std::vector<rdf::TermId>& measure_predicates() const {
    return measures_;
  }

  /// Literal-valued observation predicates that are not numeric measures
  /// (e.g. sex/unit attributes).
  const std::vector<rdf::TermId>& observation_attributes() const {
    return observation_attrs_;
  }

  /// All root-to-level paths (every path prefix is itself a level path).
  /// These are exactly the candidate aggregation levels for synthesis and
  /// the candidate drill paths for the Disaggregate refinement.
  const std::vector<LevelPath>& level_paths() const { return level_paths_; }

  /// Paths whose target node is `node`.
  std::vector<const LevelPath*> PathsTo(int node) const;

  /// Nodes (levels) a member id belongs to; empty for non-members.
  std::vector<int> NodesOfMember(rdf::TermId member) const;

  /// True when `member` belongs to level `node`.
  bool IsMemberOf(rdf::TermId member, int node) const;

  // --- Table 3 shape statistics ----------------------------------------------

  /// Number of dimensions = distinct dimension predicates on the root.
  size_t dimension_count() const;
  /// Number of hierarchies = root-to-leaf paths (a dimension whose base
  /// level has no outgoing steps counts as one trivial hierarchy).
  size_t hierarchy_count() const;
  /// Number of levels = nodes excluding the root.
  size_t level_count() const { return nodes_.size() - 1; }
  /// Total dimension members across levels (paper's |N_D|).
  size_t total_members() const;
  size_t measure_count() const { return measures_.size(); }

  /// Approximate heap footprint in bytes (Table 3's "VGraph" column).
  size_t MemoryUsage() const;

 private:
  VirtualSchemaGraph() = default;
  void IndexMembers();
  void ComputePaths();

  std::vector<VsgNode> nodes_;
  std::vector<VsgEdge> edges_;
  std::vector<std::vector<int>> out_edges_;
  std::vector<rdf::TermId> measures_;
  std::vector<rdf::TermId> observation_attrs_;
  std::vector<LevelPath> level_paths_;
  std::unordered_map<rdf::TermId, std::vector<int>> member_nodes_;
};

/// "countryOrigin" / "country_origin" / IRI -> "Country Origin".
std::string PrettifyIriLocalName(const std::string& iri);

}  // namespace re2xolap::core

#endif  // RE2XOLAP_CORE_VIRTUAL_SCHEMA_GRAPH_H_
