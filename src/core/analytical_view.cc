#include "core/analytical_view.h"

#include <set>
#include <vector>

namespace re2xolap::core {

namespace {

constexpr char kRdfTypeIri[] =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// All terms reached from `start` by following the (already encoded)
/// predicate path; fan-out is preserved.
std::vector<rdf::TermId> FollowPath(const rdf::TripleStore& store,
                                    rdf::TermId start,
                                    const std::vector<rdf::TermId>& path) {
  std::vector<rdf::TermId> frontier = {start};
  for (rdf::TermId pred : path) {
    std::vector<rdf::TermId> next;
    for (rdf::TermId node : frontier) {
      for (const rdf::EncodedTriple& t :
           store.Match({node, pred, rdf::kInvalidTermId})) {
        next.push_back(t.o);
      }
    }
    frontier.swap(next);
    if (frontier.empty()) break;
  }
  return frontier;
}

}  // namespace

util::Result<std::unique_ptr<rdf::TripleStore>> MaterializeView(
    const rdf::TripleStore& source, const ViewDefinition& def,
    uint64_t* skipped_facts) {
  if (!source.frozen()) {
    return util::Status::InvalidArgument("source store must be frozen");
  }
  if (def.dimensions.empty() || def.measures.empty()) {
    return util::Status::InvalidArgument(
        "a view needs at least one dimension and one measure mapping");
  }
  rdf::TermId type = source.Lookup(rdf::Term::Iri(kRdfTypeIri));
  rdf::TermId fact_class = source.Lookup(rdf::Term::Iri(def.fact_class));
  if (type == rdf::kInvalidTermId || fact_class == rdf::kInvalidTermId) {
    return util::Status::NotFound("fact class <" + def.fact_class +
                                  "> not present in the source");
  }

  // Encode mapping paths against the source dictionary; a predicate
  // missing from the source is a definition error.
  auto encode_path = [&](const PathMapping& m)
      -> util::Result<std::vector<rdf::TermId>> {
    std::vector<rdf::TermId> out;
    for (const std::string& iri : m.path) {
      rdf::TermId id = source.Lookup(rdf::Term::Iri(iri));
      if (id == rdf::kInvalidTermId) {
        return util::Status::NotFound("mapping '" + m.name +
                                      "' references unknown predicate <" +
                                      iri + ">");
      }
      out.push_back(id);
    }
    if (out.empty()) {
      return util::Status::InvalidArgument("mapping '" + m.name +
                                           "' has an empty path");
    }
    return out;
  };
  std::vector<std::vector<rdf::TermId>> dim_paths, measure_paths;
  for (const PathMapping& m : def.dimensions) {
    RE2X_ASSIGN_OR_RETURN(std::vector<rdf::TermId> p, encode_path(m));
    dim_paths.push_back(std::move(p));
  }
  for (const PathMapping& m : def.measures) {
    RE2X_ASSIGN_OR_RETURN(std::vector<rdf::TermId> p, encode_path(m));
    measure_paths.push_back(std::move(p));
  }

  auto view = std::make_unique<rdf::TripleStore>();
  const rdf::Term view_type = rdf::Term::Iri(kRdfTypeIri);
  const rdf::Term obs_class = rdf::Term::Iri(def.ObservationClassIri());

  std::set<rdf::TermId> touched_members;
  uint64_t skipped = 0;

  for (const rdf::EncodedTriple& typing :
       source.Match({rdf::kInvalidTermId, type, fact_class})) {
    rdf::TermId fact = typing.s;
    // Resolve all mappings first; a fact missing any dimension or any
    // measure is skipped (incomplete facts would break cube semantics).
    std::vector<std::vector<rdf::TermId>> dim_values(dim_paths.size());
    std::vector<std::vector<rdf::TermId>> measure_values(
        measure_paths.size());
    bool complete = true;
    for (size_t d = 0; d < dim_paths.size() && complete; ++d) {
      for (rdf::TermId v : FollowPath(source, fact, dim_paths[d])) {
        if (source.term(v).is_iri()) dim_values[d].push_back(v);
      }
      complete = !dim_values[d].empty();
    }
    for (size_t m = 0; m < measure_paths.size() && complete; ++m) {
      for (rdf::TermId v : FollowPath(source, fact, measure_paths[m])) {
        if (source.term(v).is_numeric_literal()) {
          measure_values[m].push_back(v);
        }
      }
      complete = !measure_values[m].empty();
    }
    if (!complete) {
      ++skipped;
      continue;
    }
    const rdf::Term obs = source.term(fact);  // keep the fact IRI
    view->Add(obs, view_type, obs_class);
    for (size_t d = 0; d < dim_values.size(); ++d) {
      const rdf::Term pred =
          rdf::Term::Iri(def.view_iri_base + def.dimensions[d].name);
      for (rdf::TermId v : dim_values[d]) {
        view->Add(obs, pred, source.term(v));
        touched_members.insert(v);
      }
    }
    for (size_t m = 0; m < measure_values.size(); ++m) {
      const rdf::Term pred =
          rdf::Term::Iri(def.view_iri_base + def.measures[m].name);
      for (rdf::TermId v : measure_values[m]) {
        view->Add(obs, pred, source.term(v));
      }
    }
  }
  if (skipped_facts) *skipped_facts = skipped;
  if (view->size() == 0) {
    return util::Status::NotFound("the view matched no complete facts");
  }

  // Copy the hierarchy neighbourhood of every reached member: IRI-valued
  // edges up to `hierarchy_depth` hops, plus literal attributes.
  std::set<rdf::TermId> visited = touched_members;
  std::vector<rdf::TermId> frontier(touched_members.begin(),
                                    touched_members.end());
  for (size_t depth = 0; depth <= def.hierarchy_depth; ++depth) {
    std::vector<rdf::TermId> next;
    for (rdf::TermId member : frontier) {
      for (const rdf::EncodedTriple& t :
           source.Match({member, rdf::kInvalidTermId, rdf::kInvalidTermId})) {
        if (t.p == type) continue;
        const rdf::Term& o = source.term(t.o);
        if (o.is_literal()) {
          if (def.copy_member_attributes) {
            view->Add(source.term(member), source.term(t.p), o);
          }
          continue;
        }
        if (depth == def.hierarchy_depth) continue;  // don't extend further
        view->Add(source.term(member), source.term(t.p), o);
        if (visited.insert(t.o).second) next.push_back(t.o);
      }
    }
    frontier.swap(next);
    if (frontier.empty()) break;
  }

  view->Freeze();
  return view;
}

}  // namespace re2xolap::core
