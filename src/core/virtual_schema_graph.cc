#include "core/virtual_schema_graph.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

#include "obs/trace.h"
#include "util/timer.h"

namespace re2xolap::core {

namespace {

constexpr char kRdfTypeIri[] =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

uint64_t HashMemberSet(const std::vector<rdf::TermId>& sorted_members) {
  uint64_t h = 14695981039346656037ULL;
  for (rdf::TermId m : sorted_members) {
    h ^= m;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::string PrettifyIriLocalName(const std::string& iri) {
  size_t cut = iri.find_last_of("/#");
  std::string local = cut == std::string::npos ? iri : iri.substr(cut + 1);
  std::string out;
  bool word_start = true;
  for (size_t i = 0; i < local.size(); ++i) {
    char c = local[i];
    if (c == '_' || c == '-') {
      if (!out.empty() && out.back() != ' ') out += ' ';
      word_start = true;
      continue;
    }
    if (std::isupper(static_cast<unsigned char>(c)) && i > 0 &&
        std::islower(static_cast<unsigned char>(local[i - 1]))) {
      out += ' ';
      word_start = true;
    }
    if (word_start) {
      out += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      word_start = false;
    } else {
      out += c;
    }
  }
  return out;
}

util::Result<VirtualSchemaGraph> VirtualSchemaGraph::Build(
    const rdf::TripleStore& store, const std::string& observation_class_iri,
    const VsgOptions& options, VsgBuildStats* stats) {
  obs::Span span("vsg.build");
  util::WallTimer timer;
  if (!store.frozen()) {
    return util::Status::InvalidArgument(
        "TripleStore must be frozen before building the virtual graph");
  }
  rdf::TermId obs_class = store.Lookup(rdf::Term::Iri(observation_class_iri));
  rdf::TermId type_pred = store.Lookup(rdf::Term::Iri(kRdfTypeIri));
  if (obs_class == rdf::kInvalidTermId || type_pred == rdf::kInvalidTermId) {
    return util::Status::NotFound("observation class <" +
                                  observation_class_iri +
                                  "> not present in the store");
  }

  VirtualSchemaGraph vsg;
  auto bump_scans = [&]() {
    if (stats) ++stats->store_scans;
  };

  // Root node (the observation level v_o).
  VsgNode root;
  root.id = 0;
  root.is_root = true;
  root.name = "Observation";
  vsg.nodes_.push_back(std::move(root));

  // --- pass 1: classify observation predicates ------------------------------
  // dimension predicate -> base-level member set
  std::map<rdf::TermId, std::set<rdf::TermId>> dim_members;
  std::set<rdf::TermId> measure_set;
  std::set<rdf::TermId> attr_set;

  bump_scans();
  rdf::IndexRange obs_triples =
      store.Match(rdf::TriplePattern{rdf::kInvalidTermId, type_pred,
                                     obs_class});
  if (obs_triples.empty()) {
    return util::Status::NotFound("no observations of class <" +
                                  observation_class_iri + ">");
  }
  uint64_t guard_polls = 0;
  // Poll interval for the crawl loops: one per-member scan is cheap, so a
  // clock read every iteration would dominate on wide cubes.
  constexpr uint64_t kGuardPollInterval = 256;
  auto poll_guard = [&]() -> util::Status {
    if (options.guard == nullptr) return util::Status::OK();
    if (++guard_polls % kGuardPollInterval != 0) return util::Status::OK();
    return options.guard->Check();
  };

  for (const rdf::EncodedTriple& typing : obs_triples) {
    rdf::TermId obs = typing.s;
    if (stats) ++stats->members_visited;
    RE2X_RETURN_IF_ERROR(poll_guard());
    bump_scans();
    for (const rdf::EncodedTriple& t : store.Match(
             rdf::TriplePattern{obs, rdf::kInvalidTermId,
                                rdf::kInvalidTermId})) {
      if (t.p == type_pred) continue;
      const rdf::Term& o = store.term(t.o);
      if (o.is_literal()) {
        if (o.is_numeric_literal()) {
          measure_set.insert(t.p);
        } else {
          attr_set.insert(t.p);
        }
      } else {
        dim_members[t.p].insert(t.o);
      }
    }
  }
  vsg.measures_.assign(measure_set.begin(), measure_set.end());
  vsg.observation_attrs_.assign(attr_set.begin(), attr_set.end());

  // --- pass 2: base levels + recursive hierarchy expansion ------------------
  // Node identity by member-set hash, to merge diamonds and cut cycles.
  std::map<uint64_t, std::vector<int>> nodes_by_sig;
  std::vector<bool> expanded;  // per node id
  expanded.push_back(true);    // root is never expanded as a level

  auto find_or_create_node = [&](std::vector<rdf::TermId> members,
                                 const std::string& name,
                                 bool* created) -> int {
    uint64_t sig = HashMemberSet(members);
    auto it = nodes_by_sig.find(sig);
    if (it != nodes_by_sig.end()) {
      for (int nid : it->second) {
        if (vsg.nodes_[nid].members == members) {
          *created = false;
          return nid;
        }
      }
    }
    VsgNode node;
    node.id = static_cast<int>(vsg.nodes_.size());
    node.name = name;
    node.members = std::move(members);
    nodes_by_sig[sig].push_back(node.id);
    vsg.nodes_.push_back(std::move(node));
    expanded.push_back(false);
    *created = true;
    return vsg.nodes_.back().id;
  };

  // Recursively expands a level node: enumerate predicates from its members.
  // Iterative worklist of (node id, depth).
  std::vector<std::pair<int, size_t>> worklist;

  for (const auto& [pred, members] : dim_members) {
    std::vector<rdf::TermId> sorted(members.begin(), members.end());
    bool created = false;
    int nid = find_or_create_node(
        std::move(sorted), PrettifyIriLocalName(store.term(pred).value),
        &created);
    vsg.edges_.push_back(VsgEdge{0, nid, pred});
    if (created) worklist.emplace_back(nid, 1);
  }

  while (!worklist.empty()) {
    auto [nid, depth] = worklist.back();
    worklist.pop_back();
    if (expanded[nid]) continue;
    expanded[nid] = true;
    if (depth >= options.max_depth) continue;
    if (options.max_members_per_level > 0 &&
        vsg.nodes_[nid].members.size() > options.max_members_per_level) {
      continue;
    }
    std::map<rdf::TermId, std::set<rdf::TermId>> targets;
    std::set<rdf::TermId> level_attrs;
    for (rdf::TermId m : vsg.nodes_[nid].members) {
      if (stats) ++stats->members_visited;
      RE2X_RETURN_IF_ERROR(poll_guard());
      bump_scans();
      for (const rdf::EncodedTriple& t : store.Match(
               rdf::TriplePattern{m, rdf::kInvalidTermId,
                                  rdf::kInvalidTermId})) {
        if (t.p == type_pred) continue;
        const rdf::Term& o = store.term(t.o);
        if (o.is_literal()) {
          level_attrs.insert(t.p);
        } else {
          targets[t.p].insert(t.o);
        }
      }
    }
    vsg.nodes_[nid].attribute_predicates.assign(level_attrs.begin(),
                                                level_attrs.end());
    for (const auto& [pred, members] : targets) {
      std::vector<rdf::TermId> sorted(members.begin(), members.end());
      bool created = false;
      int target = find_or_create_node(
          std::move(sorted), PrettifyIriLocalName(store.term(pred).value),
          &created);
      // Avoid duplicate parallel edges (possible when two merged levels
      // share predicates).
      bool dup = false;
      for (const VsgEdge& e : vsg.edges_) {
        if (e.from == nid && e.to == target && e.predicate == pred) {
          dup = true;
          break;
        }
      }
      if (!dup) vsg.edges_.push_back(VsgEdge{nid, target, pred});
      if (created) worklist.emplace_back(target, depth + 1);
    }
  }

  // --- indexes ----------------------------------------------------------------
  vsg.out_edges_.assign(vsg.nodes_.size(), {});
  for (size_t i = 0; i < vsg.edges_.size(); ++i) {
    vsg.out_edges_[vsg.edges_[i].from].push_back(static_cast<int>(i));
  }
  vsg.IndexMembers();
  vsg.ComputePaths();
  if (stats) stats->build_millis = timer.ElapsedMillis();
  return vsg;
}

util::Result<VirtualSchemaGraph> VirtualSchemaGraph::FromParts(
    std::vector<VsgNode> nodes, std::vector<VsgEdge> edges,
    std::vector<rdf::TermId> measures,
    std::vector<rdf::TermId> observation_attrs) {
  if (nodes.empty() || !nodes[0].is_root) {
    return util::Status::InvalidArgument(
        "nodes[0] must be the observation root");
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].id != static_cast<int>(i)) {
      return util::Status::InvalidArgument("node ids must be dense 0..n-1");
    }
    std::sort(nodes[i].members.begin(), nodes[i].members.end());
    nodes[i].members.erase(
        std::unique(nodes[i].members.begin(), nodes[i].members.end()),
        nodes[i].members.end());
  }
  for (const VsgEdge& e : edges) {
    if (e.from < 0 || e.to <= 0 ||
        e.from >= static_cast<int>(nodes.size()) ||
        e.to >= static_cast<int>(nodes.size()) ||
        e.predicate == rdf::kInvalidTermId) {
      return util::Status::InvalidArgument("edge references invalid node");
    }
  }
  VirtualSchemaGraph vsg;
  vsg.nodes_ = std::move(nodes);
  vsg.edges_ = std::move(edges);
  vsg.measures_ = std::move(measures);
  vsg.observation_attrs_ = std::move(observation_attrs);
  vsg.out_edges_.assign(vsg.nodes_.size(), {});
  for (size_t i = 0; i < vsg.edges_.size(); ++i) {
    vsg.out_edges_[vsg.edges_[i].from].push_back(static_cast<int>(i));
  }
  vsg.IndexMembers();
  vsg.ComputePaths();
  return vsg;
}

util::Status VirtualSchemaGraph::Update(
    const rdf::TripleStore& store, const std::string& observation_class_iri,
    const std::vector<rdf::TermId>* new_observations, VsgBuildStats* stats) {
  util::WallTimer timer;
  if (!store.frozen()) {
    return util::Status::InvalidArgument(
        "TripleStore must be frozen before updating the virtual graph");
  }
  rdf::TermId obs_class = store.Lookup(rdf::Term::Iri(observation_class_iri));
  rdf::TermId type_pred = store.Lookup(rdf::Term::Iri(kRdfTypeIri));
  if (obs_class == rdf::kInvalidTermId || type_pred == rdf::kInvalidTermId) {
    return util::Status::NotFound("observation class <" +
                                  observation_class_iri +
                                  "> not present in the store");
  }

  // Known (node, predicate) -> target node transitions.
  std::map<std::pair<int, rdf::TermId>, int> transitions;
  for (const VsgEdge& e : edges_) {
    transitions[{e.from, e.predicate}] = e.to;
  }
  std::set<rdf::TermId> known_measures(measures_.begin(), measures_.end());
  std::set<rdf::TermId> known_attrs(observation_attrs_.begin(),
                                    observation_attrs_.end());

  // Pass 1: re-classify observation predicates; collect base members that
  // are new to their level. With a delta hint only the appended
  // observations are scanned.
  std::vector<rdf::TermId> all_obs;
  if (new_observations == nullptr) {
    for (const rdf::EncodedTriple& typing :
         store.Match({rdf::kInvalidTermId, type_pred, obs_class})) {
      all_obs.push_back(typing.s);
    }
  }
  const std::vector<rdf::TermId>& obs_list =
      new_observations ? *new_observations : all_obs;
  std::map<int, std::set<rdf::TermId>> new_members;  // node -> members
  for (rdf::TermId obs : obs_list) {
    if (stats) ++stats->members_visited;
    if (stats) ++stats->store_scans;
    for (const rdf::EncodedTriple& t : store.Match(
             {obs, rdf::kInvalidTermId, rdf::kInvalidTermId})) {
      if (t.p == type_pred) continue;
      const rdf::Term& o = store.term(t.o);
      if (o.is_literal()) {
        if (o.is_numeric_literal()) {
          if (!known_measures.count(t.p)) {
            return util::Status::InvalidArgument(
                "schema change: new measure predicate " +
                store.term(t.p).value);
          }
        } else if (!known_attrs.count(t.p)) {
          // New literal attributes are harmless; record them.
          known_attrs.insert(t.p);
          observation_attrs_.push_back(t.p);
        }
        continue;
      }
      auto it = transitions.find({0, t.p});
      if (it == transitions.end()) {
        return util::Status::InvalidArgument(
            "schema change: new dimension predicate " +
            store.term(t.p).value);
      }
      if (!IsMemberOf(t.o, it->second)) {
        new_members[it->second].insert(t.o);
      }
    }
  }

  // Pass 2: propagate new members up the known hierarchy edges.
  std::vector<std::pair<int, rdf::TermId>> worklist;
  for (const auto& [node, members] : new_members) {
    for (rdf::TermId m : members) worklist.emplace_back(node, m);
  }
  while (!worklist.empty()) {
    auto [node, member] = worklist.back();
    worklist.pop_back();
    // Insert into the level (sorted) if genuinely new there.
    std::vector<rdf::TermId>& ms = nodes_[node].members;
    auto pos = std::lower_bound(ms.begin(), ms.end(), member);
    if (pos != ms.end() && *pos == member) continue;
    ms.insert(pos, member);
    member_nodes_[member].push_back(node);
    if (stats) {
      ++stats->members_visited;
      ++stats->store_scans;
    }
    for (const rdf::EncodedTriple& t :
         store.Match({member, rdf::kInvalidTermId, rdf::kInvalidTermId})) {
      const rdf::Term& o = store.term(t.o);
      if (o.is_literal()) {
        // New attribute predicates on a level are recorded.
        auto& attrs = nodes_[node].attribute_predicates;
        if (std::find(attrs.begin(), attrs.end(), t.p) == attrs.end()) {
          attrs.push_back(t.p);
        }
        continue;
      }
      auto it = transitions.find({node, t.p});
      if (it == transitions.end()) {
        return util::Status::InvalidArgument(
            "schema change: new hierarchy step " + store.term(t.p).value +
            " from level " + nodes_[node].name);
      }
      worklist.emplace_back(it->second, t.o);
    }
  }
  if (stats) stats->build_millis = timer.ElapsedMillis();
  return util::Status::OK();
}

void VirtualSchemaGraph::IndexMembers() {
  member_nodes_.clear();
  for (const VsgNode& n : nodes_) {
    if (n.is_root) continue;
    for (rdf::TermId m : n.members) member_nodes_[m].push_back(n.id);
  }
}

void VirtualSchemaGraph::ComputePaths() {
  level_paths_.clear();
  // DFS from the root; a node may appear at most once per path (cycle cut).
  struct Frame {
    int node;
    std::vector<rdf::TermId> preds;
    std::vector<int> visited;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{0, {}, {0}});
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    for (int ei : out_edges_[f.node]) {
      const VsgEdge& e = edges_[ei];
      if (std::find(f.visited.begin(), f.visited.end(), e.to) !=
          f.visited.end()) {
        continue;
      }
      LevelPath path;
      path.predicates = f.preds;
      path.predicates.push_back(e.predicate);
      path.target_node = e.to;
      level_paths_.push_back(path);
      Frame next;
      next.node = e.to;
      next.preds = path.predicates;
      next.visited = f.visited;
      next.visited.push_back(e.to);
      stack.push_back(std::move(next));
    }
  }
  // Deterministic order: by path length then lexicographic predicates.
  std::sort(level_paths_.begin(), level_paths_.end(),
            [](const LevelPath& a, const LevelPath& b) {
              if (a.predicates.size() != b.predicates.size()) {
                return a.predicates.size() < b.predicates.size();
              }
              return a.predicates < b.predicates;
            });
}

std::vector<const LevelPath*> VirtualSchemaGraph::PathsTo(int node) const {
  std::vector<const LevelPath*> out;
  for (const LevelPath& p : level_paths_) {
    if (p.target_node == node) out.push_back(&p);
  }
  return out;
}

std::vector<int> VirtualSchemaGraph::NodesOfMember(rdf::TermId member) const {
  auto it = member_nodes_.find(member);
  return it == member_nodes_.end() ? std::vector<int>{} : it->second;
}

bool VirtualSchemaGraph::IsMemberOf(rdf::TermId member, int node) const {
  const std::vector<rdf::TermId>& ms = nodes_[node].members;
  return std::binary_search(ms.begin(), ms.end(), member);
}

size_t VirtualSchemaGraph::dimension_count() const {
  std::set<rdf::TermId> preds;
  for (int ei : out_edges_[0]) preds.insert(edges_[ei].predicate);
  return preds.size();
}

size_t VirtualSchemaGraph::hierarchy_count() const {
  // Root-to-leaf paths; a base level with no outgoing edges contributes one
  // trivial hierarchy.
  size_t n = 0;
  for (const LevelPath& p : level_paths_) {
    if (out_edges_[p.target_node].empty()) ++n;
  }
  return n;
}

size_t VirtualSchemaGraph::total_members() const {
  return member_nodes_.size();
}

size_t VirtualSchemaGraph::MemoryUsage() const {
  size_t bytes = 0;
  for (const VsgNode& n : nodes_) {
    bytes += sizeof(VsgNode) + n.name.capacity() +
             n.members.capacity() * sizeof(rdf::TermId) +
             n.attribute_predicates.capacity() * sizeof(rdf::TermId);
  }
  bytes += edges_.capacity() * sizeof(VsgEdge);
  for (const LevelPath& p : level_paths_) {
    bytes += sizeof(LevelPath) + p.predicates.capacity() * sizeof(rdf::TermId);
  }
  bytes += member_nodes_.size() *
           (sizeof(rdf::TermId) + sizeof(std::vector<int>) + 2 * sizeof(int) +
            2 * sizeof(void*));
  return bytes;
}

}  // namespace re2xolap::core
