#include "core/exref.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "core/describe.h"
#include "obs/trace.h"
#include "util/string_utils.h"

namespace re2xolap::core {

namespace {

std::string IriLocalName(const std::string& iri) {
  size_t cut = iri.find_last_of("/#");
  return cut == std::string::npos ? iri : iri.substr(cut + 1);
}

std::string PathDescription(const rdf::TripleStore& store,
                            const LevelPath& path) {
  return DescribePath(store, path);
}

/// True when `candidate` strictly extends `present` (same prefix, longer):
/// adding it would aggregate the present level upward instead of
/// disaggregating.
bool ExtendsUpward(const LevelPath& present, const LevelPath& candidate) {
  if (candidate.predicates.size() <= present.predicates.size()) return false;
  return std::equal(present.predicates.begin(), present.predicates.end(),
                    candidate.predicates.begin());
}

bool SamePath(const LevelPath& a, const LevelPath& b) {
  return a.predicates == b.predicates;
}

}  // namespace

ExploreState InitialState(const CandidateQuery& candidate) {
  ExploreState st;
  st.query = candidate.query;
  st.example = candidate.interpretations;
  st.extra_examples = candidate.extra_rows;
  st.example_columns = candidate.group_columns;
  st.measure_columns = candidate.measure_columns;
  for (const Interpretation& in : candidate.interpretations) {
    st.paths.push_back(in.path);
  }
  st.description = candidate.description;
  st.trail = {"ReOLAP"};
  // Count existing internal variables so fresh names never clash.
  st.fresh_vars = 1000;
  return st;
}

std::vector<size_t> ExampleRowIndexes(const ExploreState& state,
                                      const sparql::ResultTable& results) {
  std::vector<size_t> out;
  std::vector<int> cols;
  cols.reserve(state.example_columns.size());
  for (const std::string& c : state.example_columns) {
    cols.push_back(results.ColumnIndex(c));
  }
  auto row_matches = [&](size_t r, const std::vector<Interpretation>& row) {
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i] < 0) return false;
      const sparql::Cell& cell = results.at(r, cols[i]);
      if (!cell.is_term() || cell.term != row[i].member) return false;
    }
    return true;
  };
  for (size_t r = 0; r < results.row_count(); ++r) {
    bool match = row_matches(r, state.example);
    for (size_t e = 0; !match && e < state.extra_examples.size(); ++e) {
      match = row_matches(r, state.extra_examples[e]);
    }
    if (match) out.push_back(r);
  }
  return out;
}

// --- Disaggregate ------------------------------------------------------------

namespace {

/// Builds the one refined state Disaggregate derives for `candidate`.
ExploreState DisaggregateOne(const rdf::TripleStore& store,
                             const ExploreState& state,
                             const LevelPath& candidate) {
  ExploreState next = state;
  std::string var =
      "d" + std::to_string(next.extra_columns.size()) + "_" +
      IriLocalName(store.term(candidate.predicates.front()).value);
  if (candidate.predicates.size() > 1) {
    var += "_" + IriLocalName(store.term(candidate.predicates.back()).value);
  }
  sparql::TermOrVar current = sparql::Variable{"obs"};
  for (size_t s = 0; s < candidate.predicates.size(); ++s) {
    sparql::TermOrVar nxt =
        (s + 1 == candidate.predicates.size())
            ? sparql::TermOrVar(sparql::Variable{var})
            : sparql::TermOrVar(
                  sparql::Variable{"h" + std::to_string(next.fresh_vars++)});
    next.query.patterns.push_back(sparql::TriplePatternAst{
        current, store.term(candidate.predicates[s]), nxt});
    current = nxt;
  }
  next.query.group_by.push_back(sparql::Variable{var});
  sparql::SelectItem item;
  item.var = sparql::Variable{var};
  // Insert the new group column before the aggregate columns, keeping
  // the conventional dims-then-measures order.
  size_t insert_at = 0;
  while (insert_at < next.query.items.size() &&
         !next.query.items[insert_at].is_aggregate) {
    ++insert_at;
  }
  next.query.items.insert(
      next.query.items.begin() + static_cast<long>(insert_at), item);
  next.extra_columns.push_back(var);
  next.paths.push_back(&candidate);
  std::string what = PathDescription(store, candidate);
  next.description = "Disaggregate by \"" + what + "\"";
  next.trail.push_back("Disaggregate(" + what + ")");
  return next;
}

}  // namespace

std::vector<ExploreState> Disaggregate(const VirtualSchemaGraph& vsg,
                                       const rdf::TripleStore& store,
                                       const ExploreState& state,
                                       util::ThreadPool* pool) {
  obs::Span span("exref.disaggregate");
  // Filter the valid candidate paths first (cheap pointer checks), then
  // derive the refined states — each from `state` alone, so the per-path
  // constructions are independent and land in order-preserving slots.
  std::vector<const LevelPath*> valid;
  for (const LevelPath& candidate : vsg.level_paths()) {
    bool invalid = false;
    for (const LevelPath* present : state.paths) {
      if (SamePath(*present, candidate) ||
          ExtendsUpward(*present, candidate)) {
        invalid = true;
        break;
      }
    }
    if (!invalid) valid.push_back(&candidate);
  }
  std::vector<ExploreState> out(valid.size());
  auto build_one = [&](size_t i) {
    out[i] = DisaggregateOne(store, state, *valid[i]);
  };
  if (pool != nullptr && valid.size() > 1) {
    pool->ParallelFor(valid.size(), build_one);
  } else {
    for (size_t i = 0; i < valid.size(); ++i) build_one(i);
  }
  return out;
}

namespace {

/// Folds the per-index skip markers into a Degradation report — called
/// once on the calling thread after the fan-out, so it is race-free.
void ReportSkipped(const std::vector<uint8_t>& skipped, size_t n_states,
                   util::Degradation* degradation) {
  if (degradation == nullptr) return;
  size_t n_skipped = 0;
  for (uint8_t s : skipped) n_skipped += s;
  if (n_skipped == 0) return;
  degradation->truncated = true;
  degradation->degraded_reason =
      std::to_string(n_skipped) + " of " + std::to_string(n_states) +
      " preview evaluations skipped: deadline/budget exhausted";
}

}  // namespace

std::vector<util::Result<sparql::ResultTable>> EvaluateStates(
    const rdf::TripleStore& store, const std::vector<ExploreState>& states,
    const sparql::ExecOptions& exec, util::ThreadPool* pool,
    std::vector<sparql::ExecStats>* stats, const util::ExecGuard* guard,
    util::Degradation* degradation) {
  obs::Span span("exref.evaluate_states");
  span.SetAttr("states", static_cast<uint64_t>(states.size()));
  std::vector<util::Result<sparql::ResultTable>> out;
  out.reserve(states.size());
  for (size_t i = 0; i < states.size(); ++i) {
    out.emplace_back(util::Status::Internal("not evaluated"));
  }
  if (stats != nullptr) stats->assign(states.size(), sparql::ExecStats{});
  std::vector<uint8_t> skipped(states.size(), 0);
  auto eval_one = [&](size_t i) {
    // Min-progress: state 0 always runs, so even an expired deadline
    // yields one real preview; later states degrade to skipped slots.
    if (guard != nullptr && i > 0) {
      util::Status g = guard->Check();
      if (!g.ok()) {
        skipped[i] = 1;
        out[i] = std::move(g);
        return;
      }
    }
    out[i] = sparql::Execute(store, states[i].query, exec,
                             stats != nullptr ? &(*stats)[i] : nullptr);
  };
  if (pool != nullptr && states.size() > 1) {
    pool->ParallelFor(states.size(), eval_one);
  } else {
    for (size_t i = 0; i < states.size(); ++i) eval_one(i);
  }
  ReportSkipped(skipped, states.size(), degradation);
  return out;
}

std::vector<util::Result<engine::TableHandle>> EvaluateStatesCached(
    engine::QueryEngine& engine, const std::vector<ExploreState>& states,
    const sparql::ExecOptions& exec, util::ThreadPool* pool,
    std::vector<sparql::ExecStats>* stats, const util::ExecGuard* guard,
    util::Degradation* degradation) {
  obs::Span span("exref.evaluate_states");
  span.SetAttr("states", static_cast<uint64_t>(states.size()));
  std::vector<util::Result<engine::TableHandle>> out;
  out.reserve(states.size());
  for (size_t i = 0; i < states.size(); ++i) {
    out.emplace_back(util::Status::Internal("not evaluated"));
  }
  if (stats != nullptr) stats->assign(states.size(), sparql::ExecStats{});
  std::vector<uint8_t> skipped(states.size(), 0);
  auto eval_one = [&](size_t i) {
    if (guard != nullptr && i > 0) {
      util::Status g = guard->Check();
      if (!g.ok()) {
        skipped[i] = 1;
        out[i] = std::move(g);
        return;
      }
    }
    out[i] = engine.Execute(states[i].query, exec,
                            stats != nullptr ? &(*stats)[i] : nullptr);
  };
  if (pool != nullptr && states.size() > 1) {
    pool->ParallelFor(states.size(), eval_one);
  } else {
    for (size_t i = 0; i < states.size(); ++i) eval_one(i);
  }
  ReportSkipped(skipped, states.size(), degradation);
  return out;
}

// --- Subset: Top-K -------------------------------------------------------------

util::Result<std::vector<ExploreState>> SubsetTopK(
    const rdf::TripleStore& store, const ExploreState& state,
    const sparql::ResultTable& results) {
  (void)store;
  std::vector<ExploreState> out;
  std::vector<size_t> example_rows = ExampleRowIndexes(state, results);
  if (example_rows.empty()) {
    return out;  // nothing anchors the cut; no refinements
  }
  std::set<size_t> example_set(example_rows.begin(), example_rows.end());

  for (const std::string& mc : state.measure_columns) {
    int col = results.ColumnIndex(mc);
    if (col < 0) continue;
    std::vector<size_t> order(results.row_count());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return results.NumericValue(results.at(a, col)) >
             results.NumericValue(results.at(b, col));
    });

    for (bool descending : {true, false}) {
      const std::vector<size_t>& seq = order;
      auto row_at = [&](size_t i) {
        return descending ? seq[i] : seq[seq.size() - 1 - i];
      };
      // Find the first position where an example row is followed by a
      // non-example row (paper Section 6.2). A cut between tied measure
      // values cannot be expressed as a HAVING threshold (it would keep
      // both sides), so such positions are skipped.
      size_t cut = results.row_count();  // exclusive prefix length
      for (size_t i = 0; i + 1 < results.row_count(); ++i) {
        if (example_set.count(row_at(i)) &&
            !example_set.count(row_at(i + 1)) &&
            results.NumericValue(results.at(row_at(i), col)) !=
                results.NumericValue(results.at(row_at(i + 1), col))) {
          cut = i + 1;
          break;
        }
      }
      if (cut >= results.row_count()) continue;  // no strict subset
      double threshold = results.NumericValue(results.at(row_at(cut - 1), col));
      ExploreState next = state;
      sparql::CompareOp op =
          descending ? sparql::CompareOp::kGe : sparql::CompareOp::kLe;
      next.query.having.push_back(sparql::Expr::Compare(
          op, sparql::Expr::Var(mc),
          sparql::Expr::Constant(rdf::Term::DoubleLiteral(threshold))));
      std::string what = "top-" + std::to_string(cut) + " by " + mc + " (" +
                         (descending ? "descending" : "ascending") + ")";
      next.description = "Keep only the " + what;
      next.trail.push_back("TopK(" + what + ")");
      out.push_back(std::move(next));
    }
  }
  return out;
}

// --- Subset: Percentile ----------------------------------------------------------

util::Result<std::vector<ExploreState>> SubsetPercentile(
    const rdf::TripleStore& store, const ExploreState& state,
    const sparql::ResultTable& results, const PercentileOptions& options) {
  (void)store;
  std::vector<ExploreState> out;
  std::vector<size_t> example_rows = ExampleRowIndexes(state, results);
  if (example_rows.empty() || results.row_count() < 2) return out;

  for (const std::string& mc : state.measure_columns) {
    int col = results.ColumnIndex(mc);
    if (col < 0) continue;
    std::vector<double> values(results.row_count());
    for (size_t i = 0; i < values.size(); ++i) {
      values[i] = results.NumericValue(results.at(i, col));
    }
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    // Band boundaries (fractions -> values).
    std::vector<std::pair<double, double>> fractions;
    double prev = 0.0;
    for (double c : options.cut_points) {
      fractions.emplace_back(prev, c);
      prev = c;
    }
    fractions.emplace_back(prev, 1.0);
    auto value_at = [&](double frac) {
      size_t idx = static_cast<size_t>(frac * static_cast<double>(sorted.size()));
      if (idx >= sorted.size()) idx = sorted.size() - 1;
      return sorted[idx];
    };
    for (auto [flo, fhi] : fractions) {
      double lo = value_at(flo);
      double hi = value_at(fhi);
      if (fhi >= 1.0) hi = sorted.back();
      // Does an example tuple fall inside [lo, hi]?
      bool anchored = false;
      for (size_t r : example_rows) {
        if (values[r] >= lo && values[r] <= hi) {
          anchored = true;
          break;
        }
      }
      if (!anchored) continue;
      // Strict subset check.
      size_t inside = 0;
      for (double v : values) inside += (v >= lo && v <= hi) ? 1 : 0;
      if (inside == values.size() || inside == 0) continue;

      ExploreState next = state;
      next.query.having.push_back(sparql::Expr::And(
          sparql::Expr::Compare(
              sparql::CompareOp::kGe, sparql::Expr::Var(mc),
              sparql::Expr::Constant(rdf::Term::DoubleLiteral(lo))),
          sparql::Expr::Compare(
              sparql::CompareOp::kLe, sparql::Expr::Var(mc),
              sparql::Expr::Constant(rdf::Term::DoubleLiteral(hi)))));
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%d-%dth percentile",
                    static_cast<int>(flo * 100), static_cast<int>(fhi * 100));
      next.description = "Keep tuples whose " + mc + " lies in the " +
                         std::string(buf) + " (" + util::FormatDouble(lo) +
                         " to " + util::FormatDouble(hi) + ")";
      next.trail.push_back("Percentile(" + mc + " " + buf + ")");
      out.push_back(std::move(next));
    }
  }
  return out;
}

// --- Similarity Search ------------------------------------------------------------

util::Result<std::vector<ExploreState>> SimilaritySearch(
    const rdf::TripleStore& store, const ExploreState& state,
    const sparql::ResultTable& results, const SimilarityOptions& options) {
  std::vector<ExploreState> out;
  if (state.example_columns.empty()) return out;

  std::vector<int> item_cols;
  for (const std::string& c : state.example_columns) {
    int idx = results.ColumnIndex(c);
    if (idx < 0) {
      return util::Status::Internal("example column " + c +
                                    " missing from results");
    }
    item_cols.push_back(idx);
  }
  std::vector<int> feature_cols;
  for (const std::string& c : state.extra_columns) {
    int idx = results.ColumnIndex(c);
    if (idx >= 0) feature_cols.push_back(idx);
  }

  using Key = std::vector<rdf::TermId>;
  Key example_key;
  for (const Interpretation& in : state.example) {
    example_key.push_back(in.member);
  }

  // Pick the "sum" measure columns (one per measure) as similarity targets;
  // fall back to all measure columns when none is a sum.
  std::vector<std::string> targets;
  for (const std::string& mc : state.measure_columns) {
    if (mc.rfind("sum_", 0) == 0) targets.push_back(mc);
  }
  if (targets.empty()) targets = state.measure_columns;

  for (const std::string& mc : targets) {
    int mcol = results.ColumnIndex(mc);
    if (mcol < 0) continue;

    // item key -> (feature key -> measure value)
    std::map<Key, std::map<Key, double>> vectors;
    for (size_t r = 0; r < results.row_count(); ++r) {
      Key item;
      bool ok = true;
      for (int c : item_cols) {
        const sparql::Cell& cell = results.at(r, c);
        if (!cell.is_term()) {
          ok = false;
          break;
        }
        item.push_back(cell.term);
      }
      if (!ok) continue;
      Key feat;
      for (int c : feature_cols) {
        const sparql::Cell& cell = results.at(r, c);
        feat.push_back(cell.is_term() ? cell.term : rdf::kInvalidTermId);
      }
      vectors[item][feat] += results.NumericValue(results.at(r, mcol));
    }
    auto example_it = vectors.find(example_key);
    if (example_it == vectors.end()) continue;  // example not in results
    const std::map<Key, double>& ev = example_it->second;

    // Similarity over the sparse feature maps (absent features are 0).
    auto sigma = [&options](const std::map<Key, double>& a,
                            const std::map<Key, double>& b) {
      switch (options.measure) {
        case SimilarityMeasure::kCosine: {
          double dot = 0, na = 0, nb = 0;
          for (const auto& [k, v] : a) {
            na += v * v;
            auto it = b.find(k);
            if (it != b.end()) dot += v * it->second;
          }
          for (const auto& [k, v] : b) nb += v * v;
          if (na == 0 || nb == 0) return 0.0;
          return dot / (std::sqrt(na) * std::sqrt(nb));
        }
        case SimilarityMeasure::kEuclidean: {
          double d2 = 0;
          for (const auto& [k, v] : a) {
            auto it = b.find(k);
            double diff = v - (it == b.end() ? 0.0 : it->second);
            d2 += diff * diff;
          }
          for (const auto& [k, v] : b) {
            if (!a.count(k)) d2 += v * v;
          }
          return -std::sqrt(d2);
        }
        case SimilarityMeasure::kPearson: {
          // Union of feature keys; correlation of the two value vectors.
          std::set<Key> keys;
          for (const auto& [k, v] : a) keys.insert(k);
          for (const auto& [k, v] : b) keys.insert(k);
          const double n = static_cast<double>(keys.size());
          if (n < 2) return 0.0;
          double sa = 0, sb = 0;
          for (const Key& k : keys) {
            auto ia = a.find(k);
            auto ib = b.find(k);
            sa += ia == a.end() ? 0.0 : ia->second;
            sb += ib == b.end() ? 0.0 : ib->second;
          }
          double ma = sa / n, mb = sb / n;
          double cov = 0, va = 0, vb = 0;
          for (const Key& k : keys) {
            auto ia = a.find(k);
            auto ib = b.find(k);
            double da = (ia == a.end() ? 0.0 : ia->second) - ma;
            double db = (ib == b.end() ? 0.0 : ib->second) - mb;
            cov += da * db;
            va += da * da;
            vb += db * db;
          }
          if (va == 0 || vb == 0) return 0.0;
          return cov / (std::sqrt(va) * std::sqrt(vb));
        }
      }
      return 0.0;
    };
    // With no extra dimensions every vector has one feature; cosine would
    // be constant 1, so fall back to measure-value closeness.
    const bool degenerate = feature_cols.empty();
    double ev_value = degenerate && !ev.empty() ? ev.begin()->second : 0.0;

    std::vector<std::pair<double, const Key*>> scored;
    for (const auto& [item, vec] : vectors) {
      if (item == example_key) continue;
      double score =
          degenerate
              ? -std::fabs((vec.empty() ? 0.0 : vec.begin()->second) - ev_value)
              : sigma(ev, vec);
      scored.emplace_back(score, &item);
    }
    std::stable_sort(scored.begin(), scored.end(),
                     [](const auto& a, const auto& b) {
                       return a.first > b.first;
                     });
    if (scored.size() > options.k) scored.resize(options.k);
    if (scored.empty()) continue;

    // Refined query: restrict the example dimensions to the example plus
    // the selected combinations (an OR of per-dimension equalities).
    ExploreState next = state;
    sparql::ExprPtr disjunction;
    auto combo_expr = [&](const Key& key) {
      sparql::ExprPtr conj;
      for (size_t i = 0; i < key.size(); ++i) {
        sparql::ExprPtr eq = sparql::Expr::Compare(
            sparql::CompareOp::kEq,
            sparql::Expr::Var(state.example_columns[i]),
            sparql::Expr::Constant(store.term(key[i])));
        conj = conj ? sparql::Expr::And(std::move(conj), std::move(eq))
                    : std::move(eq);
      }
      return conj;
    };
    disjunction = combo_expr(example_key);
    std::string names;
    for (const auto& [score, key] : scored) {
      disjunction =
          sparql::Expr::Or(std::move(disjunction), combo_expr(*key));
      if (!names.empty()) names += ", ";
      // Describe using the first dimension's member label-ish rendering.
      names += store.term((*key)[0]).value;
    }
    next.query.filters.push_back(std::move(disjunction));
    next.description = "Keep the " + std::to_string(scored.size()) +
                       " combinations most similar to the example on " + mc;
    next.trail.push_back("Similarity(" + mc + ", k=" +
                         std::to_string(scored.size()) + ")");
    out.push_back(std::move(next));
  }
  return out;
}

// --- Roll-up and Slice (classic OLAP counterparts, Section 4.2) ----------------

namespace {

/// Removes a group-by variable and its select item from `query`.
/// (The BGP patterns that bound the variable are left in place; they only
/// constrain observations to ones that have the dimension, which every
/// well-formed observation does.)
void DropGroupColumn(sparql::SelectQuery* query, const std::string& var) {
  auto& gb = query->group_by;
  gb.erase(std::remove_if(gb.begin(), gb.end(),
                          [&](const sparql::Variable& v) {
                            return v.name == var;
                          }),
           gb.end());
  auto& items = query->items;
  items.erase(std::remove_if(items.begin(), items.end(),
                             [&](const sparql::SelectItem& it) {
                               return !it.is_aggregate && it.var.name == var;
                             }),
              items.end());
}

}  // namespace

std::vector<ExploreState> RollUp(const VirtualSchemaGraph& vsg,
                                 const rdf::TripleStore& store,
                                 const ExploreState& state) {
  std::vector<ExploreState> out;
  const size_t n_example = state.example_columns.size();
  for (size_t i = 0; i < state.extra_columns.size(); ++i) {
    const std::string& column = state.extra_columns[i];
    const LevelPath* path = state.paths[n_example + i];

    // (a) Remove the dimension entirely.
    {
      ExploreState next = state;
      DropGroupColumn(&next.query, column);
      next.extra_columns.erase(next.extra_columns.begin() +
                               static_cast<long>(i));
      next.paths.erase(next.paths.begin() +
                       static_cast<long>(n_example + i));
      std::string what = DescribePath(store, *path);
      next.description = "Roll up: remove \"" + what + "\"";
      next.trail.push_back("RollUp(remove " + what + ")");
      out.push_back(std::move(next));
    }

    // (b) Re-aggregate at every coarser level (paths extending this one).
    for (const LevelPath& coarser : vsg.level_paths()) {
      if (!ExtendsUpward(*path, coarser)) continue;
      bool already_present = false;
      for (const LevelPath* p : state.paths) {
        if (SamePath(*p, coarser)) {
          already_present = true;
          break;
        }
      }
      if (already_present) continue;
      // Replace: drop the fine column, add the coarse path like
      // Disaggregate does.
      ExploreState next = state;
      DropGroupColumn(&next.query, column);
      next.extra_columns.erase(next.extra_columns.begin() +
                               static_cast<long>(i));
      next.paths.erase(next.paths.begin() +
                       static_cast<long>(n_example + i));
      std::string var =
          "r" + std::to_string(next.fresh_vars++) + "_" +
          IriLocalName(store.term(coarser.predicates.back()).value);
      sparql::TermOrVar current = sparql::Variable{"obs"};
      for (size_t s = 0; s < coarser.predicates.size(); ++s) {
        sparql::TermOrVar nxt =
            (s + 1 == coarser.predicates.size())
                ? sparql::TermOrVar(sparql::Variable{var})
                : sparql::TermOrVar(sparql::Variable{
                      "h" + std::to_string(next.fresh_vars++)});
        next.query.patterns.push_back(sparql::TriplePatternAst{
            current, store.term(coarser.predicates[s]), nxt});
        current = nxt;
      }
      next.query.group_by.push_back(sparql::Variable{var});
      sparql::SelectItem item;
      item.var = sparql::Variable{var};
      size_t insert_at = 0;
      while (insert_at < next.query.items.size() &&
             !next.query.items[insert_at].is_aggregate) {
        ++insert_at;
      }
      next.query.items.insert(
          next.query.items.begin() + static_cast<long>(insert_at), item);
      next.extra_columns.push_back(var);
      next.paths.push_back(&coarser);
      std::string from = DescribePath(store, *path);
      std::string to = DescribePath(store, coarser);
      next.description = "Roll up \"" + from + "\" to \"" + to + "\"";
      next.trail.push_back("RollUp(" + from + " -> " + to + ")");
      out.push_back(std::move(next));
    }
  }
  return out;
}

util::Result<ExploreState> SliceToExample(const rdf::TripleStore& store,
                                          const ExploreState& state,
                                          size_t example_index) {
  if (example_index >= state.example_columns.size()) {
    return util::Status::InvalidArgument("example index out of range");
  }
  if (state.example_columns.size() <= 1) {
    return util::Status::InvalidArgument(
        "cannot slice away the only example dimension");
  }
  ExploreState next = state;
  const std::string column = state.example_columns[example_index];
  rdf::TermId member = state.example[example_index].member;

  // Pin the variable to the example member(s) — all example rows' values
  // at this column — and drop it from the output.
  std::vector<rdf::Term> members = {store.term(member)};
  for (const auto& row : state.extra_examples) {
    const rdf::Term& t = store.term(row[example_index].member);
    if (std::find(members.begin(), members.end(), t) == members.end()) {
      members.push_back(t);
    }
  }
  if (members.size() == 1) {
    next.query.filters.push_back(sparql::Expr::Compare(
        sparql::CompareOp::kEq, sparql::Expr::Var(column),
        sparql::Expr::Constant(members[0])));
  } else {
    next.query.filters.push_back(
        sparql::Expr::In(column, std::move(members)));
  }
  DropGroupColumn(&next.query, column);
  next.example_columns.erase(next.example_columns.begin() +
                             static_cast<long>(example_index));
  next.example.erase(next.example.begin() +
                     static_cast<long>(example_index));
  for (auto& row : next.extra_examples) {
    row.erase(row.begin() + static_cast<long>(example_index));
  }
  next.paths.erase(next.paths.begin() + static_cast<long>(example_index));
  std::string name = DisplayName(store, member);
  next.description = "Slice: fix " + column + " to \"" + name + "\"";
  next.trail.push_back("Slice(" + name + ")");
  return next;
}

// --- Clustering-based subset (user-study prototype feature) -------------------

util::Result<std::vector<ExploreState>> SubsetCluster(
    const rdf::TripleStore& store, const ExploreState& state,
    const sparql::ResultTable& results, const ClusterOptions& options) {
  (void)store;
  std::vector<ExploreState> out;
  if (options.k < 2 || results.row_count() < options.k) return out;
  std::vector<size_t> example_rows = ExampleRowIndexes(state, results);
  if (example_rows.empty()) return out;

  for (const std::string& mc : state.measure_columns) {
    int col = results.ColumnIndex(mc);
    if (col < 0) continue;
    std::vector<double> values(results.row_count());
    for (size_t i = 0; i < values.size(); ++i) {
      values[i] = results.NumericValue(results.at(i, col));
    }
    // 1-D k-means seeded by quantiles of the sorted values.
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    std::vector<double> centers(options.k);
    for (size_t c = 0; c < options.k; ++c) {
      centers[c] = sorted[(2 * c + 1) * sorted.size() / (2 * options.k)];
    }
    std::vector<size_t> assign(values.size(), 0);
    for (size_t iter = 0; iter < options.max_iters; ++iter) {
      bool changed = false;
      for (size_t i = 0; i < values.size(); ++i) {
        size_t best = 0;
        double best_d = std::fabs(values[i] - centers[0]);
        for (size_t c = 1; c < options.k; ++c) {
          double d = std::fabs(values[i] - centers[c]);
          if (d < best_d) {
            best_d = d;
            best = c;
          }
        }
        if (assign[i] != best) {
          assign[i] = best;
          changed = true;
        }
      }
      for (size_t c = 0; c < options.k; ++c) {
        double sum = 0;
        size_t n = 0;
        for (size_t i = 0; i < values.size(); ++i) {
          if (assign[i] == c) {
            sum += values[i];
            ++n;
          }
        }
        if (n > 0) centers[c] = sum / static_cast<double>(n);
      }
      if (!changed) break;
    }
    // The cluster holding the first example row anchors the refinement.
    size_t cluster = assign[example_rows[0]];
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    size_t inside = 0;
    for (size_t i = 0; i < values.size(); ++i) {
      if (assign[i] == cluster) {
        lo = std::min(lo, values[i]);
        hi = std::max(hi, values[i]);
        ++inside;
      }
    }
    // Ensure a strict subset expressible as a value range: members of
    // other clusters must not fall inside [lo, hi] (1-D k-means yields
    // contiguous clusters, so this holds by construction).
    if (inside == 0 || inside == values.size()) continue;

    ExploreState next = state;
    next.query.having.push_back(sparql::Expr::And(
        sparql::Expr::Compare(
            sparql::CompareOp::kGe, sparql::Expr::Var(mc),
            sparql::Expr::Constant(rdf::Term::DoubleLiteral(lo))),
        sparql::Expr::Compare(
            sparql::CompareOp::kLe, sparql::Expr::Var(mc),
            sparql::Expr::Constant(rdf::Term::DoubleLiteral(hi)))));
    next.description = "Keep the value cluster around the example on " + mc +
                       " (" + util::FormatDouble(lo) + " to " +
                       util::FormatDouble(hi) + ", " +
                       std::to_string(inside) + " tuples)";
    next.trail.push_back("Cluster(" + mc + ")");
    out.push_back(std::move(next));
  }
  return out;
}

// --- Negative examples (Section 8 future work) ----------------------------------

util::Result<NegativeResult> ExcludeNegativeExamples(
    const Reolap& reolap, const ExploreState& state,
    const std::vector<std::string>& negative_values) {
  if (negative_values.empty()) {
    return util::Status::InvalidArgument("no negative examples given");
  }
  const rdf::TripleStore& store = reolap.store();
  NegativeResult result;
  result.state = state;

  // Columns and their level nodes currently in the query (example columns
  // first, then disaggregated extras), aligned with state.paths.
  std::vector<std::string> columns = state.example_columns;
  columns.insert(columns.end(), state.extra_columns.begin(),
                 state.extra_columns.end());

  // Per column: negative members to exclude.
  std::map<std::string, std::vector<rdf::Term>> exclusions;
  for (const std::string& value : negative_values) {
    std::vector<Interpretation> interps = reolap.MatchValue(value);
    bool matched = false;
    for (const Interpretation& in : interps) {
      for (size_t i = 0; i < state.paths.size() && i < columns.size(); ++i) {
        if (state.paths[i] == in.path) {
          exclusions[columns[i]].push_back(store.term(in.member));
          matched = true;
        }
      }
    }
    if (!matched) result.unmatched_values.push_back(value);
  }
  if (exclusions.empty()) {
    return util::Status::NotFound(
        "no negative example matches a dimension level of the query");
  }
  std::string excluded_desc;
  for (auto& [column, terms] : exclusions) {
    result.state.query.filters.push_back(sparql::Expr::Not(
        sparql::Expr::In(column, std::move(terms))));
    if (!excluded_desc.empty()) excluded_desc += ", ";
    excluded_desc += column;
  }
  result.state.description =
      "Exclude the negative examples on " + excluded_desc;
  result.state.trail.push_back("ExcludeNegative(" + excluded_desc + ")");
  return result;
}

// --- Contrast queries (Section 8 future work) ------------------------------------

util::Result<ExploreState> ContrastWith(
    const Reolap& reolap, const ExploreState& state,
    const std::vector<std::string>& other_values) {
  const rdf::TripleStore& store = reolap.store();
  if (other_values.size() != state.example.size()) {
    return util::Status::InvalidArgument(
        "the contrast set must have one value per example dimension");
  }
  // Map each value onto the corresponding example column's level path.
  std::vector<Interpretation> other(state.example.size());
  for (size_t i = 0; i < other_values.size(); ++i) {
    bool found = false;
    for (const Interpretation& in : reolap.MatchValue(other_values[i])) {
      if (in.path == state.example[i].path) {
        other[i] = in;
        found = true;
        break;
      }
    }
    if (!found) {
      return util::Status::NotFound(
          "\"" + other_values[i] + "\" has no member at the level of " +
          state.example_columns[i]);
    }
  }
  if (!reolap.ValidateCombo(other, 10000)) {
    return util::Status::NotFound(
        "no observation matches the contrast combination");
  }

  ExploreState next = state;
  // Restrict the example dimensions to the two combinations.
  auto combo_expr = [&](const std::vector<Interpretation>& row) {
    sparql::ExprPtr conj;
    for (size_t i = 0; i < row.size(); ++i) {
      sparql::ExprPtr eq = sparql::Expr::Compare(
          sparql::CompareOp::kEq,
          sparql::Expr::Var(state.example_columns[i]),
          sparql::Expr::Constant(store.term(row[i].member)));
      conj = conj ? sparql::Expr::And(std::move(conj), std::move(eq))
                  : std::move(eq);
    }
    return conj;
  };
  next.query.filters.push_back(
      sparql::Expr::Or(combo_expr(state.example), combo_expr(other)));
  next.extra_examples.push_back(other);
  std::string a = DisplayName(store, state.example[0].member);
  std::string b = DisplayName(store, other[0].member);
  next.description = "Contrast \"" + a + "\" against \"" + b + "\"";
  next.trail.push_back("Contrast(" + a + " vs " + b + ")");
  return next;
}

ContrastReport BuildContrastReport(const ExploreState& state,
                                   const sparql::ResultTable& results) {
  ContrastReport report;
  report.measure_columns = state.measure_columns;
  report.primary.assign(state.measure_columns.size(), 0.0);
  report.others.assign(state.extra_examples.size(),
                       std::vector<double>(state.measure_columns.size(), 0.0));

  std::vector<int> example_cols;
  for (const std::string& c : state.example_columns) {
    example_cols.push_back(results.ColumnIndex(c));
  }
  std::vector<int> measure_cols;
  for (const std::string& c : state.measure_columns) {
    measure_cols.push_back(results.ColumnIndex(c));
  }
  auto row_matches = [&](size_t r, const std::vector<Interpretation>& row) {
    for (size_t i = 0; i < example_cols.size(); ++i) {
      if (example_cols[i] < 0) return false;
      const sparql::Cell& cell = results.at(r, example_cols[i]);
      if (!cell.is_term() || cell.term != row[i].member) return false;
    }
    return true;
  };
  for (size_t r = 0; r < results.row_count(); ++r) {
    std::vector<double>* target = nullptr;
    if (row_matches(r, state.example)) {
      target = &report.primary;
    } else {
      for (size_t e = 0; e < state.extra_examples.size(); ++e) {
        if (row_matches(r, state.extra_examples[e])) {
          target = &report.others[e];
          break;
        }
      }
    }
    if (!target) continue;
    for (size_t m = 0; m < measure_cols.size(); ++m) {
      if (measure_cols[m] >= 0) {
        (*target)[m] += results.NumericValue(results.at(r, measure_cols[m]));
      }
    }
  }
  return report;
}

}  // namespace re2xolap::core
