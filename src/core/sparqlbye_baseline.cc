#include "core/sparqlbye_baseline.h"

#include <set>

namespace re2xolap::core {

util::Result<sparql::SelectQuery> SparqlByEBaseline::Synthesize(
    const std::vector<std::string>& example_tuple) const {
  if (example_tuple.empty()) {
    return util::Status::InvalidArgument("example tuple is empty");
  }
  sparql::SelectQuery q;
  q.select_all = true;

  for (size_t i = 0; i < example_tuple.size(); ++i) {
    std::vector<rdf::TermId> literals = text_->Match(example_tuple[i], 1);
    if (literals.empty()) {
      return util::Status::NotFound("no entity matches \"" +
                                    example_tuple[i] + "\"");
    }
    rdf::TermId lit = literals.front();
    // The first subject holding this literal is the matched entity.
    rdf::IndexRange holders = store_->Match(
        rdf::TriplePattern{rdf::kInvalidTermId, rdf::kInvalidTermId, lit});
    if (holders.empty()) {
      return util::Status::NotFound("literal for \"" + example_tuple[i] +
                                    "\" is detached");
    }
    const rdf::EncodedTriple attr = holders.front();
    const std::string var = "x" + std::to_string(i);

    // Pattern anchoring the entity to the example value.
    q.patterns.push_back(sparql::TriplePatternAst{
        sparql::Variable{var}, store_->term(attr.p), store_->term(lit)});

    // Single-hop outgoing IRI patterns of the entity (the "minimal BGP
    // describing the node"), one per distinct predicate, object left free.
    std::set<rdf::TermId> preds;
    for (const rdf::EncodedTriple& t : store_->Match(
             rdf::TriplePattern{attr.s, rdf::kInvalidTermId,
                                rdf::kInvalidTermId})) {
      if (t.p == attr.p) continue;
      if (!store_->term(t.o).is_iri()) continue;
      if (!preds.insert(t.p).second) continue;
      q.patterns.push_back(sparql::TriplePatternAst{
          sparql::Variable{var}, store_->term(t.p),
          sparql::Variable{var + "_o" + std::to_string(preds.size())}});
    }
  }
  return q;
}

}  // namespace re2xolap::core
