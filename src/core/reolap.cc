#include "core/reolap.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

#include "core/describe.h"
#include "engine/query_engine.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sparql/executor.h"
#include "util/failpoint.h"
#include "util/string_utils.h"
#include "util/timer.h"

namespace re2xolap::core {

namespace {

std::string IriLocalName(const std::string& iri) {
  size_t cut = iri.find_last_of("/#");
  return cut == std::string::npos ? iri : iri.substr(cut + 1);
}

/// Resolves the effective validation parallelism of `options`.
size_t EffectiveThreads(const ReolapOptions& options) {
  return options.num_threads == 0 ? util::ThreadPool::DefaultThreads()
                                  : options.num_threads;
}

/// Returns the pool to fan work onto: the caller-supplied one, a freshly
/// created local pool (owned by `local`), or nullptr for serial runs.
util::ThreadPool* ResolvePool(const ReolapOptions& options,
                              std::unique_ptr<util::ThreadPool>* local) {
  if (options.pool != nullptr) return options.pool;
  size_t threads = EffectiveThreads(options);
  if (threads <= 1) return nullptr;
  *local = std::make_unique<util::ThreadPool>(threads);
  return local->get();
}

/// Column/variable name for the group-by variable of an interpretation:
/// dimension predicate local name, plus the last hierarchy predicate when
/// the path is deeper than the base level (e.g. "refPeriod_inYear").
std::string GroupVarName(const rdf::TripleStore& store, const LevelPath& path,
                         size_t value_index) {
  std::string name = IriLocalName(store.term(path.predicates.front()).value);
  if (path.predicates.size() > 1) {
    name += "_" + IriLocalName(store.term(path.predicates.back()).value);
  }
  // Prefix with the value index so that two values interpreted over
  // sibling paths of the same dimension never clash.
  return "g" + std::to_string(value_index) + "_" + name;
}

}  // namespace

std::vector<Interpretation> Reolap::MatchValue(
    const std::string& value, const ReolapOptions& options) const {
  std::vector<Interpretation> out;
  std::set<std::pair<rdf::TermId, const LevelPath*>> seen;

  // Mixed input: direct IRI references skip the label index entirely.
  std::string iri;
  if (value.size() > 2 && value.front() == '<' && value.back() == '>') {
    iri = value.substr(1, value.size() - 2);
  } else if (value.rfind("http://", 0) == 0 ||
             value.rfind("https://", 0) == 0) {
    iri = value;
  }
  if (!iri.empty()) {
    rdf::TermId member = store_->Lookup(rdf::Term::Iri(iri));
    if (member != rdf::kInvalidTermId) {
      for (int node : vsg_->NodesOfMember(member)) {
        for (const LevelPath* path : vsg_->PathsTo(node)) {
          if (seen.emplace(member, path).second) {
            out.push_back(Interpretation{member, path});
          }
        }
      }
    }
    return out;
  }

  std::vector<rdf::TermId> literals =
      text_->Match(value, options.max_matches_per_value, options.guard);
  for (rdf::TermId lit : literals) {
    // Subjects holding this literal value are candidate dimension members.
    for (const rdf::EncodedTriple& t : store_->Match(
             rdf::TriplePattern{rdf::kInvalidTermId, rdf::kInvalidTermId,
                                lit})) {
      for (int node : vsg_->NodesOfMember(t.s)) {
        for (const LevelPath* path : vsg_->PathsTo(node)) {
          if (seen.emplace(t.s, path).second) {
            out.push_back(Interpretation{t.s, path});
          }
        }
      }
    }
  }
  return out;
}

CandidateQuery Reolap::BuildQuery(const std::vector<Interpretation>& combo,
                                  const ReolapOptions& options) const {
  using sparql::SelectItem;
  using sparql::TriplePatternAst;
  using sparql::Variable;

  CandidateQuery cq;
  cq.interpretations = combo;
  sparql::SelectQuery& q = cq.query;

  const Variable obs{"obs"};

  // ?obs a <ObservationClass>. Identify the class via the root's typing:
  // every observation carries rdf:type; we reconstruct the class from the
  // store by looking at any observation. Simpler and robust: the class is
  // remembered by the caller's VSG bootstrap — but the paths already
  // constrain ?obs to link to dimension members, and the type pattern only
  // matters when other node kinds share dimension predicates. We include
  // the measure pattern, which only observations have.
  int fresh = 0;
  for (size_t i = 0; i < combo.size(); ++i) {
    const LevelPath& path = *combo[i].path;
    std::string group_var = GroupVarName(*store_, path, i);
    sparql::TermOrVar current = obs;
    for (size_t s = 0; s < path.predicates.size(); ++s) {
      sparql::TermOrVar next =
          (s + 1 == path.predicates.size())
              ? sparql::TermOrVar(Variable{group_var})
              : sparql::TermOrVar(
                    Variable{"h" + std::to_string(fresh++)});
      q.patterns.push_back(TriplePatternAst{
          current, store_->term(path.predicates[s]), next});
      current = next;
    }
    q.group_by.push_back(Variable{group_var});
    SelectItem item;
    item.var = Variable{group_var};
    q.items.push_back(item);
    cq.group_columns.push_back(group_var);
  }

  // Measures: one variable per measure predicate, aggregated.
  const std::vector<rdf::TermId>& measures = vsg_->measure_predicates();
  for (size_t m = 0; m < measures.size(); ++m) {
    std::string mvar = "m" + std::to_string(m);
    q.patterns.push_back(TriplePatternAst{
        obs, store_->term(measures[m]), Variable{mvar}});
    std::vector<sparql::AggFunc> funcs;
    if (options.all_aggregates) {
      funcs = {sparql::AggFunc::kSum, sparql::AggFunc::kMin,
               sparql::AggFunc::kMax, sparql::AggFunc::kAvg};
    } else {
      funcs = {sparql::AggFunc::kSum};
    }
    for (sparql::AggFunc f : funcs) {
      SelectItem item;
      item.is_aggregate = true;
      item.func = f;
      item.var = Variable{mvar};
      std::string fname = sparql::AggFuncName(f);
      for (char& c : fname) c = static_cast<char>(std::tolower(c));
      item.alias = fname + "_" + IriLocalName(store_->term(measures[m]).value);
      cq.measure_columns.push_back(item.alias);
      q.items.push_back(std::move(item));
    }
  }

  // Natural-language description from the data's own annotations
  // (Section 5.1): rdfs:label declarations on predicates when present,
  // prettified local names otherwise.
  std::string desc = "Return ";
  for (size_t m = 0; m < measures.size(); ++m) {
    if (m > 0) desc += ", ";
    desc += "SUM(" + DisplayName(*store_, measures[m]) + ")";
  }
  desc += " grouped by ";
  for (size_t i = 0; i < combo.size(); ++i) {
    if (i > 0) desc += " and ";
    desc += "\"" + DescribePath(*store_, *combo[i].path) + "\"";
  }
  cq.description = std::move(desc);
  return cq;
}

bool Reolap::ValidateCombo(const std::vector<Interpretation>& combo,
                           uint64_t timeout_millis) const {
  obs::Span span("reolap.probe");
  static obs::Counter& probes_total =
      obs::MetricsRegistry::Global().GetCounter("reolap.probes");
  probes_total.Inc();
  // Fault-injection site: an injected error makes this probe report "no
  // observation", exercising the no-valid-candidate paths downstream.
  if (!util::FailpointStatus("reolap.validate").ok()) return false;
  // Probe: SELECT ?obs WHERE { <paths pinned to the members> } LIMIT 1.
  using sparql::TriplePatternAst;
  using sparql::Variable;
  sparql::SelectQuery probe;
  sparql::SelectItem item;
  item.var = Variable{"obs"};
  probe.items.push_back(item);
  probe.limit = 1;
  const Variable obs{"obs"};
  int fresh = 0;
  for (const Interpretation& in : combo) {
    sparql::TermOrVar current = obs;
    const LevelPath& path = *in.path;
    for (size_t s = 0; s < path.predicates.size(); ++s) {
      sparql::TermOrVar next =
          (s + 1 == path.predicates.size())
              ? sparql::TermOrVar(store_->term(in.member))
              : sparql::TermOrVar(Variable{"v" + std::to_string(fresh++)});
      probe.patterns.push_back(TriplePatternAst{
          current, store_->term(path.predicates[s]), next});
      current = next;
    }
  }
  sparql::ExecOptions opts;
  opts.timeout_millis = timeout_millis;
  if (engine_ != nullptr) {
    auto result = engine_->Execute(probe, opts);
    return result.ok() && (*result)->row_count() > 0;
  }
  auto result = sparql::Execute(*store_, probe, opts);
  return result.ok() && result->row_count() > 0;
}

util::Result<std::vector<CandidateQuery>> Reolap::Synthesize(
    const std::vector<std::string>& example_tuple,
    const ReolapOptions& options, ReolapStats* stats) const {
  if (example_tuple.empty()) {
    return util::Status::InvalidArgument("example tuple is empty");
  }
  // Overall-deadline guard: the caller's guard when supplied, otherwise a
  // local one derived from overall_deadline_millis. Expiry degrades the
  // synthesis (partial-but-validated candidates, truncated flag in stats)
  // rather than erroring; the first validation block always completes, so
  // even an already expired deadline yields a usable answer.
  util::ExecGuard local_guard;
  ReolapOptions opts = options;
  if (opts.guard == nullptr && opts.overall_deadline_millis > 0) {
    local_guard = util::ExecGuard::WithDeadline(opts.overall_deadline_millis);
    opts.guard = &local_guard;
  }
  const util::ExecGuard* guard = opts.guard;
  std::unique_ptr<util::ThreadPool> local_pool;
  util::ThreadPool* pool = ResolvePool(opts, &local_pool);
  if (stats) stats->threads_used = EffectiveThreads(opts);
  obs::Span synth_span("reolap.synthesize");
  synth_span.SetAttr("values", static_cast<uint64_t>(example_tuple.size()));
  util::WallTimer timer;

  // Lines 2–7 of Algorithm 1: interpretations per value. Each value's
  // MATCHES() is independent and read-only, so values fan out across the
  // pool into per-index slots (order-preserving).
  std::vector<std::vector<Interpretation>> dims(example_tuple.size());
  {
    obs::Span match_span("reolap.match");
    auto match_one = [&](size_t i) {
      dims[i] = MatchValue(example_tuple[i], opts);
    };
    if (pool != nullptr && example_tuple.size() > 1) {
      pool->ParallelFor(dims.size(), match_one);
    } else {
      for (size_t i = 0; i < dims.size(); ++i) match_one(i);
    }
  }
  for (const auto& d : dims) {
    if (d.empty()) {
      // Some value cannot be mapped to any dimension member: no query can
      // subsume the tuple.
      if (stats) stats->match_millis = timer.ElapsedMillis();
      return std::vector<CandidateQuery>{};
    }
  }
  if (stats) {
    stats->match_millis = timer.ElapsedMillis();
    size_t space = 1;
    for (const auto& d : dims) space *= d.size();
    stats->interpretations_considered = space;
  }

  // Lines 8–11: combine interpretations. Within one combination every value
  // must map to a distinct dimension (distinct root predicates): a single
  // result tuple carries one member per dimension.
  //
  // The probe fan-out works in blocks to stay deterministic: the odometer
  // enumerates the next block of deduplicated combinations in serial
  // order, the block's LIMIT-1 probes run concurrently into per-index
  // verdict slots, and the verdicts are then consumed back in serial
  // order — so the output candidates, their ordering, and the stats
  // counters are byte-identical for every thread count (the only
  // difference is up to one block of extra probes past the max_queries
  // cut-off, whose verdicts are discarded uncounted).
  std::vector<CandidateQuery> out;
  std::vector<Interpretation> combo(example_tuple.size());
  std::set<std::vector<std::pair<rdf::TermId, const LevelPath*>>> emitted;

  const size_t block_size =
      pool == nullptr ? 1 : std::max<size_t>(4 * (pool->size() + 1), 16);
  std::vector<std::vector<Interpretation>> pending;
  std::vector<size_t> idx(example_tuple.size(), 0);
  bool exhausted = false, capped = false;
  double combine_ms = 0, validate_ms = 0;
  obs::Span combine_span("reolap.combine_validate");
  while (!exhausted && !capped) {
    // Enumerate the next block of unique, distinct-dimension combos.
    timer.Restart();
    pending.clear();
    while (!exhausted && pending.size() < block_size) {
      bool ok = true;
      std::set<rdf::TermId> used_dims;
      for (size_t i = 0; i < idx.size() && ok; ++i) {
        combo[i] = dims[i][idx[i]];
        rdf::TermId dim_pred = combo[i].path->dimension_predicate();
        if (!used_dims.insert(dim_pred).second) ok = false;
      }
      if (ok) {
        // The same (member, path) multiset may arise from different
        // matched literals; dedupe by the combo signature.
        std::vector<std::pair<rdf::TermId, const LevelPath*>> sig;
        sig.reserve(combo.size());
        for (const Interpretation& in : combo) {
          sig.emplace_back(in.member, in.path);
        }
        if (emitted.insert(sig).second) pending.push_back(combo);
      }
      // Advance the odometer.
      size_t pos = 0;
      while (pos < idx.size()) {
        if (++idx[pos] < dims[pos].size()) break;
        idx[pos] = 0;
        ++pos;
      }
      if (pos == idx.size()) exhausted = true;
    }
    combine_ms += timer.ElapsedMillis();

    // Probe the block concurrently; verdicts land in per-index slots.
    // Per-probe timeouts are clamped to the remaining overall budget
    // (floored at 1 ms so the min-progress block still runs real probes).
    uint64_t probe_timeout = opts.validation_timeout_millis;
    if (guard != nullptr && guard->has_deadline()) {
      uint64_t remaining = guard->remaining_millis();
      if (probe_timeout == 0 || remaining < probe_timeout) {
        probe_timeout = remaining;
      }
      probe_timeout = std::max<uint64_t>(1, probe_timeout);
    }
    timer.Restart();
    std::vector<uint8_t> valid(pending.size(), 1);
    if (opts.validate && !pending.empty()) {
      auto probe = [&](size_t i) {
        valid[i] =
            ValidateCombo(pending[i], probe_timeout) ? 1
                                                                         : 0;
      };
      if (pool != nullptr) {
        pool->ParallelFor(pending.size(), probe);
      } else {
        for (size_t i = 0; i < pending.size(); ++i) probe(i);
      }
    }
    validate_ms += timer.ElapsedMillis();

    // Consume verdicts in serial candidate order.
    timer.Restart();
    for (size_t i = 0; i < pending.size() && !capped; ++i) {
      if (stats) ++stats->combinations_checked;
      if (valid[i]) {
        if (stats) ++stats->validated_ok;
        // Different members on the same path family produce the same
        // query shape; the paper still treats them as one query per
        // combination of *levels*. Dedupe output queries by path set.
        out.push_back(BuildQuery(pending[i], opts));
        if (out.size() >= opts.max_queries) capped = true;
      }
    }
    combine_ms += timer.ElapsedMillis();

    // Degradation point: checked only *after* a block has been fully
    // consumed, so the first block's candidates always survive.
    if (guard != nullptr && !exhausted && !capped && !guard->Check().ok()) {
      if (stats) {
        stats->truncated = true;
        stats->degraded_reason =
            "overall deadline expired after " +
            std::to_string(stats->combinations_checked) +
            " combinations; remaining combinations skipped";
      }
      break;
    }
  }
  combine_span.End();

  // Queries over the same ordered set of level paths are duplicates from
  // the user's perspective (identical SPARQL text); keep the first.
  std::set<std::vector<const LevelPath*>> seen_paths;
  std::vector<CandidateQuery> unique;
  for (CandidateQuery& cq : out) {
    std::vector<const LevelPath*> key;
    key.reserve(cq.interpretations.size());
    for (const Interpretation& in : cq.interpretations) key.push_back(in.path);
    if (seen_paths.insert(key).second) unique.push_back(std::move(cq));
  }

  if (stats) {
    stats->combine_millis = combine_ms;
    stats->validate_millis = validate_ms;
  }
  if (opts.rank_candidates) RankCandidates(*vsg_, &unique);
  synth_span.SetAttr("candidates", static_cast<uint64_t>(unique.size()));
  return unique;
}

util::Result<std::vector<CandidateQuery>> Reolap::SynthesizeMulti(
    const std::vector<std::vector<std::string>>& example_tuples,
    const ReolapOptions& options, ReolapStats* stats) const {
  if (example_tuples.empty()) {
    return util::Status::InvalidArgument("no example tuples");
  }
  const size_t arity = example_tuples[0].size();
  for (const auto& t : example_tuples) {
    if (t.size() != arity) {
      return util::Status::InvalidArgument(
          "example tuples must all have the same arity");
    }
  }
  // Candidates from the first tuple; the remaining tuples then filter
  // them: every row must map onto the candidate's level paths and
  // jointly validate (T_E ⊑ T for every tuple in T_E). One pool serves
  // both the nested Synthesize call and the per-candidate row checks.
  std::unique_ptr<util::ThreadPool> local_pool;
  util::ThreadPool* pool = ResolvePool(options, &local_pool);
  ReolapOptions pooled_options = options;
  pooled_options.pool = pool;
  // One guard spans the nested Synthesize and the multi-tuple filtering,
  // so the overall deadline covers the whole call.
  util::ExecGuard local_guard;
  if (pooled_options.guard == nullptr &&
      pooled_options.overall_deadline_millis > 0) {
    local_guard =
        util::ExecGuard::WithDeadline(pooled_options.overall_deadline_millis);
    pooled_options.guard = &local_guard;
  }
  const util::ExecGuard* guard = pooled_options.guard;
  RE2X_ASSIGN_OR_RETURN(std::vector<CandidateQuery> candidates,
                        Synthesize(example_tuples[0], pooled_options, stats));
  if (example_tuples.size() == 1) return candidates;

  // Degradation point: when the budget is already gone, skip the
  // multi-tuple filtering and hand back the (validated) first-tuple
  // candidates instead of erroring — explicitly flagged as unfiltered.
  if (guard != nullptr && !guard->Check().ok()) {
    if (stats) {
      stats->truncated = true;
      stats->degraded_reason =
          "overall deadline expired before multi-tuple filtering; "
          "candidates reflect the first example tuple only";
    }
    return candidates;
  }

  // Interpretations per (tuple >= 1, column), computed once; the
  // (tuple, column) MATCHES() lookups are independent and fan out.
  std::vector<std::vector<std::vector<Interpretation>>> interps(
      example_tuples.size());
  for (size_t t = 1; t < example_tuples.size(); ++t) interps[t].resize(arity);
  auto match_one = [&](size_t flat) {
    size_t t = 1 + flat / arity;
    size_t j = flat % arity;
    interps[t][j] = MatchValue(example_tuples[t][j], pooled_options);
  };
  const size_t n_lookups = (example_tuples.size() - 1) * arity;
  if (pool != nullptr) {
    pool->ParallelFor(n_lookups, match_one);
  } else {
    for (size_t flat = 0; flat < n_lookups; ++flat) match_one(flat);
  }

  // Each candidate's row filtering is independent of the others: verdicts
  // (plus the validated extra rows) land in per-candidate slots and the
  // surviving candidates are collected in serial order afterwards.
  struct RowCheck {
    bool keep = false;
    std::vector<std::vector<Interpretation>> extra_rows;
  };
  std::vector<RowCheck> checks(candidates.size());
  auto check_one = [&](size_t c) {
    const CandidateQuery& cand = candidates[c];
    RowCheck& rc = checks[c];
    bool all_rows_ok = true;
    for (size_t t = 1; t < example_tuples.size() && all_rows_ok; ++t) {
      // Per column: members of this tuple interpretable over the
      // candidate's path.
      std::vector<std::vector<Interpretation>> per_column(arity);
      for (size_t j = 0; j < arity; ++j) {
        for (const Interpretation& in : interps[t][j]) {
          if (in.path == cand.interpretations[j].path) {
            per_column[j].push_back(in);
          }
        }
        if (per_column[j].empty()) {
          all_rows_ok = false;
          break;
        }
      }
      if (!all_rows_ok) break;
      // Try member combinations (bounded) until one row validates.
      constexpr size_t kMaxRowAttempts = 8;
      std::vector<size_t> idx(arity, 0);
      bool row_ok = false;
      for (size_t attempt = 0; attempt < kMaxRowAttempts; ++attempt) {
        std::vector<Interpretation> row(arity);
        for (size_t j = 0; j < arity; ++j) row[j] = per_column[j][idx[j]];
        if (!options.validate ||
            ValidateCombo(row, options.validation_timeout_millis)) {
          rc.extra_rows.push_back(std::move(row));
          row_ok = true;
          break;
        }
        // Advance the odometer; stop when exhausted.
        size_t pos = 0;
        while (pos < arity) {
          if (++idx[pos] < per_column[pos].size()) break;
          idx[pos] = 0;
          ++pos;
        }
        if (pos == arity) break;
      }
      if (!row_ok) all_rows_ok = false;
    }
    rc.keep = all_rows_ok;
  };
  if (pool != nullptr) {
    pool->ParallelFor(candidates.size(), check_one);
  } else {
    for (size_t c = 0; c < candidates.size(); ++c) check_one(c);
  }

  std::vector<CandidateQuery> kept;
  for (size_t c = 0; c < candidates.size(); ++c) {
    if (!checks[c].keep) continue;
    candidates[c].extra_rows = std::move(checks[c].extra_rows);
    kept.push_back(std::move(candidates[c]));
  }
  return kept;
}

void RankCandidates(const VirtualSchemaGraph& vsg,
                    std::vector<CandidateQuery>* candidates) {
  auto score = [&vsg](const CandidateQuery& c) {
    size_t depth = 0;
    double log_card = 0;
    for (const Interpretation& in : c.interpretations) {
      depth += in.path->predicates.size();
      size_t members = vsg.node(in.path->target_node).members.size();
      log_card += std::log(static_cast<double>(std::max<size_t>(1, members)));
    }
    return std::make_pair(depth, log_card);
  };
  std::stable_sort(candidates->begin(), candidates->end(),
                   [&](const CandidateQuery& a, const CandidateQuery& b) {
                     return score(a) < score(b);
                   });
}

}  // namespace re2xolap::core
