#ifndef RE2XOLAP_CORE_REOLAP_H_
#define RE2XOLAP_CORE_REOLAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/virtual_schema_graph.h"
#include "rdf/text_index.h"
#include "rdf/triple_store.h"
#include "sparql/ast.h"
#include "util/exec_guard.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace re2xolap::engine {
class QueryEngine;
}  // namespace re2xolap::engine

namespace re2xolap::core {

/// One interpretation of an example value: a concrete dimension member plus
/// the root-to-level path that reaches the member's level (the path's first
/// predicate identifies the dimension). Paper: the ⟨d, δ⟩ pairs collected
/// in Algorithm 1, lines 2–5.
struct Interpretation {
  rdf::TermId member = rdf::kInvalidTermId;
  const LevelPath* path = nullptr;  // owned by the VirtualSchemaGraph
};

/// A reverse-engineered SPARQL OLAP query (Algorithm 1 output).
struct CandidateQuery {
  sparql::SelectQuery query;
  /// One interpretation per example value, aligned with the input order.
  /// For multi-tuple input this is the first tuple's row; the remaining
  /// rows are in `extra_rows`.
  std::vector<Interpretation> interpretations;
  /// Additional example rows (multi-tuple input), each aligned with the
  /// same level paths as `interpretations`.
  std::vector<std::vector<Interpretation>> extra_rows;
  /// Output column name of the group-by variable for each example value.
  std::vector<std::string> group_columns;
  /// Output column names of the aggregate columns (sum first, per measure).
  std::vector<std::string> measure_columns;
  /// Natural-language description (Section 5.1, "Presenting Query
  /// Interpretations").
  std::string description;
};

struct ReolapOptions {
  /// Cap on text-index hits considered per example value (0 = unlimited).
  size_t max_matches_per_value = 200;
  /// Cap on generated queries; combination enumeration stops beyond it.
  size_t max_queries = 256;
  /// When true, every combination is checked to return at least one
  /// observation (the paper's correctness guarantee).
  bool validate = true;
  /// Per-validation-probe timeout.
  uint64_t validation_timeout_millis = 10000;
  /// Aggregation functions emitted per measure; default all four as in the
  /// paper ("we will retrieve results for all aggregation functions").
  bool all_aggregates = true;
  /// When true, candidates are ordered by RankCandidates() before being
  /// returned (simpler + more focused interpretations first).
  bool rank_candidates = false;
  /// Threads applied to the per-value MATCHES() lookups and the LIMIT-1
  /// validation probes (the two store-touching phases). 0 = one thread
  /// per hardware core; 1 = serial. The candidate list, ordering, and
  /// ReolapStats counters are byte-identical for every thread count: the
  /// probes are fanned out in blocks and their verdicts consumed in
  /// serial candidate order.
  size_t num_threads = 0;
  /// Optional externally owned pool to run on (must have been built with
  /// at least `num_threads` threads to reach that parallelism). When
  /// null and the effective thread count exceeds 1, a pool local to the
  /// Synthesize call is created.
  util::ThreadPool* pool = nullptr;
  /// Overall wall-clock budget for one Synthesize/SynthesizeMulti call
  /// (0 = unlimited). Expiry degrades the call instead of erroring:
  /// the first validation block is always processed (min-progress), later
  /// blocks are skipped, per-probe timeouts are clamped to the remaining
  /// budget, and the partial candidate set comes back flagged with
  /// ReolapStats::truncated and degraded_reason.
  uint64_t overall_deadline_millis = 0;
  /// Optional externally owned guard (e.g. a session-wide deadline)
  /// enforcing the same graceful degradation; takes precedence over
  /// `overall_deadline_millis`. Non-owning; must outlive the call.
  const util::ExecGuard* guard = nullptr;
};

/// Counters reported by the Figure 7 benches. Counters are aggregated on
/// the synthesis thread only (worker threads report through per-index
/// slots), so they are race-free and identical for every `num_threads`.
struct ReolapStats {
  size_t interpretations_considered = 0;  // size of the cartesian space
  size_t combinations_checked = 0;
  size_t validated_ok = 0;
  size_t threads_used = 1;  // effective validation parallelism
  double match_millis = 0;
  double combine_millis = 0;
  double validate_millis = 0;
  /// Graceful-degradation flags: true when the overall deadline expired
  /// mid-synthesis and the candidate set is partial (but every returned
  /// candidate is fully validated); `degraded_reason` says why and where.
  bool truncated = false;
  std::string degraded_reason;
};

/// ReOLAP (paper Algorithm 1): reverse-engineers SPARQL OLAP queries from a
/// tuple of example attribute values (e.g. {"Germany", "2014"}). All
/// lookups after construction run against the in-memory virtual schema
/// graph and text index; the store is only touched for validation probes.
class Reolap {
 public:
  /// When `engine` is non-null, validation probes execute through it and
  /// share its plan/result caches with the rest of the session — repeated
  /// validation of an identical combination (e.g. across refinement
  /// rounds) becomes a cache hit instead of a store probe. A null engine
  /// keeps the direct sparql::Execute path (used by engine-free tests).
  Reolap(const rdf::TripleStore* store, const VirtualSchemaGraph* vsg,
         const rdf::TextIndex* text_index,
         engine::QueryEngine* engine = nullptr)
      : store_(store), vsg_(vsg), text_(text_index), engine_(engine) {}

  /// MATCHES(a_i) of Algorithm 1: all interpretations of one value.
  /// Supports mixed inputs (paper Section 5 footnote): a value of the
  /// form "<iri>" or "http(s)://..." is resolved directly as a dimension
  /// member IRI instead of going through the label index.
  std::vector<Interpretation> MatchValue(
      const std::string& value, const ReolapOptions& options = {}) const;

  /// Full synthesis: interpretations per value, combination (with distinct
  /// dimensions per combo), query construction and validation. Returns
  /// the candidate queries; an example value with no match yields an empty
  /// result (no query can cover the tuple).
  util::Result<std::vector<CandidateQuery>> Synthesize(
      const std::vector<std::string>& example_tuple,
      const ReolapOptions& options = {}, ReolapStats* stats = nullptr) const;

  /// General case: multiple example tuples of the same arity (the set T_E
  /// of Problem 1). A level-path combination is valid only when EVERY
  /// tuple maps onto it (per column) and every tuple validates against
  /// the store, so each example row is subsumed by the query's results.
  util::Result<std::vector<CandidateQuery>> SynthesizeMulti(
      const std::vector<std::vector<std::string>>& example_tuples,
      const ReolapOptions& options = {}, ReolapStats* stats = nullptr) const;

  /// GETQUERY of Algorithm 1: builds the SPARQL OLAP query for one
  /// combination of interpretations.
  CandidateQuery BuildQuery(const std::vector<Interpretation>& combo,
                            const ReolapOptions& options = {}) const;

  /// True when at least one observation jointly satisfies all
  /// interpretations (executed against the store with a LIMIT-1 probe).
  bool ValidateCombo(const std::vector<Interpretation>& combo,
                     uint64_t timeout_millis) const;

  const VirtualSchemaGraph& vsg() const { return *vsg_; }
  const rdf::TripleStore& store() const { return *store_; }

 private:

  const rdf::TripleStore* store_;
  const VirtualSchemaGraph* vsg_;
  const rdf::TextIndex* text_;
  engine::QueryEngine* engine_;
};

/// Ranks candidate queries in place (paper Section 8 lists ranking of
/// interpretations as future work; this implements a simple instance).
/// Preference order: shallower paths first (simpler interpretations),
/// then smaller estimated result cardinality (product of target-level
/// member counts) — focused views before monster cross-products.
void RankCandidates(const VirtualSchemaGraph& vsg,
                    std::vector<CandidateQuery>* candidates);

}  // namespace re2xolap::core

#endif  // RE2XOLAP_CORE_REOLAP_H_
