#include "core/qb4olap.h"

#include <map>
#include <string>

namespace re2xolap::core {

namespace {

constexpr char kRdfTypeIri[] =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
constexpr char kRdfsLabelIri[] =
    "http://www.w3.org/2000/01/rdf-schema#label";

std::string LevelIri(const std::string& dataset_iri, int node_id) {
  return dataset_iri + "/level/" + std::to_string(node_id);
}
std::string StepIri(const std::string& dataset_iri, size_t edge_index) {
  return dataset_iri + "/step/" + std::to_string(edge_index);
}

}  // namespace

util::Status ExportQb4OlapAnnotations(const rdf::TripleStore& data,
                                      const VirtualSchemaGraph& vsg,
                                      const std::string& dataset_iri,
                                      const std::string& observation_class_iri,
                                      rdf::TripleStore* out) {
  using rdf::Term;
  if (out == nullptr) {
    return util::Status::InvalidArgument("output store is null");
  }
  const Term type = Term::Iri(kRdfTypeIri);
  const Term label = Term::Iri(kRdfsLabelIri);
  const Term ds = Term::Iri(dataset_iri);

  out->Add(ds, type, Term::Iri(qb4o::kDsdClass));
  out->Add(ds, Term::Iri(qb4o::kObservationClass),
           Term::Iri(observation_class_iri));
  for (rdf::TermId m : vsg.measure_predicates()) {
    out->Add(ds, Term::Iri(qb4o::kMeasure), data.term(m));
  }
  for (rdf::TermId a : vsg.observation_attributes()) {
    out->Add(ds, Term::Iri(qb4o::kObservationAttribute), data.term(a));
  }

  // Levels (including the root, which is marked via kRootLevel).
  for (const VsgNode& node : vsg.nodes()) {
    const Term lvl = Term::Iri(LevelIri(dataset_iri, node.id));
    out->Add(lvl, type, Term::Iri(qb4o::kLevelClass));
    out->Add(lvl, label, Term::StringLiteral(node.name));
    if (node.is_root) {
      out->Add(ds, Term::Iri(qb4o::kRootLevel), lvl);
    }
    for (rdf::TermId member : node.members) {
      out->Add(data.term(member), Term::Iri(qb4o::kMemberOf), lvl);
    }
    for (rdf::TermId attr : node.attribute_predicates) {
      out->Add(lvl, Term::Iri(qb4o::kHasAttribute), data.term(attr));
    }
  }

  // Hierarchy steps (root edges are the dimensions).
  const std::vector<VsgEdge>& edges = vsg.edges();
  for (size_t i = 0; i < edges.size(); ++i) {
    const Term step = Term::Iri(StepIri(dataset_iri, i));
    out->Add(step, type, Term::Iri(qb4o::kHierarchyStepClass));
    out->Add(step, Term::Iri(qb4o::kChildLevel),
             Term::Iri(LevelIri(dataset_iri, edges[i].from)));
    out->Add(step, Term::Iri(qb4o::kParentLevel),
             Term::Iri(LevelIri(dataset_iri, edges[i].to)));
    out->Add(step, Term::Iri(qb4o::kRollupProperty),
             data.term(edges[i].predicate));
  }
  return util::Status::OK();
}

util::Result<std::string> AnnotatedObservationClass(
    const rdf::TripleStore& store, const std::string& dataset_iri) {
  rdf::TermId ds = store.Lookup(rdf::Term::Iri(dataset_iri));
  rdf::TermId pred = store.Lookup(rdf::Term::Iri(qb4o::kObservationClass));
  if (ds == rdf::kInvalidTermId || pred == rdf::kInvalidTermId) {
    return util::Status::NotFound("no observation-class annotation for <" +
                                  dataset_iri + ">");
  }
  auto span = store.Match({ds, pred, rdf::kInvalidTermId});
  if (span.empty()) {
    return util::Status::NotFound("no observation-class annotation for <" +
                                  dataset_iri + ">");
  }
  return store.term(span.front().o).value;
}

util::Result<VirtualSchemaGraph> BuildFromQb4Olap(
    const rdf::TripleStore& store, const std::string& dataset_iri) {
  using rdf::Term;
  if (!store.frozen()) {
    return util::Status::InvalidArgument(
        "TripleStore must be frozen before importing annotations");
  }
  rdf::TermId ds = store.Lookup(Term::Iri(dataset_iri));
  rdf::TermId type = store.Lookup(Term::Iri(kRdfTypeIri));
  rdf::TermId dsd_class = store.Lookup(Term::Iri(qb4o::kDsdClass));
  if (ds == rdf::kInvalidTermId || dsd_class == rdf::kInvalidTermId ||
      !store.Exists({ds, type, dsd_class})) {
    return util::Status::NotFound("<" + dataset_iri +
                                  "> carries no QB4OLAP annotations");
  }
  auto lookup = [&](const char* iri) { return store.Lookup(Term::Iri(iri)); };
  rdf::TermId p_measure = lookup(qb4o::kMeasure);
  rdf::TermId p_obs_attr = lookup(qb4o::kObservationAttribute);
  rdf::TermId p_root = lookup(qb4o::kRootLevel);
  rdf::TermId p_member_of = lookup(qb4o::kMemberOf);
  rdf::TermId p_has_attr = lookup(qb4o::kHasAttribute);
  rdf::TermId p_child = lookup(qb4o::kChildLevel);
  rdf::TermId p_parent = lookup(qb4o::kParentLevel);
  rdf::TermId p_rollup = lookup(qb4o::kRollupProperty);
  rdf::TermId label = lookup(kRdfsLabelIri);
  rdf::TermId level_class = lookup(qb4o::kLevelClass);
  rdf::TermId step_class = lookup(qb4o::kHierarchyStepClass);

  // Root level IRI.
  auto root_span = store.Match({ds, p_root, rdf::kInvalidTermId});
  if (root_span.empty()) {
    return util::Status::ParseError("annotations lack a root level");
  }
  rdf::TermId root_level = root_span.front().o;

  // Collect level nodes of this dataset (IRI prefix match keeps levels of
  // other datasets in the same store apart).
  const std::string level_prefix = dataset_iri + "/level/";
  std::map<rdf::TermId, int> level_to_node;
  std::vector<VsgNode> nodes;
  {
    VsgNode root;
    root.id = 0;
    root.is_root = true;
    root.name = "Observation";
    nodes.push_back(std::move(root));
    level_to_node[root_level] = 0;
  }
  if (level_class != rdf::kInvalidTermId) {
    for (const rdf::EncodedTriple& t :
         store.Match({rdf::kInvalidTermId, type, level_class})) {
      if (t.s == root_level) continue;
      const std::string& iri = store.term(t.s).value;
      if (iri.rfind(level_prefix, 0) != 0) continue;
      VsgNode node;
      node.id = static_cast<int>(nodes.size());
      level_to_node[t.s] = node.id;
      // Level label.
      for (const rdf::EncodedTriple& lt :
           store.Match({t.s, label, rdf::kInvalidTermId})) {
        node.name = store.term(lt.o).value;
        break;
      }
      nodes.push_back(std::move(node));
    }
  }

  // Members and attributes per level.
  for (auto& [level_iri, node_id] : level_to_node) {
    if (node_id == 0) continue;
    if (p_member_of != rdf::kInvalidTermId) {
      for (const rdf::EncodedTriple& t :
           store.Match({rdf::kInvalidTermId, p_member_of, level_iri})) {
        nodes[node_id].members.push_back(t.s);
      }
    }
    if (p_has_attr != rdf::kInvalidTermId) {
      for (const rdf::EncodedTriple& t :
           store.Match({level_iri, p_has_attr, rdf::kInvalidTermId})) {
        nodes[node_id].attribute_predicates.push_back(t.o);
      }
    }
  }

  // Hierarchy steps -> edges.
  std::vector<VsgEdge> edges;
  if (step_class != rdf::kInvalidTermId) {
    const std::string step_prefix = dataset_iri + "/step/";
    for (const rdf::EncodedTriple& t :
         store.Match({rdf::kInvalidTermId, type, step_class})) {
      if (store.term(t.s).value.rfind(step_prefix, 0) != 0) continue;
      VsgEdge edge;
      auto read = [&](rdf::TermId pred, rdf::TermId* out_id) {
        auto span = store.Match({t.s, pred, rdf::kInvalidTermId});
        *out_id = span.empty() ? rdf::kInvalidTermId : span.front().o;
      };
      rdf::TermId child, parent, rollup;
      read(p_child, &child);
      read(p_parent, &parent);
      read(p_rollup, &rollup);
      auto cit = level_to_node.find(child);
      auto pit = level_to_node.find(parent);
      if (cit == level_to_node.end() || pit == level_to_node.end() ||
          rollup == rdf::kInvalidTermId) {
        return util::Status::ParseError("malformed hierarchy step " +
                                        store.term(t.s).value);
      }
      edge.from = cit->second;
      edge.to = pit->second;
      edge.predicate = rollup;
      edges.push_back(edge);
    }
  }

  // Measures and observation attributes.
  std::vector<rdf::TermId> measures, obs_attrs;
  if (p_measure != rdf::kInvalidTermId) {
    for (const rdf::EncodedTriple& t :
         store.Match({ds, p_measure, rdf::kInvalidTermId})) {
      measures.push_back(t.o);
    }
  }
  if (p_obs_attr != rdf::kInvalidTermId) {
    for (const rdf::EncodedTriple& t :
         store.Match({ds, p_obs_attr, rdf::kInvalidTermId})) {
      obs_attrs.push_back(t.o);
    }
  }

  return VirtualSchemaGraph::FromParts(std::move(nodes), std::move(edges),
                                       std::move(measures),
                                       std::move(obs_attrs));
}

}  // namespace re2xolap::core
