#ifndef RE2XOLAP_CORE_DESCRIBE_H_
#define RE2XOLAP_CORE_DESCRIBE_H_

#include <string>

#include "core/virtual_schema_graph.h"
#include "rdf/triple_store.h"

namespace re2xolap::core {

/// Natural-language presentation of synthesized queries (paper Section
/// 5.1, "Presenting Query Interpretations"): RDF keeps schema annotations
/// alongside the data, so names are taken from rdfs:label declarations on
/// predicates and IRIs when available, falling back to prettified IRI
/// local names ("countryDestination" -> "Country Destination") otherwise.

/// Display name of any term: its rdfs:label if one exists in the store,
/// otherwise the prettified local name (IRIs) or lexical form (literals).
std::string DisplayName(const rdf::TripleStore& store, rdf::TermId term);

/// Display name for a term given by IRI; falls back to prettifying the
/// IRI itself when it is not in the store.
std::string DisplayNameOfIri(const rdf::TripleStore& store,
                             const std::string& iri);

/// "Country Destination" or "Ref Period / Year": the labels of the
/// predicates along a level path, joined with " / ".
std::string DescribePath(const rdf::TripleStore& store,
                         const LevelPath& path);

}  // namespace re2xolap::core

#endif  // RE2XOLAP_CORE_DESCRIBE_H_
