#ifndef RE2XOLAP_QB_GENERATOR_H_
#define RE2XOLAP_QB_GENERATOR_H_

#include <memory>
#include <string>

#include "qb/cube_schema.h"
#include "rdf/triple_store.h"
#include "util/result.h"

namespace re2xolap::qb {

/// Well-known vocabulary IRIs emitted by the generator.
inline constexpr char kRdfType[] =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr char kHasLabel[] =
    "http://www.w3.org/2000/01/rdf-schema#label";

/// A generated statistical KG: the frozen triple store plus the ground-truth
/// spec it was generated from (used by tests and by benches that need to
/// sample members).
struct GeneratedDataset {
  std::unique_ptr<rdf::TripleStore> store;
  DatasetSpec spec;

  /// IRI of member `index` of `level`.
  std::string MemberIri(const std::string& level, size_t index) const {
    return spec.iri_base + level + "/" + std::to_string(index);
  }
};

/// Materializes `spec` into a frozen TripleStore:
///  - one IRI node per level member, with a hasLabel string literal;
///  - hierarchy edges per branch step (deterministic parents);
///  - `spec.observations` observation nodes typed `observation_class`, each
///    linked to one (skewed-random) base member per dimension, one numeric
///    literal per measure, and the literal observation attributes.
/// Fails on specs referencing undefined levels. When `freeze_pool` is
/// non-null the final TripleStore::Freeze() sorts its index permutations
/// on that pool (same store bits, less wall time).
util::Result<GeneratedDataset> Generate(
    DatasetSpec spec, util::ThreadPool* freeze_pool = nullptr);

}  // namespace re2xolap::qb

#endif  // RE2XOLAP_QB_GENERATOR_H_
