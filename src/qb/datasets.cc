#include "qb/datasets.h"

#include <array>
#include <string>
#include <vector>

namespace re2xolap::qb {

namespace {

/// First 33 entries are the European destination countries; the remainder
/// are grouped by continent for range-based continent mapping.
const std::vector<std::string>& WorldCountries() {
  static const std::vector<std::string>* kCountries =
      new std::vector<std::string>{
          // Europe (0..32) — also the Destination country list.
          "Germany", "France", "Italy", "Spain", "Sweden", "Austria",
          "Belgium", "Netherlands", "Denmark", "Finland", "Norway", "Poland",
          "Czechia", "Hungary", "Greece", "Portugal", "Ireland", "Romania",
          "Bulgaria", "Croatia", "Slovenia", "Slovakia", "Estonia", "Latvia",
          "Lithuania", "Luxembourg", "Malta", "Cyprus", "Iceland",
          "Switzerland", "United Kingdom", "Serbia", "Turkey",
          // Asia (33..72)
          "Syria", "Afghanistan", "Iraq", "Iran", "Pakistan", "India",
          "China", "Bangladesh", "Sri Lanka", "Nepal", "Vietnam", "Thailand",
          "Myanmar", "Cambodia", "Laos", "Mongolia", "Kazakhstan",
          "Uzbekistan", "Tajikistan", "Kyrgyzstan", "Turkmenistan", "Georgia",
          "Armenia", "Azerbaijan", "Lebanon", "Jordan", "Israel",
          "Saudi Arabia", "Yemen", "Oman", "Kuwait", "Qatar", "Bahrain",
          "Indonesia", "Malaysia", "Philippines", "Japan", "South Korea",
          "North Korea", "Singapore",
          // Africa (73..107)
          "Nigeria", "Eritrea", "Somalia", "Ethiopia", "Sudan",
          "South Sudan", "Egypt", "Libya", "Tunisia", "Algeria", "Morocco",
          "Mali", "Niger", "Chad", "Senegal", "Gambia", "Guinea",
          "Ivory Coast", "Ghana", "Cameroon", "Congo", "DR Congo", "Angola",
          "Zambia", "Zimbabwe", "Mozambique", "Malawi", "Tanzania", "Kenya",
          "Uganda", "Rwanda", "Burundi", "South Africa", "Namibia",
          "Botswana",
          // North America (108..117)
          "United States", "Canada", "Mexico", "Guatemala", "Honduras",
          "El Salvador", "Nicaragua", "Costa Rica", "Panama", "Cuba",
          // South America (118..129)
          "Colombia", "Venezuela", "Ecuador", "Peru", "Bolivia", "Brazil",
          "Paraguay", "Uruguay", "Argentina", "Chile", "Guyana", "Suriname",
          // Oceania (130..135)
          "Australia", "New Zealand", "Fiji", "Papua New Guinea", "Samoa",
          "Tonga",
          // Stateless/unknown groups to reach 140 (mapped to "Other").
          "Stateless", "Unknown Origin", "Kosovo", "Palestine",
      };
  return *kCountries;
}

/// Continent index (into the 7-continent list) per origin-country index.
size_t OriginContinentOf(size_t country) {
  if (country <= 32) return 0;    // Europe
  if (country <= 72) return 1;    // Asia
  if (country <= 107) return 2;   // Africa
  if (country <= 117) return 3;   // North America
  if (country <= 129) return 4;   // South America
  if (country <= 135) return 5;   // Oceania
  return 6;                       // Other / unknown
}

std::vector<std::string> PadLabels(std::vector<std::string> base, size_t n,
                                   const std::string& prefix) {
  base.reserve(n);
  for (size_t i = base.size(); i < n; ++i) {
    base.push_back(prefix + " " + std::to_string(i));
  }
  base.resize(n);
  return base;
}

std::vector<std::string> NumberedLabels(size_t n, const std::string& prefix) {
  return PadLabels({}, n, prefix);
}

const std::array<const char*, 12> kMonthNames = {
    "January", "February", "March", "April", "May", "June", "July",
    "August", "September", "October", "November", "December"};

}  // namespace

DatasetSpec EurostatSpec(uint64_t observations, uint64_t seed) {
  DatasetSpec spec;
  spec.name = "Eurostat";
  spec.iri_base = "http://example.org/eurostat/";
  spec.observation_class = "http://purl.org/linked-data/cube#Observation";
  spec.measure_predicates = {"numApplicants"};
  spec.observations = observations;
  spec.seed = seed;

  // --- levels (member totals add up to the paper's 373) ---------------------
  LevelSpec age{"age",
                {"0-13", "14-17", "18-34", "35-49", "50-64", "65-79", "80+",
                 "Unknown Age"}};
  LevelSpec month{"month", {}};
  for (int y = 2010; y <= 2019; ++y) {
    for (int m = 0; m < 12; ++m) {
      month.labels.push_back(std::string(kMonthNames[m]) + " " +
                             std::to_string(y));
    }
  }
  LevelSpec quarter{"quarter", {}};
  for (int y = 2010; y <= 2019; ++y) {
    for (int q = 1; q <= 4; ++q) {
      quarter.labels.push_back("Q" + std::to_string(q) + " " +
                               std::to_string(y));
    }
  }
  LevelSpec year{"year", {}};
  for (int y = 2010; y <= 2019; ++y) year.labels.push_back(std::to_string(y));

  LevelSpec country_origin{"countryOrigin", WorldCountries()};  // 140
  LevelSpec continent_origin{
      "continentOrigin",
      {"Europe", "Asia", "Africa", "North America", "South America",
       "Oceania", "Other"}};
  LevelSpec income_group{"incomeGroup",
                         {"Low income", "Lower-middle income",
                          "Upper-middle income", "High income",
                          "Unclassified income"}};
  LevelSpec country_dest{"countryDest", {}};
  country_dest.labels.assign(WorldCountries().begin(),
                             WorldCountries().begin() + 33);
  LevelSpec continent_dest{"continentDest", {"Europe", "Asia"}};
  LevelSpec econ_region{"econRegion",
                        {"European Union", "EFTA", "Schengen Area",
                         "Eurozone", "Nordic Countries", "Baltic States",
                         "Balkans", "Visegrad Group"}};

  spec.levels = {age,           month,           quarter,
                 year,          country_origin,  continent_origin,
                 income_group,  country_dest,    continent_dest,
                 econ_region};

  // --- dimensions ------------------------------------------------------------
  DimensionSpec d_age{"Age", "age", "age", {}};

  DimensionSpec d_period{"RefPeriod", "refPeriod", "month", {}};
  BranchSpec to_year;
  to_year.steps.push_back(HierarchyStep{
      "inYear", "month", "year", [](size_t m) { return m / 12; }, 1});
  BranchSpec to_quarter;
  to_quarter.steps.push_back(HierarchyStep{
      "inQuarter", "month", "quarter", [](size_t m) { return m / 3; }, 1});
  d_period.branches = {to_year, to_quarter};

  DimensionSpec d_origin{"Origin", "countryOrigin", "countryOrigin", {}};
  BranchSpec o_continent;
  o_continent.steps.push_back(HierarchyStep{"inContinent", "countryOrigin",
                                            "continentOrigin",
                                            OriginContinentOf, 1});
  BranchSpec o_income;
  o_income.steps.push_back(
      HierarchyStep{"inIncomeGroup", "countryOrigin", "incomeGroup", nullptr,
                    1});
  d_origin.branches = {o_continent, o_income};

  DimensionSpec d_dest{"Destination", "countryDestination", "countryDest", {}};
  BranchSpec dst_continent;
  dst_continent.steps.push_back(HierarchyStep{
      "destInContinent", "countryDest", "continentDest",
      // Turkey (index 32) is the only partially-Asian destination.
      [](size_t c) { return c == 32 ? size_t{1} : size_t{0}; }, 1});
  BranchSpec dst_region;
  dst_region.steps.push_back(HierarchyStep{"inEconRegion", "countryDest",
                                           "econRegion", nullptr, 1});
  d_dest.branches = {dst_continent, dst_region};

  spec.dimensions = {d_age, d_period, d_origin, d_dest};

  spec.predicate_labels = {
      {"age", "Age Range"},
      {"refPeriod", "Reference Period"},
      {"inYear", "Year"},
      {"inQuarter", "Quarter"},
      {"countryOrigin", "Country of Origin"},
      {"inContinent", "Continent"},
      {"inIncomeGroup", "Income Group"},
      {"countryDestination", "Country of Destination"},
      {"destInContinent", "Continent of Destination"},
      {"inEconRegion", "Economic Region"},
      {"numApplicants", "Number of Applicants"},
  };

  // Extra literal attributes per observation — this is why Eurostat has
  // ~11 triples/observation in the paper (richer than Production).
  spec.observation_attrs = {
      {"sex", {"Male", "Female", "Total"}},
      {"unit", {"Persons"}},
      {"applicationType", {"First-time applicant", "Repeat applicant"}},
      {"obsStatus", {"normal", "provisional", "estimated"}},
      {"source", {"Eurostat migr_asyappctzm"}},
  };
  return spec;
}

DatasetSpec ProductionSpec(uint64_t observations, uint64_t seed) {
  DatasetSpec spec;
  spec.name = "Production";
  spec.iri_base = "http://example.org/production/";
  spec.observation_class = "http://example.org/production/Observation";
  spec.measure_predicates = {"outputValue"};
  spec.observations = observations;
  spec.seed = seed;

  std::vector<std::string> countries(WorldCountries().begin(),
                                     WorldCountries().begin() + 43);
  LevelSpec country{"country", countries};
  LevelSpec region{"region",
                   {"Western Europe", "Eastern Europe", "East Asia",
                    "South Asia", "Middle East", "Africa Region",
                    "Americas Region", "Oceania Region"}};
  LevelSpec industry{
      "industry",
      PadLabels({"Agriculture", "Mining", "Food Processing", "Textiles",
                 "Chemicals", "Steel Production", "Machinery",
                 "Electronics Manufacturing", "Automotive",
                 "Electricity Production", "Construction", "Retail Trade",
                 "Transportation", "Telecommunications", "Finance",
                 "Education Services", "Health Services"},
                2100, "Industry")};
  LevelSpec sector{"sector", PadLabels({"Primary Sector", "Secondary Sector",
                                        "Tertiary Sector"},
                                       50, "Sector")};
  // Partner country shares the country label set — the paper points at
  // members shared across levels (e.g. country of destination and origin)
  // as the driver of interpretation counts.
  LevelSpec partner{"partnerCountry", countries};
  LevelSpec product{
      "product",
      PadLabels({"Wheat", "Crude Oil", "Natural Gas", "Steel", "Cement",
                 "Electricity", "Plastics", "Semiconductors", "Vehicles",
                 "Pharmaceuticals", "Clothing", "Furniture"},
                4048, "Product")};
  LevelSpec product_group{"productGroup",
                          PadLabels({"Raw Materials", "Energy Products",
                                     "Intermediate Goods", "Capital Goods",
                                     "Consumer Goods", "Services"},
                                    100, "Product Group")};
  LevelSpec prod_year{"prodYear", {}};
  for (int y = 1990; y <= 2019; ++y) {
    prod_year.labels.push_back(std::to_string(y));
  }
  LevelSpec flow{"flowType",
                 {"Domestic Output", "Imports", "Exports", "Household Use",
                  "Government Use", "Capital Formation", "Intermediate Use",
                  "Inventory Change", "Re-exports", "Losses",
                  "Emissions Flow", "Waste Flow"}};
  LevelSpec unit{"unit",
                 {"Million EUR", "Million USD", "Tonnes", "Kilotonnes",
                  "Terajoules", "Megawatt Hours", "Cubic Metres", "Items",
                  "Hours Worked", "Full-time Equivalents"}};
  spec.levels = {country, region,        industry,  sector, product,
                 partner, product_group, prod_year, flow,   unit};

  DimensionSpec d_country{"Country", "forCountry", "country", {}};
  BranchSpec c_region;
  c_region.steps.push_back(
      HierarchyStep{"inRegion", "country", "region", nullptr, 1});
  d_country.branches = {c_region};

  DimensionSpec d_industry{"Industry", "forIndustry", "industry", {}};
  BranchSpec i_sector;
  i_sector.steps.push_back(
      HierarchyStep{"inSector", "industry", "sector", nullptr, 1});
  d_industry.branches = {i_sector};

  DimensionSpec d_product{"Product", "forProduct", "product", {}};
  BranchSpec p_group;
  p_group.steps.push_back(
      HierarchyStep{"inProductGroup", "product", "productGroup", nullptr, 1});
  d_product.branches = {p_group};

  DimensionSpec d_partner{"PartnerCountry", "partnerCountry",
                          "partnerCountry", {}};
  DimensionSpec d_year{"Year", "forYear", "prodYear", {}};
  DimensionSpec d_flow{"FlowType", "flowType", "flowType", {}};
  DimensionSpec d_unit{"Unit", "inUnit", "unit", {}};

  spec.dimensions = {d_country, d_industry, d_product, d_partner,
                     d_year,    d_flow,     d_unit};
  return spec;
}

DatasetSpec DbpediaSpec(uint64_t observations, uint64_t seed) {
  DatasetSpec spec;
  spec.name = "DBpedia";
  spec.iri_base = "http://example.org/dbpedia/";
  spec.observation_class = "http://example.org/dbpedia/CreativeWork";
  spec.measure_predicates = {"popularity"};
  spec.observations = observations;
  spec.seed = seed;

  std::vector<std::string> genre_names = PadLabels(
      {"Rock", "Pop", "Jazz", "Blues", "Classical", "Electronic", "Hip Hop",
       "Folk", "Country", "Reggae", "Soul", "Funk", "Metal", "Punk",
       "Disco", "House", "Techno", "Ambient", "Indie Rock", "Hard Rock",
       "Progressive Rock", "Psychedelic Rock", "Alternative Rock",
       "Rhythm and Blues", "Gospel", "Latin", "Salsa", "Flamenco", "Opera",
       "Baroque", "Romantic", "Swing", "Bebop", "Free Jazz", "Grunge",
       "Ska", "Dub", "Trance", "Drum and Bass", "Lo-fi"},
      900, "Genre");

  std::vector<std::string> countries120(WorldCountries().begin(),
                                        WorldCountries().begin() + 120);

  LevelSpec genre{"genre", genre_names};
  LevelSpec parent_genre{"parentGenre", {}};
  parent_genre.labels =
      PadLabels({"Popular Music", "Art Music", "Traditional Music",
                 "Electronic Music", "Vocal Music"},
                150, "Parent Genre");
  LevelSpec top_genre{"topGenre", NumberedLabels(20, "Top Genre")};
  LevelSpec era{"era", NumberedLabels(10, "Musical Era")};
  LevelSpec genre_country{"genreCountry", countries120};

  // Artist member count is derived so that total members equal the paper's
  // 87160 (see sum below).
  LevelSpec artist_country{"artistCountry", countries120};
  LevelSpec artist_continent{"artistContinent",
                             {"Europe", "Asia", "Africa", "North America",
                              "South America", "Oceania", "Other"}};
  LevelSpec decade{"activeDecade", {}};
  for (int d = 1900; d <= 2010; d += 10) {
    decade.labels.push_back(std::to_string(d) + "s");
  }
  LevelSpec artist_genre{"artistGenre", genre_names};  // shared label set
  LevelSpec artist_era{"artistEra", NumberedLabels(10, "Artist Era")};

  LevelSpec record_label{"recordLabel", NumberedLabels(15000, "Label")};
  LevelSpec label_country{"labelCountry", countries120};
  LevelSpec label_continent{"labelContinent",
                            {"Europe", "Asia", "Africa", "North America",
                             "South America", "Oceania", "Other"}};
  LevelSpec label_genre{"labelGenre", genre_names};  // shared label set
  LevelSpec label_decade{"labelDecade", decade.labels};

  LevelSpec instrument{
      "instrument",
      PadLabels({"Guitar", "Electric Guitar", "Bass Guitar", "Piano",
                 "Keyboard", "Drums", "Violin", "Cello", "Double Bass",
                 "Trumpet", "Saxophone", "Trombone", "Clarinet", "Flute",
                 "Harmonica", "Banjo", "Mandolin", "Accordion", "Organ",
                 "Synthesizer", "Turntables", "Vocals", "Harp", "Oboe"},
                300, "Instrument")};
  LevelSpec instr_family{"instrumentFamily",
                         {"Strings", "Woodwind", "Brass", "Percussion",
                          "Keyboard Family", "Electronic Family", "Voice",
                          "Plucked Strings", "Bowed Strings", "Free Reed",
                          "Struck Strings", "Other Family"}};
  LevelSpec instr_class{"instrumentClass",
                        {"Acoustic", "Electric", "Electronic", "Hybrid"}};
  LevelSpec instr_origin{"instrumentOrigin", NumberedLabels(30, "Origin Region")};

  LevelSpec director{"director", NumberedLabels(8000, "Director")};
  LevelSpec dir_country{"directorCountry", countries120};
  LevelSpec dir_continent{"directorContinent",
                          {"Europe", "Asia", "Africa", "North America",
                           "South America", "Oceania", "Other"}};
  LevelSpec dir_decade{"directorDecade", decade.labels};

  // Sum of all fixed levels; artists make up the remainder of 87160.
  size_t fixed = genre.labels.size() + parent_genre.labels.size() +
                 top_genre.labels.size() + era.labels.size() +
                 genre_country.labels.size() + artist_country.labels.size() +
                 artist_continent.labels.size() + decade.labels.size() +
                 artist_genre.labels.size() + artist_era.labels.size() +
                 record_label.labels.size() + label_country.labels.size() +
                 label_continent.labels.size() + label_genre.labels.size() +
                 label_decade.labels.size() + instrument.labels.size() +
                 instr_family.labels.size() + instr_class.labels.size() +
                 instr_origin.labels.size() + director.labels.size() +
                 dir_country.labels.size() + dir_continent.labels.size() +
                 dir_decade.labels.size();
  size_t artist_count = 87160 > fixed ? 87160 - fixed : 1000;
  LevelSpec artist{"artist", NumberedLabels(artist_count, "Artist")};

  spec.levels = {genre,          parent_genre,   top_genre,    era,
                 genre_country,  artist,         artist_country,
                 artist_continent, decade,       artist_genre, artist_era,
                 record_label,   label_country,  label_continent,
                 label_genre,    label_decade,   instrument,
                 instr_family,   instr_class,    instr_origin,
                 director,       dir_country,    dir_continent, dir_decade};

  auto continent_of_120 = [](size_t c) { return OriginContinentOf(c); };

  DimensionSpec d_genre{"Genre", "hasGenre", "genre", {}};
  {
    BranchSpec parents;  // M-to-N: each genre has 2 parent genres
    parents.steps.push_back(
        HierarchyStep{"subGenreOf", "genre", "parentGenre", nullptr, 2});
    parents.steps.push_back(
        HierarchyStep{"inTopGenre", "parentGenre", "topGenre", nullptr, 2});
    BranchSpec eras;
    eras.steps.push_back(HierarchyStep{"ofEra", "genre", "era", nullptr, 1});
    BranchSpec gcountry;
    gcountry.steps.push_back(
        HierarchyStep{"originatedIn", "genre", "genreCountry", nullptr, 1});
    d_genre.branches = {parents, eras, gcountry};
  }

  DimensionSpec d_artist{"Artist", "byArtist", "artist", {}};
  {
    BranchSpec acountry;
    acountry.steps.push_back(HierarchyStep{"artistFromCountry", "artist",
                                           "artistCountry", nullptr, 1});
    acountry.steps.push_back(HierarchyStep{"artistCountryInContinent",
                                           "artistCountry", "artistContinent",
                                           continent_of_120, 1});
    BranchSpec adecade;
    adecade.steps.push_back(
        HierarchyStep{"activeInDecade", "artist", "activeDecade", nullptr, 2});
    BranchSpec agenre;  // M-to-N: artists play multiple genres
    agenre.steps.push_back(
        HierarchyStep{"artistGenre", "artist", "artistGenre", nullptr, 3});
    BranchSpec aera;
    aera.steps.push_back(
        HierarchyStep{"artistOfEra", "artist", "artistEra", nullptr, 1});
    d_artist.branches = {acountry, adecade, agenre, aera};
  }

  DimensionSpec d_label{"RecordLabel", "releasedBy", "recordLabel", {}};
  {
    BranchSpec lcountry;
    lcountry.steps.push_back(HierarchyStep{"labelFromCountry", "recordLabel",
                                           "labelCountry", nullptr, 1});
    lcountry.steps.push_back(HierarchyStep{"labelCountryInContinent",
                                           "labelCountry", "labelContinent",
                                           continent_of_120, 1});
    BranchSpec lgenre;  // M-to-N
    lgenre.steps.push_back(
        HierarchyStep{"labelGenre", "recordLabel", "labelGenre", nullptr, 3});
    BranchSpec ldecade;
    ldecade.steps.push_back(HierarchyStep{"labelFoundedDecade", "recordLabel",
                                          "labelDecade", nullptr, 1});
    d_label.branches = {lcountry, lgenre, ldecade};
  }

  DimensionSpec d_instrument{"Instrument", "usesInstrument", "instrument", {}};
  {
    BranchSpec family;
    family.steps.push_back(HierarchyStep{"inFamily", "instrument",
                                         "instrumentFamily", nullptr, 1});
    family.steps.push_back(HierarchyStep{"familyInClass", "instrumentFamily",
                                         "instrumentClass", nullptr, 1});
    BranchSpec origin;
    origin.steps.push_back(HierarchyStep{"instrumentFromRegion", "instrument",
                                         "instrumentOrigin", nullptr, 1});
    d_instrument.branches = {family, origin};
  }

  DimensionSpec d_director{"Director", "directedBy", "director", {}};
  {
    BranchSpec dcountry;
    dcountry.steps.push_back(HierarchyStep{"directorFromCountry", "director",
                                           "directorCountry", nullptr, 1});
    dcountry.steps.push_back(HierarchyStep{"directorCountryInContinent",
                                           "directorCountry",
                                           "directorContinent",
                                           continent_of_120, 1});
    BranchSpec ddecade;
    ddecade.steps.push_back(HierarchyStep{"directorActiveDecade", "director",
                                          "directorDecade", nullptr, 1});
    d_director.branches = {dcountry, ddecade};
  }

  spec.dimensions = {d_genre, d_artist, d_label, d_instrument, d_director};
  return spec;
}

}  // namespace re2xolap::qb
