#ifndef RE2XOLAP_QB_CUBE_SCHEMA_H_
#define RE2XOLAP_QB_CUBE_SCHEMA_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace re2xolap::qb {

/// Ground-truth description of one hierarchy level of a generated dataset.
/// Member IRIs are `<iri_base><level-name>/<index>`; each member carries a
/// `hasLabel` string attribute drawn from `labels`.
struct LevelSpec {
  std::string name;
  std::vector<std::string> labels;  // one per member

  size_t member_count() const { return labels.size(); }
};

/// One step of a hierarchy branch: a predicate linking members of
/// `from_level` to members of `to_level`. `parent_of(i)` maps a member
/// index of from_level to a member index of to_level; when null, a
/// deterministic hash mapping is used. `parents_per_member > 1` creates
/// M-to-N steps (each member links to that many distinct parents) — the
/// DBpedia-style worst case in the paper.
struct HierarchyStep {
  std::string predicate;
  std::string from_level;
  std::string to_level;
  std::function<size_t(size_t)> parent_of;  // optional
  size_t parents_per_member = 1;
};

/// A branch is a chain of steps rooted at the dimension's base level
/// (e.g. Country -> Continent, or Month -> Quarter -> Year).
struct BranchSpec {
  std::vector<HierarchyStep> steps;
};

/// A dimension: observations link to members of `base_level` through
/// `predicate`; zero or more hierarchy branches refine the base level.
struct DimensionSpec {
  std::string name;
  std::string predicate;  // observation -> base member
  std::string base_level;
  std::vector<BranchSpec> branches;
};

/// A literal attribute attached to every observation (makes observations
/// "richer", like Eurostat's extra attributes in the paper).
struct ObservationAttrSpec {
  std::string predicate;
  std::vector<std::string> values;  // picked round-robin/skewed
};

/// Full declarative spec of a synthetic statistical KG.
struct DatasetSpec {
  std::string name;
  std::string iri_base;           // e.g. "http://example.org/eurostat/"
  std::string observation_class;  // IRI of the qb:Observation-like class
  std::vector<std::string> measure_predicates;
  std::vector<LevelSpec> levels;
  std::vector<DimensionSpec> dimensions;
  std::vector<ObservationAttrSpec> observation_attrs;
  /// Human-readable labels attached (rdfs:label) to predicate IRIs, as
  /// real statistical KGs carry ("Country of Destination"); keyed by the
  /// predicate's local name. The description templating prefers these.
  std::vector<std::pair<std::string, std::string>> predicate_labels;
  uint64_t observations = 10000;
  uint64_t seed = 42;

  const LevelSpec* FindLevel(const std::string& name) const {
    for (const LevelSpec& l : levels) {
      if (l.name == name) return &l;
    }
    return nullptr;
  }

  /// Aggregate statistics in the shape of the paper's Table 3.
  size_t dimension_count() const { return dimensions.size(); }
  size_t measure_count() const { return measure_predicates.size(); }
  size_t hierarchy_count() const;
  size_t level_count() const { return levels.size(); }
  size_t total_members() const;
};

}  // namespace re2xolap::qb

#endif  // RE2XOLAP_QB_CUBE_SCHEMA_H_
