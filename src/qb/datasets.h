#ifndef RE2XOLAP_QB_DATASETS_H_
#define RE2XOLAP_QB_DATASETS_H_

#include <cstdint>

#include "qb/cube_schema.h"

namespace re2xolap::qb {

/// The three dataset specs mirroring the paper's Table 3 (Section 7.1).
/// Real dumps are not available offline, so these synthetic specs reproduce
/// the published schema-shape statistics (|D|, |M|, |H|, |L|, |N_D|), while
/// the observation count is a parameter (the paper's claim — and our
/// benches' — is that ReOLAP cost is independent of it).

/// Eurostat asylum-application cube: 4 dimensions (Age, RefPeriod, Origin,
/// Destination), deep Month->Quarter/Year hierarchies, 373 dimension
/// members, rich per-observation literal attributes (incl. Sex), measure
/// numApplicants. Paper reference: ~15M observations, 160M triples.
DatasetSpec EurostatSpec(uint64_t observations, uint64_t seed = 42);

/// Production macro-economic cube: 7 dimensions (country, industry,
/// product, year, flow type, unit, scenario), shallow hierarchies, 6444
/// members. Paper reference: ~15M observations, 90M triples.
DatasetSpec ProductionSpec(uint64_t observations, uint64_t seed = 43);

/// DBpedia creative-work view: 5 dimensions (genre, artist, label,
/// instrument, director), many deep hierarchies with M-to-N steps and
/// label sets shared across dimensions (genre of works vs. of artists vs.
/// of labels) — the paper's worst case. ~87160 members. Paper reference:
/// 541k observations, 20M triples.
DatasetSpec DbpediaSpec(uint64_t observations, uint64_t seed = 44);

}  // namespace re2xolap::qb

#endif  // RE2XOLAP_QB_DATASETS_H_
