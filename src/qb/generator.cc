#include "qb/generator.h"

#include <set>
#include <unordered_map>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace re2xolap::qb {

size_t DatasetSpec::hierarchy_count() const {
  size_t n = 0;
  for (const DimensionSpec& d : dimensions) {
    // A dimension with no branch still has one (trivial) hierarchy made of
    // its base level only.
    n += d.branches.empty() ? 1 : d.branches.size();
  }
  return n;
}

size_t DatasetSpec::total_members() const {
  std::set<const LevelSpec*> used;
  for (const DimensionSpec& d : dimensions) {
    const LevelSpec* base = FindLevel(d.base_level);
    if (base) used.insert(base);
    for (const BranchSpec& b : d.branches) {
      for (const HierarchyStep& s : b.steps) {
        const LevelSpec* to = FindLevel(s.to_level);
        if (to) used.insert(to);
      }
    }
  }
  size_t n = 0;
  for (const LevelSpec* l : used) n += l->member_count();
  return n;
}

namespace {

// Deterministic fallback parent mapping: spreads children roughly evenly
// over parents while avoiding trivial modulo clustering.
size_t HashedParent(size_t child, size_t parent_count, size_t salt) {
  uint64_t h = child * 2654435761ULL + salt * 0x9E3779B97F4A7C15ULL;
  h ^= h >> 29;
  return static_cast<size_t>(h % parent_count);
}

}  // namespace

util::Result<GeneratedDataset> Generate(DatasetSpec spec,
                                        util::ThreadPool* freeze_pool) {
  auto store = std::make_unique<rdf::TripleStore>();
  util::Rng rng(spec.seed);

  const rdf::Term label_pred = rdf::Term::Iri(kHasLabel);
  const rdf::Term type_pred = rdf::Term::Iri(kRdfType);
  const rdf::Term obs_class = rdf::Term::Iri(spec.observation_class);

  // --- interning helpers ----------------------------------------------------
  auto member_iri = [&](const std::string& level, size_t i) {
    return rdf::Term::Iri(spec.iri_base + level + "/" + std::to_string(i));
  };

  // Validate level references and index levels by name.
  std::unordered_map<std::string, const LevelSpec*> levels;
  for (const LevelSpec& l : spec.levels) {
    if (l.labels.empty()) {
      return util::Status::InvalidArgument("level '" + l.name +
                                           "' has no members");
    }
    if (!levels.emplace(l.name, &l).second) {
      return util::Status::InvalidArgument("duplicate level '" + l.name + "'");
    }
  }
  auto require_level = [&](const std::string& name)
      -> util::Result<const LevelSpec*> {
    auto it = levels.find(name);
    if (it == levels.end()) {
      return util::Status::InvalidArgument("unknown level '" + name + "'");
    }
    return it->second;
  };

  // --- emit level members and their labels ---------------------------------
  // Track which levels are actually reachable from some dimension, emitting
  // members once even when shared by several branches.
  std::set<std::string> emitted;
  auto emit_level = [&](const LevelSpec& level) {
    if (!emitted.insert(level.name).second) return;
    for (size_t i = 0; i < level.labels.size(); ++i) {
      store->Add(member_iri(level.name, i), label_pred,
                 rdf::Term::StringLiteral(level.labels[i]));
    }
  };

  // --- predicate labels --------------------------------------------------------
  for (const auto& [local, text] : spec.predicate_labels) {
    store->Add(rdf::Term::Iri(spec.iri_base + local), label_pred,
               rdf::Term::StringLiteral(text));
  }

  // --- hierarchy edges -------------------------------------------------------
  size_t salt = 1;
  for (const DimensionSpec& dim : spec.dimensions) {
    RE2X_ASSIGN_OR_RETURN(const LevelSpec* base, require_level(dim.base_level));
    emit_level(*base);
    for (const BranchSpec& branch : dim.branches) {
      std::string from = dim.base_level;
      for (const HierarchyStep& step : branch.steps) {
        if (step.from_level != from) {
          return util::Status::InvalidArgument(
              "branch step for dimension '" + dim.name + "' starts at '" +
              step.from_level + "' but previous level is '" + from + "'");
        }
        RE2X_ASSIGN_OR_RETURN(const LevelSpec* from_level,
                              require_level(step.from_level));
        RE2X_ASSIGN_OR_RETURN(const LevelSpec* to_level,
                              require_level(step.to_level));
        emit_level(*from_level);
        emit_level(*to_level);
        const rdf::Term pred = rdf::Term::Iri(spec.iri_base + step.predicate);
        const size_t parents = to_level->member_count();
        for (size_t i = 0; i < from_level->member_count(); ++i) {
          size_t fanout = std::min(step.parents_per_member, parents);
          for (size_t k = 0; k < fanout; ++k) {
            size_t parent;
            if (step.parent_of && k == 0) {
              parent = step.parent_of(i);
            } else if (k == 0 && i < parents) {
              // Coverage guarantee: the first |parents| children map onto
              // distinct parents, so every parent member is reachable.
              parent = i;
            } else {
              parent = HashedParent(i, parents, salt + k);
            }
            store->Add(member_iri(step.from_level, i), pred,
                       member_iri(step.to_level, parent % parents));
          }
        }
        from = step.to_level;
        ++salt;
      }
    }
  }

  // --- observations ----------------------------------------------------------
  for (uint64_t n = 0; n < spec.observations; ++n) {
    rdf::Term obs =
        rdf::Term::Iri(spec.iri_base + "obs/" + std::to_string(n));
    store->Add(obs, type_pred, obs_class);
    for (const DimensionSpec& dim : spec.dimensions) {
      const LevelSpec* base = levels.at(dim.base_level);
      // Coverage pass: the first |base| observations cycle through every
      // member so that each base member is referenced at least once (the
      // real KGs are dense in this sense); afterwards, skewed sampling.
      size_t member;
      if (n < base->member_count()) {
        member = static_cast<size_t>(n);
      } else {
        member = static_cast<size_t>(rng.Skewed(base->member_count()));
        if (member >= base->member_count()) member = base->member_count() - 1;
      }
      store->Add(obs, rdf::Term::Iri(spec.iri_base + dim.predicate),
                 member_iri(dim.base_level, member));
    }
    for (const std::string& mp : spec.measure_predicates) {
      // Skewed positive integer measure (long tail of large values).
      int64_t value = 1 + static_cast<int64_t>(rng.Skewed(10000));
      store->Add(obs, rdf::Term::Iri(spec.iri_base + mp),
                 rdf::Term::IntegerLiteral(value));
    }
    for (const ObservationAttrSpec& attr : spec.observation_attrs) {
      const std::string& v =
          attr.values[rng.Uniform(attr.values.size())];
      store->Add(obs, rdf::Term::Iri(spec.iri_base + attr.predicate),
                 rdf::Term::StringLiteral(v));
    }
  }

  store->Freeze(freeze_pool);
  GeneratedDataset out;
  out.store = std::move(store);
  out.spec = std::move(spec);
  return out;
}

}  // namespace re2xolap::qb
