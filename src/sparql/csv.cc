#include "sparql/csv.h"

#include <string>

namespace re2xolap::sparql {

namespace {

void WriteCell(const std::string& value, std::ostream& os) {
  bool needs_quotes = value.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) {
    os << value;
    return;
  }
  os << '"';
  for (char c : value) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

}  // namespace

void WriteCsv(const ResultTable& table, std::ostream& os) {
  const std::vector<std::string>& cols = table.columns();
  for (size_t c = 0; c < cols.size(); ++c) {
    if (c > 0) os << ',';
    WriteCell(cols[c], os);
  }
  os << '\n';
  for (const Row& row : table.rows()) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      WriteCell(table.CellToString(row[c]), os);
    }
    os << '\n';
  }
}

}  // namespace re2xolap::sparql
