#ifndef RE2XOLAP_SPARQL_BINDING_BLOCK_H_
#define RE2XOLAP_SPARQL_BINDING_BLOCK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rdf/dictionary.h"

namespace re2xolap::sparql {

/// A batch of partial bindings in columnar layout: one fixed-capacity
/// column of TermId per binding slot, stored contiguously column-major so
/// per-slot operations (broadcast-copy of a parent row, bind-column
/// writes, filter compaction) run as tight loops over adjacent memory.
/// Unbound slots hold rdf::kInvalidTermId, mirroring the volcano runner's
/// bindings vector. Rows are identified by index; deletion happens only
/// through Compact(), which keeps the surviving rows in order (the
/// vectorized pipeline preserves the volcano emission order exactly).
class BindingBlock {
 public:
  /// Default row capacity of pipeline blocks. 4096 rows × one uint32
  /// column per slot keeps a typical 4–8 slot query's working set inside
  /// L2 while amortizing per-batch overhead; measurably better than 1024
  /// on scan-heavy shapes (bench_ablation_executor).
  static constexpr size_t kDefaultCapacity = 4096;

  BindingBlock() = default;

  /// (Re)configures the block to `slot_count` columns of `capacity` rows
  /// and clears it. Safe to call repeatedly; reuses the allocation when
  /// the shape shrinks. `slot_count == 0` (degenerate queries) is valid:
  /// the block then tracks only a row count.
  void Reset(size_t slot_count, size_t capacity);

  size_t slot_count() const { return slot_count_; }
  size_t capacity() const { return capacity_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ >= capacity_; }

  rdf::TermId* column(size_t slot) { return data_.data() + slot * capacity_; }
  const rdf::TermId* column(size_t slot) const {
    return data_.data() + slot * capacity_;
  }

  rdf::TermId at(size_t row, size_t slot) const { return column(slot)[row]; }
  void set(size_t row, size_t slot, rdf::TermId v) { column(slot)[row] = v; }

  /// Reserves `n` more rows (caller fills the columns) and returns the
  /// index of the first one. `n` must fit in the remaining capacity.
  size_t GrowRows(size_t n) {
    size_t first = size_;
    size_ += n;
    return first;
  }

  /// Appends one row with every slot unbound (the pipeline's seed row).
  void AppendUnboundRow();

  /// Appends a row given as a plain slot vector (scratch rows from the
  /// OPTIONAL extension path).
  void AppendRow(const std::vector<rdf::TermId>& row);

  /// Copies row `row` into `out` (resized to slot_count).
  void ExtractRow(size_t row, std::vector<rdf::TermId>* out) const;

  /// Keeps only the rows in [from, size) whose index appears in
  /// `keep` (ascending, absolute indices), shifting them down to be
  /// contiguous after `from`. Rows before `from` are untouched.
  void Compact(size_t from, const std::vector<uint32_t>& keep);

  void Clear() { size_ = 0; }

 private:
  std::vector<rdf::TermId> data_;  // column-major: data_[slot*capacity + row]
  size_t slot_count_ = 0;
  size_t capacity_ = 0;
  size_t size_ = 0;
};

}  // namespace re2xolap::sparql

#endif  // RE2XOLAP_SPARQL_BINDING_BLOCK_H_
