#ifndef RE2XOLAP_SPARQL_EXECUTOR_H_
#define RE2XOLAP_SPARQL_EXECUTOR_H_

#include <cstdint>
#include <string_view>

#include "rdf/triple_store.h"
#include "sparql/ast.h"
#include "sparql/plan.h"
#include "sparql/result_table.h"
#include "util/result.h"

namespace re2xolap::sparql {

/// Execution knobs.
struct ExecOptions {
  /// 0 = no timeout. The paper's experiments run the endpoint with a
  /// 15-minute timeout; benches use much smaller values.
  uint64_t timeout_millis = 0;
  PlanOptions plan;
};

/// Lightweight run statistics, filled when a pointer is passed to Execute.
struct ExecStats {
  uint64_t intermediate_bindings = 0;  // bindings produced across all steps
  uint64_t triples_scanned = 0;        // index entries inspected
  double plan_millis = 0;
  double exec_millis = 0;
};

/// Plans and executes `query` against `store`. Returns the materialized
/// result table, or a Status on invalid queries / timeout.
util::Result<ResultTable> Execute(const rdf::TripleStore& store,
                                  const SelectQuery& query,
                                  const ExecOptions& options = {},
                                  ExecStats* stats = nullptr);

/// Convenience: parse + execute SPARQL text.
util::Result<ResultTable> ExecuteText(const rdf::TripleStore& store,
                                      std::string_view sparql,
                                      const ExecOptions& options = {},
                                      ExecStats* stats = nullptr);

}  // namespace re2xolap::sparql

#endif  // RE2XOLAP_SPARQL_EXECUTOR_H_
