#ifndef RE2XOLAP_SPARQL_EXECUTOR_H_
#define RE2XOLAP_SPARQL_EXECUTOR_H_

#include <cstdint>
#include <string_view>

#include "obs/query_profile.h"
#include "rdf/triple_store.h"
#include "sparql/ast.h"
#include "sparql/plan.h"
#include "sparql/result_table.h"
#include "util/exec_guard.h"
#include "util/result.h"

namespace re2xolap::sparql {

/// Which join core executes the planned BGP. Both consume the same Plan
/// (so cached plans serve either) and produce identical result tables.
///   - kVolcano: row-at-a-time recursive index nested-loop join — the
///     original executor, kept as the differential-testing oracle.
///   - kVectorized: batch-at-a-time over columnar BindingBlocks with
///     merge joins on sorted index ranges (see vectorized_runner.h).
/// kDefault resolves through the RE2XOLAP_EXECUTOR environment variable
/// ("volcano" | "vectorized"), falling back to vectorized.
enum class ExecutorKind : uint8_t { kDefault = 0, kVolcano, kVectorized };

/// The process-wide default executor: RE2XOLAP_EXECUTOR if set (read
/// once), else kVectorized.
ExecutorKind DefaultExecutorKind();

/// Resolves kDefault to the process-wide default.
inline ExecutorKind ResolveExecutor(ExecutorKind kind) {
  return kind == ExecutorKind::kDefault ? DefaultExecutorKind() : kind;
}

/// Execution knobs.
struct ExecOptions {
  /// 0 = no timeout. The paper's experiments run the endpoint with a
  /// 15-minute timeout; benches use much smaller values.
  uint64_t timeout_millis = 0;
  /// Optional per-request guardrails (absolute deadline, memory budget,
  /// cancellation), polled by the join loop, aggregation, ORDER BY /
  /// DISTINCT sorts, and HAVING. Non-owning; must outlive the execution.
  /// Violations surface as kTimeout / kResourceExhausted / kCancelled.
  const util::ExecGuard* guard = nullptr;
  /// When true (and an ExecStats sink is passed), per-operator wall times
  /// are measured for every join step — two clock reads per produced
  /// binding, so leave it off outside EXPLAIN ANALYZE. Cardinality
  /// counters and the operator tree are collected whenever a stats sink
  /// is present, independent of this flag.
  bool profile = false;
  /// Which join core runs the BGP. kDefault resolves through
  /// RE2XOLAP_EXECUTOR (see DefaultExecutorKind); both kinds accept the
  /// same plans and produce identical tables, so this is safe to flip
  /// per query even against a shared plan cache.
  ExecutorKind executor = ExecutorKind::kDefault;
  PlanOptions plan;
};

/// Run statistics, filled when a pointer is passed to Execute. The
/// cardinality counters are maintained on every plan-step kind (mandatory
/// join steps, OPTIONAL extensions, ASK probes); `profile` holds the
/// per-operator breakdown of the same run (see obs::ProfileNode for the
/// conventions, sparql/explain.h for the renderer).
struct ExecStats {
  uint64_t intermediate_bindings = 0;  // bindings produced across all steps
  uint64_t triples_scanned = 0;        // index entries inspected
  double plan_millis = 0;
  double exec_millis = 0;
  obs::ProfileNode profile;            // per-operator tree, root = the query
};

/// Plans and executes `query` against `store`. Returns the materialized
/// result table, or a Status on invalid queries / timeout.
util::Result<ResultTable> Execute(const rdf::TripleStore& store,
                                  const SelectQuery& query,
                                  const ExecOptions& options = {},
                                  ExecStats* stats = nullptr);

/// Executes `query` using a prebuilt `plan` (as produced by PlanQuery for
/// exactly this query/store pair), skipping the planning phase — this is
/// what lets an engine-layer plan cache amortize planning across repeated
/// queries. ASK queries are rewritten into existence probes *before*
/// planning, so a prebuilt plan cannot apply; they delegate to the
/// planning overload. `options.plan` is ignored (already baked into
/// `plan`) and `stats->plan_millis` is left untouched.
util::Result<ResultTable> Execute(const rdf::TripleStore& store,
                                  const SelectQuery& query, const Plan& plan,
                                  const ExecOptions& options = {},
                                  ExecStats* stats = nullptr);

/// Convenience: parse + execute SPARQL text.
util::Result<ResultTable> ExecuteText(const rdf::TripleStore& store,
                                      std::string_view sparql,
                                      const ExecOptions& options = {},
                                      ExecStats* stats = nullptr);

}  // namespace re2xolap::sparql

#endif  // RE2XOLAP_SPARQL_EXECUTOR_H_
