#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "sparql/plan.h"

namespace re2xolap::sparql {

namespace {

/// Collects variable names of an expression tree.
void CollectExprVars(const Expr& e, std::set<std::string>* out) {
  switch (e.kind) {
    case ExprKind::kVariable:
    case ExprKind::kIn:
    case ExprKind::kBound:
      if (!e.var.name.empty()) out->insert(e.var.name);
      break;
    default:
      break;
  }
  for (const ExprPtr& c : e.children) CollectExprVars(*c, out);
}

/// Resolves every variable reference of an expression tree to its binding
/// slot, keyed by the address of the name inside the tree (see
/// FilterSlots). One entry per occurrence; duplicates of the same name at
/// different nodes each get their own (pointer-keyed) entry.
void ResolveFilterSlots(const Plan& plan, const Expr& e, FilterSlots* out) {
  switch (e.kind) {
    case ExprKind::kVariable:
    case ExprKind::kIn:
    case ExprKind::kBound:
      if (!e.var.name.empty()) out->Add(&e.var.name, plan.SlotOf(e.var.name));
      break;
    default:
      break;
  }
  for (const ExprPtr& c : e.children) ResolveFilterSlots(plan, *c, out);
}

struct LoweredPattern {
  PhysicalPattern phys;
  // Variable names per position ("" = constant).
  std::string s_var, p_var, o_var;
  bool impossible = false;
};

LoweredPattern Lower(const rdf::TripleStore& store,
                     const TriplePatternAst& tp) {
  LoweredPattern lp;
  auto lower_pos = [&](const TermOrVar& tv, rdf::TermId* id,
                       std::string* var) {
    if (IsVar(tv)) {
      *var = AsVar(tv).name;
      return;
    }
    *id = store.Lookup(AsTerm(tv));
    if (*id == rdf::kInvalidTermId) lp.impossible = true;
  };
  lower_pos(tp.s, &lp.phys.s_id, &lp.s_var);
  lower_pos(tp.p, &lp.phys.p_id, &lp.p_var);
  lower_pos(tp.o, &lp.phys.o_id, &lp.o_var);
  return lp;
}

/// Estimated result cardinality of a pattern given the set of variables
/// already bound by earlier steps. Constants give exact index counts;
/// bound variables shrink the estimate using per-predicate distinct
/// counts.
double EstimateCost(const rdf::TripleStore& store, const LoweredPattern& lp,
                    const std::set<std::string>& bound) {
  rdf::TriplePattern q;
  q.s = lp.phys.s_id;
  q.p = lp.phys.p_id;
  q.o = lp.phys.o_id;
  double base = static_cast<double>(store.CountMatches(q));
  if (base == 0) return 0;
  rdf::PredicateStats stats{};
  if (lp.phys.p_id != rdf::kInvalidTermId) {
    stats = store.predicate_stats(lp.phys.p_id);
  }
  auto shrink = [&](const std::string& var, uint64_t distinct) {
    if (!var.empty() && bound.count(var)) {
      base /= std::max<double>(1.0, static_cast<double>(distinct));
    }
  };
  shrink(lp.s_var, stats.distinct_subjects ? stats.distinct_subjects
                                           : static_cast<uint64_t>(base));
  shrink(lp.o_var, stats.distinct_objects ? stats.distinct_objects
                                          : static_cast<uint64_t>(base));
  if (!lp.p_var.empty() && bound.count(lp.p_var)) {
    base /= 8.0;  // predicates are rarely variables; coarse factor
  }
  return base;
}

bool SharesVarWith(const LoweredPattern& lp,
                   const std::set<std::string>& bound) {
  return (!lp.s_var.empty() && bound.count(lp.s_var)) ||
         (!lp.p_var.empty() && bound.count(lp.p_var)) ||
         (!lp.o_var.empty() && bound.count(lp.o_var));
}

void AddVars(const LoweredPattern& lp, std::set<std::string>* bound) {
  if (!lp.s_var.empty()) bound->insert(lp.s_var);
  if (!lp.p_var.empty()) bound->insert(lp.p_var);
  if (!lp.o_var.empty()) bound->insert(lp.o_var);
}

}  // namespace

util::Result<Plan> PlanQuery(const rdf::TripleStore& store,
                             const SelectQuery& query,
                             const PlanOptions& options) {
  if (!store.frozen()) {
    return util::Status::InvalidArgument(
        "TripleStore must be frozen before planning");
  }
  Plan plan;

  std::vector<LoweredPattern> lowered;
  lowered.reserve(query.patterns.size());
  for (const TriplePatternAst& tp : query.patterns) {
    LoweredPattern lp = Lower(store, tp);
    if (lp.impossible) plan.impossible = true;
    lowered.push_back(std::move(lp));
  }

  // Greedy join ordering: repeatedly pick the connected pattern with the
  // lowest cardinality estimate (falling back to disconnected patterns when
  // none connects — a cartesian step).
  std::vector<size_t> order(lowered.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (options.use_join_reordering && lowered.size() > 1 && !plan.impossible) {
    std::set<std::string> bound;
    std::vector<bool> used(lowered.size(), false);
    order.clear();
    for (size_t step = 0; step < lowered.size(); ++step) {
      double best_cost = std::numeric_limits<double>::infinity();
      size_t best = lowered.size();
      bool best_connected = false;
      for (size_t i = 0; i < lowered.size(); ++i) {
        if (used[i]) continue;
        bool connected = step == 0 || SharesVarWith(lowered[i], bound);
        double cost = EstimateCost(store, lowered[i], bound);
        // Prefer connected patterns; among equals, the cheaper one.
        if (best == lowered.size() || (connected && !best_connected) ||
            (connected == best_connected && cost < best_cost)) {
          best = i;
          best_cost = cost;
          best_connected = connected;
        }
      }
      used[best] = true;
      order.push_back(best);
      AddVars(lowered[best], &bound);
    }
  }

  // Assign slots in execution order.
  auto slot_for = [&](const std::string& var) -> int {
    if (var.empty()) return -1;
    auto it = plan.var_slots.find(var);
    if (it != plan.var_slots.end()) return it->second;
    int slot = static_cast<int>(plan.slot_count++);
    plan.var_slots.emplace(var, slot);
    return slot;
  };
  for (size_t idx : order) {
    LoweredPattern& lp = lowered[idx];
    lp.phys.s_slot = slot_for(lp.s_var);
    lp.phys.p_slot = slot_for(lp.p_var);
    lp.phys.o_slot = slot_for(lp.o_var);
    plan.steps.push_back(lp.phys);
  }

  // Lower OPTIONAL blocks (kept in parse order; they are usually tiny).
  for (const auto& block : query.optional_blocks) {
    PlannedOptional po;
    for (const TriplePatternAst& tp : block) {
      LoweredPattern lp = Lower(store, tp);
      if (lp.impossible) po.never_matches = true;
      lp.phys.s_slot = slot_for(lp.s_var);
      lp.phys.p_slot = slot_for(lp.p_var);
      lp.phys.o_slot = slot_for(lp.o_var);
      po.steps.push_back(lp.phys);
    }
    plan.optionals.push_back(std::move(po));
  }

  // Make sure every variable referenced elsewhere in the query has a slot,
  // even if the BGP is empty (degenerate queries).
  for (const SelectItem& item : query.items) {
    if (!item.is_aggregate || !item.count_star) slot_for(item.var.name);
  }
  for (const Variable& v : query.group_by) slot_for(v.name);

  // Attach filters at the earliest step after which their variables are
  // bound.
  std::vector<std::set<std::string>> bound_by_step(plan.steps.size() + 1);
  {
    std::set<std::string> acc;
    bound_by_step[0] = acc;
    for (size_t i = 0; i < order.size(); ++i) {
      AddVars(lowered[order[i]], &acc);
      bound_by_step[i + 1] = acc;
    }
  }
  for (const ExprPtr& f : query.filters) {
    std::set<std::string> vars;
    CollectExprVars(*f, &vars);
    bool found_step = false;
    for (size_t step = 0; step <= plan.steps.size() && !found_step; ++step) {
      bool all_bound = true;
      for (const std::string& v : vars) {
        if (!bound_by_step[step].count(v)) {
          all_bound = false;
          break;
        }
      }
      if (all_bound) {
        plan.filters.push_back(PlannedFilter{f, step, {}});
        found_step = true;
      }
    }
    if (!found_step) {
      // References variables only OPTIONAL blocks can bind (or unbound
      // variables): evaluate after the optional extension.
      plan.post_optional_filters.push_back(PlannedFilter{f, 0, {}});
    }
  }
  // Slot resolution happens last so filters over projection-only /
  // group-by variables (slots assigned above) resolve too.
  for (PlannedFilter& pf : plan.filters) {
    ResolveFilterSlots(plan, *pf.expr, &pf.slots);
  }
  for (PlannedFilter& pf : plan.post_optional_filters) {
    ResolveFilterSlots(plan, *pf.expr, &pf.slots);
  }
  return plan;
}

}  // namespace re2xolap::sparql
