#ifndef RE2XOLAP_SPARQL_PLAN_H_
#define RE2XOLAP_SPARQL_PLAN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/triple_store.h"
#include "sparql/ast.h"
#include "util/result.h"

namespace re2xolap::sparql {

/// A triple pattern lowered to term ids and variable slots. For each
/// position, either `*_id` is a valid TermId (constant) or `*_slot` is a
/// non-negative slot index into the binding vector.
struct PhysicalPattern {
  rdf::TermId s_id = rdf::kInvalidTermId;
  rdf::TermId p_id = rdf::kInvalidTermId;
  rdf::TermId o_id = rdf::kInvalidTermId;
  int s_slot = -1;
  int p_slot = -1;
  int o_slot = -1;
};

/// Plan-time resolution of a filter expression's variable names to binding
/// slots, so runtime evaluation never hashes a string per row. The keys
/// point at the `Expr::var.name` strings of the very expression tree the
/// plan holds alive (filters are evaluated from the plan, not the query),
/// so the common lookup is a pointer compare; the value compare is a
/// fallback for callers that pass an equal string from elsewhere.
class FilterSlots {
 public:
  void Add(const std::string* name, int slot) {
    entries_.emplace_back(name, slot);
  }
  int SlotOf(const std::string& name) const {
    for (const auto& [key, slot] : entries_) {
      if (key == &name || *key == name) return slot;
    }
    return -1;
  }
  size_t size() const { return entries_.size(); }
  const std::vector<std::pair<const std::string*, int>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<const std::string*, int>> entries_;
};

/// A filter expression plus the index of the plan step after which all of
/// its variables are bound (so it can run as early as possible), and its
/// variables pre-resolved to slots (`slots` references names inside
/// `expr`, which the plan keeps alive).
struct PlannedFilter {
  ExprPtr expr;
  size_t apply_after_step = 0;
  FilterSlots slots;
};

/// One planned OPTIONAL block: its lowered patterns in parse order.
/// `never_matches` is set when a constant of the block is missing from
/// the dictionary — the block can't match, but the query is unaffected
/// (left-join semantics).
struct PlannedOptional {
  std::vector<PhysicalPattern> steps;
  bool never_matches = false;
};

/// The physical plan: join-ordered patterns, slot mapping, and early
/// filters. `impossible` is set when some constant term of the mandatory
/// BGP does not exist in the store's dictionary: the query is valid but
/// provably empty.
struct Plan {
  std::vector<PhysicalPattern> steps;
  std::vector<PlannedOptional> optionals;
  std::vector<PlannedFilter> filters;
  /// Filters over variables only bound by OPTIONAL blocks; evaluated on
  /// each fully-extended binding (unbound variables fail the filter).
  /// `apply_after_step` is meaningless for these.
  std::vector<PlannedFilter> post_optional_filters;
  std::unordered_map<std::string, int> var_slots;
  size_t slot_count = 0;
  bool impossible = false;

  int SlotOf(const std::string& var) const {
    auto it = var_slots.find(var);
    return it == var_slots.end() ? -1 : it->second;
  }
};

/// Planner options. `use_join_reordering` exists for the ablation bench
/// (paper Section 5.2's point that smart access ordering matters).
struct PlanOptions {
  bool use_join_reordering = true;
};

/// Lowers and join-orders the query's BGP against `store` using
/// selectivity estimates from the store's predicate statistics.
util::Result<Plan> PlanQuery(const rdf::TripleStore& store,
                             const SelectQuery& query,
                             const PlanOptions& options = {});

}  // namespace re2xolap::sparql

#endif  // RE2XOLAP_SPARQL_PLAN_H_
