#include "sparql/parser.h"

#include <map>

#include "sparql/lexer.h"
#include "util/string_utils.h"

namespace re2xolap::sparql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  util::Result<SelectQuery> Parse() {
    RE2X_RETURN_IF_ERROR(ParsePrologue());
    RE2X_RETURN_IF_ERROR(ParseSelectClause());
    RE2X_RETURN_IF_ERROR(ParseWhereClause());
    RE2X_RETURN_IF_ERROR(ParseSolutionModifiers());
    if (!AtEof()) {
      return Error("unexpected trailing input '" + Peek().value + "'");
    }
    return std::move(query_);
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t idx = pos_ + ahead;
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool AtEof() const { return Peek().kind == TokenKind::kEof; }

  bool CheckKeyword(std::string_view kw) const {
    return Peek().kind == TokenKind::kIdent &&
           util::ToLower(Peek().value) == util::ToLower(std::string(kw));
  }
  bool MatchKeyword(std::string_view kw) {
    if (!CheckKeyword(kw)) return false;
    Advance();
    return true;
  }
  bool Match(TokenKind k) {
    if (Peek().kind != k) return false;
    Advance();
    return true;
  }

  util::Status Error(const std::string& what) const {
    return util::Status::ParseError("parse error at offset " +
                                    std::to_string(Peek().position) + ": " +
                                    what);
  }

  util::Status Expect(TokenKind k, const char* what) {
    if (!Match(k)) return Error(std::string("expected ") + what);
    return util::Status::OK();
  }

  // --- prologue -----------------------------------------------------------

  util::Status ParsePrologue() {
    while (MatchKeyword("PREFIX")) {
      if (Peek().kind != TokenKind::kPrefixedName &&
          Peek().kind != TokenKind::kIdent) {
        return Error("expected prefix name after PREFIX");
      }
      std::string ns = Advance().value;
      if (!ns.empty() && ns.back() == ':') ns.pop_back();
      // kPrefixedName includes the colon inside (e.g. "ns:"), kIdent does not.
      size_t colon = ns.find(':');
      if (colon != std::string::npos) ns = ns.substr(0, colon);
      if (Peek().kind != TokenKind::kIri) {
        return Error("expected <iri> after PREFIX " + ns + ":");
      }
      prefixes_[ns] = Advance().value;
    }
    return util::Status::OK();
  }

  // Expands "ns:local" using declared prefixes; undeclared prefixes keep the
  // raw text as the IRI (common for synthetic vocabularies in tests).
  rdf::Term ExpandPrefixed(const std::string& raw) const {
    size_t colon = raw.find(':');
    std::string ns = raw.substr(0, colon);
    std::string local = raw.substr(colon + 1);
    auto it = prefixes_.find(ns);
    if (it != prefixes_.end()) return rdf::Term::Iri(it->second + local);
    return rdf::Term::Iri(raw);
  }

  // --- select -------------------------------------------------------------

  util::Status ParseSelectClause() {
    if (MatchKeyword("ASK")) {
      query_.is_ask = true;
      return util::Status::OK();
    }
    if (!MatchKeyword("SELECT")) return Error("expected SELECT or ASK");
    if (MatchKeyword("DISTINCT")) query_.distinct = true;
    if (Match(TokenKind::kStar)) {
      query_.select_all = true;
      return util::Status::OK();
    }
    bool any = false;
    while (true) {
      if (Peek().kind == TokenKind::kVariable) {
        SelectItem item;
        item.var = Variable{Advance().value};
        query_.items.push_back(std::move(item));
        any = true;
        continue;
      }
      // Aggregate: either bare `SUM(?v)` or parenthesized
      // `(SUM(?v) AS ?alias)`.
      bool parenthesized = false;
      size_t saved = pos_;
      if (Peek().kind == TokenKind::kLParen) {
        Advance();
        parenthesized = true;
      }
      AggFunc func;
      if (!PeekAggFunc(&func)) {
        if (parenthesized) pos_ = saved;
        break;
      }
      Advance();  // function name
      RE2X_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'(' after aggregate"));
      SelectItem item;
      item.is_aggregate = true;
      item.func = func;
      if (MatchKeyword("DISTINCT")) {
        if (func != AggFunc::kCount) {
          return Error("DISTINCT aggregates are only supported for COUNT");
        }
        item.distinct_agg = true;
      }
      if (Match(TokenKind::kStar)) {
        if (func != AggFunc::kCount) {
          return Error("'*' argument only valid for COUNT");
        }
        item.count_star = true;
      } else if (Peek().kind == TokenKind::kVariable) {
        item.var = Variable{Advance().value};
      } else {
        return Error("expected variable or * in aggregate");
      }
      RE2X_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')' after aggregate"));
      if (MatchKeyword("AS")) {
        if (Peek().kind != TokenKind::kVariable) {
          return Error("expected ?alias after AS");
        }
        item.alias = Advance().value;
      }
      if (parenthesized) {
        RE2X_RETURN_IF_ERROR(
            Expect(TokenKind::kRParen, "')' closing select item"));
      }
      query_.items.push_back(std::move(item));
      any = true;
    }
    if (!any) return Error("SELECT clause has no items");
    return util::Status::OK();
  }

  bool PeekAggFunc(AggFunc* out) const {
    if (Peek().kind != TokenKind::kIdent) return false;
    std::string up = util::ToLower(Peek().value);
    if (up == "sum") *out = AggFunc::kSum;
    else if (up == "min") *out = AggFunc::kMin;
    else if (up == "max") *out = AggFunc::kMax;
    else if (up == "avg") *out = AggFunc::kAvg;
    else if (up == "count") *out = AggFunc::kCount;
    else return false;
    return true;
  }

  // --- where --------------------------------------------------------------

  util::Status ParseWhereClause() {
    MatchKeyword("WHERE");  // WHERE keyword is optional in SPARQL
    RE2X_RETURN_IF_ERROR(Expect(TokenKind::kLBrace, "'{'"));
    while (!Match(TokenKind::kRBrace)) {
      if (AtEof()) return Error("unterminated WHERE block");
      if (MatchKeyword("FILTER")) {
        ExprPtr e;
        RE2X_RETURN_IF_ERROR(ParseExpr(&e));
        query_.filters.push_back(std::move(e));
        Match(TokenKind::kDot);  // optional separator
        continue;
      }
      if (MatchKeyword("VALUES")) {
        // VALUES ?var { t1 t2 ... } — sugar for FILTER (?var IN (...)).
        if (Peek().kind != TokenKind::kVariable) {
          return Error("expected variable after VALUES");
        }
        std::string var = Advance().value;
        RE2X_RETURN_IF_ERROR(Expect(TokenKind::kLBrace, "'{' after VALUES"));
        std::vector<rdf::Term> values;
        while (!Match(TokenKind::kRBrace)) {
          if (AtEof()) return Error("unterminated VALUES block");
          rdf::Term t;
          RE2X_RETURN_IF_ERROR(ParseConstantTerm(&t));
          values.push_back(std::move(t));
        }
        if (values.empty()) return Error("empty VALUES block");
        query_.filters.push_back(Expr::In(std::move(var), std::move(values)));
        Match(TokenKind::kDot);
        continue;
      }
      if (MatchKeyword("OPTIONAL")) {
        RE2X_RETURN_IF_ERROR(
            Expect(TokenKind::kLBrace, "'{' after OPTIONAL"));
        // Redirect triple parsing into the new block.
        size_t mandatory_count = query_.patterns.size();
        while (!Match(TokenKind::kRBrace)) {
          if (AtEof()) return Error("unterminated OPTIONAL block");
          RE2X_RETURN_IF_ERROR(ParseTripleBlock());
        }
        std::vector<TriplePatternAst> block(
            query_.patterns.begin() + static_cast<long>(mandatory_count),
            query_.patterns.end());
        query_.patterns.resize(mandatory_count);
        if (block.empty()) return Error("empty OPTIONAL block");
        query_.optional_blocks.push_back(std::move(block));
        Match(TokenKind::kDot);
        continue;
      }
      RE2X_RETURN_IF_ERROR(ParseTripleBlock());
    }
    return util::Status::OK();
  }

  // subject (predicate-path object (';' predicate-path object)*) '.'
  util::Status ParseTripleBlock() {
    TermOrVar subject;
    RE2X_RETURN_IF_ERROR(ParseTermOrVar(&subject, /*object_pos=*/false));
    while (true) {
      RE2X_RETURN_IF_ERROR(ParsePredicateObject(subject));
      if (Match(TokenKind::kSemicolon)) continue;
      break;
    }
    Match(TokenKind::kDot);  // '.' optional before '}'
    return util::Status::OK();
  }

  // predicate-path object; expands p1/p2/... with fresh path variables.
  util::Status ParsePredicateObject(const TermOrVar& subject) {
    std::vector<TermOrVar> path;
    while (true) {
      TermOrVar p;
      RE2X_RETURN_IF_ERROR(ParseTermOrVar(&p, /*object_pos=*/false));
      path.push_back(std::move(p));
      if (!Match(TokenKind::kSlash)) break;
    }
    TermOrVar object;
    RE2X_RETURN_IF_ERROR(ParseTermOrVar(&object, /*object_pos=*/true));

    TermOrVar current = subject;
    for (size_t i = 0; i < path.size(); ++i) {
      TermOrVar next =
          (i + 1 == path.size())
              ? object
              : TermOrVar(Variable{"__p" + std::to_string(path_counter_++)});
      query_.patterns.push_back(TriplePatternAst{current, path[i], next});
      current = next;
    }
    return util::Status::OK();
  }

  util::Status ParseTermOrVar(TermOrVar* out, bool object_pos) {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kVariable:
        *out = Variable{Advance().value};
        return util::Status::OK();
      case TokenKind::kIri:
        *out = rdf::Term::Iri(Advance().value);
        return util::Status::OK();
      case TokenKind::kPrefixedName: {
        std::string raw = Advance().value;
        // "a" shorthand is an kIdent, prefixed names may be rdf:type etc.
        *out = ExpandPrefixed(raw);
        return util::Status::OK();
      }
      case TokenKind::kIdent:
        if (util::ToLower(t.value) == "a") {
          Advance();
          *out = rdf::Term::Iri(
              "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
          return util::Status::OK();
        }
        return Error("unexpected identifier '" + t.value + "' in pattern");
      case TokenKind::kString:
      case TokenKind::kInteger:
      case TokenKind::kDouble: {
        if (!object_pos) {
          return Error("literals are only allowed in object position");
        }
        rdf::Term lit;
        RE2X_RETURN_IF_ERROR(ParseLiteral(&lit));
        *out = std::move(lit);
        return util::Status::OK();
      }
      default:
        return Error("expected term or variable, got '" + t.value + "'");
    }
  }

  // A literal token possibly followed by ^^datatype.
  util::Status ParseLiteral(rdf::Term* out) {
    const Token t = Advance();
    if (t.kind == TokenKind::kInteger) {
      *out = rdf::Term(rdf::TermKind::kLiteral, t.value,
                       rdf::LiteralType::kInteger);
      return util::Status::OK();
    }
    if (t.kind == TokenKind::kDouble) {
      *out = rdf::Term(rdf::TermKind::kLiteral, t.value,
                       rdf::LiteralType::kDouble);
      return util::Status::OK();
    }
    // String, optionally typed.
    rdf::LiteralType lt = rdf::LiteralType::kString;
    if (Match(TokenKind::kCaretCaret)) {
      std::string dt;
      if (Peek().kind == TokenKind::kIri ||
          Peek().kind == TokenKind::kPrefixedName) {
        dt = Advance().value;
      } else {
        return Error("expected datatype after ^^");
      }
      std::string low = util::ToLower(dt);
      if (util::EndsWith(low, "integer") || util::EndsWith(low, "int") ||
          util::EndsWith(low, "long")) {
        lt = rdf::LiteralType::kInteger;
      } else if (util::EndsWith(low, "double") ||
                 util::EndsWith(low, "decimal") ||
                 util::EndsWith(low, "float")) {
        lt = rdf::LiteralType::kDouble;
      } else if (util::EndsWith(low, "boolean")) {
        lt = rdf::LiteralType::kBoolean;
      } else if (util::EndsWith(low, "date")) {
        lt = rdf::LiteralType::kDate;
      } else {
        lt = rdf::LiteralType::kOther;
      }
    }
    *out = rdf::Term(rdf::TermKind::kLiteral, t.value, lt);
    return util::Status::OK();
  }

  // --- expressions (precedence: || < && < ! < comparison < primary) --------

  util::Status ParseExpr(ExprPtr* out) { return ParseOr(out); }

  util::Status ParseOr(ExprPtr* out) {
    ExprPtr lhs;
    RE2X_RETURN_IF_ERROR(ParseAnd(&lhs));
    while (Match(TokenKind::kOrOr)) {
      ExprPtr rhs;
      RE2X_RETURN_IF_ERROR(ParseAnd(&rhs));
      lhs = Expr::Or(std::move(lhs), std::move(rhs));
    }
    *out = std::move(lhs);
    return util::Status::OK();
  }

  util::Status ParseAnd(ExprPtr* out) {
    ExprPtr lhs;
    RE2X_RETURN_IF_ERROR(ParseNot(&lhs));
    while (Match(TokenKind::kAndAnd)) {
      ExprPtr rhs;
      RE2X_RETURN_IF_ERROR(ParseNot(&rhs));
      lhs = Expr::And(std::move(lhs), std::move(rhs));
    }
    *out = std::move(lhs);
    return util::Status::OK();
  }

  util::Status ParseNot(ExprPtr* out) {
    if (Match(TokenKind::kBang)) {
      ExprPtr inner;
      RE2X_RETURN_IF_ERROR(ParseNot(&inner));
      *out = Expr::Not(std::move(inner));
      return util::Status::OK();
    }
    return ParseComparison(out);
  }

  util::Status ParseComparison(ExprPtr* out) {
    ExprPtr lhs;
    RE2X_RETURN_IF_ERROR(ParsePrimary(&lhs));
    // `?v IN (a, b, c)`
    if (MatchKeyword("IN")) {
      if (lhs->kind != ExprKind::kVariable) {
        return Error("IN requires a variable on the left");
      }
      RE2X_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'(' after IN"));
      std::vector<rdf::Term> values;
      if (!Match(TokenKind::kRParen)) {
        while (true) {
          rdf::Term t;
          RE2X_RETURN_IF_ERROR(ParseConstantTerm(&t));
          values.push_back(std::move(t));
          if (Match(TokenKind::kComma)) continue;
          RE2X_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')' after IN list"));
          break;
        }
      }
      *out = Expr::In(lhs->var.name, std::move(values));
      return util::Status::OK();
    }
    CompareOp op;
    bool has_op = true;
    switch (Peek().kind) {
      case TokenKind::kEq:
        op = CompareOp::kEq;
        break;
      case TokenKind::kNe:
        op = CompareOp::kNe;
        break;
      case TokenKind::kLt:
        op = CompareOp::kLt;
        break;
      case TokenKind::kLe:
        op = CompareOp::kLe;
        break;
      case TokenKind::kGt:
        op = CompareOp::kGt;
        break;
      case TokenKind::kGe:
        op = CompareOp::kGe;
        break;
      default:
        has_op = false;
        break;
    }
    if (!has_op) {
      *out = std::move(lhs);
      return util::Status::OK();
    }
    Advance();
    ExprPtr rhs;
    RE2X_RETURN_IF_ERROR(ParsePrimary(&rhs));
    *out = Expr::Compare(op, std::move(lhs), std::move(rhs));
    return util::Status::OK();
  }

  util::Status ParsePrimary(ExprPtr* out) {
    if (Match(TokenKind::kLParen)) {
      RE2X_RETURN_IF_ERROR(ParseExpr(out));
      return Expect(TokenKind::kRParen, "')'");
    }
    if (CheckKeyword("BOUND")) {
      Advance();
      RE2X_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'(' after BOUND"));
      if (Peek().kind != TokenKind::kVariable) {
        return Error("expected variable in BOUND");
      }
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kBound;
      e->var = Variable{Advance().value};
      RE2X_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      *out = std::move(e);
      return util::Status::OK();
    }
    if (Peek().kind == TokenKind::kVariable) {
      *out = Expr::Var(Advance().value);
      return util::Status::OK();
    }
    rdf::Term t;
    RE2X_RETURN_IF_ERROR(ParseConstantTerm(&t));
    *out = Expr::Constant(std::move(t));
    return util::Status::OK();
  }

  util::Status ParseConstantTerm(rdf::Term* out) {
    switch (Peek().kind) {
      case TokenKind::kIri:
        *out = rdf::Term::Iri(Advance().value);
        return util::Status::OK();
      case TokenKind::kPrefixedName:
        *out = ExpandPrefixed(Advance().value);
        return util::Status::OK();
      case TokenKind::kString:
      case TokenKind::kInteger:
      case TokenKind::kDouble:
        return ParseLiteral(out);
      case TokenKind::kIdent: {
        std::string low = util::ToLower(Peek().value);
        if (low == "true" || low == "false") {
          *out = rdf::Term::BooleanLiteral(low == "true");
          Advance();
          return util::Status::OK();
        }
        return Error("unexpected identifier '" + Peek().value +
                     "' in expression");
      }
      default:
        return Error("expected constant, got '" + Peek().value + "'");
    }
  }

  // --- solution modifiers ---------------------------------------------------

  util::Status ParseSolutionModifiers() {
    while (true) {
      if (MatchKeyword("GROUP")) {
        if (!MatchKeyword("BY")) return Error("expected BY after GROUP");
        bool any = false;
        while (Peek().kind == TokenKind::kVariable) {
          query_.group_by.push_back(Variable{Advance().value});
          any = true;
        }
        if (!any) return Error("GROUP BY requires at least one variable");
        continue;
      }
      if (MatchKeyword("HAVING")) {
        ExprPtr e;
        RE2X_RETURN_IF_ERROR(ParseExpr(&e));
        query_.having.push_back(std::move(e));
        continue;
      }
      if (MatchKeyword("ORDER")) {
        if (!MatchKeyword("BY")) return Error("expected BY after ORDER");
        bool any = false;
        while (true) {
          bool asc = true;
          bool has_dir = false;
          if (MatchKeyword("ASC")) {
            has_dir = true;
          } else if (MatchKeyword("DESC")) {
            asc = false;
            has_dir = true;
          }
          if (has_dir) {
            RE2X_RETURN_IF_ERROR(
                Expect(TokenKind::kLParen, "'(' after ASC/DESC"));
            if (Peek().kind != TokenKind::kVariable) {
              return Error("expected variable in ORDER BY");
            }
            query_.order_by.push_back(OrderKey{Advance().value, asc});
            RE2X_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
            any = true;
            continue;
          }
          if (Peek().kind == TokenKind::kVariable) {
            query_.order_by.push_back(OrderKey{Advance().value, true});
            any = true;
            continue;
          }
          break;
        }
        if (!any) return Error("ORDER BY requires at least one key");
        continue;
      }
      if (MatchKeyword("LIMIT")) {
        if (Peek().kind != TokenKind::kInteger) {
          return Error("expected integer after LIMIT");
        }
        query_.limit = std::stoull(Advance().value);
        continue;
      }
      if (MatchKeyword("OFFSET")) {
        if (Peek().kind != TokenKind::kInteger) {
          return Error("expected integer after OFFSET");
        }
        query_.offset = std::stoull(Advance().value);
        continue;
      }
      break;
    }
    return util::Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  SelectQuery query_;
  std::map<std::string, std::string> prefixes_;
  int path_counter_ = 0;
};

}  // namespace

util::Result<SelectQuery> ParseQuery(std::string_view text) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.Parse();
}

}  // namespace re2xolap::sparql
