#ifndef RE2XOLAP_SPARQL_CSV_H_
#define RE2XOLAP_SPARQL_CSV_H_

#include <ostream>

#include "sparql/result_table.h"

namespace re2xolap::sparql {

/// Writes the table as RFC-4180-style CSV: a header row of column names,
/// then one line per row. Cells containing commas, quotes, or newlines
/// are quoted; embedded quotes are doubled. Term cells render via
/// ResultTable::CellToString (labels preferred), null cells are empty.
void WriteCsv(const ResultTable& table, std::ostream& os);

}  // namespace re2xolap::sparql

#endif  // RE2XOLAP_SPARQL_CSV_H_
