#include "sparql/explain.h"

#include <cstdio>
#include <sstream>
#include <utility>

#include "sparql/parser.h"
#include "util/table_printer.h"

namespace re2xolap::sparql {

namespace {

std::string FormatMillis(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

}  // namespace

std::string RenderProfile(const obs::ProfileNode& root, bool include_timing) {
  util::TablePrinter tp({"operator", "rows in", "rows out", "scanned",
                         "millis"});
  obs::VisitProfile(root, [&](int depth, const obs::ProfileNode& node) {
    std::string label(static_cast<size_t>(depth) * 2, ' ');
    label += node.label;
    std::string millis = "-";
    if (node.timed) {
      millis = include_timing ? FormatMillis(node.millis) : "*";
    }
    tp.AddRow({std::move(label), std::to_string(node.rows_in),
               std::to_string(node.rows_out), std::to_string(node.scanned),
               std::move(millis)});
  });
  std::ostringstream os;
  tp.Print(os);
  return os.str();
}

util::Result<ExplainResult> ExplainAnalyze(const rdf::TripleStore& store,
                                           const SelectQuery& query,
                                           const ExplainOptions& options) {
  ExecOptions exec = options.exec;
  exec.profile = true;
  ExplainResult out;
  RE2X_ASSIGN_OR_RETURN(out.table,
                        Execute(store, query, exec, &out.stats));
  out.report = RenderProfile(out.stats.profile, options.include_timing);
  return out;
}

util::Result<ExplainResult> ExplainAnalyzeText(const rdf::TripleStore& store,
                                               std::string_view sparql,
                                               const ExplainOptions& options) {
  RE2X_ASSIGN_OR_RETURN(SelectQuery q, ParseQuery(sparql));
  return ExplainAnalyze(store, q, options);
}

}  // namespace re2xolap::sparql
