#include "sparql/ast.h"

#include <sstream>

namespace re2xolap::sparql {

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kCount:
      return "COUNT";
  }
  return "?";
}

std::string SelectItem::OutputName() const {
  if (!alias.empty()) return alias;
  if (!is_aggregate) return var.name;
  std::string base = AggFuncName(func);
  for (char& c : base) c = static_cast<char>(std::tolower(c));
  return base + "_" + (count_star ? "star" : var.name);
}

namespace {

std::string TermOrVarToString(const TermOrVar& tv) {
  if (IsVar(tv)) return "?" + AsVar(tv).name;
  return AsTerm(tv).ToString();
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

void ExprToString(const Expr& e, std::ostringstream& os) {
  switch (e.kind) {
    case ExprKind::kConstant:
      os << e.constant.ToString();
      break;
    case ExprKind::kVariable:
      os << "?" << e.var.name;
      break;
    case ExprKind::kCompare:
      os << "(";
      ExprToString(*e.children[0], os);
      os << " " << CompareOpName(e.op) << " ";
      ExprToString(*e.children[1], os);
      os << ")";
      break;
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      os << "(";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i > 0) os << (e.kind == ExprKind::kAnd ? " && " : " || ");
        ExprToString(*e.children[i], os);
      }
      os << ")";
      break;
    }
    case ExprKind::kNot:
      os << "(!";
      ExprToString(*e.children[0], os);
      os << ")";
      break;
    case ExprKind::kIn: {
      os << "(?" << e.var.name << " IN (";
      for (size_t i = 0; i < e.in_list.size(); ++i) {
        if (i > 0) os << ", ";
        os << e.in_list[i].ToString();
      }
      os << "))";
      break;
    }
    case ExprKind::kBound:
      os << "BOUND(?" << e.var.name << ")";
      break;
  }
}

}  // namespace

std::string ToSparql(const Expr& expr) {
  std::ostringstream os;
  ExprToString(expr, os);
  return os.str();
}

std::string ToSparql(const SelectQuery& q) {
  std::ostringstream os;
  if (q.is_ask) {
    os << "ASK";
  } else {
    os << "SELECT ";
    if (q.distinct) os << "DISTINCT ";
    if (q.select_all) {
      os << "*";
    } else {
      for (size_t i = 0; i < q.items.size(); ++i) {
        const SelectItem& it = q.items[i];
        if (i > 0) os << " ";
        if (!it.is_aggregate) {
          os << "?" << it.var.name;
        } else {
          os << "(" << AggFuncName(it.func) << "("
             << (it.distinct_agg ? "DISTINCT " : "")
             << (it.count_star ? std::string("*") : "?" + it.var.name)
             << ") AS ?" << it.OutputName() << ")";
        }
      }
    }
  }
  os << " WHERE {\n";
  for (const TriplePatternAst& tp : q.patterns) {
    os << "  " << TermOrVarToString(tp.s) << " " << TermOrVarToString(tp.p)
       << " " << TermOrVarToString(tp.o) << " .\n";
  }
  for (const auto& block : q.optional_blocks) {
    os << "  OPTIONAL {\n";
    for (const TriplePatternAst& tp : block) {
      os << "    " << TermOrVarToString(tp.s) << " "
         << TermOrVarToString(tp.p) << " " << TermOrVarToString(tp.o)
         << " .\n";
    }
    os << "  }\n";
  }
  for (const ExprPtr& f : q.filters) {
    os << "  FILTER " << ToSparql(*f) << " .\n";
  }
  os << "}";
  if (!q.group_by.empty()) {
    os << " GROUP BY";
    for (const Variable& v : q.group_by) os << " ?" << v.name;
  }
  for (const ExprPtr& h : q.having) {
    os << " HAVING " << ToSparql(*h);
  }
  if (!q.order_by.empty()) {
    os << " ORDER BY";
    for (const OrderKey& k : q.order_by) {
      os << (k.ascending ? " ASC(?" : " DESC(?") << k.column << ")";
    }
  }
  if (q.limit.has_value()) os << " LIMIT " << *q.limit;
  if (q.offset > 0) os << " OFFSET " << q.offset;
  return os.str();
}

}  // namespace re2xolap::sparql
