#ifndef RE2XOLAP_SPARQL_RESULT_TABLE_H_
#define RE2XOLAP_SPARQL_RESULT_TABLE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "rdf/triple_store.h"

namespace re2xolap::sparql {

/// One cell of a query result: an RDF term (by id), a computed number
/// (aggregate output), or null (unbound).
struct Cell {
  enum class Kind : uint8_t { kNull, kTerm, kNumber };
  Kind kind = Kind::kNull;
  rdf::TermId term = rdf::kInvalidTermId;
  double number = 0.0;

  static Cell Null() { return Cell{}; }
  static Cell OfTerm(rdf::TermId id) {
    return Cell{Kind::kTerm, id, 0.0};
  }
  static Cell OfNumber(double v) {
    return Cell{Kind::kNumber, rdf::kInvalidTermId, v};
  }

  bool is_null() const { return kind == Kind::kNull; }
  bool is_term() const { return kind == Kind::kTerm; }
  bool is_number() const { return kind == Kind::kNumber; }

  friend bool operator==(const Cell& a, const Cell& b) {
    if (a.kind != b.kind) return false;
    switch (a.kind) {
      case Kind::kNull:
        return true;
      case Kind::kTerm:
        return a.term == b.term;
      case Kind::kNumber:
        return a.number == b.number;
    }
    return false;
  }
};

using Row = std::vector<Cell>;

/// A materialized query result: named columns + rows of cells. Holds a
/// pointer to the store so term cells can be rendered; the store must
/// outlive the table.
class ResultTable {
 public:
  ResultTable() = default;
  ResultTable(const rdf::TripleStore* store, std::vector<std::string> columns)
      : store_(store), columns_(std::move(columns)) {}

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }
  size_t row_count() const { return rows_.size(); }
  size_t column_count() const { return columns_.size(); }
  const rdf::TripleStore* store() const { return store_; }

  void AddRow(Row row) { rows_.push_back(std::move(row)); }

  /// Index of a column by name; -1 when absent.
  int ColumnIndex(const std::string& name) const;

  const Cell& at(size_t row, size_t col) const { return rows_[row][col]; }

  /// Numeric view of a cell: number cells directly, term cells via the
  /// literal's numeric value, null as 0.
  double NumericValue(const Cell& cell) const;

  /// Human-readable rendering of a cell ("Germany", "8030", "" for null).
  std::string CellToString(const Cell& cell) const;

  /// Pretty-prints as an aligned ASCII table (Table 2 style).
  void Print(std::ostream& os, size_t max_rows = 50) const;

 private:
  const rdf::TripleStore* store_ = nullptr;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

}  // namespace re2xolap::sparql

#endif  // RE2XOLAP_SPARQL_RESULT_TABLE_H_
