#include "sparql/binding_block.h"

#include <cassert>

namespace re2xolap::sparql {

void BindingBlock::Reset(size_t slot_count, size_t capacity) {
  assert(capacity > 0);
  slot_count_ = slot_count;
  capacity_ = capacity;
  size_ = 0;
  data_.resize(slot_count * capacity);
}

void BindingBlock::AppendUnboundRow() {
  assert(!full());
  size_t row = GrowRows(1);
  for (size_t s = 0; s < slot_count_; ++s) {
    column(s)[row] = rdf::kInvalidTermId;
  }
}

void BindingBlock::AppendRow(const std::vector<rdf::TermId>& row) {
  assert(!full());
  assert(row.size() == slot_count_);
  size_t r = GrowRows(1);
  for (size_t s = 0; s < slot_count_; ++s) {
    column(s)[r] = row[s];
  }
}

void BindingBlock::ExtractRow(size_t row,
                              std::vector<rdf::TermId>* out) const {
  out->resize(slot_count_);
  for (size_t s = 0; s < slot_count_; ++s) {
    (*out)[s] = column(s)[row];
  }
}

void BindingBlock::Compact(size_t from, const std::vector<uint32_t>& keep) {
  for (size_t s = 0; s < slot_count_; ++s) {
    rdf::TermId* col = column(s);
    size_t dst = from;
    for (uint32_t src : keep) col[dst++] = col[src];
  }
  size_ = from + keep.size();
}

}  // namespace re2xolap::sparql
