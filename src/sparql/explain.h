#ifndef RE2XOLAP_SPARQL_EXPLAIN_H_
#define RE2XOLAP_SPARQL_EXPLAIN_H_

#include <string>
#include <string_view>

#include "obs/query_profile.h"
#include "rdf/triple_store.h"
#include "sparql/ast.h"
#include "sparql/executor.h"
#include "sparql/result_table.h"
#include "util/result.h"

namespace re2xolap::sparql {

/// Knobs for EXPLAIN ANALYZE.
struct ExplainOptions {
  /// Execution options for the analyzed run; `exec.profile` is forced on
  /// so every operator gets wall times.
  ExecOptions exec;
  /// When false, the rendered tree replaces every measured time with a
  /// placeholder, making the output deterministic (used by golden tests).
  bool include_timing = true;
};

/// The result of ExplainAnalyze: the executed query's result table plus
/// the rendered per-operator report and the raw profile/stat numbers.
struct ExplainResult {
  ResultTable table;
  ExecStats stats;
  std::string report;  // aligned ASCII operator tree
};

/// Renders `root` as an aligned ASCII table, one row per operator,
/// children indented two spaces per level. Columns: operator, rows in,
/// rows out, scanned, millis. With `include_timing == false` the millis
/// column shows "-" for every node.
std::string RenderProfile(const obs::ProfileNode& root, bool include_timing);

/// Executes `query` with per-operator profiling enabled and returns the
/// result table together with the rendered operator report — the EXPLAIN
/// ANALYZE of this engine.
util::Result<ExplainResult> ExplainAnalyze(const rdf::TripleStore& store,
                                           const SelectQuery& query,
                                           const ExplainOptions& options = {});

/// Convenience: parse + ExplainAnalyze SPARQL text.
util::Result<ExplainResult> ExplainAnalyzeText(
    const rdf::TripleStore& store, std::string_view sparql,
    const ExplainOptions& options = {});

}  // namespace re2xolap::sparql

#endif  // RE2XOLAP_SPARQL_EXPLAIN_H_
