#ifndef RE2XOLAP_SPARQL_JOIN_RUNNER_H_
#define RE2XOLAP_SPARQL_JOIN_RUNNER_H_

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "rdf/index_cursor.h"
#include "rdf/triple_store.h"
#include "sparql/executor.h"
#include "sparql/plan.h"
#include "util/status.h"
#include "util/timer.h"

namespace re2xolap::sparql {

/// Per-operator observation slots for one join run. For mandatory steps
/// `rows_out` counts successful (consistent + filter-passing) extensions;
/// for OPTIONAL blocks `rows_out` counts rows passed downstream (matched
/// extensions plus left-join fall-throughs) and `matched` only the
/// extensions that bound new variables.
struct StepProf {
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint64_t matched = 0;
  uint64_t scanned = 0;
  double micros = 0;  // inclusive wall time, timing mode only
};

/// Non-owning, non-allocating reference to a complete-binding callback
/// (`const std::vector<rdf::TermId>& -> void`). The referenced callable
/// must outlive the JoinRunner::Run call it is passed to.
class RowSink {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, RowSink>>>
  RowSink(const F& f)  // NOLINT(runtime/explicit)
      : obj_(&f), fn_([](const void* obj,
                         const std::vector<rdf::TermId>& bindings) {
          (*static_cast<const F*>(obj))(bindings);
        }) {}

  void operator()(const std::vector<rdf::TermId>& bindings) const {
    fn_(obj_, bindings);
  }

 private:
  const void* obj_;
  void (*fn_)(const void*, const std::vector<rdf::TermId>&);
};

/// Short display form of a term for operator labels: IRIs by local name,
/// literals quoted.
std::string TermShortName(const rdf::TripleStore& store, rdf::TermId id);

/// Operator label of one physical pattern, e.g. "scan (?s type Obs)".
std::string PatternLabel(const rdf::TripleStore& store,
                         const std::vector<std::string>& slot_names,
                         const PhysicalPattern& pp, const char* prefix);

/// Abstract join core. Both runners (volcano JoinRunner, vectorized
/// VectorizedRunner) implement this so the executor can dispatch on
/// ExecOptions::executor and build the profile tree from either.
class JoinExecutor {
 public:
  virtual ~JoinExecutor() = default;

  /// Runs the join; calls `on_row(bindings)` for every complete binding.
  /// When `row_cap` is non-zero the join stops early after producing that
  /// many rows (safe only when no later operator reorders/merges rows).
  /// Returns non-OK on timeout / guard violation. The per-step counters
  /// are flushed into the ExecStats sink on both success and error paths.
  virtual util::Status Run(RowSink on_row, uint64_t row_cap) = 0;

  virtual const std::vector<StepProf>& step_prof() const = 0;
  virtual const std::vector<StepProf>& opt_prof() const = 0;
  virtual uint64_t emitted() const = 0;
  virtual bool timing() const = 0;
  /// Display label of the join operator in EXPLAIN output.
  virtual const char* join_label() const = 0;
};

/// Volcano join executor: row-at-a-time index nested loop join over the
/// planned steps with early filters and timeout/guard checks. When
/// ExecOptions carries an ExecGuard, the runner polls it (cancellation,
/// deadline, budgets) at the scan-interval boundaries, charges every
/// produced binding against its row budget, and re-checks the budgets on
/// each emitted row so sink-side charges surface promptly.
class JoinRunner : public JoinExecutor {
 public:
  JoinRunner(const rdf::TripleStore& store, const Plan& plan,
             const ExecOptions& options, ExecStats* stats);

  util::Status Run(RowSink on_row, uint64_t row_cap = 0) override;

  const std::vector<StepProf>& step_prof() const override {
    return step_prof_;
  }
  const std::vector<StepProf>& opt_prof() const override { return opt_prof_; }
  uint64_t emitted() const override { return emitted_; }
  bool timing() const override { return timing_; }
  const char* join_label() const override {
    return "join (index nested loop)";
  }

 private:
  void FlushStats();
  util::Status CheckGuard();
  Cell CellAtSlot(int slot) const;
  util::Status ApplyFiltersAfter(size_t step, bool* pass);
  util::Status Step(size_t step, const RowSink& on_row);
  util::Status OptionalStep(size_t block, const RowSink& on_row);
  util::Status OptionalPattern(size_t block, size_t idx, bool* matched,
                               const RowSink& on_row);

  const rdf::TripleStore& store_;
  const Plan& plan_;
  const ExecOptions& options_;
  ExecStats* stats_;
  const bool profiling_;  // counters + operator tree (any stats sink)
  const bool timing_;     // per-step wall times (ExecOptions::profile)
  std::vector<rdf::TermId> bindings_;
  // One cursor per recursion depth, so compressed-format block scratch is
  // allocated once per depth and reused across every binding. Each Step /
  // OptionalPattern depth is active at most once on the stack.
  std::vector<rdf::IndexCursor> step_cursors_;
  std::vector<std::vector<rdf::IndexCursor>> opt_cursors_;
  std::vector<StepProf> step_prof_;
  std::vector<StepProf> opt_prof_;
  util::WallTimer timer_;
  uint64_t ops_ = 0;
  uint64_t row_cap_ = 0;
  uint64_t rows_emitted_ = 0;
  uint64_t emitted_ = 0;
  bool stopped_ = false;
};

}  // namespace re2xolap::sparql

#endif  // RE2XOLAP_SPARQL_JOIN_RUNNER_H_
