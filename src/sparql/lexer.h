#ifndef RE2XOLAP_SPARQL_LEXER_H_
#define RE2XOLAP_SPARQL_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace re2xolap::sparql {

enum class TokenKind : uint8_t {
  kEof,
  kIri,        // <...> (value = IRI without brackets)
  kPrefixedName,  // ns:local (value = raw text)
  kVariable,   // ?name (value = name)
  kString,     // "..." (value = unescaped content)
  kInteger,    // 123
  kDouble,     // 1.5, .5, 1e3
  kIdent,      // bare word: keywords SELECT/WHERE/... and xsd:... handled as kPrefixedName
  kLBrace,     // {
  kRBrace,     // }
  kLParen,     // (
  kRParen,     // )
  kDot,        // .
  kComma,      // ,
  kSemicolon,  // ;
  kSlash,      // /
  kStar,       // *
  kEq,         // =
  kNe,         // !=
  kLt,         // <  (only in expression context; lexer resolves by lookahead)
  kLe,         // <=
  kGt,         // >
  kGe,         // >=
  kAndAnd,     // &&
  kOrOr,       // ||
  kBang,       // !
  kCaretCaret, // ^^
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string value;  // semantic payload, see TokenKind comments
  size_t position = 0;  // byte offset in the input, for error messages
};

/// Tokenizes a SPARQL query string. `<` followed by a non-space, non-'='
/// run terminated by `>` is treated as an IRI; otherwise as a comparison
/// operator.
util::Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace re2xolap::sparql

#endif  // RE2XOLAP_SPARQL_LEXER_H_
