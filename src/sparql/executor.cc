#include "sparql/executor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <unordered_map>

#include "sparql/parser.h"
#include "util/timer.h"

namespace re2xolap::sparql {

namespace {

constexpr uint64_t kTimeoutCheckInterval = 8192;

/// Tri-state effective boolean value for filter evaluation.
enum class Ebv : uint8_t { kFalse = 0, kTrue = 1, kError = 2 };

Ebv EbvAnd(Ebv a, Ebv b) {
  if (a == Ebv::kFalse || b == Ebv::kFalse) return Ebv::kFalse;
  if (a == Ebv::kError || b == Ebv::kError) return Ebv::kError;
  return Ebv::kTrue;
}
Ebv EbvOr(Ebv a, Ebv b) {
  if (a == Ebv::kTrue || b == Ebv::kTrue) return Ebv::kTrue;
  if (a == Ebv::kError || b == Ebv::kError) return Ebv::kError;
  return Ebv::kFalse;
}
Ebv EbvNot(Ebv a) {
  if (a == Ebv::kError) return Ebv::kError;
  return a == Ebv::kTrue ? Ebv::kFalse : Ebv::kTrue;
}

/// Comparison of two cells under SPARQL-ish semantics: numeric when both
/// sides are numeric, lexical when both are non-numeric, error otherwise.
/// Returns {comparable, cmp<0|0|>0}.
struct CellCompare {
  bool comparable = false;
  int cmp = 0;
};

CellCompare CompareCells(const rdf::TripleStore& store, const Cell& a,
                         const Cell& b) {
  CellCompare out;
  if (a.is_null() || b.is_null()) return out;
  auto numeric = [&](const Cell& c, double* v) {
    if (c.is_number()) {
      *v = c.number;
      return true;
    }
    const rdf::Term& t = store.term(c.term);
    if (t.is_numeric_literal()) {
      *v = t.AsDouble();
      return true;
    }
    return false;
  };
  double va, vb;
  if (numeric(a, &va) && numeric(b, &vb)) {
    out.comparable = true;
    out.cmp = va < vb ? -1 : (va > vb ? 1 : 0);
    return out;
  }
  if (a.is_term() && b.is_term()) {
    const rdf::Term& ta = store.term(a.term);
    const rdf::Term& tb = store.term(b.term);
    // Different kinds (IRI vs literal) are only ==-comparable.
    out.comparable = true;
    if (ta.kind != tb.kind) {
      out.cmp = ta.kind < tb.kind ? -1 : 1;
      return out;
    }
    int c = ta.value.compare(tb.value);
    out.cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
    return out;
  }
  return out;  // mixed number vs non-numeric term: incomparable
}

/// Evaluates a filter expression. LookupFn: const std::string& -> Cell.
template <typename LookupFn>
Ebv EvalExpr(const rdf::TripleStore& store, const Expr& e,
             const LookupFn& lookup) {
  switch (e.kind) {
    case ExprKind::kConstant: {
      // EBV of a constant: boolean literals, non-zero numbers, non-empty
      // strings.
      const rdf::Term& t = e.constant;
      if (t.literal_type == rdf::LiteralType::kBoolean) {
        return t.value == "true" ? Ebv::kTrue : Ebv::kFalse;
      }
      if (t.is_numeric_literal()) {
        return t.AsDouble() != 0.0 ? Ebv::kTrue : Ebv::kFalse;
      }
      return t.value.empty() ? Ebv::kFalse : Ebv::kTrue;
    }
    case ExprKind::kVariable: {
      Cell c = lookup(e.var.name);
      if (c.is_null()) return Ebv::kError;
      if (c.is_number()) return c.number != 0.0 ? Ebv::kTrue : Ebv::kFalse;
      const rdf::Term& t = store.term(c.term);
      if (t.literal_type == rdf::LiteralType::kBoolean) {
        return t.value == "true" ? Ebv::kTrue : Ebv::kFalse;
      }
      if (t.is_numeric_literal()) {
        return t.AsDouble() != 0.0 ? Ebv::kTrue : Ebv::kFalse;
      }
      return Ebv::kTrue;
    }
    case ExprKind::kCompare: {
      // Evaluate operands to cells.
      auto operand = [&](const Expr& child) -> Cell {
        if (child.kind == ExprKind::kVariable) return lookup(child.var.name);
        if (child.kind == ExprKind::kConstant) {
          if (child.constant.is_numeric_literal()) {
            return Cell::OfNumber(child.constant.AsDouble());
          }
          rdf::TermId id = store.Lookup(child.constant);
          if (id != rdf::kInvalidTermId) return Cell::OfTerm(id);
          // Constant not in the store: compare by materialized value.
          // Represent as number for numerics (handled above); for other
          // terms fall back to lexical comparison through a pseudo-null.
          return Cell::Null();
        }
        return Cell::Null();
      };
      Cell lhs = operand(*e.children[0]);
      Cell rhs = operand(*e.children[1]);
      // Special-case a constant term missing from the dictionary: equal to
      // nothing, unequal to everything bound.
      auto missing_const = [&](const Expr& child, const Cell& cell) {
        return child.kind == ExprKind::kConstant &&
               !child.constant.is_numeric_literal() && cell.is_null();
      };
      bool lhs_missing = missing_const(*e.children[0], lhs);
      bool rhs_missing = missing_const(*e.children[1], rhs);
      if (lhs_missing || rhs_missing) {
        const Cell& other = lhs_missing ? rhs : lhs;
        if (other.is_null()) return Ebv::kError;
        if (e.op == CompareOp::kEq) return Ebv::kFalse;
        if (e.op == CompareOp::kNe) return Ebv::kTrue;
        // Ordering against a missing term: compare lexically with its
        // string form.
        const Expr& cexpr = lhs_missing ? *e.children[0] : *e.children[1];
        std::string other_str;
        if (other.is_number()) return Ebv::kError;
        other_str = store.term(other.term).value;
        int c = lhs_missing ? cexpr.constant.value.compare(other_str)
                            : other_str.compare(cexpr.constant.value);
        // c is "lhs vs rhs" ordering.
        switch (e.op) {
          case CompareOp::kLt:
            return c < 0 ? Ebv::kTrue : Ebv::kFalse;
          case CompareOp::kLe:
            return c <= 0 ? Ebv::kTrue : Ebv::kFalse;
          case CompareOp::kGt:
            return c > 0 ? Ebv::kTrue : Ebv::kFalse;
          case CompareOp::kGe:
            return c >= 0 ? Ebv::kTrue : Ebv::kFalse;
          default:
            return Ebv::kError;
        }
      }
      CellCompare cc = CompareCells(store, lhs, rhs);
      if (!cc.comparable) return Ebv::kError;
      bool r = false;
      switch (e.op) {
        case CompareOp::kEq:
          r = cc.cmp == 0;
          break;
        case CompareOp::kNe:
          r = cc.cmp != 0;
          break;
        case CompareOp::kLt:
          r = cc.cmp < 0;
          break;
        case CompareOp::kLe:
          r = cc.cmp <= 0;
          break;
        case CompareOp::kGt:
          r = cc.cmp > 0;
          break;
        case CompareOp::kGe:
          r = cc.cmp >= 0;
          break;
      }
      return r ? Ebv::kTrue : Ebv::kFalse;
    }
    case ExprKind::kAnd: {
      Ebv acc = Ebv::kTrue;
      for (const ExprPtr& c : e.children) {
        acc = EbvAnd(acc, EvalExpr(store, *c, lookup));
        if (acc == Ebv::kFalse) return acc;
      }
      return acc;
    }
    case ExprKind::kOr: {
      Ebv acc = Ebv::kFalse;
      for (const ExprPtr& c : e.children) {
        acc = EbvOr(acc, EvalExpr(store, *c, lookup));
        if (acc == Ebv::kTrue) return acc;
      }
      return acc;
    }
    case ExprKind::kNot:
      return EbvNot(EvalExpr(store, *e.children[0], lookup));
    case ExprKind::kIn: {
      Cell c = lookup(e.var.name);
      if (c.is_null()) return Ebv::kError;
      for (const rdf::Term& t : e.in_list) {
        Cell rhs;
        if (t.is_numeric_literal()) {
          rhs = Cell::OfNumber(t.AsDouble());
        } else {
          rdf::TermId id = store.Lookup(t);
          if (id == rdf::kInvalidTermId) continue;
          rhs = Cell::OfTerm(id);
        }
        CellCompare cc = CompareCells(store, c, rhs);
        if (cc.comparable && cc.cmp == 0) return Ebv::kTrue;
      }
      return Ebv::kFalse;
    }
    case ExprKind::kBound: {
      return lookup(e.var.name).is_null() ? Ebv::kFalse : Ebv::kTrue;
    }
  }
  return Ebv::kError;
}

/// Running state of one aggregate.
struct AggState {
  double sum = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  uint64_t count = 0;
  std::set<rdf::TermId> distinct_terms;  // only used by COUNT(DISTINCT ?v)

  void Update(double v) {
    sum += v;
    min = std::min(min, v);
    max = std::max(max, v);
    ++count;
  }

  void UpdateDistinct(rdf::TermId id) { distinct_terms.insert(id); }

  double Finish(AggFunc f) const {
    switch (f) {
      case AggFunc::kSum:
        return sum;
      case AggFunc::kMin:
        return count ? min : 0.0;
      case AggFunc::kMax:
        return count ? max : 0.0;
      case AggFunc::kAvg:
        return count ? sum / static_cast<double>(count) : 0.0;
      case AggFunc::kCount:
        return static_cast<double>(count);
    }
    return 0.0;
  }
};

struct VecHash {
  size_t operator()(const std::vector<rdf::TermId>& v) const {
    size_t h = 14695981039346656037ULL;
    for (rdf::TermId id : v) {
      h ^= id;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

/// Join executor: index nested loop join over the planned steps with
/// early filters and timeout checks.
class JoinRunner {
 public:
  JoinRunner(const rdf::TripleStore& store, const Plan& plan,
             const ExecOptions& options, ExecStats* stats)
      : store_(store), plan_(plan), options_(options), stats_(stats) {}

  /// Runs the join; calls `on_row(bindings)` for every complete binding.
  /// When `row_cap` is non-zero the join stops early after producing that
  /// many rows (safe only when no later operator reorders/merges rows).
  /// Returns non-OK on timeout.
  template <typename RowFn>
  util::Status Run(RowFn&& on_row, uint64_t row_cap = 0) {
    bindings_.assign(plan_.slot_count, rdf::kInvalidTermId);
    row_cap_ = row_cap;
    rows_emitted_ = 0;
    stopped_ = false;
    timer_.Restart();
    return Step(0, on_row);
  }

 private:
  util::Status CheckTimeout() {
    if (options_.timeout_millis == 0) return util::Status::OK();
    if (++ops_ % kTimeoutCheckInterval != 0) return util::Status::OK();
    if (timer_.ElapsedMillis() >
        static_cast<double>(options_.timeout_millis)) {
      return util::Status::Timeout("query exceeded " +
                                   std::to_string(options_.timeout_millis) +
                                   " ms");
    }
    return util::Status::OK();
  }

  Cell LookupVar(const std::string& name) const {
    int slot = plan_.SlotOf(name);
    if (slot < 0 || bindings_[slot] == rdf::kInvalidTermId) {
      return Cell::Null();
    }
    return Cell::OfTerm(bindings_[slot]);
  }

  util::Status ApplyFiltersAfter(size_t step, bool* pass) {
    *pass = true;
    for (const PlannedFilter& pf : plan_.filters) {
      if (pf.apply_after_step != step) continue;
      Ebv v = EvalExpr(store_, *pf.expr,
                       [this](const std::string& n) { return LookupVar(n); });
      if (v != Ebv::kTrue) {
        *pass = false;
        return util::Status::OK();
      }
    }
    return util::Status::OK();
  }

  template <typename RowFn>
  util::Status Step(size_t step, RowFn& on_row) {
    if (step == 0) {
      bool pass = true;
      RE2X_RETURN_IF_ERROR(ApplyFiltersAfter(0, &pass));
      if (!pass) return util::Status::OK();
    }
    if (step == plan_.steps.size()) {
      return OptionalStep(0, on_row);
    }
    if (stopped_) return util::Status::OK();
    const PhysicalPattern& pp = plan_.steps[step];
    rdf::TriplePattern q;
    auto fix = [&](rdf::TermId cid, int slot) -> rdf::TermId {
      if (cid != rdf::kInvalidTermId) return cid;
      if (slot >= 0 && bindings_[slot] != rdf::kInvalidTermId) {
        return bindings_[slot];
      }
      return rdf::kInvalidTermId;
    };
    q.s = fix(pp.s_id, pp.s_slot);
    q.p = fix(pp.p_id, pp.p_slot);
    q.o = fix(pp.o_id, pp.o_slot);

    for (const rdf::EncodedTriple& t : store_.Match(q)) {
      if (stopped_) return util::Status::OK();
      if (stats_) ++stats_->triples_scanned;
      RE2X_RETURN_IF_ERROR(CheckTimeout());
      // Bind unbound slots; verify repeated-variable consistency.
      int newly_bound[3];
      int n_new = 0;
      bool consistent = true;
      auto bind = [&](int slot, rdf::TermId value) {
        if (slot < 0) return;
        if (bindings_[slot] == rdf::kInvalidTermId) {
          bindings_[slot] = value;
          newly_bound[n_new++] = slot;
        } else if (bindings_[slot] != value) {
          consistent = false;
        }
      };
      bind(pp.s_slot, t.s);
      if (consistent) bind(pp.p_slot, t.p);
      if (consistent) bind(pp.o_slot, t.o);
      if (consistent) {
        bool pass = true;
        RE2X_RETURN_IF_ERROR(ApplyFiltersAfter(step + 1, &pass));
        if (pass) {
          util::Status st = Step(step + 1, on_row);
          if (!st.ok()) {
            for (int i = 0; i < n_new; ++i) {
              bindings_[newly_bound[i]] = rdf::kInvalidTermId;
            }
            return st;
          }
        }
      }
      for (int i = 0; i < n_new; ++i) {
        bindings_[newly_bound[i]] = rdf::kInvalidTermId;
      }
    }
    return util::Status::OK();
  }

  // Left-join extension: tries to match optional block `block`; every
  // complete extension recurses into the next block, and a block with no
  // match falls through with its variables left unbound.
  template <typename RowFn>
  util::Status OptionalStep(size_t block, RowFn& on_row) {
    if (stopped_) return util::Status::OK();
    if (block == plan_.optionals.size()) {
      // Filters that could not be attached to the mandatory join.
      for (const ExprPtr& f : plan_.post_optional_filters) {
        Ebv v = EvalExpr(store_, *f, [this](const std::string& n) {
          return LookupVar(n);
        });
        if (v != Ebv::kTrue) return util::Status::OK();
      }
      if (stats_) ++stats_->intermediate_bindings;
      on_row(bindings_);
      if (row_cap_ != 0 && ++rows_emitted_ >= row_cap_) stopped_ = true;
      return CheckTimeout();
    }
    const PlannedOptional& po = plan_.optionals[block];
    if (po.never_matches || po.steps.empty()) {
      return OptionalStep(block + 1, on_row);
    }
    bool matched = false;
    RE2X_RETURN_IF_ERROR(OptionalPattern(block, 0, &matched, on_row));
    if (!matched && !stopped_) return OptionalStep(block + 1, on_row);
    return util::Status::OK();
  }

  template <typename RowFn>
  util::Status OptionalPattern(size_t block, size_t idx, bool* matched,
                               RowFn& on_row) {
    const PlannedOptional& po = plan_.optionals[block];
    if (idx == po.steps.size()) {
      *matched = true;
      return OptionalStep(block + 1, on_row);
    }
    const PhysicalPattern& pp = po.steps[idx];
    rdf::TriplePattern q;
    auto fix = [&](rdf::TermId cid, int slot) -> rdf::TermId {
      if (cid != rdf::kInvalidTermId) return cid;
      if (slot >= 0 && bindings_[slot] != rdf::kInvalidTermId) {
        return bindings_[slot];
      }
      return rdf::kInvalidTermId;
    };
    q.s = fix(pp.s_id, pp.s_slot);
    q.p = fix(pp.p_id, pp.p_slot);
    q.o = fix(pp.o_id, pp.o_slot);
    for (const rdf::EncodedTriple& t : store_.Match(q)) {
      if (stopped_) return util::Status::OK();
      if (stats_) ++stats_->triples_scanned;
      RE2X_RETURN_IF_ERROR(CheckTimeout());
      int newly_bound[3];
      int n_new = 0;
      bool consistent = true;
      auto bind = [&](int slot, rdf::TermId value) {
        if (slot < 0) return;
        if (bindings_[slot] == rdf::kInvalidTermId) {
          bindings_[slot] = value;
          newly_bound[n_new++] = slot;
        } else if (bindings_[slot] != value) {
          consistent = false;
        }
      };
      bind(pp.s_slot, t.s);
      if (consistent) bind(pp.p_slot, t.p);
      if (consistent) bind(pp.o_slot, t.o);
      if (consistent) {
        util::Status st = OptionalPattern(block, idx + 1, matched, on_row);
        if (!st.ok()) {
          for (int i = 0; i < n_new; ++i) {
            bindings_[newly_bound[i]] = rdf::kInvalidTermId;
          }
          return st;
        }
      }
      for (int i = 0; i < n_new; ++i) {
        bindings_[newly_bound[i]] = rdf::kInvalidTermId;
      }
    }
    return util::Status::OK();
  }

  const rdf::TripleStore& store_;
  const Plan& plan_;
  const ExecOptions& options_;
  ExecStats* stats_;
  std::vector<rdf::TermId> bindings_;
  util::WallTimer timer_;
  uint64_t ops_ = 0;
  uint64_t row_cap_ = 0;
  uint64_t rows_emitted_ = 0;
  bool stopped_ = false;
};

/// Orders cells for ORDER BY / DISTINCT: nulls < numbers < terms.
int OrderCells(const rdf::TripleStore& store, const Cell& a, const Cell& b) {
  if (a.kind != b.kind) {
    return static_cast<int>(a.kind) < static_cast<int>(b.kind) ? -1 : 1;
  }
  switch (a.kind) {
    case Cell::Kind::kNull:
      return 0;
    case Cell::Kind::kNumber:
      return a.number < b.number ? -1 : (a.number > b.number ? 1 : 0);
    case Cell::Kind::kTerm: {
      CellCompare cc = CompareCells(store, a, b);
      if (cc.comparable) return cc.cmp;
      return a.term < b.term ? -1 : (a.term > b.term ? 1 : 0);
    }
  }
  return 0;
}

}  // namespace

util::Result<ResultTable> Execute(const rdf::TripleStore& store,
                                  const SelectQuery& query,
                                  const ExecOptions& options,
                                  ExecStats* stats) {
  util::WallTimer total_timer;

  // ASK: rewrite into an early-exiting LIMIT-1 existence probe and wrap
  // the answer as a one-cell boolean table (column "ask", 1 or 0).
  if (query.is_ask) {
    SelectQuery probe = query;
    probe.is_ask = false;
    probe.distinct = false;
    probe.select_all = false;
    probe.items.clear();
    probe.group_by.clear();
    probe.having.clear();
    probe.order_by.clear();
    probe.limit = 1;
    probe.offset = 0;
    // Project the first variable mentioned in the BGP; a fully constant
    // BGP degenerates to counting matches.
    for (const TriplePatternAst& tp : query.patterns) {
      for (const TermOrVar* pos : {&tp.s, &tp.p, &tp.o}) {
        if (IsVar(*pos)) {
          SelectItem item;
          item.var = AsVar(*pos);
          probe.items.push_back(std::move(item));
          break;
        }
      }
      if (!probe.items.empty()) break;
    }
    if (probe.items.empty()) {
      SelectItem item;
      item.is_aggregate = true;
      item.func = AggFunc::kCount;
      item.count_star = true;
      item.alias = "n";
      probe.items.push_back(std::move(item));
      probe.limit.reset();
    }
    RE2X_ASSIGN_OR_RETURN(ResultTable sub,
                          Execute(store, probe, options, stats));
    bool answer = false;
    if (!sub.rows().empty()) {
      answer = sub.columns()[0] == "n"
                   ? sub.NumericValue(sub.at(0, 0)) > 0
                   : true;
    }
    ResultTable out(&store, {"ask"});
    out.AddRow({Cell::OfNumber(answer ? 1.0 : 0.0)});
    return out;
  }

  // --- validate & derive output columns ------------------------------------
  const bool aggregating = query.has_aggregates() || !query.group_by.empty();
  std::vector<SelectItem> items = query.items;
  util::WallTimer plan_timer;
  RE2X_ASSIGN_OR_RETURN(Plan plan,
                        PlanQuery(store, query, options.plan));
  if (stats) stats->plan_millis = plan_timer.ElapsedMillis();

  if (query.select_all) {
    if (aggregating) {
      return util::Status::InvalidArgument(
          "SELECT * cannot be combined with aggregation");
    }
    // All user variables (skip internal `__` path vars), ordered by slot.
    std::vector<std::pair<int, std::string>> vars;
    for (const auto& [name, slot] : plan.var_slots) {
      if (name.rfind("__", 0) == 0) continue;
      vars.emplace_back(slot, name);
    }
    std::sort(vars.begin(), vars.end());
    items.clear();
    for (auto& [slot, name] : vars) {
      SelectItem it;
      it.var = Variable{name};
      items.push_back(std::move(it));
    }
  }
  if (items.empty()) {
    return util::Status::InvalidArgument("query projects no columns");
  }
  if (aggregating) {
    for (const SelectItem& it : items) {
      if (it.is_aggregate) continue;
      bool in_group = false;
      for (const Variable& g : query.group_by) {
        if (g.name == it.var.name) {
          in_group = true;
          break;
        }
      }
      if (!in_group) {
        return util::Status::InvalidArgument(
            "projected variable ?" + it.var.name +
            " must appear in GROUP BY when aggregating");
      }
    }
  }

  std::vector<std::string> columns;
  columns.reserve(items.size());
  for (const SelectItem& it : items) columns.push_back(it.OutputName());
  ResultTable table(&store, columns);

  if (plan.impossible) {
    if (stats) stats->exec_millis = total_timer.ElapsedMillis();
    return table;  // provably empty
  }

  // Slots needed for projection.
  std::vector<int> item_slots(items.size(), -1);
  for (size_t i = 0; i < items.size(); ++i) {
    if (!items[i].is_aggregate || !items[i].count_star) {
      item_slots[i] = plan.SlotOf(items[i].var.name);
    }
  }

  JoinRunner runner(store, plan, options, stats);

  if (!aggregating) {
    // LIMIT can stop the join early when no later operator needs the full
    // row set (this is what makes ReOLAP's LIMIT-1 validation probes
    // cheap).
    uint64_t row_cap = 0;
    if (query.limit.has_value() && !query.distinct &&
        query.order_by.empty() && query.having.empty()) {
      row_cap = query.offset + *query.limit;
    }
    util::Status st = runner.Run(
        [&](const std::vector<rdf::TermId>& bindings) {
          Row row(items.size());
          for (size_t i = 0; i < items.size(); ++i) {
            int slot = item_slots[i];
            row[i] = (slot >= 0 && bindings[slot] != rdf::kInvalidTermId)
                         ? Cell::OfTerm(bindings[slot])
                         : Cell::Null();
          }
          table.AddRow(std::move(row));
        },
        row_cap);
    RE2X_RETURN_IF_ERROR(st);
  } else {
    // Group keys = group_by slots (in declared order).
    std::vector<int> group_slots;
    group_slots.reserve(query.group_by.size());
    for (const Variable& g : query.group_by) {
      group_slots.push_back(plan.SlotOf(g.name));
    }
    struct Group {
      std::vector<AggState> aggs;
    };
    std::unordered_map<std::vector<rdf::TermId>, Group, VecHash> groups;
    size_t n_aggs = 0;
    for (const SelectItem& it : items) n_aggs += it.is_aggregate ? 1 : 0;

    util::Status st =
        runner.Run([&](const std::vector<rdf::TermId>& bindings) {
          std::vector<rdf::TermId> key(group_slots.size());
          for (size_t i = 0; i < group_slots.size(); ++i) {
            key[i] = group_slots[i] >= 0 ? bindings[group_slots[i]]
                                         : rdf::kInvalidTermId;
          }
          Group& g = groups[key];
          if (g.aggs.empty()) g.aggs.resize(n_aggs);
          size_t agg_idx = 0;
          for (size_t i = 0; i < items.size(); ++i) {
            if (!items[i].is_aggregate) continue;
            AggState& state = g.aggs[agg_idx++];
            if (items[i].count_star) {
              state.Update(0.0);  // COUNT(*): value irrelevant
            } else {
              int slot = item_slots[i];
              if (slot >= 0 && bindings[slot] != rdf::kInvalidTermId) {
                if (items[i].distinct_agg) {
                  state.UpdateDistinct(bindings[slot]);
                } else {
                  state.Update(store.term(bindings[slot]).AsDouble());
                }
              }
            }
          }
          if (n_aggs == 0) {
            // Pure GROUP BY without aggregates: the group itself is a row;
            // ensure the group exists (done by groups[key] above).
          }
        });
    RE2X_RETURN_IF_ERROR(st);

    for (const auto& [key, group] : groups) {
      Row row(items.size());
      size_t agg_idx = 0;
      size_t key_pos;
      for (size_t i = 0; i < items.size(); ++i) {
        if (items[i].is_aggregate) {
          const AggState& state = group.aggs[agg_idx];
          row[i] = Cell::OfNumber(
              items[i].distinct_agg
                  ? static_cast<double>(state.distinct_terms.size())
                  : state.Finish(items[i].func));
          ++agg_idx;
          continue;
        }
        // Find this variable's position in the group key.
        key_pos = 0;
        for (size_t gi = 0; gi < query.group_by.size(); ++gi) {
          if (query.group_by[gi].name == items[i].var.name) {
            key_pos = gi;
            break;
          }
        }
        row[i] = key[key_pos] != rdf::kInvalidTermId ? Cell::OfTerm(key[key_pos])
                                                     : Cell::Null();
      }
      table.AddRow(std::move(row));
    }
  }

  // --- HAVING ---------------------------------------------------------------
  if (!query.having.empty()) {
    std::vector<Row>& rows = table.mutable_rows();
    std::vector<Row> kept;
    kept.reserve(rows.size());
    for (Row& row : rows) {
      auto lookup = [&](const std::string& name) -> Cell {
        int idx = table.ColumnIndex(name);
        return idx < 0 ? Cell::Null() : row[idx];
      };
      bool pass = true;
      for (const ExprPtr& h : query.having) {
        if (EvalExpr(store, *h, lookup) != Ebv::kTrue) {
          pass = false;
          break;
        }
      }
      if (pass) kept.push_back(std::move(row));
    }
    rows.swap(kept);
  }

  // --- DISTINCT ---------------------------------------------------------------
  if (query.distinct) {
    std::vector<Row>& rows = table.mutable_rows();
    auto row_less = [&](const Row& a, const Row& b) {
      for (size_t i = 0; i < a.size(); ++i) {
        int c = OrderCells(store, a[i], b[i]);
        if (c != 0) return c < 0;
      }
      return false;
    };
    std::sort(rows.begin(), rows.end(), row_less);
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  }

  // --- ORDER BY ---------------------------------------------------------------
  if (!query.order_by.empty()) {
    std::vector<std::pair<int, bool>> keys;  // column index, ascending
    for (const OrderKey& k : query.order_by) {
      int idx = table.ColumnIndex(k.column);
      if (idx < 0) {
        return util::Status::InvalidArgument("ORDER BY references unknown column ?" +
                                             k.column);
      }
      keys.emplace_back(idx, k.ascending);
    }
    std::vector<Row>& rows = table.mutable_rows();
    std::stable_sort(rows.begin(), rows.end(),
                     [&](const Row& a, const Row& b) {
                       for (auto [idx, asc] : keys) {
                         int c = OrderCells(store, a[idx], b[idx]);
                         if (c != 0) return asc ? c < 0 : c > 0;
                       }
                       return false;
                     });
  }

  // --- OFFSET / LIMIT -----------------------------------------------------------
  if (query.offset > 0 || query.limit.has_value()) {
    std::vector<Row>& rows = table.mutable_rows();
    size_t begin = std::min<size_t>(query.offset, rows.size());
    size_t end = rows.size();
    if (query.limit.has_value()) {
      end = std::min<size_t>(begin + *query.limit, rows.size());
    }
    std::vector<Row> sliced(rows.begin() + begin, rows.begin() + end);
    rows.swap(sliced);
  }

  if (stats) stats->exec_millis = total_timer.ElapsedMillis();
  return table;
}

util::Result<ResultTable> ExecuteText(const rdf::TripleStore& store,
                                      std::string_view sparql,
                                      const ExecOptions& options,
                                      ExecStats* stats) {
  RE2X_ASSIGN_OR_RETURN(SelectQuery q, ParseQuery(sparql));
  return Execute(store, q, options, stats);
}

}  // namespace re2xolap::sparql
