// Orchestration of the parse→plan→execute pipeline for one query. The
// heavy lifting lives in dedicated translation units: filter evaluation
// in ebv.cc, the index nested-loop join in join_runner.cc, aggregation
// and the post-join operator pipeline in post_ops.cc. This file only
// sequences them and assembles the profile tree.
#include "sparql/executor.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "sparql/explain.h"
#include "sparql/join_runner.h"
#include "sparql/parser.h"
#include "sparql/post_ops.h"
#include "sparql/vectorized_runner.h"
#include "util/timer.h"

namespace re2xolap::sparql {

ExecutorKind DefaultExecutorKind() {
  static const ExecutorKind kind = [] {
    const char* env = std::getenv("RE2XOLAP_EXECUTOR");
    if (env != nullptr && std::strcmp(env, "volcano") == 0) {
      return ExecutorKind::kVolcano;
    }
    return ExecutorKind::kVectorized;
  }();
  return kind;
}

namespace {

std::unique_ptr<JoinExecutor> MakeJoinExecutor(const rdf::TripleStore& store,
                                               const Plan& plan,
                                               const ExecOptions& options,
                                               ExecStats* stats) {
  if (ResolveExecutor(options.executor) == ExecutorKind::kVolcano) {
    return std::make_unique<JoinRunner>(store, plan, options, stats);
  }
  return std::make_unique<VectorizedRunner>(store, plan, options, stats);
}

/// ASK: rewrite into an early-exiting LIMIT-1 existence probe and wrap
/// the answer as a one-cell boolean table (column "ask", 1 or 0).
util::Result<ResultTable> ExecuteAsk(const rdf::TripleStore& store,
                                     const SelectQuery& query,
                                     const ExecOptions& options,
                                     ExecStats* stats) {
  util::WallTimer total_timer;
  obs::Span exec_span("sparql.execute");
  exec_span.SetAttr("patterns", static_cast<uint64_t>(query.patterns.size()));
  static obs::Counter& queries_total =
      obs::MetricsRegistry::Global().GetCounter("sparql.queries");
  queries_total.Inc();

  SelectQuery probe = query;
  probe.is_ask = false;
  probe.distinct = false;
  probe.select_all = false;
  probe.items.clear();
  probe.group_by.clear();
  probe.having.clear();
  probe.order_by.clear();
  probe.limit = 1;
  probe.offset = 0;
  // Project the first variable mentioned in the BGP; a fully constant
  // BGP degenerates to counting matches.
  for (const TriplePatternAst& tp : query.patterns) {
    for (const TermOrVar* pos : {&tp.s, &tp.p, &tp.o}) {
      if (IsVar(*pos)) {
        SelectItem item;
        item.var = AsVar(*pos);
        probe.items.push_back(std::move(item));
        break;
      }
    }
    if (!probe.items.empty()) break;
  }
  if (probe.items.empty()) {
    SelectItem item;
    item.is_aggregate = true;
    item.func = AggFunc::kCount;
    item.count_star = true;
    item.alias = "n";
    probe.items.push_back(std::move(item));
    probe.limit.reset();
  }
  RE2X_ASSIGN_OR_RETURN(ResultTable sub, Execute(store, probe, options, stats));
  bool answer = false;
  if (!sub.rows().empty()) {
    answer =
        sub.columns()[0] == "n" ? sub.NumericValue(sub.at(0, 0)) > 0 : true;
  }
  ResultTable out(&store, {"ask"});
  out.AddRow({Cell::OfNumber(answer ? 1.0 : 0.0)});
  if (stats) {
    // Wrap the probe's operator tree under an "ask" root.
    const double ask_millis = total_timer.ElapsedMillis();
    obs::ProfileNode root("ask");
    root.rows_out = 1;
    root.millis = ask_millis;
    root.timed = true;
    root.children.push_back(std::move(stats->profile));
    stats->profile = std::move(root);
    stats->exec_millis = ask_millis;
  }
  return out;
}

/// Derives the effective projection list: SELECT * expansion (all user
/// variables, ordered by slot) and aggregation validity checks.
util::Status DeriveItems(const SelectQuery& query, const Plan& plan,
                         bool aggregating, std::vector<SelectItem>* items) {
  if (query.select_all) {
    if (aggregating) {
      return util::Status::InvalidArgument(
          "SELECT * cannot be combined with aggregation");
    }
    // All user variables (skip internal `__` path vars), ordered by slot.
    std::vector<std::pair<int, std::string>> vars;
    for (const auto& [name, slot] : plan.var_slots) {
      if (name.rfind("__", 0) == 0) continue;
      vars.emplace_back(slot, name);
    }
    std::sort(vars.begin(), vars.end());
    items->clear();
    for (auto& [slot, name] : vars) {
      SelectItem it;
      it.var = Variable{name};
      items->push_back(std::move(it));
    }
  }
  if (items->empty()) {
    return util::Status::InvalidArgument("query projects no columns");
  }
  if (aggregating) {
    for (const SelectItem& it : *items) {
      if (it.is_aggregate) continue;
      bool in_group = false;
      for (const Variable& g : query.group_by) {
        if (g.name == it.var.name) {
          in_group = true;
          break;
        }
      }
      if (!in_group) {
        return util::Status::InvalidArgument(
            "projected variable ?" + it.var.name +
            " must appear in GROUP BY when aggregating");
      }
    }
  }
  return util::Status::OK();
}

/// Assembles the per-operator profile tree for one run. The join renders
/// as a chain: each mandatory step nests under the previous one, then the
/// OPTIONAL blocks, innermost last — mirroring the pipeline order at
/// execution time (identical for both join cores).
void BuildProfileTree(const rdf::TripleStore& store, const SelectQuery& query,
                      const Plan& plan, const JoinExecutor& runner,
                      bool aggregating, double join_ms, double agg_ms,
                      size_t group_count,
                      const std::vector<PostOpProf>& post_ops,
                      const ResultTable& table, ExecStats* stats) {
  std::vector<std::string> slot_names(plan.slot_count);
  for (const auto& [name, slot] : plan.var_slots) {
    if (slot >= 0 && static_cast<size_t>(slot) < slot_names.size()) {
      slot_names[slot] = name;
    }
  }

  obs::ProfileNode root("select");
  root.rows_out = table.rows().size();
  root.millis = stats->exec_millis;
  root.timed = true;
  {
    obs::ProfileNode& pn = root.AddChild("plan");
    pn.millis = stats->plan_millis;
    pn.timed = true;
  }

  obs::ProfileNode join(runner.join_label());
  join.rows_out = runner.emitted();
  join.millis = join_ms;
  join.timed = true;
  const bool timed_steps = runner.timing();
  obs::ProfileNode* cur = &join;
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    obs::ProfileNode& child =
        cur->AddChild(PatternLabel(store, slot_names, plan.steps[i], "scan"));
    const StepProf& sp = runner.step_prof()[i];
    child.rows_in = sp.rows_in;
    child.rows_out = sp.rows_out;
    child.scanned = sp.scanned;
    child.millis = sp.micros / 1000.0;
    child.timed = timed_steps;
    cur = &child;
  }
  for (size_t b = 0; b < plan.optionals.size(); ++b) {
    const PlannedOptional& po = plan.optionals[b];
    std::string label =
        po.steps.empty()
            ? "optional (empty)"
            : PatternLabel(store, slot_names, po.steps[0], "optional");
    if (po.steps.size() > 1) {
      label += " +" + std::to_string(po.steps.size() - 1);
    }
    obs::ProfileNode& child = cur->AddChild(std::move(label));
    const StepProf& op = runner.opt_prof()[b];
    child.rows_in = op.rows_in;
    child.rows_out = op.rows_out;
    child.scanned = op.scanned;
    child.millis = op.micros / 1000.0;
    child.timed = timed_steps;
    cur = &child;
  }
  root.children.push_back(std::move(join));

  if (aggregating) {
    std::string label = "aggregate";
    if (!query.group_by.empty()) {
      label += " (group by";
      for (const Variable& g : query.group_by) label += " ?" + g.name;
      label += ")";
    }
    obs::ProfileNode& agg = root.AddChild(std::move(label));
    agg.rows_in = runner.emitted();
    agg.rows_out = group_count;
    agg.millis = agg_ms;
    agg.timed = true;
  }
  for (const PostOpProf& op : post_ops) {
    obs::ProfileNode& n = root.AddChild(op.label);
    n.rows_in = op.rows_in;
    n.rows_out = op.rows_out;
    n.millis = op.millis;
    n.timed = true;
  }
  stats->profile = std::move(root);
}

util::Result<ResultTable> ExecutePlanImpl(const rdf::TripleStore& store,
                                          const SelectQuery& query,
                                          const Plan& plan,
                                          const ExecOptions& options,
                                          ExecStats* stats);

util::Result<ResultTable> ExecuteImpl(const rdf::TripleStore& store,
                                      const SelectQuery& query,
                                      const ExecOptions& options,
                                      ExecStats* stats) {
  if (query.is_ask) return ExecuteAsk(store, query, options, stats);
  util::WallTimer plan_timer;
  RE2X_ASSIGN_OR_RETURN(Plan plan, PlanQuery(store, query, options.plan));
  if (stats) stats->plan_millis = plan_timer.ElapsedMillis();
  return ExecutePlanImpl(store, query, plan, options, stats);
}

util::Result<ResultTable> ExecutePlanImpl(const rdf::TripleStore& store,
                                          const SelectQuery& query,
                                          const Plan& plan,
                                          const ExecOptions& options,
                                          ExecStats* stats) {
  // A prebuilt plan cannot represent an ASK query (the rewrite precedes
  // planning) — fall back to the planning path.
  if (query.is_ask) return ExecuteAsk(store, query, options, stats);

  util::WallTimer total_timer;
  obs::Span exec_span("sparql.execute");
  exec_span.SetAttr("patterns", static_cast<uint64_t>(query.patterns.size()));
  static obs::Counter& queries_total =
      obs::MetricsRegistry::Global().GetCounter("sparql.queries");
  static obs::Histogram& exec_hist =
      obs::MetricsRegistry::Global().GetHistogram("sparql.exec.millis");
  queries_total.Inc();

  const bool aggregating = query.has_aggregates() || !query.group_by.empty();
  std::vector<SelectItem> items = query.items;
  RE2X_RETURN_IF_ERROR(DeriveItems(query, plan, aggregating, &items));

  std::vector<std::string> columns;
  columns.reserve(items.size());
  for (const SelectItem& it : items) columns.push_back(it.OutputName());
  ResultTable table(&store, columns);

  if (plan.impossible) {
    if (stats) {
      stats->exec_millis = total_timer.ElapsedMillis();
      obs::ProfileNode root("select");
      root.millis = stats->exec_millis;
      root.timed = true;
      obs::ProfileNode& pn =
          root.AddChild("plan (impossible: constant term absent)");
      pn.millis = stats->plan_millis;
      pn.timed = true;
      stats->profile = std::move(root);
    }
    exec_hist.Observe(total_timer.ElapsedMillis());
    return table;  // provably empty
  }

  // Slots needed for projection.
  std::vector<int> item_slots(items.size(), -1);
  for (size_t i = 0; i < items.size(); ++i) {
    if (!items[i].is_aggregate || !items[i].count_star) {
      item_slots[i] = plan.SlotOf(items[i].var.name);
    }
  }

  std::unique_ptr<JoinExecutor> runner_ptr =
      MakeJoinExecutor(store, plan, options, stats);
  JoinExecutor& runner = *runner_ptr;

  // Coarse per-operator observations for the profile tree: two clock
  // reads per operator per query, collected whenever a stats sink is
  // present (per-*binding* timing stays behind ExecOptions::profile).
  double join_ms = 0;
  double agg_ms = 0;
  size_t group_count = 0;
  std::vector<PostOpProf> post_ops;

  // The join + post-op pipeline runs inside a lambda so the profile tree
  // below is assembled on success AND error returns alike — a query the
  // guard kills mid-join still surfaces its partial operator tree in the
  // slow-query log.
  auto run = [&]() -> util::Status {
    if (!aggregating) {
      // LIMIT can stop the join early when no later operator needs the
      // full row set (this is what makes ReOLAP's LIMIT-1 validation
      // probes cheap).
      uint64_t row_cap = 0;
      if (query.limit.has_value() && !query.distinct &&
          query.order_by.empty() && query.having.empty()) {
        row_cap = query.offset + *query.limit;
      }
      util::WallTimer join_timer;
      util::Status st = runner.Run(
          [&](const std::vector<rdf::TermId>& bindings) {
            Row row(items.size());
            for (size_t i = 0; i < items.size(); ++i) {
              int slot = item_slots[i];
              row[i] = (slot >= 0 && bindings[slot] != rdf::kInvalidTermId)
                           ? Cell::OfTerm(bindings[slot])
                           : Cell::Null();
            }
            if (options.guard != nullptr) {
              options.guard->ChargeBytes(row.size() * sizeof(Cell));
            }
            table.AddRow(std::move(row));
          },
          row_cap);
      join_ms = join_timer.ElapsedMillis();
      RE2X_RETURN_IF_ERROR(st);
    } else {
      // Group keys = group_by slots (in declared order).
      std::vector<int> group_slots;
      group_slots.reserve(query.group_by.size());
      for (const Variable& g : query.group_by) {
        group_slots.push_back(plan.SlotOf(g.name));
      }
      GroupAggregator agg(store, items, item_slots, std::move(group_slots),
                          options.guard);
      util::WallTimer join_timer;
      util::Status st = runner.Run(
          [&](const std::vector<rdf::TermId>& bindings) {
            agg.Accumulate(bindings);
          },
          /*row_cap=*/0);
      join_ms = join_timer.ElapsedMillis();
      RE2X_RETURN_IF_ERROR(st);

      util::WallTimer agg_timer;
      RE2X_ASSIGN_OR_RETURN(group_count, agg.Emit(query.group_by, &table));
      agg_ms = agg_timer.ElapsedMillis();
    }

    RE2X_RETURN_IF_ERROR(
        ApplyHaving(store, query, &table, &post_ops, options.guard));
    if (query.distinct) {
      RE2X_RETURN_IF_ERROR(
          ApplyDistinct(store, &table, &post_ops, options.guard));
    }
    if (!query.order_by.empty()) {
      RE2X_RETURN_IF_ERROR(
          ApplyOrderBy(store, query, &table, &post_ops, options.guard));
    }
    if (query.offset > 0 || query.limit.has_value()) {
      RE2X_RETURN_IF_ERROR(
          ApplyLimitOffset(query, &table, &post_ops, options.guard));
    }
    return util::Status::OK();
  };

  util::Status run_status = run();
  if (stats) {
    stats->exec_millis = total_timer.ElapsedMillis();
    BuildProfileTree(store, query, plan, runner, aggregating, join_ms, agg_ms,
                     group_count, post_ops, table, stats);
  }
  exec_hist.Observe(total_timer.ElapsedMillis());
  RE2X_RETURN_IF_ERROR(run_status);
  exec_span.SetAttr("rows", static_cast<uint64_t>(table.rows().size()));
  return table;
}

/// Prefills the flight-recorder record of one top-level sparql::Execute
/// call (no-op for nested scopes: the ASK rewrite's inner probe, or an
/// execution already recorded by QueryEngine::Execute).
void BeginQueryRecord(obs::QueryRecordScope& scope,
                      const rdf::TripleStore& store, const SelectQuery& query,
                      const ExecOptions& options) {
  if (!scope.active()) return;
  obs::QueryRecord& rec = scope.rec();
  rec.freeze_epoch = store.freeze_epoch();
  rec.executor = static_cast<uint8_t>(ResolveExecutor(options.executor));
  scope.SetQueryText(ToSparql(query));
}

/// Stamps the call outcome on the record and, when the record qualifies
/// for slow capture, renders the operator tree before the stats sink (a
/// caller's or the wrapper's local) goes away.
util::Result<ResultTable> FinishQueryRecord(obs::QueryRecordScope& scope,
                                            const ExecStats* stats,
                                            util::Result<ResultTable> result) {
  if (!scope.active()) return result;
  obs::QueryRecord& rec = scope.rec();
  rec.status = static_cast<uint8_t>(result.ok() ? util::StatusCode::kOk
                                                : result.status().code());
  if (result.ok()) rec.rows_out = result.value().rows().size();
  if (stats != nullptr) {
    rec.triples_scanned = stats->triples_scanned;
    rec.intermediate_bindings = stats->intermediate_bindings;
    rec.plan_millis = stats->plan_millis;
    rec.exec_millis = stats->exec_millis;
  }
  if (stats != nullptr && !stats->profile.label.empty() &&
      scope.WillCapture()) {
    scope.SetDetail(RenderProfile(stats->profile, /*include_timing=*/true));
  }
  return result;
}

}  // namespace

util::Result<ResultTable> Execute(const rdf::TripleStore& store,
                                  const SelectQuery& query,
                                  const ExecOptions& options,
                                  ExecStats* stats) {
  obs::QueryRecordScope record(obs::QueryOp::kSparqlExecute);
  ExecStats local_stats;
  if (record.active()) {
    BeginQueryRecord(record, store, query, options);
    // A stats sink guarantees slow captures carry an operator tree.
    if (stats == nullptr) stats = &local_stats;
  }
  return FinishQueryRecord(record, stats,
                           ExecuteImpl(store, query, options, stats));
}

util::Result<ResultTable> Execute(const rdf::TripleStore& store,
                                  const SelectQuery& query, const Plan& plan,
                                  const ExecOptions& options,
                                  ExecStats* stats) {
  obs::QueryRecordScope record(obs::QueryOp::kSparqlExecute);
  ExecStats local_stats;
  if (record.active()) {
    BeginQueryRecord(record, store, query, options);
    if (stats == nullptr) stats = &local_stats;
  }
  return FinishQueryRecord(record, stats,
                           ExecutePlanImpl(store, query, plan, options, stats));
}

util::Result<ResultTable> ExecuteText(const rdf::TripleStore& store,
                                      std::string_view sparql,
                                      const ExecOptions& options,
                                      ExecStats* stats) {
  RE2X_ASSIGN_OR_RETURN(SelectQuery q, ParseQuery(sparql));
  return Execute(store, q, options, stats);
}

}  // namespace re2xolap::sparql
