#include "sparql/executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sparql/parser.h"
#include "util/timer.h"

namespace re2xolap::sparql {

namespace {

constexpr uint64_t kTimeoutCheckInterval = 8192;

/// Tri-state effective boolean value for filter evaluation.
enum class Ebv : uint8_t { kFalse = 0, kTrue = 1, kError = 2 };

Ebv EbvAnd(Ebv a, Ebv b) {
  if (a == Ebv::kFalse || b == Ebv::kFalse) return Ebv::kFalse;
  if (a == Ebv::kError || b == Ebv::kError) return Ebv::kError;
  return Ebv::kTrue;
}
Ebv EbvOr(Ebv a, Ebv b) {
  if (a == Ebv::kTrue || b == Ebv::kTrue) return Ebv::kTrue;
  if (a == Ebv::kError || b == Ebv::kError) return Ebv::kError;
  return Ebv::kFalse;
}
Ebv EbvNot(Ebv a) {
  if (a == Ebv::kError) return Ebv::kError;
  return a == Ebv::kTrue ? Ebv::kFalse : Ebv::kTrue;
}

/// Comparison of two cells under SPARQL-ish semantics: numeric when both
/// sides are numeric, lexical when both are non-numeric, error otherwise.
/// Returns {comparable, cmp<0|0|>0}.
struct CellCompare {
  bool comparable = false;
  int cmp = 0;
};

CellCompare CompareCells(const rdf::TripleStore& store, const Cell& a,
                         const Cell& b) {
  CellCompare out;
  if (a.is_null() || b.is_null()) return out;
  auto numeric = [&](const Cell& c, double* v) {
    if (c.is_number()) {
      *v = c.number;
      return true;
    }
    const rdf::Term& t = store.term(c.term);
    if (t.is_numeric_literal()) {
      *v = t.AsDouble();
      return true;
    }
    return false;
  };
  double va, vb;
  if (numeric(a, &va) && numeric(b, &vb)) {
    out.comparable = true;
    out.cmp = va < vb ? -1 : (va > vb ? 1 : 0);
    return out;
  }
  if (a.is_term() && b.is_term()) {
    const rdf::Term& ta = store.term(a.term);
    const rdf::Term& tb = store.term(b.term);
    // Different kinds (IRI vs literal) are only ==-comparable.
    out.comparable = true;
    if (ta.kind != tb.kind) {
      out.cmp = ta.kind < tb.kind ? -1 : 1;
      return out;
    }
    int c = ta.value.compare(tb.value);
    out.cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
    return out;
  }
  return out;  // mixed number vs non-numeric term: incomparable
}

/// Evaluates a filter expression. LookupFn: const std::string& -> Cell.
template <typename LookupFn>
Ebv EvalExpr(const rdf::TripleStore& store, const Expr& e,
             const LookupFn& lookup) {
  switch (e.kind) {
    case ExprKind::kConstant: {
      // EBV of a constant: boolean literals, non-zero numbers, non-empty
      // strings.
      const rdf::Term& t = e.constant;
      if (t.literal_type == rdf::LiteralType::kBoolean) {
        return t.value == "true" ? Ebv::kTrue : Ebv::kFalse;
      }
      if (t.is_numeric_literal()) {
        return t.AsDouble() != 0.0 ? Ebv::kTrue : Ebv::kFalse;
      }
      return t.value.empty() ? Ebv::kFalse : Ebv::kTrue;
    }
    case ExprKind::kVariable: {
      Cell c = lookup(e.var.name);
      if (c.is_null()) return Ebv::kError;
      if (c.is_number()) return c.number != 0.0 ? Ebv::kTrue : Ebv::kFalse;
      const rdf::Term& t = store.term(c.term);
      if (t.literal_type == rdf::LiteralType::kBoolean) {
        return t.value == "true" ? Ebv::kTrue : Ebv::kFalse;
      }
      if (t.is_numeric_literal()) {
        return t.AsDouble() != 0.0 ? Ebv::kTrue : Ebv::kFalse;
      }
      return Ebv::kTrue;
    }
    case ExprKind::kCompare: {
      // Evaluate operands to cells.
      auto operand = [&](const Expr& child) -> Cell {
        if (child.kind == ExprKind::kVariable) return lookup(child.var.name);
        if (child.kind == ExprKind::kConstant) {
          if (child.constant.is_numeric_literal()) {
            return Cell::OfNumber(child.constant.AsDouble());
          }
          rdf::TermId id = store.Lookup(child.constant);
          if (id != rdf::kInvalidTermId) return Cell::OfTerm(id);
          // Constant not in the store: compare by materialized value.
          // Represent as number for numerics (handled above); for other
          // terms fall back to lexical comparison through a pseudo-null.
          return Cell::Null();
        }
        return Cell::Null();
      };
      Cell lhs = operand(*e.children[0]);
      Cell rhs = operand(*e.children[1]);
      // Special-case a constant term missing from the dictionary: equal to
      // nothing, unequal to everything bound.
      auto missing_const = [&](const Expr& child, const Cell& cell) {
        return child.kind == ExprKind::kConstant &&
               !child.constant.is_numeric_literal() && cell.is_null();
      };
      bool lhs_missing = missing_const(*e.children[0], lhs);
      bool rhs_missing = missing_const(*e.children[1], rhs);
      if (lhs_missing || rhs_missing) {
        const Cell& other = lhs_missing ? rhs : lhs;
        if (other.is_null()) return Ebv::kError;
        if (e.op == CompareOp::kEq) return Ebv::kFalse;
        if (e.op == CompareOp::kNe) return Ebv::kTrue;
        // Ordering against a missing term: compare lexically with its
        // string form.
        const Expr& cexpr = lhs_missing ? *e.children[0] : *e.children[1];
        std::string other_str;
        if (other.is_number()) return Ebv::kError;
        other_str = store.term(other.term).value;
        int c = lhs_missing ? cexpr.constant.value.compare(other_str)
                            : other_str.compare(cexpr.constant.value);
        // c is "lhs vs rhs" ordering.
        switch (e.op) {
          case CompareOp::kLt:
            return c < 0 ? Ebv::kTrue : Ebv::kFalse;
          case CompareOp::kLe:
            return c <= 0 ? Ebv::kTrue : Ebv::kFalse;
          case CompareOp::kGt:
            return c > 0 ? Ebv::kTrue : Ebv::kFalse;
          case CompareOp::kGe:
            return c >= 0 ? Ebv::kTrue : Ebv::kFalse;
          default:
            return Ebv::kError;
        }
      }
      CellCompare cc = CompareCells(store, lhs, rhs);
      if (!cc.comparable) return Ebv::kError;
      bool r = false;
      switch (e.op) {
        case CompareOp::kEq:
          r = cc.cmp == 0;
          break;
        case CompareOp::kNe:
          r = cc.cmp != 0;
          break;
        case CompareOp::kLt:
          r = cc.cmp < 0;
          break;
        case CompareOp::kLe:
          r = cc.cmp <= 0;
          break;
        case CompareOp::kGt:
          r = cc.cmp > 0;
          break;
        case CompareOp::kGe:
          r = cc.cmp >= 0;
          break;
      }
      return r ? Ebv::kTrue : Ebv::kFalse;
    }
    case ExprKind::kAnd: {
      Ebv acc = Ebv::kTrue;
      for (const ExprPtr& c : e.children) {
        acc = EbvAnd(acc, EvalExpr(store, *c, lookup));
        if (acc == Ebv::kFalse) return acc;
      }
      return acc;
    }
    case ExprKind::kOr: {
      Ebv acc = Ebv::kFalse;
      for (const ExprPtr& c : e.children) {
        acc = EbvOr(acc, EvalExpr(store, *c, lookup));
        if (acc == Ebv::kTrue) return acc;
      }
      return acc;
    }
    case ExprKind::kNot:
      return EbvNot(EvalExpr(store, *e.children[0], lookup));
    case ExprKind::kIn: {
      Cell c = lookup(e.var.name);
      if (c.is_null()) return Ebv::kError;
      for (const rdf::Term& t : e.in_list) {
        Cell rhs;
        if (t.is_numeric_literal()) {
          rhs = Cell::OfNumber(t.AsDouble());
        } else {
          rdf::TermId id = store.Lookup(t);
          if (id == rdf::kInvalidTermId) continue;
          rhs = Cell::OfTerm(id);
        }
        CellCompare cc = CompareCells(store, c, rhs);
        if (cc.comparable && cc.cmp == 0) return Ebv::kTrue;
      }
      return Ebv::kFalse;
    }
    case ExprKind::kBound: {
      return lookup(e.var.name).is_null() ? Ebv::kFalse : Ebv::kTrue;
    }
  }
  return Ebv::kError;
}

/// Running state of one aggregate.
struct AggState {
  double sum = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  uint64_t count = 0;
  std::set<rdf::TermId> distinct_terms;  // only used by COUNT(DISTINCT ?v)

  void Update(double v) {
    sum += v;
    min = std::min(min, v);
    max = std::max(max, v);
    ++count;
  }

  void UpdateDistinct(rdf::TermId id) { distinct_terms.insert(id); }

  double Finish(AggFunc f) const {
    switch (f) {
      case AggFunc::kSum:
        return sum;
      case AggFunc::kMin:
        return count ? min : 0.0;
      case AggFunc::kMax:
        return count ? max : 0.0;
      case AggFunc::kAvg:
        return count ? sum / static_cast<double>(count) : 0.0;
      case AggFunc::kCount:
        return static_cast<double>(count);
    }
    return 0.0;
  }
};

struct VecHash {
  size_t operator()(const std::vector<rdf::TermId>& v) const {
    size_t h = 14695981039346656037ULL;
    for (rdf::TermId id : v) {
      h ^= id;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

/// Per-operator observation slots for one join run. For mandatory steps
/// `rows_out` counts successful (consistent + filter-passing) extensions;
/// for OPTIONAL blocks `rows_out` counts rows passed downstream (matched
/// extensions plus left-join fall-throughs) and `matched` only the
/// extensions that bound new variables.
struct StepProf {
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint64_t matched = 0;
  uint64_t scanned = 0;
  double micros = 0;  // inclusive wall time, timing mode only
};

/// Accumulates inclusive wall time into `*acc` over the guard's lifetime;
/// a null target disables the clock reads entirely.
class TimeGuard {
 public:
  explicit TimeGuard(double* acc) : acc_(acc) {
    if (acc_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~TimeGuard() {
    if (acc_ != nullptr) {
      *acc_ += std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - start_)
                   .count();
    }
  }
  TimeGuard(const TimeGuard&) = delete;
  TimeGuard& operator=(const TimeGuard&) = delete;

 private:
  double* acc_;
  std::chrono::steady_clock::time_point start_;
};

/// Short display form of a term for operator labels: IRIs by local name,
/// literals quoted.
std::string TermShortName(const rdf::TripleStore& store, rdf::TermId id) {
  const rdf::Term& t = store.term(id);
  if (t.is_iri()) {
    size_t cut = t.value.find_last_of("/#");
    return cut == std::string::npos ? t.value : t.value.substr(cut + 1);
  }
  return "\"" + t.value + "\"";
}

std::string PatternLabel(const rdf::TripleStore& store,
                         const std::vector<std::string>& slot_names,
                         const PhysicalPattern& pp, const char* prefix) {
  auto pos = [&](rdf::TermId id, int slot) -> std::string {
    if (id != rdf::kInvalidTermId) return TermShortName(store, id);
    if (slot >= 0 && static_cast<size_t>(slot) < slot_names.size()) {
      return "?" + slot_names[slot];
    }
    return "?_";
  };
  return std::string(prefix) + " (" + pos(pp.s_id, pp.s_slot) + " " +
         pos(pp.p_id, pp.p_slot) + " " + pos(pp.o_id, pp.o_slot) + ")";
}

/// Join executor: index nested loop join over the planned steps with
/// early filters and timeout checks.
class JoinRunner {
 public:
  JoinRunner(const rdf::TripleStore& store, const Plan& plan,
             const ExecOptions& options, ExecStats* stats)
      : store_(store),
        plan_(plan),
        options_(options),
        stats_(stats),
        profiling_(stats != nullptr),
        timing_(stats != nullptr && options.profile) {}

  /// Runs the join; calls `on_row(bindings)` for every complete binding.
  /// When `row_cap` is non-zero the join stops early after producing that
  /// many rows (safe only when no later operator reorders/merges rows).
  /// Returns non-OK on timeout. The per-step counters are flushed into the
  /// ExecStats sink on both the success and the error path.
  template <typename RowFn>
  util::Status Run(RowFn&& on_row, uint64_t row_cap = 0) {
    bindings_.assign(plan_.slot_count, rdf::kInvalidTermId);
    row_cap_ = row_cap;
    rows_emitted_ = 0;
    emitted_ = 0;
    stopped_ = false;
    if (profiling_) {
      step_prof_.assign(plan_.steps.size(), StepProf{});
      opt_prof_.assign(plan_.optionals.size(), StepProf{});
    }
    timer_.Restart();
    util::Status st = Step(0, on_row);
    FlushStats();
    return st;
  }

  const std::vector<StepProf>& step_prof() const { return step_prof_; }
  const std::vector<StepProf>& opt_prof() const { return opt_prof_; }
  uint64_t emitted() const { return emitted_; }
  bool timing() const { return timing_; }

 private:
  /// Rolls the per-step counters up into the ExecStats aggregates:
  /// `triples_scanned` sums every index entry inspected; the
  /// `intermediate_bindings` total counts bindings produced across all
  /// steps — one per successful mandatory-step extension plus one per
  /// matched OPTIONAL extension (fall-throughs bind nothing).
  void FlushStats() {
    if (!profiling_) return;
    uint64_t scanned = 0;
    uint64_t produced = 0;
    for (const StepProf& sp : step_prof_) {
      scanned += sp.scanned;
      produced += sp.rows_out;
    }
    for (const StepProf& op : opt_prof_) {
      scanned += op.scanned;
      produced += op.matched;
    }
    stats_->triples_scanned += scanned;
    stats_->intermediate_bindings += produced;
  }

  util::Status CheckTimeout() {
    if (options_.timeout_millis == 0) return util::Status::OK();
    if (++ops_ % kTimeoutCheckInterval != 0) return util::Status::OK();
    if (timer_.ElapsedMillis() >
        static_cast<double>(options_.timeout_millis)) {
      return util::Status::Timeout("query exceeded " +
                                   std::to_string(options_.timeout_millis) +
                                   " ms");
    }
    return util::Status::OK();
  }

  Cell LookupVar(const std::string& name) const {
    int slot = plan_.SlotOf(name);
    if (slot < 0 || bindings_[slot] == rdf::kInvalidTermId) {
      return Cell::Null();
    }
    return Cell::OfTerm(bindings_[slot]);
  }

  util::Status ApplyFiltersAfter(size_t step, bool* pass) {
    *pass = true;
    for (const PlannedFilter& pf : plan_.filters) {
      if (pf.apply_after_step != step) continue;
      Ebv v = EvalExpr(store_, *pf.expr,
                       [this](const std::string& n) { return LookupVar(n); });
      if (v != Ebv::kTrue) {
        *pass = false;
        return util::Status::OK();
      }
    }
    return util::Status::OK();
  }

  template <typename RowFn>
  util::Status Step(size_t step, RowFn& on_row) {
    if (step == 0) {
      bool pass = true;
      RE2X_RETURN_IF_ERROR(ApplyFiltersAfter(0, &pass));
      if (!pass) return util::Status::OK();
    }
    if (step == plan_.steps.size()) {
      return OptionalStep(0, on_row);
    }
    if (stopped_) return util::Status::OK();
    TimeGuard time_guard(timing_ ? &step_prof_[step].micros : nullptr);
    if (profiling_) ++step_prof_[step].rows_in;
    const PhysicalPattern& pp = plan_.steps[step];
    rdf::TriplePattern q;
    auto fix = [&](rdf::TermId cid, int slot) -> rdf::TermId {
      if (cid != rdf::kInvalidTermId) return cid;
      if (slot >= 0 && bindings_[slot] != rdf::kInvalidTermId) {
        return bindings_[slot];
      }
      return rdf::kInvalidTermId;
    };
    q.s = fix(pp.s_id, pp.s_slot);
    q.p = fix(pp.p_id, pp.p_slot);
    q.o = fix(pp.o_id, pp.o_slot);

    for (const rdf::EncodedTriple& t : store_.Match(q)) {
      if (stopped_) return util::Status::OK();
      if (profiling_) ++step_prof_[step].scanned;
      RE2X_RETURN_IF_ERROR(CheckTimeout());
      // Bind unbound slots; verify repeated-variable consistency.
      int newly_bound[3];
      int n_new = 0;
      bool consistent = true;
      auto bind = [&](int slot, rdf::TermId value) {
        if (slot < 0) return;
        if (bindings_[slot] == rdf::kInvalidTermId) {
          bindings_[slot] = value;
          newly_bound[n_new++] = slot;
        } else if (bindings_[slot] != value) {
          consistent = false;
        }
      };
      bind(pp.s_slot, t.s);
      if (consistent) bind(pp.p_slot, t.p);
      if (consistent) bind(pp.o_slot, t.o);
      if (consistent) {
        bool pass = true;
        RE2X_RETURN_IF_ERROR(ApplyFiltersAfter(step + 1, &pass));
        if (pass) {
          if (profiling_) ++step_prof_[step].rows_out;
          util::Status st = Step(step + 1, on_row);
          if (!st.ok()) {
            for (int i = 0; i < n_new; ++i) {
              bindings_[newly_bound[i]] = rdf::kInvalidTermId;
            }
            return st;
          }
        }
      }
      for (int i = 0; i < n_new; ++i) {
        bindings_[newly_bound[i]] = rdf::kInvalidTermId;
      }
    }
    return util::Status::OK();
  }

  // Left-join extension: tries to match optional block `block`; every
  // complete extension recurses into the next block, and a block with no
  // match falls through with its variables left unbound.
  template <typename RowFn>
  util::Status OptionalStep(size_t block, RowFn& on_row) {
    if (stopped_) return util::Status::OK();
    if (block == plan_.optionals.size()) {
      // Filters that could not be attached to the mandatory join.
      for (const ExprPtr& f : plan_.post_optional_filters) {
        Ebv v = EvalExpr(store_, *f, [this](const std::string& n) {
          return LookupVar(n);
        });
        if (v != Ebv::kTrue) return util::Status::OK();
      }
      ++emitted_;
      on_row(bindings_);
      if (row_cap_ != 0 && ++rows_emitted_ >= row_cap_) stopped_ = true;
      return CheckTimeout();
    }
    TimeGuard time_guard(timing_ ? &opt_prof_[block].micros : nullptr);
    if (profiling_) ++opt_prof_[block].rows_in;
    const PlannedOptional& po = plan_.optionals[block];
    if (po.never_matches || po.steps.empty()) {
      if (profiling_) ++opt_prof_[block].rows_out;
      return OptionalStep(block + 1, on_row);
    }
    bool matched = false;
    RE2X_RETURN_IF_ERROR(OptionalPattern(block, 0, &matched, on_row));
    if (!matched && !stopped_) {
      if (profiling_) ++opt_prof_[block].rows_out;
      return OptionalStep(block + 1, on_row);
    }
    return util::Status::OK();
  }

  template <typename RowFn>
  util::Status OptionalPattern(size_t block, size_t idx, bool* matched,
                               RowFn& on_row) {
    const PlannedOptional& po = plan_.optionals[block];
    if (idx == po.steps.size()) {
      *matched = true;
      if (profiling_) {
        ++opt_prof_[block].matched;
        ++opt_prof_[block].rows_out;
      }
      return OptionalStep(block + 1, on_row);
    }
    const PhysicalPattern& pp = po.steps[idx];
    rdf::TriplePattern q;
    auto fix = [&](rdf::TermId cid, int slot) -> rdf::TermId {
      if (cid != rdf::kInvalidTermId) return cid;
      if (slot >= 0 && bindings_[slot] != rdf::kInvalidTermId) {
        return bindings_[slot];
      }
      return rdf::kInvalidTermId;
    };
    q.s = fix(pp.s_id, pp.s_slot);
    q.p = fix(pp.p_id, pp.p_slot);
    q.o = fix(pp.o_id, pp.o_slot);
    for (const rdf::EncodedTriple& t : store_.Match(q)) {
      if (stopped_) return util::Status::OK();
      if (profiling_) ++opt_prof_[block].scanned;
      RE2X_RETURN_IF_ERROR(CheckTimeout());
      int newly_bound[3];
      int n_new = 0;
      bool consistent = true;
      auto bind = [&](int slot, rdf::TermId value) {
        if (slot < 0) return;
        if (bindings_[slot] == rdf::kInvalidTermId) {
          bindings_[slot] = value;
          newly_bound[n_new++] = slot;
        } else if (bindings_[slot] != value) {
          consistent = false;
        }
      };
      bind(pp.s_slot, t.s);
      if (consistent) bind(pp.p_slot, t.p);
      if (consistent) bind(pp.o_slot, t.o);
      if (consistent) {
        util::Status st = OptionalPattern(block, idx + 1, matched, on_row);
        if (!st.ok()) {
          for (int i = 0; i < n_new; ++i) {
            bindings_[newly_bound[i]] = rdf::kInvalidTermId;
          }
          return st;
        }
      }
      for (int i = 0; i < n_new; ++i) {
        bindings_[newly_bound[i]] = rdf::kInvalidTermId;
      }
    }
    return util::Status::OK();
  }

  const rdf::TripleStore& store_;
  const Plan& plan_;
  const ExecOptions& options_;
  ExecStats* stats_;
  const bool profiling_;  // counters + operator tree (any stats sink)
  const bool timing_;     // per-step wall times (ExecOptions::profile)
  std::vector<rdf::TermId> bindings_;
  std::vector<StepProf> step_prof_;
  std::vector<StepProf> opt_prof_;
  util::WallTimer timer_;
  uint64_t ops_ = 0;
  uint64_t row_cap_ = 0;
  uint64_t rows_emitted_ = 0;
  uint64_t emitted_ = 0;
  bool stopped_ = false;
};

/// Orders cells for ORDER BY / DISTINCT: nulls < numbers < terms.
int OrderCells(const rdf::TripleStore& store, const Cell& a, const Cell& b) {
  if (a.kind != b.kind) {
    return static_cast<int>(a.kind) < static_cast<int>(b.kind) ? -1 : 1;
  }
  switch (a.kind) {
    case Cell::Kind::kNull:
      return 0;
    case Cell::Kind::kNumber:
      return a.number < b.number ? -1 : (a.number > b.number ? 1 : 0);
    case Cell::Kind::kTerm: {
      CellCompare cc = CompareCells(store, a, b);
      if (cc.comparable) return cc.cmp;
      return a.term < b.term ? -1 : (a.term > b.term ? 1 : 0);
    }
  }
  return 0;
}

}  // namespace

util::Result<ResultTable> Execute(const rdf::TripleStore& store,
                                  const SelectQuery& query,
                                  const ExecOptions& options,
                                  ExecStats* stats) {
  util::WallTimer total_timer;
  obs::Span exec_span("sparql.execute");
  exec_span.SetAttr("patterns", static_cast<uint64_t>(query.patterns.size()));
  static obs::Counter& queries_total =
      obs::MetricsRegistry::Global().GetCounter("sparql.queries");
  static obs::Histogram& exec_hist =
      obs::MetricsRegistry::Global().GetHistogram("sparql.exec.millis");
  queries_total.Inc();

  // ASK: rewrite into an early-exiting LIMIT-1 existence probe and wrap
  // the answer as a one-cell boolean table (column "ask", 1 or 0).
  if (query.is_ask) {
    SelectQuery probe = query;
    probe.is_ask = false;
    probe.distinct = false;
    probe.select_all = false;
    probe.items.clear();
    probe.group_by.clear();
    probe.having.clear();
    probe.order_by.clear();
    probe.limit = 1;
    probe.offset = 0;
    // Project the first variable mentioned in the BGP; a fully constant
    // BGP degenerates to counting matches.
    for (const TriplePatternAst& tp : query.patterns) {
      for (const TermOrVar* pos : {&tp.s, &tp.p, &tp.o}) {
        if (IsVar(*pos)) {
          SelectItem item;
          item.var = AsVar(*pos);
          probe.items.push_back(std::move(item));
          break;
        }
      }
      if (!probe.items.empty()) break;
    }
    if (probe.items.empty()) {
      SelectItem item;
      item.is_aggregate = true;
      item.func = AggFunc::kCount;
      item.count_star = true;
      item.alias = "n";
      probe.items.push_back(std::move(item));
      probe.limit.reset();
    }
    RE2X_ASSIGN_OR_RETURN(ResultTable sub,
                          Execute(store, probe, options, stats));
    bool answer = false;
    if (!sub.rows().empty()) {
      answer = sub.columns()[0] == "n"
                   ? sub.NumericValue(sub.at(0, 0)) > 0
                   : true;
    }
    ResultTable out(&store, {"ask"});
    out.AddRow({Cell::OfNumber(answer ? 1.0 : 0.0)});
    if (stats) {
      // Wrap the probe's operator tree under an "ask" root.
      const double ask_millis = total_timer.ElapsedMillis();
      obs::ProfileNode root("ask");
      root.rows_out = 1;
      root.millis = ask_millis;
      root.timed = true;
      root.children.push_back(std::move(stats->profile));
      stats->profile = std::move(root);
      stats->exec_millis = ask_millis;
    }
    return out;
  }

  // --- validate & derive output columns ------------------------------------
  const bool aggregating = query.has_aggregates() || !query.group_by.empty();
  std::vector<SelectItem> items = query.items;
  util::WallTimer plan_timer;
  RE2X_ASSIGN_OR_RETURN(Plan plan,
                        PlanQuery(store, query, options.plan));
  if (stats) stats->plan_millis = plan_timer.ElapsedMillis();

  if (query.select_all) {
    if (aggregating) {
      return util::Status::InvalidArgument(
          "SELECT * cannot be combined with aggregation");
    }
    // All user variables (skip internal `__` path vars), ordered by slot.
    std::vector<std::pair<int, std::string>> vars;
    for (const auto& [name, slot] : plan.var_slots) {
      if (name.rfind("__", 0) == 0) continue;
      vars.emplace_back(slot, name);
    }
    std::sort(vars.begin(), vars.end());
    items.clear();
    for (auto& [slot, name] : vars) {
      SelectItem it;
      it.var = Variable{name};
      items.push_back(std::move(it));
    }
  }
  if (items.empty()) {
    return util::Status::InvalidArgument("query projects no columns");
  }
  if (aggregating) {
    for (const SelectItem& it : items) {
      if (it.is_aggregate) continue;
      bool in_group = false;
      for (const Variable& g : query.group_by) {
        if (g.name == it.var.name) {
          in_group = true;
          break;
        }
      }
      if (!in_group) {
        return util::Status::InvalidArgument(
            "projected variable ?" + it.var.name +
            " must appear in GROUP BY when aggregating");
      }
    }
  }

  std::vector<std::string> columns;
  columns.reserve(items.size());
  for (const SelectItem& it : items) columns.push_back(it.OutputName());
  ResultTable table(&store, columns);

  if (plan.impossible) {
    if (stats) {
      stats->exec_millis = total_timer.ElapsedMillis();
      obs::ProfileNode root("select");
      root.millis = stats->exec_millis;
      root.timed = true;
      obs::ProfileNode& pn =
          root.AddChild("plan (impossible: constant term absent)");
      pn.millis = stats->plan_millis;
      pn.timed = true;
      stats->profile = std::move(root);
    }
    exec_hist.Observe(total_timer.ElapsedMillis());
    return table;  // provably empty
  }

  // Slots needed for projection.
  std::vector<int> item_slots(items.size(), -1);
  for (size_t i = 0; i < items.size(); ++i) {
    if (!items[i].is_aggregate || !items[i].count_star) {
      item_slots[i] = plan.SlotOf(items[i].var.name);
    }
  }

  JoinRunner runner(store, plan, options, stats);

  // Coarse per-operator observations for the profile tree: two clock
  // reads per operator per query, collected whenever a stats sink is
  // present (per-*binding* timing stays behind ExecOptions::profile).
  double join_ms = 0;
  double agg_ms = 0;
  size_t group_count = 0;
  struct PostOp {
    const char* label;
    uint64_t rows_in;
    uint64_t rows_out;
    double ms;
  };
  std::vector<PostOp> post_ops;

  if (!aggregating) {
    // LIMIT can stop the join early when no later operator needs the full
    // row set (this is what makes ReOLAP's LIMIT-1 validation probes
    // cheap).
    uint64_t row_cap = 0;
    if (query.limit.has_value() && !query.distinct &&
        query.order_by.empty() && query.having.empty()) {
      row_cap = query.offset + *query.limit;
    }
    util::WallTimer join_timer;
    util::Status st = runner.Run(
        [&](const std::vector<rdf::TermId>& bindings) {
          Row row(items.size());
          for (size_t i = 0; i < items.size(); ++i) {
            int slot = item_slots[i];
            row[i] = (slot >= 0 && bindings[slot] != rdf::kInvalidTermId)
                         ? Cell::OfTerm(bindings[slot])
                         : Cell::Null();
          }
          table.AddRow(std::move(row));
        },
        row_cap);
    join_ms = join_timer.ElapsedMillis();
    RE2X_RETURN_IF_ERROR(st);
  } else {
    // Group keys = group_by slots (in declared order).
    std::vector<int> group_slots;
    group_slots.reserve(query.group_by.size());
    for (const Variable& g : query.group_by) {
      group_slots.push_back(plan.SlotOf(g.name));
    }
    struct Group {
      std::vector<AggState> aggs;
    };
    std::unordered_map<std::vector<rdf::TermId>, Group, VecHash> groups;
    size_t n_aggs = 0;
    for (const SelectItem& it : items) n_aggs += it.is_aggregate ? 1 : 0;

    util::WallTimer join_timer;
    util::Status st =
        runner.Run([&](const std::vector<rdf::TermId>& bindings) {
          std::vector<rdf::TermId> key(group_slots.size());
          for (size_t i = 0; i < group_slots.size(); ++i) {
            key[i] = group_slots[i] >= 0 ? bindings[group_slots[i]]
                                         : rdf::kInvalidTermId;
          }
          Group& g = groups[key];
          if (g.aggs.empty()) g.aggs.resize(n_aggs);
          size_t agg_idx = 0;
          for (size_t i = 0; i < items.size(); ++i) {
            if (!items[i].is_aggregate) continue;
            AggState& state = g.aggs[agg_idx++];
            if (items[i].count_star) {
              state.Update(0.0);  // COUNT(*): value irrelevant
            } else {
              int slot = item_slots[i];
              if (slot >= 0 && bindings[slot] != rdf::kInvalidTermId) {
                if (items[i].distinct_agg) {
                  state.UpdateDistinct(bindings[slot]);
                } else {
                  state.Update(store.term(bindings[slot]).AsDouble());
                }
              }
            }
          }
          if (n_aggs == 0) {
            // Pure GROUP BY without aggregates: the group itself is a row;
            // ensure the group exists (done by groups[key] above).
          }
        });
    join_ms = join_timer.ElapsedMillis();
    RE2X_RETURN_IF_ERROR(st);

    group_count = groups.size();
    util::WallTimer agg_timer;
    for (const auto& [key, group] : groups) {
      Row row(items.size());
      size_t agg_idx = 0;
      size_t key_pos;
      for (size_t i = 0; i < items.size(); ++i) {
        if (items[i].is_aggregate) {
          const AggState& state = group.aggs[agg_idx];
          row[i] = Cell::OfNumber(
              items[i].distinct_agg
                  ? static_cast<double>(state.distinct_terms.size())
                  : state.Finish(items[i].func));
          ++agg_idx;
          continue;
        }
        // Find this variable's position in the group key.
        key_pos = 0;
        for (size_t gi = 0; gi < query.group_by.size(); ++gi) {
          if (query.group_by[gi].name == items[i].var.name) {
            key_pos = gi;
            break;
          }
        }
        row[i] = key[key_pos] != rdf::kInvalidTermId ? Cell::OfTerm(key[key_pos])
                                                     : Cell::Null();
      }
      table.AddRow(std::move(row));
    }
    agg_ms = agg_timer.ElapsedMillis();
  }

  // --- HAVING ---------------------------------------------------------------
  if (!query.having.empty()) {
    util::WallTimer op_timer;
    std::vector<Row>& rows = table.mutable_rows();
    const uint64_t rows_in = rows.size();
    std::vector<Row> kept;
    kept.reserve(rows.size());
    for (Row& row : rows) {
      auto lookup = [&](const std::string& name) -> Cell {
        int idx = table.ColumnIndex(name);
        return idx < 0 ? Cell::Null() : row[idx];
      };
      bool pass = true;
      for (const ExprPtr& h : query.having) {
        if (EvalExpr(store, *h, lookup) != Ebv::kTrue) {
          pass = false;
          break;
        }
      }
      if (pass) kept.push_back(std::move(row));
    }
    rows.swap(kept);
    post_ops.push_back(
        {"having", rows_in, rows.size(), op_timer.ElapsedMillis()});
  }

  // --- DISTINCT ---------------------------------------------------------------
  if (query.distinct) {
    util::WallTimer op_timer;
    std::vector<Row>& rows = table.mutable_rows();
    const uint64_t rows_in = rows.size();
    auto row_less = [&](const Row& a, const Row& b) {
      for (size_t i = 0; i < a.size(); ++i) {
        int c = OrderCells(store, a[i], b[i]);
        if (c != 0) return c < 0;
      }
      return false;
    };
    std::sort(rows.begin(), rows.end(), row_less);
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    post_ops.push_back(
        {"distinct", rows_in, rows.size(), op_timer.ElapsedMillis()});
  }

  // --- ORDER BY ---------------------------------------------------------------
  if (!query.order_by.empty()) {
    util::WallTimer op_timer;
    std::vector<std::pair<int, bool>> keys;  // column index, ascending
    for (const OrderKey& k : query.order_by) {
      int idx = table.ColumnIndex(k.column);
      if (idx < 0) {
        return util::Status::InvalidArgument("ORDER BY references unknown column ?" +
                                             k.column);
      }
      keys.emplace_back(idx, k.ascending);
    }
    std::vector<Row>& rows = table.mutable_rows();
    std::stable_sort(rows.begin(), rows.end(),
                     [&](const Row& a, const Row& b) {
                       for (auto [idx, asc] : keys) {
                         int c = OrderCells(store, a[idx], b[idx]);
                         if (c != 0) return asc ? c < 0 : c > 0;
                       }
                       return false;
                     });
    post_ops.push_back(
        {"order-by", rows.size(), rows.size(), op_timer.ElapsedMillis()});
  }

  // --- OFFSET / LIMIT -----------------------------------------------------------
  if (query.offset > 0 || query.limit.has_value()) {
    util::WallTimer op_timer;
    std::vector<Row>& rows = table.mutable_rows();
    const uint64_t rows_in = rows.size();
    size_t begin = std::min<size_t>(query.offset, rows.size());
    size_t end = rows.size();
    if (query.limit.has_value()) {
      end = std::min<size_t>(begin + *query.limit, rows.size());
    }
    std::vector<Row> sliced(rows.begin() + begin, rows.begin() + end);
    rows.swap(sliced);
    post_ops.push_back(
        {"limit/offset", rows_in, rows.size(), op_timer.ElapsedMillis()});
  }

  if (stats) {
    stats->exec_millis = total_timer.ElapsedMillis();

    // --- per-operator profile tree ---------------------------------------
    std::vector<std::string> slot_names(plan.slot_count);
    for (const auto& [name, slot] : plan.var_slots) {
      if (slot >= 0 && static_cast<size_t>(slot) < slot_names.size()) {
        slot_names[slot] = name;
      }
    }

    obs::ProfileNode root("select");
    root.rows_out = table.rows().size();
    root.millis = stats->exec_millis;
    root.timed = true;
    {
      obs::ProfileNode& pn = root.AddChild("plan");
      pn.millis = stats->plan_millis;
      pn.timed = true;
    }

    // The index nested-loop join renders as a chain: each mandatory step
    // nests under the previous one, then the OPTIONAL blocks, innermost
    // last — mirroring the recursion order at execution time.
    obs::ProfileNode join("join (index nested loop)");
    join.rows_out = runner.emitted();
    join.millis = join_ms;
    join.timed = true;
    const bool timed_steps = runner.timing();
    obs::ProfileNode* cur = &join;
    for (size_t i = 0; i < plan.steps.size(); ++i) {
      obs::ProfileNode& child =
          cur->AddChild(PatternLabel(store, slot_names, plan.steps[i], "scan"));
      const StepProf& sp = runner.step_prof()[i];
      child.rows_in = sp.rows_in;
      child.rows_out = sp.rows_out;
      child.scanned = sp.scanned;
      child.millis = sp.micros / 1000.0;
      child.timed = timed_steps;
      cur = &child;
    }
    for (size_t b = 0; b < plan.optionals.size(); ++b) {
      const PlannedOptional& po = plan.optionals[b];
      std::string label =
          po.steps.empty()
              ? "optional (empty)"
              : PatternLabel(store, slot_names, po.steps[0], "optional");
      if (po.steps.size() > 1) {
        label += " +" + std::to_string(po.steps.size() - 1);
      }
      obs::ProfileNode& child = cur->AddChild(std::move(label));
      const StepProf& op = runner.opt_prof()[b];
      child.rows_in = op.rows_in;
      child.rows_out = op.rows_out;
      child.scanned = op.scanned;
      child.millis = op.micros / 1000.0;
      child.timed = timed_steps;
      cur = &child;
    }
    root.children.push_back(std::move(join));

    if (aggregating) {
      std::string label = "aggregate";
      if (!query.group_by.empty()) {
        label += " (group by";
        for (const Variable& g : query.group_by) label += " ?" + g.name;
        label += ")";
      }
      obs::ProfileNode& agg = root.AddChild(std::move(label));
      agg.rows_in = runner.emitted();
      agg.rows_out = group_count;
      agg.millis = agg_ms;
      agg.timed = true;
    }
    for (const PostOp& op : post_ops) {
      obs::ProfileNode& n = root.AddChild(op.label);
      n.rows_in = op.rows_in;
      n.rows_out = op.rows_out;
      n.millis = op.ms;
      n.timed = true;
    }
    stats->profile = std::move(root);
  }
  exec_span.SetAttr("rows", static_cast<uint64_t>(table.rows().size()));
  exec_hist.Observe(total_timer.ElapsedMillis());
  return table;
}

util::Result<ResultTable> ExecuteText(const rdf::TripleStore& store,
                                      std::string_view sparql,
                                      const ExecOptions& options,
                                      ExecStats* stats) {
  RE2X_ASSIGN_OR_RETURN(SelectQuery q, ParseQuery(sparql));
  return Execute(store, q, options, stats);
}

}  // namespace re2xolap::sparql
