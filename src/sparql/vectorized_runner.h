#ifndef RE2XOLAP_SPARQL_VECTORIZED_RUNNER_H_
#define RE2XOLAP_SPARQL_VECTORIZED_RUNNER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "rdf/index_cursor.h"
#include "rdf/triple_store.h"
#include "sparql/binding_block.h"
#include "sparql/executor.h"
#include "sparql/join_runner.h"
#include "sparql/plan.h"
#include "util/status.h"
#include "util/timer.h"

namespace re2xolap::sparql {

/// Batch-at-a-time join core over columnar BindingBlocks. Consumes the
/// same Plan as the volcano JoinRunner (so cached plans serve both) and
/// produces rows in the *identical order* with identical StepProf /
/// ExecStats counters: blocks flow depth-first through the step pipeline,
/// rows stay in input order, and extensions are appended in index order.
///
/// Each mandatory step is compiled once per run into a CompiledStep: the
/// index permutation and exact key prefix it probes (mirroring
/// TripleStore::Match's selection rules), split into a constant prefix —
/// located once per run with a single equal_range — and per-row varying
/// parts. When consecutive rows' probe keys are non-decreasing (the common
/// case after joining along an index's sort order), the runner *merge
/// joins*: it advances a cursor through the constant-prefix run with a
/// galloping lower_bound instead of re-searching from the start; rows
/// whose keys regress fall back to a plain binary search within the run.
/// Matched extensions are appended column-wise (broadcast of the parent
/// row + bind-column writes from the sorted run).
///
/// Guard semantics match the volcano runner at batch granularity: the
/// deadline/cancellation poll is amortized behind the same
/// kGuardCheckInterval worth of scanned entries, every produced binding
/// is charged against the row budget with a budget-only recheck at the
/// charge site, and the emit path re-checks budgets per row. OPTIONAL
/// blocks extend parent rows left-join style, each parent row either
/// appending its matched extensions or falling through unchanged; the
/// per-pattern matching walks rows of the parent block (variables bound
/// by earlier OPTIONAL blocks are only known per row, so their probes
/// cannot be compiled statically).
class VectorizedRunner : public JoinExecutor {
 public:
  VectorizedRunner(const rdf::TripleStore& store, const Plan& plan,
                   const ExecOptions& options, ExecStats* stats);

  util::Status Run(RowSink on_row, uint64_t row_cap = 0) override;

  const std::vector<StepProf>& step_prof() const override {
    return step_prof_;
  }
  const std::vector<StepProf>& opt_prof() const override { return opt_prof_; }
  uint64_t emitted() const override { return emitted_; }
  bool timing() const override { return timing_; }
  const char* join_label() const override { return "join (vectorized)"; }

 private:
  /// One component of a step's probe key, in the permutation's key order:
  /// either a plan constant or a slot read from the input row.
  struct KeyPart {
    bool is_const = false;
    rdf::TermId cid = rdf::kInvalidTermId;
    int slot = -1;
    int pos = 0;  // triple component: 0 = s, 1 = p, 2 = o
  };

  /// A mandatory plan step compiled against the static boundness at its
  /// position in the pipeline (slots are assigned in execution order, so
  /// which slots are bound when a step runs is known at compile time).
  struct CompiledStep {
    rdf::Perm perm = rdf::Perm::kSpo;
    std::vector<KeyPart> key;  // exact-prefix parts in index key order
    size_t const_prefix = 0;   // leading key parts that are constants
    int bind_slot[3] = {-1, -1, -1};  // per triple pos: slot to bind
    // Repeated-variable checks within one pattern: candidate triples must
    // have equal components at (pos, first_pos) for each pair.
    std::vector<std::pair<int, int>> check_pairs;
    bool has_filters = false;  // any PlannedFilter applies after this step
    // Slots bound by earlier steps: the only parent columns worth
    // broadcasting into this stage's output. Slots bound by later steps
    // are written before anything reads them, so copying them forward
    // would be wasted work (the dominant cost on probe-heavy joins).
    std::vector<int> broadcast_slots;
    // Last mandatory step only: slots no mandatory step ever binds
    // (OPTIONAL-only variables). Filled with kInvalidTermId so the
    // optional/emit stages see them as unbound rather than stale data.
    std::vector<int> invalidate_slots;
    // Constant-prefix run, located lazily on first use and cached for the
    // rest of the run (the prefix never varies). Raw-format stores back it
    // with a zero-copy span; compressed stores with a block range whose
    // seeks gallop over the skip keys (rdf/index_cursor.h).
    bool run_located = false;
    rdf::IndexRange run;
    // Per-row lo/hi sentinel templates: constant prefix baked in,
    // remaining components 0 / kMaxTermId. Probes copy these and stamp
    // the row's varying key values into both.
    rdf::EncodedTriple lo_base{0, 0, 0};
    rdf::EncodedTriple hi_base{0, 0, 0};
    // Separate decode scratch for seeks vs chunk fetches so a search that
    // lands in the next block does not evict the block the fetch loop is
    // consuming (no-ops on raw-format stores).
    rdf::IndexBlockScratch search_scratch;
    rdf::IndexBlockScratch fetch_scratch;
  };

  void CompileSteps();
  util::Status BumpOps(uint64_t n);
  util::Status RunStage(size_t stage, const BindingBlock& in);
  util::Status ApplyStepFilters(size_t after_step, BindingBlock* out,
                                size_t from, uint64_t* survivors);
  util::Status RunOptionalStage(size_t block, const BindingBlock& in);
  util::Status OptionalPattern(size_t block, size_t idx, bool* matched,
                               BindingBlock* out);
  util::Status EmitBlock(const BindingBlock& in);
  void FlushStats();

  const rdf::TripleStore& store_;
  const Plan& plan_;
  const ExecOptions& options_;
  ExecStats* stats_;
  const bool profiling_;
  const bool timing_;

  RowSink* on_row_ = nullptr;
  std::vector<CompiledStep> steps_;
  std::vector<BindingBlock> blocks_;      // per mandatory stage output
  std::vector<BindingBlock> opt_blocks_;  // per OPTIONAL stage output
  // OPTIONAL extension row state, one scratch row per block: a block's
  // mid-loop flush recurses into later blocks, which extract their own
  // rows while the suspended caller's row must stay intact.
  std::vector<std::vector<rdf::TermId>> scratch_rows_;
  // OPTIONAL scan cursors, one per (block, step) recursion depth — each
  // depth is on the stack at most once, and pooling keeps compressed-block
  // scratch allocations out of the per-row loop.
  std::vector<std::vector<rdf::IndexCursor>> opt_cursors_;
  std::vector<rdf::TermId> row_buf_;      // emit-path row materialization
  std::vector<uint32_t> keep_;            // filter compaction scratch
  std::vector<StepProf> step_prof_;
  std::vector<StepProf> opt_prof_;
  util::WallTimer timer_;
  uint64_t ops_ = 0;
  uint64_t row_cap_ = 0;
  uint64_t rows_emitted_ = 0;
  uint64_t emitted_ = 0;
  bool stopped_ = false;
};

}  // namespace re2xolap::sparql

#endif  // RE2XOLAP_SPARQL_VECTORIZED_RUNNER_H_
