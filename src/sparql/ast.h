#ifndef RE2XOLAP_SPARQL_AST_H_
#define RE2XOLAP_SPARQL_AST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "rdf/term.h"

namespace re2xolap::sparql {

/// A SPARQL variable (without the leading '?').
struct Variable {
  std::string name;
  friend bool operator==(const Variable& a, const Variable& b) {
    return a.name == b.name;
  }
};

/// Either a concrete RDF term or a variable — one position of a triple
/// pattern.
using TermOrVar = std::variant<rdf::Term, Variable>;

inline bool IsVar(const TermOrVar& tv) {
  return std::holds_alternative<Variable>(tv);
}
inline const Variable& AsVar(const TermOrVar& tv) {
  return std::get<Variable>(tv);
}
inline const rdf::Term& AsTerm(const TermOrVar& tv) {
  return std::get<rdf::Term>(tv);
}

/// One basic graph pattern triple: subject/predicate/object, each a term or
/// a variable. Property paths (`p1/p2`) are desugared by the parser into
/// chains of TriplePatternAst with fresh internal variables.
struct TriplePatternAst {
  TermOrVar s;
  TermOrVar p;
  TermOrVar o;
};

/// Filter / expression nodes.
enum class ExprKind : uint8_t {
  kConstant,    // term constant
  kVariable,    // variable reference
  kCompare,     // binary comparison (op in CompareOp)
  kAnd,
  kOr,
  kNot,
  kIn,          // variable IN (c1, c2, ...)
  kBound,       // BOUND(?v)
};

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Expression tree node. Which fields are meaningful depends on `kind`.
struct Expr {
  ExprKind kind;
  rdf::Term constant;            // kConstant
  Variable var;                  // kVariable / kIn / kBound
  CompareOp op = CompareOp::kEq; // kCompare
  std::vector<ExprPtr> children; // kCompare(2), kAnd/kOr(2+), kNot(1)
  std::vector<rdf::Term> in_list;  // kIn

  static ExprPtr Constant(rdf::Term t) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kConstant;
    e->constant = std::move(t);
    return e;
  }
  static ExprPtr Var(std::string name) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kVariable;
    e->var = Variable{std::move(name)};
    return e;
  }
  static ExprPtr Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kCompare;
    e->op = op;
    e->children = {std::move(lhs), std::move(rhs)};
    return e;
  }
  static ExprPtr And(ExprPtr lhs, ExprPtr rhs) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kAnd;
    e->children = {std::move(lhs), std::move(rhs)};
    return e;
  }
  static ExprPtr Or(ExprPtr lhs, ExprPtr rhs) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kOr;
    e->children = {std::move(lhs), std::move(rhs)};
    return e;
  }
  static ExprPtr Not(ExprPtr inner) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kNot;
    e->children = {std::move(inner)};
    return e;
  }
  static ExprPtr In(std::string var, std::vector<rdf::Term> values) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kIn;
    e->var = Variable{std::move(var)};
    e->in_list = std::move(values);
    return e;
  }
};

/// Aggregation functions supported in the SELECT clause.
enum class AggFunc : uint8_t { kSum, kMin, kMax, kAvg, kCount };

const char* AggFuncName(AggFunc f);

/// One projected column: either a plain (group-by) variable or an
/// aggregate over a variable.
struct SelectItem {
  /// When false, this is `?var`; when true, `AGG(?var) AS ?alias`.
  bool is_aggregate = false;
  Variable var;            // the projected or aggregated variable
  AggFunc func = AggFunc::kSum;
  bool count_star = false;     // COUNT(*)
  bool distinct_agg = false;   // COUNT(DISTINCT ?v)
  std::string alias;        // output column name; defaults derived if empty

  /// Output column name: alias, or var name, or "agg_var".
  std::string OutputName() const;
};

/// Sort key for ORDER BY.
struct OrderKey {
  std::string column;  // output column name (variable or aggregate alias)
  bool ascending = true;
};

/// A parsed SELECT query:
///   SELECT [DISTINCT] items WHERE { patterns FILTER(...)* }
///   [GROUP BY vars] [HAVING expr] [ORDER BY keys] [LIMIT n] [OFFSET n]
struct SelectQuery {
  /// ASK query: no projection, the answer is whether any solution exists.
  bool is_ask = false;
  bool distinct = false;
  bool select_all = false;  // SELECT *
  std::vector<SelectItem> items;
  std::vector<TriplePatternAst> patterns;
  /// OPTIONAL { ... } blocks, applied left-to-right after the mandatory
  /// BGP (left-join semantics; unmatched blocks leave their variables
  /// unbound). Blocks contain plain triple patterns.
  std::vector<std::vector<TriplePatternAst>> optional_blocks;
  std::vector<ExprPtr> filters;
  std::vector<Variable> group_by;
  /// Post-aggregation filters; variables refer to output column names
  /// (aggregate aliases or group-by variables).
  std::vector<ExprPtr> having;
  std::vector<OrderKey> order_by;
  std::optional<uint64_t> limit;
  uint64_t offset = 0;

  bool has_aggregates() const {
    for (const SelectItem& it : items) {
      if (it.is_aggregate) return true;
    }
    return false;
  }
};

/// Renders the query back to SPARQL text (used to present synthesized
/// queries to the user, Figure 2 / Figure 10 style).
std::string ToSparql(const SelectQuery& query);

/// Renders a single expression as SPARQL filter text.
std::string ToSparql(const Expr& expr);

}  // namespace re2xolap::sparql

#endif  // RE2XOLAP_SPARQL_AST_H_
