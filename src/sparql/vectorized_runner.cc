#include "sparql/vectorized_runner.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "sparql/ebv.h"
#include "util/failpoint.h"

namespace re2xolap::sparql {

namespace {

// Same amortization interval as the volcano runner, counted in scanned
// index entries, so both executors poll deadlines at the same granularity.
constexpr uint64_t kGuardCheckInterval = 8192;

using rdf::kMaxTermId;
using rdf::Perm;

inline rdf::TermId Comp(const rdf::EncodedTriple& t, int pos) {
  return pos == 0 ? t.s : pos == 1 ? t.p : t.o;
}

inline void SetComp(rdf::EncodedTriple* t, int pos, rdf::TermId v) {
  if (pos == 0) {
    t->s = v;
  } else if (pos == 1) {
    t->p = v;
  } else {
    t->o = v;
  }
}

/// A per-row probe key: up to three (triple position, value) components in
/// the index permutation's key order, following the step's constant-prefix
/// run. Candidate triples within the run are sorted by exactly these
/// components, so the matching sub-run is a contiguous equal range. The
/// actual index searches run on full lo/hi sentinel triples (the key
/// stamped into the step's const-prefix templates) so they compare with
/// the permutation's total order — which is what lets compressed ranges
/// seek on whole-triple block skip keys; the ProbeKey itself only drives
/// the duplicate / merge-order detection between consecutive rows.
struct ProbeKey {
  size_t n = 0;
  int pos[3] = {0, 0, 0};
  rdf::TermId val[3] = {0, 0, 0};
};

/// Lexicographic compare of two probe keys over the same part layout.
inline int CompareKeys(const ProbeKey& a, const ProbeKey& b) {
  for (size_t i = 0; i < a.n; ++i) {
    if (a.val[i] != b.val[i]) return a.val[i] < b.val[i] ? -1 : 1;
  }
  return 0;
}

/// Accumulates inclusive wall time into `*acc`; null disables the clock.
class TimeGuard {
 public:
  explicit TimeGuard(double* acc) : acc_(acc) {
    if (acc_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~TimeGuard() {
    if (acc_ != nullptr) {
      *acc_ += std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - start_)
                   .count();
    }
  }
  TimeGuard(const TimeGuard&) = delete;
  TimeGuard& operator=(const TimeGuard&) = delete;

 private:
  double* acc_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

VectorizedRunner::VectorizedRunner(const rdf::TripleStore& store,
                                   const Plan& plan,
                                   const ExecOptions& options,
                                   ExecStats* stats)
    : store_(store),
      plan_(plan),
      options_(options),
      stats_(stats),
      profiling_(stats != nullptr),
      timing_(stats != nullptr && options.profile) {}

void VectorizedRunner::CompileSteps() {
  steps_.clear();
  steps_.resize(plan_.steps.size());
  std::vector<bool> bound(plan_.slot_count, false);
  for (size_t i = 0; i < plan_.steps.size(); ++i) {
    const PhysicalPattern& pp = plan_.steps[i];
    CompiledStep& cs = steps_[i];
    const rdf::TermId ids[3] = {pp.s_id, pp.p_id, pp.o_id};
    const int slots[3] = {pp.s_slot, pp.p_slot, pp.o_slot};
    for (size_t s = 0; s < plan_.slot_count; ++s) {
      if (bound[s]) cs.broadcast_slots.push_back(static_cast<int>(s));
    }
    bool known[3];
    for (int pos = 0; pos < 3; ++pos) {
      known[pos] = ids[pos] != rdf::kInvalidTermId ||
                   (slots[pos] >= 0 && bound[slots[pos]]);
    }
    // Index selection mirrors TripleStore::Match exactly: every known
    // position forms a prefix of the chosen permutation's key order, so
    // the matching triples are one contiguous sorted range — and the
    // per-step scanned counts equal the volcano runner's.
    const bool bs = known[0], bp = known[1], bo = known[2];
    int key_pos[3];
    size_t nkey = 0;
    if (bs && !bp && bo) {
      cs.perm = Perm::kOsp;  // key (o, s, p), prefix [o, s]
      key_pos[nkey++] = 2;
      key_pos[nkey++] = 0;
    } else if (bs) {
      cs.perm = Perm::kSpo;  // prefix [s], [s,p] or [s,p,o]
      key_pos[nkey++] = 0;
      if (bp) key_pos[nkey++] = 1;
      if (bp && bo) key_pos[nkey++] = 2;
    } else if (bp) {
      cs.perm = Perm::kPos;  // prefix [p] or [p,o]
      key_pos[nkey++] = 1;
      if (bo) key_pos[nkey++] = 2;
    } else if (bo) {
      cs.perm = Perm::kOsp;  // prefix [o]
      key_pos[nkey++] = 2;
    } else {
      cs.perm = Perm::kSpo;  // full scan
    }
    for (size_t j = 0; j < nkey; ++j) {
      KeyPart kp;
      kp.pos = key_pos[j];
      if (ids[kp.pos] != rdf::kInvalidTermId) {
        kp.is_const = true;
        kp.cid = ids[kp.pos];
      } else {
        kp.slot = slots[kp.pos];
      }
      cs.key.push_back(kp);
    }
    while (cs.const_prefix < cs.key.size() &&
           cs.key[cs.const_prefix].is_const) {
      ++cs.const_prefix;
    }
    // Unknown positions bind their slot on first occurrence; a repeated
    // variable within the same pattern becomes a component-equality check
    // against its first occurrence (candidates are only constrained on
    // known positions, so repeats must be verified per triple).
    for (int pos = 0; pos < 3; ++pos) {
      if (known[pos]) continue;
      int first_pos = -1;
      for (int q = 0; q < pos; ++q) {
        if (!known[q] && slots[q] == slots[pos]) {
          first_pos = q;
          break;
        }
      }
      if (first_pos >= 0) {
        cs.check_pairs.emplace_back(pos, first_pos);
      } else {
        cs.bind_slot[pos] = slots[pos];
      }
    }
    for (int pos = 0; pos < 3; ++pos) {
      if (slots[pos] >= 0) bound[slots[pos]] = true;
    }
    for (const PlannedFilter& pf : plan_.filters) {
      if (pf.apply_after_step == i + 1) cs.has_filters = true;
    }
  }
  if (!steps_.empty()) {
    // `bound` now covers every slot some mandatory pattern mentions; the
    // rest are OPTIONAL-only and must read as unbound downstream.
    for (size_t s = 0; s < plan_.slot_count; ++s) {
      if (!bound[s]) steps_.back().invalidate_slots.push_back(
          static_cast<int>(s));
    }
  }
}

util::Status VectorizedRunner::Run(RowSink on_row, uint64_t row_cap) {
  on_row_ = &on_row;
  row_cap_ = row_cap;
  rows_emitted_ = 0;
  emitted_ = 0;
  ops_ = 0;
  stopped_ = false;
  if (profiling_) {
    step_prof_.assign(plan_.steps.size(), StepProf{});
    opt_prof_.assign(plan_.optionals.size(), StepProf{});
  }
  timer_.Restart();
  CompileSteps();
  // Row-capped runs (LIMIT probes, ASK) degrade to single-row blocks so
  // the early exit stops scanning exactly where the volcano runner would —
  // batching there would overproduce intermediate bindings past the cap.
  const size_t cap = row_cap != 0 ? 1 : BindingBlock::kDefaultCapacity;
  blocks_.resize(plan_.steps.size());
  for (BindingBlock& b : blocks_) b.Reset(plan_.slot_count, cap);
  opt_blocks_.resize(plan_.optionals.size());
  for (BindingBlock& b : opt_blocks_) b.Reset(plan_.slot_count, cap);
  scratch_rows_.resize(plan_.optionals.size());
  opt_cursors_.resize(plan_.optionals.size());
  for (size_t b = 0; b < plan_.optionals.size(); ++b) {
    opt_cursors_[b].resize(plan_.optionals[b].steps.size());
  }

  BindingBlock seed;
  seed.Reset(plan_.slot_count, 1);
  seed.AppendUnboundRow();
  // Variable-free filters (apply_after_step == 0) gate the whole query.
  bool pass = true;
  for (const PlannedFilter& pf : plan_.filters) {
    if (pf.apply_after_step != 0) continue;
    Ebv v = EvalExpr(store_, *pf.expr,
                     [](const std::string&) { return Cell::Null(); });
    if (v != Ebv::kTrue) {
      pass = false;
      break;
    }
  }
  util::Status st = util::Status::OK();
  if (pass) st = RunStage(0, seed);
  FlushStats();
  on_row_ = nullptr;
  return st;
}

void VectorizedRunner::FlushStats() {
  if (!profiling_) return;
  uint64_t scanned = 0;
  uint64_t produced = 0;
  for (const StepProf& sp : step_prof_) {
    scanned += sp.scanned;
    produced += sp.rows_out;
  }
  for (const StepProf& op : opt_prof_) {
    scanned += op.scanned;
    produced += op.matched;
  }
  stats_->triples_scanned += scanned;
  stats_->intermediate_bindings += produced;
}

util::Status VectorizedRunner::BumpOps(uint64_t n) {
  const util::ExecGuard* guard = options_.guard;
  if (options_.timeout_millis == 0 && guard == nullptr) {
    return util::Status::OK();
  }
  // Poll once per crossed interval so one large charge cannot widen the
  // deadline/cancellation window past kGuardCheckInterval scanned entries
  // (callers charge at most a block's worth per call, so this loop runs
  // at most twice in practice).
  while (n > 0) {
    const uint64_t to_boundary =
        kGuardCheckInterval - ops_ % kGuardCheckInterval;
    const uint64_t step = std::min(n, to_boundary);
    ops_ += step;
    n -= step;
    if (step < to_boundary) break;
    if (options_.timeout_millis != 0 &&
        timer_.ElapsedMillis() >
            static_cast<double>(options_.timeout_millis)) {
      return util::Status::Timeout("query exceeded " +
                                   std::to_string(options_.timeout_millis) +
                                   " ms");
    }
    if (guard != nullptr) RE2X_RETURN_IF_ERROR(guard->Check());
  }
  return util::Status::OK();
}

util::Status VectorizedRunner::ApplyStepFilters(size_t after_step,
                                                BindingBlock* out,
                                                size_t from,
                                                uint64_t* survivors) {
  keep_.clear();
  for (size_t r = from; r < out->size(); ++r) {
    bool pass = true;
    for (const PlannedFilter& pf : plan_.filters) {
      if (pf.apply_after_step != after_step) continue;
      Ebv v = EvalExpr(store_, *pf.expr, [&](const std::string& n) {
        int slot = pf.slots.SlotOf(n);
        rdf::TermId val =
            slot < 0 ? rdf::kInvalidTermId : out->at(r, slot);
        return val == rdf::kInvalidTermId ? Cell::Null() : Cell::OfTerm(val);
      });
      if (v != Ebv::kTrue) {
        pass = false;
        break;
      }
    }
    if (pass) keep_.push_back(static_cast<uint32_t>(r));
  }
  *survivors = keep_.size();
  if (keep_.size() != out->size() - from) out->Compact(from, keep_);
  return util::Status::OK();
}

util::Status VectorizedRunner::RunStage(size_t stage,
                                        const BindingBlock& in) {
  if (stopped_ || in.empty()) return util::Status::OK();
  if (stage == plan_.steps.size()) return RunOptionalStage(0, in);
  TimeGuard time_guard(timing_ ? &step_prof_[stage].micros : nullptr);
  if (profiling_) step_prof_[stage].rows_in += in.size();
  CompiledStep& cs = steps_[stage];

  if (!cs.run_located) {
    rdf::IndexRange index = store_.PermutationRange(cs.perm);
    cs.lo_base = {rdf::kInvalidTermId, rdf::kInvalidTermId,
                  rdf::kInvalidTermId};
    cs.hi_base = {kMaxTermId, kMaxTermId, kMaxTermId};
    for (size_t i = 0; i < cs.const_prefix; ++i) {
      SetComp(&cs.lo_base, cs.key[i].pos, cs.key[i].cid);
      SetComp(&cs.hi_base, cs.key[i].pos, cs.key[i].cid);
    }
    if (cs.const_prefix == 0) {
      cs.run = index;
    } else {
      const uint64_t first = index.LowerBound(cs.lo_base, &cs.search_scratch);
      uint64_t last =
          index.GallopUpperBound(first, cs.hi_base, &cs.search_scratch);
      if (last < first) last = first;
      cs.run = index.Slice(first, last);
    }
    cs.run_located = true;
  }

  BindingBlock& out = blocks_[stage];
  out.Clear();
  ProbeKey prev;
  bool prev_valid = false;
  uint64_t prev_lb = 0;
  uint64_t prev_ub = 0;
  std::vector<uint32_t> sel;  // passing candidates when checks apply

  // Fault-injection site at the executor's index-scan boundary.
  RE2X_FAILPOINT("store.scan");
  for (size_t r = 0; r < in.size() && !stopped_; ++r) {
    ProbeKey k;
    k.n = cs.key.size() - cs.const_prefix;
    for (size_t i = 0; i < k.n; ++i) {
      const KeyPart& part = cs.key[cs.const_prefix + i];
      k.pos[i] = part.pos;
      k.val[i] = part.is_const ? part.cid : in.at(r, part.slot);
    }
    uint64_t lb;
    uint64_t ub;
    const int cmp = prev_valid && k.n != 0 ? CompareKeys(k, prev) : 0;
    if (k.n == 0) {
      lb = 0;
      ub = cs.run.size();
    } else if (prev_valid && cmp == 0) {
      // Duplicate probe key: reuse the previous equal range verbatim.
      lb = prev_lb;
      ub = prev_ub;
    } else {
      // Stamp the row's key values into the const-prefix sentinel
      // templates; unconstrained trailing components stay 0 / kMaxTermId,
      // so the full-triple searches land exactly on the key equal range.
      rdf::EncodedTriple lo = cs.lo_base;
      rdf::EncodedTriple hi = cs.hi_base;
      for (size_t i = 0; i < k.n; ++i) {
        SetComp(&lo, k.pos[i], k.val[i]);
        SetComp(&hi, k.pos[i], k.val[i]);
      }
      if (prev_valid && cmp > 0) {
        // Merge path: the block's probe keys advance in the run's sort
        // order, so the next range starts at or after the previous one.
        lb = cs.run.GallopLowerBound(prev_ub, lo, &cs.search_scratch);
      } else {
        // Out-of-order probe: binary search for the range start, then
        // gallop to its end (ranges are small relative to the run).
        lb = cs.run.LowerBound(lo, &cs.search_scratch);
      }
      ub = cs.run.GallopUpperBound(lb, hi, &cs.search_scratch);
    }
    prev = k;
    prev_valid = true;
    prev_lb = lb;
    prev_ub = ub;

    uint64_t cur = lb;
    while (cur < ub && !stopped_) {
      if (out.full()) {
        RE2X_RETURN_IF_ERROR(RunStage(stage + 1, out));
        out.Clear();
        continue;
      }
      const uint64_t want =
          std::min<uint64_t>(ub - cur, out.capacity() - out.size());
      // Raw runs hand back the whole remaining sub-span at once;
      // compressed runs stop at the next block boundary, so `chunk` may
      // fall short of `want` and the loop fetches the next block.
      const std::span<const rdf::EncodedTriple> tri =
          cs.run.Fetch(cur, want, &cs.fetch_scratch);
      const size_t chunk = tri.size();
      // Scanned entries are counted and charged as they are consumed, in
      // chunks bounded by the block capacity: guard polling granularity
      // stays within kGuardCheckInterval even for one huge equal range,
      // and a row-capped early exit stops the count mid-range, like the
      // volcano path.
      if (profiling_) step_prof_[stage].scanned += chunk;
      RE2X_RETURN_IF_ERROR(BumpOps(chunk));
      size_t appended;
      if (cs.check_pairs.empty()) {
        size_t first = out.GrowRows(chunk);
        // Broadcast only the already-bound parent columns, then write the
        // bind columns from the sorted run; later-bound columns get
        // written by their own stage before anything reads them.
        for (int s : cs.broadcast_slots) {
          std::fill_n(out.column(s) + first, chunk, in.at(r, s));
        }
        for (int s : cs.invalidate_slots) {
          std::fill_n(out.column(s) + first, chunk, rdf::kInvalidTermId);
        }
        for (int pos = 0; pos < 3; ++pos) {
          if (cs.bind_slot[pos] < 0) continue;
          rdf::TermId* col = out.column(cs.bind_slot[pos]) + first;
          for (size_t j = 0; j < chunk; ++j) col[j] = Comp(tri[j], pos);
        }
        appended = chunk;
      } else {
        sel.clear();
        for (size_t j = 0; j < chunk; ++j) {
          bool ok = true;
          for (const auto& [pos, fp] : cs.check_pairs) {
            if (Comp(tri[j], pos) != Comp(tri[j], fp)) {
              ok = false;
              break;
            }
          }
          if (ok) sel.push_back(static_cast<uint32_t>(j));
        }
        size_t first = out.GrowRows(sel.size());
        for (int s : cs.broadcast_slots) {
          std::fill_n(out.column(s) + first, sel.size(), in.at(r, s));
        }
        for (int s : cs.invalidate_slots) {
          std::fill_n(out.column(s) + first, sel.size(), rdf::kInvalidTermId);
        }
        for (int pos = 0; pos < 3; ++pos) {
          if (cs.bind_slot[pos] < 0) continue;
          rdf::TermId* col = out.column(cs.bind_slot[pos]) + first;
          for (size_t j = 0; j < sel.size(); ++j) {
            col[j] = Comp(tri[sel[j]], pos);
          }
        }
        appended = sel.size();
      }
      cur += chunk;
      if (appended == 0) continue;
      uint64_t survivors = appended;
      if (cs.has_filters) {
        RE2X_RETURN_IF_ERROR(ApplyStepFilters(
            stage + 1, &out, out.size() - appended, &survivors));
      }
      if (survivors != 0) {
        if (profiling_) step_prof_[stage].rows_out += survivors;
        if (options_.guard != nullptr) {
          options_.guard->ChargeRows(survivors);
          // Budget-only recheck at the charge site: a row-budget overrun
          // surfaces within one batch even when no row ever reaches the
          // emit path (e.g. a highly selective later step).
          RE2X_RETURN_IF_ERROR(options_.guard->CheckBudgets());
        }
      }
    }
  }
  if (!out.empty() && !stopped_) {
    util::Status st = RunStage(stage + 1, out);
    out.Clear();
    return st;
  }
  return util::Status::OK();
}

// Left-join extension at block granularity: each parent row either gets
// its matched extensions appended (in index order) or falls through
// unchanged.
util::Status VectorizedRunner::RunOptionalStage(size_t block,
                                                const BindingBlock& in) {
  if (stopped_ || in.empty()) return util::Status::OK();
  if (block == plan_.optionals.size()) return EmitBlock(in);
  TimeGuard time_guard(timing_ ? &opt_prof_[block].micros : nullptr);
  if (profiling_) opt_prof_[block].rows_in += in.size();
  const PlannedOptional& po = plan_.optionals[block];
  if (po.never_matches || po.steps.empty()) {
    if (profiling_) opt_prof_[block].rows_out += in.size();
    return RunOptionalStage(block + 1, in);
  }
  BindingBlock& out = opt_blocks_[block];
  out.Clear();
  // This block's own scratch row: the mid-loop flushes here and in
  // OptionalPattern recurse into later blocks, whose ExtractRow would
  // clobber a shared row while this block's iteration still reads it.
  std::vector<rdf::TermId>& scratch = scratch_rows_[block];
  for (size_t r = 0; r < in.size() && !stopped_; ++r) {
    in.ExtractRow(r, &scratch);
    bool matched = false;
    RE2X_RETURN_IF_ERROR(OptionalPattern(block, 0, &matched, &out));
    if (!matched && !stopped_) {
      if (profiling_) ++opt_prof_[block].rows_out;
      out.AppendRow(scratch);
      // Flush as soon as the block fills (not lazily before the next
      // append): a row-capped run must stop scanning exactly where the
      // volcano runner's eager emission would.
      if (out.full()) {
        RE2X_RETURN_IF_ERROR(RunOptionalStage(block + 1, out));
        out.Clear();
      }
    }
  }
  if (!out.empty() && !stopped_) {
    util::Status st = RunOptionalStage(block + 1, out);
    out.Clear();
    return st;
  }
  return util::Status::OK();
}

// Per-pattern OPTIONAL matching stays row-at-a-time over the scratch row:
// variables bound by *earlier OPTIONAL blocks* are only known per row
// (left-join fall-throughs leave them unbound), so the probe shape cannot
// be compiled statically the way mandatory steps can.
util::Status VectorizedRunner::OptionalPattern(size_t block, size_t idx,
                                               bool* matched,
                                               BindingBlock* out) {
  const PlannedOptional& po = plan_.optionals[block];
  std::vector<rdf::TermId>& scratch = scratch_rows_[block];
  if (idx == po.steps.size()) {
    *matched = true;
    if (profiling_) {
      ++opt_prof_[block].matched;
      ++opt_prof_[block].rows_out;
    }
    if (options_.guard != nullptr) {
      options_.guard->ChargeRows(1);
      RE2X_RETURN_IF_ERROR(options_.guard->CheckBudgets());
    }
    if (stopped_) return util::Status::OK();
    out->AppendRow(scratch);
    // Flush as soon as the block fills (not lazily before the next
    // append): a row-capped run must stop scanning exactly where the
    // volcano runner's eager emission would.
    if (out->full()) {
      RE2X_RETURN_IF_ERROR(RunOptionalStage(block + 1, *out));
      out->Clear();
    }
    return util::Status::OK();
  }
  const PhysicalPattern& pp = po.steps[idx];
  rdf::TriplePattern q;
  auto fix = [&](rdf::TermId cid, int slot) -> rdf::TermId {
    if (cid != rdf::kInvalidTermId) return cid;
    if (slot >= 0 && scratch[slot] != rdf::kInvalidTermId) {
      return scratch[slot];
    }
    return rdf::kInvalidTermId;
  };
  q.s = fix(pp.s_id, pp.s_slot);
  q.p = fix(pp.p_id, pp.p_slot);
  q.o = fix(pp.o_id, pp.o_slot);
  // Pooled per (block, step) recursion depth — each depth is on the stack
  // at most once, so reattaching here cannot clobber a live scan.
  rdf::IndexCursor& cursor = opt_cursors_[block][idx];
  cursor.Attach(store_.Match(q));
  for (std::span<const rdf::EncodedTriple> tri = cursor.NextChunk();
       !tri.empty(); tri = cursor.NextChunk()) {
    for (const rdf::EncodedTriple& t : tri) {
      if (stopped_) return util::Status::OK();
      if (profiling_) ++opt_prof_[block].scanned;
      RE2X_RETURN_IF_ERROR(BumpOps(1));
      int newly_bound[3];
      int n_new = 0;
      bool consistent = true;
      auto bind = [&](int slot, rdf::TermId value) {
        if (slot < 0) return;
        if (scratch[slot] == rdf::kInvalidTermId) {
          scratch[slot] = value;
          newly_bound[n_new++] = slot;
        } else if (scratch[slot] != value) {
          consistent = false;
        }
      };
      bind(pp.s_slot, t.s);
      if (consistent) bind(pp.p_slot, t.p);
      if (consistent) bind(pp.o_slot, t.o);
      if (consistent) {
        util::Status st = OptionalPattern(block, idx + 1, matched, out);
        if (!st.ok()) {
          for (int i = 0; i < n_new; ++i) {
            scratch[newly_bound[i]] = rdf::kInvalidTermId;
          }
          return st;
        }
      }
      for (int i = 0; i < n_new; ++i) {
        scratch[newly_bound[i]] = rdf::kInvalidTermId;
      }
    }
  }
  return util::Status::OK();
}

util::Status VectorizedRunner::EmitBlock(const BindingBlock& in) {
  for (size_t r = 0; r < in.size() && !stopped_; ++r) {
    bool pass = true;
    for (const PlannedFilter& pf : plan_.post_optional_filters) {
      Ebv v = EvalExpr(store_, *pf.expr, [&](const std::string& n) {
        int slot = pf.slots.SlotOf(n);
        rdf::TermId val = slot < 0 ? rdf::kInvalidTermId : in.at(r, slot);
        return val == rdf::kInvalidTermId ? Cell::Null() : Cell::OfTerm(val);
      });
      if (v != Ebv::kTrue) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    in.ExtractRow(r, &row_buf_);
    ++emitted_;
    (*on_row_)(row_buf_);
    if (row_cap_ != 0 && ++rows_emitted_ >= row_cap_) stopped_ = true;
    // Re-check budgets on every emitted row: the sink may have charged
    // result bytes / group-state bytes against the guard just now.
    if (options_.guard != nullptr) {
      RE2X_RETURN_IF_ERROR(options_.guard->CheckBudgets());
    }
    RE2X_RETURN_IF_ERROR(BumpOps(1));
  }
  return util::Status::OK();
}

}  // namespace re2xolap::sparql
