#ifndef RE2XOLAP_SPARQL_PARSER_H_
#define RE2XOLAP_SPARQL_PARSER_H_

#include <string_view>

#include "sparql/ast.h"
#include "util/result.h"

namespace re2xolap::sparql {

/// Parses the SPARQL subset used by the system:
///
///   [PREFIX ns: <iri>]*
///   SELECT [DISTINCT] (?var | (AGG(?v|*) AS ?alias))+ | *
///   WHERE { triple-block (FILTER expr)* }
///   [GROUP BY ?var+] [ORDER BY [ASC|DESC](?col)+] [LIMIT n] [OFFSET n]
///
/// Triple blocks support `;` predicate-object lists and `/` property
/// paths on predicates (desugared into fresh `__p<N>` variables).
/// FILTER expressions support comparisons, && || !, IN lists and
/// parentheses. Aggregates: SUM, MIN, MAX, AVG, COUNT (incl. COUNT(*)).
util::Result<SelectQuery> ParseQuery(std::string_view text);

}  // namespace re2xolap::sparql

#endif  // RE2XOLAP_SPARQL_PARSER_H_
