#include "sparql/result_table.h"

#include "util/string_utils.h"
#include "util/table_printer.h"

namespace re2xolap::sparql {

int ResultTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

double ResultTable::NumericValue(const Cell& cell) const {
  switch (cell.kind) {
    case Cell::Kind::kNumber:
      return cell.number;
    case Cell::Kind::kTerm:
      return store_ ? store_->term(cell.term).AsDouble() : 0.0;
    case Cell::Kind::kNull:
      return 0.0;
  }
  return 0.0;
}

std::string ResultTable::CellToString(const Cell& cell) const {
  switch (cell.kind) {
    case Cell::Kind::kNull:
      return "";
    case Cell::Kind::kNumber:
      return util::FormatDouble(cell.number);
    case Cell::Kind::kTerm: {
      if (!store_) return "#" + std::to_string(cell.term);
      const rdf::Term& t = store_->term(cell.term);
      if (t.is_literal()) return t.value;
      // IRIs: prefer the entity's rdfs:label when one exists.
      rdf::TermId label_pred = store_->Lookup(
          rdf::Term::Iri("http://www.w3.org/2000/01/rdf-schema#label"));
      if (label_pred != rdf::kInvalidTermId) {
        for (const rdf::EncodedTriple& lt :
             store_->Match({cell.term, label_pred, rdf::kInvalidTermId})) {
          const rdf::Term& o = store_->term(lt.o);
          if (o.is_literal()) return o.value;
        }
      }
      return t.value;
    }
  }
  return "";
}

void ResultTable::Print(std::ostream& os, size_t max_rows) const {
  util::TablePrinter printer(columns_);
  size_t shown = 0;
  for (const Row& row : rows_) {
    if (shown++ >= max_rows) break;
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const Cell& c : row) cells.push_back(CellToString(c));
    printer.AddRow(std::move(cells));
  }
  printer.Print(os);
  if (rows_.size() > max_rows) {
    os << "... (" << rows_.size() - max_rows << " more rows)\n";
  }
}

}  // namespace re2xolap::sparql
