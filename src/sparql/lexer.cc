#include "sparql/lexer.h"

#include <cctype>

namespace re2xolap::sparql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

util::Status LexError(size_t pos, const std::string& what) {
  return util::Status::ParseError("lex error at offset " +
                                  std::to_string(pos) + ": " + what);
}

}  // namespace

util::Result<std::vector<Token>> Tokenize(std::string_view in) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto push = [&](TokenKind k, std::string v, size_t pos) {
    tokens.push_back(Token{k, std::move(v), pos});
  };
  while (i < in.size()) {
    char c = in[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < in.size() && in[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    switch (c) {
      case '{':
        push(TokenKind::kLBrace, "{", start);
        ++i;
        continue;
      case '}':
        push(TokenKind::kRBrace, "}", start);
        ++i;
        continue;
      case '(':
        push(TokenKind::kLParen, "(", start);
        ++i;
        continue;
      case ')':
        push(TokenKind::kRParen, ")", start);
        ++i;
        continue;
      case ',':
        push(TokenKind::kComma, ",", start);
        ++i;
        continue;
      case ';':
        push(TokenKind::kSemicolon, ";", start);
        ++i;
        continue;
      case '/':
        push(TokenKind::kSlash, "/", start);
        ++i;
        continue;
      case '*':
        push(TokenKind::kStar, "*", start);
        ++i;
        continue;
      case '=':
        push(TokenKind::kEq, "=", start);
        ++i;
        continue;
      default:
        break;
    }
    if (c == '^' && i + 1 < in.size() && in[i + 1] == '^') {
      push(TokenKind::kCaretCaret, "^^", start);
      i += 2;
      continue;
    }
    if (c == '&' && i + 1 < in.size() && in[i + 1] == '&') {
      push(TokenKind::kAndAnd, "&&", start);
      i += 2;
      continue;
    }
    if (c == '|' && i + 1 < in.size() && in[i + 1] == '|') {
      push(TokenKind::kOrOr, "||", start);
      i += 2;
      continue;
    }
    if (c == '!') {
      if (i + 1 < in.size() && in[i + 1] == '=') {
        push(TokenKind::kNe, "!=", start);
        i += 2;
      } else {
        push(TokenKind::kBang, "!", start);
        ++i;
      }
      continue;
    }
    if (c == '>') {
      if (i + 1 < in.size() && in[i + 1] == '=') {
        push(TokenKind::kGe, ">=", start);
        i += 2;
      } else {
        push(TokenKind::kGt, ">", start);
        ++i;
      }
      continue;
    }
    if (c == '<') {
      if (i + 1 < in.size() && in[i + 1] == '=') {
        push(TokenKind::kLe, "<=", start);
        i += 2;
        continue;
      }
      // IRI if a '>' occurs before any whitespace; else a '<' operator.
      size_t j = i + 1;
      bool is_iri = false;
      while (j < in.size()) {
        if (in[j] == '>') {
          is_iri = true;
          break;
        }
        if (std::isspace(static_cast<unsigned char>(in[j]))) break;
        ++j;
      }
      if (is_iri) {
        push(TokenKind::kIri, std::string(in.substr(i + 1, j - i - 1)), start);
        i = j + 1;
      } else {
        push(TokenKind::kLt, "<", start);
        ++i;
      }
      continue;
    }
    if (c == '?' || c == '$') {
      size_t j = i + 1;
      while (j < in.size() && IsIdentChar(in[j])) ++j;
      if (j == i + 1) return LexError(start, "empty variable name");
      push(TokenKind::kVariable, std::string(in.substr(i + 1, j - i - 1)),
           start);
      i = j;
      continue;
    }
    if (c == '"') {
      std::string value;
      size_t j = i + 1;
      while (j < in.size() && in[j] != '"') {
        if (in[j] == '\\' && j + 1 < in.size()) ++j;
        value += in[j];
        ++j;
      }
      if (j >= in.size()) return LexError(start, "unterminated string");
      push(TokenKind::kString, std::move(value), start);
      i = j + 1;
      continue;
    }
    if (IsDigit(c) || (c == '.' && i + 1 < in.size() && IsDigit(in[i + 1])) ||
        (c == '-' && i + 1 < in.size() &&
         (IsDigit(in[i + 1]) || in[i + 1] == '.'))) {
      size_t j = i;
      if (in[j] == '-') ++j;
      bool is_double = false;
      while (j < in.size() && (IsDigit(in[j]) || in[j] == '.' ||
                               in[j] == 'e' || in[j] == 'E' ||
                               ((in[j] == '+' || in[j] == '-') && j > i &&
                                (in[j - 1] == 'e' || in[j - 1] == 'E')))) {
        if (in[j] == '.' || in[j] == 'e' || in[j] == 'E') {
          // A '.' directly followed by a non-digit is the statement
          // terminator, not part of the number.
          if (in[j] == '.' && (j + 1 >= in.size() || !IsDigit(in[j + 1]))) {
            break;
          }
          is_double = true;
        }
        ++j;
      }
      push(is_double ? TokenKind::kDouble : TokenKind::kInteger,
           std::string(in.substr(i, j - i)), start);
      i = j;
      continue;
    }
    if (c == '.') {
      push(TokenKind::kDot, ".", start);
      ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < in.size() && IsIdentChar(in[j])) ++j;
      // "ns:local" is a prefixed name.
      if (j < in.size() && in[j] == ':') {
        size_t k = j + 1;
        while (k < in.size() && (IsIdentChar(in[k]) || in[k] == '.')) ++k;
        // Trailing '.' belongs to the statement, not the local name.
        while (k > j + 1 && in[k - 1] == '.') --k;
        push(TokenKind::kPrefixedName, std::string(in.substr(i, k - i)),
             start);
        i = k;
      } else {
        push(TokenKind::kIdent, std::string(in.substr(i, j - i)), start);
        i = j;
      }
      continue;
    }
    return LexError(start, std::string("unexpected character '") + c + "'");
  }
  tokens.push_back(Token{TokenKind::kEof, "", in.size()});
  return tokens;
}

}  // namespace re2xolap::sparql
