#include "sparql/join_runner.h"

#include <chrono>

#include "sparql/ebv.h"
#include "util/failpoint.h"

namespace re2xolap::sparql {

namespace {

constexpr uint64_t kGuardCheckInterval = 8192;

/// Accumulates inclusive wall time into `*acc` over the guard's lifetime;
/// a null target disables the clock reads entirely.
class TimeGuard {
 public:
  explicit TimeGuard(double* acc) : acc_(acc) {
    if (acc_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~TimeGuard() {
    if (acc_ != nullptr) {
      *acc_ += std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - start_)
                   .count();
    }
  }
  TimeGuard(const TimeGuard&) = delete;
  TimeGuard& operator=(const TimeGuard&) = delete;

 private:
  double* acc_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

std::string TermShortName(const rdf::TripleStore& store, rdf::TermId id) {
  const rdf::Term& t = store.term(id);
  if (t.is_iri()) {
    size_t cut = t.value.find_last_of("/#");
    return cut == std::string::npos ? t.value : t.value.substr(cut + 1);
  }
  return "\"" + t.value + "\"";
}

std::string PatternLabel(const rdf::TripleStore& store,
                         const std::vector<std::string>& slot_names,
                         const PhysicalPattern& pp, const char* prefix) {
  auto pos = [&](rdf::TermId id, int slot) -> std::string {
    if (id != rdf::kInvalidTermId) return TermShortName(store, id);
    if (slot >= 0 && static_cast<size_t>(slot) < slot_names.size()) {
      return "?" + slot_names[slot];
    }
    return "?_";
  };
  return std::string(prefix) + " (" + pos(pp.s_id, pp.s_slot) + " " +
         pos(pp.p_id, pp.p_slot) + " " + pos(pp.o_id, pp.o_slot) + ")";
}

JoinRunner::JoinRunner(const rdf::TripleStore& store, const Plan& plan,
                       const ExecOptions& options, ExecStats* stats)
    : store_(store),
      plan_(plan),
      options_(options),
      stats_(stats),
      profiling_(stats != nullptr),
      timing_(stats != nullptr && options.profile) {}

util::Status JoinRunner::Run(RowSink on_row, uint64_t row_cap) {
  bindings_.assign(plan_.slot_count, rdf::kInvalidTermId);
  step_cursors_.resize(plan_.steps.size());
  opt_cursors_.resize(plan_.optionals.size());
  for (size_t b = 0; b < plan_.optionals.size(); ++b) {
    opt_cursors_[b].resize(plan_.optionals[b].steps.size());
  }
  row_cap_ = row_cap;
  rows_emitted_ = 0;
  emitted_ = 0;
  stopped_ = false;
  if (profiling_) {
    step_prof_.assign(plan_.steps.size(), StepProf{});
    opt_prof_.assign(plan_.optionals.size(), StepProf{});
  }
  timer_.Restart();
  util::Status st = Step(0, on_row);
  FlushStats();
  return st;
}

/// Rolls the per-step counters up into the ExecStats aggregates:
/// `triples_scanned` sums every index entry inspected; the
/// `intermediate_bindings` total counts bindings produced across all
/// steps — one per successful mandatory-step extension plus one per
/// matched OPTIONAL extension (fall-throughs bind nothing).
void JoinRunner::FlushStats() {
  if (!profiling_) return;
  uint64_t scanned = 0;
  uint64_t produced = 0;
  for (const StepProf& sp : step_prof_) {
    scanned += sp.scanned;
    produced += sp.rows_out;
  }
  for (const StepProf& op : opt_prof_) {
    scanned += op.scanned;
    produced += op.matched;
  }
  stats_->triples_scanned += scanned;
  stats_->intermediate_bindings += produced;
}

util::Status JoinRunner::CheckGuard() {
  const util::ExecGuard* guard = options_.guard;
  if (options_.timeout_millis == 0 && guard == nullptr) {
    return util::Status::OK();
  }
  // The full poll (clock read included) is amortized behind the interval
  // counter; budgets get their own cheap recheck at every charge site
  // (produced binding, emitted row), so a row-budget overrun surfaces
  // within one produced binding even when the interval never trips.
  if (++ops_ % kGuardCheckInterval != 0) return util::Status::OK();
  if (options_.timeout_millis != 0 &&
      timer_.ElapsedMillis() > static_cast<double>(options_.timeout_millis)) {
    return util::Status::Timeout("query exceeded " +
                                 std::to_string(options_.timeout_millis) +
                                 " ms");
  }
  if (guard != nullptr) return guard->Check();
  return util::Status::OK();
}

Cell JoinRunner::CellAtSlot(int slot) const {
  if (slot < 0 || bindings_[slot] == rdf::kInvalidTermId) {
    return Cell::Null();
  }
  return Cell::OfTerm(bindings_[slot]);
}

util::Status JoinRunner::ApplyFiltersAfter(size_t step, bool* pass) {
  *pass = true;
  for (const PlannedFilter& pf : plan_.filters) {
    if (pf.apply_after_step != step) continue;
    Ebv v = EvalExpr(store_, *pf.expr, [this, &pf](const std::string& n) {
      return CellAtSlot(pf.slots.SlotOf(n));
    });
    if (v != Ebv::kTrue) {
      *pass = false;
      return util::Status::OK();
    }
  }
  return util::Status::OK();
}

util::Status JoinRunner::Step(size_t step, const RowSink& on_row) {
  if (step == 0) {
    bool pass = true;
    RE2X_RETURN_IF_ERROR(ApplyFiltersAfter(0, &pass));
    if (!pass) return util::Status::OK();
  }
  if (step == plan_.steps.size()) {
    return OptionalStep(0, on_row);
  }
  if (stopped_) return util::Status::OK();
  TimeGuard time_guard(timing_ ? &step_prof_[step].micros : nullptr);
  if (profiling_) ++step_prof_[step].rows_in;
  const PhysicalPattern& pp = plan_.steps[step];
  rdf::TriplePattern q;
  auto fix = [&](rdf::TermId cid, int slot) -> rdf::TermId {
    if (cid != rdf::kInvalidTermId) return cid;
    if (slot >= 0 && bindings_[slot] != rdf::kInvalidTermId) {
      return bindings_[slot];
    }
    return rdf::kInvalidTermId;
  };
  q.s = fix(pp.s_id, pp.s_slot);
  q.p = fix(pp.p_id, pp.p_slot);
  q.o = fix(pp.o_id, pp.o_slot);

  // Fault-injection site at the executor's index-scan boundary.
  RE2X_FAILPOINT("store.scan");
  rdf::IndexCursor& cursor = step_cursors_[step];
  cursor.Attach(store_.Match(q));
  for (std::span<const rdf::EncodedTriple> chunk = cursor.NextChunk();
       !chunk.empty(); chunk = cursor.NextChunk()) {
    for (const rdf::EncodedTriple& t : chunk) {
      if (stopped_) return util::Status::OK();
      if (profiling_) ++step_prof_[step].scanned;
      RE2X_RETURN_IF_ERROR(CheckGuard());
      // Bind unbound slots; verify repeated-variable consistency.
      int newly_bound[3];
      int n_new = 0;
      bool consistent = true;
      auto bind = [&](int slot, rdf::TermId value) {
        if (slot < 0) return;
        if (bindings_[slot] == rdf::kInvalidTermId) {
          bindings_[slot] = value;
          newly_bound[n_new++] = slot;
        } else if (bindings_[slot] != value) {
          consistent = false;
        }
      };
      bind(pp.s_slot, t.s);
      if (consistent) bind(pp.p_slot, t.p);
      if (consistent) bind(pp.o_slot, t.o);
      if (consistent) {
        bool pass = true;
        RE2X_RETURN_IF_ERROR(ApplyFiltersAfter(step + 1, &pass));
        if (pass) {
          if (profiling_) ++step_prof_[step].rows_out;
          if (options_.guard != nullptr) {
            options_.guard->ChargeRows(1);
            // Budget-only recheck at the charge site: a row-budget overrun
            // surfaces here even when no row ever reaches the emit path
            // (e.g. a highly selective later step).
            util::Status bst = options_.guard->CheckBudgets();
            if (!bst.ok()) {
              for (int i = 0; i < n_new; ++i) {
                bindings_[newly_bound[i]] = rdf::kInvalidTermId;
              }
              return bst;
            }
          }
          util::Status st = Step(step + 1, on_row);
          if (!st.ok()) {
            for (int i = 0; i < n_new; ++i) {
              bindings_[newly_bound[i]] = rdf::kInvalidTermId;
            }
            return st;
          }
        }
      }
      for (int i = 0; i < n_new; ++i) {
        bindings_[newly_bound[i]] = rdf::kInvalidTermId;
      }
    }
  }
  return util::Status::OK();
}

// Left-join extension: tries to match optional block `block`; every
// complete extension recurses into the next block, and a block with no
// match falls through with its variables left unbound.
util::Status JoinRunner::OptionalStep(size_t block, const RowSink& on_row) {
  if (stopped_) return util::Status::OK();
  if (block == plan_.optionals.size()) {
    // Filters that could not be attached to the mandatory join.
    for (const PlannedFilter& pf : plan_.post_optional_filters) {
      Ebv v = EvalExpr(store_, *pf.expr, [this, &pf](const std::string& n) {
        return CellAtSlot(pf.slots.SlotOf(n));
      });
      if (v != Ebv::kTrue) return util::Status::OK();
    }
    ++emitted_;
    on_row(bindings_);
    if (row_cap_ != 0 && ++rows_emitted_ >= row_cap_) stopped_ = true;
    // Re-check budgets on every emitted row: the sink may have charged
    // result bytes / group-state bytes against the guard just now.
    if (options_.guard != nullptr) {
      RE2X_RETURN_IF_ERROR(options_.guard->CheckBudgets());
    }
    return CheckGuard();
  }
  TimeGuard time_guard(timing_ ? &opt_prof_[block].micros : nullptr);
  if (profiling_) ++opt_prof_[block].rows_in;
  const PlannedOptional& po = plan_.optionals[block];
  if (po.never_matches || po.steps.empty()) {
    if (profiling_) ++opt_prof_[block].rows_out;
    return OptionalStep(block + 1, on_row);
  }
  bool matched = false;
  RE2X_RETURN_IF_ERROR(OptionalPattern(block, 0, &matched, on_row));
  if (!matched && !stopped_) {
    if (profiling_) ++opt_prof_[block].rows_out;
    return OptionalStep(block + 1, on_row);
  }
  return util::Status::OK();
}

util::Status JoinRunner::OptionalPattern(size_t block, size_t idx,
                                         bool* matched,
                                         const RowSink& on_row) {
  const PlannedOptional& po = plan_.optionals[block];
  if (idx == po.steps.size()) {
    *matched = true;
    if (profiling_) {
      ++opt_prof_[block].matched;
      ++opt_prof_[block].rows_out;
    }
    if (options_.guard != nullptr) {
      options_.guard->ChargeRows(1);
      RE2X_RETURN_IF_ERROR(options_.guard->CheckBudgets());
    }
    return OptionalStep(block + 1, on_row);
  }
  const PhysicalPattern& pp = po.steps[idx];
  rdf::TriplePattern q;
  auto fix = [&](rdf::TermId cid, int slot) -> rdf::TermId {
    if (cid != rdf::kInvalidTermId) return cid;
    if (slot >= 0 && bindings_[slot] != rdf::kInvalidTermId) {
      return bindings_[slot];
    }
    return rdf::kInvalidTermId;
  };
  q.s = fix(pp.s_id, pp.s_slot);
  q.p = fix(pp.p_id, pp.p_slot);
  q.o = fix(pp.o_id, pp.o_slot);
  rdf::IndexCursor& cursor = opt_cursors_[block][idx];
  cursor.Attach(store_.Match(q));
  for (std::span<const rdf::EncodedTriple> chunk = cursor.NextChunk();
       !chunk.empty(); chunk = cursor.NextChunk()) {
    for (const rdf::EncodedTriple& t : chunk) {
      if (stopped_) return util::Status::OK();
      if (profiling_) ++opt_prof_[block].scanned;
      RE2X_RETURN_IF_ERROR(CheckGuard());
      int newly_bound[3];
      int n_new = 0;
      bool consistent = true;
      auto bind = [&](int slot, rdf::TermId value) {
        if (slot < 0) return;
        if (bindings_[slot] == rdf::kInvalidTermId) {
          bindings_[slot] = value;
          newly_bound[n_new++] = slot;
        } else if (bindings_[slot] != value) {
          consistent = false;
        }
      };
      bind(pp.s_slot, t.s);
      if (consistent) bind(pp.p_slot, t.p);
      if (consistent) bind(pp.o_slot, t.o);
      if (consistent) {
        util::Status st = OptionalPattern(block, idx + 1, matched, on_row);
        if (!st.ok()) {
          for (int i = 0; i < n_new; ++i) {
            bindings_[newly_bound[i]] = rdf::kInvalidTermId;
          }
          return st;
        }
      }
      for (int i = 0; i < n_new; ++i) {
        bindings_[newly_bound[i]] = rdf::kInvalidTermId;
      }
    }
  }
  return util::Status::OK();
}

}  // namespace re2xolap::sparql
