#include "sparql/post_ops.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "sparql/ebv.h"
#include "util/timer.h"

namespace re2xolap::sparql {

namespace {

/// How many comparator invocations / loop iterations between guard polls
/// inside the post-join operators. Sorts do a clock read only every
/// kGuardPollInterval comparisons; the rest of the time the poll is two
/// relaxed atomic loads.
constexpr uint64_t kGuardPollInterval = 1024;

/// std::sort comparators cannot return a Status, so a tripped guard is
/// reported by throwing this (internal to this TU) and converting it back
/// to a Status at the operator boundary. The sort is abandoned mid-way;
/// the row vector stays valid (possibly permuted) because comparators
/// never mutate rows.
struct GuardInterrupted {
  util::Status status;
};

/// Polls the guard every kGuardPollInterval calls; throws GuardInterrupted
/// on violation. `counter` is owned by the calling operator.
void PollGuardOrThrow(const util::ExecGuard* guard, uint64_t* counter) {
  if (guard == nullptr) return;
  if (++*counter % kGuardPollInterval != 0) return;
  util::Status st = guard->Check();
  if (!st.ok()) throw GuardInterrupted{std::move(st)};
}

}  // namespace

void AggState::Update(double v) {
  sum += v;
  min = std::min(min, v);
  max = std::max(max, v);
  ++count;
}

double AggState::Finish(AggFunc f) const {
  switch (f) {
    case AggFunc::kSum:
      return sum;
    case AggFunc::kMin:
      return count ? min : 0.0;
    case AggFunc::kMax:
      return count ? max : 0.0;
    case AggFunc::kAvg:
      return count ? sum / static_cast<double>(count) : 0.0;
    case AggFunc::kCount:
      return static_cast<double>(count);
  }
  return 0.0;
}

GroupAggregator::GroupAggregator(const rdf::TripleStore& store,
                                 const std::vector<SelectItem>& items,
                                 const std::vector<int>& item_slots,
                                 std::vector<int> group_slots,
                                 const util::ExecGuard* guard)
    : store_(store),
      items_(items),
      item_slots_(item_slots),
      group_slots_(std::move(group_slots)),
      guard_(guard) {
  for (const SelectItem& it : items_) n_aggs_ += it.is_aggregate ? 1 : 0;
}

void GroupAggregator::Accumulate(const std::vector<rdf::TermId>& bindings) {
  std::vector<rdf::TermId> key(group_slots_.size());
  for (size_t i = 0; i < group_slots_.size(); ++i) {
    key[i] = group_slots_[i] >= 0 ? bindings[group_slots_[i]]
                                  : rdf::kInvalidTermId;
  }
  // A pure GROUP BY without aggregates still registers the group here.
  Group& g = groups_[key];
  if (g.aggs.empty()) {
    g.aggs.resize(n_aggs_);
    if (guard_ != nullptr) {
      // New group: charge key + aggregate state. The violation (if any)
      // surfaces at the join loop's next budget poll — Accumulate itself
      // cannot fail.
      guard_->ChargeBytes(key.size() * sizeof(rdf::TermId) +
                          n_aggs_ * sizeof(AggState) + sizeof(Group));
    }
  }
  size_t agg_idx = 0;
  for (size_t i = 0; i < items_.size(); ++i) {
    if (!items_[i].is_aggregate) continue;
    AggState& state = g.aggs[agg_idx++];
    if (items_[i].count_star) {
      state.Update(0.0);  // COUNT(*): value irrelevant
    } else {
      int slot = item_slots_[i];
      if (slot >= 0 && bindings[slot] != rdf::kInvalidTermId) {
        if (items_[i].distinct_agg) {
          if (guard_ != nullptr &&
              state.distinct_terms.find(bindings[slot]) ==
                  state.distinct_terms.end()) {
            guard_->ChargeBytes(sizeof(rdf::TermId) * 4);  // ~set node
          }
          state.UpdateDistinct(bindings[slot]);
        } else {
          state.Update(store_.term(bindings[slot]).AsDouble());
        }
      }
    }
  }
}

util::Result<size_t> GroupAggregator::Emit(
    const std::vector<Variable>& group_by, ResultTable* table) {
  if (guard_ != nullptr) RE2X_RETURN_IF_ERROR(guard_->Check());
  uint64_t polls = 0;
  for (const auto& [key, group] : groups_) {
    if (guard_ != nullptr && ++polls % kGuardPollInterval == 0) {
      RE2X_RETURN_IF_ERROR(guard_->Check());
    }
    Row row(items_.size());
    size_t agg_idx = 0;
    size_t key_pos;
    for (size_t i = 0; i < items_.size(); ++i) {
      if (items_[i].is_aggregate) {
        const AggState& state = group.aggs[agg_idx];
        row[i] = Cell::OfNumber(
            items_[i].distinct_agg
                ? static_cast<double>(state.distinct_terms.size())
                : state.Finish(items_[i].func));
        ++agg_idx;
        continue;
      }
      // Find this variable's position in the group key.
      key_pos = 0;
      for (size_t gi = 0; gi < group_by.size(); ++gi) {
        if (group_by[gi].name == items_[i].var.name) {
          key_pos = gi;
          break;
        }
      }
      row[i] = key[key_pos] != rdf::kInvalidTermId ? Cell::OfTerm(key[key_pos])
                                                   : Cell::Null();
    }
    table->AddRow(std::move(row));
  }
  return groups_.size();
}

util::Status ApplyHaving(const rdf::TripleStore& store,
                         const SelectQuery& query, ResultTable* table,
                         std::vector<PostOpProf>* post_ops,
                         const util::ExecGuard* guard) {
  if (query.having.empty()) return util::Status::OK();
  if (guard != nullptr) RE2X_RETURN_IF_ERROR(guard->Check());
  util::WallTimer op_timer;
  std::vector<Row>& rows = table->mutable_rows();
  const uint64_t rows_in = rows.size();
  std::vector<Row> kept;
  kept.reserve(rows.size());
  uint64_t polls = 0;
  for (Row& row : rows) {
    if (guard != nullptr && ++polls % kGuardPollInterval == 0) {
      RE2X_RETURN_IF_ERROR(guard->Check());
    }
    auto lookup = [&](const std::string& name) -> Cell {
      int idx = table->ColumnIndex(name);
      return idx < 0 ? Cell::Null() : row[idx];
    };
    bool pass = true;
    for (const ExprPtr& h : query.having) {
      if (EvalExpr(store, *h, lookup) != Ebv::kTrue) {
        pass = false;
        break;
      }
    }
    if (pass) kept.push_back(std::move(row));
  }
  rows.swap(kept);
  post_ops->push_back(
      {"having", rows_in, rows.size(), op_timer.ElapsedMillis()});
  return util::Status::OK();
}

util::Status ApplyDistinct(const rdf::TripleStore& store, ResultTable* table,
                           std::vector<PostOpProf>* post_ops,
                           const util::ExecGuard* guard) {
  if (guard != nullptr) RE2X_RETURN_IF_ERROR(guard->Check());
  util::WallTimer op_timer;
  std::vector<Row>& rows = table->mutable_rows();
  const uint64_t rows_in = rows.size();
  uint64_t polls = 0;
  auto row_less = [&](const Row& a, const Row& b) {
    PollGuardOrThrow(guard, &polls);
    for (size_t i = 0; i < a.size(); ++i) {
      int c = OrderCells(store, a[i], b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  };
  try {
    std::sort(rows.begin(), rows.end(), row_less);
  } catch (const GuardInterrupted& gi) {
    return gi.status;
  }
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  post_ops->push_back(
      {"distinct", rows_in, rows.size(), op_timer.ElapsedMillis()});
  return util::Status::OK();
}

util::Status ApplyOrderBy(const rdf::TripleStore& store,
                          const SelectQuery& query, ResultTable* table,
                          std::vector<PostOpProf>* post_ops,
                          const util::ExecGuard* guard) {
  if (guard != nullptr) RE2X_RETURN_IF_ERROR(guard->Check());
  util::WallTimer op_timer;
  std::vector<std::pair<int, bool>> keys;  // column index, ascending
  for (const OrderKey& k : query.order_by) {
    int idx = table->ColumnIndex(k.column);
    if (idx < 0) {
      return util::Status::InvalidArgument(
          "ORDER BY references unknown column ?" + k.column);
    }
    keys.emplace_back(idx, k.ascending);
  }
  std::vector<Row>& rows = table->mutable_rows();
  uint64_t polls = 0;
  try {
    std::stable_sort(rows.begin(), rows.end(),
                     [&](const Row& a, const Row& b) {
                       PollGuardOrThrow(guard, &polls);
                       for (auto [idx, asc] : keys) {
                         int c = OrderCells(store, a[idx], b[idx]);
                         if (c != 0) return asc ? c < 0 : c > 0;
                       }
                       return false;
                     });
  } catch (const GuardInterrupted& gi) {
    return gi.status;
  }
  post_ops->push_back(
      {"order-by", rows.size(), rows.size(), op_timer.ElapsedMillis()});
  return util::Status::OK();
}

util::Status ApplyLimitOffset(const SelectQuery& query, ResultTable* table,
                              std::vector<PostOpProf>* post_ops,
                              const util::ExecGuard* guard) {
  if (guard != nullptr) RE2X_RETURN_IF_ERROR(guard->Check());
  util::WallTimer op_timer;
  std::vector<Row>& rows = table->mutable_rows();
  const uint64_t rows_in = rows.size();
  size_t begin = std::min<size_t>(query.offset, rows.size());
  size_t end = rows.size();
  if (query.limit.has_value()) {
    end = std::min<size_t>(begin + *query.limit, rows.size());
  }
  std::vector<Row> sliced(rows.begin() + begin, rows.begin() + end);
  rows.swap(sliced);
  post_ops->push_back(
      {"limit/offset", rows_in, rows.size(), op_timer.ElapsedMillis()});
  return util::Status::OK();
}

}  // namespace re2xolap::sparql
