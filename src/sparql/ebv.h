#ifndef RE2XOLAP_SPARQL_EBV_H_
#define RE2XOLAP_SPARQL_EBV_H_

#include <string>
#include <type_traits>

#include "rdf/triple_store.h"
#include "sparql/ast.h"
#include "sparql/result_table.h"

namespace re2xolap::sparql {

/// Tri-state effective boolean value for filter evaluation.
enum class Ebv : uint8_t { kFalse = 0, kTrue = 1, kError = 2 };

Ebv EbvAnd(Ebv a, Ebv b);
Ebv EbvOr(Ebv a, Ebv b);
Ebv EbvNot(Ebv a);

/// Comparison of two cells under SPARQL-ish semantics: numeric when both
/// sides are numeric, lexical when both are non-numeric, error otherwise.
/// Returns {comparable, cmp<0|0|>0}.
struct CellCompare {
  bool comparable = false;
  int cmp = 0;
};

CellCompare CompareCells(const rdf::TripleStore& store, const Cell& a,
                         const Cell& b);

/// Orders cells for ORDER BY / DISTINCT: nulls < numbers < terms.
int OrderCells(const rdf::TripleStore& store, const Cell& a, const Cell& b);

/// Non-owning, non-allocating reference to a variable-lookup callable
/// (`const std::string& -> Cell`). The referenced callable must outlive
/// every call through the reference — pass lambdas inline, never store a
/// VarLookup beyond the expression that created it.
class VarLookup {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, VarLookup>>>
  VarLookup(const F& f)  // NOLINT(runtime/explicit)
      : obj_(&f), fn_([](const void* obj, const std::string& name) {
          return (*static_cast<const F*>(obj))(name);
        }) {}

  Cell operator()(const std::string& name) const { return fn_(obj_, name); }

 private:
  const void* obj_;
  Cell (*fn_)(const void*, const std::string&);
};

/// Evaluates a filter expression against the bindings visible through
/// `lookup`. Bound-variable EBV follows the same rules as constant EBV:
/// boolean literals by value, numeric literals non-zero, any other term
/// by non-emptiness of its lexical form (so an empty-string literal is
/// kFalse whether it appears as a constant or through a variable).
Ebv EvalExpr(const rdf::TripleStore& store, const Expr& e,
             const VarLookup& lookup);

}  // namespace re2xolap::sparql

#endif  // RE2XOLAP_SPARQL_EBV_H_
