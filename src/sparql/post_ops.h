#ifndef RE2XOLAP_SPARQL_POST_OPS_H_
#define RE2XOLAP_SPARQL_POST_OPS_H_

#include <cstdint>
#include <limits>
#include <set>
#include <unordered_map>
#include <vector>

#include "rdf/triple_store.h"
#include "sparql/ast.h"
#include "sparql/result_table.h"
#include "util/exec_guard.h"
#include "util/result.h"
#include "util/status.h"

namespace re2xolap::sparql {

/// Coarse observation of one post-join operator (HAVING / DISTINCT /
/// ORDER BY / LIMIT-OFFSET) for the profile tree: two clock reads per
/// operator per query.
///
/// Every post-join operator takes an optional ExecGuard: it is checked
/// unconditionally at operator entry and polled periodically inside the
/// row loops / sort comparators, so an expired deadline surfaces from the
/// middle of aggregation or sorting — not only from the join loop. A
/// tripped guard returns kTimeout / kResourceExhausted / kCancelled and
/// leaves the table in a valid (possibly partially processed) state.
struct PostOpProf {
  const char* label;
  uint64_t rows_in;
  uint64_t rows_out;
  double millis;
};

/// Running state of one aggregate.
struct AggState {
  double sum = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  uint64_t count = 0;
  std::set<rdf::TermId> distinct_terms;  // only used by COUNT(DISTINCT ?v)

  void Update(double v);
  void UpdateDistinct(rdf::TermId id) { distinct_terms.insert(id); }
  double Finish(AggFunc f) const;
};

/// FNV-1a over a group-key vector of term ids.
struct TermVecHash {
  size_t operator()(const std::vector<rdf::TermId>& v) const {
    size_t h = 14695981039346656037ULL;
    for (rdf::TermId id : v) {
      h ^= id;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

/// Hash-grouping aggregation: accumulates join bindings into per-group
/// aggregate states, then emits one output row per group.
class GroupAggregator {
 public:
  /// `items` / `item_slots` are the projected columns and their binding
  /// slots (-1 for COUNT(*)); `group_slots` the GROUP BY slots in declared
  /// order. All referenced vectors must outlive the aggregator. When a
  /// `guard` is supplied, each newly created group (and each distinct term
  /// retained for COUNT(DISTINCT)) is charged against its byte budget;
  /// the violation surfaces at the join loop's next budget poll.
  GroupAggregator(const rdf::TripleStore& store,
                  const std::vector<SelectItem>& items,
                  const std::vector<int>& item_slots,
                  std::vector<int> group_slots,
                  const util::ExecGuard* guard = nullptr);

  /// Folds one complete join binding into its group.
  void Accumulate(const std::vector<rdf::TermId>& bindings);

  /// Emits one row per group into `table` (group-by columns resolved via
  /// `group_by` order). Polls the guard at entry and every few hundred
  /// groups. Returns the number of groups.
  util::Result<size_t> Emit(const std::vector<Variable>& group_by,
                            ResultTable* table);

  size_t group_count() const { return groups_.size(); }

 private:
  struct Group {
    std::vector<AggState> aggs;
  };

  const rdf::TripleStore& store_;
  const std::vector<SelectItem>& items_;
  const std::vector<int>& item_slots_;
  std::vector<int> group_slots_;
  const util::ExecGuard* guard_;
  size_t n_aggs_ = 0;
  std::unordered_map<std::vector<rdf::TermId>, Group, TermVecHash> groups_;
};

/// HAVING: keeps rows whose post-aggregation filters all evaluate to true
/// (lookups by output column name). Appends one profile record.
util::Status ApplyHaving(const rdf::TripleStore& store,
                         const SelectQuery& query, ResultTable* table,
                         std::vector<PostOpProf>* post_ops,
                         const util::ExecGuard* guard = nullptr);

/// DISTINCT: sorts rows canonically and drops duplicates.
util::Status ApplyDistinct(const rdf::TripleStore& store, ResultTable* table,
                           std::vector<PostOpProf>* post_ops,
                           const util::ExecGuard* guard = nullptr);

/// ORDER BY: stable-sorts rows by the query's sort keys. Fails when a key
/// references an unknown output column.
util::Status ApplyOrderBy(const rdf::TripleStore& store,
                          const SelectQuery& query, ResultTable* table,
                          std::vector<PostOpProf>* post_ops,
                          const util::ExecGuard* guard = nullptr);

/// OFFSET / LIMIT: slices the row window.
util::Status ApplyLimitOffset(const SelectQuery& query, ResultTable* table,
                              std::vector<PostOpProf>* post_ops,
                              const util::ExecGuard* guard = nullptr);

}  // namespace re2xolap::sparql

#endif  // RE2XOLAP_SPARQL_POST_OPS_H_
