#ifndef RE2XOLAP_SPARQL_POST_OPS_H_
#define RE2XOLAP_SPARQL_POST_OPS_H_

#include <cstdint>
#include <limits>
#include <set>
#include <unordered_map>
#include <vector>

#include "rdf/triple_store.h"
#include "sparql/ast.h"
#include "sparql/result_table.h"
#include "util/status.h"

namespace re2xolap::sparql {

/// Coarse observation of one post-join operator (HAVING / DISTINCT /
/// ORDER BY / LIMIT-OFFSET) for the profile tree: two clock reads per
/// operator per query.
struct PostOpProf {
  const char* label;
  uint64_t rows_in;
  uint64_t rows_out;
  double millis;
};

/// Running state of one aggregate.
struct AggState {
  double sum = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  uint64_t count = 0;
  std::set<rdf::TermId> distinct_terms;  // only used by COUNT(DISTINCT ?v)

  void Update(double v);
  void UpdateDistinct(rdf::TermId id) { distinct_terms.insert(id); }
  double Finish(AggFunc f) const;
};

/// FNV-1a over a group-key vector of term ids.
struct TermVecHash {
  size_t operator()(const std::vector<rdf::TermId>& v) const {
    size_t h = 14695981039346656037ULL;
    for (rdf::TermId id : v) {
      h ^= id;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

/// Hash-grouping aggregation: accumulates join bindings into per-group
/// aggregate states, then emits one output row per group.
class GroupAggregator {
 public:
  /// `items` / `item_slots` are the projected columns and their binding
  /// slots (-1 for COUNT(*)); `group_slots` the GROUP BY slots in declared
  /// order. All referenced vectors must outlive the aggregator.
  GroupAggregator(const rdf::TripleStore& store,
                  const std::vector<SelectItem>& items,
                  const std::vector<int>& item_slots,
                  std::vector<int> group_slots);

  /// Folds one complete join binding into its group.
  void Accumulate(const std::vector<rdf::TermId>& bindings);

  /// Emits one row per group into `table` (group-by columns resolved via
  /// `group_by` order). Returns the number of groups.
  size_t Emit(const std::vector<Variable>& group_by, ResultTable* table);

  size_t group_count() const { return groups_.size(); }

 private:
  struct Group {
    std::vector<AggState> aggs;
  };

  const rdf::TripleStore& store_;
  const std::vector<SelectItem>& items_;
  const std::vector<int>& item_slots_;
  std::vector<int> group_slots_;
  size_t n_aggs_ = 0;
  std::unordered_map<std::vector<rdf::TermId>, Group, TermVecHash> groups_;
};

/// HAVING: keeps rows whose post-aggregation filters all evaluate to true
/// (lookups by output column name). Appends one profile record.
void ApplyHaving(const rdf::TripleStore& store, const SelectQuery& query,
                 ResultTable* table, std::vector<PostOpProf>* post_ops);

/// DISTINCT: sorts rows canonically and drops duplicates.
void ApplyDistinct(const rdf::TripleStore& store, ResultTable* table,
                   std::vector<PostOpProf>* post_ops);

/// ORDER BY: stable-sorts rows by the query's sort keys. Fails when a key
/// references an unknown output column.
util::Status ApplyOrderBy(const rdf::TripleStore& store,
                          const SelectQuery& query, ResultTable* table,
                          std::vector<PostOpProf>* post_ops);

/// OFFSET / LIMIT: slices the row window.
void ApplyLimitOffset(const SelectQuery& query, ResultTable* table,
                      std::vector<PostOpProf>* post_ops);

}  // namespace re2xolap::sparql

#endif  // RE2XOLAP_SPARQL_POST_OPS_H_
