#include "sparql/ebv.h"

namespace re2xolap::sparql {

Ebv EbvAnd(Ebv a, Ebv b) {
  if (a == Ebv::kFalse || b == Ebv::kFalse) return Ebv::kFalse;
  if (a == Ebv::kError || b == Ebv::kError) return Ebv::kError;
  return Ebv::kTrue;
}

Ebv EbvOr(Ebv a, Ebv b) {
  if (a == Ebv::kTrue || b == Ebv::kTrue) return Ebv::kTrue;
  if (a == Ebv::kError || b == Ebv::kError) return Ebv::kError;
  return Ebv::kFalse;
}

Ebv EbvNot(Ebv a) {
  if (a == Ebv::kError) return Ebv::kError;
  return a == Ebv::kTrue ? Ebv::kFalse : Ebv::kTrue;
}

CellCompare CompareCells(const rdf::TripleStore& store, const Cell& a,
                         const Cell& b) {
  CellCompare out;
  if (a.is_null() || b.is_null()) return out;
  auto numeric = [&](const Cell& c, double* v) {
    if (c.is_number()) {
      *v = c.number;
      return true;
    }
    const rdf::Term& t = store.term(c.term);
    if (t.is_numeric_literal()) {
      *v = t.AsDouble();
      return true;
    }
    return false;
  };
  double va, vb;
  if (numeric(a, &va) && numeric(b, &vb)) {
    out.comparable = true;
    out.cmp = va < vb ? -1 : (va > vb ? 1 : 0);
    return out;
  }
  if (a.is_term() && b.is_term()) {
    const rdf::Term& ta = store.term(a.term);
    const rdf::Term& tb = store.term(b.term);
    // Different kinds (IRI vs literal) are only ==-comparable.
    out.comparable = true;
    if (ta.kind != tb.kind) {
      out.cmp = ta.kind < tb.kind ? -1 : 1;
      return out;
    }
    int c = ta.value.compare(tb.value);
    out.cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
    return out;
  }
  return out;  // mixed number vs non-numeric term: incomparable
}

int OrderCells(const rdf::TripleStore& store, const Cell& a, const Cell& b) {
  if (a.kind != b.kind) {
    return static_cast<int>(a.kind) < static_cast<int>(b.kind) ? -1 : 1;
  }
  switch (a.kind) {
    case Cell::Kind::kNull:
      return 0;
    case Cell::Kind::kNumber:
      return a.number < b.number ? -1 : (a.number > b.number ? 1 : 0);
    case Cell::Kind::kTerm: {
      CellCompare cc = CompareCells(store, a, b);
      if (cc.comparable) return cc.cmp;
      return a.term < b.term ? -1 : (a.term > b.term ? 1 : 0);
    }
  }
  return 0;
}

namespace {

/// EBV of a term: boolean literals by value, numeric literals non-zero,
/// everything else by non-emptiness of the lexical form. Shared by the
/// constant and bound-variable cases so the two agree on every term.
Ebv TermEbv(const rdf::Term& t) {
  if (t.literal_type == rdf::LiteralType::kBoolean) {
    return t.value == "true" ? Ebv::kTrue : Ebv::kFalse;
  }
  if (t.is_numeric_literal()) {
    return t.AsDouble() != 0.0 ? Ebv::kTrue : Ebv::kFalse;
  }
  return t.value.empty() ? Ebv::kFalse : Ebv::kTrue;
}

}  // namespace

Ebv EvalExpr(const rdf::TripleStore& store, const Expr& e,
             const VarLookup& lookup) {
  switch (e.kind) {
    case ExprKind::kConstant:
      return TermEbv(e.constant);
    case ExprKind::kVariable: {
      Cell c = lookup(e.var.name);
      if (c.is_null()) return Ebv::kError;
      if (c.is_number()) return c.number != 0.0 ? Ebv::kTrue : Ebv::kFalse;
      return TermEbv(store.term(c.term));
    }
    case ExprKind::kCompare: {
      // Evaluate operands to cells.
      auto operand = [&](const Expr& child) -> Cell {
        if (child.kind == ExprKind::kVariable) return lookup(child.var.name);
        if (child.kind == ExprKind::kConstant) {
          if (child.constant.is_numeric_literal()) {
            return Cell::OfNumber(child.constant.AsDouble());
          }
          rdf::TermId id = store.Lookup(child.constant);
          if (id != rdf::kInvalidTermId) return Cell::OfTerm(id);
          // Constant not in the store: compare by materialized value.
          // Represent as number for numerics (handled above); for other
          // terms fall back to lexical comparison through a pseudo-null.
          return Cell::Null();
        }
        return Cell::Null();
      };
      Cell lhs = operand(*e.children[0]);
      Cell rhs = operand(*e.children[1]);
      // Special-case a constant term missing from the dictionary: equal to
      // nothing, unequal to everything bound.
      auto missing_const = [&](const Expr& child, const Cell& cell) {
        return child.kind == ExprKind::kConstant &&
               !child.constant.is_numeric_literal() && cell.is_null();
      };
      bool lhs_missing = missing_const(*e.children[0], lhs);
      bool rhs_missing = missing_const(*e.children[1], rhs);
      if (lhs_missing || rhs_missing) {
        const Cell& other = lhs_missing ? rhs : lhs;
        if (other.is_null()) return Ebv::kError;
        if (e.op == CompareOp::kEq) return Ebv::kFalse;
        if (e.op == CompareOp::kNe) return Ebv::kTrue;
        // Ordering against a missing term: compare lexically with its
        // string form.
        const Expr& cexpr = lhs_missing ? *e.children[0] : *e.children[1];
        std::string other_str;
        if (other.is_number()) return Ebv::kError;
        other_str = store.term(other.term).value;
        int c = lhs_missing ? cexpr.constant.value.compare(other_str)
                            : other_str.compare(cexpr.constant.value);
        // c is "lhs vs rhs" ordering.
        switch (e.op) {
          case CompareOp::kLt:
            return c < 0 ? Ebv::kTrue : Ebv::kFalse;
          case CompareOp::kLe:
            return c <= 0 ? Ebv::kTrue : Ebv::kFalse;
          case CompareOp::kGt:
            return c > 0 ? Ebv::kTrue : Ebv::kFalse;
          case CompareOp::kGe:
            return c >= 0 ? Ebv::kTrue : Ebv::kFalse;
          default:
            return Ebv::kError;
        }
      }
      CellCompare cc = CompareCells(store, lhs, rhs);
      if (!cc.comparable) return Ebv::kError;
      bool r = false;
      switch (e.op) {
        case CompareOp::kEq:
          r = cc.cmp == 0;
          break;
        case CompareOp::kNe:
          r = cc.cmp != 0;
          break;
        case CompareOp::kLt:
          r = cc.cmp < 0;
          break;
        case CompareOp::kLe:
          r = cc.cmp <= 0;
          break;
        case CompareOp::kGt:
          r = cc.cmp > 0;
          break;
        case CompareOp::kGe:
          r = cc.cmp >= 0;
          break;
      }
      return r ? Ebv::kTrue : Ebv::kFalse;
    }
    case ExprKind::kAnd: {
      Ebv acc = Ebv::kTrue;
      for (const ExprPtr& c : e.children) {
        acc = EbvAnd(acc, EvalExpr(store, *c, lookup));
        if (acc == Ebv::kFalse) return acc;
      }
      return acc;
    }
    case ExprKind::kOr: {
      Ebv acc = Ebv::kFalse;
      for (const ExprPtr& c : e.children) {
        acc = EbvOr(acc, EvalExpr(store, *c, lookup));
        if (acc == Ebv::kTrue) return acc;
      }
      return acc;
    }
    case ExprKind::kNot:
      return EbvNot(EvalExpr(store, *e.children[0], lookup));
    case ExprKind::kIn: {
      Cell c = lookup(e.var.name);
      if (c.is_null()) return Ebv::kError;
      for (const rdf::Term& t : e.in_list) {
        Cell rhs;
        if (t.is_numeric_literal()) {
          rhs = Cell::OfNumber(t.AsDouble());
        } else {
          rdf::TermId id = store.Lookup(t);
          if (id == rdf::kInvalidTermId) continue;
          rhs = Cell::OfTerm(id);
        }
        CellCompare cc = CompareCells(store, c, rhs);
        if (cc.comparable && cc.cmp == 0) return Ebv::kTrue;
      }
      return Ebv::kFalse;
    }
    case ExprKind::kBound: {
      return lookup(e.var.name).is_null() ? Ebv::kFalse : Ebv::kTrue;
    }
  }
  return Ebv::kError;
}

}  // namespace re2xolap::sparql
