#include "server/http.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "util/string_utils.h"

namespace re2xolap::server {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string_view HttpRequest::Header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return v;
  }
  return {};
}

std::string_view HttpRequest::QueryParam(std::string_view name) const {
  for (const auto& [k, v] : query_params) {
    if (k == name) return v;
  }
  return {};
}

uint64_t HttpRequest::QueryParamUint(std::string_view name,
                                     uint64_t fallback) const {
  std::string_view v = QueryParam(name);
  if (v.empty()) return fallback;
  uint64_t out = 0;
  for (char c : v) {
    if (c < '0' || c > '9') return fallback;
    if (out > (UINT64_MAX - 9) / 10) return fallback;
    out = out * 10 + static_cast<uint64_t>(c - '0');
  }
  return out;
}

const char* HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default:  return "Unknown";
  }
}

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < s.size() && HexValue(s[i + 1]) >= 0 &&
               HexValue(s[i + 2]) >= 0) {
      out.push_back(static_cast<char>(HexValue(s[i + 1]) * 16 +
                                      HexValue(s[i + 2])));
      i += 2;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonError(std::string_view code, std::string_view message) {
  return "{\"error\": \"" + JsonEscape(message) + "\", \"code\": \"" +
         JsonEscape(code) + "\"}\n";
}

util::Result<HttpRequest> ParseRequestHead(std::string_view head,
                                           const HttpLimits& limits) {
  if (head.size() > limits.max_head_bytes) {
    return util::Status::InvalidArgument("request head too large");
  }
  HttpRequest req;

  // Request line: METHOD SP target SP HTTP/1.x
  size_t line_end = head.find("\r\n");
  if (line_end == std::string_view::npos) line_end = head.size();
  std::string_view line = head.substr(0, line_end);
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                             : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return util::Status::InvalidArgument("malformed request line");
  }
  req.method = std::string(line.substr(0, sp1));
  req.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  std::string_view version = line.substr(sp2 + 1);
  bool http10 = version == "HTTP/1.0";
  if (!http10 && version != "HTTP/1.1") {
    return util::Status::InvalidArgument("unsupported HTTP version \"" +
                                         std::string(version) + "\"");
  }
  req.keep_alive = !http10;
  if (req.method != "GET" && req.method != "POST" && req.method != "DELETE") {
    return util::Status::InvalidArgument("unsupported method \"" +
                                         req.method + "\"");
  }
  if (req.target.empty() || req.target[0] != '/') {
    return util::Status::InvalidArgument("request target must be absolute");
  }

  // Split target into path + query parameters.
  size_t qpos = req.target.find('?');
  req.path = req.target.substr(0, qpos);
  if (qpos != std::string::npos) {
    for (const std::string& pair :
         util::Split(std::string_view(req.target).substr(qpos + 1), '&')) {
      if (pair.empty()) continue;
      size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        req.query_params.emplace_back(UrlDecode(pair), "");
      } else {
        req.query_params.emplace_back(
            UrlDecode(std::string_view(pair).substr(0, eq)),
            UrlDecode(std::string_view(pair).substr(eq + 1)));
      }
    }
  }

  // Header fields.
  size_t pos = line_end;
  while (pos < head.size()) {
    pos += 2;  // skip CRLF
    size_t next = head.find("\r\n", pos);
    if (next == std::string_view::npos) next = head.size();
    std::string_view field = head.substr(pos, next - pos);
    pos = next;
    if (field.empty()) continue;
    size_t colon = field.find(':');
    if (colon == std::string_view::npos) {
      return util::Status::InvalidArgument("malformed header field");
    }
    std::string name = util::ToLower(util::Trim(field.substr(0, colon)));
    std::string value(util::Trim(field.substr(colon + 1)));
    if (name.empty()) {
      return util::Status::InvalidArgument("empty header name");
    }
    req.headers.emplace_back(std::move(name), std::move(value));
  }

  std::string_view connection = req.Header("connection");
  if (EqualsIgnoreCase(connection, "close")) req.keep_alive = false;
  if (http10 && EqualsIgnoreCase(connection, "keep-alive")) {
    req.keep_alive = true;
  }

  if (!req.Header("transfer-encoding").empty()) {
    return util::Status::InvalidArgument(
        "Transfer-Encoding is not supported; use Content-Length");
  }
  std::string_view length = req.Header("content-length");
  if (!length.empty()) {
    uint64_t n = 0;
    for (char c : length) {
      if (c < '0' || c > '9') {
        return util::Status::InvalidArgument("malformed Content-Length");
      }
      if (n > (UINT64_MAX - 9) / 10) {
        return util::Status::InvalidArgument("malformed Content-Length");
      }
      n = n * 10 + static_cast<uint64_t>(c - '0');
    }
    if (n > limits.max_body_bytes) {
      return util::Status::ResourceExhausted(
          "request body of " + std::string(length) + " bytes exceeds the " +
          std::to_string(limits.max_body_bytes) + "-byte limit");
    }
    req.content_length = n;
  }
  return req;
}

std::string SerializeResponse(const HttpResponse& resp, bool keep_alive) {
  std::string out;
  out.reserve(resp.body.size() + 256);
  out += "HTTP/1.1 ";
  out += std::to_string(resp.status);
  out += ' ';
  out += HttpStatusText(resp.status);
  out += "\r\nContent-Type: ";
  out += resp.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(resp.body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n";
  for (const auto& [k, v] : resp.extra_headers) {
    out += k;
    out += ": ";
    out += v;
    out += "\r\n";
  }
  out += "\r\n";
  out += resp.body;
  return out;
}

}  // namespace re2xolap::server
