#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "core/exref.h"
#include "core/reolap.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "sparql/ast.h"
#include "sparql/result_table.h"
#include "store/ingestor.h"
#include "util/exec_guard.h"
#include "util/failpoint.h"
#include "util/string_utils.h"

namespace re2xolap::server {

namespace {

struct ServerMetrics {
  obs::Counter& accepted;
  obs::Counter& requests;
  obs::Counter& responses_ok;
  obs::Counter& responses_error;
  obs::Counter& shed;
  obs::Counter& shed_per_client;
  obs::Counter& expired_in_queue;
  obs::Counter& client_timeouts;
  obs::Counter& accept_faults;
  obs::Counter& write_faults;
  obs::Gauge& inflight;
  obs::Gauge& inflight_peak;
  obs::Gauge& queue_depth;
  obs::Gauge& draining;
  obs::Histogram& request_millis;
  obs::Histogram& queue_wait_millis;
};

ServerMetrics& Metrics() {
  auto& reg = obs::MetricsRegistry::Global();
  static ServerMetrics m{
      reg.GetCounter("server.accepted"),
      reg.GetCounter("server.requests"),
      reg.GetCounter("server.responses_ok"),
      reg.GetCounter("server.responses_error"),
      reg.GetCounter("server.shed"),
      reg.GetCounter("server.shed_per_client"),
      reg.GetCounter("server.expired_in_queue"),
      reg.GetCounter("server.client_timeouts"),
      reg.GetCounter("server.accept_faults"),
      reg.GetCounter("server.write_faults"),
      reg.GetGauge("server.inflight"),
      reg.GetGauge("server.inflight_peak"),
      reg.GetGauge("server.queue_depth"),
      reg.GetGauge("server.draining"),
      reg.GetHistogram("server.request.millis"),
      reg.GetHistogram("server.queue_wait.millis"),
  };
  return m;
}

double MillisSince(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

std::string JsonNumber(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

/// Maps a handler Status onto the HTTP taxonomy (DESIGN.md §17): client
/// mistakes are 4xx, pressure is 503 (with Retry-After for the
/// transient/shedding kinds), deadlines are 504, everything else 500.
int HttpStatusForStatus(const util::Status& st) {
  switch (st.code()) {
    case util::StatusCode::kInvalidArgument:
    case util::StatusCode::kParseError:
    case util::StatusCode::kTypeError:
      return 400;
    case util::StatusCode::kNotFound:
      return 404;
    case util::StatusCode::kAlreadyExists:
      return 409;
    case util::StatusCode::kTimeout:
      return 504;
    case util::StatusCode::kResourceExhausted:
    case util::StatusCode::kUnavailable:
    case util::StatusCode::kCancelled:
      return 503;
    default:
      return 500;
  }
}

bool IsRetryableOverload(const util::Status& st) {
  return st.IsUnavailable() || st.IsCancelled();
}

}  // namespace

/// One client connection. Owned by exactly one thread at a time: the
/// acceptor (idle / being accepted), the queue (admitted, waiting), or a
/// worker (executing). `inbuf` carries pipelined leftover bytes across
/// keep-alive requests.
struct Server::Conn {
  int fd = -1;
  std::string inbuf;
  /// Fair-shedding key: the peer's IP address, captured at accept (empty
  /// when the peer address was unavailable; such connections share one
  /// bucket).
  std::string client_key;
  /// Stamped by the acceptor when request bytes became readable; the
  /// request's guard deadline anchors here.
  std::chrono::steady_clock::time_point arrival{};
  std::atomic<size_t>* open_counter = nullptr;

  Conn(int fd_in, std::atomic<size_t>* counter)
      : fd(fd_in), open_counter(counter) {
    counter->fetch_add(1, std::memory_order_relaxed);
  }
  ~Conn() {
    if (fd >= 0) ::close(fd);
    open_counter->fetch_sub(1, std::memory_order_relaxed);
  }
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;
};

Server::Server(Dataset dataset, ServerConfig config)
    : dataset_(dataset),
      config_(std::move(config)),
      sessions_(config_.max_sessions, config_.session_idle_millis) {}

Server::~Server() { Stop(); }

util::Status Server::Start() {
  if (started_) return util::Status::InvalidArgument("server already started");
  if (dataset_.store == nullptr || dataset_.engine == nullptr) {
    return util::Status::InvalidArgument(
        "Dataset.store and Dataset.engine are required");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return util::Status::Unavailable(std::string("socket(): ") +
                                     std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::InvalidArgument("bad bind address \"" +
                                         config_.bind_address + "\"");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 256) < 0) {
    util::Status st = util::Status::Unavailable(
        "bind/listen on " + config_.bind_address + ":" +
        std::to_string(config_.port) + ": " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  if (::pipe(wake_pipe_) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::Unavailable(std::string("pipe(): ") +
                                     std::strerror(errno));
  }
  for (int fd : wake_pipe_) {
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  }

  started_at_ = std::chrono::steady_clock::now();
  drain_token_.Reset();
  started_ = true;
  size_t workers = std::max<size_t>(1, config_.worker_threads);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptorLoop(); });
  return util::Status::OK();
}

void Server::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    char b = 's';
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
}

void Server::WaitForStopRequest() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  stop_cv_.wait(lock, [this] {
    return stop_requested_.load(std::memory_order_acquire) ||
           stopped_.load(std::memory_order_acquire);
  });
}

void Server::Stop() {
  if (!started_ || stopped_.exchange(true)) return;
  stop_requested_.store(true, std::memory_order_release);
  stopping_.store(true, std::memory_order_release);
  Metrics().draining.Set(1);
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
  }
  stop_cv_.notify_all();
  RequestStop();  // wake the acceptor
  queue_cv_.notify_all();

  // Grace period: let queued + in-flight requests finish.
  const auto grace_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(config_.drain_grace_millis);
  for (;;) {
    bool idle;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      idle = queue_.empty() && inflight_.load(std::memory_order_acquire) == 0;
    }
    if (idle || std::chrono::steady_clock::now() >= grace_deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Stragglers: cancel their guards; they answer 503 Cancelled at the
  // next poll point and the workers come home.
  drain_token_.Cancel();
  queue_cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  if (acceptor_.joinable()) acceptor_.join();

  {
    std::lock_guard<std::mutex> lock(returned_mu_);
    returned_.clear();  // closes leftover keep-alive conns
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.clear();
    queued_per_client_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  obs::QueryLog::Global().Flush();
}

ServerStats Server::stats() const {
  ServerStats s;
  s.accepted_conns = accepted_conns_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.responses_ok = responses_ok_.load(std::memory_order_relaxed);
  s.responses_error = responses_error_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.shed_per_client = shed_per_client_.load(std::memory_order_relaxed);
  s.expired_in_queue = expired_in_queue_.load(std::memory_order_relaxed);
  s.client_timeouts = client_timeouts_.load(std::memory_order_relaxed);
  s.accept_faults = accept_faults_.load(std::memory_order_relaxed);
  s.write_faults = write_faults_.load(std::memory_order_relaxed);
  s.max_inflight = max_inflight_.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// Acceptor
// ---------------------------------------------------------------------------

void Server::AcceptorLoop() {
  std::vector<std::unique_ptr<Conn>> idle;
  std::vector<pollfd> fds;
  auto last_sweep = std::chrono::steady_clock::now();
  for (;;) {
    // Reclaim keep-alive connections workers handed back. A connection
    // returned with pipelined bytes already buffered is ready now.
    {
      std::vector<std::unique_ptr<Conn>> back;
      CollectReturned(&back);
      for (auto& conn : back) {
        if (stopping_.load(std::memory_order_acquire)) continue;  // close
        if (!conn->inbuf.empty()) {
          conn->arrival = std::chrono::steady_clock::now();
          EnqueueOrShed(std::move(conn));
        } else {
          idle.push_back(std::move(conn));
        }
      }
    }

    if (stop_requested_.load(std::memory_order_acquire) &&
        !stopping_.load(std::memory_order_acquire)) {
      stopping_.store(true, std::memory_order_release);
      Metrics().draining.Set(1);
      {
        std::lock_guard<std::mutex> lock(stop_mu_);
      }
      stop_cv_.notify_all();   // unblock WaitForStopRequest
      queue_cv_.notify_all();  // let workers see the drain
    }
    if (stopping_.load(std::memory_order_acquire)) {
      // Drain: drop idle connections (no request in flight on them) and
      // exit. Queued connections belong to the workers; Stop() joins
      // them and closes whatever remains.
      idle.clear();
      return;
    }

    fds.clear();
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    const size_t base = fds.size();
    for (const auto& conn : idle) fds.push_back({conn->fd, POLLIN, 0});
    int pr = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 100);
    if (pr < 0 && errno != EINTR) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    if (pr > 0) {
      if (fds[0].revents & POLLIN) {
        char buf[64];
        while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
        }
      }
      if (fds[1].revents & POLLIN) DrainListenSocket(&idle);
      // Idle keep-alive connections with bytes (or a hangup) ready.
      // Walk from the back so erasing doesn't shift unvisited entries.
      for (size_t i = fds.size(); i-- > base;) {
        short revents = fds[i].revents;
        if (revents == 0) continue;
        const size_t idx = i - base;
        std::unique_ptr<Conn> conn = std::move(idle[idx]);
        idle.erase(idle.begin() + static_cast<ptrdiff_t>(idx));
        if ((revents & (POLLERR | POLLNVAL)) ||
            ((revents & POLLHUP) && !(revents & POLLIN))) {
          continue;  // peer vanished; destructor closes
        }
        conn->arrival = std::chrono::steady_clock::now();
        EnqueueOrShed(std::move(conn));
      }
    }

    const auto now = std::chrono::steady_clock::now();
    if (now - last_sweep > std::chrono::seconds(1)) {
      sessions_.EvictIdle();
      last_sweep = now;
    }
  }
}

void Server::DrainListenSocket(std::vector<std::unique_ptr<Conn>>* idle) {
  for (;;) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    int fd = ::accept4(listen_fd_, reinterpret_cast<sockaddr*>(&peer),
                       &peer_len, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // EAGAIN (drained) or transient failure; next poll retries
    }
    accepted_conns_.fetch_add(1, std::memory_order_relaxed);
    Metrics().accepted.Inc();
    if (util::FailpointRegistry::Global().any_armed()) {
      util::Status st = util::FailpointStatus("server.accept");
      if (!st.ok()) {
        accept_faults_.fetch_add(1, std::memory_order_relaxed);
        Metrics().accept_faults.Inc();
        ::close(fd);
        continue;
      }
    }
    auto conn = std::make_unique<Conn>(fd, &open_conns_);
    if (peer.sin_family == AF_INET) {
      char ip[INET_ADDRSTRLEN] = {};
      if (::inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof(ip)) != nullptr) {
        conn->client_key = ip;
      }
    }
    if (open_conns_.load(std::memory_order_relaxed) > config_.max_connections) {
      ShedConn(std::move(conn), "connection limit reached");
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    idle->push_back(std::move(conn));
  }
}

void Server::CollectReturned(std::vector<std::unique_ptr<Conn>>* out) {
  std::lock_guard<std::mutex> lock(returned_mu_);
  for (auto& conn : returned_) out->push_back(std::move(conn));
  returned_.clear();
}

void Server::EnqueueOrShed(std::unique_ptr<Conn> conn) {
  bool over_client_cap = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!stopping_.load(std::memory_order_acquire) &&
        queue_.size() < config_.queue_capacity) {
      // Per-client fairness: a client already holding its share of the
      // queue is shed even though the queue has room, so the remaining
      // capacity stays available to everyone else.
      if (config_.per_client_queue_cap > 0 &&
          queued_per_client_[conn->client_key] >=
              config_.per_client_queue_cap) {
        over_client_cap = true;
      } else {
        if (config_.per_client_queue_cap > 0) {
          ++queued_per_client_[conn->client_key];
        }
        queue_.push_back(std::move(conn));
        Metrics().queue_depth.Set(static_cast<double>(queue_.size()));
        queue_cv_.notify_one();
        return;
      }
    }
  }
  if (over_client_cap) {
    shed_per_client_.fetch_add(1, std::memory_order_relaxed);
    Metrics().shed_per_client.Inc();
    ShedConn(std::move(conn), "per-client queue share exhausted");
    return;
  }
  ShedConn(std::move(conn),
           stopping_.load(std::memory_order_acquire)
               ? "server is draining"
               : "admission queue is full");
}

void Server::ShedConn(std::unique_ptr<Conn> conn, const char* why) {
  shed_.fetch_add(1, std::memory_order_relaxed);
  Metrics().shed.Inc();
  HttpResponse resp;
  resp.status = 503;
  resp.extra_headers.emplace_back("Retry-After",
                                  std::to_string(config_.retry_after_seconds));
  resp.body = JsonError("Shed", why);
  std::string bytes = SerializeResponse(resp, /*keep_alive=*/false);
  // Best-effort single nonblocking write: an overloaded server must not
  // spend bounded-resource time consoling the clients it is shedding.
  [[maybe_unused]] ssize_t n =
      ::send(conn->fd, bytes.data(), bytes.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
  // conn destructor closes the socket.
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

void Server::WorkerLoop() {
  for (;;) {
    std::unique_ptr<Conn> conn;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (queue_.empty()) {
        if (stopping_.load(std::memory_order_acquire)) return;
        continue;
      }
      conn = std::move(queue_.front());
      queue_.pop_front();
      Metrics().queue_depth.Set(static_cast<double>(queue_.size()));
      if (config_.per_client_queue_cap > 0) {
        auto it = queued_per_client_.find(conn->client_key);
        if (it != queued_per_client_.end() && --it->second == 0) {
          queued_per_client_.erase(it);
        }
      }
    }
    Metrics().queue_wait_millis.Observe(MillisSince(conn->arrival));
    const size_t now_inflight =
        inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
    NoteInflight(now_inflight);
    conn = HandleOneRequest(std::move(conn));
    Metrics().inflight.Set(static_cast<double>(
        inflight_.fetch_sub(1, std::memory_order_acq_rel) - 1));
    if (conn != nullptr) {
      {
        std::lock_guard<std::mutex> lock(returned_mu_);
        returned_.push_back(std::move(conn));
      }
      if (wake_pipe_[1] >= 0) {
        char b = 'r';
        [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
      }
    }
  }
}

void Server::NoteInflight(size_t now_inflight) {
  Metrics().inflight.Set(static_cast<double>(now_inflight));
  uint64_t prev = max_inflight_.load(std::memory_order_relaxed);
  while (now_inflight > prev &&
         !max_inflight_.compare_exchange_weak(prev, now_inflight,
                                              std::memory_order_relaxed)) {
  }
  Metrics().inflight_peak.Set(
      static_cast<double>(max_inflight_.load(std::memory_order_relaxed)));
}

std::unique_ptr<Server::Conn> Server::HandleOneRequest(
    std::unique_ptr<Conn> conn) {
  const auto arrival = conn->arrival;
  HttpRequest req;
  util::Status read_status = ReadRequest(conn.get(), &req);
  if (!read_status.ok()) {
    if (read_status.IsCancelled()) return nullptr;  // peer closed; no reply
    HttpResponse resp;
    if (read_status.IsTimeout()) {
      client_timeouts_.fetch_add(1, std::memory_order_relaxed);
      Metrics().client_timeouts.Inc();
      resp.status = 408;
      resp.body = JsonError("ClientTimeout", read_status.message());
    } else if (read_status.IsUnavailable()) {
      // server.parse failpoint: surface as transient overload.
      resp.status = 503;
      resp.extra_headers.emplace_back(
          "Retry-After", std::to_string(config_.retry_after_seconds));
      resp.body = JsonError("Unavailable", read_status.message());
    } else {
      resp.status = read_status.IsResourceExhausted() ? 413 : 400;
      resp.body = JsonError(util::StatusCodeToString(read_status.code()),
                            read_status.message());
    }
    responses_error_.fetch_add(1, std::memory_order_relaxed);
    Metrics().responses_error.Inc();
    WriteAll(conn.get(), SerializeResponse(resp, /*keep_alive=*/false));
    return nullptr;  // malformed/slow connections never survive
  }

  requests_.fetch_add(1, std::memory_order_relaxed);
  Metrics().requests.Inc();

  HttpResponse resp = Dispatch(req, arrival);

  const bool keep_alive =
      req.keep_alive && !stopping_.load(std::memory_order_acquire);

  if (util::FailpointRegistry::Global().any_armed()) {
    util::Status st = util::FailpointStatus("server.write");
    if (!st.ok()) {
      // Injected write fault: the response is lost mid-flight; drop the
      // connection (the client sees a reset, never a half response).
      write_faults_.fetch_add(1, std::memory_order_relaxed);
      Metrics().write_faults.Inc();
      return nullptr;
    }
  }

  std::string bytes = SerializeResponse(resp, keep_alive);
  if (!WriteAll(conn.get(), bytes)) {
    client_timeouts_.fetch_add(1, std::memory_order_relaxed);
    Metrics().client_timeouts.Inc();
    return nullptr;
  }
  if (resp.status < 400) {
    responses_ok_.fetch_add(1, std::memory_order_relaxed);
    Metrics().responses_ok.Inc();
  } else {
    responses_error_.fetch_add(1, std::memory_order_relaxed);
    Metrics().responses_error.Inc();
  }
  Metrics().request_millis.Observe(MillisSince(arrival));
  return keep_alive ? std::move(conn) : nullptr;
}

util::Status Server::ReadRequest(Conn* conn, HttpRequest* req) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(config_.read_timeout_millis);
  // One bounded poll+recv round; appends to conn->inbuf.
  auto read_more = [&](bool* peer_closed) -> util::Status {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return util::Status::Timeout("client read timeout after " +
                                   std::to_string(config_.read_timeout_millis) +
                                   "ms");
    }
    const int wait = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    pollfd pfd{conn->fd, POLLIN, 0};
    int pr = ::poll(&pfd, 1, std::max(wait, 1));
    if (pr == 0) {
      return util::Status::Timeout("client read timeout after " +
                                   std::to_string(config_.read_timeout_millis) +
                                   "ms");
    }
    if (pr < 0) {
      if (errno == EINTR) return util::Status::OK();
      return util::Status::Internal(std::string("poll(): ") +
                                    std::strerror(errno));
    }
    char buf[4096];
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n == 0) {
      *peer_closed = true;
      return util::Status::OK();
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        return util::Status::OK();
      }
      return util::Status::Cancelled(std::string("recv(): ") +
                                     std::strerror(errno));
    }
    conn->inbuf.append(buf, static_cast<size_t>(n));
    return util::Status::OK();
  };

  // Head: everything before CRLFCRLF, bounded by max_head_bytes.
  size_t head_end;
  for (;;) {
    head_end = conn->inbuf.find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    if (conn->inbuf.size() > config_.http.max_head_bytes) {
      return util::Status::InvalidArgument(
          "request head exceeds " +
          std::to_string(config_.http.max_head_bytes) + " bytes");
    }
    bool peer_closed = false;
    RE2X_RETURN_IF_ERROR(read_more(&peer_closed));
    if (peer_closed) {
      // Clean close between requests is the normal end of a keep-alive
      // connection; mid-head it is still just a gone client.
      return util::Status::Cancelled("peer closed connection");
    }
  }

  RE2X_FAILPOINT("server.parse");

  RE2X_ASSIGN_OR_RETURN(
      *req, ParseRequestHead(std::string_view(conn->inbuf).substr(0, head_end),
                             config_.http));

  // Body: exactly content_length bytes after the head.
  const size_t total = head_end + 4 + req->content_length;
  while (conn->inbuf.size() < total) {
    bool peer_closed = false;
    RE2X_RETURN_IF_ERROR(read_more(&peer_closed));
    if (peer_closed) {
      return util::Status::Cancelled("peer closed connection mid-body");
    }
  }
  req->body = conn->inbuf.substr(head_end + 4, req->content_length);
  // Keep pipelined leftover bytes for the next request on this conn.
  conn->inbuf.erase(0, total);
  return util::Status::OK();
}

bool Server::WriteAll(Conn* conn, std::string_view bytes) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(config_.write_timeout_millis);
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(conn->fd, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return false;  // slow client; cut off
      const int wait = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
              .count());
      pollfd pfd{conn->fd, POLLOUT, 0};
      int pr = ::poll(&pfd, 1, std::max(wait, 1));
      if (pr == 0) return false;
      if (pr < 0 && errno != EINTR) return false;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EPIPE/ECONNRESET/...
  }
  return true;
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

namespace {

HttpResponse ErrorResponse(const util::Status& st, unsigned retry_after) {
  HttpResponse resp;
  resp.status = HttpStatusForStatus(st);
  if (resp.status == 503 && IsRetryableOverload(st)) {
    resp.extra_headers.emplace_back("Retry-After",
                                    std::to_string(retry_after));
  }
  resp.body = JsonError(util::StatusCodeToString(st.code()), st.message());
  return resp;
}

HttpResponse MethodNotAllowed(const char* allow) {
  HttpResponse resp;
  resp.status = 405;
  resp.extra_headers.emplace_back("Allow", allow);
  resp.body = JsonError("MethodNotAllowed",
                        std::string("use ") + allow + " for this route");
  return resp;
}

HttpResponse JsonOk(std::string body) {
  HttpResponse resp;
  resp.body = std::move(body);
  return resp;
}

/// Renders a result table as JSON, honoring the `limit` row cap
/// (0 = all rows).
HttpResponse TableResponse(const sparql::ResultTable& table, size_t limit,
                           const sparql::ExecStats* stats) {
  const size_t rows =
      limit == 0 ? table.row_count() : std::min(limit, table.row_count());
  std::string body = "{\"columns\": [";
  for (size_t c = 0; c < table.columns().size(); ++c) {
    if (c > 0) body += ", ";
    body += "\"" + JsonEscape(table.columns()[c]) + "\"";
  }
  body += "], \"row_count\": " + std::to_string(table.row_count()) +
          ", \"truncated\": " + (rows < table.row_count() ? "true" : "false") +
          ", \"rows\": [";
  for (size_t r = 0; r < rows; ++r) {
    if (r > 0) body += ", ";
    body += "[";
    for (size_t c = 0; c < table.columns().size(); ++c) {
      if (c > 0) body += ", ";
      const sparql::Cell& cell = table.at(r, c);
      if (cell.is_null()) {
        body += "null";
      } else if (cell.is_number()) {
        body += JsonNumber(cell.number);
      } else {
        body += "\"" + JsonEscape(table.CellToString(cell)) + "\"";
      }
    }
    body += "]";
  }
  body += "]";
  if (stats != nullptr) {
    body += ", \"stats\": {\"exec_millis\": " + JsonNumber(stats->exec_millis) +
            ", \"plan_millis\": " + JsonNumber(stats->plan_millis) +
            ", \"triples_scanned\": " + std::to_string(stats->triples_scanned) +
            ", \"intermediate_bindings\": " +
            std::to_string(stats->intermediate_bindings) + "}";
  }
  body += "}\n";
  return JsonOk(std::move(body));
}

/// Non-empty lines of a request body (the plain-text list format of
/// /session/<id>/start and /exclude).
std::vector<std::string> BodyLines(const std::string& body) {
  std::vector<std::string> lines;
  for (const std::string& raw : util::Split(body, '\n')) {
    std::string line(util::Trim(raw));
    if (!line.empty()) lines.push_back(std::move(line));
  }
  return lines;
}

bool ParseRefinementKind(std::string_view name, core::RefinementKind* out) {
  std::string k = util::ToLower(name);
  if (k == "disaggregate") *out = core::RefinementKind::kDisaggregate;
  else if (k == "rollup" || k == "roll_up") *out = core::RefinementKind::kRollUp;
  else if (k == "topk" || k == "top_k") *out = core::RefinementKind::kTopK;
  else if (k == "percentile") *out = core::RefinementKind::kPercentile;
  else if (k == "similarity") *out = core::RefinementKind::kSimilarity;
  else if (k == "cluster") *out = core::RefinementKind::kCluster;
  else return false;
  return true;
}

std::string StatesJson(const std::vector<core::ExploreState>& states) {
  std::string body = "{\"refinements\": [";
  for (size_t i = 0; i < states.size(); ++i) {
    if (i > 0) body += ", ";
    body += "{\"index\": " + std::to_string(i) + ", \"description\": \"" +
            JsonEscape(states[i].description) + "\", \"step\": \"" +
            JsonEscape(states[i].trail.empty() ? "" : states[i].trail.back()) +
            "\"}";
  }
  body += "]}\n";
  return body;
}

}  // namespace

util::ExecGuard Server::MakeGuard(
    const HttpRequest& req, std::chrono::steady_clock::time_point arrival) {
  util::ExecGuard::Limits limits;
  limits.deadline_millis = std::min(
      req.QueryParamUint("timeout_ms", config_.default_deadline_millis),
      config_.max_deadline_millis);
  limits.max_rows = req.QueryParamUint("max_rows", config_.default_max_rows);
  limits.max_bytes = req.QueryParamUint("max_bytes", config_.default_max_bytes);
  return util::ExecGuard(limits, arrival, &drain_token_);
}

HttpResponse Server::Dispatch(const HttpRequest& req,
                              std::chrono::steady_clock::time_point arrival) {
  if (req.path == "/healthz") {
    if (req.method != "GET") return MethodNotAllowed("GET");
    return HandleHealthz();
  }
  if (req.path == "/metrics") {
    if (req.method != "GET") return MethodNotAllowed("GET");
    return HandleMetrics();
  }

  util::ExecGuard guard = MakeGuard(req, arrival);
  if (util::Status entry = guard.Check(); !entry.ok()) {
    // The request burned its whole deadline before execution (admission
    // queue wait, slow read) or the server is draining: answer without
    // executing anything.
    if (entry.IsTimeout()) {
      expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
      Metrics().expired_in_queue.Inc();
    }
    return ErrorResponse(entry, config_.retry_after_seconds);
  }

  if (req.path == "/query") {
    if (req.method != "POST") return MethodNotAllowed("POST");
    return HandleQuery(req, guard);
  }
  if (req.path == "/ingest") {
    if (req.method != "POST") return MethodNotAllowed("POST");
    return HandleIngest(req, guard);
  }
  if (req.path == "/session" || util::StartsWith(req.path, "/session/")) {
    return HandleSession(req, guard);
  }
  return ErrorResponse(
      util::Status::NotFound("no route \"" + req.path + "\""),
      config_.retry_after_seconds);
}

HttpResponse Server::HandleHealthz() const {
  const engine::EngineCacheStats cache = dataset_.engine->cache_stats();
  const rdf::TripleStore::LiveInfo live = dataset_.store->live_info();
  std::string body =
      std::string("{\"status\": \"") +
      (stopping_.load(std::memory_order_acquire) ? "draining" : "serving") +
      "\", \"freeze_epoch\": " +
      std::to_string(dataset_.store->freeze_epoch()) +
      ", \"triples\": " + std::to_string(dataset_.store->size()) +
      ", \"sessions\": " + std::to_string(sessions_.size()) +
      ", \"inflight\": " +
      std::to_string(inflight_.load(std::memory_order_relaxed)) +
      ", \"session_routes\": " +
      (dataset_.vsg != nullptr && dataset_.text != nullptr ? "true" : "false") +
      ", \"ingest_route\": " +
      (dataset_.ingestor != nullptr ? "true" : "false") +
      ", \"live\": " + (live.live ? "true" : "false");
  if (live.live) {
    body += ", \"chain_depth\": " + std::to_string(live.chain_depth) +
            ", \"delta_adds\": " + std::to_string(live.delta_adds) +
            ", \"delta_dels\": " + std::to_string(live.delta_dels) +
            ", \"compacted_base\": " + (live.compacted_base ? "true" : "false");
  }
  body += ", \"uptime_millis\": " + JsonNumber(MillisSince(started_at_)) +
          ", \"engine\": {\"plan_hits\": " + std::to_string(cache.plan_hits) +
          ", \"result_hits\": " + std::to_string(cache.result_hits) + "}}\n";
  return JsonOk(std::move(body));
}

HttpResponse Server::HandleMetrics() const {
  HttpResponse resp;
  resp.content_type = "text/plain; version=0.0.4";
  resp.body = obs::MetricsRegistry::Global().ToPrometheus();
  return resp;
}

HttpResponse Server::HandleQuery(const HttpRequest& req,
                                 const util::ExecGuard& guard) {
  std::string_view text = req.body;
  if (text.empty()) text = req.QueryParam("q");
  if (text.empty()) {
    return ErrorResponse(util::Status::InvalidArgument(
                             "POST a SPARQL query as the request body "
                             "(or ?q= for short queries)"),
                         config_.retry_after_seconds);
  }
  sparql::ExecOptions options;
  options.guard = &guard;
  sparql::ExecStats stats;
  auto table = dataset_.engine->ExecuteText(text, options, &stats);
  if (!table.ok()) {
    return ErrorResponse(table.status(), config_.retry_after_seconds);
  }
  return TableResponse(**table, req.QueryParamUint("limit", 0), &stats);
}

HttpResponse Server::HandleIngest(const HttpRequest& req,
                                  const util::ExecGuard& guard) {
  const unsigned retry_after = config_.retry_after_seconds;
  if (dataset_.ingestor == nullptr) {
    return ErrorResponse(
        util::Status::InvalidArgument(
            "this server was started without live ingestion "
            "(store is not live / no ingestor configured)"),
        retry_after);
  }
  store::IngestOp op = store::IngestOp::kInsert;
  std::string_view op_param = req.QueryParam("op");
  if (!op_param.empty()) {
    std::string lowered = util::ToLower(op_param);
    if (lowered == "insert") {
      op = store::IngestOp::kInsert;
    } else if (lowered == "delete") {
      op = store::IngestOp::kDelete;
    } else {
      return ErrorResponse(
          util::Status::InvalidArgument("?op= must be insert or delete"),
          retry_after);
    }
  }
  if (req.body.empty()) {
    return ErrorResponse(util::Status::InvalidArgument(
                             "POST N-Triples statements as the request body"),
                         retry_after);
  }
  auto receipt = dataset_.ingestor->IngestText(req.body, op, &guard);
  if (!receipt.ok()) return ErrorResponse(receipt.status(), retry_after);
  return JsonOk("{\"epoch\": " + std::to_string(receipt->epoch) +
                ", \"added\": " + std::to_string(receipt->added) +
                ", \"deleted\": " + std::to_string(receipt->deleted) +
                ", \"chain_depth\": " + std::to_string(receipt->chain_depth) +
                "}\n");
}

HttpResponse Server::HandleSession(const HttpRequest& req,
                                   const util::ExecGuard& guard) {
  const unsigned retry_after = config_.retry_after_seconds;
  if (req.path == "/session") {
    if (req.method != "POST") return MethodNotAllowed("POST");
    sparql::ExecOptions session_options;
    session_options.timeout_millis = config_.default_deadline_millis;
    auto id = sessions_.Create(dataset_.store, dataset_.vsg, dataset_.text,
                               dataset_.engine, session_options);
    if (!id.ok()) return ErrorResponse(id.status(), retry_after);
    return JsonOk("{\"session\": \"" + *id + "\"}\n");
  }

  // /session/<id>[/<verb>]
  std::vector<std::string> parts =
      util::Split(std::string_view(req.path).substr(9), '/');
  if (parts.empty() || parts[0].empty() || parts.size() > 2) {
    return ErrorResponse(
        util::Status::NotFound("no route \"" + req.path + "\""), retry_after);
  }
  const std::string& id = parts[0];
  const std::string verb = parts.size() == 2 ? parts[1] : "";

  if (verb.empty()) {
    if (req.method != "DELETE") return MethodNotAllowed("DELETE");
    util::Status st = sessions_.Remove(id);
    if (!st.ok()) return ErrorResponse(st, retry_after);
    return JsonOk("{\"ok\": true}\n");
  }
  if (req.method != "POST") return MethodNotAllowed("POST");

  auto acquired = sessions_.Acquire(id);
  if (!acquired.ok()) return ErrorResponse(acquired.status(), retry_after);
  ServerSession& held = **acquired;
  // Serialize concurrent requests on one exploration session; the
  // session-level lock is held for the whole request, so a slow query
  // delays only this session's other requests, never the server.
  std::lock_guard<std::mutex> session_lock(held.mu);
  core::Session& session = held.session;

  if (verb == "start") {
    std::vector<std::string> values = BodyLines(req.body);
    if (values.empty()) {
      return ErrorResponse(util::Status::InvalidArgument(
                               "POST the example values, one per line"),
                           retry_after);
    }
    core::ReolapOptions options;
    options.guard = &guard;
    auto candidates = session.Start(values, options);
    if (!candidates.ok()) return ErrorResponse(candidates.status(), retry_after);
    std::string body = "{\"candidates\": [";
    for (size_t i = 0; i < candidates->size(); ++i) {
      if (i > 0) body += ", ";
      body += "{\"index\": " + std::to_string(i) + ", \"description\": \"" +
              JsonEscape((*candidates)[i].description) + "\", \"sparql\": \"" +
              JsonEscape(sparql::ToSparql((*candidates)[i].query)) + "\"}";
    }
    body += "]}\n";
    return JsonOk(std::move(body));
  }
  if (verb == "pick") {
    util::Status st = session.PickCandidate(
        static_cast<size_t>(req.QueryParamUint("index", 0)));
    if (!st.ok()) return ErrorResponse(st, retry_after);
    return JsonOk("{\"ok\": true, \"sparql\": \"" +
                  JsonEscape(sparql::ToSparql(session.current().query)) +
                  "\"}\n");
  }
  if (verb == "execute") {
    sparql::ExecOptions options;
    options.guard = &guard;
    auto table = session.Execute(options);
    if (!table.ok()) return ErrorResponse(table.status(), retry_after);
    return TableResponse(**table, req.QueryParamUint("limit", 0),
                         &session.last_exec_stats());
  }
  if (verb == "refine") {
    core::RefinementKind kind;
    if (!ParseRefinementKind(req.QueryParam("kind"), &kind)) {
      return ErrorResponse(
          util::Status::InvalidArgument(
              "?kind= must be one of disaggregate|rollup|topk|percentile|"
              "similarity|cluster"),
          retry_after);
    }
    auto refinements = session.Refine(kind);
    if (!refinements.ok()) {
      return ErrorResponse(refinements.status(), retry_after);
    }
    return JsonOk(StatesJson(*refinements));
  }
  if (verb == "pick_refinement") {
    util::Status st = session.PickRefinement(
        static_cast<size_t>(req.QueryParamUint("index", 0)));
    if (!st.ok()) return ErrorResponse(st, retry_after);
    return JsonOk("{\"ok\": true, \"description\": \"" +
                  JsonEscape(session.current().description) + "\"}\n");
  }
  if (verb == "exclude") {
    std::vector<std::string> values = BodyLines(req.body);
    if (values.empty()) {
      return ErrorResponse(util::Status::InvalidArgument(
                               "POST the negative values, one per line"),
                           retry_after);
    }
    auto unmatched = session.ExcludeNegative(values);
    if (!unmatched.ok()) return ErrorResponse(unmatched.status(), retry_after);
    std::string body = "{\"ok\": true, \"unmatched\": [";
    for (size_t i = 0; i < unmatched->size(); ++i) {
      if (i > 0) body += ", ";
      body += "\"" + JsonEscape((*unmatched)[i]) + "\"";
    }
    body += "]}\n";
    return JsonOk(std::move(body));
  }
  if (verb == "slice") {
    util::Status st =
        session.Slice(static_cast<size_t>(req.QueryParamUint("index", 0)));
    if (!st.ok()) return ErrorResponse(st, retry_after);
    return JsonOk("{\"ok\": true}\n");
  }
  if (verb == "back") {
    session.Back();
    return JsonOk("{\"ok\": true}\n");
  }
  return ErrorResponse(
      util::Status::NotFound("no session verb \"" + verb + "\""), retry_after);
}

}  // namespace re2xolap::server
