#include "server/http_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/string_utils.h"

namespace re2xolap::server {

namespace {

using Clock = std::chrono::steady_clock;

int RemainingMillis(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return std::max<int>(1, static_cast<int>(left.count()));
}

bool Expired(Clock::time_point deadline) { return Clock::now() >= deadline; }

}  // namespace

std::string_view ClientResponse::Header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return v;
  }
  return {};
}

HttpClient::HttpClient(std::string host, uint16_t port, uint64_t timeout_millis)
    : host_(std::move(host)), port_(port), timeout_millis_(timeout_millis) {}

HttpClient::~HttpClient() { Disconnect(); }

void HttpClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inbuf_.clear();
}

util::Status HttpClient::Connect() {
  Disconnect();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return util::Status::Unavailable(std::string("socket(): ") +
                                     std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    Disconnect();
    return util::Status::InvalidArgument("bad host \"" + host_ + "\"");
  }
  int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno == EINPROGRESS) {
    pollfd pfd{fd_, POLLOUT, 0};
    if (::poll(&pfd, 1, static_cast<int>(timeout_millis_)) <= 0) {
      Disconnect();
      return util::Status::Unavailable("connect timeout to " + host_ + ":" +
                                       std::to_string(port_));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      Disconnect();
      return util::Status::Unavailable("connect to " + host_ + ":" +
                                       std::to_string(port_) + ": " +
                                       std::strerror(err));
    }
  } else if (rc < 0) {
    util::Status st = util::Status::Unavailable(
        "connect to " + host_ + ":" + std::to_string(port_) + ": " +
        std::strerror(errno));
    Disconnect();
    return st;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return util::Status::OK();
}

util::Result<ClientResponse> HttpClient::Request(std::string_view method,
                                                 std::string_view target,
                                                 std::string_view body) {
  std::string wire;
  wire.reserve(body.size() + 128);
  wire += method;
  wire += ' ';
  wire += target;
  wire += " HTTP/1.1\r\nHost: ";
  wire += host_;
  wire += "\r\nContent-Length: ";
  wire += std::to_string(body.size());
  wire += "\r\n\r\n";
  wire += body;

  const bool had_conn = fd_ >= 0;
  if (!had_conn) RE2X_RETURN_IF_ERROR(Connect());
  auto resp = RoundTrip(wire);
  if (!resp.ok() && had_conn && !resp.status().IsTimeout()) {
    // The server closed our idle keep-alive connection (drain, shed on a
    // previous request, injected write fault); retry once on a fresh one.
    RE2X_RETURN_IF_ERROR(Connect());
    return RoundTrip(wire);
  }
  return resp;
}

util::Result<ClientResponse> HttpClient::RoundTrip(std::string_view wire) {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(timeout_millis_);
  // Send.
  size_t off = 0;
  while (off < wire.size()) {
    ssize_t n =
        ::send(fd_, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (Expired(deadline)) {
        return util::Status::Timeout("send timeout");
      }
      pollfd pfd{fd_, POLLOUT, 0};
      ::poll(&pfd, 1, RemainingMillis(deadline));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    util::Status st = util::Status::Unavailable(std::string("send(): ") +
                                                std::strerror(errno));
    Disconnect();
    return st;
  }

  // Receive head.
  auto read_more = [&]() -> util::Status {
    if (Expired(deadline)) return util::Status::Timeout("response timeout");
    pollfd pfd{fd_, POLLIN, 0};
    int pr = ::poll(&pfd, 1, RemainingMillis(deadline));
    if (pr == 0) return util::Status::Timeout("response timeout");
    if (pr < 0) {
      if (errno == EINTR) return util::Status::OK();
      return util::Status::Internal(std::string("poll(): ") +
                                    std::strerror(errno));
    }
    char buf[8192];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      return util::Status::Unavailable("server closed connection");
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        return util::Status::OK();
      }
      return util::Status::Unavailable(std::string("recv(): ") +
                                       std::strerror(errno));
    }
    inbuf_.append(buf, static_cast<size_t>(n));
    return util::Status::OK();
  };

  size_t head_end;
  for (;;) {
    head_end = inbuf_.find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    util::Status st = read_more();
    if (!st.ok()) {
      Disconnect();
      return st;
    }
  }

  ClientResponse resp;
  std::string_view head = std::string_view(inbuf_).substr(0, head_end);
  size_t line_end = head.find("\r\n");
  if (line_end == std::string_view::npos) line_end = head.size();
  std::string_view status_line = head.substr(0, line_end);
  // "HTTP/1.1 503 Service Unavailable"
  size_t sp = status_line.find(' ');
  if (sp == std::string_view::npos || status_line.size() < sp + 4) {
    Disconnect();
    return util::Status::ParseError("malformed status line");
  }
  resp.status = (status_line[sp + 1] - '0') * 100 +
                (status_line[sp + 2] - '0') * 10 + (status_line[sp + 3] - '0');

  uint64_t content_length = 0;
  bool server_closes = false;
  size_t pos = line_end;
  while (pos < head.size()) {
    pos += 2;
    size_t next = head.find("\r\n", pos);
    if (next == std::string_view::npos) next = head.size();
    std::string_view field = head.substr(pos, next - pos);
    pos = next;
    size_t colon = field.find(':');
    if (colon == std::string_view::npos) continue;
    std::string name = util::ToLower(util::Trim(field.substr(0, colon)));
    std::string value(util::Trim(field.substr(colon + 1)));
    if (name == "content-length") {
      content_length = 0;
      for (char c : value) {
        if (c >= '0' && c <= '9') {
          content_length = content_length * 10 + static_cast<uint64_t>(c - '0');
        }
      }
    }
    if (name == "connection" && util::ToLower(value) == "close") {
      server_closes = true;
    }
    resp.headers.emplace_back(std::move(name), std::move(value));
  }

  const size_t total = head_end + 4 + content_length;
  while (inbuf_.size() < total) {
    util::Status st = read_more();
    if (!st.ok()) {
      Disconnect();
      return st;
    }
  }
  resp.body = inbuf_.substr(head_end + 4, content_length);
  inbuf_.erase(0, total);
  if (server_closes) Disconnect();
  return resp;
}

}  // namespace re2xolap::server
