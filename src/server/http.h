#ifndef RE2XOLAP_SERVER_HTTP_H_
#define RE2XOLAP_SERVER_HTTP_H_

// Minimal, dependency-free HTTP/1.1 message layer for the server front
// door: request-head parsing with hard byte bounds and response
// serialization. No sockets here — the connection loop in server.cc owns
// all I/O; this layer turns bounded byte buffers into typed requests and
// responses back into bytes, so it is unit-testable without a network.
//
// Scope (deliberate): methods GET/POST/DELETE, Content-Length bodies
// only (Transfer-Encoding is rejected with kInvalidArgument), no
// multipart, no TLS. Every parse failure is a typed util::Status — a
// malformed head can never crash the server or allocate unboundedly.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.h"

namespace re2xolap::server {

/// Bounds on one request's resident bytes. A head that exceeds
/// `max_head_bytes` before its terminating CRLFCRLF, or a declared
/// Content-Length above `max_body_bytes`, is rejected before any further
/// buffering (431 / 413 at the HTTP layer).
struct HttpLimits {
  size_t max_head_bytes = 16u << 10;
  size_t max_body_bytes = 1u << 20;
};

/// One parsed request. Header names are lowercased at parse time; the
/// target is split into `path` and decoded `query_params`.
struct HttpRequest {
  std::string method;  // "GET", "POST", "DELETE"
  std::string target;  // raw request target, e.g. "/query?timeout_ms=50"
  std::string path;    // "/query"
  std::vector<std::pair<std::string, std::string>> query_params;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// HTTP/1.1 defaults to keep-alive; "Connection: close" (or HTTP/1.0
  /// without "Connection: keep-alive") clears it.
  bool keep_alive = true;
  /// Declared Content-Length (0 when absent).
  uint64_t content_length = 0;

  /// Value of header `name` (lowercase), or "" when absent.
  std::string_view Header(std::string_view name) const;
  /// Value of query parameter `name` (percent-decoded), or "" when absent.
  std::string_view QueryParam(std::string_view name) const;
  /// Numeric query parameter with fallback; non-numeric values fall back.
  uint64_t QueryParamUint(std::string_view name, uint64_t fallback) const;
};

/// One response under construction. SerializeResponse adds the status
/// line, Content-Type, Content-Length, Connection, and `extra_headers`.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::vector<std::pair<std::string, std::string>> extra_headers;
  std::string body;
};

/// Canonical reason phrase for the status codes the server emits
/// ("Service Unavailable" for 503, ...); "Unknown" otherwise.
const char* HttpStatusText(int status);

/// Parses a request head (everything before the CRLFCRLF, which `head`
/// must not include). The body is read separately by the caller using
/// the returned `content_length`. Failures are typed:
///   kInvalidArgument  malformed request line / header / length,
///                     unsupported Transfer-Encoding
///   kResourceExhausted declared Content-Length > limits.max_body_bytes
util::Result<HttpRequest> ParseRequestHead(std::string_view head,
                                           const HttpLimits& limits);

/// Serializes `resp` into wire bytes. `keep_alive` selects the
/// Connection header ("keep-alive" / "close"); Content-Length always
/// matches the body.
std::string SerializeResponse(const HttpResponse& resp, bool keep_alive);

/// Percent-decodes a URL component ('+' becomes space; invalid escapes
/// pass through verbatim).
std::string UrlDecode(std::string_view s);

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(std::string_view s);

/// Builds the uniform JSON error body: {"error": <msg>, "code": <code>}.
std::string JsonError(std::string_view code, std::string_view message);

}  // namespace re2xolap::server

#endif  // RE2XOLAP_SERVER_HTTP_H_
