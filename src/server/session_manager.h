#ifndef RE2XOLAP_SERVER_SESSION_MANAGER_H_
#define RE2XOLAP_SERVER_SESSION_MANAGER_H_

// Server-side exploration-session registry: maps opaque session ids to
// core::Session instances (all sharing the server's one QueryEngine),
// serializes concurrent requests onto the same session, bounds the total
// session count, and evicts sessions that sit idle past a TTL — the
// per-session state half of the front door's robustness story (the
// admission-control half lives in server.cc).

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/session.h"
#include "util/result.h"

namespace re2xolap::server {

/// One server-held exploration session. Handlers lock `mu` for the
/// duration of a request touching the session: a core::Session is a
/// single explorer's state machine, so two requests racing on one id
/// serialize instead of corrupting the exploration history.
struct ServerSession {
  std::mutex mu;
  core::Session session;
  /// Updated (under the manager lock) on every successful Acquire.
  std::chrono::steady_clock::time_point last_used;

  template <typename... Args>
  explicit ServerSession(Args&&... args)
      : session(std::forward<Args>(args)...),
        last_used(std::chrono::steady_clock::now()) {}
};

class SessionManager {
 public:
  /// `max_sessions` bounds resident sessions (Create beyond it fails with
  /// kResourceExhausted — the caller sheds); `idle_millis` is the
  /// eviction TTL (0 = never evict).
  SessionManager(size_t max_sessions, uint64_t idle_millis)
      : max_sessions_(max_sessions), idle_millis_(idle_millis) {}

  /// Creates a session over the shared dataset + engine and returns its
  /// id ("s-<n>", unique per manager).
  util::Result<std::string> Create(const rdf::TripleStore* store,
                                   const core::VirtualSchemaGraph* vsg,
                                   const rdf::TextIndex* text,
                                   engine::QueryEngine* engine,
                                   sparql::ExecOptions exec_options);

  /// Looks up a session and refreshes its idle clock. The returned
  /// shared_ptr keeps the session alive even if eviction races the
  /// request; callers must lock `->mu` before touching `->session`.
  util::Result<std::shared_ptr<ServerSession>> Acquire(const std::string& id);

  /// Removes a session; kNotFound when the id is unknown (or already
  /// evicted). In-flight requests holding the shared_ptr finish safely.
  util::Status Remove(const std::string& id);

  /// Evicts every session idle longer than the TTL; returns how many.
  /// Called periodically from the server's acceptor loop.
  size_t EvictIdle();

  size_t size() const;

 private:
  const size_t max_sessions_;
  const uint64_t idle_millis_;

  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
  std::unordered_map<std::string, std::shared_ptr<ServerSession>> sessions_;
};

}  // namespace re2xolap::server

#endif  // RE2XOLAP_SERVER_SESSION_MANAGER_H_
