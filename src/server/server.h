#ifndef RE2XOLAP_SERVER_SERVER_H_
#define RE2XOLAP_SERVER_SERVER_H_

// The multi-session HTTP/1.1 front door (ROADMAP item 1): SPARQL
// execution, ReOLAP synthesis, and ExRef refinements served over one
// shared engine::QueryEngine on a frozen store, built directly on POSIX
// sockets with the repo's from-scratch discipline. The organizing
// principle is staying up under overload:
//
//  - Admission control: one acceptor thread multiplexes the listen
//    socket and every idle keep-alive connection; a connection whose
//    request bytes arrive is stamped with its *arrival time* and pushed
//    into a bounded request queue drained by `worker_threads` workers.
//    The worker count IS the in-flight concurrency cap C — at most C
//    requests execute at any instant, excess waits in the queue, and a
//    request arriving with the queue full is shed immediately with
//    503 + Retry-After. Nothing queues unboundedly. With
//    per_client_queue_cap set, admission is additionally fair per
//    client: a single chatty peer IP can only occupy its share of the
//    queue, and its overflow is shed while other clients keep getting
//    in.
//  - Arrival-anchored deadlines: every request executes under a
//    util::ExecGuard whose deadline is anchored at the arrival stamp
//    (ExecGuard's arrival constructor), so queue wait counts against the
//    deadline and a request that waited its budget away is answered 504
//    without executing.
//  - Slow-client protection: reads and writes run over nonblocking
//    sockets with poll() timeouts; a client that trickles its request or
//    refuses to drain the response is cut off (408 / connection close)
//    instead of pinning a worker.
//  - Per-session state: exploration sessions (core::Session, all sharing
//    the server's engine and its caches) live in a SessionManager with a
//    bounded population and idle-TTL eviction.
//  - Graceful drain: Stop() (or SIGTERM via the async-signal-safe
//    RequestStop()) stops accepting, sheds new requests on live
//    connections, lets queued + in-flight requests finish within a grace
//    period, then guard-cancels stragglers (they answer 503 Cancelled),
//    joins every thread, and flushes the query log.
//  - Observability: server.* counters/gauges/histograms in the global
//    registry, exported at GET /metrics in Prometheus text exposition
//    format; GET /healthz reports engine + store-epoch status.
//
// Failpoints (chaos CI): `server.accept` (post-accept), `server.parse`
// (before request parsing), `server.write` (before response write) — an
// injected error surfaces as a typed 503 or a clean connection close,
// never a crash or a leaked session.
//
// Routes (bodies are plain text; responses JSON unless noted):
//   GET  /healthz                          liveness + epoch status
//   GET  /metrics                          Prometheus text/plain;version=0.0.4
//   POST /query                            body = SPARQL SELECT/ASK text
//   POST /ingest?op=insert|delete          body = N-Triples statements
//                                          (live stores only; admission-
//                                          controlled like /query)
//   POST /session                          create session -> {"session": id}
//   POST /session/<id>/start               body = example values, one/line
//   POST /session/<id>/pick?index=N        choose a synthesized candidate
//   POST /session/<id>/execute             run the current query
//   POST /session/<id>/refine?kind=K       K in disaggregate|rollup|topk|
//                                          percentile|similarity|cluster
//   POST /session/<id>/pick_refinement?index=N
//   POST /session/<id>/exclude             body = negative values, one/line
//   POST /session/<id>/slice?index=N       pin an example dimension
//   POST /session/<id>/back                undo the last step
//   DELETE /session/<id>                   end the session
// Request knobs (query parameters): timeout_ms (clamped to
// max_deadline_millis), max_rows, max_bytes (guard budgets), limit
// (response row cap).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unordered_map>

#include "core/session.h"
#include "core/virtual_schema_graph.h"
#include "engine/query_engine.h"
#include "rdf/text_index.h"
#include "rdf/triple_store.h"
#include "server/http.h"
#include "server/session_manager.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace re2xolap::store {
class Ingestor;
}

namespace re2xolap::server {

/// The dataset a Server serves. `store` and `engine` are required (the
/// store frozen); `vsg`/`text` enable session routes and may be null for
/// store-only images; `ingestor` enables POST /ingest on a live store
/// (rdf::TripleStore::EnterLive + store::Ingestor). All pointers are
/// non-owning and must outlive the server.
struct Dataset {
  const rdf::TripleStore* store = nullptr;
  engine::QueryEngine* engine = nullptr;
  const core::VirtualSchemaGraph* vsg = nullptr;
  const rdf::TextIndex* text = nullptr;
  store::Ingestor* ingestor = nullptr;
};

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with Server::port().
  uint16_t port = 0;
  /// In-flight concurrency cap C: the number of worker threads, hence
  /// the maximum number of concurrently executing requests.
  size_t worker_threads = 8;
  /// Bounded admission queue; a ready request beyond this is shed with
  /// 503 + Retry-After.
  size_t queue_capacity = 64;
  /// Per-client fair shedding: at most this many queued requests per
  /// client (keyed by peer IP address) before further requests from that
  /// client are shed with 503 — one chatty client can then never occupy
  /// the whole admission queue. 0 disables the per-client cap.
  size_t per_client_queue_cap = 0;
  /// Open-connection cap (idle + queued + executing); accepts beyond it
  /// are shed at the socket.
  size_t max_connections = 1024;
  /// Per-request deadline applied when the client sends no timeout_ms,
  /// anchored at request arrival (0 = no default deadline).
  uint64_t default_deadline_millis = 10'000;
  /// Hard ceiling on client-supplied timeout_ms.
  uint64_t max_deadline_millis = 60'000;
  /// Default guard budgets (0 = unlimited) when the client sends no
  /// max_rows / max_bytes.
  uint64_t default_max_rows = 0;
  uint64_t default_max_bytes = 0;
  /// Slow-client socket timeouts (request read / response write).
  uint64_t read_timeout_millis = 5'000;
  uint64_t write_timeout_millis = 5'000;
  /// Retry-After header value on shed responses, in seconds.
  unsigned retry_after_seconds = 1;
  /// Exploration-session idle TTL (0 = never evict) and population cap.
  uint64_t session_idle_millis = 300'000;
  size_t max_sessions = 256;
  /// How long Stop() lets queued + in-flight requests finish before
  /// guard-cancelling them.
  uint64_t drain_grace_millis = 2'000;
  HttpLimits http;
};

/// Point-in-time counters of one server instance (global server.*
/// metrics aggregate across instances; tests assert on these to stay
/// isolated).
struct ServerStats {
  uint64_t accepted_conns = 0;   // connections accepted
  uint64_t requests = 0;         // requests fully read and dispatched
  uint64_t responses_ok = 0;     // 2xx responses written
  uint64_t responses_error = 0;  // non-2xx responses written
  uint64_t shed = 0;             // 503 + Retry-After admission sheds
  uint64_t shed_per_client = 0;  // subset of `shed`: per-client-cap sheds
  uint64_t expired_in_queue = 0; // 504 without execution (queue wait)
  uint64_t client_timeouts = 0;  // slow-client read/write cutoffs
  uint64_t accept_faults = 0;    // server.accept failpoint fires
  uint64_t write_faults = 0;     // server.write failpoint fires
  uint64_t max_inflight = 0;     // high-water concurrent executions
};

class Server {
 public:
  Server(Dataset dataset, ServerConfig config = {});
  /// Stops (gracefully) if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the acceptor + worker threads. Fails
  /// with kUnavailable when the address can't be bound.
  util::Status Start();

  /// The bound TCP port (after Start; resolves port 0 to the ephemeral
  /// port actually bound).
  uint16_t port() const { return port_; }

  /// Async-signal-safe stop request: sets a flag and writes one byte to
  /// the acceptor's wake pipe. Safe to call from a SIGTERM handler. The
  /// acceptor begins the drain (stop accepting, shed new requests);
  /// call Stop() — typically right after WaitForStopRequest() returns —
  /// to complete it.
  void RequestStop();

  /// Blocks until RequestStop() or Stop() is called.
  void WaitForStopRequest();

  /// Graceful drain: stop accepting, finish queued + in-flight requests
  /// (guard-cancelling whatever outlives drain_grace_millis), join all
  /// threads, flush the query log. Idempotent; safe after RequestStop.
  void Stop();

  bool draining() const { return stopping_.load(std::memory_order_acquire); }

  ServerStats stats() const;
  SessionManager& sessions() { return sessions_; }
  const ServerConfig& config() const { return config_; }

 private:
  struct Conn;

  void AcceptorLoop();
  void WorkerLoop();

  /// Accepts every pending connection off the listen socket; new idle
  /// connections join the acceptor's poll set.
  void DrainListenSocket(std::vector<std::unique_ptr<Conn>>* idle);
  /// Moves worker-returned connections back under acceptor ownership.
  void CollectReturned(std::vector<std::unique_ptr<Conn>>* out);
  /// Admission: enqueue a ready request or shed it (503 + Retry-After).
  void EnqueueOrShed(std::unique_ptr<Conn> conn);
  /// Best-effort nonblocking shed/overload response + close.
  void ShedConn(std::unique_ptr<Conn> conn, const char* why);

  /// One request on `conn`: read (bounded, slow-client timeout), parse,
  /// dispatch, write. Returns the connection for keep-alive reuse, or
  /// null when it was closed.
  std::unique_ptr<Conn> HandleOneRequest(std::unique_ptr<Conn> conn);

  /// Reads one full request (head + body) into `req`. kTimeout = slow
  /// client; kCancelled = peer closed cleanly between requests.
  util::Status ReadRequest(Conn* conn, HttpRequest* req);
  /// Writes `bytes` with the slow-client write timeout; false = closed.
  bool WriteAll(Conn* conn, std::string_view bytes);

  HttpResponse Dispatch(const HttpRequest& req,
                        std::chrono::steady_clock::time_point arrival);
  HttpResponse HandleHealthz() const;
  HttpResponse HandleMetrics() const;
  HttpResponse HandleQuery(const HttpRequest& req,
                           const util::ExecGuard& guard);
  HttpResponse HandleIngest(const HttpRequest& req,
                            const util::ExecGuard& guard);
  HttpResponse HandleSession(const HttpRequest& req,
                             const util::ExecGuard& guard);

  util::ExecGuard MakeGuard(const HttpRequest& req,
                            std::chrono::steady_clock::time_point arrival);

  void NoteInflight(size_t now_inflight);

  Dataset dataset_;
  const ServerConfig config_;
  SessionManager sessions_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  std::chrono::steady_clock::time_point started_at_{};

  std::thread acceptor_;
  std::vector<std::thread> workers_;
  bool started_ = false;

  // Request queue (bounded by config_.queue_capacity). When
  // per_client_queue_cap is set, queued_per_client_ tracks how much of
  // the queue each client key (peer IP) currently occupies; entries are
  // erased as they drain to zero.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::unique_ptr<Conn>> queue_;
  std::unordered_map<std::string, size_t> queued_per_client_;

  // Keep-alive connections handed back by workers, collected by the
  // acceptor on the next wake.
  std::mutex returned_mu_;
  std::vector<std::unique_ptr<Conn>> returned_;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;

  /// Cancelled when the drain grace period expires; every request guard
  /// carries it.
  util::CancellationToken drain_token_;

  std::atomic<size_t> open_conns_{0};
  std::atomic<size_t> inflight_{0};

  // Instance counters (relaxed; exact under the tests' sync points).
  std::atomic<uint64_t> accepted_conns_{0}, requests_{0}, responses_ok_{0},
      responses_error_{0}, shed_{0}, shed_per_client_{0},
      expired_in_queue_{0}, client_timeouts_{0}, accept_faults_{0},
      write_faults_{0}, max_inflight_{0};
};

}  // namespace re2xolap::server

#endif  // RE2XOLAP_SERVER_SERVER_H_
