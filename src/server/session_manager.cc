#include "server/session_manager.h"

#include <vector>

#include "obs/metrics.h"

namespace re2xolap::server {

namespace {

obs::Counter& CreatedCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("server.sessions_created");
  return c;
}

obs::Counter& EvictedCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("server.sessions_evicted");
  return c;
}

obs::Gauge& ActiveGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().GetGauge("server.sessions_active");
  return g;
}

}  // namespace

util::Result<std::string> SessionManager::Create(
    const rdf::TripleStore* store, const core::VirtualSchemaGraph* vsg,
    const rdf::TextIndex* text, engine::QueryEngine* engine,
    sparql::ExecOptions exec_options) {
  if (vsg == nullptr || text == nullptr) {
    return util::Status::InvalidArgument(
        "this server was started without the schema-graph/text-index "
        "sections sessions need (store-only snapshot); /query remains "
        "available");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.size() >= max_sessions_) {
    return util::Status::ResourceExhausted(
        "session limit of " + std::to_string(max_sessions_) + " reached");
  }
  std::string id = "s-" + std::to_string(next_id_++);
  sessions_.emplace(id, std::make_shared<ServerSession>(store, vsg, text,
                                                        engine, exec_options));
  CreatedCounter().Inc();
  ActiveGauge().Set(static_cast<double>(sessions_.size()));
  return id;
}

util::Result<std::shared_ptr<ServerSession>> SessionManager::Acquire(
    const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return util::Status::NotFound("unknown session \"" + id +
                                  "\" (expired or never created)");
  }
  it->second->last_used = std::chrono::steady_clock::now();
  return it->second;
}

util::Status SessionManager::Remove(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return util::Status::NotFound("unknown session \"" + id + "\"");
  }
  sessions_.erase(it);
  ActiveGauge().Set(static_cast<double>(sessions_.size()));
  return util::Status::OK();
}

size_t SessionManager::EvictIdle() {
  if (idle_millis_ == 0) return 0;
  const auto now = std::chrono::steady_clock::now();
  // Collect victims under the lock but destroy them outside it: a
  // session's destructor is not cheap (engine cache handles, history).
  std::vector<std::shared_ptr<ServerSession>> victims;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      const auto idle = std::chrono::duration_cast<std::chrono::milliseconds>(
          now - it->second->last_used);
      if (static_cast<uint64_t>(idle.count()) > idle_millis_) {
        victims.push_back(std::move(it->second));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
    ActiveGauge().Set(static_cast<double>(sessions_.size()));
  }
  EvictedCounter().Inc(victims.size());
  return victims.size();
}

size_t SessionManager::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace re2xolap::server
