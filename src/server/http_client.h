#ifndef RE2XOLAP_SERVER_HTTP_CLIENT_H_
#define RE2XOLAP_SERVER_HTTP_CLIENT_H_

// Minimal blocking HTTP/1.1 client over POSIX sockets, for the pieces of
// the repo that drive the server: the concurrency tests, the closed-loop
// bench driver, and nothing else. One keep-alive connection per
// instance; Content-Length responses only (matching what server.cc
// emits). Not a general client — no TLS, no redirects, no chunked
// encoding.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.h"

namespace re2xolap::server {

struct ClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;  // lowercased names
  std::string body;

  /// Value of response header `name` (lowercase), or "" when absent.
  std::string_view Header(std::string_view name) const;
};

class HttpClient {
 public:
  /// `timeout_millis` bounds connect, each send, and each response read.
  HttpClient(std::string host, uint16_t port, uint64_t timeout_millis = 5'000);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// One request/response round trip. Reconnects transparently when the
  /// server closed the keep-alive connection (e.g. after a shed or an
  /// injected write fault). kUnavailable = could not connect;
  /// kTimeout = server did not answer in time.
  util::Result<ClientResponse> Request(std::string_view method,
                                       std::string_view target,
                                       std::string_view body = {});

  util::Result<ClientResponse> Get(std::string_view target) {
    return Request("GET", target);
  }
  util::Result<ClientResponse> Post(std::string_view target,
                                    std::string_view body) {
    return Request("POST", target, body);
  }

  /// Drops the current connection (next Request reconnects).
  void Disconnect();

 private:
  util::Status Connect();
  util::Result<ClientResponse> RoundTrip(std::string_view wire);

  std::string host_;
  uint16_t port_;
  uint64_t timeout_millis_;
  int fd_ = -1;
  std::string inbuf_;
};

}  // namespace re2xolap::server

#endif  // RE2XOLAP_SERVER_HTTP_CLIENT_H_
