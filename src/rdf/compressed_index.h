#ifndef RE2XOLAP_RDF_COMPRESSED_INDEX_H_
#define RE2XOLAP_RDF_COMPRESSED_INDEX_H_

// Compressed block representation of one sorted triple permutation.
//
// The permutation is cut into fixed-size blocks of kIndexBlockSize triples
// (the last block may be shorter). Each block body stores its triples
// delta-encoded in permutation key order against the previous triple, with
// vbyte (LEB128-style, 7 bits per byte) varints; the block's first triple
// is not stored in the body at all — it is seeded from the in-memory skip
// table, which keeps one 24-byte BlockMeta {payload byte offset, first
// triple's s/p/o, truncated-XXH64 checksum} per block. Point lookups and
// merge-join gallops run on the skip table's first-triple keys and decode
// only the blocks that survive the seek.
//
// Per-triple body encoding (key components k0,k1,k2 per permutation):
//   d0 = k0 - prev.k0
//   d0 > 0:            vbyte(d0)  vbyte(k1)  vbyte(k2)     (k0 advanced)
//   d0 = 0, d1 > 0:    vbyte(0)   vbyte(d1)  vbyte(k2)     (k1 advanced)
//   d0 = 0, d1 = 0:    vbyte(0)   vbyte(0)   vbyte(d2)     (d2 > 0: strict)
// Typical dictionary-dense KG data lands at 2–5 bytes/triple vs 12 raw.
//
// The skip table and payload are either owned vectors (Build, the in-
// process Freeze path) or borrowed spans into a loaded snapshot image
// (FromParts; storage/ validates every block before adoption, so the
// query-time decoder trusts the data but still never reads outside a
// block's byte slice — corruption can produce wrong triples, never UB).

#include <cstdint>
#include <span>
#include <vector>

#include "rdf/index_cursor.h"
#include "rdf/triple.h"
#include "util/status.h"

namespace re2xolap::rdf {

/// Triples per compressed block. Wire-stable: images record it per section
/// and the loader rejects other values.
inline constexpr uint32_t kIndexBlockSize = 1024;

/// Per-block skip-table entry. The struct layout IS the wire format of the
/// snapshot skip table (little-endian, naturally aligned, 24 bytes).
struct BlockMeta {
  uint64_t byte_offset;  // block body start within the payload
  TermId first_s;        // first triple of the block (s/p/o order)
  TermId first_p;
  TermId first_o;
  uint32_t checksum;  // truncated util::Xxh64 of the block body bytes

  EncodedTriple first() const { return {first_s, first_p, first_o}; }
};
static_assert(sizeof(BlockMeta) == 24 && alignof(BlockMeta) == 8,
              "BlockMeta is a wire format; layout must not change");

/// One compressed permutation: skip table + delta/vbyte payload.
/// Move-only; the generation id tags decoded-block scratch caches so a
/// scratch can never serve a stale block after the permutation it cached
/// from is destroyed and its address reused.
class CompressedPermutation {
 public:
  CompressedPermutation() = default;
  CompressedPermutation(CompressedPermutation&&) = default;
  CompressedPermutation& operator=(CompressedPermutation&&) = default;
  CompressedPermutation(const CompressedPermutation&) = delete;
  CompressedPermutation& operator=(const CompressedPermutation&) = delete;

  /// Compresses a strictly sorted, deduplicated permutation (as produced
  /// by TripleStore::BuildIndexes) into owned skip + payload storage.
  static CompressedPermutation Build(std::span<const EncodedTriple> sorted,
                                     Perm perm);

  /// Borrows already-validated wire-format parts (mmap-backed snapshot
  /// adoption). `skip` must hold exactly BlockCountFor(triple_count)
  /// entries and `payload` every block body; storage/ runs the full
  /// per-block validation (DecodeBlockChecked + cross-block ordering)
  /// before calling this.
  static CompressedPermutation FromParts(std::span<const BlockMeta> skip,
                                         std::span<const uint8_t> payload,
                                         uint64_t triple_count, Perm perm);

  static uint64_t BlockCountFor(uint64_t triple_count) {
    return (triple_count + kIndexBlockSize - 1) / kIndexBlockSize;
  }

  uint64_t size() const { return triple_count_; }
  uint64_t block_count() const { return skip_.size(); }
  Perm perm() const { return perm_; }
  uint64_t generation() const { return generation_; }

  std::span<const BlockMeta> skip() const { return skip_; }
  std::span<const uint8_t> payload() const { return payload_; }

  /// Total compressed bytes (skip table + payload), whether owned or
  /// borrowed.
  size_t byte_size() const {
    return skip_.size() * sizeof(BlockMeta) + payload_.size();
  }
  /// Owned heap bytes (zero for borrowed/mmap-backed permutations).
  size_t heap_bytes() const {
    return owned_skip_.capacity() * sizeof(BlockMeta) +
           owned_payload_.capacity();
  }
  bool borrowed() const { return triple_count_ != 0 && owned_skip_.empty(); }

  uint64_t BlockOf(uint64_t pos) const { return pos / kIndexBlockSize; }
  uint64_t BlockFirstPos(uint64_t b) const { return b * kIndexBlockSize; }
  /// Triples in block b (kIndexBlockSize except possibly the last).
  uint64_t BlockLen(uint64_t b) const {
    uint64_t first = BlockFirstPos(b);
    uint64_t len = triple_count_ - first;
    return len < kIndexBlockSize ? len : kIndexBlockSize;
  }
  EncodedTriple BlockFirstTriple(uint64_t b) const { return skip_[b].first(); }

  /// Byte slice of block b's body within the payload.
  std::span<const uint8_t> BlockBytes(uint64_t b) const;

  /// Decodes block b into `out` (assign-resized to BlockLen(b)). Trusted
  /// fast path for validated data: reads are clamped to the block's byte
  /// slice (a short body yields zero-delta triples, never UB) and no
  /// ordering checks run. Bumps the store.index.blocks_decoded counter.
  void DecodeBlock(uint64_t b, std::vector<EncodedTriple>* out) const;

  /// Validating decode: typed Status (ParseError) on checksum mismatch,
  /// body overrun/underrun, non-strictly-increasing triples, or a first
  /// triple disagreeing with the skip entry. Used by snapshot load/verify.
  util::Status DecodeBlockChecked(uint64_t b,
                                  std::vector<EncodedTriple>* out) const;

  /// Decodes the whole permutation in order (Materialize / export).
  void DecodeAll(std::vector<EncodedTriple>* out) const;

 private:
  std::span<const BlockMeta> skip_;
  std::span<const uint8_t> payload_;
  std::vector<BlockMeta> owned_skip_;
  std::vector<uint8_t> owned_payload_;
  uint64_t triple_count_ = 0;
  uint64_t generation_ = 0;
  Perm perm_ = Perm::kSpo;
};

/// Permutation key projection: triple -> (k0, k1, k2) in the permutation's
/// comparison order, and back.
inline void PermKey(Perm perm, const EncodedTriple& t, uint32_t k[3]) {
  switch (perm) {
    case Perm::kSpo:
      k[0] = t.s; k[1] = t.p; k[2] = t.o;
      return;
    case Perm::kPos:
      k[0] = t.p; k[1] = t.o; k[2] = t.s;
      return;
    default:
      k[0] = t.o; k[1] = t.s; k[2] = t.p;
      return;
  }
}

inline EncodedTriple PermUnkey(Perm perm, const uint32_t k[3]) {
  switch (perm) {
    case Perm::kSpo:
      return {k[0], k[1], k[2]};
    case Perm::kPos:
      return {k[2], k[0], k[1]};
    default:
      return {k[1], k[2], k[0]};
  }
}

}  // namespace re2xolap::rdf

#endif  // RE2XOLAP_RDF_COMPRESSED_INDEX_H_
