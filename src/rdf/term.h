#ifndef RE2XOLAP_RDF_TERM_H_
#define RE2XOLAP_RDF_TERM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace re2xolap::rdf {

/// Kind of an RDF term (Definition 3.1 of the paper: IRIs, literals, blank
/// nodes).
enum class TermKind : uint8_t {
  kIri = 0,
  kLiteral = 1,
  kBlankNode = 2,
};

/// Datatype tag for literals. We model the XSD types that statistical KGs
/// actually use; anything else is kOther (datatype IRI kept in the lexical
/// form's sibling field).
enum class LiteralType : uint8_t {
  kString = 0,
  kInteger = 1,
  kDouble = 2,
  kBoolean = 3,
  kDate = 4,
  kOther = 5,
};

/// An RDF term: an IRI, a typed literal, or a blank node. Terms are plain
/// value types; the store interns them in a Dictionary and works with
/// integer ids.
struct Term {
  TermKind kind = TermKind::kIri;
  /// IRI string, literal lexical form, or blank node label.
  std::string value;
  /// Only meaningful for literals.
  LiteralType literal_type = LiteralType::kString;

  Term() = default;
  Term(TermKind k, std::string v, LiteralType lt = LiteralType::kString)
      : kind(k), value(std::move(v)), literal_type(lt) {}

  /// Factory helpers.
  static Term Iri(std::string iri) {
    return Term(TermKind::kIri, std::move(iri));
  }
  static Term StringLiteral(std::string s) {
    return Term(TermKind::kLiteral, std::move(s), LiteralType::kString);
  }
  static Term IntegerLiteral(int64_t v) {
    return Term(TermKind::kLiteral, std::to_string(v), LiteralType::kInteger);
  }
  static Term DoubleLiteral(double v);
  static Term BooleanLiteral(bool v) {
    return Term(TermKind::kLiteral, v ? "true" : "false",
                LiteralType::kBoolean);
  }
  static Term DateLiteral(std::string iso) {
    return Term(TermKind::kLiteral, std::move(iso), LiteralType::kDate);
  }
  static Term Blank(std::string label) {
    return Term(TermKind::kBlankNode, std::move(label));
  }

  bool is_iri() const { return kind == TermKind::kIri; }
  bool is_literal() const { return kind == TermKind::kLiteral; }
  bool is_blank() const { return kind == TermKind::kBlankNode; }
  bool is_numeric_literal() const {
    return is_literal() && (literal_type == LiteralType::kInteger ||
                            literal_type == LiteralType::kDouble);
  }

  /// Numeric value of a numeric literal; 0 for anything else.
  double AsDouble() const;

  /// N-Triples-style rendering: <iri>, "literal"^^type-suffix, _:label.
  std::string ToString() const;

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind == b.kind && a.literal_type == b.literal_type &&
           a.value == b.value;
  }
  friend bool operator<(const Term& a, const Term& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.literal_type != b.literal_type) return a.literal_type < b.literal_type;
    return a.value < b.value;
  }
};

/// Hash functor so Term can key unordered containers.
struct TermHash {
  size_t operator()(const Term& t) const {
    size_t h = std::hash<std::string_view>()(t.value);
    h ^= (static_cast<size_t>(t.kind) * 0x9E3779B97F4A7C15ULL) +
         (static_cast<size_t>(t.literal_type) << 16);
    return h;
  }
};

}  // namespace re2xolap::rdf

#endif  // RE2XOLAP_RDF_TERM_H_
