#include "rdf/compressed_index.h"

#include <atomic>
#include <cassert>
#include <string>

#include "obs/metrics.h"
#include "util/hash.h"

namespace re2xolap::rdf {

namespace {

// Process-unique generation ids for scratch-cache keying. 0 is reserved for
// "no cached block".
std::atomic<uint64_t> g_next_generation{1};

obs::Counter& BlocksDecodedCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("store.index.blocks_decoded");
  return c;
}

// Appends v as a vbyte varint (7 bits per byte, high bit = continuation).
inline void VbytePut(std::vector<uint8_t>* out, uint32_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

// Reads one varint from [*p, end); clamped — a truncated body decodes the
// available bytes and stops, it never reads past `end`.
inline uint32_t VbyteGet(const uint8_t** p, const uint8_t* end) {
  uint32_t v = 0;
  int shift = 0;
  while (*p < end) {
    uint8_t byte = **p;
    ++*p;
    v |= static_cast<uint32_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift >= 32) break;  // over-long varint: stop, value is clamped
  }
  return v;
}

}  // namespace

CompressedPermutation CompressedPermutation::Build(
    std::span<const EncodedTriple> sorted, Perm perm) {
  CompressedPermutation cp;
  cp.perm_ = perm;
  cp.triple_count_ = sorted.size();
  cp.generation_ = g_next_generation.fetch_add(1, std::memory_order_relaxed);
  const uint64_t blocks = BlockCountFor(sorted.size());
  cp.owned_skip_.reserve(blocks);
  // Dictionary-dense data averages well under 4 bytes/triple; reserving 4
  // avoids most payload regrowth without overshooting badly.
  cp.owned_payload_.reserve(sorted.size() * 4);
  for (uint64_t b = 0; b < blocks; ++b) {
    const uint64_t begin = b * kIndexBlockSize;
    const uint64_t end =
        begin + kIndexBlockSize < sorted.size() ? begin + kIndexBlockSize
                                                : sorted.size();
    BlockMeta meta;
    meta.byte_offset = cp.owned_payload_.size();
    const EncodedTriple& first = sorted[begin];
    meta.first_s = first.s;
    meta.first_p = first.p;
    meta.first_o = first.o;
    uint32_t prev[3];
    PermKey(perm, first, prev);
    for (uint64_t i = begin + 1; i < end; ++i) {
      uint32_t k[3];
      PermKey(perm, sorted[i], k);
      const uint32_t d0 = k[0] - prev[0];
      VbytePut(&cp.owned_payload_, d0);
      if (d0 != 0) {
        VbytePut(&cp.owned_payload_, k[1]);
        VbytePut(&cp.owned_payload_, k[2]);
      } else {
        const uint32_t d1 = k[1] - prev[1];
        VbytePut(&cp.owned_payload_, d1);
        VbytePut(&cp.owned_payload_, d1 != 0 ? k[2] : k[2] - prev[2]);
      }
      prev[0] = k[0];
      prev[1] = k[1];
      prev[2] = k[2];
    }
    meta.checksum = static_cast<uint32_t>(
        util::Xxh64(cp.owned_payload_.data() + meta.byte_offset,
                    cp.owned_payload_.size() - meta.byte_offset));
    cp.owned_skip_.push_back(meta);
  }
  cp.owned_payload_.shrink_to_fit();
  cp.skip_ = cp.owned_skip_;
  cp.payload_ = cp.owned_payload_;
  return cp;
}

CompressedPermutation CompressedPermutation::FromParts(
    std::span<const BlockMeta> skip, std::span<const uint8_t> payload,
    uint64_t triple_count, Perm perm) {
  assert(skip.size() == BlockCountFor(triple_count));
  CompressedPermutation cp;
  cp.perm_ = perm;
  cp.triple_count_ = triple_count;
  cp.generation_ = g_next_generation.fetch_add(1, std::memory_order_relaxed);
  cp.skip_ = skip;
  cp.payload_ = payload;
  return cp;
}

std::span<const uint8_t> CompressedPermutation::BlockBytes(uint64_t b) const {
  const uint64_t begin = skip_[b].byte_offset;
  const uint64_t end =
      b + 1 < skip_.size() ? skip_[b + 1].byte_offset : payload_.size();
  assert(begin <= end && end <= payload_.size());
  return payload_.subspan(begin, end - begin);
}

namespace {

// Decode loop specialized on the permutation so the PermUnkey component
// shuffle constant-folds out of the per-triple path. This is the hottest
// loop in the compressed format: every probe-side block materialization
// funnels through it.
template <Perm P>
void DecodeBody(const uint8_t* p, const uint8_t* end,
                const EncodedTriple& first, uint64_t len,
                EncodedTriple* dst) {
  uint32_t k[3];
  PermKey(P, first, k);
  dst[0] = first;
  for (uint64_t i = 1; i < len; ++i) {
    const uint32_t d0 = VbyteGet(&p, end);
    if (d0 != 0) {
      k[0] += d0;
      k[1] = VbyteGet(&p, end);
      k[2] = VbyteGet(&p, end);
    } else {
      const uint32_t d1 = VbyteGet(&p, end);
      if (d1 != 0) {
        k[1] += d1;
        k[2] = VbyteGet(&p, end);
      } else {
        k[2] += VbyteGet(&p, end);
      }
    }
    dst[i] = PermUnkey(P, k);
  }
}

}  // namespace

void CompressedPermutation::DecodeBlock(uint64_t b,
                                        std::vector<EncodedTriple>* out) const {
  const uint64_t len = BlockLen(b);
  out->resize(len);
  std::span<const uint8_t> body = BlockBytes(b);
  const uint8_t* p = body.data();
  const uint8_t* end = p + body.size();
  switch (perm_) {
    case Perm::kSpo:
      DecodeBody<Perm::kSpo>(p, end, skip_[b].first(), len, out->data());
      break;
    case Perm::kPos:
      DecodeBody<Perm::kPos>(p, end, skip_[b].first(), len, out->data());
      break;
    default:
      DecodeBody<Perm::kOsp>(p, end, skip_[b].first(), len, out->data());
      break;
  }
  BlocksDecodedCounter().Inc();
}

util::Status CompressedPermutation::DecodeBlockChecked(
    uint64_t b, std::vector<EncodedTriple>* out) const {
  std::span<const uint8_t> body = BlockBytes(b);
  const uint32_t want = skip_[b].checksum;
  const uint32_t got =
      static_cast<uint32_t>(util::Xxh64(body.data(), body.size()));
  if (got != want) {
    return util::Status::ParseError(
        "compressed index block " + std::to_string(b) +
        " checksum mismatch: stored " + std::to_string(want) + ", computed " +
        std::to_string(got));
  }
  const uint64_t len = BlockLen(b);
  out->clear();
  out->reserve(kIndexBlockSize);
  const uint8_t* p = body.data();
  const uint8_t* end = p + body.size();
  uint32_t k[3];
  PermKey(perm_, skip_[b].first(), k);
  out->push_back(skip_[b].first());
  for (uint64_t i = 1; i < len; ++i) {
    if (p >= end) {
      return util::Status::ParseError(
          "compressed index block " + std::to_string(b) +
          " body truncated: decoded " + std::to_string(i) + " of " +
          std::to_string(len) + " triples");
    }
    const uint32_t d0 = VbyteGet(&p, end);
    bool advanced = d0 != 0;
    if (d0 != 0) {
      k[0] += d0;
      k[1] = VbyteGet(&p, end);
      k[2] = VbyteGet(&p, end);
    } else {
      const uint32_t d1 = VbyteGet(&p, end);
      if (d1 != 0) {
        advanced = true;
        k[1] += d1;
        k[2] = VbyteGet(&p, end);
      } else {
        const uint32_t d2 = VbyteGet(&p, end);
        advanced = d2 != 0;
        k[2] += d2;
      }
    }
    if (!advanced) {
      return util::Status::ParseError(
          "compressed index block " + std::to_string(b) +
          " not strictly increasing at triple " + std::to_string(i));
    }
    out->push_back(PermUnkey(perm_, k));
  }
  if (p != end) {
    return util::Status::ParseError(
        "compressed index block " + std::to_string(b) + " has " +
        std::to_string(end - p) + " trailing bytes");
  }
  BlocksDecodedCounter().Inc();
  return util::Status::OK();
}

void CompressedPermutation::DecodeAll(std::vector<EncodedTriple>* out) const {
  out->clear();
  out->reserve(triple_count_);
  std::vector<EncodedTriple> block;
  for (uint64_t b = 0; b < block_count(); ++b) {
    DecodeBlock(b, &block);
    out->insert(out->end(), block.begin(), block.end());
  }
}

}  // namespace re2xolap::rdf
