#include "rdf/ntriples.h"

#include <string>

#include "util/string_utils.h"

namespace re2xolap::rdf {

namespace {

// Parses one term starting at position `i` of `line`; advances `i` past the
// term and any following spaces. Returns false on malformed input with
// `error` set.
bool ParseTerm(std::string_view line, size_t* i, Term* out,
               std::string* error) {
  while (*i < line.size() && line[*i] == ' ') ++*i;
  if (*i >= line.size()) {
    *error = "unexpected end of line";
    return false;
  }
  char c = line[*i];
  if (c == '<') {
    size_t end = line.find('>', *i);
    if (end == std::string_view::npos) {
      *error = "unterminated IRI";
      return false;
    }
    *out = Term::Iri(std::string(line.substr(*i + 1, end - *i - 1)));
    *i = end + 1;
    return true;
  }
  if (c == '_' && *i + 1 < line.size() && line[*i + 1] == ':') {
    size_t end = *i + 2;
    while (end < line.size() && line[end] != ' ') ++end;
    *out = Term::Blank(std::string(line.substr(*i + 2, end - *i - 2)));
    *i = end;
    return true;
  }
  if (c == '"') {
    size_t end = *i + 1;
    std::string lex;
    while (end < line.size() && line[end] != '"') {
      if (line[end] == '\\' && end + 1 < line.size()) {
        ++end;
        switch (line[end]) {
          case 'n': lex += '\n'; break;
          case 'r': lex += '\r'; break;
          case 't': lex += '\t'; break;
          default: lex += line[end]; break;  // \\ and \" decode here too
        }
        ++end;
        continue;
      }
      lex += line[end];
      ++end;
    }
    if (end >= line.size()) {
      *error = "unterminated literal";
      return false;
    }
    size_t after = end + 1;
    LiteralType lt = LiteralType::kString;
    if (after + 1 < line.size() && line[after] == '^' &&
        line[after + 1] == '^') {
      size_t type_end = after + 2;
      while (type_end < line.size() && line[type_end] != ' ') ++type_end;
      std::string_view dt = line.substr(after + 2, type_end - after - 2);
      if (dt == "xsd:integer") {
        lt = LiteralType::kInteger;
      } else if (dt == "xsd:double" || dt == "xsd:decimal") {
        lt = LiteralType::kDouble;
      } else if (dt == "xsd:boolean") {
        lt = LiteralType::kBoolean;
      } else if (dt == "xsd:date") {
        lt = LiteralType::kDate;
      } else {
        lt = LiteralType::kOther;
      }
      after = type_end;
    }
    *out = Term(TermKind::kLiteral, std::move(lex), lt);
    *i = after;
    return true;
  }
  *error = "unexpected character '" + std::string(1, c) + "'";
  return false;
}

}  // namespace

namespace {

// Escapes a literal lexical form for embedding between the writer's quotes.
std::string EscapeLexical(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  return out;
}

}  // namespace

std::string ToNTriples(const Term& term) {
  switch (term.kind) {
    case TermKind::kIri:
      return "<" + term.value + ">";
    case TermKind::kBlankNode:
      return "_:" + term.value;
    case TermKind::kLiteral: {
      std::string quoted = "\"" + EscapeLexical(term.value) + "\"";
      switch (term.literal_type) {
        case LiteralType::kString: return quoted;
        case LiteralType::kInteger: return quoted + "^^xsd:integer";
        case LiteralType::kDouble: return quoted + "^^xsd:double";
        case LiteralType::kBoolean: return quoted + "^^xsd:boolean";
        case LiteralType::kDate: return quoted + "^^xsd:date";
        case LiteralType::kOther: return quoted + "^^<unknown>";
      }
      return quoted;
    }
  }
  return term.value;
}

void WriteNTriples(const TripleStore& store, std::ostream& os) {
  for (const EncodedTriple& t : store.Match(TriplePattern{})) {
    os << ToNTriples(store.term(t.s)) << " " << ToNTriples(store.term(t.p))
       << " " << ToNTriples(store.term(t.o)) << " .\n";
  }
}

namespace {

// Shared statement walk for the two parse entry points: calls
// emit(s, p, o) per valid statement.
template <typename Emit>
util::Status ParseStatements(std::string_view text, Emit&& emit) {
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    line = util::Trim(line);
    if (line.empty() || line[0] == '#') continue;
    size_t i = 0;
    Term s, p, o;
    std::string error;
    if (!ParseTerm(line, &i, &s, &error) || !ParseTerm(line, &i, &p, &error) ||
        !ParseTerm(line, &i, &o, &error)) {
      return util::Status::ParseError("line " + std::to_string(line_no) +
                                      ": " + error);
    }
    while (i < line.size() && line[i] == ' ') ++i;
    if (i >= line.size() || line[i] != '.') {
      return util::Status::ParseError("line " + std::to_string(line_no) +
                                      ": missing terminating '.'");
    }
    if (!s.is_iri() && !s.is_blank()) {
      return util::Status::ParseError("line " + std::to_string(line_no) +
                                      ": literal subject");
    }
    if (!p.is_iri()) {
      return util::Status::ParseError("line " + std::to_string(line_no) +
                                      ": predicate must be an IRI");
    }
    emit(std::move(s), std::move(p), std::move(o));
  }
  return util::Status::OK();
}

}  // namespace

util::Status ParseNTriples(std::string_view text, TripleStore* store) {
  return ParseStatements(text, [store](Term&& s, Term&& p, Term&& o) {
    store->Add(s, p, o);
  });
}

util::Status ParseNTriplesTerms(std::string_view text,
                                std::vector<std::array<Term, 3>>* out) {
  return ParseStatements(text, [out](Term&& s, Term&& p, Term&& o) {
    out->push_back({std::move(s), std::move(p), std::move(o)});
  });
}

}  // namespace re2xolap::rdf
