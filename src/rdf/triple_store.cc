#include "rdf/triple_store.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace re2xolap::rdf {

namespace {

// Key comparators for the three permutations.
struct SpoLess {
  bool operator()(const EncodedTriple& a, const EncodedTriple& b) const {
    if (a.s != b.s) return a.s < b.s;
    if (a.p != b.p) return a.p < b.p;
    return a.o < b.o;
  }
};
struct PosLess {
  bool operator()(const EncodedTriple& a, const EncodedTriple& b) const {
    if (a.p != b.p) return a.p < b.p;
    if (a.o != b.o) return a.o < b.o;
    return a.s < b.s;
  }
};
struct OspLess {
  bool operator()(const EncodedTriple& a, const EncodedTriple& b) const {
    if (a.o != b.o) return a.o < b.o;
    if (a.s != b.s) return a.s < b.s;
    return a.p < b.p;
  }
};

// Finds the contiguous range within `index` (sorted by Cmp) whose triples
// match the prefix encoded in lo/hi sentinel triples.
template <typename Cmp>
std::span<const EncodedTriple> EqualRange(
    std::span<const EncodedTriple> index, const EncodedTriple& lo,
    const EncodedTriple& hi, Cmp cmp) {
  auto first = std::lower_bound(index.begin(), index.end(), lo, cmp);
  auto last = std::upper_bound(index.begin(), index.end(), hi, cmp);
  if (first >= last) return {};
  return std::span<const EncodedTriple>(&*first,
                                        static_cast<size_t>(last - first));
}

constexpr TermId kMaxId = ~static_cast<TermId>(0);

}  // namespace

void TripleStore::Add(const Term& s, const Term& p, const Term& o) {
  AddEncoded(EncodedTriple{dict_.Intern(s), dict_.Intern(p), dict_.Intern(o)});
}

void TripleStore::AddEncoded(EncodedTriple t) {
  assert(dict_.IsValid(t.s) && dict_.IsValid(t.p) && dict_.IsValid(t.o));
  assert(active_readers_.load(std::memory_order_relaxed) == 0 &&
         "TripleStore::Add() during concurrent reads of a frozen store");
  Materialize();
  spo_.push_back(t);
  frozen_ = false;
}

void TripleStore::Materialize() {
  if (keepalive_ == nullptr) return;
  spo_.assign(spo_view_.begin(), spo_view_.end());
  pos_.assign(pos_view_.begin(), pos_view_.end());
  osp_.assign(osp_view_.begin(), osp_view_.end());
  spo_view_ = {};
  pos_view_ = {};
  osp_view_ = {};
  keepalive_.reset();
}

void TripleStore::AdoptFrozen(std::vector<EncodedTriple> spo,
                              std::vector<EncodedTriple> pos,
                              std::vector<EncodedTriple> osp,
                              std::unordered_map<TermId, PredicateStats> stats,
                              uint64_t epoch) {
  assert(active_readers_.load(std::memory_order_relaxed) == 0 &&
         "TripleStore::AdoptFrozen() during concurrent reads");
  spo_ = std::move(spo);
  pos_ = std::move(pos);
  osp_ = std::move(osp);
  spo_view_ = {};
  pos_view_ = {};
  osp_view_ = {};
  keepalive_.reset();
  stats_ = std::move(stats);
  frozen_ = true;
  freeze_epoch_ = epoch;
  obs::MetricsRegistry::Global()
      .GetGauge("store.triples")
      .Set(static_cast<double>(size()));
}

void TripleStore::AdoptFrozenView(
    std::span<const EncodedTriple> spo, std::span<const EncodedTriple> pos,
    std::span<const EncodedTriple> osp,
    std::unordered_map<TermId, PredicateStats> stats, uint64_t epoch,
    std::shared_ptr<const void> keepalive) {
  assert(active_readers_.load(std::memory_order_relaxed) == 0 &&
         "TripleStore::AdoptFrozenView() during concurrent reads");
  assert(keepalive != nullptr && "view adoption requires a keepalive");
  spo_.clear();
  spo_.shrink_to_fit();
  pos_.clear();
  pos_.shrink_to_fit();
  osp_.clear();
  osp_.shrink_to_fit();
  spo_view_ = spo;
  pos_view_ = pos;
  osp_view_ = osp;
  keepalive_ = std::move(keepalive);
  stats_ = std::move(stats);
  frozen_ = true;
  freeze_epoch_ = epoch;
  obs::MetricsRegistry::Global()
      .GetGauge("store.triples")
      .Set(static_cast<double>(size()));
}

void TripleStore::Freeze(util::ThreadPool* pool) {
  assert(active_readers_.load(std::memory_order_relaxed) == 0 &&
         "TripleStore::Freeze() during concurrent reads");
  obs::Span span("store.freeze");
  Materialize();
  span.SetAttr("triples", static_cast<uint64_t>(spo_.size()));
  {
    obs::Span child("store.build_indexes");
    BuildIndexes(pool);
  }
  {
    obs::Span child("store.compute_stats");
    ComputeStats(pool);
  }
  frozen_ = true;
  ++freeze_epoch_;
  obs::MetricsRegistry::Global()
      .GetGauge("store.triples")
      .Set(static_cast<double>(spo_.size()));
}

void TripleStore::BuildIndexes(util::ThreadPool* pool) {
  if (pool != nullptr && pool->size() > 0) {
    // Each permutation sorts an independent copy of the raw triple list
    // and deduplicates in place (duplicates are adjacent under any total
    // order over (s,p,o)), so the three tasks share nothing.
    pos_ = spo_;
    osp_ = spo_;
    auto sort_one = [this](size_t task) {
      switch (task) {
        case 0:
          std::sort(spo_.begin(), spo_.end(), SpoLess());
          spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
          spo_.shrink_to_fit();
          break;
        case 1:
          std::sort(pos_.begin(), pos_.end(), PosLess());
          pos_.erase(std::unique(pos_.begin(), pos_.end()), pos_.end());
          pos_.shrink_to_fit();
          break;
        default:
          std::sort(osp_.begin(), osp_.end(), OspLess());
          osp_.erase(std::unique(osp_.begin(), osp_.end()), osp_.end());
          osp_.shrink_to_fit();
          break;
      }
    };
    pool->ParallelFor(3, sort_one);
    return;
  }
  std::sort(spo_.begin(), spo_.end(), SpoLess());
  spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
  spo_.shrink_to_fit();
  pos_ = spo_;
  std::sort(pos_.begin(), pos_.end(), PosLess());
  osp_ = spo_;
  std::sort(osp_.begin(), osp_.end(), OspLess());
}

void TripleStore::ComputeStats(util::ThreadPool* pool) {
  stats_.clear();
  // pos_ is sorted by (p, o, s): per-predicate runs are contiguous, and
  // within a run objects are grouped, enabling distinct-object counting in
  // one pass. Distinct subjects need a second pass over a scratch copy per
  // predicate run sorted by subject.
  std::vector<std::pair<size_t, size_t>> runs;  // [begin, end) per predicate
  size_t i = 0;
  while (i < pos_.size()) {
    size_t j = i;
    while (j < pos_.size() && pos_[j].p == pos_[i].p) ++j;
    runs.emplace_back(i, j);
    i = j;
  }
  std::vector<PredicateStats> per_run(runs.size());
  auto stat_one = [this, &runs, &per_run](size_t r) {
    auto [begin, end] = runs[r];
    PredicateStats st;
    TermId prev_o = kInvalidTermId;
    std::vector<TermId> subjects;
    subjects.reserve(end - begin);
    for (size_t k = begin; k < end; ++k) {
      ++st.triple_count;
      if (pos_[k].o != prev_o) {
        ++st.distinct_objects;
        prev_o = pos_[k].o;
      }
      subjects.push_back(pos_[k].s);
    }
    std::sort(subjects.begin(), subjects.end());
    st.distinct_subjects = static_cast<uint64_t>(
        std::unique(subjects.begin(), subjects.end()) - subjects.begin());
    per_run[r] = st;
  };
  if (pool != nullptr && pool->size() > 0) {
    pool->ParallelFor(runs.size(), stat_one);
  } else {
    for (size_t r = 0; r < runs.size(); ++r) stat_one(r);
  }
  stats_.reserve(runs.size());
  for (size_t r = 0; r < runs.size(); ++r) {
    stats_.emplace(pos_[runs[r].first].p, per_run[r]);
  }
}

std::span<const EncodedTriple> TripleStore::Match(
    const TriplePattern& q) const {
  assert(frozen_ && "TripleStore::Freeze() must be called before Match()");
  ReadGuard guard(this);
  const bool bs = q.s != kInvalidTermId;
  const bool bp = q.p != kInvalidTermId;
  const bool bo = q.o != kInvalidTermId;

  if (bs) {
    // SPO serves s / s,p / s,p,o; OSP serves s,o.
    if (!bp && bo) {
      return EqualRange(OspView(), EncodedTriple{q.s, kInvalidTermId, q.o},
                        EncodedTriple{q.s, kMaxId, q.o}, OspLess());
    }
    EncodedTriple lo{q.s, bp ? q.p : kInvalidTermId, bo ? q.o : kInvalidTermId};
    EncodedTriple hi{q.s, bp ? q.p : kMaxId, bo ? q.o : kMaxId};
    return EqualRange(SpoView(), lo, hi, SpoLess());
  }
  if (bp) {
    // POS serves p / p,o.
    EncodedTriple lo{kInvalidTermId, q.p, bo ? q.o : kInvalidTermId};
    EncodedTriple hi{kMaxId, q.p, bo ? q.o : kMaxId};
    return EqualRange(PosView(), lo, hi, PosLess());
  }
  if (bo) {
    // OSP serves o.
    return EqualRange(OspView(),
                      EncodedTriple{kInvalidTermId, kInvalidTermId, q.o},
                      EncodedTriple{kMaxId, kMaxId, q.o}, OspLess());
  }
  return SpoView();
}

uint64_t TripleStore::CountMatches(const TriplePattern& pattern) const {
  return Match(pattern).size();
}

std::vector<TermId> TripleStore::PredicatesOfSubject(TermId s) const {
  std::vector<TermId> out;
  TermId prev = kInvalidTermId;
  for (const EncodedTriple& t :
       Match(TriplePattern{s, kInvalidTermId, kInvalidTermId})) {
    if (t.p != prev) {
      out.push_back(t.p);
      prev = t.p;
    }
  }
  // SPO order groups by predicate within a subject, so `out` is already
  // deduplicated.
  return out;
}

std::vector<TermId> TripleStore::PredicatesOfObject(TermId o) const {
  std::vector<TermId> out;
  for (const EncodedTriple& t :
       Match(TriplePattern{kInvalidTermId, kInvalidTermId, o})) {
    out.push_back(t.p);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<TermId> TripleStore::AllPredicates() const {
  std::vector<TermId> out;
  out.reserve(stats_.size());
  for (const auto& [p, st] : stats_) out.push_back(p);
  std::sort(out.begin(), out.end());
  return out;
}

PredicateStats TripleStore::predicate_stats(TermId p) const {
  auto it = stats_.find(p);
  return it == stats_.end() ? PredicateStats{} : it->second;
}

size_t TripleStore::MemoryUsage() const {
  // Borrowed (mmap-backed) indexes are file-backed pages, not heap: the
  // owned vectors are empty then and contribute zero.
  return dict_.MemoryUsage() +
         (spo_.capacity() + pos_.capacity() + osp_.capacity()) *
             sizeof(EncodedTriple) +
         stats_.size() * (sizeof(TermId) + sizeof(PredicateStats) +
                          2 * sizeof(void*));
}

}  // namespace re2xolap::rdf
