#include "rdf/triple_store.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "rdf/compressed_index.h"
#include "rdf/delta_layer.h"
#include "util/thread_pool.h"

namespace re2xolap::rdf {

IndexFormat DefaultIndexFormat() {
  // Read once: flipping the env mid-process must not change behavior of
  // stores that already froze under the other format.
  static const IndexFormat format = [] {
    const char* env = std::getenv("RE2XOLAP_INDEX_FORMAT");
    if (env != nullptr && std::string_view(env) == "compressed") {
      return IndexFormat::kCompressed;
    }
    return IndexFormat::kRaw;
  }();
  return format;
}

TripleStore::TripleStore() : format_(DefaultIndexFormat()) {}

TripleStore::~TripleStore() = default;

void TripleStore::Add(const Term& s, const Term& p, const Term& o) {
  AddEncoded(EncodedTriple{dict_.Intern(s), dict_.Intern(p), dict_.Intern(o)});
}

void TripleStore::AddEncoded(EncodedTriple t) {
  assert(dict_.IsValid(t.s) && dict_.IsValid(t.p) && dict_.IsValid(t.o));
  assert(active_readers_.load(std::memory_order_relaxed) == 0 &&
         "TripleStore::Add() during concurrent reads of a frozen store");
  assert(!live() && "live stores mutate via store::Ingestor, not Add()");
  Materialize();
  spo_.push_back(t);
  frozen_ = false;
}

void TripleStore::Materialize() {
  if (spo_blocks_ != nullptr) {
    // Compressed (owned or borrowed): decode the canonical SPO list; the
    // other permutations are rebuilt by the next Freeze().
    std::vector<EncodedTriple> spo;
    spo_blocks_->DecodeAll(&spo);
    ResetIndexState();
    spo_ = std::move(spo);
    return;
  }
  if (keepalive_ == nullptr) return;
  spo_.assign(spo_view_.begin(), spo_view_.end());
  pos_.assign(pos_view_.begin(), pos_view_.end());
  osp_.assign(osp_view_.begin(), osp_view_.end());
  spo_view_ = {};
  pos_view_ = {};
  osp_view_ = {};
  keepalive_.reset();
}

void TripleStore::ResetIndexState() {
  spo_.clear();
  spo_.shrink_to_fit();
  pos_.clear();
  pos_.shrink_to_fit();
  osp_.clear();
  osp_.shrink_to_fit();
  spo_view_ = {};
  pos_view_ = {};
  osp_view_ = {};
  spo_blocks_.reset();
  pos_blocks_.reset();
  osp_blocks_.reset();
  keepalive_.reset();
}

void TripleStore::AdoptFrozen(std::vector<EncodedTriple> spo,
                              std::vector<EncodedTriple> pos,
                              std::vector<EncodedTriple> osp,
                              std::unordered_map<TermId, PredicateStats> stats,
                              uint64_t epoch) {
  assert(active_readers_.load(std::memory_order_relaxed) == 0 &&
         "TripleStore::AdoptFrozen() during concurrent reads");
  assert(!live() && "TripleStore::AdoptFrozen() on a live store");
  ResetIndexState();
  spo_ = std::move(spo);
  pos_ = std::move(pos);
  osp_ = std::move(osp);
  stats_ = std::move(stats);
  frozen_ = true;
  freeze_epoch_ = epoch;
  UpdateStoreGauges();
}

void TripleStore::AdoptFrozenView(
    std::span<const EncodedTriple> spo, std::span<const EncodedTriple> pos,
    std::span<const EncodedTriple> osp,
    std::unordered_map<TermId, PredicateStats> stats, uint64_t epoch,
    std::shared_ptr<const void> keepalive) {
  assert(active_readers_.load(std::memory_order_relaxed) == 0 &&
         "TripleStore::AdoptFrozenView() during concurrent reads");
  assert(!live() && "TripleStore::AdoptFrozenView() on a live store");
  assert(keepalive != nullptr && "view adoption requires a keepalive");
  ResetIndexState();
  spo_view_ = spo;
  pos_view_ = pos;
  osp_view_ = osp;
  keepalive_ = std::move(keepalive);
  stats_ = std::move(stats);
  frozen_ = true;
  freeze_epoch_ = epoch;
  UpdateStoreGauges();
}

void TripleStore::AdoptFrozenCompressed(
    CompressedPermutation spo, CompressedPermutation pos,
    CompressedPermutation osp,
    std::unordered_map<TermId, PredicateStats> stats, uint64_t epoch,
    std::shared_ptr<const void> keepalive) {
  assert(active_readers_.load(std::memory_order_relaxed) == 0 &&
         "TripleStore::AdoptFrozenCompressed() during concurrent reads");
  assert(!live() && "TripleStore::AdoptFrozenCompressed() on a live store");
  assert(spo.size() == pos.size() && pos.size() == osp.size());
  ResetIndexState();
  spo_blocks_ = std::make_unique<CompressedPermutation>(std::move(spo));
  pos_blocks_ = std::make_unique<CompressedPermutation>(std::move(pos));
  osp_blocks_ = std::make_unique<CompressedPermutation>(std::move(osp));
  keepalive_ = std::move(keepalive);
  stats_ = std::move(stats);
  frozen_ = true;
  freeze_epoch_ = epoch;
  UpdateStoreGauges();
}

void TripleStore::Freeze(util::ThreadPool* pool) {
  assert(active_readers_.load(std::memory_order_relaxed) == 0 &&
         "TripleStore::Freeze() during concurrent reads");
  assert(!live() && "live stores advance epochs via PublishChain()");
  obs::Span span("store.freeze");
  Materialize();
  span.SetAttr("triples", static_cast<uint64_t>(spo_.size()));
  {
    obs::Span child("store.build_indexes");
    BuildIndexes(pool);
  }
  {
    obs::Span child("store.compute_stats");
    ComputeStats(pool);
  }
  if (format_ == IndexFormat::kCompressed) {
    obs::Span child("store.compress_indexes");
    CompressIndexes(pool);
  }
  frozen_ = true;
  ++freeze_epoch_;
  UpdateStoreGauges();
}

void TripleStore::BuildIndexes(util::ThreadPool* pool) {
  if (pool != nullptr && pool->size() > 0) {
    // Each permutation sorts an independent copy of the raw triple list
    // and deduplicates in place (duplicates are adjacent under any total
    // order over (s,p,o)), so the three tasks share nothing.
    pos_ = spo_;
    osp_ = spo_;
    auto sort_one = [this](size_t task) {
      switch (task) {
        case 0:
          std::sort(spo_.begin(), spo_.end(), SpoLess());
          spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
          spo_.shrink_to_fit();
          break;
        case 1:
          std::sort(pos_.begin(), pos_.end(), PosLess());
          pos_.erase(std::unique(pos_.begin(), pos_.end()), pos_.end());
          pos_.shrink_to_fit();
          break;
        default:
          std::sort(osp_.begin(), osp_.end(), OspLess());
          osp_.erase(std::unique(osp_.begin(), osp_.end()), osp_.end());
          osp_.shrink_to_fit();
          break;
      }
    };
    pool->ParallelFor(3, sort_one);
    return;
  }
  std::sort(spo_.begin(), spo_.end(), SpoLess());
  spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
  spo_.shrink_to_fit();
  pos_ = spo_;
  std::sort(pos_.begin(), pos_.end(), PosLess());
  osp_ = spo_;
  std::sort(osp_.begin(), osp_.end(), OspLess());
}

std::unordered_map<TermId, PredicateStats> ComputePredicateStats(
    std::span<const EncodedTriple> pos_sorted, util::ThreadPool* pool) {
  std::unordered_map<TermId, PredicateStats> stats;
  // The input is sorted by (p, o, s): per-predicate runs are contiguous,
  // and within a run objects are grouped, enabling distinct-object
  // counting in one pass. Distinct subjects need a second pass over a
  // scratch copy per predicate run sorted by subject.
  std::vector<std::pair<size_t, size_t>> runs;  // [begin, end) per predicate
  size_t i = 0;
  while (i < pos_sorted.size()) {
    size_t j = i;
    while (j < pos_sorted.size() && pos_sorted[j].p == pos_sorted[i].p) ++j;
    runs.emplace_back(i, j);
    i = j;
  }
  std::vector<PredicateStats> per_run(runs.size());
  auto stat_one = [pos_sorted, &runs, &per_run](size_t r) {
    auto [begin, end] = runs[r];
    PredicateStats st;
    TermId prev_o = kInvalidTermId;
    std::vector<TermId> subjects;
    subjects.reserve(end - begin);
    for (size_t k = begin; k < end; ++k) {
      ++st.triple_count;
      if (pos_sorted[k].o != prev_o) {
        ++st.distinct_objects;
        prev_o = pos_sorted[k].o;
      }
      subjects.push_back(pos_sorted[k].s);
    }
    std::sort(subjects.begin(), subjects.end());
    st.distinct_subjects = static_cast<uint64_t>(
        std::unique(subjects.begin(), subjects.end()) - subjects.begin());
    per_run[r] = st;
  };
  if (pool != nullptr && pool->size() > 0) {
    pool->ParallelFor(runs.size(), stat_one);
  } else {
    for (size_t r = 0; r < runs.size(); ++r) stat_one(r);
  }
  stats.reserve(runs.size());
  for (size_t r = 0; r < runs.size(); ++r) {
    stats.emplace(pos_sorted[runs[r].first].p, per_run[r]);
  }
  return stats;
}

void TripleStore::ComputeStats(util::ThreadPool* pool) {
  stats_ = ComputePredicateStats(pos_, pool);
}

void TripleStore::CompressIndexes(util::ThreadPool* pool) {
  auto spo_cp = std::make_unique<CompressedPermutation>();
  auto pos_cp = std::make_unique<CompressedPermutation>();
  auto osp_cp = std::make_unique<CompressedPermutation>();
  auto compress_one = [&](size_t task) {
    switch (task) {
      case 0:
        *spo_cp = CompressedPermutation::Build(spo_, Perm::kSpo);
        break;
      case 1:
        *pos_cp = CompressedPermutation::Build(pos_, Perm::kPos);
        break;
      default:
        *osp_cp = CompressedPermutation::Build(osp_, Perm::kOsp);
        break;
    }
  };
  if (pool != nullptr && pool->size() > 0) {
    pool->ParallelFor(3, compress_one);
  } else {
    for (size_t t = 0; t < 3; ++t) compress_one(t);
  }
  spo_blocks_ = std::move(spo_cp);
  pos_blocks_ = std::move(pos_cp);
  osp_blocks_ = std::move(osp_cp);
  spo_.clear();
  spo_.shrink_to_fit();
  pos_.clear();
  pos_.shrink_to_fit();
  osp_.clear();
  osp_.shrink_to_fit();
}

IndexRange TripleStore::PermutationRange(Perm perm) const {
  if (live()) return LivePermutationRange(perm);
  return ClassicPermutationRange(perm);
}

IndexRange TripleStore::ClassicPermutationRange(Perm perm) const {
  switch (perm) {
    case Perm::kSpo:
      if (spo_blocks_ != nullptr) {
        return IndexRange::FromBlocks(spo_blocks_.get(), 0,
                                      spo_blocks_->size(), perm);
      }
      return IndexRange::FromSpan(SpoView(), perm);
    case Perm::kPos:
      if (pos_blocks_ != nullptr) {
        return IndexRange::FromBlocks(pos_blocks_.get(), 0,
                                      pos_blocks_->size(), perm);
      }
      return IndexRange::FromSpan(PosView(), perm);
    default:
      if (osp_blocks_ != nullptr) {
        return IndexRange::FromBlocks(osp_blocks_.get(), 0,
                                      osp_blocks_->size(), perm);
      }
      return IndexRange::FromSpan(OspView(), perm);
  }
}

namespace {

// Clips a whole-permutation range down to the triples between the lo/hi
// sentinels (inclusive prefix semantics, exactly the old EqualRange).
IndexRange ClipRange(const IndexRange& perm_range, const EncodedTriple& lo,
                     const EncodedTriple& hi) {
  uint64_t first = perm_range.LowerBound(lo);
  uint64_t last = perm_range.GallopUpperBound(first, hi);
  if (last < first) last = first;
  return perm_range.Slice(first, last);
}

// Per-thread stack of pinned chains. A stack (not a single slot) so
// nested pins — e.g. a query engine pin around a test helper's own pin —
// compose; lookups scan backwards so the innermost pin for a given store
// wins. Entries hold shared_ptrs, so a pinned chain survives any number
// of concurrent publications.
struct PinFrame {
  const TripleStore* store;
  std::shared_ptr<const EpochChain> chain;
};
thread_local std::vector<PinFrame> t_pin_stack;

}  // namespace

TripleStore::ReadPin::ReadPin(const TripleStore& store) {
  if (!store.live()) return;
  t_pin_stack.push_back(
      {&store, store.chain_.load(std::memory_order_acquire)});
  store_ = &store;
}

TripleStore::ReadPin::~ReadPin() {
  if (store_ == nullptr) return;
  assert(!t_pin_stack.empty() && t_pin_stack.back().store == store_ &&
         "ReadPin destruction order violates stack discipline");
  t_pin_stack.pop_back();
}

std::shared_ptr<const EpochChain> TripleStore::PinnedChain() const {
  for (auto it = t_pin_stack.rbegin(); it != t_pin_stack.rend(); ++it) {
    if (it->store == this) return it->chain;
  }
  return chain_.load(std::memory_order_acquire);
}

std::shared_ptr<const EpochChain> TripleStore::live_chain() const {
  if (!live()) return nullptr;
  return PinnedChain();
}

uint64_t TripleStore::freeze_epoch() const {
  if (live()) return PinnedChain()->epoch;
  return freeze_epoch_;
}

void TripleStore::EnterLive() {
  assert(frozen_ && "EnterLive() requires a frozen store");
  assert(!live() && "EnterLive() called twice");
  assert(active_readers_.load(std::memory_order_relaxed) == 0 &&
         "TripleStore::EnterLive() during concurrent reads");
  dict_.EnterLive();
  auto chain = std::make_shared<EpochChain>();
  chain->epoch = freeze_epoch_;
  chain->visible_triples = ClassicSize();
  chain->stats = stats_;
  UpdateChainGauges(*chain);
  chain_.store(std::shared_ptr<const EpochChain>(std::move(chain)),
               std::memory_order_release);
  live_.store(true, std::memory_order_release);
}

void TripleStore::PublishChain(std::shared_ptr<const EpochChain> chain) {
  assert(live() && "PublishChain() requires EnterLive()");
  assert(chain != nullptr);
  UpdateChainGauges(*chain);
  chain_.store(std::move(chain), std::memory_order_release);
}

void TripleStore::RestoreChain(
    std::vector<std::shared_ptr<const DeltaLayer>> layers, uint64_t epoch) {
  assert(live() && "RestoreChain() requires EnterLive()");
  auto chain = std::make_shared<EpochChain>();
  chain->layers = std::move(layers);
  chain->epoch = epoch;
  chain->stats = stats_;
  uint64_t visible = ClassicSize();
  for (const std::shared_ptr<const DeltaLayer>& layer : chain->layers) {
    chain->delta_adds += layer->add_count();
    chain->delta_dels += layer->del_count();
    visible += layer->add_count();
    visible -= layer->del_count();
    ApplyLayerToStats(*layer, &chain->stats);
  }
  chain->visible_triples = visible;
  PublishChain(std::move(chain));
}

uint64_t TripleStore::chain_depth() const {
  return live() ? PinnedChain()->depth() : 0;
}

TripleStore::LiveInfo TripleStore::live_info() const {
  LiveInfo info;
  if (!live()) return info;
  std::shared_ptr<const EpochChain> chain = PinnedChain();
  info.live = true;
  info.epoch = chain->epoch;
  info.chain_depth = chain->depth();
  info.delta_adds = chain->delta_adds;
  info.delta_dels = chain->delta_dels;
  info.visible_triples = chain->visible_triples;
  info.compacted_base = chain->base != nullptr;
  return info;
}

void TripleStore::UpdateChainGauges(const EpochChain& chain) const {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetGauge("store.epoch").Set(static_cast<double>(chain.epoch));
  reg.GetGauge("store.delta.layers").Set(static_cast<double>(chain.depth()));
  reg.GetGauge("store.delta.triples")
      .Set(static_cast<double>(chain.delta_adds));
  reg.GetGauge("store.delta.tombstones")
      .Set(static_cast<double>(chain.delta_dels));
  reg.GetGauge("store.triples")
      .Set(static_cast<double>(chain.visible_triples));
}

IndexRange TripleStore::LivePermutationRange(Perm perm) const {
  return ChainPermutationRange(PinnedChain(), perm);
}

IndexRange TripleStore::ChainPermutationRange(
    std::shared_ptr<const EpochChain> chain, Perm perm) const {
  const LiveBase* base = chain->base.get();
  if (base == nullptr && chain->layers.empty()) {
    // Pristine chain: the store's own frozen arrays ARE the view, and
    // they are store-owned, so no keepalive is needed.
    return ClassicPermutationRange(perm);
  }
  std::vector<IndexRange> adds;
  std::vector<IndexRange> dels;
  adds.reserve(chain->layers.size() + 1);
  IndexRange base_range;
  if (base != nullptr) {
    const std::vector<EncodedTriple>& v = perm == Perm::kSpo   ? base->spo
                                          : perm == Perm::kPos ? base->pos
                                                               : base->osp;
    base_range = IndexRange::FromSpan(v, perm);
  } else {
    base_range = ClassicPermutationRange(perm);
  }
  if (!base_range.empty()) adds.push_back(base_range);
  for (const std::shared_ptr<const DeltaLayer>& layer : chain->layers) {
    if (!layer->adds(perm).empty()) {
      adds.push_back(IndexRange::FromSpan(layer->adds(perm), perm));
    }
    if (!layer->dels(perm).empty()) {
      dels.push_back(IndexRange::FromSpan(layer->dels(perm), perm));
    }
  }
  if (adds.empty()) return IndexRange();
  // Even a single-source view goes through MergedRun when it aliases
  // chain-owned memory (a compacted base or a layer): the run's
  // keepalive is what lets the range outlive a concurrent publication.
  auto run = std::make_shared<const MergedRun>(std::move(adds),
                                               std::move(dels), perm, chain);
  const uint64_t n = run->size();
  return IndexRange::FromMerged(std::move(run), 0, n, perm);
}

IndexRange TripleStore::Match(const TriplePattern& q) const {
  assert(frozen_ && "TripleStore::Freeze() must be called before Match()");
  ReadGuard guard(this);
  const bool bs = q.s != kInvalidTermId;
  const bool bp = q.p != kInvalidTermId;
  const bool bo = q.o != kInvalidTermId;

  if (bs) {
    // SPO serves s / s,p / s,p,o; OSP serves s,o.
    if (!bp && bo) {
      return ClipRange(PermutationRange(Perm::kOsp),
                       EncodedTriple{q.s, kInvalidTermId, q.o},
                       EncodedTriple{q.s, kMaxTermId, q.o});
    }
    EncodedTriple lo{q.s, bp ? q.p : kInvalidTermId, bo ? q.o : kInvalidTermId};
    EncodedTriple hi{q.s, bp ? q.p : kMaxTermId, bo ? q.o : kMaxTermId};
    return ClipRange(PermutationRange(Perm::kSpo), lo, hi);
  }
  if (bp) {
    // POS serves p / p,o.
    EncodedTriple lo{kInvalidTermId, q.p, bo ? q.o : kInvalidTermId};
    EncodedTriple hi{kMaxTermId, q.p, bo ? q.o : kMaxTermId};
    return ClipRange(PermutationRange(Perm::kPos), lo, hi);
  }
  if (bo) {
    // OSP serves o.
    return ClipRange(PermutationRange(Perm::kOsp),
                     EncodedTriple{kInvalidTermId, kInvalidTermId, q.o},
                     EncodedTriple{kMaxTermId, kMaxTermId, q.o});
  }
  return PermutationRange(Perm::kSpo);
}

uint64_t TripleStore::CountMatches(const TriplePattern& pattern) const {
  return Match(pattern).size();
}

std::vector<TermId> TripleStore::PredicatesOfSubject(TermId s) const {
  std::vector<TermId> out;
  TermId prev = kInvalidTermId;
  for (const EncodedTriple& t :
       Match(TriplePattern{s, kInvalidTermId, kInvalidTermId})) {
    if (t.p != prev) {
      out.push_back(t.p);
      prev = t.p;
    }
  }
  // SPO order groups by predicate within a subject, so `out` is already
  // deduplicated.
  return out;
}

std::vector<TermId> TripleStore::PredicatesOfObject(TermId o) const {
  std::vector<TermId> out;
  for (const EncodedTriple& t :
       Match(TriplePattern{kInvalidTermId, kInvalidTermId, o})) {
    out.push_back(t.p);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<TermId> TripleStore::AllPredicates() const {
  std::shared_ptr<const EpochChain> chain;
  const std::unordered_map<TermId, PredicateStats>* stats = &stats_;
  if (live()) {
    chain = PinnedChain();
    stats = &chain->stats;
  }
  std::vector<TermId> out;
  out.reserve(stats->size());
  for (const auto& [p, st] : *stats) out.push_back(p);
  std::sort(out.begin(), out.end());
  return out;
}

PredicateStats TripleStore::predicate_stats(TermId p) const {
  if (live()) {
    std::shared_ptr<const EpochChain> chain = PinnedChain();
    auto it = chain->stats.find(p);
    return it == chain->stats.end() ? PredicateStats{} : it->second;
  }
  auto it = stats_.find(p);
  return it == stats_.end() ? PredicateStats{} : it->second;
}

uint64_t TripleStore::size() const {
  if (live()) return PinnedChain()->visible_triples;
  return ClassicSize();
}

uint64_t TripleStore::ClassicSize() const {
  if (spo_blocks_ != nullptr) return spo_blocks_->size();
  return SpoView().size();
}

StoreMemory TripleStore::MemoryBreakdown() const {
  StoreMemory m;
  m.heap_bytes = dict_.MemoryUsage() +
                 (spo_.capacity() + pos_.capacity() + osp_.capacity()) *
                     sizeof(EncodedTriple) +
                 stats_.size() * (sizeof(TermId) + sizeof(PredicateStats) +
                                  2 * sizeof(void*));
  for (const CompressedPermutation* cp :
       {spo_blocks_.get(), pos_blocks_.get(), osp_blocks_.get()}) {
    if (cp == nullptr) continue;
    m.heap_bytes += cp->heap_bytes();
    if (cp->borrowed()) m.mapped_bytes += cp->byte_size();
  }
  if (keepalive_ != nullptr && spo_blocks_ == nullptr) {
    // Raw borrowed views: the image bytes the three spans alias.
    m.mapped_bytes +=
        (spo_view_.size() + pos_view_.size() + osp_view_.size()) *
        sizeof(EncodedTriple);
  }
  if (live()) {
    std::shared_ptr<const EpochChain> chain = PinnedChain();
    if (chain->base != nullptr) m.heap_bytes += chain->base->MemoryUsage();
    for (const std::shared_ptr<const DeltaLayer>& layer : chain->layers) {
      m.heap_bytes += layer->MemoryUsage();
    }
  }
  return m;
}

void TripleStore::UpdateStoreGauges() const {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetGauge("store.triples").Set(static_cast<double>(size()));
  StoreMemory m = MemoryBreakdown();
  reg.GetGauge("store.bytes.heap").Set(static_cast<double>(m.heap_bytes));
  reg.GetGauge("store.bytes.mapped").Set(static_cast<double>(m.mapped_bytes));
  auto index_bytes = [this](Perm perm) -> double {
    const CompressedPermutation* cp = perm == Perm::kSpo ? spo_blocks_.get()
                                     : perm == Perm::kPos ? pos_blocks_.get()
                                                          : osp_blocks_.get();
    if (cp != nullptr) return static_cast<double>(cp->byte_size());
    std::span<const EncodedTriple> view = perm == Perm::kSpo   ? SpoView()
                                          : perm == Perm::kPos ? PosView()
                                                               : OspView();
    return static_cast<double>(view.size() * sizeof(EncodedTriple));
  };
  reg.GetGauge("store.index.spo.bytes").Set(index_bytes(Perm::kSpo));
  reg.GetGauge("store.index.pos.bytes").Set(index_bytes(Perm::kPos));
  reg.GetGauge("store.index.osp.bytes").Set(index_bytes(Perm::kOsp));
}

}  // namespace re2xolap::rdf
