#ifndef RE2XOLAP_RDF_TEXT_INDEX_H_
#define RE2XOLAP_RDF_TEXT_INDEX_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/triple_store.h"
#include "util/exec_guard.h"

namespace re2xolap::rdf {

/// Inverted keyword index over the string literals of a TripleStore.
/// This plays the role of the triplestore full-text index the paper relies
/// on for resolving user keywords to IRIs (Algorithm 1, line 3 — "the
/// triplestore employs a traditional full-text index").
///
/// Tokens are lowercase alphanumeric words; a query matches a literal when
/// every query token appears among the literal's tokens (AND semantics).
/// Exact (case-insensitive whole-string) lookup is also provided and is
/// preferred by the matcher.
///
/// Concurrent-read contract: the index is immutable after construction —
/// ExactMatch()/KeywordMatch()/Match() are const lookups over the postings
/// maps with no lazy caches, so they are safe from any number of threads
/// (the parallel ReOLAP matcher relies on this).
class TextIndex {
 public:
  /// Builds the index over every string literal currently interned in
  /// `store`'s dictionary. The store may keep growing afterwards, but new
  /// literals are not visible to this index (rebuild to refresh).
  explicit TextIndex(const TripleStore& store);

  TextIndex(const TextIndex&) = delete;
  TextIndex& operator=(const TextIndex&) = delete;

  /// Restores an index image captured by the snapshot subsystem
  /// (src/storage/) without re-tokenizing the store: `postings` and
  /// `exact` must be exactly what postings_map()/exact_map() of the saved
  /// index contained (posting lists sorted by id).
  static std::unique_ptr<TextIndex> FromParts(
      std::unordered_map<std::string, std::vector<TermId>> postings,
      std::unordered_map<std::string, std::vector<TermId>> exact,
      size_t indexed_literals);

  /// Raw postings (token -> sorted literal ids) and exact-match (lowercase
  /// full text -> sorted literal ids) maps, for snapshot serialization.
  const std::unordered_map<std::string, std::vector<TermId>>& postings_map()
      const {
    return postings_;
  }
  const std::unordered_map<std::string, std::vector<TermId>>& exact_map()
      const {
    return exact_;
  }

  /// Literal term ids whose full lowercase text equals `text` (lowercased).
  std::vector<TermId> ExactMatch(std::string_view text) const;

  /// Literal term ids containing all word tokens of `query`.
  /// Results are sorted by id; at most `limit` results are returned
  /// (0 = unlimited). When a `guard` is supplied, it is polled between
  /// posting-list intersections: on expiry the intersection stops early
  /// and the partial (superset) candidate list accumulated so far is
  /// returned, truncated to `limit` — a degraded-but-usable answer rather
  /// than an error (callers that need the distinction should check the
  /// guard themselves afterwards).
  std::vector<TermId> KeywordMatch(std::string_view query, size_t limit = 0,
                                   const util::ExecGuard* guard = nullptr)
      const;

  /// Exact match if any, otherwise keyword match. This is the behavior
  /// ReOLAP's MATCHES() uses.
  std::vector<TermId> Match(std::string_view query, size_t limit = 0,
                            const util::ExecGuard* guard = nullptr) const;

  size_t indexed_literal_count() const { return indexed_literals_; }
  size_t distinct_token_count() const { return postings_.size(); }

  /// Approximate heap footprint in bytes.
  size_t MemoryUsage() const;

 private:
  TextIndex() = default;  // FromParts

  std::unordered_map<std::string, std::vector<TermId>> postings_;
  std::unordered_map<std::string, std::vector<TermId>> exact_;
  size_t indexed_literals_ = 0;
};

}  // namespace re2xolap::rdf

#endif  // RE2XOLAP_RDF_TEXT_INDEX_H_
