#ifndef RE2XOLAP_RDF_TRIPLE_H_
#define RE2XOLAP_RDF_TRIPLE_H_

#include <cstdint>

#include "rdf/dictionary.h"

namespace re2xolap::rdf {

/// A dictionary-encoded ⟨s p o⟩ triple.
struct EncodedTriple {
  TermId s = kInvalidTermId;
  TermId p = kInvalidTermId;
  TermId o = kInvalidTermId;

  friend bool operator==(const EncodedTriple& a, const EncodedTriple& b) {
    return a.s == b.s && a.p == b.p && a.o == b.o;
  }
};

/// A triple match pattern: kInvalidTermId in a position means "any".
struct TriplePattern {
  TermId s = kInvalidTermId;
  TermId p = kInvalidTermId;
  TermId o = kInvalidTermId;

  bool Matches(const EncodedTriple& t) const {
    return (s == kInvalidTermId || s == t.s) &&
           (p == kInvalidTermId || p == t.p) &&
           (o == kInvalidTermId || o == t.o);
  }
};

}  // namespace re2xolap::rdf

#endif  // RE2XOLAP_RDF_TRIPLE_H_
