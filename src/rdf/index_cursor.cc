#include "rdf/index_cursor.h"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.h"
#include "rdf/compressed_index.h"
#include "rdf/delta_layer.h"

namespace re2xolap::rdf {

namespace {

// Shared fallback scratch for callers that do point lookups without their
// own scratch (IndexRange::operator[], cold paths). Thread-local, so the
// concurrent-read contract of TripleStore holds for compressed stores too.
thread_local IndexBlockScratch t_point_scratch;

obs::Counter& SkipSeeksCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("store.index.skip_seeks");
  return c;
}

obs::Counter& SkipStepsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("store.index.skip_steps");
  return c;
}

// Thread-local decoded-block pool: a small set-associative cache of
// decoded blocks keyed by (generation, block). Probe-heavy joins hit the
// same blocks over and over in non-sequential order — a single-block
// scratch thrashes, re-running the vbyte decode once per probe (a
// ~1024-triple decode to answer a 1-triple lookup). The pool bounds that
// to one decode per resident block. Entries are shared_ptrs; a scratch
// pins the block it is reading, so eviction never invalidates a span a
// caller still holds. Per-thread and lock-free, like t_point_scratch.
//
// Capacity: RE2XOLAP_BLOCK_CACHE_SLOTS (0 disables the pool entirely;
// default 2048 slots = at most ~24 MiB of decoded triples per thread,
// and only when that many distinct blocks are actually probed).
class BlockPool {
 public:
  static constexpr uint32_t kWays = 4;

  static BlockPool& Get() {
    thread_local BlockPool pool;
    return pool;
  }

  std::shared_ptr<const std::vector<EncodedTriple>> Lookup(uint64_t gen,
                                                           uint64_t block) {
    if (sets_ == 0) return nullptr;
    Entry* set = &slots_[SetOf(gen, block) * kWays];
    for (uint32_t w = 0; w < kWays; ++w) {
      if (set[w].generation == gen && set[w].block == block) {
        return set[w].data;
      }
    }
    return nullptr;
  }

  void Insert(uint64_t gen, uint64_t block,
              std::shared_ptr<const std::vector<EncodedTriple>> data) {
    if (sets_ == 0) return;
    const uint64_t s = SetOf(gen, block);
    Entry* set = &slots_[s * kWays];
    uint32_t victim = 0;
    for (uint32_t w = 0; w < kWays; ++w) {
      if (set[w].data == nullptr) {
        victim = w;
        break;
      }
      if (w == kWays - 1) victim = ticks_[s]++ % kWays;
    }
    set[victim] = {gen, block, std::move(data)};
  }

 private:
  struct Entry {
    uint64_t generation = 0;
    uint64_t block = 0;
    std::shared_ptr<const std::vector<EncodedTriple>> data;
  };

  BlockPool() {
    uint64_t slots = 2048;
    if (const char* env = std::getenv("RE2XOLAP_BLOCK_CACHE_SLOTS")) {
      slots = std::strtoull(env, nullptr, 10);
    }
    // Round down to a power-of-two set count; 0 disables.
    sets_ = slots / kWays;
    while (sets_ & (sets_ - 1)) sets_ &= sets_ - 1;
    slots_.resize(sets_ * kWays);
    ticks_.assign(sets_, 0);
  }

  uint64_t SetOf(uint64_t gen, uint64_t block) const {
    // Mix so consecutive blocks of one permutation spread across sets.
    uint64_t h = gen * 0x9e3779b97f4a7c15ull + block;
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 32;
    return h & (sets_ - 1);
  }

  uint64_t sets_ = 0;
  std::vector<Entry> slots_;
  std::vector<uint32_t> ticks_;
};

// Decoded view of block b: served from the scratch pin when it already
// holds the block, else from the thread-local pool, else decoded (and
// pooled). The returned span aliases the pinned vector, so it stays valid
// until the scratch is repointed — even across pool eviction.
std::span<const EncodedTriple> DecodedBlock(const CompressedPermutation& cp,
                                            uint64_t b,
                                            IndexBlockScratch* scratch) {
  if (scratch == nullptr) scratch = &t_point_scratch;
  if (scratch->generation == cp.generation() && scratch->block == b &&
      scratch->pinned != nullptr) {
    return *scratch->pinned;
  }
  BlockPool& pool = BlockPool::Get();
  std::shared_ptr<const std::vector<EncodedTriple>> data =
      pool.Lookup(cp.generation(), b);
  if (data == nullptr) {
    auto decoded = std::make_shared<std::vector<EncodedTriple>>();
    cp.DecodeBlock(b, decoded.get());
    data = std::move(decoded);
    pool.Insert(cp.generation(), b, data);
  }
  scratch->generation = cp.generation();
  scratch->block = b;
  scratch->pinned = std::move(data);
  return *scratch->pinned;
}

// Galloping partition point over a raw span: first position in [from, n)
// where `before` flips to false; n when it never does. `before` must be
// monotone (true prefix, false suffix) — which PermLess against a fixed
// probe is on a sorted permutation.
template <typename Before>
uint64_t GallopSpan(std::span<const EncodedTriple> s, uint64_t from,
                    Before before) {
  const uint64_t n = s.size();
  if (from >= n) return n;
  if (!before(s[from])) return from;
  uint64_t bound = 1;
  while (from + bound < n && before(s[from + bound])) bound <<= 1;
  const uint64_t lo = from + bound / 2;  // before(s[lo]) holds
  const uint64_t hi = std::min(from + bound, n);
  return static_cast<uint64_t>(
      std::partition_point(s.begin() + lo, s.begin() + hi, before) -
      s.begin());
}

}  // namespace

std::span<const EncodedTriple> IndexRange::Fetch(
    uint64_t pos, uint64_t limit, IndexBlockScratch* scratch) const {
  if (pos >= size()) return {};
  uint64_t n = size() - pos;
  if (limit != 0 && limit < n) n = limit;
  if (merged()) return FetchMerged(pos, n, scratch);
  if (!compressed()) {
    return {data_ + begin_ + pos, static_cast<size_t>(n)};
  }
  const uint64_t abs = begin_ + pos;
  const uint64_t b = blocks_->BlockOf(abs);
  std::span<const EncodedTriple> block = DecodedBlock(*blocks_, b, scratch);
  const uint64_t in_block = abs - blocks_->BlockFirstPos(b);
  const uint64_t take = std::min<uint64_t>(n, block.size() - in_block);
  return block.subspan(in_block, take);
}

// Merged window materialization: serve from the scratch's window when it
// covers `pos`, continue the K-way merge when `pos` is the window's end,
// and otherwise rank-seek to `pos` cold. `limit` is already clipped to
// the range's remainder by Fetch.
std::span<const EncodedTriple> IndexRange::FetchMerged(
    uint64_t pos, uint64_t limit, IndexBlockScratch* scratch) const {
  // Window size: enough that sequential scans amortize the per-window
  // source setup, small enough to stay cache-resident like the
  // compressed decode blocks.
  constexpr uint64_t kMergedWindow = 1024;
  if (scratch == nullptr) scratch = &t_point_scratch;
  const MergedRun& run = *merged_;
  const uint64_t abs = begin_ + pos;
  const bool same_run = scratch->merged_id == run.id();
  if (same_run && abs >= scratch->merged_win_start &&
      abs < scratch->merged_win_start + scratch->merged_buf.size()) {
    const uint64_t in_win = abs - scratch->merged_win_start;
    const uint64_t take =
        std::min<uint64_t>(limit, scratch->merged_buf.size() - in_win);
    return {scratch->merged_buf.data() + in_win, static_cast<size_t>(take)};
  }
  if (!same_run || scratch->merged_cur.merged_pos != abs) {
    run.Seek(abs, &scratch->merged_cur);
    scratch->merged_id = run.id();
  }
  scratch->merged_buf.clear();
  scratch->merged_win_start = abs;
  const uint64_t want =
      std::max<uint64_t>(std::min<uint64_t>(run.size() - abs, kMergedWindow),
                         std::min<uint64_t>(limit, kMergedWindow));
  run.Advance(&scratch->merged_cur, want, &scratch->merged_buf);
  const uint64_t take =
      std::min<uint64_t>(limit, scratch->merged_buf.size());
  return {scratch->merged_buf.data(), static_cast<size_t>(take)};
}

EncodedTriple IndexRange::operator[](uint64_t i) const {
  assert(i < size());
  if (merged()) return FetchMerged(i, 1, nullptr)[0];
  if (!compressed()) return data_[begin_ + i];
  const uint64_t abs = begin_ + i;
  const uint64_t b = blocks_->BlockOf(abs);
  std::span<const EncodedTriple> block = DecodedBlock(*blocks_, b, nullptr);
  return block[abs - blocks_->BlockFirstPos(b)];
}

namespace {

// Shared bound computation: first relative position in [from, size) where
// `before` flips to false. Compressed ranges gallop over the skip table's
// block-first keys and decode exactly one block for the final in-block
// binary search.
template <typename Before>
uint64_t RangeGallop(const CompressedPermutation* blocks,
                     const EncodedTriple* data, uint64_t begin, uint64_t end,
                     uint64_t from, Before before,
                     IndexBlockScratch* scratch) {
  const uint64_t range_size = end - begin;
  if (from >= range_size) return range_size;
  if (blocks == nullptr) {
    return GallopSpan(
        std::span<const EncodedTriple>(data + begin,
                                       static_cast<size_t>(range_size)),
        from, before);
  }
  std::span<const BlockMeta> skip = blocks->skip();
  const uint64_t nblocks = skip.size();
  const uint64_t abs_from = begin + from;
  const uint64_t b0 = blocks->BlockOf(abs_from);
  // Fast path: the flip happens inside the starting block (the next
  // block's first key is already past the probe). Merge-join probes are
  // sorted, so nearly every probe takes this branch — one in-block binary
  // search on the block the scratch already pins, no skip-table walk.
  if (b0 + 1 >= nblocks || !before(skip[b0 + 1].first())) {
    std::span<const EncodedTriple> block = DecodedBlock(*blocks, b0, scratch);
    uint64_t start = abs_from - blocks->BlockFirstPos(b0);
    if (start > block.size()) start = block.size();
    // Gallop, don't binary-search: adjacent sorted probes resolve in one
    // or two comparisons, matching the raw span's cost profile.
    uint64_t abs = blocks->BlockFirstPos(b0) + GallopSpan(block, start, before);
    abs = std::clamp(abs, abs_from, end);
    return abs - begin;
  }
  SkipSeeksCounter().Inc();
  uint64_t key_probes = 0;
  auto before_key = [&](const BlockMeta& m) {
    ++key_probes;
    return before(m.first());
  };
  // Gallop the block index forward from b0, then binary-search the block
  // window; `j` is the first block at or after b0 whose first key is not
  // before the probe.
  uint64_t bound = 1;
  while (b0 + bound < nblocks && before_key(skip[b0 + bound])) bound <<= 1;
  const uint64_t lo_b = b0 + bound / 2;
  const uint64_t hi_b = std::min(b0 + bound, nblocks);
  const uint64_t j = static_cast<uint64_t>(
      std::partition_point(skip.begin() + lo_b, skip.begin() + hi_b,
                           before_key) -
      skip.begin());
  SkipStepsCounter().Inc(key_probes);
  // The flip happens inside block j-1 (or at block j's first key); blocks
  // before it are entirely `before`. Decode that one block and finish.
  const uint64_t b = j > b0 ? j - 1 : b0;
  std::span<const EncodedTriple> block = DecodedBlock(*blocks, b, scratch);
  uint64_t start = b == b0 ? abs_from - blocks->BlockFirstPos(b0) : 0;
  if (start > block.size()) start = block.size();
  uint64_t abs =
      blocks->BlockFirstPos(b) +
      static_cast<uint64_t>(
          std::partition_point(block.begin() + start, block.end(), before) -
          block.begin());
  abs = std::clamp(abs, abs_from, end);
  return abs - begin;
}

}  // namespace

uint64_t IndexRange::LowerBound(const EncodedTriple& probe,
                                IndexBlockScratch* scratch) const {
  return GallopLowerBound(0, probe, scratch);
}

uint64_t IndexRange::UpperBound(const EncodedTriple& probe,
                                IndexBlockScratch* scratch) const {
  return GallopUpperBound(0, probe, scratch);
}

uint64_t IndexRange::GallopLowerBound(uint64_t from, const EncodedTriple& probe,
                                      IndexBlockScratch* scratch) const {
  if (merged()) {
    // Merged bounds are sums of per-source bounds (exact under the
    // delta-layer invariants); `from` only clamps, like the compressed
    // path's absolute-position clamp.
    const uint64_t abs =
        std::clamp(merged_->Bound(probe, /*upper=*/false), begin_ + from, end_);
    return abs - begin_;
  }
  const Perm perm = perm_;
  return RangeGallop(
      blocks_, data_, begin_, end_, from,
      [&probe, perm](const EncodedTriple& t) { return PermLess(perm, t, probe); },
      scratch);
}

uint64_t IndexRange::GallopUpperBound(uint64_t from, const EncodedTriple& probe,
                                      IndexBlockScratch* scratch) const {
  if (merged()) {
    const uint64_t abs =
        std::clamp(merged_->Bound(probe, /*upper=*/true), begin_ + from, end_);
    return abs - begin_;
  }
  const Perm perm = perm_;
  return RangeGallop(
      blocks_, data_, begin_, end_, from,
      [&probe, perm](const EncodedTriple& t) {
        return !PermLess(perm, probe, t);
      },
      scratch);
}

IndexRange::Iterator::Iterator(const IndexRange* r, uint64_t pos)
    : range_(r), pos_(pos) {
  Refill();
}

void IndexRange::Iterator::Refill() {
  chunk_start_ = pos_;
  if (pos_ >= range_->size()) {
    chunk_ = {};
    return;
  }
  if ((range_->compressed() || range_->merged()) && scratch_ == nullptr) {
    scratch_ = std::make_shared<IndexBlockScratch>();
  }
  chunk_ = range_->Fetch(pos_, 0, scratch_.get());
}

}  // namespace re2xolap::rdf
