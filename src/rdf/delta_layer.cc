#include "rdf/delta_layer.h"

#include <algorithm>
#include <cassert>

namespace re2xolap::rdf {

namespace {

uint64_t NextMergedRunId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

size_t TripleBytes(const std::vector<EncodedTriple>& v) {
  return v.capacity() * sizeof(EncodedTriple);
}

}  // namespace

void DeltaLayer::RebuildPredicateDelta() {
  predicate_delta.clear();
  for (const EncodedTriple& t : add_pos) ++predicate_delta[t.p];
  for (const EncodedTriple& t : del_pos) --predicate_delta[t.p];
  // Drop exact cancellations so the map mirrors what the builder wrote.
  for (auto it = predicate_delta.begin(); it != predicate_delta.end();) {
    it = it->second == 0 ? predicate_delta.erase(it) : std::next(it);
  }
}

size_t DeltaLayer::MemoryUsage() const {
  return TripleBytes(add_spo) + TripleBytes(add_pos) + TripleBytes(add_osp) +
         TripleBytes(del_spo) + TripleBytes(del_pos) + TripleBytes(del_osp) +
         predicate_delta.size() * (sizeof(TermId) + sizeof(int64_t) +
                                   2 * sizeof(void*));
}

size_t LiveBase::MemoryUsage() const {
  return TripleBytes(spo) + TripleBytes(pos) + TripleBytes(osp) +
         stats.size() *
             (sizeof(TermId) + sizeof(PredicateStats) + 2 * sizeof(void*));
}

void ApplyLayerToStats(const DeltaLayer& layer,
                       std::unordered_map<TermId, PredicateStats>* stats) {
  for (const auto& [p, delta] : layer.predicate_delta) {
    auto it = stats->find(p);
    if (it == stats->end()) {
      if (delta <= 0) continue;  // deleting an unknown predicate: no-op
      PredicateStats st;
      st.triple_count = static_cast<uint64_t>(delta);
      // Distinct counts for a predicate born in a delta layer: use the
      // triple count as an upper bound until compaction recomputes them.
      st.distinct_subjects = st.triple_count;
      st.distinct_objects = st.triple_count;
      stats->emplace(p, st);
      continue;
    }
    const int64_t count = static_cast<int64_t>(it->second.triple_count) + delta;
    if (count <= 0) {
      stats->erase(it);
      continue;
    }
    it->second.triple_count = static_cast<uint64_t>(count);
    it->second.distinct_subjects =
        std::min<uint64_t>(it->second.distinct_subjects, count);
    it->second.distinct_objects =
        std::min<uint64_t>(it->second.distinct_objects, count);
  }
}

MergedRun::MergedRun(std::vector<IndexRange> adds, std::vector<IndexRange> dels,
                     Perm perm, std::shared_ptr<const void> keepalive)
    : adds_(std::move(adds)),
      dels_(std::move(dels)),
      perm_(perm),
      id_(NextMergedRunId()),
      keepalive_(std::move(keepalive)) {
  assert(!adds_.empty());
  uint64_t add_total = 0;
  uint64_t del_total = 0;
  for (const IndexRange& r : adds_) add_total += r.size();
  for (const IndexRange& r : dels_) del_total += r.size();
  assert(del_total <= add_total);
  size_ = add_total - del_total;
}

uint64_t MergedRun::Bound(const EncodedTriple& probe, bool upper) const {
  // Every tombstone key equals some insert/base key (it kills a visible
  // triple), so the subtraction never undercounts a prefix.
  uint64_t bound = 0;
  for (const IndexRange& r : adds_) {
    bound += upper ? r.UpperBound(probe) : r.LowerBound(probe);
  }
  for (const IndexRange& r : dels_) {
    bound -= upper ? r.UpperBound(probe) : r.LowerBound(probe);
  }
  return bound;
}

uint64_t MergedRun::RankLess(const EncodedTriple& probe,
                             std::vector<uint64_t>* bounds) const {
  bounds->clear();
  bounds->reserve(source_count());
  uint64_t rank = 0;
  for (const IndexRange& r : adds_) {
    const uint64_t b = r.LowerBound(probe);
    bounds->push_back(b);
    rank += b;
  }
  for (const IndexRange& r : dels_) {
    const uint64_t b = r.LowerBound(probe);
    bounds->push_back(b);
    rank -= b;
  }
  return rank;
}

void MergedRun::Seek(uint64_t pos, MergedCursorState* cur) const {
  cur->src.assign(source_count(), 0);
  cur->merged_pos = 0;
  if (pos == 0) return;
  if (pos >= size_) {
    size_t i = 0;
    for (const IndexRange& r : adds_) cur->src[i++] = r.size();
    for (const IndexRange& r : dels_) cur->src[i++] = r.size();
    cur->merged_pos = size_;
    return;
  }
  // Rank bisection over the largest add source: find the last of its
  // keys whose merged rank is <= pos, align every source at that key,
  // then merge forward over the residual gap (bounded by the smaller
  // sources' density between two driver keys).
  size_t driver = 0;
  for (size_t i = 1; i < adds_.size(); ++i) {
    if (adds_[i].size() > adds_[driver].size()) driver = i;
  }
  std::vector<uint64_t> bounds;
  uint64_t lo = 0;
  uint64_t hi = adds_[driver].size();
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    const EncodedTriple probe = adds_[driver][mid];
    if (RankLess(probe, &bounds) <= pos) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo > 0) {
    const EncodedTriple aligned = adds_[driver][lo - 1];
    cur->merged_pos = RankLess(aligned, &bounds);
    std::copy(bounds.begin(), bounds.end(), cur->src.begin());
  }
  assert(cur->merged_pos <= pos);
  Advance(cur, pos - cur->merged_pos, nullptr);
}

uint64_t MergedRun::Advance(MergedCursorState* cur, uint64_t limit,
                            std::vector<EncodedTriple>* out) const {
  if (limit == 0) return 0;
  // Chunked per-source heads: Fetch hands back spans block-at-a-time, so
  // the merge loop touches the decode machinery once per block, not once
  // per triple.
  struct Src {
    const IndexRange* r = nullptr;
    uint64_t pos = 0;
    std::span<const EncodedTriple> chunk;
    uint64_t chunk_start = 0;
    IndexBlockScratch scratch;

    bool exhausted() const { return pos >= r->size(); }
    const EncodedTriple& Head() {
      if (pos < chunk_start || pos >= chunk_start + chunk.size()) {
        chunk = r->Fetch(pos, 0, &scratch);
        chunk_start = pos;
      }
      return chunk[pos - chunk_start];
    }
  };
  const size_t na = adds_.size();
  const size_t nd = dels_.size();
  std::vector<Src> src(na + nd);
  for (size_t i = 0; i < na; ++i) {
    src[i].r = &adds_[i];
    src[i].pos = cur->src[i];
  }
  for (size_t j = 0; j < nd; ++j) {
    src[na + j].r = &dels_[j];
    src[na + j].pos = cur->src[na + j];
  }

  uint64_t emitted = 0;
  while (emitted < limit) {
    // Smallest key among the add heads; ties across sources are the
    // reinsertion case (base copy + layer copy with tombstones between).
    int min_i = -1;
    for (size_t i = 0; i < na; ++i) {
      if (src[i].exhausted()) continue;
      if (min_i < 0 || PermLess(perm_, src[i].Head(), src[min_i].Head())) {
        min_i = static_cast<int>(i);
      }
    }
    if (min_i < 0) break;
    const EncodedTriple key = src[min_i].Head();
    int net = 0;
    for (size_t i = 0; i < na; ++i) {
      if (src[i].exhausted()) continue;
      if (!PermLess(perm_, key, src[i].Head())) {
        // Head == key (heads are never < key by min selection).
        ++src[i].pos;
        ++net;
      }
    }
    for (size_t j = na; j < na + nd; ++j) {
      // Tombstone keys always exist among the adds, so heads never trail
      // the merge frontier; the while is defensive against a violated
      // ingest invariant.
      while (!src[j].exhausted() && PermLess(perm_, src[j].Head(), key)) {
        ++src[j].pos;
      }
      if (!src[j].exhausted() && !PermLess(perm_, key, src[j].Head())) {
        ++src[j].pos;
        --net;
      }
    }
    assert(net >= 0 && net <= 1 &&
           "delta-layer invariant violated: per-key visible count not 0/1");
    if (net > 0) {
      if (out != nullptr) out->push_back(key);
      ++emitted;
    }
  }
  for (size_t i = 0; i < na + nd; ++i) cur->src[i] = src[i].pos;
  cur->merged_pos += emitted;
  return emitted;
}

}  // namespace re2xolap::rdf
