#include "rdf/text_index.h"

#include <algorithm>

#include "util/string_utils.h"

namespace re2xolap::rdf {

TextIndex::TextIndex(const TripleStore& store) {
  store.dictionary().ForEach([&](TermId id, const Term& t) {
    if (!t.is_literal() || t.literal_type != LiteralType::kString) return;
    ++indexed_literals_;
    exact_[util::ToLower(t.value)].push_back(id);
    std::vector<std::string> tokens = util::TokenizeWords(t.value);
    std::sort(tokens.begin(), tokens.end());
    tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
    for (std::string& tok : tokens) postings_[std::move(tok)].push_back(id);
  });
  // ForEach visits ids in increasing order, so posting lists are sorted.
}

std::unique_ptr<TextIndex> TextIndex::FromParts(
    std::unordered_map<std::string, std::vector<TermId>> postings,
    std::unordered_map<std::string, std::vector<TermId>> exact,
    size_t indexed_literals) {
  std::unique_ptr<TextIndex> index(new TextIndex());
  index->postings_ = std::move(postings);
  index->exact_ = std::move(exact);
  index->indexed_literals_ = indexed_literals;
  return index;
}

std::vector<TermId> TextIndex::ExactMatch(std::string_view text) const {
  auto it = exact_.find(util::ToLower(text));
  return it == exact_.end() ? std::vector<TermId>{} : it->second;
}

std::vector<TermId> TextIndex::KeywordMatch(std::string_view query,
                                            size_t limit,
                                            const util::ExecGuard* guard)
    const {
  std::vector<std::string> tokens = util::TokenizeWords(query);
  if (tokens.empty()) return {};
  // Gather posting lists; missing token => no match.
  std::vector<const std::vector<TermId>*> lists;
  lists.reserve(tokens.size());
  for (const std::string& tok : tokens) {
    auto it = postings_.find(tok);
    if (it == postings_.end()) return {};
    lists.push_back(&it->second);
  }
  // Intersect starting from the shortest list.
  std::sort(lists.begin(), lists.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  std::vector<TermId> result = *lists[0];
  std::vector<TermId> next;
  for (size_t i = 1; i < lists.size() && !result.empty(); ++i) {
    // Degrade, don't error: an expired deadline stops the refinement and
    // keeps the candidates intersected so far (a superset of the answer).
    if (guard != nullptr && !guard->Check().ok()) break;
    next.clear();
    std::set_intersection(result.begin(), result.end(), lists[i]->begin(),
                          lists[i]->end(), std::back_inserter(next));
    result.swap(next);
  }
  if (limit > 0 && result.size() > limit) result.resize(limit);
  return result;
}

std::vector<TermId> TextIndex::Match(std::string_view query, size_t limit,
                                     const util::ExecGuard* guard) const {
  std::vector<TermId> exact = ExactMatch(query);
  if (!exact.empty()) {
    if (limit > 0 && exact.size() > limit) exact.resize(limit);
    return exact;
  }
  return KeywordMatch(query, limit, guard);
}

size_t TextIndex::MemoryUsage() const {
  size_t bytes = 0;
  for (const auto& [tok, ids] : postings_) {
    bytes += tok.capacity() + ids.capacity() * sizeof(TermId) +
             3 * sizeof(void*);
  }
  for (const auto& [text, ids] : exact_) {
    bytes += text.capacity() + ids.capacity() * sizeof(TermId) +
             3 * sizeof(void*);
  }
  return bytes;
}

}  // namespace re2xolap::rdf
