#ifndef RE2XOLAP_RDF_TRIPLE_STORE_H_
#define RE2XOLAP_RDF_TRIPLE_STORE_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/index_cursor.h"
#include "rdf/triple.h"
#include "util/result.h"
#include "util/status.h"

namespace re2xolap::util {
class ThreadPool;
}

namespace re2xolap::rdf {

class CompressedPermutation;
struct DeltaLayer;
struct EpochChain;

/// Per-predicate cardinality statistics used by the query planner for
/// selectivity-ordered join planning.
struct PredicateStats {
  uint64_t triple_count = 0;
  uint64_t distinct_subjects = 0;
  uint64_t distinct_objects = 0;
};

/// Physical representation of the three index permutations.
enum class IndexFormat : uint8_t {
  kRaw = 0,         // sorted EncodedTriple arrays, zero-copy span access
  kCompressed = 1,  // delta/vbyte blocks + skip table (rdf/compressed_index.h)
};

/// Process-wide default, read once from RE2XOLAP_INDEX_FORMAT
/// ("raw" | "compressed"; anything else falls back to raw).
IndexFormat DefaultIndexFormat();

/// Per-predicate statistics computed from a (p,o,s)-sorted, deduplicated
/// triple array — the exact computation Freeze() runs over its POS index,
/// exposed for epoch-chain compaction (which folds base + deltas into new
/// sorted arrays and needs fresh stats without a TripleStore). When `pool`
/// is non-null the per-predicate runs are processed as concurrent tasks.
std::unordered_map<TermId, PredicateStats> ComputePredicateStats(
    std::span<const EncodedTriple> pos_sorted, util::ThreadPool* pool);

/// Heap vs file-backed split of a store's footprint: `heap_bytes` is
/// malloc'd memory (dictionary, owned indexes, stats), `mapped_bytes` the
/// borrowed snapshot image a zero-copy load serves from. Report both —
/// mapped pages are real resident memory under load even though they are
/// evictable.
struct StoreMemory {
  size_t heap_bytes = 0;
  size_t mapped_bytes = 0;
};

/// In-memory RDF triple store with dictionary encoding and three sorted
/// index permutations (SPO, POS, OSP), so that every triple pattern with
/// bound positions maps to a contiguous binary-searchable range.
///
/// Usage: Add() triples (cheap append), then Freeze() once before querying.
/// Further Add() calls invalidate the indexes; Freeze() rebuilds them.
/// This mirrors the paper's setting: the KG is loaded/bootstrapped once and
/// then queried read-only.
///
/// Each permutation is stored in one of two formats behind the IndexRange
/// seam (rdf/index_cursor.h): raw sorted EncodedTriple arrays — owned
/// vectors or spans borrowed from a memory-mapped snapshot image — or the
/// compressed block format of rdf/compressed_index.h (again owned or
/// borrowed). Match() always answers with an IndexRange; raw ranges expose
/// the classic zero-copy spans, compressed ranges decode block-at-a-time
/// into caller scratch. The first mutation (Add/AddEncoded/Freeze)
/// transparently materializes owned raw storage, so the mutable API keeps
/// working after any kind of load.
///
/// Concurrent-read contract: after Freeze() returns, every const member
/// (Match, CountMatches, Exists, Lookup, term, predicate_stats, ...) is
/// safe to call from any number of threads simultaneously — the read paths
/// are pure binary searches / hash lookups over immutable storage, and
/// compressed-block decoding goes through thread-local or caller-owned
/// scratch. The contract is voided by any concurrent mutation: Add(),
/// AddEncoded(), Intern(), and Freeze() must never overlap a read. Debug
/// builds enforce this with an active-reader counter asserted inside the
/// mutators (see ReadGuard below).
class TripleStore {
 public:
  TripleStore();
  ~TripleStore();
  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;

  /// --- Loading -----------------------------------------------------------

  /// Interns the terms and appends the triple. Duplicate triples are kept
  /// (deduplicated at Freeze()).
  void Add(const Term& s, const Term& p, const Term& o);

  /// Appends an already-encoded triple; the ids must come from dictionary().
  void AddEncoded(EncodedTriple t);

  /// Sorts and deduplicates the three index permutations and computes
  /// predicate statistics; when index_format() is kCompressed the sorted
  /// permutations are then compressed and the raw arrays released. Must be
  /// called after loading, before querying. When `pool` is non-null the
  /// per-permutation work runs as concurrent tasks; the resulting store is
  /// bit-identical to a serial Freeze().
  void Freeze(util::ThreadPool* pool = nullptr);

  bool frozen() const { return frozen_; }

  /// Monotone counter bumped by every Freeze(). Caches keyed on query
  /// results (e.g. engine::QueryEngine) include the epoch in their keys so
  /// a re-Freeze() — the only way new data becomes visible — invalidates
  /// every entry derived from the previous index state. 0 = never frozen.
  /// Snapshot restore (AdoptFrozen*) reinstalls the epoch the image was
  /// saved at, so cache keys behave identically across a save/load cycle.
  /// Live stores (EnterLive) answer with the current epoch chain's epoch,
  /// which every published ingest batch / compaction bumps.
  uint64_t freeze_epoch() const;

  /// --- Live ingestion (rdf/delta_layer.h, src/store/) ---------------------

  /// Switches a frozen store into live mode: the frozen indexes become the
  /// immutable base of an epoch chain, the dictionary enters its
  /// concurrent-append mode, and new data arrives as delta layers
  /// published via PublishChain() (store::Ingestor drives this). Live
  /// stores reject the freeze-once mutators (Add/Freeze/Adopt*); reads
  /// keep the frozen-store concurrency contract and additionally tolerate
  /// concurrent chain publication — a query pins one chain for its
  /// duration with ReadPin. Irreversible for the store's lifetime.
  void EnterLive();

  bool live() const { return live_.load(std::memory_order_acquire); }

  /// The chain the calling thread should read: the innermost ReadPin's
  /// chain when one is active on this thread, else a fresh atomic load of
  /// the latest published chain. Null on non-live stores.
  std::shared_ptr<const EpochChain> live_chain() const;

  /// Atomically replaces the current chain (ingest batch publication,
  /// compaction). In-flight readers keep serving their pinned chain; new
  /// ReadPins see `chain`. Refreshes the store.delta.* gauges.
  void PublishChain(std::shared_ptr<const EpochChain> chain);

  /// Rebuilds and publishes a chain over the store's own frozen base from
  /// snapshot-restored delta layers: merged stats, visible-triple count
  /// and delta totals are recomputed here, so the loader only supplies
  /// the layers and the epoch the image was saved at. Requires live().
  void RestoreChain(std::vector<std::shared_ptr<const DeltaLayer>> layers,
                    uint64_t epoch);

  /// Number of delta layers above the base (0 on non-live stores).
  uint64_t chain_depth() const;

  /// The whole permutation as a base-plus-deltas view of an explicit
  /// chain (rather than the calling thread's pinned one). Compaction
  /// folds a snapshot of the chain while newer batches keep publishing,
  /// so it needs ranges over exactly the chain it snapshotted. The
  /// returned range keeps `chain` alive.
  IndexRange ChainPermutationRange(std::shared_ptr<const EpochChain> chain,
                                   Perm perm) const;

  /// Point-in-time chain summary for /healthz and the introspection
  /// report. `live == false` zeroes the rest.
  struct LiveInfo {
    bool live = false;
    uint64_t epoch = 0;
    uint64_t chain_depth = 0;
    uint64_t delta_adds = 0;
    uint64_t delta_dels = 0;
    uint64_t visible_triples = 0;
    bool compacted_base = false;  // chain base is a compaction product
  };
  LiveInfo live_info() const;

  /// Pins the current epoch chain for the calling thread: every store
  /// read between construction and destruction (Match, size,
  /// freeze_epoch, stats, ...) answers from the pinned chain even if
  /// ingest or compaction publishes newer chains meanwhile — one query
  /// sees one epoch. No-op on non-live stores. Scoped, per-thread,
  /// nestable (innermost pin wins).
  class ReadPin {
   public:
    explicit ReadPin(const TripleStore& store);
    ~ReadPin();
    ReadPin(const ReadPin&) = delete;
    ReadPin& operator=(const ReadPin&) = delete;

   private:
    const TripleStore* store_ = nullptr;  // null => store was not live
  };

  /// --- Index format -------------------------------------------------------

  /// The format the next Freeze() will build. Defaults to
  /// DefaultIndexFormat(); snapshot adoption serves whatever format the
  /// image holds regardless of this setting.
  IndexFormat index_format() const { return format_; }
  void set_index_format(IndexFormat f) { format_ = f; }

  /// True when the store currently serves compressed block indexes.
  bool compressed_index() const { return spo_blocks_ != nullptr; }

  /// --- Snapshot restore (src/storage/) -----------------------------------

  /// Installs a fully built frozen image: the three arrays must already be
  /// sorted in their permutation orders and deduplicated, `stats` must
  /// match them, and every id must be interned in dictionary(). Marks the
  /// store frozen at `epoch`. Replaces any previous triple data.
  void AdoptFrozen(std::vector<EncodedTriple> spo,
                   std::vector<EncodedTriple> pos,
                   std::vector<EncodedTriple> osp,
                   std::unordered_map<TermId, PredicateStats> stats,
                   uint64_t epoch);

  /// Zero-copy variant: the spans alias externally owned memory (typically
  /// a memory-mapped snapshot) which `keepalive` keeps valid; the store
  /// holds the keepalive until destruction or the first mutation (which
  /// materializes owned copies first). Same preconditions as AdoptFrozen.
  void AdoptFrozenView(std::span<const EncodedTriple> spo,
                       std::span<const EncodedTriple> pos,
                       std::span<const EncodedTriple> osp,
                       std::unordered_map<TermId, PredicateStats> stats,
                       uint64_t epoch, std::shared_ptr<const void> keepalive);

  /// Compressed-format adoption: the three permutations arrive as
  /// CompressedPermutation objects whose skip/payload storage is either
  /// owned or borrowed from `keepalive` (which may be null when all three
  /// own their storage). storage/ validates every block before calling
  /// this. Same frozen-at-epoch semantics as AdoptFrozen.
  void AdoptFrozenCompressed(CompressedPermutation spo,
                             CompressedPermutation pos,
                             CompressedPermutation osp,
                             std::unordered_map<TermId, PredicateStats> stats,
                             uint64_t epoch,
                             std::shared_ptr<const void> keepalive);

  /// True while the indexes borrow a loaded snapshot image — mapped file
  /// or heap buffer (diagnostics; flips to false when a mutation
  /// materializes owned copies).
  bool borrows_snapshot() const { return keepalive_ != nullptr; }

  /// --- Term access -------------------------------------------------------

  Dictionary& dictionary() { return dict_; }
  const Dictionary& dictionary() const { return dict_; }

  /// Interns (or finds) a term id. Mutates the dictionary: must not be
  /// called while other threads read a frozen store (query paths use the
  /// read-only Lookup() instead).
  TermId Intern(const Term& t) {
    assert(active_readers_.load(std::memory_order_relaxed) == 0 &&
           "TripleStore::Intern() during concurrent reads of a frozen store");
    assert(!live() &&
           "use dictionary().InternLive() on live stores (Intern is the "
           "freeze-once mutator)");
    return dict_.Intern(t);
  }
  /// Finds an existing term id; kInvalidTermId when absent.
  TermId Lookup(const Term& t) const { return dict_.Lookup(t); }
  const Term& term(TermId id) const { return dict_.term(id); }

  /// --- Matching (requires frozen()) --------------------------------------

  /// All triples matching the pattern, as a contiguous sorted range inside
  /// one of the index permutations. Triple component order is always s/p/o
  /// regardless of which permutation serves it. The range is valid until
  /// the store's next mutation (exactly the old span lifetime rule).
  IndexRange Match(const TriplePattern& pattern) const;

  /// Number of triples matching a pattern. Pure index-range arithmetic:
  /// compressed stores answer from the skip table plus at most two block
  /// decodes, raw stores from two binary searches.
  uint64_t CountMatches(const TriplePattern& pattern) const;

  /// True if at least one triple matches.
  bool Exists(const TriplePattern& pattern) const {
    return !Match(pattern).empty();
  }

  /// The whole permutation as an IndexRange (merge joins, full scans).
  IndexRange PermutationRange(Perm perm) const;

  /// Distinct predicate ids appearing on triples with subject `s`.
  std::vector<TermId> PredicatesOfSubject(TermId s) const;

  /// Distinct predicate ids appearing on triples with object `o`.
  std::vector<TermId> PredicatesOfObject(TermId o) const;

  /// Distinct predicates in the whole store.
  std::vector<TermId> AllPredicates() const;

  /// Statistics for a predicate (zeroes for unknown predicates).
  PredicateStats predicate_stats(TermId p) const;

  /// All predicate statistics (snapshot serialization).
  const std::unordered_map<TermId, PredicateStats>& all_predicate_stats()
      const {
    return stats_;
  }

  /// The three sorted index permutations as contiguous spans (canonical
  /// triple list = spo_span()). Raw-format stores only — compressed stores
  /// have no contiguous triple arrays (use PermutationRange / the snapshot
  /// writer's compressed path); calling these on one is a programming
  /// error. Require frozen().
  std::span<const EncodedTriple> spo_span() const {
    assert(!compressed_index());
    return SpoView();
  }
  std::span<const EncodedTriple> pos_span() const {
    assert(!compressed_index());
    return PosView();
  }
  std::span<const EncodedTriple> osp_span() const {
    assert(!compressed_index());
    return OspView();
  }

  /// Compressed permutations (null on raw-format stores). Snapshot
  /// serialization reads the skip/payload parts through these.
  const CompressedPermutation* spo_blocks() const { return spo_blocks_.get(); }
  const CompressedPermutation* pos_blocks() const { return pos_blocks_.get(); }
  const CompressedPermutation* osp_blocks() const { return osp_blocks_.get(); }

  /// --- Size accounting ----------------------------------------------------

  uint64_t size() const;

  /// Heap vs mapped breakdown (see StoreMemory). A zero-copy loaded store
  /// reports its borrowed image under mapped_bytes instead of silently
  /// dropping it from the total.
  StoreMemory MemoryBreakdown() const;

  /// Total footprint in bytes: heap + mapped.
  size_t MemoryUsage() const {
    StoreMemory m = MemoryBreakdown();
    return m.heap_bytes + m.mapped_bytes;
  }

 private:
  /// Debug-only witness that a read is in flight: Match() holds one for
  /// the duration of the index lookup, and the mutators assert the count
  /// is zero. This catches "Add()/Intern() raced a query" bugs in tests
  /// without imposing any cost on release builds.
  class ReadGuard {
   public:
#ifndef NDEBUG
    explicit ReadGuard(const TripleStore* s) : store_(s) {
      store_->active_readers_.fetch_add(1, std::memory_order_relaxed);
    }
    ~ReadGuard() {
      store_->active_readers_.fetch_sub(1, std::memory_order_relaxed);
    }
   private:
    const TripleStore* store_;
#else
    explicit ReadGuard(const TripleStore*) {}
#endif
  };

  /// Owned-or-borrowed raw view selection. While keepalive_ is set (and
  /// the store is raw-format) the spans alias the mapped image; otherwise
  /// they are the owned vectors.
  std::span<const EncodedTriple> SpoView() const {
    return keepalive_ ? spo_view_ : std::span<const EncodedTriple>(spo_);
  }
  std::span<const EncodedTriple> PosView() const {
    return keepalive_ ? pos_view_ : std::span<const EncodedTriple>(pos_);
  }
  std::span<const EncodedTriple> OspView() const {
    return keepalive_ ? osp_view_ : std::span<const EncodedTriple>(osp_);
  }

  /// Converts any borrowed or compressed representation back into owned
  /// raw vectors and drops the keepalive, so mutation can proceed on owned
  /// storage. No-op for owned raw stores.
  void Materialize();

  /// Reorders [first,last) of spo_ range helpers.
  void BuildIndexes(util::ThreadPool* pool);
  void ComputeStats(util::ThreadPool* pool);
  void CompressIndexes(util::ThreadPool* pool);
  /// PermutationRange over the store's own frozen arrays/blocks, ignoring
  /// any epoch chain (the chain's base when EpochChain::base is null).
  IndexRange ClassicPermutationRange(Perm perm) const;
  /// Live read path: the whole permutation as a base-plus-deltas view of
  /// the calling thread's pinned chain (single-source fast path when the
  /// chain has no layers and the store's own arrays are the base).
  IndexRange LivePermutationRange(Perm perm) const;
  /// The chain reads on this thread should use (see live_chain()).
  std::shared_ptr<const EpochChain> PinnedChain() const;
  /// size() of the store's own frozen arrays (the chain-base size).
  uint64_t ClassicSize() const;
  /// Refreshes store.epoch / store.delta.* / store.triples after a chain
  /// publication.
  void UpdateChainGauges(const EpochChain& chain) const;
  /// Refreshes the store.* gauges (triples, heap/mapped bytes, per-index
  /// bytes) after any freeze/adopt.
  void UpdateStoreGauges() const;
  void ResetIndexState();

  Dictionary dict_;
  // The three permutations each store full (s,p,o) triples sorted by a
  // different key order. spo_ doubles as the canonical triple list.
  std::vector<EncodedTriple> spo_;  // sorted by (s, p, o)
  std::vector<EncodedTriple> pos_;  // sorted by (p, o, s)
  std::vector<EncodedTriple> osp_;  // sorted by (o, s, p)
  // Borrowed-index state (AdoptFrozenView): spans into `keepalive_`.
  std::span<const EncodedTriple> spo_view_;
  std::span<const EncodedTriple> pos_view_;
  std::span<const EncodedTriple> osp_view_;
  // Compressed-format state (Freeze under kCompressed / snapshot
  // adoption); when set, the raw vectors/views above are empty.
  std::unique_ptr<CompressedPermutation> spo_blocks_;
  std::unique_ptr<CompressedPermutation> pos_blocks_;
  std::unique_ptr<CompressedPermutation> osp_blocks_;
  std::shared_ptr<const void> keepalive_;
  std::unordered_map<TermId, PredicateStats> stats_;
  IndexFormat format_ = IndexFormat::kRaw;
  bool frozen_ = false;
  uint64_t freeze_epoch_ = 0;
  // Live-mode state (EnterLive): the current epoch chain, replaced
  // atomically by every publication. live_ flips true exactly once.
  std::atomic<bool> live_{false};
  std::atomic<std::shared_ptr<const EpochChain>> chain_;
  mutable std::atomic<int> active_readers_{0};
};

}  // namespace re2xolap::rdf

#endif  // RE2XOLAP_RDF_TRIPLE_STORE_H_
