#ifndef RE2XOLAP_RDF_TRIPLE_STORE_H_
#define RE2XOLAP_RDF_TRIPLE_STORE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple.h"
#include "util/result.h"
#include "util/status.h"

namespace re2xolap::rdf {

/// Per-predicate cardinality statistics used by the query planner for
/// selectivity-ordered join planning.
struct PredicateStats {
  uint64_t triple_count = 0;
  uint64_t distinct_subjects = 0;
  uint64_t distinct_objects = 0;
};

/// In-memory RDF triple store with dictionary encoding and three sorted
/// index permutations (SPO, POS, OSP), so that every triple pattern with
/// bound positions maps to a contiguous binary-searchable range.
///
/// Usage: Add() triples (cheap append), then Freeze() once before querying.
/// Further Add() calls invalidate the indexes; Freeze() rebuilds them.
/// This mirrors the paper's setting: the KG is loaded/bootstrapped once and
/// then queried read-only.
class TripleStore {
 public:
  TripleStore() = default;
  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;

  /// --- Loading -----------------------------------------------------------

  /// Interns the terms and appends the triple. Duplicate triples are kept
  /// (deduplicated at Freeze()).
  void Add(const Term& s, const Term& p, const Term& o);

  /// Appends an already-encoded triple; the ids must come from dictionary().
  void AddEncoded(EncodedTriple t);

  /// Sorts and deduplicates the three index permutations and computes
  /// predicate statistics. Must be called after loading, before querying.
  void Freeze();

  bool frozen() const { return frozen_; }

  /// --- Term access -------------------------------------------------------

  Dictionary& dictionary() { return dict_; }
  const Dictionary& dictionary() const { return dict_; }

  /// Interns (or finds) a term id.
  TermId Intern(const Term& t) { return dict_.Intern(t); }
  /// Finds an existing term id; kInvalidTermId when absent.
  TermId Lookup(const Term& t) const { return dict_.Lookup(t); }
  const Term& term(TermId id) const { return dict_.term(id); }

  /// --- Matching (requires frozen()) --------------------------------------

  /// All triples matching the pattern, as a contiguous span into one of the
  /// sorted indexes. The span's triple component order is always s/p/o
  /// regardless of which index serves it.
  std::span<const EncodedTriple> Match(const TriplePattern& pattern) const;

  /// Number of triples matching a pattern (same index ranges, no copy).
  uint64_t CountMatches(const TriplePattern& pattern) const;

  /// True if at least one triple matches.
  bool Exists(const TriplePattern& pattern) const {
    return !Match(pattern).empty();
  }

  /// Distinct predicate ids appearing on triples with subject `s`.
  std::vector<TermId> PredicatesOfSubject(TermId s) const;

  /// Distinct predicate ids appearing on triples with object `o`.
  std::vector<TermId> PredicatesOfObject(TermId o) const;

  /// Distinct predicates in the whole store.
  std::vector<TermId> AllPredicates() const;

  /// Statistics for a predicate (zeroes for unknown predicates).
  PredicateStats predicate_stats(TermId p) const;

  /// --- Size accounting ----------------------------------------------------

  uint64_t size() const { return spo_.size(); }
  /// Approximate heap footprint in bytes (dictionary + 3 indexes).
  size_t MemoryUsage() const;

 private:
  /// Reorders [first,last) of spo_ range helpers.
  void BuildIndexes();
  void ComputeStats();

  Dictionary dict_;
  // The three permutations each store full (s,p,o) triples sorted by a
  // different key order. spo_ doubles as the canonical triple list.
  std::vector<EncodedTriple> spo_;  // sorted by (s, p, o)
  std::vector<EncodedTriple> pos_;  // sorted by (p, o, s)
  std::vector<EncodedTriple> osp_;  // sorted by (o, s, p)
  std::unordered_map<TermId, PredicateStats> stats_;
  bool frozen_ = false;
};

}  // namespace re2xolap::rdf

#endif  // RE2XOLAP_RDF_TRIPLE_STORE_H_
