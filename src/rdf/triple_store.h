#ifndef RE2XOLAP_RDF_TRIPLE_STORE_H_
#define RE2XOLAP_RDF_TRIPLE_STORE_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple.h"
#include "util/result.h"
#include "util/status.h"

namespace re2xolap::util {
class ThreadPool;
}

namespace re2xolap::rdf {

/// Per-predicate cardinality statistics used by the query planner for
/// selectivity-ordered join planning.
struct PredicateStats {
  uint64_t triple_count = 0;
  uint64_t distinct_subjects = 0;
  uint64_t distinct_objects = 0;
};

/// In-memory RDF triple store with dictionary encoding and three sorted
/// index permutations (SPO, POS, OSP), so that every triple pattern with
/// bound positions maps to a contiguous binary-searchable range.
///
/// Usage: Add() triples (cheap append), then Freeze() once before querying.
/// Further Add() calls invalidate the indexes; Freeze() rebuilds them.
/// This mirrors the paper's setting: the KG is loaded/bootstrapped once and
/// then queried read-only.
///
/// Index storage is either owned (std::vector, the normal build path) or
/// borrowed (std::span into a memory-mapped snapshot image installed by
/// AdoptFrozenView; see src/storage/). Borrowed indexes serve the exact
/// same read paths with zero copies; the first mutation (Add/AddEncoded/
/// Freeze) transparently materializes owned copies and releases the
/// mapping, so the mutable API keeps working after a zero-copy load.
///
/// Concurrent-read contract: after Freeze() returns, every const member
/// (Match, CountMatches, Exists, Lookup, term, predicate_stats, ...) is
/// safe to call from any number of threads simultaneously — the read paths
/// are pure binary searches / hash lookups over immutable vectors and keep
/// no lazy caches or other hidden mutable state. The contract is voided by
/// any concurrent mutation: Add(), AddEncoded(), Intern(), and Freeze()
/// must never overlap a read. Debug builds enforce this with an active-
/// reader counter asserted inside the mutators (see ReadGuard below).
class TripleStore {
 public:
  TripleStore() = default;
  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;

  /// --- Loading -----------------------------------------------------------

  /// Interns the terms and appends the triple. Duplicate triples are kept
  /// (deduplicated at Freeze()).
  void Add(const Term& s, const Term& p, const Term& o);

  /// Appends an already-encoded triple; the ids must come from dictionary().
  void AddEncoded(EncodedTriple t);

  /// Sorts and deduplicates the three index permutations and computes
  /// predicate statistics. Must be called after loading, before querying.
  /// When `pool` is non-null the three permutation sorts run as concurrent
  /// tasks and the per-predicate statistics fan out across the pool; the
  /// resulting store is bit-identical to a serial Freeze().
  void Freeze(util::ThreadPool* pool = nullptr);

  bool frozen() const { return frozen_; }

  /// Monotone counter bumped by every Freeze(). Caches keyed on query
  /// results (e.g. engine::QueryEngine) include the epoch in their keys so
  /// a re-Freeze() — the only way new data becomes visible — invalidates
  /// every entry derived from the previous index state. 0 = never frozen.
  /// Snapshot restore (AdoptFrozen*) reinstalls the epoch the image was
  /// saved at, so cache keys behave identically across a save/load cycle.
  uint64_t freeze_epoch() const { return freeze_epoch_; }

  /// --- Snapshot restore (src/storage/) -----------------------------------

  /// Installs a fully built frozen image: the three arrays must already be
  /// sorted in their permutation orders and deduplicated, `stats` must
  /// match them, and every id must be interned in dictionary(). Marks the
  /// store frozen at `epoch`. Replaces any previous triple data.
  void AdoptFrozen(std::vector<EncodedTriple> spo,
                   std::vector<EncodedTriple> pos,
                   std::vector<EncodedTriple> osp,
                   std::unordered_map<TermId, PredicateStats> stats,
                   uint64_t epoch);

  /// Zero-copy variant: the spans alias externally owned memory (typically
  /// a memory-mapped snapshot) which `keepalive` keeps valid; the store
  /// holds the keepalive until destruction or the first mutation (which
  /// materializes owned copies first). Same preconditions as AdoptFrozen.
  void AdoptFrozenView(std::span<const EncodedTriple> spo,
                       std::span<const EncodedTriple> pos,
                       std::span<const EncodedTriple> osp,
                       std::unordered_map<TermId, PredicateStats> stats,
                       uint64_t epoch, std::shared_ptr<const void> keepalive);

  /// True while the indexes borrow a loaded snapshot image — mapped file
  /// or heap buffer (diagnostics; flips to false when a mutation
  /// materializes owned copies).
  bool borrows_snapshot() const { return keepalive_ != nullptr; }

  /// --- Term access -------------------------------------------------------

  Dictionary& dictionary() { return dict_; }
  const Dictionary& dictionary() const { return dict_; }

  /// Interns (or finds) a term id. Mutates the dictionary: must not be
  /// called while other threads read a frozen store (query paths use the
  /// read-only Lookup() instead).
  TermId Intern(const Term& t) {
    assert(active_readers_.load(std::memory_order_relaxed) == 0 &&
           "TripleStore::Intern() during concurrent reads of a frozen store");
    return dict_.Intern(t);
  }
  /// Finds an existing term id; kInvalidTermId when absent.
  TermId Lookup(const Term& t) const { return dict_.Lookup(t); }
  const Term& term(TermId id) const { return dict_.term(id); }

  /// --- Matching (requires frozen()) --------------------------------------

  /// All triples matching the pattern, as a contiguous span into one of the
  /// sorted indexes. The span's triple component order is always s/p/o
  /// regardless of which index serves it.
  std::span<const EncodedTriple> Match(const TriplePattern& pattern) const;

  /// Number of triples matching a pattern (same index ranges, no copy).
  uint64_t CountMatches(const TriplePattern& pattern) const;

  /// True if at least one triple matches.
  bool Exists(const TriplePattern& pattern) const {
    return !Match(pattern).empty();
  }

  /// Distinct predicate ids appearing on triples with subject `s`.
  std::vector<TermId> PredicatesOfSubject(TermId s) const;

  /// Distinct predicate ids appearing on triples with object `o`.
  std::vector<TermId> PredicatesOfObject(TermId o) const;

  /// Distinct predicates in the whole store.
  std::vector<TermId> AllPredicates() const;

  /// Statistics for a predicate (zeroes for unknown predicates).
  PredicateStats predicate_stats(TermId p) const;

  /// All predicate statistics (snapshot serialization).
  const std::unordered_map<TermId, PredicateStats>& all_predicate_stats()
      const {
    return stats_;
  }

  /// The three sorted index permutations as contiguous spans (canonical
  /// triple list = spo_span()). Snapshot serialization reads these; they
  /// require frozen().
  std::span<const EncodedTriple> spo_span() const { return SpoView(); }
  std::span<const EncodedTriple> pos_span() const { return PosView(); }
  std::span<const EncodedTriple> osp_span() const { return OspView(); }

  /// --- Size accounting ----------------------------------------------------

  uint64_t size() const { return SpoView().size(); }
  /// Approximate heap footprint in bytes (dictionary + 3 indexes). Borrowed
  /// (mmap-backed) indexes are not heap and count as zero.
  size_t MemoryUsage() const;

 private:
  /// Debug-only witness that a read is in flight: Match() holds one for
  /// the duration of the index lookup, and the mutators assert the count
  /// is zero. This catches "Add()/Intern() raced a query" bugs in tests
  /// without imposing any cost on release builds.
  class ReadGuard {
   public:
#ifndef NDEBUG
    explicit ReadGuard(const TripleStore* s) : store_(s) {
      store_->active_readers_.fetch_add(1, std::memory_order_relaxed);
    }
    ~ReadGuard() {
      store_->active_readers_.fetch_sub(1, std::memory_order_relaxed);
    }
   private:
    const TripleStore* store_;
#else
    explicit ReadGuard(const TripleStore*) {}
#endif
  };

  /// Owned-or-borrowed view selection. While keepalive_ is set the spans
  /// alias the mapped image; otherwise they are the owned vectors.
  std::span<const EncodedTriple> SpoView() const {
    return keepalive_ ? spo_view_ : std::span<const EncodedTriple>(spo_);
  }
  std::span<const EncodedTriple> PosView() const {
    return keepalive_ ? pos_view_ : std::span<const EncodedTriple>(pos_);
  }
  std::span<const EncodedTriple> OspView() const {
    return keepalive_ ? osp_view_ : std::span<const EncodedTriple>(osp_);
  }

  /// Copies borrowed views into owned vectors and drops the keepalive, so
  /// mutation can proceed on owned storage. No-op for owned stores.
  void Materialize();

  /// Reorders [first,last) of spo_ range helpers.
  void BuildIndexes(util::ThreadPool* pool);
  void ComputeStats(util::ThreadPool* pool);

  Dictionary dict_;
  // The three permutations each store full (s,p,o) triples sorted by a
  // different key order. spo_ doubles as the canonical triple list.
  std::vector<EncodedTriple> spo_;  // sorted by (s, p, o)
  std::vector<EncodedTriple> pos_;  // sorted by (p, o, s)
  std::vector<EncodedTriple> osp_;  // sorted by (o, s, p)
  // Borrowed-index state (AdoptFrozenView): spans into `keepalive_`.
  std::span<const EncodedTriple> spo_view_;
  std::span<const EncodedTriple> pos_view_;
  std::span<const EncodedTriple> osp_view_;
  std::shared_ptr<const void> keepalive_;
  std::unordered_map<TermId, PredicateStats> stats_;
  bool frozen_ = false;
  uint64_t freeze_epoch_ = 0;
  mutable std::atomic<int> active_readers_{0};
};

}  // namespace re2xolap::rdf

#endif  // RE2XOLAP_RDF_TRIPLE_STORE_H_
