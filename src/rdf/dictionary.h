#ifndef RE2XOLAP_RDF_DICTIONARY_H_
#define RE2XOLAP_RDF_DICTIONARY_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdf/term.h"
#include "util/result.h"

namespace re2xolap::rdf {

/// Dense integer id for an interned term. Id 0 is reserved as the invalid
/// id so pattern wildcards and "no match" can be represented cheaply.
using TermId = uint32_t;
inline constexpr TermId kInvalidTermId = 0;

/// Bidirectional Term <-> TermId mapping. Interning terms once lets the
/// triple store and all query processing work on fixed-width integers.
///
/// Each term is stored exactly once, in `terms_`: the reverse index is an
/// unordered_set of TermIds whose transparent hash/equality functors look
/// the term text up through `terms_`, so interning N terms costs N Term
/// objects plus N 4-byte ids — not 2N Terms as a Term-keyed map would.
///
/// Concurrent-read contract: once loading finishes (in practice: once the
/// owning TripleStore is Freeze()-d), Lookup()/term()/IsValid()/ForEach()
/// are safe from any number of threads — they are const hash/vector reads
/// with no lazy caches. Intern() mutates and must never overlap a read;
/// query paths must use Lookup() only. The TripleStore wrapper asserts
/// this in debug builds.
///
/// Live mode (EnterLive, driven by TripleStore::EnterLive): the base
/// mapping built so far becomes immutable — its vector and hash index are
/// never touched again, so base reads stay lock-free — and new terms land
/// in an extension area (stable-address deque + Term-keyed map) guarded by
/// a shared_mutex. InternLive() is the only mutator afterwards; it may run
/// concurrently with any reads, but InternLive() calls themselves must be
/// externally serialized (store::Ingestor's batch mutex does this).
class Dictionary {
 public:
  Dictionary()
      : index_(/*bucket_count=*/16, IdHash{&terms_}, IdEq{&terms_}) {
    // Slot 0 is the invalid id.
    terms_.emplace_back();
  }

  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;

  /// Interns `term`, returning its id (existing id if already present).
  /// Load-time only: rejected after EnterLive().
  TermId Intern(const Term& term);
  /// Move-interning overload: bulk loaders (snapshot restore, parsers)
  /// hand the Term over instead of paying a lexical-form copy per call.
  TermId Intern(Term&& term);

  /// Freezes the current mapping as the immutable base and switches new
  /// interning to the locked extension area. Irreversible.
  void EnterLive();

  bool live() const { return live_.load(std::memory_order_acquire); }

  /// Interns a term into a live dictionary; safe against concurrent
  /// reads. Concurrent InternLive() calls must be serialized by the
  /// caller (one ingest batch at a time).
  TermId InternLive(const Term& term);

  /// Looks up an existing term; kInvalidTermId when absent.
  TermId Lookup(const Term& term) const;

  /// The term for `id`. `id` must be a valid interned id. The reference
  /// stays valid for the dictionary's lifetime (extension storage is a
  /// deque: no reallocation).
  const Term& term(TermId id) const {
    if (id < terms_.size()) return terms_[id];
    return ExtTerm(id);
  }

  bool IsValid(TermId id) const {
    if (id == 0) return false;
    if (id < terms_.size()) return true;
    if (!live()) return false;
    std::shared_lock lk(ext_mu_);
    return id < terms_.size() + ext_terms_.size();
  }

  /// Number of interned terms (excluding the reserved invalid slot).
  size_t size() const {
    size_t n = terms_.size() - 1;
    if (live()) {
      std::shared_lock lk(ext_mu_);
      n += ext_terms_.size();
    }
    return n;
  }

  /// Pre-sizes the term vector and hash index for `n` terms (snapshot
  /// restore knows the exact count up front).
  void Reserve(size_t n);

  /// Iterates every interned (id, term) pair in id order. Fn is called as
  /// fn(TermId, const Term&). On a live dictionary the extension area is
  /// walked under the shared lock, so the iteration is a consistent
  /// point-in-time enumeration even against a concurrent InternLive().
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (TermId id = 1; id < terms_.size(); ++id) fn(id, terms_[id]);
    if (!live()) return;
    std::shared_lock lk(ext_mu_);
    TermId id = static_cast<TermId>(terms_.size());
    for (const Term& t : ext_terms_) fn(id++, t);
  }

  /// Approximate heap footprint in bytes (for Table 3-style reporting).
  size_t MemoryUsage() const;

 private:
  /// Transparent hash/equality pair for the id index: an id hashes/compares
  /// as the Term it denotes, so lookups by `const Term&` need no Term copy.
  /// The functors hold a pointer to the vector object (not its data), so
  /// term-vector reallocation is harmless; Dictionary is neither copyable
  /// nor movable, so the pointer never dangles.
  struct IdHash {
    using is_transparent = void;
    const std::vector<Term>* terms;
    size_t operator()(TermId id) const { return TermHash()((*terms)[id]); }
    size_t operator()(const Term& t) const { return TermHash()(t); }
  };
  struct IdEq {
    using is_transparent = void;
    const std::vector<Term>* terms;
    // Id-id equality goes through the terms (not id identity) so the
    // move-Intern's insert-first path can detect that a freshly pushed
    // term equals an already-indexed one. Stored ids always denote
    // distinct terms, so behavior for existing elements is unchanged.
    bool operator()(TermId a, TermId b) const {
      return a == b || (*terms)[a] == (*terms)[b];
    }
    bool operator()(TermId a, const Term& b) const { return (*terms)[a] == b; }
    bool operator()(const Term& a, TermId b) const { return (*terms)[b] == a; }
  };

  /// Extension-area slot for `id` (id >= terms_.size(); live mode only).
  const Term& ExtTerm(TermId id) const;

  std::vector<Term> terms_;
  std::unordered_set<TermId, IdHash, IdEq> index_;
  // Live-mode extension area: terms interned after EnterLive(). The deque
  // gives stable element addresses, so term() can hand out references
  // that outlive the shared lock.
  std::atomic<bool> live_{false};
  mutable std::shared_mutex ext_mu_;
  std::deque<Term> ext_terms_;  // id = terms_.size() + deque index
  std::unordered_map<Term, TermId, TermHash> ext_index_;
};

}  // namespace re2xolap::rdf

#endif  // RE2XOLAP_RDF_DICTIONARY_H_
