#ifndef RE2XOLAP_RDF_DICTIONARY_H_
#define RE2XOLAP_RDF_DICTIONARY_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "rdf/term.h"
#include "util/result.h"

namespace re2xolap::rdf {

/// Dense integer id for an interned term. Id 0 is reserved as the invalid
/// id so pattern wildcards and "no match" can be represented cheaply.
using TermId = uint32_t;
inline constexpr TermId kInvalidTermId = 0;

/// Bidirectional Term <-> TermId mapping. Interning terms once lets the
/// triple store and all query processing work on fixed-width integers.
///
/// Each term is stored exactly once, in `terms_`: the reverse index is an
/// unordered_set of TermIds whose transparent hash/equality functors look
/// the term text up through `terms_`, so interning N terms costs N Term
/// objects plus N 4-byte ids — not 2N Terms as a Term-keyed map would.
///
/// Concurrent-read contract: once loading finishes (in practice: once the
/// owning TripleStore is Freeze()-d), Lookup()/term()/IsValid()/ForEach()
/// are safe from any number of threads — they are const hash/vector reads
/// with no lazy caches. Intern() mutates and must never overlap a read;
/// query paths must use Lookup() only. The TripleStore wrapper asserts
/// this in debug builds.
class Dictionary {
 public:
  Dictionary()
      : index_(/*bucket_count=*/16, IdHash{&terms_}, IdEq{&terms_}) {
    // Slot 0 is the invalid id.
    terms_.emplace_back();
  }

  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;

  /// Interns `term`, returning its id (existing id if already present).
  TermId Intern(const Term& term);
  /// Move-interning overload: bulk loaders (snapshot restore, parsers)
  /// hand the Term over instead of paying a lexical-form copy per call.
  TermId Intern(Term&& term);

  /// Looks up an existing term; kInvalidTermId when absent.
  TermId Lookup(const Term& term) const;

  /// The term for `id`. `id` must be a valid interned id.
  const Term& term(TermId id) const { return terms_[id]; }

  bool IsValid(TermId id) const { return id > 0 && id < terms_.size(); }

  /// Number of interned terms (excluding the reserved invalid slot).
  size_t size() const { return terms_.size() - 1; }

  /// Pre-sizes the term vector and hash index for `n` terms (snapshot
  /// restore knows the exact count up front).
  void Reserve(size_t n);

  /// Iterates every interned (id, term) pair in id order. Fn is called as
  /// fn(TermId, const Term&).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (TermId id = 1; id < terms_.size(); ++id) fn(id, terms_[id]);
  }

  /// Approximate heap footprint in bytes (for Table 3-style reporting).
  size_t MemoryUsage() const;

 private:
  /// Transparent hash/equality pair for the id index: an id hashes/compares
  /// as the Term it denotes, so lookups by `const Term&` need no Term copy.
  /// The functors hold a pointer to the vector object (not its data), so
  /// term-vector reallocation is harmless; Dictionary is neither copyable
  /// nor movable, so the pointer never dangles.
  struct IdHash {
    using is_transparent = void;
    const std::vector<Term>* terms;
    size_t operator()(TermId id) const { return TermHash()((*terms)[id]); }
    size_t operator()(const Term& t) const { return TermHash()(t); }
  };
  struct IdEq {
    using is_transparent = void;
    const std::vector<Term>* terms;
    // Id-id equality goes through the terms (not id identity) so the
    // move-Intern's insert-first path can detect that a freshly pushed
    // term equals an already-indexed one. Stored ids always denote
    // distinct terms, so behavior for existing elements is unchanged.
    bool operator()(TermId a, TermId b) const {
      return a == b || (*terms)[a] == (*terms)[b];
    }
    bool operator()(TermId a, const Term& b) const { return (*terms)[a] == b; }
    bool operator()(const Term& a, TermId b) const { return (*terms)[b] == a; }
  };

  std::vector<Term> terms_;
  std::unordered_set<TermId, IdHash, IdEq> index_;
};

}  // namespace re2xolap::rdf

#endif  // RE2XOLAP_RDF_DICTIONARY_H_
