#ifndef RE2XOLAP_RDF_DICTIONARY_H_
#define RE2XOLAP_RDF_DICTIONARY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"
#include "util/result.h"

namespace re2xolap::rdf {

/// Dense integer id for an interned term. Id 0 is reserved as the invalid
/// id so pattern wildcards and "no match" can be represented cheaply.
using TermId = uint32_t;
inline constexpr TermId kInvalidTermId = 0;

/// Bidirectional Term <-> TermId mapping. Interning terms once lets the
/// triple store and all query processing work on fixed-width integers.
///
/// Concurrent-read contract: once loading finishes (in practice: once the
/// owning TripleStore is Freeze()-d), Lookup()/term()/IsValid()/ForEach()
/// are safe from any number of threads — they are const hash/vector reads
/// with no lazy caches. Intern() mutates and must never overlap a read;
/// query paths must use Lookup() only. The TripleStore wrapper asserts
/// this in debug builds.
class Dictionary {
 public:
  Dictionary() {
    // Slot 0 is the invalid id.
    terms_.emplace_back();
  }

  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;

  /// Interns `term`, returning its id (existing id if already present).
  TermId Intern(const Term& term);

  /// Looks up an existing term; kInvalidTermId when absent.
  TermId Lookup(const Term& term) const;

  /// The term for `id`. `id` must be a valid interned id.
  const Term& term(TermId id) const { return terms_[id]; }

  bool IsValid(TermId id) const { return id > 0 && id < terms_.size(); }

  /// Number of interned terms (excluding the reserved invalid slot).
  size_t size() const { return terms_.size() - 1; }

  /// Iterates every interned (id, term) pair in id order. Fn is called as
  /// fn(TermId, const Term&).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (TermId id = 1; id < terms_.size(); ++id) fn(id, terms_[id]);
  }

  /// Approximate heap footprint in bytes (for Table 3-style reporting).
  size_t MemoryUsage() const;

 private:
  std::vector<Term> terms_;
  std::unordered_map<Term, TermId, TermHash> index_;
};

}  // namespace re2xolap::rdf

#endif  // RE2XOLAP_RDF_DICTIONARY_H_
