#include "rdf/term.h"

#include <cstdio>
#include <cstdlib>

namespace re2xolap::rdf {

Term Term::DoubleLiteral(double v) {
  // %.17g guarantees the lexical form round-trips to the same double —
  // filter thresholds computed from aggregates must compare exactly.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return Term(TermKind::kLiteral, buf, LiteralType::kDouble);
}

double Term::AsDouble() const {
  if (!is_literal()) return 0.0;
  switch (literal_type) {
    case LiteralType::kInteger:
    case LiteralType::kDouble:
      return std::strtod(value.c_str(), nullptr);
    default:
      return 0.0;
  }
}

std::string Term::ToString() const {
  switch (kind) {
    case TermKind::kIri:
      return "<" + value + ">";
    case TermKind::kBlankNode:
      return "_:" + value;
    case TermKind::kLiteral:
      switch (literal_type) {
        case LiteralType::kString:
          return "\"" + value + "\"";
        case LiteralType::kInteger:
          return "\"" + value + "\"^^xsd:integer";
        case LiteralType::kDouble:
          return "\"" + value + "\"^^xsd:double";
        case LiteralType::kBoolean:
          return "\"" + value + "\"^^xsd:boolean";
        case LiteralType::kDate:
          return "\"" + value + "\"^^xsd:date";
        case LiteralType::kOther:
          return "\"" + value + "\"^^<unknown>";
      }
  }
  return value;
}

}  // namespace re2xolap::rdf
