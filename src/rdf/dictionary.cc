#include "rdf/dictionary.h"

#include <utility>

namespace re2xolap::rdf {

TermId Dictionary::Intern(const Term& term) {
  auto it = index_.find(term);
  if (it != index_.end()) return *it;
  TermId id = static_cast<TermId>(terms_.size());
  // Push before inserting the id: the index hashes ids through terms_.
  terms_.push_back(term);
  index_.insert(id);
  return id;
}

TermId Dictionary::Intern(Term&& term) {
  // Insert-first: push the term, then let the single hash of insert()
  // either claim the new id or reveal the existing one. Bulk loaders
  // (snapshot restore) intern mostly-new terms, and this halves the hash
  // computations versus find-then-insert.
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(std::move(term));
  auto [it, inserted] = index_.insert(id);
  if (!inserted) {
    terms_.pop_back();
    return *it;
  }
  return id;
}

TermId Dictionary::Lookup(const Term& term) const {
  auto it = index_.find(term);
  return it == index_.end() ? kInvalidTermId : *it;
}

void Dictionary::Reserve(size_t n) {
  terms_.reserve(n + 1);
  index_.reserve(n);
}

size_t Dictionary::MemoryUsage() const {
  size_t bytes = terms_.capacity() * sizeof(Term);
  for (const Term& t : terms_) bytes += t.value.capacity();
  // The id index stores 4-byte ids, not Term copies: bucket array + nodes.
  bytes += index_.bucket_count() * sizeof(void*);
  bytes += index_.size() * (sizeof(TermId) + 2 * sizeof(void*));
  return bytes;
}

}  // namespace re2xolap::rdf
