#include "rdf/dictionary.h"

#include <mutex>
#include <utility>

namespace re2xolap::rdf {

TermId Dictionary::Intern(const Term& term) {
  assert(!live() && "Dictionary::Intern() on a live dictionary");
  auto it = index_.find(term);
  if (it != index_.end()) return *it;
  TermId id = static_cast<TermId>(terms_.size());
  // Push before inserting the id: the index hashes ids through terms_.
  terms_.push_back(term);
  index_.insert(id);
  return id;
}

TermId Dictionary::Intern(Term&& term) {
  assert(!live() && "Dictionary::Intern() on a live dictionary");
  // Insert-first: push the term, then let the single hash of insert()
  // either claim the new id or reveal the existing one. Bulk loaders
  // (snapshot restore) intern mostly-new terms, and this halves the hash
  // computations versus find-then-insert.
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(std::move(term));
  auto [it, inserted] = index_.insert(id);
  if (!inserted) {
    terms_.pop_back();
    return *it;
  }
  return id;
}

void Dictionary::EnterLive() {
  assert(!live() && "Dictionary::EnterLive() called twice");
  live_.store(true, std::memory_order_release);
}

TermId Dictionary::InternLive(const Term& term) {
  assert(live() && "Dictionary::InternLive() requires EnterLive()");
  // The base index is immutable in live mode: probe it lock-free first
  // (the common case for terms referenced by deletes and re-inserts).
  auto it = index_.find(term);
  if (it != index_.end()) return *it;
  std::unique_lock lk(ext_mu_);
  auto [eit, inserted] = ext_index_.try_emplace(term, kInvalidTermId);
  if (!inserted) return eit->second;
  const TermId id = static_cast<TermId>(terms_.size() + ext_terms_.size());
  eit->second = id;
  ext_terms_.push_back(term);
  return id;
}

const Term& Dictionary::ExtTerm(TermId id) const {
  assert(live());
  std::shared_lock lk(ext_mu_);
  assert(id >= terms_.size() && id < terms_.size() + ext_terms_.size());
  // Deque elements have stable addresses: the reference outlives the lock.
  return ext_terms_[id - terms_.size()];
}

TermId Dictionary::Lookup(const Term& term) const {
  auto it = index_.find(term);
  if (it != index_.end()) return *it;
  if (!live()) return kInvalidTermId;
  std::shared_lock lk(ext_mu_);
  auto eit = ext_index_.find(term);
  return eit == ext_index_.end() ? kInvalidTermId : eit->second;
}

void Dictionary::Reserve(size_t n) {
  assert(!live() && "Dictionary::Reserve() on a live dictionary");
  terms_.reserve(n + 1);
  index_.reserve(n);
}

size_t Dictionary::MemoryUsage() const {
  size_t bytes = terms_.capacity() * sizeof(Term);
  for (const Term& t : terms_) bytes += t.value.capacity();
  // The id index stores 4-byte ids, not Term copies: bucket array + nodes.
  bytes += index_.bucket_count() * sizeof(void*);
  bytes += index_.size() * (sizeof(TermId) + 2 * sizeof(void*));
  if (live()) {
    std::shared_lock lk(ext_mu_);
    for (const Term& t : ext_terms_) bytes += sizeof(Term) + t.value.capacity();
    bytes += ext_index_.bucket_count() * sizeof(void*);
    // Extension index nodes key full Term copies (no base-vector trick:
    // the deque is not indexable through a transparent set cheaply).
    for (const auto& [t, id] : ext_index_) {
      bytes += sizeof(Term) + t.value.capacity() + sizeof(TermId) +
               2 * sizeof(void*);
    }
  }
  return bytes;
}

}  // namespace re2xolap::rdf
