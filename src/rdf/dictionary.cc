#include "rdf/dictionary.h"

namespace re2xolap::rdf {

TermId Dictionary::Intern(const Term& term) {
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(term);
  index_.emplace(term, id);
  return id;
}

TermId Dictionary::Lookup(const Term& term) const {
  auto it = index_.find(term);
  return it == index_.end() ? kInvalidTermId : it->second;
}

size_t Dictionary::MemoryUsage() const {
  size_t bytes = terms_.capacity() * sizeof(Term);
  for (const Term& t : terms_) bytes += t.value.capacity();
  // Rough estimate of the hash index: bucket array + nodes.
  bytes += index_.bucket_count() * sizeof(void*);
  bytes += index_.size() * (sizeof(Term) + sizeof(TermId) + 2 * sizeof(void*));
  return bytes;
}

}  // namespace re2xolap::rdf
