#ifndef RE2XOLAP_RDF_INDEX_CURSOR_H_
#define RE2XOLAP_RDF_INDEX_CURSOR_H_

// Index-cursor abstraction over the three sorted triple permutations.
//
// TripleStore::Match() answers every pattern with an IndexRange: a
// contiguous, sorted run of triples inside one permutation. The range is
// backed either by a raw EncodedTriple array (zero-copy spans, the classic
// representation) or by the compressed block format of
// rdf/compressed_index.h (fixed-size delta/vbyte blocks plus an in-memory
// skip table). Consumers that only iterate use the range-for iterator or
// IndexCursor::NextChunk; the executors additionally seek and gallop via
// sentinel-triple probes, which on compressed ranges run on the block skip
// keys first and decode only the blocks that survive the seek.
//
// Position convention: all positions are relative to the range (0 ..
// size()). Probes are full sentinel triples compared with the permutation's
// total order — callers bake the pattern's bound prefix into the sentinel
// and fill unbound trailing components with 0 / kMaxTermId, exactly like
// the store's own EqualRange computation.

#include <cassert>
#include <cstdint>
#include <iterator>
#include <memory>
#include <span>
#include <vector>

#include "rdf/triple.h"

namespace re2xolap::rdf {

class CompressedPermutation;
class MergedRun;

/// The three index permutations. The numeric values are wire-stable: the
/// compressed snapshot sections identify their permutation by this value.
enum class Perm : uint8_t { kSpo = 0, kPos = 1, kOsp = 2 };

inline constexpr TermId kMaxTermId = ~static_cast<TermId>(0);

/// Key comparators for the three permutations (total orders over full
/// triples). Centralized here so the store, the executors, and the
/// compressed codec agree on one definition.
struct SpoLess {
  bool operator()(const EncodedTriple& a, const EncodedTriple& b) const {
    if (a.s != b.s) return a.s < b.s;
    if (a.p != b.p) return a.p < b.p;
    return a.o < b.o;
  }
};
struct PosLess {
  bool operator()(const EncodedTriple& a, const EncodedTriple& b) const {
    if (a.p != b.p) return a.p < b.p;
    if (a.o != b.o) return a.o < b.o;
    return a.s < b.s;
  }
};
struct OspLess {
  bool operator()(const EncodedTriple& a, const EncodedTriple& b) const {
    if (a.o != b.o) return a.o < b.o;
    if (a.s != b.s) return a.s < b.s;
    return a.p < b.p;
  }
};

/// a < b under the given permutation's key order.
inline bool PermLess(Perm perm, const EncodedTriple& a,
                     const EncodedTriple& b) {
  switch (perm) {
    case Perm::kSpo:
      return SpoLess()(a, b);
    case Perm::kPos:
      return PosLess()(a, b);
    default:
      return OspLess()(a, b);
  }
}

/// Caller-owned scratch for decoding compressed blocks: pins one decoded
/// block so repeated accesses into the same block (chunked scans, binary
/// searches converging on a block) decode it once. Decoded blocks live in
/// a thread-local block cache (see index_cursor.cc); the scratch holds a
/// shared_ptr pin, so spans handed out stay valid even if the cache
/// evicts the block. Reusable across ranges; the (generation, block) key
/// prevents stale hits when a range from a different permutation — or a
/// permutation that has since been destroyed and its address reused — is
/// attached to the same scratch.
/// Per-source merge positions of a MergedRun reader (adds first, then
/// tombstone sources), plus the merged position they correspond to.
/// Lives inside IndexBlockScratch so a cursor's scratch can continue a
/// sequential merged scan without re-seeking.
struct MergedCursorState {
  uint64_t merged_pos = 0;
  std::vector<uint64_t> src;
};

struct IndexBlockScratch {
  std::shared_ptr<const std::vector<EncodedTriple>> pinned;
  uint64_t generation = 0;             // CompressedPermutation::generation()
  uint64_t block = ~static_cast<uint64_t>(0);
  // Merged-run window (live stores, rdf/delta_layer.h): `merged_buf`
  // holds the materialized window starting at absolute merged position
  // `merged_win_start` of the run identified by `merged_id`, and
  // `merged_cur` sits at the window's end so sequential Fetch calls
  // continue the K-way merge without a rank re-seek. The buffer is owned
  // by the scratch, so handed-out spans follow the usual scratch-reuse
  // lifetime rule.
  uint64_t merged_id = 0;  // MergedRun::id(); 0 = no window
  uint64_t merged_win_start = 0;
  std::vector<EncodedTriple> merged_buf;
  MergedCursorState merged_cur;
};

/// A contiguous sorted run of triples inside one permutation. Cheap value
/// type (pointer + offsets); validity follows the backing store — like the
/// spans Match() used to return, a range must not outlive its TripleStore
/// or the store's next mutation.
class IndexRange {
 public:
  IndexRange() = default;

  /// Raw backing: the span IS the range.
  static IndexRange FromSpan(std::span<const EncodedTriple> s, Perm perm) {
    IndexRange r;
    r.data_ = s.data();
    r.end_ = s.size();
    r.perm_ = perm;
    return r;
  }

  /// Compressed backing: positions [begin, end) of `blocks`' permutation.
  static IndexRange FromBlocks(const CompressedPermutation* blocks,
                               uint64_t begin, uint64_t end, Perm perm) {
    IndexRange r;
    r.blocks_ = blocks;
    r.begin_ = begin;
    r.end_ = end;
    r.perm_ = perm;
    return r;
  }

  /// Merged backing (live stores): positions [begin, end) of `run`, the
  /// K-way base-plus-delta view of rdf/delta_layer.h. The shared_ptr
  /// keeps the run — and through it the pinned epoch chain — alive for
  /// as long as any copy of the range exists, so merged ranges survive
  /// concurrent chain publication.
  static IndexRange FromMerged(std::shared_ptr<const MergedRun> run,
                               uint64_t begin, uint64_t end, Perm perm) {
    IndexRange r;
    r.merged_ = std::move(run);
    r.begin_ = begin;
    r.end_ = end;
    r.perm_ = perm;
    return r;
  }

  uint64_t size() const { return end_ - begin_; }
  bool empty() const { return end_ == begin_; }
  bool compressed() const { return blocks_ != nullptr; }
  bool merged() const { return merged_ != nullptr; }
  Perm perm() const { return perm_; }

  /// Zero-copy access to a raw-backed range. Precondition: !compressed()
  /// and !merged().
  std::span<const EncodedTriple> raw() const {
    assert(!compressed() && !merged());
    return {data_ + begin_, static_cast<size_t>(end_ - begin_)};
  }

  /// Returns up to `limit` triples starting at relative position `pos`
  /// (limit 0 = as many as available). Raw ranges return a zero-copy
  /// subspan covering the whole remainder (capped by limit); compressed
  /// ranges return a slice of one decoded block, so the chunk additionally
  /// ends at the next block boundary. The returned span stays valid until
  /// `scratch` is reused. `scratch` may be null for raw ranges.
  std::span<const EncodedTriple> Fetch(uint64_t pos, uint64_t limit,
                                       IndexBlockScratch* scratch) const;

  /// Triple at relative position i. On compressed ranges this decodes via
  /// a thread-local scratch — fine for cold paths and point lookups, use
  /// Fetch/iterators for scans.
  EncodedTriple operator[](uint64_t i) const;
  EncodedTriple front() const { return (*this)[0]; }
  EncodedTriple back() const { return (*this)[size() - 1]; }

  /// First relative position whose triple is >= probe (LowerBound) or >
  /// probe (UpperBound) in the permutation's key order. Compressed ranges
  /// binary-search the block skip keys and decode at most one block.
  /// `scratch` may be null (falls back to the thread-local scratch).
  uint64_t LowerBound(const EncodedTriple& probe,
                      IndexBlockScratch* scratch = nullptr) const;
  uint64_t UpperBound(const EncodedTriple& probe,
                      IndexBlockScratch* scratch = nullptr) const;

  /// Galloping variants for merge joins: start at relative position `from`
  /// and double the step until the probe is bracketed. Compressed ranges
  /// gallop over the block skip keys first and decode only the one block
  /// the final binary search lands in.
  uint64_t GallopLowerBound(uint64_t from, const EncodedTriple& probe,
                            IndexBlockScratch* scratch = nullptr) const;
  uint64_t GallopUpperBound(uint64_t from, const EncodedTriple& probe,
                            IndexBlockScratch* scratch = nullptr) const;

  /// Sub-range [lo, hi) in relative positions.
  IndexRange Slice(uint64_t lo, uint64_t hi) const {
    assert(lo <= hi && hi <= size());
    IndexRange r = *this;
    r.begin_ = begin_ + lo;
    r.end_ = begin_ + hi;
    return r;
  }

  /// Input iterator for range-for consumption (profiling scans, exports,
  /// other cold paths). Each begin() of a compressed range allocates one
  /// block-sized scratch; the hot executors use Fetch with pooled scratch
  /// instead.
  class Iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = EncodedTriple;
    using difference_type = std::ptrdiff_t;
    using pointer = const EncodedTriple*;
    using reference = const EncodedTriple&;

    Iterator() = default;
    reference operator*() const { return chunk_[pos_ - chunk_start_]; }
    pointer operator->() const { return &**this; }
    Iterator& operator++() {
      if (++pos_ >= chunk_start_ + chunk_.size()) Refill();
      return *this;
    }
    Iterator operator++(int) {
      Iterator t = *this;
      ++*this;
      return t;
    }
    friend bool operator==(const Iterator& a, const Iterator& b) {
      return a.pos_ == b.pos_;
    }
    friend bool operator!=(const Iterator& a, const Iterator& b) {
      return a.pos_ != b.pos_;
    }

   private:
    friend class IndexRange;
    Iterator(const IndexRange* r, uint64_t pos);
    void Refill();

    const IndexRange* range_ = nullptr;
    uint64_t pos_ = 0;
    std::span<const EncodedTriple> chunk_;
    uint64_t chunk_start_ = 0;
    std::shared_ptr<IndexBlockScratch> scratch_;
  };

  Iterator begin() const { return Iterator(this, 0); }
  Iterator end() const { return Iterator(this, size()); }

 private:
  std::span<const EncodedTriple> FetchMerged(uint64_t pos, uint64_t limit,
                                             IndexBlockScratch* scratch) const;

  const CompressedPermutation* blocks_ = nullptr;  // null => raw backing
  const EncodedTriple* data_ = nullptr;            // raw backing base
  // Merged backing (null otherwise): copying a null shared_ptr is free,
  // so classic raw/compressed ranges pay nothing for this member.
  std::shared_ptr<const MergedRun> merged_;
  uint64_t begin_ = 0;  // raw: 0; compressed/merged: absolute position
  uint64_t end_ = 0;    // raw: size; compressed/merged: absolute end
  Perm perm_ = Perm::kSpo;
};

/// Stateful forward reader over an IndexRange: seek + block-at-a-time
/// materialization into owned scratch. Executors keep one per plan step /
/// recursion depth so the scratch block allocates once and is reused for
/// every binding; Attach() re-targets the cursor without releasing it.
class IndexCursor {
 public:
  IndexCursor() = default;
  explicit IndexCursor(IndexRange range) { Attach(range); }

  void Attach(IndexRange range) {
    range_ = range;
    pos_ = 0;
  }

  const IndexRange& range() const { return range_; }
  uint64_t position() const { return pos_; }
  bool done() const { return pos_ >= range_.size(); }
  void SeekTo(uint64_t pos) { pos_ = pos; }

  /// Advances past every triple < probe (>= semantics) or <= probe
  /// (greater semantics), galloping forward from the current position.
  void SeekLowerBound(const EncodedTriple& probe) {
    pos_ = range_.GallopLowerBound(pos_, probe, &scratch_);
  }
  void SeekUpperBound(const EncodedTriple& probe) {
    pos_ = range_.GallopUpperBound(pos_, probe, &scratch_);
  }

  /// Next chunk of at most `limit` triples (0 = no cap), advancing the
  /// cursor by the chunk's length. Empty chunk <=> done(). The span stays
  /// valid until the next NextChunk/Seek* call on this cursor.
  std::span<const EncodedTriple> NextChunk(uint64_t limit = 0) {
    std::span<const EncodedTriple> chunk = range_.Fetch(pos_, limit, &scratch_);
    pos_ += chunk.size();
    return chunk;
  }

  IndexBlockScratch* scratch() { return &scratch_; }

 private:
  IndexRange range_;
  uint64_t pos_ = 0;
  IndexBlockScratch scratch_;
};

}  // namespace re2xolap::rdf

#endif  // RE2XOLAP_RDF_INDEX_CURSOR_H_
