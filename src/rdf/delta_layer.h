#ifndef RE2XOLAP_RDF_DELTA_LAYER_H_
#define RE2XOLAP_RDF_DELTA_LAYER_H_

// Epoch-chain building blocks for live ingestion: an immutable frozen
// base plus a stack of immutable sorted delta layers, merged at read
// time behind the IndexRange seam (ROADMAP item 3).
//
// A DeltaLayer is one atomically published ingest batch: inserts and
// tombstoned deletes, each sorted in all three permutation orders, so a
// layer answers the same clipped-range probes the base indexes do. The
// layer-build invariants (enforced by store::Ingestor against the chain
// being replaced) make merged positions exact arithmetic:
//
//   - an insert is never already visible in the chain below, and
//   - a tombstone kills exactly one triple visible in the chain below,
//
// so for any key prefix the number of visible triples is
//   sum(adds <= prefix) - sum(tombstones <= prefix)
// across base + layers, with the per-key count always 0 or 1. MergedRun
// turns that arithmetic into an IndexRange backing: bounds are sums of
// per-source bounds, and Fetch materializes merged windows with
// tombstone annihilation (equal keys across sources cancel in pairs).
//
// Everything in this header is immutable after construction and safe
// for concurrent reads; publication of a new EpochChain is a single
// atomic shared_ptr store in TripleStore.

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "rdf/index_cursor.h"
#include "rdf/triple.h"
#include "rdf/triple_store.h"

namespace re2xolap::rdf {

/// One sealed ingest batch: sorted insert and tombstone arrays per
/// permutation. Immutable once published into an EpochChain.
struct DeltaLayer {
  /// Inserted triples, each array sorted by its permutation's key order
  /// and deduplicated. All three hold the same triple set.
  std::vector<EncodedTriple> add_spo;
  std::vector<EncodedTriple> add_pos;
  std::vector<EncodedTriple> add_osp;
  /// Tombstones: triples visible in the chain below this layer that this
  /// layer deletes. Same sorting/dedup contract as the inserts.
  std::vector<EncodedTriple> del_spo;
  std::vector<EncodedTriple> del_pos;
  std::vector<EncodedTriple> del_osp;
  /// Net per-predicate triple-count change (inserts - deletes), applied
  /// to the planner stats when the chain's merged stats are built.
  std::unordered_map<TermId, int64_t> predicate_delta;
  /// Monotone ingest batch number (diagnostics; snapshot round-trips).
  uint64_t batch_id = 0;

  const std::vector<EncodedTriple>& adds(Perm perm) const {
    switch (perm) {
      case Perm::kSpo:
        return add_spo;
      case Perm::kPos:
        return add_pos;
      default:
        return add_osp;
    }
  }
  const std::vector<EncodedTriple>& dels(Perm perm) const {
    switch (perm) {
      case Perm::kSpo:
        return del_spo;
      case Perm::kPos:
        return del_pos;
      default:
        return del_osp;
    }
  }

  uint64_t add_count() const { return add_spo.size(); }
  uint64_t del_count() const { return del_spo.size(); }

  /// Recomputes predicate_delta from add_pos/del_pos (used after a
  /// snapshot restore, which serializes only the triple arrays).
  void RebuildPredicateDelta();

  size_t MemoryUsage() const;
};

/// Owned storage of a compacted base: the fold of a previous base plus
/// its sealed layers into fresh sorted raw arrays. When an EpochChain's
/// `base` is null the owning TripleStore's own frozen arrays serve as
/// the base instead (the state right after EnterLive()).
struct LiveBase {
  std::vector<EncodedTriple> spo;  // sorted by (s, p, o)
  std::vector<EncodedTriple> pos;  // sorted by (p, o, s)
  std::vector<EncodedTriple> osp;  // sorted by (o, s, p)
  std::unordered_map<TermId, PredicateStats> stats;

  size_t MemoryUsage() const;
};

/// One immutable snapshot of the live store's state: a base plus zero or
/// more delta layers, published atomically per ingest batch / compaction.
/// Readers pin a chain (TripleStore::ReadPin) for the duration of a
/// query; the shared_ptr graph keeps every array a handed-out IndexRange
/// references alive until the last reader drops its pin.
struct EpochChain {
  /// Compacted base storage; null while the store's own frozen arrays
  /// are the base.
  std::shared_ptr<const LiveBase> base;
  /// Delta layers, oldest first. Tombstones in layer k refer to triples
  /// visible in base + layers [0, k).
  std::vector<std::shared_ptr<const DeltaLayer>> layers;
  /// The chain's freeze epoch: every publish (ingest batch with a net
  /// change, compaction) bumps it, so engine cache keys roll over.
  uint64_t epoch = 0;
  /// Total visible triples (base + inserts - deletes).
  uint64_t visible_triples = 0;
  /// Merged planner stats: base stats with each layer's predicate_delta
  /// applied to triple_count. Distinct-subject/object counts stay at the
  /// base values for predicates the base knows (refreshing them exactly
  /// would cost a full scan per publish); predicates born in a delta
  /// layer use triple_count as an upper bound for both.
  std::unordered_map<TermId, PredicateStats> stats;
  /// Totals across layers (gauges, /healthz).
  uint64_t delta_adds = 0;
  uint64_t delta_dels = 0;

  uint64_t depth() const { return layers.size(); }
};

/// Applies `layer` on top of `stats` (the merged-stats construction
/// described on EpochChain::stats). Predicates whose count reaches zero
/// are erased so AllPredicates() stops listing them.
void ApplyLayerToStats(const DeltaLayer& layer,
                       std::unordered_map<TermId, PredicateStats>* stats);

/// The K-way merged view a merged IndexRange reads through: one clipped
/// run per source (base and per-layer inserts as adds, per-layer
/// tombstones as dels), all clipped to the same sentinel window of one
/// permutation. Positions are exact under the layer-build invariants
/// (see file header): size() = sum(adds) - sum(dels), and every bound is
/// the same sum over per-source bounds. Immutable and shared: the
/// IndexRanges handed to executors hold a shared_ptr to it, and it holds
/// the chain keepalive, so a range outlives chain publication safely.
class MergedRun {
 public:
  /// `adds` must be non-empty; every range must share `perm` and the
  /// same clip window. `keepalive` pins the chain the sources alias.
  MergedRun(std::vector<IndexRange> adds, std::vector<IndexRange> dels,
            Perm perm, std::shared_ptr<const void> keepalive);

  uint64_t size() const { return size_; }
  Perm perm() const { return perm_; }
  /// Process-unique identity for scratch-window matching (never 0).
  uint64_t id() const { return id_; }
  size_t source_count() const { return adds_.size() + dels_.size(); }

  /// Merged LowerBound (upper == false) / UpperBound (upper == true) of
  /// `probe` over the whole run, as a sum of per-source bounds.
  uint64_t Bound(const EncodedTriple& probe, bool upper) const;

  /// Positions `cur` at merged position `pos`: per-source positions plus
  /// the merged position itself. Runs a rank bisection over the largest
  /// add source, then merges forward over the residual gap.
  void Seek(uint64_t pos, MergedCursorState* cur) const;

  /// Advances `cur` by up to `limit` merged triples (annihilating
  /// tombstones), appending them to `out` when non-null. Returns the
  /// number of merged triples advanced.
  uint64_t Advance(MergedCursorState* cur, uint64_t limit,
                   std::vector<EncodedTriple>* out) const;

 private:
  /// Number of merged triples with key < probe, with per-source lower
  /// bounds written to `bounds` (sized source_count, adds then dels).
  uint64_t RankLess(const EncodedTriple& probe,
                    std::vector<uint64_t>* bounds) const;

  std::vector<IndexRange> adds_;
  std::vector<IndexRange> dels_;
  Perm perm_ = Perm::kSpo;
  uint64_t size_ = 0;
  uint64_t id_ = 0;
  std::shared_ptr<const void> keepalive_;
};

}  // namespace re2xolap::rdf

#endif  // RE2XOLAP_RDF_DELTA_LAYER_H_
