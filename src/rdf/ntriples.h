#ifndef RE2XOLAP_RDF_NTRIPLES_H_
#define RE2XOLAP_RDF_NTRIPLES_H_

#include <array>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "rdf/triple_store.h"
#include "util/status.h"

namespace re2xolap::rdf {

/// Renders one term in the writer's N-Triples-like syntax: <iri>, _:label,
/// or "literal"^^type-suffix with backslash escapes (\\ \" \n \r \t) in the
/// lexical form, so literals containing quotes or newlines survive a
/// write → parse round trip (unlike Term::ToString(), which is display-
/// oriented and escapes nothing).
std::string ToNTriples(const Term& term);

/// Serializes the store's triples (canonical SPO order) in an N-Triples-
/// like line format:
///   <s-iri> <p-iri> <o-term> .
/// The store must be frozen. Together with ParseNTriples this round-trips:
/// parse(write(store)) reproduces the exact same term values and triple
/// set, so any loaded snapshot can be exported back to text.
void WriteNTriples(const TripleStore& store, std::ostream& os);

/// Parses N-Triples-like text (one `<s> <p> o .` statement per line; `#`
/// comments and blank lines allowed) into `store`. Supported object forms:
/// <iri>, _:blank, "string", "lex"^^xsd:integer|xsd:double|xsd:boolean|
/// xsd:date. Backslash escapes \\ \" \n \r \t in literals are decoded;
/// an unknown escape keeps the escaped character. The caller still needs
/// to Freeze() the store.
util::Status ParseNTriples(std::string_view text, TripleStore* store);

/// Same grammar as ParseNTriples, but appends parsed (s, p, o) term
/// triples to `out` instead of mutating a store — the live-ingest path
/// (store::Ingestor) parses first and interns later, under its own
/// concurrency rules, so parsing must not touch the store. On error,
/// `out` keeps the statements parsed before the bad line.
util::Status ParseNTriplesTerms(std::string_view text,
                                std::vector<std::array<Term, 3>>* out);

}  // namespace re2xolap::rdf

#endif  // RE2XOLAP_RDF_NTRIPLES_H_
