#ifndef RE2XOLAP_RDF_NTRIPLES_H_
#define RE2XOLAP_RDF_NTRIPLES_H_

#include <ostream>
#include <string_view>

#include "rdf/triple_store.h"
#include "util/status.h"

namespace re2xolap::rdf {

/// Serializes the store's triples in an N-Triples-like line format:
///   <s-iri> <p-iri> <o-term> .
/// Literals are rendered with a datatype suffix as in Term::ToString().
void WriteNTriples(const TripleStore& store, std::ostream& os);

/// Parses N-Triples-like text (one `<s> <p> o .` statement per line; `#`
/// comments and blank lines allowed) into `store`. Supported object forms:
/// <iri>, _:blank, "string", "lex"^^xsd:integer|xsd:double|xsd:boolean|
/// xsd:date. The caller still needs to Freeze() the store.
util::Status ParseNTriples(std::string_view text, TripleStore* store);

}  // namespace re2xolap::rdf

#endif  // RE2XOLAP_RDF_NTRIPLES_H_
