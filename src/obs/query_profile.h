#ifndef RE2XOLAP_OBS_QUERY_PROFILE_H_
#define RE2XOLAP_OBS_QUERY_PROFILE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace re2xolap::obs {

/// One operator of an executed query plan, annotated with observed
/// cardinalities and wall time. The SPARQL executor fills a tree of these
/// into ExecStats (root = the whole SELECT); ExplainAnalyze renders it.
///
/// Conventions:
///  - rows_in:  tuples the operator was invoked on (0 when meaningless,
///    e.g. the root or the planner node);
///  - rows_out: tuples the operator produced / passed on;
///  - scanned:  index entries inspected by the operator;
///  - millis:   inclusive wall time (children included). Per-row operator
///    timing is only collected when ExecOptions::profile is set; pipeline
///    barriers (sort, aggregate finalize) are always timed.
struct ProfileNode {
  std::string label;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint64_t scanned = 0;
  double millis = 0;
  bool timed = false;  // millis was actually measured for this node
  std::vector<ProfileNode> children;

  ProfileNode() = default;
  explicit ProfileNode(std::string l) : label(std::move(l)) {}

  /// Appends a child and returns a reference to it (stable until the next
  /// sibling is added).
  ProfileNode& AddChild(std::string child_label) {
    children.emplace_back(std::move(child_label));
    return children.back();
  }

  /// Sum of `scanned` over this node and all descendants.
  uint64_t TotalScanned() const;

  /// Sum of `rows_out` over this node and all descendants.
  uint64_t TotalRowsOut() const;

  /// Number of nodes in the tree (including this one).
  size_t NodeCount() const;
};

/// Depth-first pre-order visit; `fn(depth, node)` with depth 0 at `root`.
void VisitProfile(const ProfileNode& root,
                  const std::function<void(int, const ProfileNode&)>& fn);

}  // namespace re2xolap::obs

#endif  // RE2XOLAP_OBS_QUERY_PROFILE_H_
