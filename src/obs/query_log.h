#ifndef RE2XOLAP_OBS_QUERY_LOG_H_
#define RE2XOLAP_OBS_QUERY_LOG_H_

// The query telemetry layer: an always-on, bounded-overhead flight
// recorder of every query-shaped operation the system performs. Each
// execution through engine::QueryEngine::Execute, the engine-free
// sparql::Execute escape hatch, a core::Session exploration interaction,
// or a storage snapshot save/load appends exactly one fixed-layout
// QueryRecord into a lock-sharded ring buffer (modeled on the Tracer
// shards): identity, cache outcome, guard verdict, degradation flags,
// and the parse/plan/exec latency breakdown survive the call, so a
// served system can answer "what has this process been doing?" without
// having been asked in advance.
//
// On top of the ring:
//  - slow-query capture: records that exceed a configurable latency
//    threshold, or that end in kTimeout / kResourceExhausted /
//    kCancelled, additionally retain the query text and the rendered
//    ExplainAnalyze operator tree in a bounded slow-query log;
//  - an optional JSONL structured-log sink (RE2XOLAP_QUERY_LOG=<path>),
//    buffered and flushed off the hot path;
//  - WriteIntrospectionReport: a human-readable system snapshot
//    aggregating the ring plus metrics-registry highlights.
//
// Overhead contract: one relaxed enabled-load when disabled; when
// enabled (the default), an append is one relaxed id fetch_add plus one
// sharded-lock ring write — no allocation unless the JSONL sink is armed
// or the record qualifies for slow capture.
//
// Layering: obs sits below util in the link graph, so this header keeps
// its own tiny mirrors of util::StatusCode / sparql::ExecutorKind names
// (RecordStatusName / RecordExecutorName); query_log_test pins them to
// the canonical enums.

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace re2xolap::obs {

/// What kind of operation a QueryRecord describes.
enum class QueryOp : uint8_t {
  kEngineExecute = 0,   // engine::QueryEngine::Execute
  kSparqlExecute,       // engine-free sparql::Execute escape hatch
  kSessionSynthesize,   // core::Session::Start (ReOLAP synthesis)
  kSessionRefine,       // core::Session::Refine (disaggregate/subset/...)
  kSessionExclude,      // core::Session::ExcludeNegative
  kSessionSlice,        // core::Session::Slice
  kSnapshotSave,        // storage::SaveSnapshot
  kSnapshotLoad,        // storage::LoadSnapshot
};
inline constexpr size_t kQueryOpCount = 8;

/// Stable display name ("engine.execute", "session.synthesize", ...).
const char* QueryOpName(QueryOp op);

/// Result-cache outcome of one execution. kNone: the operation has no
/// cache (sessions, snapshots, direct sparql::Execute); kBypass: caching
/// was disabled or deliberately skipped (profiled runs).
enum class CacheOutcome : uint8_t { kNone = 0, kHit, kMiss, kBypass };
const char* CacheOutcomeName(CacheOutcome outcome);

/// Mirror of util::StatusCodeToString for the status byte stored in
/// records (see the layering note above).
const char* RecordStatusName(uint8_t code);

/// Mirror of sparql::ExecutorKind: 0 = n/a, 1 = volcano, 2 = vectorized.
const char* RecordExecutorName(uint8_t executor);

/// 64-bit FNV-1a of a normalized query text — the query's identity in
/// records (two textually identical queries collide on purpose).
uint64_t FingerprintQuery(std::string_view normalized_text);

/// One flight-recorder entry. Fixed layout, no owned strings: appending
/// never allocates. `id` and `start_micros` are assigned by Append.
struct QueryRecord {
  uint64_t id = 0;           // monotone per process, 1-based
  uint64_t fingerprint = 0;  // FingerprintQuery of the query text; 0 = n/a
  uint64_t freeze_epoch = 0;
  QueryOp op = QueryOp::kEngineExecute;
  uint8_t executor = 0;      // RecordExecutorName index
  CacheOutcome cache = CacheOutcome::kNone;
  uint8_t status = 0;        // util::StatusCode value; 0 = OK
  bool degraded = false;     // partial answer (graceful degradation)
  uint32_t retries = 0;      // transient-failure re-executions
  uint64_t rows_out = 0;
  uint64_t triples_scanned = 0;
  uint64_t intermediate_bindings = 0;
  double plan_millis = 0;
  double exec_millis = 0;
  double total_millis = 0;   // whole call, entry to return
  int64_t start_micros = 0;  // since the process trace epoch
};

/// A slow-query log entry: the record plus the bounded context captured
/// with it (query text and rendered ExplainAnalyze tree, when available).
struct SlowQueryEntry {
  QueryRecord record;
  std::string query;   // normalized query text ("" when not applicable)
  std::string detail;  // rendered operator tree / diagnostic ("" if none)
};

/// Recorder sizing and capture policy. Zero capacities disable the
/// corresponding retention (records are still counted).
struct QueryLogConfig {
  /// Records retained across all ring shards (oldest evicted first).
  size_t ring_capacity = 4096;
  /// Slow-query entries retained (oldest evicted first).
  size_t slow_capacity = 64;
  /// Latency threshold for slow capture, in milliseconds. Records at or
  /// above it are captured; < 0 disables latency-based capture (error
  /// statuses are still captured). Overridable with
  /// RE2XOLAP_QUERY_LOG_SLOW_MS.
  double slow_threshold_millis = 250.0;
  /// JSONL structured-log sink; armed by a non-empty path (or the
  /// RE2XOLAP_QUERY_LOG environment variable at process start).
  std::string sink_path;
};

/// Process-global flight recorder. Always on by default; SetEnabled(false)
/// exists for overhead measurement and tests only.
///
/// Concurrency: Append selects one of kShards mutex-protected rings by
/// thread tag (concurrent recorders rarely contend); snapshots and the
/// introspection report take each shard lock briefly in turn.
class QueryLog {
 public:
  static QueryLog& Global();

  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Replaces the recorder configuration. Retained records and slow
  /// entries are dropped (their ids stay consumed); the JSONL sink is
  /// re-pointed (an unopenable path disarms the sink with one stderr
  /// warning). Not safe to race with Append in the middle of a workload —
  /// configure at startup or between requests.
  void Configure(QueryLogConfig config);
  QueryLogConfig config() const;

  /// Appends one record: assigns the monotone id (and, when the caller
  /// left start_micros at 0, a start timestamp derived from now −
  /// total_millis) into `rec`, writes a copy into the ring, and (when
  /// armed) buffers its JSONL line. Returns the assigned id (0 when
  /// disabled).
  uint64_t Append(QueryRecord& rec);

  /// True when `rec` qualifies for slow capture: total_millis at or above
  /// the threshold, or a guard-verdict status (kTimeout /
  /// kResourceExhausted / kCancelled).
  bool ShouldCapture(const QueryRecord& rec) const;

  /// Retains `rec` with its context in the bounded slow-query log.
  void CaptureSlow(const QueryRecord& rec, std::string query,
                   std::string detail);

  /// Append + conditional slow capture in one step, for call sites that
  /// assemble a finished record directly instead of via QueryRecordScope
  /// (session interactions, snapshot save/load).
  void AppendCompleted(QueryRecord& rec, std::string query,
                       std::string detail = {});

  /// Records appended since process start (monotone; survives Clear).
  /// Ids are handed out exactly once per appended record, so this is the
  /// id counter minus its starting value — no second atomic on the
  /// append path.
  uint64_t total_appended() const {
    return next_id_.load(std::memory_order_relaxed) - 1;
  }

  /// Copies out the retained records, ordered by id (oldest first).
  std::vector<QueryRecord> Snapshot() const;

  /// Copies out the retained slow-query entries, oldest first.
  std::vector<SlowQueryEntry> SlowSnapshot() const;

  /// Drops every retained record and slow entry (ids stay monotone,
  /// configuration and sink unchanged).
  void Clear();

  /// Flushes the JSONL sink buffer to disk (no-op when disarmed). Called
  /// automatically when the buffer fills and at process exit.
  void Flush();

  /// Writes a human-readable system snapshot: totals, per-operation
  /// breakdown (count, errors, cache hit ratio, latency), status and
  /// degradation breakdown, per-epoch counts, the top `top_n` slowest
  /// retained records, the slow-query log (with captured operator
  /// trees), and metrics-registry highlights (incl. engine cache
  /// counters and thread-pool occupancy).
  void WriteIntrospectionReport(std::ostream& os, size_t top_n = 10) const;

  /// Formats one record as a single JSONL object (no trailing newline).
  static std::string ToJsonLine(const QueryRecord& rec);

 private:
  static constexpr size_t kShards = 16;
  /// Cache-line aligned so concurrent appenders on different shards never
  /// false-share a spinlock word.
  struct alignas(64) Shard {
    /// Spinlock, not a mutex: the critical section is one fixed-size
    /// record copy (appenders) or one short ring walk (snapshots), and
    /// thread-tag sharding makes contention rare — a futex round trip
    /// would cost more than the section it protects.
    mutable std::atomic_flag busy;
    std::vector<QueryRecord> ring;  // fixed capacity slots
    uint64_t head = 0;              // next slot to overwrite (wraps)
    uint64_t appended = 0;          // total ever appended to this shard
  };

  QueryLog();
  size_t ShardCapacityLocked() const;
  void SinkLine(const QueryRecord& rec);
  void FlushLocked();

  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> next_id_{1};

  std::array<Shard, kShards> shards_;

  mutable std::mutex slow_mu_;
  std::deque<SlowQueryEntry> slow_;

  mutable std::mutex config_mu_;
  QueryLogConfig config_;
  std::atomic<bool> sink_armed_{false};
  std::atomic<int64_t> slow_threshold_micros_{250000};

  std::mutex sink_mu_;
  std::string sink_buffer_;
  std::FILE* sink_file_ = nullptr;
};

/// RAII collector for one query-shaped call. The outermost scope on a
/// thread owns the call's record — nested scopes (sparql::Execute under
/// QueryEngine::Execute, the ASK rewrite's inner probe) are inactive, so
/// each top-level call appends exactly one record however deep the
/// execution recurses. The destructor stamps total_millis, appends the
/// record, and captures it into the slow-query log when it qualifies.
///
/// Session interactions and snapshot operations deliberately do NOT use
/// this scope (they append directly): an engine execution inside a
/// session interaction is a real query and records as one.
class QueryRecordScope {
 public:
  explicit QueryRecordScope(QueryOp op);
  /// Same, adopting a start timestamp the caller already holds (trace
  /// base, see obs::TraceMicrosAt) instead of reading the clock — the
  /// engine's execute path shares its latency timer's start point this
  /// way. A zero `start_micros` falls back to reading the clock.
  QueryRecordScope(QueryOp op, int64_t start_micros);
  ~QueryRecordScope();

  QueryRecordScope(const QueryRecordScope&) = delete;
  QueryRecordScope& operator=(const QueryRecordScope&) = delete;

  /// True for the outermost scope of an enabled recorder; inactive
  /// scopes ignore every mutation and append nothing.
  bool active() const { return active_; }

  /// The record under construction (writes to an inactive scope's record
  /// are harmless and discarded).
  QueryRecord& rec() { return rec_; }

  /// Attaches the normalized query text: sets the fingerprint and keeps
  /// the text for slow capture.
  void SetQueryText(std::string text);

  /// Same, with a precomputed fingerprint (0 falls back to hashing) —
  /// lets the engine's cache-hit path reuse the fingerprint stored with
  /// the cached entry instead of rehashing the query text.
  void SetQueryText(std::string text, uint64_t fingerprint);

  /// Attaches the rendered operator tree (or other diagnostic) retained
  /// on slow capture.
  void SetDetail(std::string detail) { detail_ = std::move(detail); }

  /// Milliseconds since construction.
  double ElapsedMillis() const;

  /// Whether the record as it stands (status set, elapsed time so far)
  /// would be captured into the slow-query log — callers use this to
  /// decide whether rendering an ExplainAnalyze tree is worth it.
  bool WillCapture() const;

 private:
  bool active_ = false;
  QueryRecord rec_;  // start_micros doubles as the scope's start reference
  std::string query_;
  std::string detail_;
};

}  // namespace re2xolap::obs

#endif  // RE2XOLAP_OBS_QUERY_LOG_H_
