#ifndef RE2XOLAP_OBS_METRICS_H_
#define RE2XOLAP_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

namespace re2xolap::obs {

/// Lock-free accumulator for a double (sum / min / max) built on a CAS
/// loop over the bit pattern. Suitable for low-contention metric updates.
class AtomicDouble {
 public:
  void Add(double v);
  void StoreMax(double v);
  void StoreMin(double v);
  void Set(double v);
  double value() const;
  void Reset() { Set(0.0); }

 private:
  std::atomic<uint64_t> bits_{0};  // bit pattern of +0.0
};

/// Monotone counter. All operations are relaxed atomics.
class Counter {
 public:
  void Inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Instantaneous value (last write wins).
class Gauge {
 public:
  void Set(double v) { v_.Set(v); }
  double value() const { return v_.value(); }
  void Reset() { v_.Reset(); }

 private:
  AtomicDouble v_;
};

/// Log-bucketed latency/size histogram: 4 buckets per power of two
/// (relative bucket width 2^(1/4) ≈ 1.19), covering 2^-20 .. 2^30 — for
/// millisecond values that is ~1 ns to ~12 days — plus underflow and
/// overflow buckets. Observe() is a handful of relaxed atomics; quantile
/// estimates use the geometric midpoint of the selected bucket, so the
/// relative error is bounded by 2^(1/8)-1 ≈ 9%.
class Histogram {
 public:
  static constexpr int kSubBuckets = 4;   // buckets per doubling
  static constexpr int kMinExp = -20;     // smallest power of two covered
  static constexpr int kMaxExp = 30;      // largest power of two covered
  static constexpr int kNumBuckets =
      (kMaxExp - kMinExp) * kSubBuckets + 2;  // + underflow + overflow

  Histogram() { Reset(); }

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.value(); }
  double min() const { return count() ? min_.value() : 0.0; }
  double max() const { return count() ? max_.value() : 0.0; }

  /// Estimated value at quantile `q` in [0, 1] (0 when empty). Estimates
  /// are clamped into [min(), max()].
  double Percentile(double q) const;

  /// Cumulative count of observations <= the upper bound of bucket `b`
  /// plus that upper bound itself; used by the Prometheus exporter.
  uint64_t bucket_count(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  static double BucketUpperBound(int b);

  void Reset();

 private:
  static int BucketOf(double v);

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  AtomicDouble sum_;
  AtomicDouble min_;
  AtomicDouble max_;
};

/// Point-in-time summary of one histogram (embedded in bench JSON logs).
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0, min = 0, max = 0;
  double p50 = 0, p90 = 0, p95 = 0, p99 = 0, p999 = 0;
};

HistogramSnapshot SnapshotOf(const Histogram& h);

/// Process-global registry of named metrics. Lookup interns the metric on
/// first use and returns a stable reference, so hot paths can cache the
/// pointer:
///
///   static obs::Counter& probes =
///       obs::MetricsRegistry::Global().GetCounter("reolap.probes");
///   probes.Inc();
///
/// Naming convention: lowercase dotted paths, `<subsystem>.<what>[.unit]`
/// (e.g. "sparql.exec.millis", "reolap.probes"). The Prometheus exporter
/// rewrites non-alphanumeric characters to '_'.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// JSON object: {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {count, sum, min, max, p50, p90, p95, p99, p999}}}.
  void WriteJson(std::ostream& os) const;
  std::string ToJson() const;

  /// Prometheus text exposition format (counter / gauge / histogram
  /// families, names sanitized to [a-zA-Z0-9_:]).
  void WritePrometheus(std::ostream& os) const;
  std::string ToPrometheus() const;

  /// Zeroes every registered metric (registrations and references remain
  /// valid). Intended for tests and bench runs.
  void Reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  // std::map: sorted exports, node-stable values.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace re2xolap::obs

#endif  // RE2XOLAP_OBS_METRICS_H_
