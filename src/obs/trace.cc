#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace re2xolap::obs {

namespace {

thread_local SpanId tls_current_span = 0;

/// The trace epoch: the steady-clock instant of the first use. All span
/// timestamps are microseconds since this point, which is what Chrome's
/// trace viewer expects (any consistent epoch works).
std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

int64_t MicrosSinceEpoch(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::microseconds>(tp -
                                                               TraceEpoch())
      .count();
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// RE2XOLAP_TRACE=<path>: enable the global tracer before main() runs and
/// dump the Chrome trace at normal process exit. The Tracer singleton is
/// leaked, so it is still alive when the atexit hook fires.
struct EnvTraceInit {
  EnvTraceInit() {
    const char* path = std::getenv("RE2XOLAP_TRACE");
    if (path == nullptr || *path == '\0') return;
    TracePath() = path;
    Tracer::Global().SetEnabled(true);
    std::atexit([] {
      std::ofstream out(TracePath());
      if (out) Tracer::Global().WriteChromeTrace(out);
    });
  }
  static std::string& TracePath() {
    static std::string* path = new std::string;
    return *path;
  }
};
EnvTraceInit env_trace_init;

}  // namespace

SpanId CurrentSpan() { return tls_current_span; }

int64_t TraceNowMicros() {
  return MicrosSinceEpoch(std::chrono::steady_clock::now());
}

int64_t TraceMicrosAt(std::chrono::steady_clock::time_point tp) {
  return MicrosSinceEpoch(tp);
}

uint64_t ThisThreadTag() {
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t tag = next.fetch_add(1, std::memory_order_relaxed);
  return tag;
}

// --- Tracer -----------------------------------------------------------------

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer;  // leaked: alive for exit-time spans
  return *tracer;
}

void Tracer::Record(SpanEvent&& ev) {
  Shard& shard = shards_[ev.thread % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.events.push_back(std::move(ev));
}

void Tracer::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.events.clear();
  }
}

size_t Tracer::span_count() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.events.size();
  }
  return n;
}

std::vector<SpanEvent> Tracer::Snapshot() const {
  std::vector<SpanEvent> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.insert(out.end(), shard.events.begin(), shard.events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              return a.start_micros != b.start_micros
                         ? a.start_micros < b.start_micros
                         : a.id < b.id;
            });
  return out;
}

void Tracer::WriteChromeTrace(std::ostream& os) const {
  std::vector<SpanEvent> events = Snapshot();
  // Thread of each span, for cross-thread flow arrows.
  std::unordered_map<SpanId, uint64_t> span_thread;
  span_thread.reserve(events.size());
  for (const SpanEvent& ev : events) span_thread[ev.id] = ev.thread;

  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  auto sep = [&] {
    os << (first ? "\n" : ",\n");
    first = false;
  };
  for (const SpanEvent& ev : events) {
    sep();
    os << "  {\"name\": \"" << JsonEscape(ev.name)
       << "\", \"cat\": \"re2x\", \"ph\": \"X\", \"ts\": " << ev.start_micros
       << ", \"dur\": " << FormatDouble(ev.dur_micros)
       << ", \"pid\": 1, \"tid\": " << ev.thread << ", \"args\": {\"span\": "
       << ev.id << ", \"parent\": " << ev.parent;
    for (const SpanAttr& a : ev.attrs) {
      os << ", \"" << JsonEscape(a.key) << "\": ";
      if (a.numeric) {
        os << a.value;
      } else {
        os << "\"" << JsonEscape(a.value) << "\"";
      }
    }
    os << "}}";
    // Cross-thread parent: add a flow arrow so the fan stays attached to
    // its parent span in the viewer.
    auto it = ev.parent != 0 ? span_thread.find(ev.parent)
                             : span_thread.end();
    if (it != span_thread.end() && it->second != ev.thread) {
      sep();
      os << "  {\"name\": \"fan\", \"cat\": \"re2x\", \"ph\": \"s\", \"id\": "
         << ev.id << ", \"ts\": " << ev.start_micros
         << ", \"pid\": 1, \"tid\": " << it->second << "}";
      sep();
      os << "  {\"name\": \"fan\", \"cat\": \"re2x\", \"ph\": \"f\", "
            "\"bp\": \"e\", \"id\": "
         << ev.id << ", \"ts\": " << ev.start_micros
         << ", \"pid\": 1, \"tid\": " << ev.thread << "}";
    }
  }
  os << "\n]}\n";
}

std::string Tracer::ChromeTraceJson() const {
  std::ostringstream os;
  WriteChromeTrace(os);
  return os.str();
}

// --- Span -------------------------------------------------------------------

Span::Span(std::string_view name) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;  // the whole disabled cost: one relaxed load
  active_ = true;
  ev_.id = tracer.NextId();
  ev_.parent = tls_current_span;
  ev_.name.assign(name);
  ev_.thread = ThisThreadTag();
  start_ = std::chrono::steady_clock::now();
  ev_.start_micros = MicrosSinceEpoch(start_);
  tls_current_span = ev_.id;
}

void Span::End() {
  if (!active_) return;
  active_ = false;
  ev_.dur_micros = std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
  tls_current_span = ev_.parent;
  Tracer::Global().Record(std::move(ev_));
}

void Span::SetAttr(std::string_view key, std::string_view value) {
  if (!active_) return;
  ev_.attrs.push_back(SpanAttr{std::string(key), std::string(value), false});
}

void Span::SetAttr(std::string_view key, const char* value) {
  SetAttr(key, std::string_view(value));
}

void Span::SetAttr(std::string_view key, double value) {
  if (!active_) return;
  ev_.attrs.push_back(SpanAttr{std::string(key), FormatDouble(value), true});
}

void Span::SetAttr(std::string_view key, uint64_t value) {
  if (!active_) return;
  ev_.attrs.push_back(
      SpanAttr{std::string(key), std::to_string(value), true});
}

// --- ScopedSpanContext ------------------------------------------------------

ScopedSpanContext::ScopedSpanContext(SpanId parent) : saved_(tls_current_span) {
  tls_current_span = parent;
}

ScopedSpanContext::~ScopedSpanContext() { tls_current_span = saved_; }

// --- JSON escaping ----------------------------------------------------------

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace re2xolap::obs
