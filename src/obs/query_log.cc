#include "obs/query_log.h"

#include <algorithm>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <map>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace re2xolap::obs {

namespace {

thread_local int tls_scope_depth = 0;

/// RAII guard for a Shard's spinlock.
class ShardLock {
 public:
  explicit ShardLock(std::atomic_flag& busy) : busy_(busy) {
    while (busy_.test_and_set(std::memory_order_acquire)) {
    }
  }
  ~ShardLock() { busy_.clear(std::memory_order_release); }
  ShardLock(const ShardLock&) = delete;
  ShardLock& operator=(const ShardLock&) = delete;

 private:
  std::atomic_flag& busy_;
};

/// The sink buffer is flushed to disk once it crosses this size, so disk
/// writes are amortized over many records and stay off most hot paths.
constexpr size_t kSinkFlushBytes = 64 * 1024;

constexpr uint8_t kStatusTimeout = 7;            // util::StatusCode::kTimeout
constexpr uint8_t kStatusResourceExhausted = 8;  // ...::kResourceExhausted
constexpr uint8_t kStatusCancelled = 11;         // ...::kCancelled

std::string FormatMillis(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

const char* QueryOpName(QueryOp op) {
  switch (op) {
    case QueryOp::kEngineExecute:
      return "engine.execute";
    case QueryOp::kSparqlExecute:
      return "sparql.execute";
    case QueryOp::kSessionSynthesize:
      return "session.synthesize";
    case QueryOp::kSessionRefine:
      return "session.refine";
    case QueryOp::kSessionExclude:
      return "session.exclude";
    case QueryOp::kSessionSlice:
      return "session.slice";
    case QueryOp::kSnapshotSave:
      return "snapshot.save";
    case QueryOp::kSnapshotLoad:
      return "snapshot.load";
  }
  return "?";
}

const char* CacheOutcomeName(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kNone:
      return "none";
    case CacheOutcome::kHit:
      return "hit";
    case CacheOutcome::kMiss:
      return "miss";
    case CacheOutcome::kBypass:
      return "bypass";
  }
  return "?";
}

const char* RecordStatusName(uint8_t code) {
  // Mirrors util::StatusCodeToString (obs cannot link util; the pairing
  // is pinned by QueryLogTest.StatusNamesMatchUtilStatusCodes).
  static constexpr const char* kNames[] = {
      "OK",        "InvalidArgument", "NotFound",          "AlreadyExists",
      "ParseError", "TypeError",      "ExecutionError",    "Timeout",
      "ResourceExhausted", "Internal", "Unavailable",      "Cancelled",
  };
  constexpr size_t kCount = sizeof(kNames) / sizeof(kNames[0]);
  return code < kCount ? kNames[code] : "Unknown";
}

const char* RecordExecutorName(uint8_t executor) {
  // Mirrors sparql::ExecutorKind (kDefault never reaches a record — call
  // sites store the resolved kind).
  switch (executor) {
    case 0:
      return "none";
    case 1:
      return "volcano";
    case 2:
      return "vectorized";
  }
  return "?";
}

uint64_t FingerprintQuery(std::string_view normalized_text) {
  // FNV-1a 64, folded over native-endian 8-byte words with a byte-wise
  // tail. The word folding cuts the serial multiply chain 8× versus
  // byte-at-a-time FNV — this runs on every recorded query, including the
  // engine's cache-hit path, so the hash must cost tens of nanoseconds on
  // a ~200-char normalized query, not hundreds. Texts shorter than 8
  // bytes take only the tail loop and hash exactly like classic FNV-1a.
  constexpr uint64_t kPrime = 1099511628211ull;
  uint64_t h = 14695981039346656037ull;
  const char* p = normalized_text.data();
  size_t n = normalized_text.size();
  for (; n >= 8; n -= 8, p += 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    h = (h ^ word) * kPrime;
  }
  for (; n > 0; --n, ++p) {
    h = (h ^ static_cast<unsigned char>(*p)) * kPrime;
  }
  return h;
}

// --- QueryLog ---------------------------------------------------------------

QueryLog& QueryLog::Global() {
  static QueryLog* log = new QueryLog;  // leaked: alive for exit-time appends
  return *log;
}

QueryLog::QueryLog() {
  QueryLogConfig config;
  if (const char* slow = std::getenv("RE2XOLAP_QUERY_LOG_SLOW_MS")) {
    config.slow_threshold_millis = std::strtod(slow, nullptr);
  }
  if (const char* path = std::getenv("RE2XOLAP_QUERY_LOG")) {
    if (*path != '\0') config.sink_path = path;
  }
  Configure(std::move(config));
  // Flush whatever the sink buffered when the process exits normally
  // (the singleton is leaked, so the hook always has a live object).
  std::atexit([] { QueryLog::Global().Flush(); });
}

size_t QueryLog::ShardCapacityLocked() const {
  return (config_.ring_capacity + kShards - 1) / kShards;
}

void QueryLog::Configure(QueryLogConfig config) {
  std::lock_guard<std::mutex> config_lock(config_mu_);
  config_ = std::move(config);
  slow_threshold_micros_.store(
      config_.slow_threshold_millis < 0
          ? -1
          : static_cast<int64_t>(config_.slow_threshold_millis * 1000.0),
      std::memory_order_relaxed);
  const size_t shard_cap = ShardCapacityLocked();
  for (Shard& shard : shards_) {
    ShardLock lock(shard.busy);
    shard.ring.clear();
    shard.ring.resize(shard_cap);
    shard.appended = 0;
  }
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    slow_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(sink_mu_);
    if (sink_file_ != nullptr) {
      if (!sink_buffer_.empty()) {
        std::fwrite(sink_buffer_.data(), 1, sink_buffer_.size(), sink_file_);
        sink_buffer_.clear();
      }
      std::fclose(sink_file_);
      sink_file_ = nullptr;
    }
    sink_armed_.store(false, std::memory_order_relaxed);
    if (!config_.sink_path.empty()) {
      sink_file_ = std::fopen(config_.sink_path.c_str(), "a");
      if (sink_file_ == nullptr) {
        std::fprintf(stderr,
                     "re2xolap: cannot open query log sink %s; sink disabled\n",
                     config_.sink_path.c_str());
      } else {
        sink_armed_.store(true, std::memory_order_relaxed);
      }
    }
  }
}

QueryLogConfig QueryLog::config() const {
  std::lock_guard<std::mutex> lock(config_mu_);
  return config_;
}

uint64_t QueryLog::Append(QueryRecord& rec) {
  if (!enabled()) return 0;
  rec.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  if (rec.start_micros == 0) {
    // Direct appenders (session/snapshot ops) never stamped a start;
    // derive it. QueryRecordScope stamps at construction, sparing the
    // hot path this clock read.
    rec.start_micros =
        TraceNowMicros() - static_cast<int64_t>(rec.total_millis * 1000.0);
  }
  Shard& shard = shards_[ThisThreadTag() % kShards];
  {
    ShardLock lock(shard.busy);
    if (!shard.ring.empty()) {
      // An incrementing wrap index, not `appended % size`: the hardware
      // division would cost more than the record copy.
      shard.ring[shard.head] = rec;
      if (++shard.head == shard.ring.size()) shard.head = 0;
      ++shard.appended;
    }
  }
  if (sink_armed_.load(std::memory_order_relaxed)) SinkLine(rec);
  return rec.id;
}

void QueryLog::AppendCompleted(QueryRecord& rec, std::string query,
                               std::string detail) {
  if (!enabled()) return;
  Append(rec);
  if (ShouldCapture(rec)) {
    CaptureSlow(rec, std::move(query), std::move(detail));
  }
}

bool QueryLog::ShouldCapture(const QueryRecord& rec) const {
  if (rec.status == kStatusTimeout || rec.status == kStatusResourceExhausted ||
      rec.status == kStatusCancelled) {
    return true;
  }
  const int64_t threshold = slow_threshold_micros_.load(std::memory_order_relaxed);
  return threshold >= 0 &&
         rec.total_millis * 1000.0 >= static_cast<double>(threshold);
}

void QueryLog::CaptureSlow(const QueryRecord& rec, std::string query,
                           std::string detail) {
  if (!enabled()) return;
  size_t capacity;
  {
    std::lock_guard<std::mutex> lock(config_mu_);
    capacity = config_.slow_capacity;
  }
  if (capacity == 0) return;
  std::lock_guard<std::mutex> lock(slow_mu_);
  slow_.push_back(SlowQueryEntry{rec, std::move(query), std::move(detail)});
  while (slow_.size() > capacity) slow_.pop_front();
}

std::vector<QueryRecord> QueryLog::Snapshot() const {
  std::vector<QueryRecord> out;
  for (const Shard& shard : shards_) {
    ShardLock lock(shard.busy);
    const size_t n = std::min<uint64_t>(shard.appended, shard.ring.size());
    for (size_t i = 0; i < n; ++i) out.push_back(shard.ring[i]);
  }
  std::sort(out.begin(), out.end(),
            [](const QueryRecord& a, const QueryRecord& b) {
              return a.id < b.id;
            });
  return out;
}

std::vector<SlowQueryEntry> QueryLog::SlowSnapshot() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return std::vector<SlowQueryEntry>(slow_.begin(), slow_.end());
}

void QueryLog::Clear() {
  for (Shard& shard : shards_) {
    ShardLock lock(shard.busy);
    shard.appended = 0;
  }
  std::lock_guard<std::mutex> lock(slow_mu_);
  slow_.clear();
}

std::string QueryLog::ToJsonLine(const QueryRecord& rec) {
  char fp[32];
  std::snprintf(fp, sizeof(fp), "%016" PRIx64, rec.fingerprint);
  std::string line = "{\"id\": " + std::to_string(rec.id);
  line += ", \"op\": \"";
  line += QueryOpName(rec.op);
  line += "\", \"fingerprint\": \"";
  line += fp;
  line += "\", \"epoch\": " + std::to_string(rec.freeze_epoch);
  line += ", \"executor\": \"";
  line += RecordExecutorName(rec.executor);
  line += "\", \"cache\": \"";
  line += CacheOutcomeName(rec.cache);
  line += "\", \"status\": \"";
  line += RecordStatusName(rec.status);
  line += "\", \"degraded\": ";
  line += rec.degraded ? "true" : "false";
  line += ", \"retries\": " + std::to_string(rec.retries);
  line += ", \"rows\": " + std::to_string(rec.rows_out);
  line += ", \"scanned\": " + std::to_string(rec.triples_scanned);
  line += ", \"bindings\": " + std::to_string(rec.intermediate_bindings);
  line += ", \"plan_ms\": " + FormatMillis(rec.plan_millis);
  line += ", \"exec_ms\": " + FormatMillis(rec.exec_millis);
  line += ", \"total_ms\": " + FormatMillis(rec.total_millis);
  line += ", \"start_us\": " + std::to_string(rec.start_micros);
  line += "}";
  return line;
}

void QueryLog::SinkLine(const QueryRecord& rec) {
  std::string line = ToJsonLine(rec);
  line += '\n';
  std::lock_guard<std::mutex> lock(sink_mu_);
  if (sink_file_ == nullptr) return;
  sink_buffer_ += line;
  if (sink_buffer_.size() >= kSinkFlushBytes) FlushLocked();
}

void QueryLog::FlushLocked() {
  if (sink_file_ == nullptr || sink_buffer_.empty()) return;
  std::fwrite(sink_buffer_.data(), 1, sink_buffer_.size(), sink_file_);
  std::fflush(sink_file_);
  sink_buffer_.clear();
}

void QueryLog::Flush() {
  std::lock_guard<std::mutex> lock(sink_mu_);
  FlushLocked();
}

// --- introspection report ---------------------------------------------------

namespace {

struct OpAggregate {
  uint64_t count = 0;
  uint64_t errors = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t degraded = 0;
  uint64_t retries = 0;
  double total_millis = 0;
  double max_millis = 0;
};

}  // namespace

void QueryLog::WriteIntrospectionReport(std::ostream& os, size_t top_n) const {
  std::vector<QueryRecord> records = Snapshot();
  std::vector<SlowQueryEntry> slow = SlowSnapshot();
  QueryLogConfig cfg = config();

  os << "== re2xolap introspection report ==\n";
  os << "records appended: " << total_appended() << " (ring retains "
     << records.size() << " of " << cfg.ring_capacity
     << "), slow-query entries: " << slow.size() << " of " << cfg.slow_capacity
     << "\n";
  os << "slow threshold: ";
  if (cfg.slow_threshold_millis < 0) {
    os << "disabled";
  } else {
    os << FormatMillis(cfg.slow_threshold_millis) << " ms";
  }
  os << ", jsonl sink: "
     << (cfg.sink_path.empty() ? std::string("off") : cfg.sink_path) << "\n";

  // Store memory footprint as last published by the active TripleStore.
  // Heap-owned and snapshot-mapped bytes are reported separately: a
  // zero-copy mmap boot keeps its index bytes in the mapped bucket, which
  // older MemoryUsage() accounting silently dropped.
  {
    auto& reg = MetricsRegistry::Global();
    const double heap = reg.GetGauge("store.bytes.heap").value();
    const double mapped = reg.GetGauge("store.bytes.mapped").value();
    if (heap > 0 || mapped > 0) {
      os << "\n-- store memory --\n";
      os << "  triples: "
         << static_cast<uint64_t>(reg.GetGauge("store.triples").value())
         << "\n";
      os << "  heap bytes: " << static_cast<uint64_t>(heap)
         << ", mapped bytes: " << static_cast<uint64_t>(mapped)
         << ", total: " << static_cast<uint64_t>(heap + mapped) << "\n";
      os << "  index bytes: spo="
         << static_cast<uint64_t>(
                reg.GetGauge("store.index.spo.bytes").value())
         << " pos="
         << static_cast<uint64_t>(
                reg.GetGauge("store.index.pos.bytes").value())
         << " osp="
         << static_cast<uint64_t>(
                reg.GetGauge("store.index.osp.bytes").value())
         << "\n";
    }
    // Epoch chain (live stores only: store.epoch is published exclusively
    // by chain publications, so it stays 0 on freeze-once stores).
    const double chain_epoch = reg.GetGauge("store.epoch").value();
    if (chain_epoch > 0) {
      os << "\n-- live ingestion (epoch chain) --\n";
      os << "  epoch: " << static_cast<uint64_t>(chain_epoch)
         << ", chain depth: "
         << static_cast<uint64_t>(reg.GetGauge("store.delta.layers").value())
         << "\n";
      os << "  delta triples: "
         << static_cast<uint64_t>(reg.GetGauge("store.delta.triples").value())
         << ", tombstones: "
         << static_cast<uint64_t>(
                reg.GetGauge("store.delta.tombstones").value())
         << "\n";
      os << "  ingest batches: "
         << reg.GetCounter("store.delta.ingest.batches").value()
         << " (+" << reg.GetCounter("store.delta.ingest.triples").value()
         << " / -" << reg.GetCounter("store.delta.ingest.deletes").value()
         << " triples), compactions: "
         << reg.GetCounter("store.delta.compactions").value() << "\n";
    }
  }

  // Per-operation breakdown.
  std::array<OpAggregate, kQueryOpCount> by_op{};
  std::map<uint8_t, uint64_t> by_status;
  std::map<uint64_t, uint64_t> by_epoch;
  for (const QueryRecord& r : records) {
    OpAggregate& agg = by_op[static_cast<size_t>(r.op) % kQueryOpCount];
    ++agg.count;
    if (r.status != 0) ++by_status[r.status], ++agg.errors;
    if (r.cache == CacheOutcome::kHit) ++agg.cache_hits;
    if (r.cache == CacheOutcome::kMiss) ++agg.cache_misses;
    if (r.degraded) ++agg.degraded;
    agg.retries += r.retries;
    agg.total_millis += r.total_millis;
    agg.max_millis = std::max(agg.max_millis, r.total_millis);
    ++by_epoch[r.freeze_epoch];
  }

  os << "\n-- by operation (retained records) --\n";
  for (size_t i = 0; i < kQueryOpCount; ++i) {
    const OpAggregate& agg = by_op[i];
    if (agg.count == 0) continue;
    os << "  " << QueryOpName(static_cast<QueryOp>(i)) << ": " << agg.count
       << " calls, " << agg.errors << " errors";
    const uint64_t probes = agg.cache_hits + agg.cache_misses;
    if (probes > 0) {
      os << ", cache hit " << agg.cache_hits << "/" << probes << " ("
         << FormatMillis(100.0 * static_cast<double>(agg.cache_hits) /
                         static_cast<double>(probes))
       << "%)";
    }
    if (agg.degraded > 0) os << ", degraded " << agg.degraded;
    if (agg.retries > 0) os << ", retries " << agg.retries;
    os << ", avg "
       << FormatMillis(agg.total_millis / static_cast<double>(agg.count))
       << " ms, max " << FormatMillis(agg.max_millis) << " ms\n";
  }

  if (!by_status.empty()) {
    os << "\n-- error breakdown --\n";
    for (const auto& [code, n] : by_status) {
      os << "  " << RecordStatusName(code) << ": " << n << "\n";
    }
  }

  if (by_epoch.size() > 1 || (by_epoch.size() == 1 && !records.empty())) {
    os << "\n-- by freeze epoch --\n";
    for (const auto& [epoch, n] : by_epoch) {
      os << "  epoch " << epoch << ": " << n << " records\n";
    }
  }

  if (!records.empty() && top_n > 0) {
    std::vector<const QueryRecord*> slowest;
    slowest.reserve(records.size());
    for (const QueryRecord& r : records) slowest.push_back(&r);
    const size_t keep = std::min(top_n, slowest.size());
    std::partial_sort(slowest.begin(), slowest.begin() + keep, slowest.end(),
                      [](const QueryRecord* a, const QueryRecord* b) {
                        return a->total_millis > b->total_millis;
                      });
    os << "\n-- top " << keep << " slowest retained --\n";
    char fp[32];
    for (size_t i = 0; i < keep; ++i) {
      const QueryRecord& r = *slowest[i];
      std::snprintf(fp, sizeof(fp), "%016" PRIx64, r.fingerprint);
      os << "  #" << r.id << " " << QueryOpName(r.op) << " "
         << FormatMillis(r.total_millis) << " ms, status "
         << RecordStatusName(r.status) << ", cache "
         << CacheOutcomeName(r.cache) << ", rows " << r.rows_out
         << ", fingerprint " << fp << "\n";
    }
  }

  if (!slow.empty()) {
    os << "\n-- slow-query log --\n";
    for (const SlowQueryEntry& e : slow) {
      os << "  #" << e.record.id << " " << QueryOpName(e.record.op) << " "
         << FormatMillis(e.record.total_millis) << " ms, status "
         << RecordStatusName(e.record.status) << ", scanned "
         << e.record.triples_scanned << "\n";
      if (!e.query.empty()) os << "    query: " << e.query << "\n";
      if (!e.detail.empty()) {
        // Indent the rendered operator tree under its entry.
        os << "    ";
        for (char c : e.detail) {
          os << c;
          if (c == '\n') os << "    ";
        }
        os << "\n";
      }
    }
  }

  // Thread-pool occupancy: tasks started minus finished = running now.
  MetricsRegistry& registry = MetricsRegistry::Global();
  const uint64_t pool_started =
      registry.GetCounter("pool.tasks.started").value();
  const uint64_t pool_finished =
      registry.GetCounter("pool.tasks.finished").value();
  os << "\n-- thread pool --\n  tasks: " << pool_started << " started, "
     << pool_finished << " finished, " << pool_started - pool_finished
     << " running\n";

  // Metrics-registry highlights: engine cache counters, guard verdicts,
  // and the latency histograms with tail quantiles (p50..p99.9).
  os << "\n-- metrics registry --\n" << registry.ToJson() << "\n";
}

// --- QueryRecordScope -------------------------------------------------------

QueryRecordScope::QueryRecordScope(QueryOp op)
    : QueryRecordScope(op, 0) {}

QueryRecordScope::QueryRecordScope(QueryOp op, int64_t start_micros) {
  active_ = ++tls_scope_depth == 1 && QueryLog::Global().enabled();
  if (!active_) return;
  rec_.op = op;
  // Doubles as the scope's start-of-call reference. A caller that shares
  // an existing clock read (the engine passes its latency timer's start)
  // spares this one.
  rec_.start_micros = start_micros != 0 ? start_micros : TraceNowMicros();
}

QueryRecordScope::~QueryRecordScope() {
  --tls_scope_depth;
  if (!active_) return;
  // A caller that already measured the call (the engine's cache-hit path
  // reuses its latency-histogram clock read) spares us this one.
  if (rec_.total_millis == 0) rec_.total_millis = ElapsedMillis();
  QueryLog& log = QueryLog::Global();
  log.Append(rec_);
  if (log.ShouldCapture(rec_)) {
    log.CaptureSlow(rec_, std::move(query_), std::move(detail_));
  }
}

void QueryRecordScope::SetQueryText(std::string text) {
  if (!active_) return;
  rec_.fingerprint = FingerprintQuery(text);
  query_ = std::move(text);
}

void QueryRecordScope::SetQueryText(std::string text, uint64_t fingerprint) {
  if (!active_) return;
  rec_.fingerprint =
      fingerprint != 0 ? fingerprint : FingerprintQuery(text);
  query_ = std::move(text);
}

double QueryRecordScope::ElapsedMillis() const {
  if (!active_) return 0;
  return static_cast<double>(TraceNowMicros() - rec_.start_micros) / 1000.0;
}

bool QueryRecordScope::WillCapture() const {
  if (!active_) return false;
  QueryRecord preview = rec_;
  preview.total_millis = ElapsedMillis();
  return QueryLog::Global().ShouldCapture(preview);
}

}  // namespace re2xolap::obs
