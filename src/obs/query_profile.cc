#include "obs/query_profile.h"

namespace re2xolap::obs {

uint64_t ProfileNode::TotalScanned() const {
  uint64_t n = scanned;
  for (const ProfileNode& c : children) n += c.TotalScanned();
  return n;
}

uint64_t ProfileNode::TotalRowsOut() const {
  uint64_t n = rows_out;
  for (const ProfileNode& c : children) n += c.TotalRowsOut();
  return n;
}

size_t ProfileNode::NodeCount() const {
  size_t n = 1;
  for (const ProfileNode& c : children) n += c.NodeCount();
  return n;
}

namespace {
void Visit(const ProfileNode& node, int depth,
           const std::function<void(int, const ProfileNode&)>& fn) {
  fn(depth, node);
  for (const ProfileNode& c : node.children) Visit(c, depth + 1, fn);
}
}  // namespace

void VisitProfile(const ProfileNode& root,
                  const std::function<void(int, const ProfileNode&)>& fn) {
  Visit(root, 0, fn);
}

}  // namespace re2xolap::obs
