#include "obs/metrics.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "obs/trace.h"  // JsonEscape

namespace re2xolap::obs {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

}  // namespace

// --- AtomicDouble -----------------------------------------------------------

void AtomicDouble::Add(double v) {
  uint64_t old = bits_.load(std::memory_order_relaxed);
  for (;;) {
    uint64_t next = std::bit_cast<uint64_t>(std::bit_cast<double>(old) + v);
    if (bits_.compare_exchange_weak(old, next, std::memory_order_relaxed)) {
      return;
    }
  }
}

void AtomicDouble::StoreMax(double v) {
  uint64_t old = bits_.load(std::memory_order_relaxed);
  while (std::bit_cast<double>(old) < v) {
    if (bits_.compare_exchange_weak(old, std::bit_cast<uint64_t>(v),
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

void AtomicDouble::StoreMin(double v) {
  uint64_t old = bits_.load(std::memory_order_relaxed);
  while (std::bit_cast<double>(old) > v) {
    if (bits_.compare_exchange_weak(old, std::bit_cast<uint64_t>(v),
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

void AtomicDouble::Set(double v) {
  bits_.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed);
}

double AtomicDouble::value() const {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

// --- Histogram --------------------------------------------------------------

int Histogram::BucketOf(double v) {
  if (!(v > 0)) return 0;  // non-positive and NaN go to the underflow bucket
  int idx = static_cast<int>(std::floor(std::log2(v) * kSubBuckets)) -
            kMinExp * kSubBuckets + 1;
  if (idx < 1) return 0;
  if (idx >= kNumBuckets) return kNumBuckets - 1;
  return idx;
}

double Histogram::BucketUpperBound(int b) {
  if (b <= 0) return std::exp2(static_cast<double>(kMinExp));
  if (b >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::exp2(static_cast<double>(b + kMinExp * kSubBuckets) /
                   kSubBuckets);
}

void Histogram::Observe(double v) {
  buckets_[static_cast<size_t>(BucketOf(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.Add(v);
  min_.StoreMin(v);
  max_.StoreMax(v);
}

double Histogram::Percentile(double q) const {
  uint64_t total = count();
  if (total == 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // 1-based rank of the requested quantile under nearest-rank semantics.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * total));
  if (rank == 0) rank = 1;
  uint64_t cum = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    cum += buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
    if (cum >= rank) {
      double estimate;
      if (b == 0) {
        estimate = 0.0;
      } else if (b == kNumBuckets - 1) {
        estimate = max();
      } else {
        // Geometric midpoint of the bucket: lower * 2^(1/(2*kSubBuckets)).
        double lower = std::exp2(
            static_cast<double>(b - 1 + kMinExp * kSubBuckets) / kSubBuckets);
        estimate = lower * std::exp2(0.5 / kSubBuckets);
      }
      // Clamp into the observed range for sane tails.
      return std::min(std::max(estimate, min()), max());
    }
  }
  return max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.Reset();
  min_.Set(std::numeric_limits<double>::infinity());
  max_.Set(-std::numeric_limits<double>::infinity());
}

HistogramSnapshot SnapshotOf(const Histogram& h) {
  HistogramSnapshot s;
  s.count = h.count();
  s.sum = h.sum();
  s.min = h.min();
  s.max = h.max();
  s.p50 = h.Percentile(0.50);
  s.p90 = h.Percentile(0.90);
  s.p95 = h.Percentile(0.95);
  s.p99 = h.Percentile(0.99);
  s.p999 = h.Percentile(0.999);
  return s;
}

// --- MetricsRegistry --------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry;  // leaked singleton
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ", ") << "\"" << JsonEscape(name)
       << "\": " << c->value();
    first = false;
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ", ") << "\"" << JsonEscape(name)
       << "\": " << FormatDouble(g->value());
    first = false;
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot s = SnapshotOf(*h);
    os << (first ? "" : ", ") << "\"" << JsonEscape(name) << "\": {\"count\": "
       << s.count << ", \"sum\": " << FormatDouble(s.sum)
       << ", \"min\": " << FormatDouble(s.min)
       << ", \"max\": " << FormatDouble(s.max)
       << ", \"p50\": " << FormatDouble(s.p50)
       << ", \"p90\": " << FormatDouble(s.p90)
       << ", \"p95\": " << FormatDouble(s.p95)
       << ", \"p99\": " << FormatDouble(s.p99)
       << ", \"p999\": " << FormatDouble(s.p999) << "}";
    first = false;
  }
  os << "}}";
}

std::string MetricsRegistry::ToJson() const {
  std::ostringstream os;
  WriteJson(os);
  return os.str();
}

void MetricsRegistry::WritePrometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    std::string p = PrometheusName(name);
    os << "# TYPE " << p << " counter\n" << p << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    std::string p = PrometheusName(name);
    os << "# TYPE " << p << " gauge\n"
       << p << " " << FormatDouble(g->value()) << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    std::string p = PrometheusName(name);
    os << "# TYPE " << p << " histogram\n";
    // Snapshot the bucket counts first, then derive every series from the
    // snapshot: concurrent Observe() calls cannot make `+Inf` disagree
    // with `_count` or leave cumulative buckets non-monotone.
    std::array<uint64_t, Histogram::kNumBuckets> counts;
    uint64_t total = 0;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      counts[static_cast<size_t>(b)] = h->bucket_count(b);
      total += counts[static_cast<size_t>(b)];
    }
    uint64_t cum = 0;
    // The overflow bucket's bound is +Inf; it is covered by the final
    // `+Inf` line, so skip it here to emit that bound exactly once.
    for (int b = 0; b + 1 < Histogram::kNumBuckets; ++b) {
      uint64_t n = counts[static_cast<size_t>(b)];
      if (n == 0) continue;  // sparse export: only occupied buckets
      cum += n;
      os << p << "_bucket{le=\"" << FormatDouble(Histogram::BucketUpperBound(b))
         << "\"} " << cum << "\n";
    }
    os << p << "_bucket{le=\"+Inf\"} " << total << "\n";
    os << p << "_sum " << FormatDouble(h->sum()) << "\n";
    os << p << "_count " << total << "\n";
  }
}

std::string MetricsRegistry::ToPrometheus() const {
  std::ostringstream os;
  WritePrometheus(os);
  return os.str();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace re2xolap::obs
