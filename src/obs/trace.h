#ifndef RE2XOLAP_OBS_TRACE_H_
#define RE2XOLAP_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace re2xolap::obs {

/// Identifier of a span; 0 means "no span" (the root of a trace).
using SpanId = uint64_t;

/// One key/value annotation on a span. `numeric` values are exported as
/// raw JSON numbers, everything else as escaped strings.
struct SpanAttr {
  std::string key;
  std::string value;
  bool numeric = false;
};

/// A finished span as stored by the collector: hierarchy (id/parent),
/// placement (thread tag), timing (microseconds since the process trace
/// epoch), and attributes.
struct SpanEvent {
  SpanId id = 0;
  SpanId parent = 0;
  std::string name;
  uint64_t thread = 0;       // small per-thread tag, stable per thread
  int64_t start_micros = 0;  // since process trace epoch (steady clock)
  double dur_micros = 0;
  std::vector<SpanAttr> attrs;
};

/// The span id currently active on this thread (0 when none). New spans
/// adopt it as their parent; ThreadPool::ParallelFor forwards it to worker
/// threads so fanned-out work nests under the caller's span.
SpanId CurrentSpan();

/// Small monotone tag identifying the calling thread (assigned on first
/// use). Used as the Chrome-trace "tid".
uint64_t ThisThreadTag();

/// Microseconds elapsed since the process trace epoch (the steady-clock
/// instant of the first obs use). The timestamp base shared by span
/// events and QueryRecord::start_micros.
int64_t TraceNowMicros();

/// Converts an already-captured steady-clock instant to the trace
/// timestamp base without reading the clock again — lets a caller that
/// holds a util::WallTimer share its start point with a QueryRecordScope
/// instead of paying a second clock read.
int64_t TraceMicrosAt(std::chrono::steady_clock::time_point tp);

/// Process-global span collector. Disabled by default: a disabled tracer
/// costs exactly one relaxed atomic load per Span construction and
/// nothing else — no allocation, no clock read, no locking — so
/// instrumentation can stay in hot paths permanently.
///
/// Setting RE2XOLAP_TRACE=<path> in the environment enables the tracer at
/// process start and writes the Chrome trace to <path> at normal process
/// exit — any binary (benches, examples, the snapshot CLI) produces a
/// loadable trace without per-binary boilerplate.
///
/// When enabled, finished spans are recorded into one of kShards
/// mutex-protected vectors selected by thread tag, so concurrent workers
/// rarely contend on the same lock (the "lock-sharded collector").
class Tracer {
 public:
  static Tracer& Global();

  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Discards every collected span (enabled state is unchanged).
  void Clear();

  /// Number of spans collected so far.
  size_t span_count() const;

  /// Copies out all collected spans, ordered by (start time, id).
  std::vector<SpanEvent> Snapshot() const;

  /// Writes the collected spans as Chrome `trace_event` JSON — the format
  /// loaded by chrome://tracing and https://ui.perfetto.dev. Spans become
  /// complete ("ph":"X") events; a child recorded on a different thread
  /// than its parent additionally gets a flow arrow ("ph":"s"/"f") from
  /// the parent's track, so ParallelFor fans stay visually attached.
  void WriteChromeTrace(std::ostream& os) const;

  /// Convenience: WriteChromeTrace into a string.
  std::string ChromeTraceJson() const;

 private:
  friend class Span;

  static constexpr size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::vector<SpanEvent> events;
  };

  Tracer() = default;
  SpanId NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }
  void Record(SpanEvent&& ev);

  std::array<Shard, kShards> shards_;
  std::atomic<bool> enabled_{false};
  std::atomic<SpanId> next_id_{1};
};

/// An RAII span: starts timing at construction, records itself into the
/// global Tracer at destruction (or explicit End()). While alive it is the
/// thread's current span, so nested Spans form a hierarchy automatically.
/// Spans on one thread must end in LIFO order (natural with scoping).
///
/// With the tracer disabled, construction is a single relaxed atomic load
/// and every other member is a no-op.
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span() { End(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return active_; }

  /// Attaches an attribute (no-ops when inactive).
  void SetAttr(std::string_view key, std::string_view value);
  void SetAttr(std::string_view key, const char* value);
  void SetAttr(std::string_view key, double value);
  void SetAttr(std::string_view key, uint64_t value);

  /// Ends the span early (idempotent).
  void End();

 private:
  bool active_ = false;
  std::chrono::steady_clock::time_point start_;
  SpanEvent ev_;
};

/// Sets the calling thread's current-span context for the lifetime of the
/// object, restoring the previous context on destruction. ThreadPool uses
/// this to run worker tasks under the ParallelFor caller's active span.
class ScopedSpanContext {
 public:
  explicit ScopedSpanContext(SpanId parent);
  ~ScopedSpanContext();

  ScopedSpanContext(const ScopedSpanContext&) = delete;
  ScopedSpanContext& operator=(const ScopedSpanContext&) = delete;

 private:
  SpanId saved_;
};

/// Escapes `s` for embedding inside a JSON string literal.
std::string JsonEscape(std::string_view s);

}  // namespace re2xolap::obs

#endif  // RE2XOLAP_OBS_TRACE_H_
