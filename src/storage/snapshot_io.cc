#include "storage/snapshot_io.h"

#include "util/hash.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace re2xolap::storage {

// --- XXH64 ------------------------------------------------------------------

uint64_t Xxh64(const void* data, size_t len, uint64_t seed) {
  return util::Xxh64(data, len, seed);
}

// --- ByteReader -------------------------------------------------------------

util::Status ByteReader::Take(void* out, size_t n) {
  if (n > size_ - pos_) {
    return util::Status::ParseError(
        "snapshot payload truncated: need " + std::to_string(n) +
        " bytes at offset " + std::to_string(pos_) + ", have " +
        std::to_string(size_ - pos_));
  }
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return util::Status::OK();
}

util::Status ByteReader::U8(uint8_t* out) { return Take(out, sizeof(*out)); }
util::Status ByteReader::U32(uint32_t* out) { return Take(out, sizeof(*out)); }
util::Status ByteReader::U64(uint64_t* out) { return Take(out, sizeof(*out)); }
util::Status ByteReader::I32(int32_t* out) { return Take(out, sizeof(*out)); }

util::Status ByteReader::Str(std::string* out) {
  uint32_t len = 0;
  RE2X_RETURN_IF_ERROR(U32(&len));
  if (len > size_ - pos_) {
    return util::Status::ParseError(
        "snapshot string overruns payload: length " + std::to_string(len) +
        " at offset " + std::to_string(pos_));
  }
  out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return util::Status::OK();
}

util::Status ByteReader::Skip(size_t n) {
  if (n > size_ - pos_) {
    return util::Status::ParseError("snapshot payload truncated in skip");
  }
  pos_ += n;
  return util::Status::OK();
}

// --- Files ------------------------------------------------------------------

namespace {

util::Status ErrnoStatus(const std::string& what, const std::string& path) {
  std::string msg = what + " " + path + ": " + std::strerror(errno);
  if (errno == ENOENT) return util::Status::NotFound(std::move(msg));
  return util::Status::ExecutionError(std::move(msg));
}

}  // namespace

util::Result<std::shared_ptr<MappedFile>> MappedFile::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    util::Status s = ErrnoStatus("stat", path);
    ::close(fd);
    return s;
  }
  size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return util::Status::ParseError("empty file is not a snapshot: " + path);
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) return ErrnoStatus("mmap", path);
  return std::shared_ptr<MappedFile>(
      new MappedFile(static_cast<const std::byte*>(addr), size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
}

util::Result<std::shared_ptr<std::vector<std::byte>>> ReadFileBytes(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    util::Status s = ErrnoStatus("stat", path);
    ::close(fd);
    return s;
  }
  auto buf = std::make_shared<std::vector<std::byte>>(
      static_cast<size_t>(st.st_size));
  size_t off = 0;
  while (off < buf->size()) {
    ssize_t n = ::read(fd, buf->data() + off, buf->size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      util::Status s = ErrnoStatus("read", path);
      ::close(fd);
      return s;
    }
    if (n == 0) break;  // concurrent truncation; header check reports it
    off += static_cast<size_t>(n);
  }
  ::close(fd);
  buf->resize(off);
  return buf;
}

util::Result<std::vector<std::byte>> ReadFilePrefix(const std::string& path,
                                                    size_t n,
                                                    uint64_t* file_size) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    util::Status s = ErrnoStatus("stat", path);
    ::close(fd);
    return s;
  }
  if (file_size != nullptr) *file_size = static_cast<uint64_t>(st.st_size);
  std::vector<std::byte> buf(
      std::min(n, static_cast<size_t>(st.st_size)));
  size_t off = 0;
  while (off < buf.size()) {
    ssize_t r = ::read(fd, buf.data() + off, buf.size() - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      util::Status s = ErrnoStatus("read", path);
      ::close(fd);
      return s;
    }
    if (r == 0) break;
    off += static_cast<size_t>(r);
  }
  ::close(fd);
  buf.resize(off);
  return buf;
}

util::Status WriteFileAtomic(
    const std::string& path,
    const std::vector<std::pair<const void*, size_t>>& blobs) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoStatus("create", tmp);
  for (const auto& [data, len] : blobs) {
    const char* p = static_cast<const char*>(data);
    size_t off = 0;
    while (off < len) {
      ssize_t n = ::write(fd, p + off, len - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        util::Status s = ErrnoStatus("write", tmp);
        ::close(fd);
        ::unlink(tmp.c_str());
        return s;
      }
      off += static_cast<size_t>(n);
    }
  }
  if (::fsync(fd) != 0) {
    util::Status s = ErrnoStatus("fsync", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return s;
  }
  if (::close(fd) != 0) {
    util::Status s = ErrnoStatus("close", tmp);
    ::unlink(tmp.c_str());
    return s;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    util::Status s = ErrnoStatus("rename", tmp);
    ::unlink(tmp.c_str());
    return s;
  }
  return util::Status::OK();
}

}  // namespace re2xolap::storage
