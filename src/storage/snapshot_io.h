#ifndef RE2XOLAP_STORAGE_SNAPSHOT_IO_H_
#define RE2XOLAP_STORAGE_SNAPSHOT_IO_H_

// Byte-level primitives for the snapshot subsystem: little-endian encode /
// bounds-checked decode, the XXH64 checksum, read-only file mappings, and
// atomic multi-blob file writes. Everything here is format-agnostic; the
// snapshot layout itself lives in storage/snapshot.{h,cc}.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace re2xolap::storage {

/// XXH64 (the 64-bit xxHash variant): fast non-cryptographic hash used as
/// the per-section and header checksum. Deterministic across runs and
/// platforms of the same endianness.
uint64_t Xxh64(const void* data, size_t len, uint64_t seed = 0);

/// Append-only little-endian byte sink used to encode section payloads.
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { AppendLe(&v, sizeof(v)); }
  void U64(uint64_t v) { AppendLe(&v, sizeof(v)); }
  void I32(int32_t v) { AppendLe(&v, sizeof(v)); }
  void Bytes(const void* data, size_t len) {
    buf_.append(static_cast<const char*>(data), len);
  }
  /// u32 byte length followed by the raw bytes.
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    Bytes(s.data(), s.size());
  }

  size_t size() const { return buf_.size(); }
  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }
  void Reserve(size_t n) { buf_.reserve(n); }

 private:
  // The build targets are little-endian; a memcpy of the native
  // representation IS the wire format (asserted in snapshot.cc).
  void AppendLe(const void* v, size_t n) {
    buf_.append(static_cast<const char*>(v), n);
  }

  std::string buf_;
};

/// Bounds-checked little-endian reader over a byte span. Every accessor
/// reports an overrun as a typed ParseError instead of reading past the
/// buffer, so truncated or bit-flipped payloads can never cause UB.
class ByteReader {
 public:
  ByteReader(const std::byte* data, size_t size) : data_(data), size_(size) {}

  util::Status U8(uint8_t* out);
  util::Status U32(uint32_t* out);
  util::Status U64(uint64_t* out);
  util::Status I32(int32_t* out);
  /// u32 byte length + raw bytes, as written by ByteWriter::Str.
  util::Status Str(std::string* out);
  util::Status Skip(size_t n);

  size_t remaining() const { return size_ - pos_; }
  size_t offset() const { return pos_; }
  const std::byte* cursor() const { return data_ + pos_; }

 private:
  util::Status Take(void* out, size_t n);

  const std::byte* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Read-only memory mapping of an entire file (RAII munmap). A loaded
/// zero-copy snapshot shares ownership of the mapping into the TripleStore
/// as its keepalive, so the pages stay valid for the store's lifetime.
class MappedFile {
 public:
  static util::Result<std::shared_ptr<MappedFile>> Open(
      const std::string& path);
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const std::byte* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  MappedFile(const std::byte* data, size_t size) : data_(data), size_(size) {}

  const std::byte* data_ = nullptr;
  size_t size_ = 0;
};

/// Reads a whole file into a heap buffer (copy-mode loads and verification
/// passes). NotFound when the file does not exist.
util::Result<std::shared_ptr<std::vector<std::byte>>> ReadFileBytes(
    const std::string& path);

/// Reads exactly the first `n` bytes of a file (header inspection without
/// paging in the payload). Returns fewer bytes only when the file is
/// shorter; also reports the file's total size through `file_size`.
util::Result<std::vector<std::byte>> ReadFilePrefix(const std::string& path,
                                                    size_t n,
                                                    uint64_t* file_size);

/// Writes the concatenation of `blobs` to `path` atomically: the bytes go
/// to `<path>.tmp` first and are renamed over `path` only after a
/// successful write + flush, so readers never observe a half-written
/// snapshot image.
util::Status WriteFileAtomic(
    const std::string& path,
    const std::vector<std::pair<const void*, size_t>>& blobs);

}  // namespace re2xolap::storage

#endif  // RE2XOLAP_STORAGE_SNAPSHOT_IO_H_
